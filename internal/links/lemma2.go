package links

import (
	"fmt"
	"sort"
)

// This file carries the Lemma 2 machinery: the greedy (2 − 1/m)·OPT
// guarantee and an exact optimal-makespan solver for small instances so the
// bound can be tested literally, not just against lower bounds.

// GreedyBoundHolds checks Lemma 2's intermediate inequality
//
//	Lj <= Σwi/m + (m−1)/m · max wi   for every link j,
//
// on a system produced by the greedy strategy. All arithmetic is integral:
// multiply through by m. The inequality implies Lj <= (2 − 1/m)·OPT because
// OPT >= Σwi/m and OPT >= max wi.
func GreedyBoundHolds(s *System, loads []int64) bool {
	m := int64(s.M())
	var sum, maxw int64
	for _, w := range loads {
		sum += w
		if w > maxw {
			maxw = w
		}
	}
	for _, lj := range s.Loads() {
		// lj*m <= sum + (m-1)*maxw
		if lj*m > sum+(m-1)*maxw {
			return false
		}
	}
	return true
}

// BoundAgainstOPT checks the headline form of Lemma 2,
// makespan <= (2 − 1/m)·OPT, given the exact optimum:
// makespan·m <= (2m − 1)·opt.
func BoundAgainstOPT(makespan, opt int64, m int) bool {
	return makespan*int64(m) <= (2*int64(m)-1)*opt
}

// OptimalMakespan computes the exact optimal makespan of assigning the loads
// to m identical links, by depth-first branch and bound. It is exponential
// in the worst case and intended for the small instances the test suite and
// the Lemma 2 experiment use (n ≲ 15).
func OptimalMakespan(m int, loads []int64) (int64, error) {
	if m < 1 {
		return 0, fmt.Errorf("links: need at least one link")
	}
	if len(loads) == 0 {
		return 0, nil
	}
	for _, w := range loads {
		if w < 0 {
			return 0, fmt.Errorf("links: negative load")
		}
	}
	if len(loads) > 20 {
		return 0, fmt.Errorf("links: OptimalMakespan limited to 20 loads, got %d", len(loads))
	}

	sorted := make([]int64, len(loads))
	copy(sorted, loads)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })

	// Start from the LPT solution as the incumbent upper bound.
	best := LPTMakespan(m, loads)

	var sum int64
	for _, w := range sorted {
		sum += w
	}
	// Lower bounds: ceil(sum/m) and the largest load.
	lower := (sum + int64(m) - 1) / int64(m)
	if sorted[0] > lower {
		lower = sorted[0]
	}
	if best == lower {
		return best, nil
	}

	bins := make([]int64, m)
	var rec func(i int, suffixSum int64)
	rec = func(i int, suffixSum int64) {
		if best == lower {
			return
		}
		if i == len(sorted) {
			ms := bins[0]
			for _, b := range bins[1:] {
				if b > ms {
					ms = b
				}
			}
			if ms < best {
				best = ms
			}
			return
		}
		w := sorted[i]
		seen := make(map[int64]bool, m)
		for j := 0; j < m; j++ {
			if seen[bins[j]] {
				continue // symmetric: same current load, same subtree
			}
			seen[bins[j]] = true
			if bins[j]+w >= best {
				continue // cannot improve the incumbent
			}
			bins[j] += w
			rec(i+1, suffixSum-w)
			bins[j] -= w
		}
	}
	rec(0, sum)
	return best, nil
}
