package links

import (
	"math/rand"
	"testing"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(0); err == nil {
		t.Error("zero links accepted")
	}
	s := MustSystem(3)
	if s.M() != 3 || s.Makespan() != 0 {
		t.Errorf("fresh system: M=%d makespan=%d", s.M(), s.Makespan())
	}
}

func TestAssignAndMakespan(t *testing.T) {
	s := MustSystem(2)
	if err := s.Assign(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(1, 3); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 5 {
		t.Errorf("makespan = %d", s.Makespan())
	}
	if err := s.Assign(7, 1); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := s.Assign(0, -1); err == nil {
		t.Error("negative load accepted")
	}
	loads := s.Loads()
	loads[0] = 999
	if s.Loads()[0] != 5 {
		t.Error("Loads leaked internal state")
	}
}

func TestLeastLoadedTieBreak(t *testing.T) {
	s := MustSystem(3)
	if s.LeastLoaded() != 0 {
		t.Error("empty system should pick link 0")
	}
	s.Assign(0, 2)
	s.Assign(1, 1)
	s.Assign(2, 1)
	if got := s.LeastLoaded(); got != 1 {
		t.Errorf("LeastLoaded = %d, want 1 (lowest index among ties)", got)
	}
}

func TestGreedyRun(t *testing.T) {
	// Loads 3, 3, 2 on 2 links: greedy → L0=3, L1=3, then 2 → L0: makespan 5.
	s, err := Run(2, []int64{3, 3, 2}, Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 5 {
		t.Errorf("makespan = %d, want 5", s.Makespan())
	}
	if _, err := Run(2, []int64{1, -4}, Greedy{}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestInventorFallsBackWhenLastAgent(t *testing.T) {
	s := MustSystem(2)
	s.Assign(0, 10)
	link := (Inventor{}).Choose(s, 5, 0, 15, 2)
	if link != 1 {
		t.Errorf("last agent should go greedy to link 1, got %d", link)
	}
}

func TestInventorAnticipatesFutureLoads(t *testing.T) {
	// Two links, current loads (0, 0). Agent of load 2 arrives; 2 more
	// agents of average 10 expected. LPT places the two 10s on separate
	// links, then... order: averages (10 > 2) first: 10→L0, 10→L1, 2→L0.
	// Wait — LPT with current loads zero: 10→L0, 10→L1, then 2→L0 (tie → lowest).
	// So inventor sends the agent to link 0, same as greedy here. Make it
	// interesting: current loads (4, 0). Greedy: link 1. Inventor: place
	// 10→L1 (load 0), 10→L0 (load 4→14 vs 10: least is 10 at L1? After
	// first: L0=4, L1=10 → 10→L0 (4<10) → L0=14. Then 2→L1 (10<14) → link 1.
	s := MustSystem(2)
	s.Assign(0, 4)
	link := (Inventor{}).Choose(s, 2, 2, 22, 2) // observedTotal arbitrary: avg 11
	// With avg 11: 11→L1 (0), 11→L0 (4) → L0=15, L1=11; then 2→L1.
	if link != 1 {
		t.Errorf("inventor chose %d, want 1", link)
	}
}

func TestInventorOwnLoadFirstWhenLarger(t *testing.T) {
	// Own load 20 exceeds the average 5: LPT places it first on the least
	// loaded link.
	s := MustSystem(2)
	s.Assign(0, 1)
	link := (Inventor{}).Choose(s, 20, 3, 25, 5) // avg = 5
	if link != 1 {
		t.Errorf("inventor chose %d, want 1 (least loaded for the big job)", link)
	}
}

func TestUniformLoadsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	loads := UniformLoads(rng, 1000, 1000)
	if len(loads) != 1000 {
		t.Fatalf("len = %d", len(loads))
	}
	for _, w := range loads {
		if w < 1 || w > 1000 {
			t.Fatalf("load %d outside [1, 1000]", w)
		}
	}
}

func TestLPTMakespan(t *testing.T) {
	// Classic: loads {5,5,4,4,3,3} on 2 links: LPT gives 12 (optimal).
	if got := LPTMakespan(2, []int64{5, 5, 4, 4, 3, 3}); got != 12 {
		t.Errorf("LPT makespan = %d, want 12", got)
	}
}

func TestOptimalMakespanSmall(t *testing.T) {
	cases := []struct {
		m     int
		loads []int64
		want  int64
	}{
		{2, []int64{3, 3, 2, 2}, 5},
		{2, []int64{5, 4, 3, 3, 3}, 9},
		{3, []int64{7, 6, 5, 4, 3, 2}, 9},
		{2, []int64{10}, 10},
		{4, []int64{1, 1, 1, 1}, 1},
		{2, nil, 0},
	}
	for i, c := range cases {
		got, err := OptimalMakespan(c.m, c.loads)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: OPT = %d, want %d", i, got, c.want)
		}
	}
	if _, err := OptimalMakespan(0, []int64{1}); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := OptimalMakespan(2, make([]int64, 25)); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := OptimalMakespan(2, []int64{-1}); err == nil {
		t.Error("negative load accepted")
	}
}

// Lemma 2, literal form: greedy makespan <= (2 − 1/m)·OPT on random small
// instances where OPT is computable exactly.
func TestLemma2AgainstExactOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(3)
		n := 1 + rng.Intn(11)
		loads := UniformLoads(rng, n, 50)
		s, err := Run(m, loads, Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalMakespan(m, loads)
		if err != nil {
			t.Fatal(err)
		}
		if !BoundAgainstOPT(s.Makespan(), opt, m) {
			t.Fatalf("trial %d: greedy %d > (2-1/%d)·OPT (%d)", trial, s.Makespan(), m, opt)
		}
		if !GreedyBoundHolds(s, loads) {
			t.Fatalf("trial %d: intermediate Lemma 2 inequality violated", trial)
		}
	}
}

// Lemma 2's intermediate inequality must hold on large instances too.
func TestLemma2IntermediateLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(99)
		loads := UniformLoads(rng, 1000, 1000)
		s, err := Run(m, loads, Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		if !GreedyBoundHolds(s, loads) {
			t.Fatalf("trial %d (m=%d): Lemma 2 inequality violated", trial, m)
		}
	}
}

// The inventor's strategy must also respect conservation: total assigned
// load equals the sum of the input loads.
func TestConservationOfLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	loads := UniformLoads(rng, 500, 1000)
	var want int64
	for _, w := range loads {
		want += w
	}
	for _, c := range []Chooser{Greedy{}, Inventor{}} {
		s, err := Run(37, loads, c)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		for _, l := range s.Loads() {
			got += l
		}
		if got != want {
			t.Fatalf("%T: assigned %d, want %d", c, got, want)
		}
	}
}

func TestSimulatePointShape(t *testing.T) {
	cfg := Fig7Config{Agents: 200, MaxLoad: 1000, Iterations: 30, Seed: 7}
	small, err := SimulatePoint(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	large, err := SimulatePoint(60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's curve: for sufficiently many links the inventor wins in
	// the vast majority of iterations.
	if large.BetterPct < 60 {
		t.Errorf("m=60: inventor wins only %.1f%%", large.BetterPct)
	}
	// And the win rate grows with m.
	if large.BetterPct <= small.BetterPct {
		t.Errorf("win rate should grow with m: m=2 %.1f%% vs m=60 %.1f%%",
			small.BetterPct, large.BetterPct)
	}
	// Sanity on the aggregates.
	if small.MeanGreedy <= 0 || small.MeanInventor <= 0 {
		t.Error("mean makespans should be positive")
	}
	if small.BetterPct+small.TiePct > 100+1e-9 {
		t.Error("percentages exceed 100")
	}
}

func TestSimulatePointValidation(t *testing.T) {
	if _, err := SimulatePoint(0, DefaultFig7Config()); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := SimulatePoint(2, Fig7Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestSimulateSeriesAndPaperCounts(t *testing.T) {
	cfg := Fig7Config{Agents: 100, MaxLoad: 100, Iterations: 5, Seed: 9}
	pts, err := SimulateSeries([]int{2, 10, 20}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[1].Links != 10 {
		t.Fatalf("series = %+v", pts)
	}
	ms := PaperLinkCounts(1)
	if len(ms) != 499 || ms[0] != 2 || ms[len(ms)-1] != 500 {
		t.Errorf("full axis: len=%d first=%d last=%d", len(ms), ms[0], ms[len(ms)-1])
	}
	coarse := PaperLinkCounts(50)
	if len(coarse) != 10 || coarse[0] != 2 {
		t.Errorf("coarse axis = %v", coarse)
	}
	if got := PaperLinkCounts(0); len(got) != 499 {
		t.Errorf("stride 0 should clamp to 1")
	}
}

func TestSystemClone(t *testing.T) {
	s := MustSystem(2)
	s.Assign(0, 4)
	c := s.Clone()
	c.Assign(0, 1)
	if s.Loads()[0] != 4 {
		t.Error("Clone shares state")
	}
}
