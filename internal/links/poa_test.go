package links

import (
	"math/rand"
	"testing"
)

func TestNashExtremesSmallInstance(t *testing.T) {
	// Loads {2, 2, 3} on 2 links. Assignments that are Nash: the balanced
	// ones ({3} vs {2,2}: makespan 4) and ({3,2} vs {2}: loads 5/2 — job 2
	// on the 5-link moves to 2+2=4 < 5 → not Nash). So best = worst = 4.
	res, err := NashAssignmentExtremes(2, []int64{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != 4 || res.Worst != 4 {
		t.Errorf("extremes = %+v, want best=worst=4", res)
	}
	if res.Count == 0 {
		t.Error("no Nash assignments counted")
	}
}

func TestNashExtremesWorstCaseGap(t *testing.T) {
	// The classic PoA-tight family for m = 2: loads {1, 1, 2}. Nash
	// assignments include ({2},{1,1}) with makespan 2 = OPT and
	// ({1,1},{2})… same. The worst Nash: ({2,1},{1}) → job layouts: loads
	// 3/1: the 1-job on the 3-link moves to 1+1=2 < 3 → not Nash. Try
	// {1,1} vs {2}: makespan 2. All Nash makespans are 2 here; use instead
	// loads {2, 2, 1, 1} on 2 links: ({2,2},{1,1}) loads 4/2: a 2-job moves
	// to 2+2=4 not < 4 → Nash, makespan 4; OPT = 3 ({2,1},{2,1}). Gap 4/3.
	res, err := NashAssignmentExtremes(2, []int64{2, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalMakespan(2, []int64{2, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("OPT = %d, want 3", opt)
	}
	if res.Worst != 4 {
		t.Errorf("worst Nash = %d, want 4", res.Worst)
	}
	if res.Best != 3 {
		t.Errorf("best Nash = %d, want 3", res.Best)
	}
	if !PoABoundHolds(res.Worst, opt, 2) {
		t.Error("the 4/3 gap violates the PoA bound?!")
	}
}

func TestNashExtremesValidation(t *testing.T) {
	if _, err := NashAssignmentExtremes(0, []int64{1}); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := NashAssignmentExtremes(2, make([]int64, 13)); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := NashAssignmentExtremes(2, []int64{-1}); err == nil {
		t.Error("negative load accepted")
	}
}

// Property: on random small instances, the pure price of anarchy respects
// the classic bound worst/OPT <= 2 − 2/(m+1), the best Nash is at least
// OPT, and LPT's makespan falls within the Nash range.
func TestPoABoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(2)
		n := 2 + rng.Intn(6)
		loads := UniformLoads(rng, n, 20)
		res, err := NashAssignmentExtremes(m, loads)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalMakespan(m, loads)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best < opt {
			t.Fatalf("trial %d: best Nash %d below OPT %d", trial, res.Best, opt)
		}
		if !PoABoundHolds(res.Worst, opt, m) {
			t.Fatalf("trial %d: PoA bound violated: worst %d, OPT %d, m %d",
				trial, res.Worst, opt, m)
		}
		lpt := LPTMakespan(m, loads)
		if lpt < res.Best || lpt > res.Worst {
			t.Fatalf("trial %d: LPT makespan %d outside the Nash range [%d, %d]",
				trial, lpt, res.Best, res.Worst)
		}
	}
}
