package links

import (
	"fmt"
	"math/rand"
)

// Fig7Point is one x-axis point of the paper's Fig. 7: for a given number of
// links, the percentage of simulation iterations in which the inventor's
// final assignment was strictly better (smaller makespan) than greedy's.
type Fig7Point struct {
	Links int
	// BetterPct is the percentage of iterations where inventor < greedy.
	BetterPct float64
	// TiePct is the percentage of exact ties (not plotted in the paper but
	// useful context for small m, where both strategies often coincide).
	TiePct float64
	// MeanGreedy and MeanInventor are the mean makespans, for the shape
	// comparison in EXPERIMENTS.md.
	MeanGreedy   float64
	MeanInventor float64
}

// Fig7Config parameterizes the experiment. The paper uses Agents = 1000,
// MaxLoad = 1000, Links = 2..500.
type Fig7Config struct {
	Agents     int
	MaxLoad    int64
	Iterations int
	Seed       int64
}

// DefaultFig7Config returns the paper's workload with a modest iteration
// count per point.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Agents: 1000, MaxLoad: 1000, Iterations: 100, Seed: 1}
}

// SimulatePoint runs the experiment for one link count.
func SimulatePoint(m int, cfg Fig7Config) (Fig7Point, error) {
	if m < 1 {
		return Fig7Point{}, fmt.Errorf("links: need at least one link")
	}
	if cfg.Agents < 1 || cfg.Iterations < 1 || cfg.MaxLoad < 1 {
		return Fig7Point{}, fmt.Errorf("links: invalid Fig7 config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(m)))
	better, ties := 0, 0
	var sumG, sumI float64
	for it := 0; it < cfg.Iterations; it++ {
		loads := UniformLoads(rng, cfg.Agents, cfg.MaxLoad)
		greedy, err := Run(m, loads, Greedy{})
		if err != nil {
			return Fig7Point{}, err
		}
		inventor, err := Run(m, loads, Inventor{})
		if err != nil {
			return Fig7Point{}, err
		}
		g, i := greedy.Makespan(), inventor.Makespan()
		sumG += float64(g)
		sumI += float64(i)
		switch {
		case i < g:
			better++
		case i == g:
			ties++
		}
	}
	n := float64(cfg.Iterations)
	return Fig7Point{
		Links:        m,
		BetterPct:    100 * float64(better) / n,
		TiePct:       100 * float64(ties) / n,
		MeanGreedy:   sumG / n,
		MeanInventor: sumI / n,
	}, nil
}

// SimulateSeries reproduces the full Fig. 7 sweep for the given link counts.
func SimulateSeries(ms []int, cfg Fig7Config) ([]Fig7Point, error) {
	out := make([]Fig7Point, 0, len(ms))
	for _, m := range ms {
		p, err := SimulatePoint(m, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// PaperLinkCounts returns the x-axis of Fig. 7: m = 2, ..., 500. The stride
// parameter thins the sweep (stride 1 is the paper's full axis; the checked
// ‑in experiment binary defaults to a coarser stride to keep runtimes
// friendly, which does not change the curve's shape).
func PaperLinkCounts(stride int) []int {
	if stride < 1 {
		stride = 1
	}
	var ms []int
	for m := 2; m <= 500; m += stride {
		ms = append(ms, m)
	}
	return ms
}
