package links

import (
	"math/rand"
	"testing"
)

func TestNewUniformPrior(t *testing.T) {
	p := NewUniformPrior(1000)
	if p.MeanNumerator != 1001 || p.MeanDenominator != 2 {
		t.Fatalf("prior = %+v, want mean 1001/2", p)
	}
}

func TestPriorFallsBackWhenLastAgentOrInvalid(t *testing.T) {
	s := MustSystem(2)
	s.Assign(0, 10)
	if got := (InventorPrior{MeanNumerator: 3, MeanDenominator: 1}).Choose(s, 1, 0, 0, 0); got != 1 {
		t.Errorf("last agent should be greedy, got %d", got)
	}
	if got := (InventorPrior{}).Choose(s, 1, 5, 0, 0); got != 1 {
		t.Errorf("zero prior should fall back to greedy, got %d", got)
	}
}

func TestPriorAnticipatesFutureLoads(t *testing.T) {
	// Same scenario as the dynamic inventor's test: loads (4, 0), own load
	// 2, two future agents of known mean 11. LPT: 11→L1, 11→L0, then 2→L1.
	s := MustSystem(2)
	s.Assign(0, 4)
	got := (InventorPrior{MeanNumerator: 11, MeanDenominator: 1}).Choose(s, 2, 2, 0, 0)
	if got != 1 {
		t.Errorf("prior inventor chose %d, want 1", got)
	}
}

func TestPriorFractionalMean(t *testing.T) {
	// Mean 3/2 with own load 1: the own load (1 < 3/2) goes after the
	// phantoms. Two links, two phantoms 3/2 each → one per link; own load 1
	// joins the lower-indexed of the equal links.
	s := MustSystem(2)
	got := (InventorPrior{MeanNumerator: 3, MeanDenominator: 2}).Choose(s, 1, 2, 0, 0)
	if got != 0 {
		t.Errorf("chose %d, want 0", got)
	}
}

func TestPriorConservesLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	loads := UniformLoads(rng, 300, 1000)
	var want int64
	for _, w := range loads {
		want += w
	}
	s, err := Run(17, loads, NewUniformPrior(1000))
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, l := range s.Loads() {
		got += l
	}
	if got != want {
		t.Fatalf("assigned %d, want %d", got, want)
	}
}

// Ablation: on the paper's workload both statistics beat greedy for
// moderately many links, and they behave comparably (the dynamic average
// converges to the true mean quickly at n = 1000 agents).
func TestPriorVsDynamicAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const m = 60
	greedyWins, priorBeatsGreedy, dynamicBeatsGreedy := 0, 0, 0
	const iters = 25
	for it := 0; it < iters; it++ {
		loads := UniformLoads(rng, 500, 1000)
		greedy, err := Run(m, loads, Greedy{})
		if err != nil {
			t.Fatal(err)
		}
		prior, err := Run(m, loads, NewUniformPrior(1000))
		if err != nil {
			t.Fatal(err)
		}
		dynamic, err := Run(m, loads, Inventor{})
		if err != nil {
			t.Fatal(err)
		}
		if prior.Makespan() < greedy.Makespan() {
			priorBeatsGreedy++
		}
		if dynamic.Makespan() < greedy.Makespan() {
			dynamicBeatsGreedy++
		}
		if greedy.Makespan() < prior.Makespan() && greedy.Makespan() < dynamic.Makespan() {
			greedyWins++
		}
	}
	if priorBeatsGreedy < iters*3/5 {
		t.Errorf("prior inventor beat greedy only %d/%d times", priorBeatsGreedy, iters)
	}
	if dynamicBeatsGreedy < iters*3/5 {
		t.Errorf("dynamic inventor beat greedy only %d/%d times", dynamicBeatsGreedy, iters)
	}
}
