package links

import "fmt"

// Price-of-anarchy analysis for the offline parallel-links game. The
// inventor's objective in §6 is the system optimum; agents left alone reach
// some pure Nash equilibrium instead. The classic bound for m identical
// machines (Finn–Horowitz; popularized as the pure price of anarchy) is
//
//	worst Nash makespan / OPT <= 2 − 2/(m+1),
//
// which the property suite validates against this package's exact
// enumerator. Comparing the worst equilibrium with the inventor-guided
// outcome quantifies how much the rationality authority's advice is worth
// beyond mere stability.

// NashExtremes holds the best and worst pure-Nash makespans of an instance.
type NashExtremes struct {
	Best  int64
	Worst int64
	// Count is the number of Nash assignments found (assignments, not
	// partitions; symmetric copies count separately).
	Count int
}

// NashAssignmentExtremes enumerates every assignment of the loads to m
// links (mᶰ of them — intended for small analysis instances, n <= 12) and
// returns the makespan extremes over the pure Nash equilibria. Every
// instance has at least one (the LPT assignment), so Count >= 1.
func NashAssignmentExtremes(m int, loads []int64) (*NashExtremes, error) {
	if m < 1 {
		return nil, fmt.Errorf("links: need at least one link")
	}
	if len(loads) > 12 {
		return nil, fmt.Errorf("links: NashAssignmentExtremes limited to 12 loads, got %d", len(loads))
	}
	for _, w := range loads {
		if w < 0 {
			return nil, fmt.Errorf("links: negative load")
		}
	}

	linkLoads := make([]int64, m)
	assignment := make([]int, len(loads))
	res := &NashExtremes{}

	var rec func(i int)
	rec = func(i int) {
		if i == len(loads) {
			if nash, _ := IsNashAssignment(m, loads, assignment); !nash {
				return
			}
			ms := linkLoads[0]
			for _, l := range linkLoads[1:] {
				if l > ms {
					ms = l
				}
			}
			if res.Count == 0 || ms < res.Best {
				res.Best = ms
			}
			if res.Count == 0 || ms > res.Worst {
				res.Worst = ms
			}
			res.Count++
			return
		}
		for j := 0; j < m; j++ {
			assignment[i] = j
			linkLoads[j] += loads[i]
			rec(i + 1)
			linkLoads[j] -= loads[i]
		}
	}
	rec(0)

	if res.Count == 0 {
		// Unreachable: LPT always yields a pure Nash equilibrium.
		return nil, fmt.Errorf("links: no Nash assignment found")
	}
	return res, nil
}

// PoABoundHolds checks worstNash·(m+1) <= (2m)·opt, the integral form of
// worst/OPT <= 2 − 2/(m+1).
func PoABoundHolds(worstNash, opt int64, m int) bool {
	return worstNash*int64(m+1) <= 2*int64(m)*opt
}
