// Package links implements §6's parallel-links on-line scheduling model and
// the paper's single plotted experiment (Fig. 7).
//
// The network is m parallel identical (equispeed) links from a source s to a
// sink t. Agents arrive one at a time with integer loads and pick a link
// irrevocably. Two strategies are compared:
//
//   - Greedy: join the least loaded link at arrival time. Lemma 2 shows the
//     resulting makespan is at most (2 − 1/m)·OPT.
//   - Inventor: the game inventor tracks the average load w̄i observed so
//     far and, knowing that n − i more agents are expected, computes an LPT
//     ("each load to the least loaded link, greatest first") Nash assignment
//     of the agent's own load plus n − i copies of w̄i on top of the current
//     congestion, and suggests the link its load landed on.
//
// Fig. 7 plots, for m = 2..500 links and 1000 agents with loads uniform on
// [0, 1000], the percentage of iterations in which the inventor's final
// assignment is strictly better (smaller makespan) than greedy's.
//
// Loads are int64 throughout: the paper's workload is integral, and integer
// arithmetic keeps the million-placement simulations exact and fast.
package links

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// System is the state of m parallel links: the total load assigned to each.
type System struct {
	loads []int64
}

// NewSystem returns an empty system of m links.
func NewSystem(m int) (*System, error) {
	if m < 1 {
		return nil, fmt.Errorf("links: need at least one link, got %d", m)
	}
	return &System{loads: make([]int64, m)}, nil
}

// MustSystem is NewSystem that panics on error.
func MustSystem(m int) *System {
	s, err := NewSystem(m)
	if err != nil {
		panic(err)
	}
	return s
}

// M returns the number of links.
func (s *System) M() int { return len(s.loads) }

// Loads returns a copy of the per-link loads.
func (s *System) Loads() []int64 {
	out := make([]int64, len(s.loads))
	copy(out, s.loads)
	return out
}

// LeastLoaded returns the index of the least loaded link, ties to the lowest
// index.
func (s *System) LeastLoaded() int {
	best := 0
	for i := 1; i < len(s.loads); i++ {
		if s.loads[i] < s.loads[best] {
			best = i
		}
	}
	return best
}

// Assign adds load w to the given link.
func (s *System) Assign(link int, w int64) error {
	if link < 0 || link >= len(s.loads) {
		return fmt.Errorf("links: link %d out of range [0, %d)", link, len(s.loads))
	}
	if w < 0 {
		return fmt.Errorf("links: negative load %d", w)
	}
	s.loads[link] += w
	return nil
}

// Makespan returns the maximum link load.
func (s *System) Makespan() int64 {
	best := s.loads[0]
	for _, l := range s.loads[1:] {
		if l > best {
			best = l
		}
	}
	return best
}

// Clone returns an independent copy.
func (s *System) Clone() *System {
	c := &System{loads: make([]int64, len(s.loads))}
	copy(c.loads, s.loads)
	return c
}

// Chooser selects a link for an arriving agent.
type Chooser interface {
	// Choose picks a link for an agent of load w given the current system
	// state, the number of agents still expected after this one, and the
	// total load observed so far including w (the inventor's statistic).
	Choose(s *System, w int64, remaining int, observedTotal int64, observedCount int) int
}

// Greedy is the natural strategy: the least loaded link at arrival time.
type Greedy struct{}

// Choose implements Chooser.
func (Greedy) Choose(s *System, _ int64, _ int, _ int64, _ int) int {
	return s.LeastLoaded()
}

// Inventor implements the paper's suggested strategy. It assigns, by LPT on
// top of the current congestion, the agent's own load together with
// `remaining` phantom loads of size w̄ (the running average, kept exact as
// observedTotal/observedCount), and returns the link the real load landed
// on.
type Inventor struct{}

// Choose implements Chooser.
func (Inventor) Choose(s *System, w int64, remaining int, observedTotal int64, observedCount int) int {
	if remaining <= 0 {
		return s.LeastLoaded()
	}
	// Loads to place: the real load w and `remaining` copies of the average.
	// All phantom loads are equal, so LPT ordering only needs to decide
	// whether w precedes or follows the block of averages. Compare w with
	// w̄ = observedTotal/observedCount without division:
	// w > w̄  ⇔  w·observedCount > observedTotal.
	wFirst := w*int64(observedCount) >= observedTotal

	// Scale every load by observedCount so the phantom average
	// observedTotal/observedCount stays integral: comparisons are invariant
	// under the common positive factor.
	scale := int64(observedCount)
	h := newLinkHeap(s, scale)
	if wFirst {
		chosen := h.place(w * scale)
		for r := 0; r < remaining; r++ {
			h.place(observedTotal)
		}
		return chosen
	}
	for r := 0; r < remaining; r++ {
		h.place(observedTotal)
	}
	return h.place(w * scale)
}

// linkHeap is a min-heap of links by load, ties to the lowest link index so
// that the LPT placement matches LeastLoaded's deterministic tie-break.
type linkLoad struct {
	link int
	load int64
}

type linkHeap []linkLoad

// newLinkHeap snapshots the system's loads scaled by the given positive
// factor (so fractional phantom loads stay integral) as a placement heap.
func newLinkHeap(s *System, scale int64) *linkHeap {
	h := make(linkHeap, s.M())
	for i, l := range s.loads {
		h[i] = linkLoad{link: i, load: l * scale}
	}
	heap.Init(&h)
	return &h
}

// place assigns a (scaled) load to the least loaded link and returns the
// chosen link.
func (h *linkHeap) place(load int64) int {
	top := (*h)[0]
	link := top.link
	top.load += load
	(*h)[0] = top
	heap.Fix(h, 0)
	return link
}

func (h linkHeap) Len() int { return len(h) }
func (h linkHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].link < h[j].link
}
func (h linkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *linkHeap) Push(x any)   { *h = append(*h, x.(linkLoad)) }
func (h *linkHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// Run plays the whole arrival sequence with the chooser and returns the
// final system.
func Run(m int, loads []int64, c Chooser) (*System, error) {
	s, err := NewSystem(m)
	if err != nil {
		return nil, err
	}
	var observedTotal int64
	for i, w := range loads {
		if w < 0 {
			return nil, fmt.Errorf("links: negative load at position %d", i)
		}
		observedTotal += w
		link := c.Choose(s, w, len(loads)-i-1, observedTotal, i+1)
		if err := s.Assign(link, w); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// UniformLoads draws n loads uniformly from {1, ..., maxLoad} — the paper's
// "uniform load distribution in [0, 1000]" workload (zero loads are
// excluded as degenerate: they never affect any makespan).
func UniformLoads(rng *rand.Rand, n int, maxLoad int64) []int64 {
	loads := make([]int64, n)
	for i := range loads {
		loads[i] = 1 + rng.Int63n(maxLoad)
	}
	return loads
}

// LPTMakespan computes the makespan of the offline LPT assignment of the
// loads — a strong (4/3-approximate) baseline used by tests.
func LPTMakespan(m int, loads []int64) int64 {
	sorted := make([]int64, len(loads))
	copy(sorted, loads)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	s := MustSystem(m)
	for _, w := range sorted {
		if err := s.Assign(s.LeastLoaded(), w); err != nil {
			panic(err) // unreachable: loads validated by callers
		}
	}
	return s.Makespan()
}
