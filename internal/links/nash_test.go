package links

import (
	"math/rand"
	"testing"
)

func TestIsNashAssignmentBasics(t *testing.T) {
	// Loads 3, 2, 2 on 2 links: assignment (L0: 3), (L1: 2, 2) has link
	// loads 3 and 4; the jobs on L1 cannot improve (3+2=5 > 4), nor can the
	// job on L0 (4+3=7 > 3): Nash.
	ok, err := IsNashAssignment(2, []int64{3, 2, 2}, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("balanced assignment should be Nash")
	}
	// All three on one link: job 0 moves to the empty link (0+3 < 7).
	ok, err = IsNashAssignment(2, []int64{3, 2, 2}, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pile-up should not be Nash")
	}
	job, to, found := FindImprovingMove(2, []int64{3, 2, 2}, []int{0, 0, 0})
	if !found || to != 1 {
		t.Errorf("FindImprovingMove = (%d, %d, %v)", job, to, found)
	}
}

func TestIsNashAssignmentValidation(t *testing.T) {
	if _, err := IsNashAssignment(2, []int64{1, 2}, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := IsNashAssignment(2, []int64{1}, []int{5}); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := IsNashAssignment(2, []int64{-1}, []int{0}); err == nil {
		t.Error("negative load accepted")
	}
}

// The §6 observation in scheduling form: greedy's online best replies need
// not form an offline Nash equilibrium.
func TestGreedyAssignmentNotAlwaysNash(t *testing.T) {
	// Loads 2, 2, 3 on 2 links: greedy gives L0 = {2, 3} = 5, L1 = {2}.
	// The first job (load 2 on L0) improves by moving to L1 (2+2=4 < 5).
	loads := []int64{2, 2, 3}
	_, assignment, err := RunDetailed(2, loads, Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsNashAssignment(2, loads, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("assignment %v should not be Nash", assignment)
	}
}

// LPT assignments are always pure Nash equilibria (a classical result).
func TestLPTAssignmentIsNashProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 150; trial++ {
		m := 2 + rng.Intn(4)
		n := 1 + rng.Intn(20)
		loads := UniformLoads(rng, n, 100)
		sys, assignment, err := LPTAssignment(m, loads)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := IsNashAssignment(m, loads, assignment)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			job, to, _ := FindImprovingMove(m, loads, assignment)
			t.Fatalf("trial %d: LPT assignment not Nash; job %d moves to %d (loads %v, assignment %v)",
				trial, job, to, loads, assignment)
		}
		// Consistency: LPTAssignment's makespan equals LPTMakespan's.
		if sys.Makespan() != LPTMakespan(m, loads) {
			t.Fatalf("trial %d: LPTAssignment makespan %d != LPTMakespan %d",
				trial, sys.Makespan(), LPTMakespan(m, loads))
		}
	}
}

// RunDetailed must agree with Run on the final loads for any chooser.
func TestRunDetailedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	loads := UniformLoads(rng, 200, 1000)
	for _, c := range []Chooser{Greedy{}, Inventor{}, NewUniformPrior(1000)} {
		plain, err := Run(13, loads, c)
		if err != nil {
			t.Fatal(err)
		}
		detailed, assignment, err := RunDetailed(13, loads, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain.Loads() {
			if plain.Loads()[i] != detailed.Loads()[i] {
				t.Fatalf("%T: Run and RunDetailed diverge at link %d", c, i)
			}
		}
		// The assignment must reproduce the loads.
		rebuilt := make([]int64, 13)
		for i, link := range assignment {
			rebuilt[link] += loads[i]
		}
		for i, l := range detailed.Loads() {
			if rebuilt[i] != l {
				t.Fatalf("%T: assignment does not reproduce link %d's load", c, i)
			}
		}
	}
	if _, _, err := RunDetailed(2, []int64{-1}, Greedy{}); err == nil {
		t.Error("negative load accepted")
	}
}

// How often is each strategy's final assignment a Nash equilibrium in
// hindsight? LPT always; greedy and the inventor only sometimes — the
// instability §6 turns into a case for consulting the authority.
func TestHindsightStabilityRates(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	const iters = 60
	nash := map[string]int{}
	for it := 0; it < iters; it++ {
		loads := UniformLoads(rng, 40, 100)
		const m = 4
		for name, c := range map[string]Chooser{"greedy": Greedy{}, "inventor": Inventor{}} {
			_, assignment, err := RunDetailed(m, loads, c)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := IsNashAssignment(m, loads, assignment)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				nash[name]++
			}
		}
		_, lptAssign, err := LPTAssignment(4, loads)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := IsNashAssignment(4, loads, lptAssign)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			nash["lpt"]++
		}
	}
	if nash["lpt"] != iters {
		t.Errorf("LPT Nash rate %d/%d, want all", nash["lpt"], iters)
	}
	if nash["greedy"] == iters {
		t.Error("greedy should not always be Nash in hindsight")
	}
}
