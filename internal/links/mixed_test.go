package links

import (
	"math/rand"
	"testing"
)

func TestMixedChooserExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	loads := UniformLoads(rng, 400, 1000)
	const m = 40

	// p = 0 must reproduce greedy exactly.
	greedy, err := Run(m, loads, Greedy{})
	if err != nil {
		t.Fatal(err)
	}
	mixed0, err := Run(m, loads, MixedChooser{P: 0, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range greedy.Loads() {
		if mixed0.Loads()[i] != l {
			t.Fatalf("p=0 diverged from greedy at link %d", i)
		}
	}

	// p = 1 must reproduce the inventor exactly.
	inventor, err := Run(m, loads, Inventor{})
	if err != nil {
		t.Fatal(err)
	}
	mixed1, err := Run(m, loads, MixedChooser{P: 1, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range inventor.Loads() {
		if mixed1.Loads()[i] != l {
			t.Fatalf("p=1 diverged from the inventor at link %d", i)
		}
	}
}

func TestMixedChooserNilRngIsFallback(t *testing.T) {
	s := MustSystem(2)
	s.Assign(0, 3)
	// Without an Rng the coin never fires; the fallback (greedy) picks 1.
	if got := (MixedChooser{P: 1}).Choose(s, 1, 3, 4, 1); got != 1 {
		t.Errorf("nil-Rng mixed chooser chose %d, want greedy's 1", got)
	}
}

func TestMixedChooserCustomStrategies(t *testing.T) {
	// Loads (5, 0); one future agent of known mean 11/2 expected. LPT places
	// the 5.5 phantom on the empty link 1, then the real load 2 on link 0
	// (5 < 5.5) — so the advised prior deliberately differs from greedy,
	// which would pick link 1.
	s := MustSystem(2)
	s.Assign(0, 5)
	prior := NewUniformPrior(10)
	c := MixedChooser{P: 1, Rng: rand.New(rand.NewSource(3)), Advised: prior, Fallback: Greedy{}}
	if got := c.Choose(s, 2, 1, 7, 1); got != 0 {
		t.Errorf("advised prior should anticipate the phantom and pick link 0, got %d", got)
	}
	if got := (Greedy{}).Choose(s, 2, 1, 7, 1); got != 1 {
		t.Errorf("greedy should pick the empty link 1, got %d", got)
	}
}

func TestAdoptionSweepMonotoneTrend(t *testing.T) {
	cfg := Fig7Config{Agents: 400, MaxLoad: 1000, Iterations: 30, Seed: 11}
	pts, err := AdoptionSweep(50, []float64{0, 0.5, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// p = 0: never strictly better (identical schedules).
	if pts[0].BetterPct != 0 {
		t.Errorf("p=0 BetterPct = %f, want 0", pts[0].BetterPct)
	}
	// Benefit grows with adoption: mean makespan at p=1 below p=0.
	if pts[2].MeanMixed >= pts[0].MeanMixed {
		t.Errorf("full adoption (%f) should beat none (%f)", pts[2].MeanMixed, pts[0].MeanMixed)
	}
	// Half adoption sits strictly between the extremes in win rate.
	if !(pts[1].BetterPct > pts[0].BetterPct) {
		t.Errorf("p=0.5 win rate %f should exceed p=0's %f", pts[1].BetterPct, pts[0].BetterPct)
	}
}
