package links

// §6 describes two kinds of statistical information the inventor may hold:
// "In the first case, the inventor has prior knowledge about the loads of
// the agents, knows for example that they are drawn from some particular
// probability distribution. In the second case, the inventor dynamically
// updates its information about the loads." The Inventor chooser in links.go
// implements the second case (the running average, which Fig. 7 evaluates);
// InventorPrior below implements the first, and the ablation experiment
// (cmd/experiments, BenchmarkAblationStatistics) compares them.

// InventorPrior is the inventor with prior knowledge: it expects every
// future agent to carry the distribution's known mean load rather than the
// running average observed so far.
type InventorPrior struct {
	// MeanNumerator/MeanDenominator encode the known mean load as an exact
	// fraction (the U[1, maxLoad] mean (maxLoad+1)/2 needs halves).
	MeanNumerator   int64
	MeanDenominator int64
}

// NewUniformPrior returns the prior-knowledge inventor for loads drawn
// uniformly from {1, ..., maxLoad}: mean (maxLoad+1)/2.
func NewUniformPrior(maxLoad int64) InventorPrior {
	return InventorPrior{MeanNumerator: maxLoad + 1, MeanDenominator: 2}
}

// Choose implements Chooser. The placement mirrors Inventor.Choose with the
// phantom load fixed at the prior mean: scale all loads by MeanDenominator
// so the phantom stays integral.
func (p InventorPrior) Choose(s *System, w int64, remaining int, _ int64, _ int) int {
	if remaining <= 0 {
		return s.LeastLoaded()
	}
	if p.MeanDenominator <= 0 || p.MeanNumerator <= 0 {
		return s.LeastLoaded()
	}
	scale := p.MeanDenominator
	phantom := p.MeanNumerator
	wFirst := w*p.MeanDenominator >= p.MeanNumerator

	h := newLinkHeap(s, scale)
	if wFirst {
		chosen := h.place(w * scale)
		for r := 0; r < remaining; r++ {
			h.place(phantom)
		}
		return chosen
	}
	for r := 0; r < remaining; r++ {
		h.place(phantom)
	}
	return h.place(w * scale)
}
