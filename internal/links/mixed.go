package links

import "math/rand"

// §6's behavioural model: "With probability p, the agent follows the
// inventor's suggested strategy. With probability (1 − p), it chooses a
// strategy based on its knowledge about the strategic (off-line) version of
// the game." Fig. 7 evaluates the extreme p = 1 ("all agents ask the
// inventor"); MixedChooser implements the general model so the adoption
// sweep (experiment E11) can show how the benefit grows with p.

// MixedChooser follows Advised with probability P and Fallback otherwise.
type MixedChooser struct {
	// P is the adoption probability in [0, 1].
	P float64
	// Rng drives the per-agent coin. Required.
	Rng *rand.Rand
	// Advised is the inventor's suggestion (default Inventor{}).
	Advised Chooser
	// Fallback is the agent's own strategy (default Greedy{}).
	Fallback Chooser
}

// Choose implements Chooser.
func (m MixedChooser) Choose(s *System, w int64, remaining int, observedTotal int64, observedCount int) int {
	advised := m.Advised
	if advised == nil {
		advised = Inventor{}
	}
	fallback := m.Fallback
	if fallback == nil {
		fallback = Greedy{}
	}
	if m.Rng != nil && m.Rng.Float64() < m.P {
		return advised.Choose(s, w, remaining, observedTotal, observedCount)
	}
	return fallback.Choose(s, w, remaining, observedTotal, observedCount)
}

// AdoptionPoint is one row of the adoption sweep: the fraction of agents
// consulting the inventor and the resulting makespans.
type AdoptionPoint struct {
	P          float64
	BetterPct  float64 // iterations where mixed < pure greedy
	MeanMixed  float64
	MeanGreedy float64
}

// AdoptionSweep measures, for each adoption probability, how often the
// mixed population beats the all-greedy population on the same workload.
func AdoptionSweep(m int, ps []float64, cfg Fig7Config) ([]AdoptionPoint, error) {
	out := make([]AdoptionPoint, 0, len(ps))
	for pi, p := range ps {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*pi)))
		coinRng := rand.New(rand.NewSource(cfg.Seed + int64(5000+pi)))
		better := 0
		var sumMixed, sumGreedy float64
		for it := 0; it < cfg.Iterations; it++ {
			loads := UniformLoads(rng, cfg.Agents, cfg.MaxLoad)
			greedy, err := Run(m, loads, Greedy{})
			if err != nil {
				return nil, err
			}
			mixed, err := Run(m, loads, MixedChooser{P: p, Rng: coinRng})
			if err != nil {
				return nil, err
			}
			if mixed.Makespan() < greedy.Makespan() {
				better++
			}
			sumMixed += float64(mixed.Makespan())
			sumGreedy += float64(greedy.Makespan())
		}
		n := float64(cfg.Iterations)
		out = append(out, AdoptionPoint{
			P:          p,
			BetterPct:  100 * float64(better) / n,
			MeanMixed:  sumMixed / n,
			MeanGreedy: sumGreedy / n,
		})
	}
	return out, nil
}
