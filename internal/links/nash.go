package links

import "fmt"

// Offline-equilibrium analysis of parallel-links assignments. A final
// assignment is a pure Nash equilibrium of the (offline) load-balancing
// game when no job can reduce its completion time by moving to another
// link: job i on link j improves by moving to k iff L_k + w_i < L_j.
// §6's central observation is that online best replies need not form such
// an equilibrium once later agents have arrived — greedy assignments are
// often not Nash in hindsight, while LPT assignments always are.

// RunDetailed plays the arrival sequence like Run but also returns the
// per-agent link assignment.
func RunDetailed(m int, loads []int64, c Chooser) (*System, []int, error) {
	s, err := NewSystem(m)
	if err != nil {
		return nil, nil, err
	}
	assignment := make([]int, len(loads))
	var observedTotal int64
	for i, w := range loads {
		if w < 0 {
			return nil, nil, fmt.Errorf("links: negative load at position %d", i)
		}
		observedTotal += w
		link := c.Choose(s, w, len(loads)-i-1, observedTotal, i+1)
		if err := s.Assign(link, w); err != nil {
			return nil, nil, err
		}
		assignment[i] = link
	}
	return s, assignment, nil
}

// IsNashAssignment reports whether the assignment is a pure Nash
// equilibrium of the offline game: no job strictly gains by moving.
func IsNashAssignment(m int, loads []int64, assignment []int) (bool, error) {
	if len(assignment) != len(loads) {
		return false, fmt.Errorf("links: %d assignments for %d loads", len(assignment), len(loads))
	}
	linkLoads := make([]int64, m)
	for i, link := range assignment {
		if link < 0 || link >= m {
			return false, fmt.Errorf("links: job %d assigned to link %d of %d", i, link, m)
		}
		if loads[i] < 0 {
			return false, fmt.Errorf("links: negative load %d", loads[i])
		}
		linkLoads[link] += loads[i]
	}
	for i, link := range assignment {
		for k := 0; k < m; k++ {
			if k == link {
				continue
			}
			if linkLoads[k]+loads[i] < linkLoads[link] {
				return false, nil
			}
		}
	}
	return true, nil
}

// FindImprovingMove returns a job that can strictly reduce its completion
// time and the link it should move to, or ok = false when the assignment is
// a Nash equilibrium. It is the counterexample witness an auditor would
// attach when reporting a claimed-Nash assignment as false.
func FindImprovingMove(m int, loads []int64, assignment []int) (job, toLink int, ok bool) {
	linkLoads := make([]int64, m)
	for i, link := range assignment {
		linkLoads[link] += loads[i]
	}
	for i, link := range assignment {
		best := link
		bestLoad := linkLoads[link]
		for k := 0; k < m; k++ {
			if k == link {
				continue
			}
			if linkLoads[k]+loads[i] < bestLoad {
				best = k
				bestLoad = linkLoads[k] + loads[i]
			}
		}
		if best != link {
			return i, best, true
		}
	}
	return 0, 0, false
}

// LPTAssignment computes the offline LPT assignment and returns it in the
// ORIGINAL job order (so it can be checked against the same loads slice).
// LPT assignments are always pure Nash equilibria of the offline game.
func LPTAssignment(m int, loads []int64) (*System, []int, error) {
	s, err := NewSystem(m)
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	// Sort job indices by descending load; ties by original order for
	// determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (loads[order[j]] > loads[order[j-1]] ||
			(loads[order[j]] == loads[order[j-1]] && order[j] < order[j-1])); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assignment := make([]int, len(loads))
	for _, idx := range order {
		if loads[idx] < 0 {
			return nil, nil, fmt.Errorf("links: negative load")
		}
		link := s.LeastLoaded()
		if err := s.Assign(link, loads[idx]); err != nil {
			return nil, nil, err
		}
		assignment[idx] = link
	}
	return s, assignment, nil
}
