package numeric

import (
	"testing"
	"testing/quick"
)

func TestNewVecIsZero(t *testing.T) {
	v := NewVec(4)
	if v.Len() != 4 || !v.IsZero() {
		t.Fatalf("NewVec(4) = %s", v)
	}
}

func TestVecOfCopies(t *testing.T) {
	x := R(1, 2)
	v := VecOf(x)
	x.SetInt64(9)
	if v.At(0).RatString() != "1/2" {
		t.Fatal("VecOf did not copy its arguments")
	}
}

func TestVecAtCopies(t *testing.T) {
	v := VecOfInts(1, 2, 3)
	got := v.At(1)
	got.SetInt64(99)
	if v.At(1).RatString() != "2" {
		t.Fatal("At leaked internal state")
	}
}

func TestVecSetAtCopies(t *testing.T) {
	v := NewVec(1)
	x := R(1, 3)
	v.SetAt(0, x)
	x.SetInt64(7)
	if v.At(0).RatString() != "1/3" {
		t.Fatal("SetAt aliased its argument")
	}
}

func TestVecAddSubScale(t *testing.T) {
	v := VecOfInts(1, 2, 3)
	w := VecOfInts(4, 5, 6)
	if got := v.Add(w); !got.Equal(VecOfInts(5, 7, 9)) {
		t.Errorf("Add = %s", got)
	}
	if got := w.Sub(v); !got.Equal(VecOfInts(3, 3, 3)) {
		t.Errorf("Sub = %s", got)
	}
	if got := v.Scale(I(2)); !got.Equal(VecOfInts(2, 4, 6)) {
		t.Errorf("Scale = %s", got)
	}
}

func TestVecDotAndSum(t *testing.T) {
	v := VecOfInts(1, 2, 3)
	w := VecOfInts(4, 5, 6)
	if got := v.Dot(w); got.RatString() != "32" {
		t.Errorf("Dot = %s, want 32", got.RatString())
	}
	if got := v.Sum(); got.RatString() != "6" {
		t.Errorf("Sum = %s, want 6", got.RatString())
	}
}

func TestVecDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched dims did not panic")
		}
	}()
	VecOfInts(1).Dot(VecOfInts(1, 2))
}

func TestVecIsStochastic(t *testing.T) {
	if !VecOf(R(1, 4), R(3, 4)).IsStochastic() {
		t.Error("(1/4, 3/4) should be stochastic")
	}
	if VecOf(R(1, 2), R(1, 4)).IsStochastic() {
		t.Error("sums to 3/4, not stochastic")
	}
	if VecOf(R(-1, 4), R(5, 4)).IsStochastic() {
		t.Error("negative entry, not stochastic")
	}
	if VecOf(R(3, 2), Neg(R(1, 2))).IsStochastic() {
		t.Error("entry > 1, not stochastic")
	}
}

func TestVecSupport(t *testing.T) {
	v := VecOf(Zero(), R(1, 2), Zero(), R(1, 2))
	got := v.Support()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Support = %v, want [1 3]", got)
	}
	if VecOfInts(0, 0).Support() != nil {
		t.Error("zero vector should have empty support")
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := VecOfInts(1, 2)
	c := v.Clone()
	c.SetAt(0, I(9))
	if v.At(0).RatString() != "1" {
		t.Fatal("Clone shares state")
	}
}

func TestVecString(t *testing.T) {
	if got := VecOf(R(1, 2), I(3)).String(); got != "(1/2, 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestVecDotCommutesProperty(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		v := VecOfInts(int64(a), int64(b))
		w := VecOfInts(int64(c), int64(d))
		return Eq(v.Dot(w), w.Dot(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecAddCommutesProperty(t *testing.T) {
	f := func(a, b, c, d int16) bool {
		v := VecOfInts(int64(a), int64(b))
		w := VecOfInts(int64(c), int64(d))
		return v.Add(w).Equal(w.Add(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
