package numeric

import (
	"testing"
	"testing/quick"
)

func TestMatrixShapeAndAccess(t *testing.T) {
	m := MatrixOfInts([][]int64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2).RatString() != "6" {
		t.Fatalf("At(1,2) = %s", m.At(1, 2).RatString())
	}
	m.SetAt(0, 0, R(1, 2))
	if m.At(0, 0).RatString() != "1/2" {
		t.Fatal("SetAt failed")
	}
}

func TestMatrixAtCopies(t *testing.T) {
	m := MatrixOfInts([][]int64{{7}})
	got := m.At(0, 0)
	got.SetInt64(0)
	if m.At(0, 0).RatString() != "7" {
		t.Fatal("At leaked internal state")
	}
}

func TestMatrixIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	NewMatrix(1, 1).At(1, 0)
}

func TestMatrixRowColTranspose(t *testing.T) {
	m := MatrixOfInts([][]int64{{1, 2}, {3, 4}, {5, 6}})
	if !m.Row(1).Equal(VecOfInts(3, 4)) {
		t.Errorf("Row = %s", m.Row(1))
	}
	if !m.Col(0).Equal(VecOfInts(1, 3, 5)) {
		t.Errorf("Col = %s", m.Col(0))
	}
	tr := m.Transpose()
	if tr.Rows() != 2 || tr.Cols() != 3 || tr.At(0, 2).RatString() != "5" {
		t.Errorf("Transpose = %s", tr)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := MatrixOfInts([][]int64{{1, 2}, {3, 4}})
	got := m.MulVec(VecOfInts(5, 6))
	if !got.Equal(VecOfInts(17, 39)) {
		t.Errorf("MulVec = %s", got)
	}
}

func TestMatrixVecMul(t *testing.T) {
	m := MatrixOfInts([][]int64{{1, 2}, {3, 4}})
	got := m.VecMul(VecOfInts(5, 6))
	if !got.Equal(VecOfInts(23, 34)) {
		t.Errorf("VecMul = %s", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixOfInts([][]int64{{1, 2}, {3, 4}})
	b := MatrixOfInts([][]int64{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := MatrixOfInts([][]int64{{2, 1}, {4, 3}})
	if !got.Equal(want) {
		t.Errorf("Mul =\n%s\nwant\n%s", got, want)
	}
}

func TestMatrixAddScale(t *testing.T) {
	a := MatrixOfInts([][]int64{{1, 2}})
	b := MatrixOfInts([][]int64{{3, 4}})
	if got := a.Add(b); !got.Equal(MatrixOfInts([][]int64{{4, 6}})) {
		t.Errorf("Add = %s", got)
	}
	if got := a.Scale(I(3)); !got.Equal(MatrixOfInts([][]int64{{3, 6}})) {
		t.Errorf("Scale = %s", got)
	}
}

func TestMatrixSubmatrix(t *testing.T) {
	m := MatrixOfInts([][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	got := m.Submatrix([]int{0, 2}, []int{1, 2})
	want := MatrixOfInts([][]int64{{2, 3}, {8, 9}})
	if !got.Equal(want) {
		t.Errorf("Submatrix = %s", got)
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := MatrixOfInts([][]int64{{1}})
	c := m.Clone()
	c.SetAt(0, 0, I(9))
	if m.At(0, 0).RatString() != "1" {
		t.Fatal("Clone shares state")
	}
}

func TestMatrixOfRats(t *testing.T) {
	m := MatrixOfRats([][]*Rat{{R(1, 2), R(1, 3)}})
	if m.At(0, 1).RatString() != "1/3" {
		t.Fatalf("MatrixOfRats = %s", m)
	}
}

func TestRaggedLiteralPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged literal did not panic")
		}
	}()
	MatrixOfInts([][]int64{{1, 2}, {3}})
}

// (A·B)ᵀ = Bᵀ·Aᵀ on random 2x2 integer matrices.
func TestTransposeOfProductProperty(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h int8) bool {
		m := MatrixOfInts([][]int64{{int64(a), int64(b)}, {int64(c), int64(d)}})
		n := MatrixOfInts([][]int64{{int64(e), int64(f2)}, {int64(g), int64(h)}})
		return m.Mul(n).Transpose().Equal(n.Transpose().Mul(m.Transpose()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// MulVec distributes over vector addition.
func TestMulVecDistributesProperty(t *testing.T) {
	f := func(a, b, c, d, x1, x2, y1, y2 int8) bool {
		m := MatrixOfInts([][]int64{{int64(a), int64(b)}, {int64(c), int64(d)}})
		x := VecOfInts(int64(x1), int64(x2))
		y := VecOfInts(int64(y1), int64(y2))
		return m.MulVec(x.Add(y)).Equal(m.MulVec(x).Add(m.MulVec(y)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
