package numeric

import (
	"math/rand"
	"testing"
)

func mustSolveLP(t *testing.T, lp *LP) *LPResult {
	t.Helper()
	res, err := SolveLP(lp)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLPSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  =>  opt 36 at (2, 6).
	lp := &LP{NumVars: 2, Objective: VecOfInts(3, 5)}
	lp.AddLE(VecOfInts(1, 0), I(4))
	lp.AddLE(VecOfInts(0, 2), I(12))
	lp.AddLE(VecOfInts(3, 2), I(18))
	res := mustSolveLP(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Objective.RatString() != "36" {
		t.Fatalf("objective = %s, want 36", res.Objective.RatString())
	}
	if !res.X.Equal(VecOfInts(2, 6)) {
		t.Fatalf("X = %s, want (2, 6)", res.X)
	}
}

func TestLPMinimize(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6  =>  opt at intersection
	// (8/5, 6/5), value 14/5.
	lp := &LP{NumVars: 2, Objective: VecOfInts(1, 1), Minimize: true}
	lp.AddGE(VecOfInts(1, 2), I(4))
	lp.AddGE(VecOfInts(3, 1), I(6))
	res := mustSolveLP(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Objective.RatString() != "14/5" {
		t.Fatalf("objective = %s, want 14/5", res.Objective.RatString())
	}
}

func TestLPEqualityConstraints(t *testing.T) {
	// max x s.t. x + y = 10, x - y = 4  =>  x = 7.
	lp := &LP{NumVars: 2, Objective: VecOfInts(1, 0)}
	lp.AddEQ(VecOfInts(1, 1), I(10))
	lp.AddEQ(VecOfInts(1, -1), I(4))
	res := mustSolveLP(t, lp)
	if res.Status != Optimal || res.Objective.RatString() != "7" {
		t.Fatalf("res = %v obj=%s", res.Status, res.Objective)
	}
}

func TestLPInfeasible(t *testing.T) {
	lp := &LP{NumVars: 1, Objective: VecOfInts(1)}
	lp.AddLE(VecOfInts(1), I(1))
	lp.AddGE(VecOfInts(1), I(2))
	res := mustSolveLP(t, lp)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	lp := &LP{NumVars: 2, Objective: VecOfInts(1, 1)}
	lp.AddGE(VecOfInts(1, 0), I(1))
	res := mustSolveLP(t, lp)
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestLPNegativeRHS(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	lp := &LP{NumVars: 1, Objective: VecOfInts(1)}
	lp.AddLE(VecOfInts(1), I(-1))
	res := mustSolveLP(t, lp)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}

	// -x <= -1 means x >= 1; min x gives 1.
	lp2 := &LP{NumVars: 1, Objective: VecOfInts(1), Minimize: true}
	lp2.AddLE(VecOfInts(-1), I(-1))
	res2 := mustSolveLP(t, lp2)
	if res2.Status != Optimal || res2.Objective.RatString() != "1" {
		t.Fatalf("res = %v obj=%s", res2.Status, res2.Objective)
	}
}

func TestLPFeasibilityOnly(t *testing.T) {
	lp := &LP{NumVars: 2}
	lp.AddEQ(VecOfInts(1, 1), I(1))
	res := mustSolveLP(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if got := res.X.Sum(); got.RatString() != "1" {
		t.Fatalf("x1+x2 = %s, want 1", got.RatString())
	}
}

func TestLPDegenerateNoCycle(t *testing.T) {
	// A classic degenerate LP (Beale's example scaled to rationals); Bland's
	// rule must terminate.
	lp := &LP{NumVars: 4, Objective: VecOf(R(3, 4), I(-150), R(1, 50), I(-6))}
	lp.AddLE(VecOf(R(1, 4), I(-60), Neg(R(1, 25)), I(9)), Zero())
	lp.AddLE(VecOf(R(1, 2), I(-90), Neg(R(1, 50)), I(3)), Zero())
	lp.AddLE(VecOf(Zero(), Zero(), One(), Zero()), One())
	res := mustSolveLP(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Objective.RatString() != "1/20" {
		t.Fatalf("objective = %s, want 1/20", res.Objective.RatString())
	}
}

func TestLPValidation(t *testing.T) {
	if _, err := SolveLP(&LP{NumVars: 2, Objective: VecOfInts(1)}); err == nil {
		t.Error("mismatched objective length accepted")
	}
	bad := &LP{NumVars: 2}
	bad.AddLE(VecOfInts(1), I(1))
	if _, err := SolveLP(bad); err == nil {
		t.Error("mismatched constraint length accepted")
	}
	if _, err := SolveLP(&LP{NumVars: -1}); err == nil {
		t.Error("negative NumVars accepted")
	}
}

// Property: on random feasible LPs (constraints x_i <= b_i with b_i >= 0),
// the optimum of max sum(x) is sum(b).
func TestLPBoxOptimumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		lp := &LP{NumVars: n, Objective: NewVec(n)}
		want := Zero()
		for i := 0; i < n; i++ {
			lp.Objective.SetAt(i, One())
			b := I(int64(rng.Intn(50)))
			unit := NewVec(n)
			unit.SetAt(i, One())
			lp.AddLE(unit, b)
			want = Add(want, b)
		}
		res := mustSolveLP(t, lp)
		if res.Status != Optimal || !Eq(res.Objective, want) {
			t.Fatalf("trial %d: got %v %s, want optimal %s",
				trial, res.Status, res.Objective, want.RatString())
		}
	}
}

// Property: LP duality spot-check. For random primal
// max c·x s.t. Ax <= b (b >= 0), the optimum equals the dual optimum
// min b·y s.t. Aᵀy >= c, y >= 0 (strong duality).
func TestLPStrongDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(3)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.SetAt(i, j, I(int64(rng.Intn(7)+1))) // positive => primal bounded
			}
		}
		b := NewVec(m)
		for i := 0; i < m; i++ {
			b.SetAt(i, I(int64(rng.Intn(20))))
		}
		c := NewVec(n)
		for j := 0; j < n; j++ {
			c.SetAt(j, I(int64(rng.Intn(10))))
		}

		primal := &LP{NumVars: n, Objective: c}
		for i := 0; i < m; i++ {
			primal.AddLE(a.Row(i), b.At(i))
		}
		dual := &LP{NumVars: m, Objective: b, Minimize: true}
		at := a.Transpose()
		for j := 0; j < n; j++ {
			dual.AddGE(at.Row(j), c.At(j))
		}

		pres := mustSolveLP(t, primal)
		dres := mustSolveLP(t, dual)
		if pres.Status != Optimal || dres.Status != Optimal {
			t.Fatalf("trial %d: statuses %v / %v", trial, pres.Status, dres.Status)
		}
		if !Eq(pres.Objective, dres.Objective) {
			t.Fatalf("trial %d: duality gap %s vs %s",
				trial, pres.Objective.RatString(), dres.Objective.RatString())
		}
	}
}
