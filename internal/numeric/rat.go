// Package numeric provides exact rational arithmetic, linear algebra, and
// linear programming over math/big rationals.
//
// All equilibrium verification in this repository is carried out with exact
// arithmetic: a verifier that accepts or rejects a proof must not be at the
// mercy of floating-point rounding. The package wraps *big.Rat with
// copy-discipline helpers (big.Rat values alias internal state, so every
// arithmetic helper here returns a freshly allocated result), dense vectors
// and matrices, Gaussian elimination, and a two-phase exact simplex solver.
package numeric

import (
	"fmt"
	"math/big"
)

// Rat is a convenience alias so that callers can write numeric.Rat in
// signatures without importing math/big themselves.
type Rat = big.Rat

// R returns the rational a/b. It panics if b == 0.
func R(a, b int64) *big.Rat {
	if b == 0 {
		panic("numeric: zero denominator")
	}
	return big.NewRat(a, b)
}

// I returns the rational a/1.
func I(a int64) *big.Rat {
	return big.NewRat(a, 1)
}

// Zero returns a freshly allocated zero.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a freshly allocated one.
func One() *big.Rat { return big.NewRat(1, 1) }

// Copy returns a fresh copy of x.
func Copy(x *big.Rat) *big.Rat { return new(big.Rat).Set(x) }

// Add returns a+b without mutating either operand.
func Add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

// Sub returns a-b without mutating either operand.
func Sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }

// Mul returns a*b without mutating either operand.
func Mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

// Div returns a/b without mutating either operand. It panics if b == 0.
func Div(a, b *big.Rat) *big.Rat {
	if b.Sign() == 0 {
		panic("numeric: division by zero")
	}
	return new(big.Rat).Quo(a, b)
}

// Neg returns -a without mutating the operand.
func Neg(a *big.Rat) *big.Rat { return new(big.Rat).Neg(a) }

// Min returns a fresh copy of the smaller of a and b.
func Min(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) <= 0 {
		return Copy(a)
	}
	return Copy(b)
}

// Max returns a fresh copy of the larger of a and b.
func Max(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) >= 0 {
		return Copy(a)
	}
	return Copy(b)
}

// Abs returns |a| as a fresh value.
func Abs(a *big.Rat) *big.Rat { return new(big.Rat).Abs(a) }

// Eq reports whether a == b.
func Eq(a, b *big.Rat) bool { return a.Cmp(b) == 0 }

// Le reports whether a <= b.
func Le(a, b *big.Rat) bool { return a.Cmp(b) <= 0 }

// Lt reports whether a < b.
func Lt(a, b *big.Rat) bool { return a.Cmp(b) < 0 }

// Ge reports whether a >= b.
func Ge(a, b *big.Rat) bool { return a.Cmp(b) >= 0 }

// Gt reports whether a > b.
func Gt(a, b *big.Rat) bool { return a.Cmp(b) > 0 }

// Sum returns the sum of xs as a fresh value.
func Sum(xs ...*big.Rat) *big.Rat {
	total := new(big.Rat)
	for _, x := range xs {
		total.Add(total, x)
	}
	return total
}

// Pow returns x^k for k >= 0 as a fresh value. It panics on negative k.
func Pow(x *big.Rat, k int) *big.Rat {
	if k < 0 {
		panic("numeric: negative exponent")
	}
	result := One()
	base := Copy(x)
	for k > 0 {
		if k&1 == 1 {
			result.Mul(result, base)
		}
		base.Mul(base, base)
		k >>= 1
	}
	return result
}

// Binomial returns C(n, k) as a fresh rational. It returns zero when k < 0 or
// k > n.
func Binomial(n, k int) *big.Rat {
	if k < 0 || k > n {
		return Zero()
	}
	var b big.Int
	b.Binomial(int64(n), int64(k))
	return new(big.Rat).SetInt(&b)
}

// ParseRat parses a rational from a string accepted by big.Rat.SetString
// (e.g. "3/8", "0.375", "-2").
func ParseRat(s string) (*big.Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("numeric: cannot parse rational %q", s)
	}
	return r, nil
}

// MustRat is ParseRat that panics on error; intended for constants in tests
// and examples.
func MustRat(s string) *big.Rat {
	r, err := ParseRat(s)
	if err != nil {
		panic(err)
	}
	return r
}
