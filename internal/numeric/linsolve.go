package numeric

import (
	"errors"
	"math/big"
)

// ErrInconsistent is returned by Solve when the linear system Ax = b has no
// solution.
var ErrInconsistent = errors.New("numeric: linear system is inconsistent")

// Solution describes the solution set of a linear system.
type Solution struct {
	// X is one solution of Ax = b (free variables set to zero).
	X *Vec
	// Unique reports whether X is the only solution.
	Unique bool
	// Rank is the rank of the coefficient matrix.
	Rank int
	// FreeCols lists the column indices that are free variables (empty when
	// the solution is unique).
	FreeCols []int
}

// Solve solves Ax = b by exact Gauss-Jordan elimination. It returns
// ErrInconsistent when no solution exists. When the system is
// underdetermined, the returned solution has all free variables set to zero
// and Unique is false.
func Solve(a *Matrix, b *Vec) (*Solution, error) {
	if a.Rows() != b.Len() {
		panic("numeric: system shape mismatch")
	}
	rows, cols := a.Rows(), a.Cols()

	// Build the augmented matrix [A | b] with a workspace we can mutate.
	aug := NewMatrix(rows, cols+1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			aug.at(i, j).Set(a.at(i, j))
		}
		aug.at(i, cols).Set(b.elems[i])
	}

	pivotCols := gaussJordan(aug, cols)
	rank := len(pivotCols)

	// Inconsistency: a zero row of A with non-zero augmented entry.
	for i := rank; i < rows; i++ {
		if aug.at(i, cols).Sign() != 0 {
			return nil, ErrInconsistent
		}
	}

	x := NewVec(cols)
	for r, c := range pivotCols {
		x.elems[c].Set(aug.at(r, cols))
	}

	isPivot := make([]bool, cols)
	for _, c := range pivotCols {
		isPivot[c] = true
	}
	var freeCols []int
	for j := 0; j < cols; j++ {
		if !isPivot[j] {
			freeCols = append(freeCols, j)
		}
	}

	return &Solution{X: x, Unique: rank == cols, Rank: rank, FreeCols: freeCols}, nil
}

// Rank returns the rank of a.
func Rank(a *Matrix) int {
	work := a.Clone()
	return len(gaussJordan(work, work.Cols()))
}

// gaussJordan reduces the first limit columns of m in place to reduced row
// echelon form and returns the pivot column of each pivot row, in row order.
// Columns at index >= limit (the augmented part) are carried along.
func gaussJordan(m *Matrix, limit int) []int {
	rows := m.Rows()
	var pivotCols []int
	factor := new(big.Rat)
	prod := new(big.Rat)

	row := 0
	for col := 0; col < limit && row < rows; col++ {
		// Find a pivot in this column at or below `row`.
		pivot := -1
		for r := row; r < rows; r++ {
			if m.at(r, col).Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.swapRows(row, pivot)

		// Normalize the pivot row.
		inv := new(big.Rat).Inv(m.at(row, col))
		for j := col; j < m.Cols(); j++ {
			m.at(row, j).Mul(m.at(row, j), inv)
		}

		// Eliminate the column from every other row.
		for r := 0; r < rows; r++ {
			if r == row || m.at(r, col).Sign() == 0 {
				continue
			}
			factor.Set(m.at(r, col))
			for j := col; j < m.Cols(); j++ {
				prod.Mul(factor, m.at(row, j))
				m.at(r, j).Sub(m.at(r, j), prod)
			}
		}

		pivotCols = append(pivotCols, col)
		row++
	}
	return pivotCols
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.cols; c++ {
		m.elems[i*m.cols+c], m.elems[j*m.cols+c] = m.elems[j*m.cols+c], m.elems[i*m.cols+c]
	}
}
