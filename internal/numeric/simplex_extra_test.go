package numeric

import "testing"

// These tests target the two-phase machinery's less-travelled branches:
// redundant equality constraints (phase-1 artificials that cannot be driven
// out), duplicated constraints, and zero-variable programs.

func TestLPRedundantEqualityConstraints(t *testing.T) {
	// x + y = 2 stated twice, plus 2x + 2y = 4: rank 1, two redundant rows.
	// Phase 1 must remove them rather than reporting infeasible.
	lp := &LP{NumVars: 2, Objective: VecOfInts(1, 0)}
	lp.AddEQ(VecOfInts(1, 1), I(2))
	lp.AddEQ(VecOfInts(1, 1), I(2))
	lp.AddEQ(VecOfInts(2, 2), I(4))
	res := mustSolveLP(t, lp)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Objective.RatString() != "2" {
		t.Fatalf("objective = %s, want 2 (x = 2, y = 0)", res.Objective.RatString())
	}
}

func TestLPRedundantInconsistent(t *testing.T) {
	// x + y = 2 and 2x + 2y = 5: inconsistent despite proportional rows.
	lp := &LP{NumVars: 2}
	lp.AddEQ(VecOfInts(1, 1), I(2))
	lp.AddEQ(VecOfInts(2, 2), I(5))
	res := mustSolveLP(t, lp)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPZeroVariables(t *testing.T) {
	// No variables, no constraints: trivially optimal at objective 0.
	res := mustSolveLP(t, &LP{NumVars: 0})
	if res.Status != Optimal || res.X.Len() != 0 {
		t.Fatalf("res = %+v", res)
	}
	// No variables but an unsatisfiable constraint 0 >= 1.
	bad := &LP{NumVars: 0}
	bad.AddGE(NewVec(0), I(1))
	res = mustSolveLP(t, bad)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPAllZeroObjective(t *testing.T) {
	lp := &LP{NumVars: 2, Objective: NewVec(2)}
	lp.AddLE(VecOfInts(1, 1), I(10))
	res := mustSolveLP(t, lp)
	if res.Status != Optimal || res.Objective.Sign() != 0 {
		t.Fatalf("res = %v obj=%s", res.Status, res.Objective)
	}
}

func TestLPTightEqualityAtZero(t *testing.T) {
	// x = 0 forced; maximize x gives 0.
	lp := &LP{NumVars: 1, Objective: VecOfInts(1)}
	lp.AddEQ(VecOfInts(1), Zero())
	res := mustSolveLP(t, lp)
	if res.Status != Optimal || res.Objective.Sign() != 0 {
		t.Fatalf("res = %v obj=%s", res.Status, res.Objective)
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("relation strings wrong")
	}
	if Relation(9).String() == "" || LPStatus(9).String() == "" {
		t.Error("unknown values should still render")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}
