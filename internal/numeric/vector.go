package numeric

import (
	"math/big"
	"strings"
)

// Vec is a dense vector of rationals. The zero value is an empty vector.
// Elements are owned by the vector; accessors copy on read and write so that
// callers never share *big.Rat state with the vector by accident.
type Vec struct {
	elems []*big.Rat
}

// NewVec returns a zero vector of dimension n.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("numeric: negative vector dimension")
	}
	elems := make([]*big.Rat, n)
	for i := range elems {
		elems[i] = new(big.Rat)
	}
	return &Vec{elems: elems}
}

// VecOf builds a vector copying the given elements.
func VecOf(xs ...*big.Rat) *Vec {
	v := NewVec(len(xs))
	for i, x := range xs {
		v.elems[i].Set(x)
	}
	return v
}

// VecOfInts builds a vector from integer values.
func VecOfInts(xs ...int64) *Vec {
	v := NewVec(len(xs))
	for i, x := range xs {
		v.elems[i].SetInt64(x)
	}
	return v
}

// Len returns the dimension of v.
func (v *Vec) Len() int { return len(v.elems) }

// At returns a copy of element i.
func (v *Vec) At(i int) *big.Rat { return Copy(v.elems[i]) }

// SetAt sets element i to a copy of x.
func (v *Vec) SetAt(i int, x *big.Rat) { v.elems[i].Set(x) }

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.Len())
	for i, e := range v.elems {
		c.elems[i].Set(e)
	}
	return c
}

// Equal reports whether v and w have the same dimension and elements.
func (v *Vec) Equal(w *Vec) bool {
	if v.Len() != w.Len() {
		return false
	}
	for i := range v.elems {
		if v.elems[i].Cmp(w.elems[i]) != 0 {
			return false
		}
	}
	return true
}

// Add returns v+w as a fresh vector. It panics on dimension mismatch.
func (v *Vec) Add(w *Vec) *Vec {
	v.checkDim(w)
	out := NewVec(v.Len())
	for i := range v.elems {
		out.elems[i].Add(v.elems[i], w.elems[i])
	}
	return out
}

// Sub returns v-w as a fresh vector. It panics on dimension mismatch.
func (v *Vec) Sub(w *Vec) *Vec {
	v.checkDim(w)
	out := NewVec(v.Len())
	for i := range v.elems {
		out.elems[i].Sub(v.elems[i], w.elems[i])
	}
	return out
}

// Scale returns k*v as a fresh vector.
func (v *Vec) Scale(k *big.Rat) *Vec {
	out := NewVec(v.Len())
	for i := range v.elems {
		out.elems[i].Mul(v.elems[i], k)
	}
	return out
}

// Dot returns the inner product of v and w. It panics on dimension mismatch.
func (v *Vec) Dot(w *Vec) *big.Rat {
	v.checkDim(w)
	total := new(big.Rat)
	term := new(big.Rat)
	for i := range v.elems {
		term.Mul(v.elems[i], w.elems[i])
		total.Add(total, term)
	}
	return total
}

// Sum returns the sum of the elements of v.
func (v *Vec) Sum() *big.Rat {
	total := new(big.Rat)
	for _, e := range v.elems {
		total.Add(total, e)
	}
	return total
}

// IsZero reports whether every element of v is zero.
func (v *Vec) IsZero() bool {
	for _, e := range v.elems {
		if e.Sign() != 0 {
			return false
		}
	}
	return true
}

// IsStochastic reports whether v is a probability vector: all elements in
// [0, 1] and summing to exactly 1.
func (v *Vec) IsStochastic() bool {
	one := One()
	for _, e := range v.elems {
		if e.Sign() < 0 || e.Cmp(one) > 0 {
			return false
		}
	}
	return v.Sum().Cmp(one) == 0
}

// Support returns the indices of the non-zero elements of v, in order.
func (v *Vec) Support() []int {
	var support []int
	for i, e := range v.elems {
		if e.Sign() != 0 {
			support = append(support, i)
		}
	}
	return support
}

// String renders v as "(a, b, c)".
func (v *Vec) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, e := range v.elems {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.RatString())
	}
	sb.WriteByte(')')
	return sb.String()
}

func (v *Vec) checkDim(w *Vec) {
	if v.Len() != w.Len() {
		panic("numeric: vector dimension mismatch")
	}
}
