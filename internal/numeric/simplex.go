package numeric

import (
	"fmt"
	"math/big"
)

// Relation is the comparison direction of a linear constraint.
type Relation int

// Constraint relations.
const (
	LE Relation = iota + 1 // coeffs·x <= rhs
	GE                     // coeffs·x >= rhs
	EQ                     // coeffs·x == rhs
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is a single linear constraint coeffs·x REL rhs over the
// non-negative decision variables of an LP.
type Constraint struct {
	Coeffs *Vec
	Rel    Relation
	RHS    *big.Rat
}

// LP is a linear program over n non-negative decision variables:
//
//	maximize  Objective · x
//	subject to each Constraint, x >= 0.
//
// Use Minimize to flip the objective sense.
type LP struct {
	NumVars     int
	Objective   *Vec // maximized; nil means feasibility only
	Minimize    bool
	Constraints []Constraint
}

// LPStatus classifies the outcome of solving an LP.
type LPStatus int

// LP outcomes.
const (
	Optimal LPStatus = iota + 1
	Infeasible
	Unbounded
)

func (s LPStatus) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("LPStatus(%d)", int(s))
	}
}

// LPResult is the outcome of SolveLP. X and Objective are set only when
// Status == Optimal.
type LPResult struct {
	Status    LPStatus
	X         *Vec
	Objective *big.Rat
}

// AddLE appends coeffs·x <= rhs.
func (lp *LP) AddLE(coeffs *Vec, rhs *big.Rat) {
	lp.Constraints = append(lp.Constraints, Constraint{Coeffs: coeffs.Clone(), Rel: LE, RHS: Copy(rhs)})
}

// AddGE appends coeffs·x >= rhs.
func (lp *LP) AddGE(coeffs *Vec, rhs *big.Rat) {
	lp.Constraints = append(lp.Constraints, Constraint{Coeffs: coeffs.Clone(), Rel: GE, RHS: Copy(rhs)})
}

// AddEQ appends coeffs·x == rhs.
func (lp *LP) AddEQ(coeffs *Vec, rhs *big.Rat) {
	lp.Constraints = append(lp.Constraints, Constraint{Coeffs: coeffs.Clone(), Rel: EQ, RHS: Copy(rhs)})
}

// SolveLP solves the LP with the exact two-phase simplex method using
// Bland's anti-cycling rule. All arithmetic is over rationals, so the
// returned optimum is exact.
func SolveLP(lp *LP) (*LPResult, error) {
	if lp.NumVars < 0 {
		return nil, fmt.Errorf("numeric: negative variable count %d", lp.NumVars)
	}
	if lp.Objective != nil && lp.Objective.Len() != lp.NumVars {
		return nil, fmt.Errorf("numeric: objective has %d coefficients for %d variables",
			lp.Objective.Len(), lp.NumVars)
	}
	for i, c := range lp.Constraints {
		if c.Coeffs.Len() != lp.NumVars {
			return nil, fmt.Errorf("numeric: constraint %d has %d coefficients for %d variables",
				i, c.Coeffs.Len(), lp.NumVars)
		}
	}

	t := newTableau(lp)
	if status := t.phase1(); status == Infeasible {
		return &LPResult{Status: Infeasible}, nil
	}
	status := t.phase2()
	if status == Unbounded {
		return &LPResult{Status: Unbounded}, nil
	}

	x := NewVec(lp.NumVars)
	for row, v := range t.basis {
		if v < lp.NumVars {
			x.SetAt(v, t.rhs(row))
		}
	}
	obj := new(big.Rat)
	if lp.Objective != nil {
		obj = lp.Objective.Dot(x)
	}
	return &LPResult{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau. Columns are laid out as
// [decision vars | slack/surplus vars | artificial vars | rhs]. Row i of
// rows is a constraint row; cost1 and cost2 are the phase-1 and phase-2
// reduced-cost rows (cost2 holds the negated maximization objective so both
// phases minimize).
type tableau struct {
	nVars   int
	nCols   int // total columns excluding rhs
	artLo   int // first artificial column index
	rows    [][]*big.Rat
	basis   []int
	cost1   []*big.Rat
	cost2   []*big.Rat
	hasArts bool
}

func newTableau(lp *LP) *tableau {
	m := len(lp.Constraints)

	// Count slack/surplus and artificial columns.
	nSlack, nArt := 0, 0
	for _, c := range lp.Constraints {
		rhsNeg := c.RHS.Sign() < 0
		rel := c.Rel
		if rhsNeg {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	t := &tableau{
		nVars:   lp.NumVars,
		nCols:   lp.NumVars + nSlack + nArt,
		artLo:   lp.NumVars + nSlack,
		rows:    make([][]*big.Rat, m),
		basis:   make([]int, m),
		hasArts: nArt > 0,
	}

	slackAt := lp.NumVars
	artAt := t.artLo
	for i, c := range lp.Constraints {
		row := make([]*big.Rat, t.nCols+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		sign := int64(1)
		rel := c.Rel
		if c.RHS.Sign() < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j := 0; j < lp.NumVars; j++ {
			row[j].Mul(c.Coeffs.At(j), big.NewRat(sign, 1))
		}
		row[t.nCols].Mul(c.RHS, big.NewRat(sign, 1))

		switch rel {
		case LE:
			row[slackAt].SetInt64(1)
			t.basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt].SetInt64(-1)
			slackAt++
			row[artAt].SetInt64(1)
			t.basis[i] = artAt
			artAt++
		case EQ:
			row[artAt].SetInt64(1)
			t.basis[i] = artAt
			artAt++
		}
		t.rows[i] = row
	}

	// Phase-2 cost row: minimize -objective (i.e. maximize objective).
	t.cost2 = make([]*big.Rat, t.nCols+1)
	for j := range t.cost2 {
		t.cost2[j] = new(big.Rat)
	}
	if lp.Objective != nil {
		for j := 0; j < lp.NumVars; j++ {
			if lp.Minimize {
				t.cost2[j].Set(lp.Objective.At(j))
			} else {
				t.cost2[j].Neg(lp.Objective.At(j))
			}
		}
	}

	// Phase-1 cost row: minimize the sum of artificials. Start with cost 1 on
	// each artificial column, then price out the basic artificials.
	t.cost1 = make([]*big.Rat, t.nCols+1)
	for j := range t.cost1 {
		t.cost1[j] = new(big.Rat)
	}
	for j := t.artLo; j < t.nCols; j++ {
		t.cost1[j].SetInt64(1)
	}
	for i, v := range t.basis {
		if v >= t.artLo {
			subRow(t.cost1, t.rows[i])
		}
	}
	return t
}

func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) rhs(row int) *big.Rat { return Copy(t.rows[row][t.nCols]) }

// phase1 drives the artificial variables to zero. It returns Infeasible when
// that is impossible.
func (t *tableau) phase1() LPStatus {
	if !t.hasArts {
		return Optimal
	}
	t.minimize(t.cost1, t.nCols) // cannot be unbounded: objective >= 0

	// The phase-1 objective value is -cost1[rhs]; infeasible when non-zero.
	if t.cost1[t.nCols].Sign() != 0 {
		return Infeasible
	}

	// Drive any remaining basic artificials out of the basis.
	for i := 0; i < len(t.basis); i++ {
		if t.basis[i] < t.artLo {
			continue
		}
		pivoted := false
		for j := 0; j < t.artLo; j++ {
			if t.rows[i][j].Sign() != 0 {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint row: remove it.
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			t.basis = append(t.basis[:i], t.basis[i+1:]...)
			i--
		}
	}
	return Optimal
}

// phase2 optimizes the true objective over the feasible region, with
// artificial columns barred from entering.
func (t *tableau) phase2() LPStatus {
	return t.minimize(t.cost2, t.artLo)
}

// minimize runs simplex iterations on the given cost row, considering only
// entering columns < colLimit, until optimal or unbounded.
func (t *tableau) minimize(cost []*big.Rat, colLimit int) LPStatus {
	for {
		// Bland's rule: entering column is the lowest index with a negative
		// reduced cost.
		enter := -1
		for j := 0; j < colLimit; j++ {
			if cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Ratio test, tie-broken by the lowest basis variable index.
		leave := -1
		best := new(big.Rat)
		ratio := new(big.Rat)
		for i, row := range t.rows {
			if row[enter].Sign() <= 0 {
				continue
			}
			ratio.Quo(row[t.nCols], row[enter])
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best.Set(ratio)
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	inv := new(big.Rat).Inv(pr[col])
	for j := range pr {
		pr[j].Mul(pr[j], inv)
	}
	for i, r := range t.rows {
		if i != row {
			elimRow(r, pr, col)
		}
	}
	elimRow(t.cost1, pr, col)
	elimRow(t.cost2, pr, col)
	t.basis[row] = col
}

// elimRow subtracts factor*pivotRow from row so that row[col] becomes zero,
// where factor = row[col].
func elimRow(row, pivotRow []*big.Rat, col int) {
	if row[col].Sign() == 0 {
		return
	}
	factor := Copy(row[col])
	prod := new(big.Rat)
	for j := range row {
		prod.Mul(factor, pivotRow[j])
		row[j].Sub(row[j], prod)
	}
}

// subRow subtracts other from row element-wise.
func subRow(row, other []*big.Rat) {
	for j := range row {
		row[j].Sub(row[j], other[j])
	}
}
