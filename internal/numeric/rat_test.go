package numeric

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestRBasics(t *testing.T) {
	if got := R(3, 8); got.RatString() != "3/8" {
		t.Fatalf("R(3,8) = %s, want 3/8", got.RatString())
	}
	if got := I(5); got.RatString() != "5" {
		t.Fatalf("I(5) = %s, want 5", got.RatString())
	}
	if Zero().Sign() != 0 {
		t.Fatal("Zero() is not zero")
	}
	if One().Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatal("One() is not one")
	}
}

func TestRPanicsOnZeroDenominator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R(1, 0) did not panic")
		}
	}()
	R(1, 0)
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(One(), Zero())
}

func TestArithmeticDoesNotAlias(t *testing.T) {
	a, b := R(1, 2), R(1, 3)
	sum := Add(a, b)
	if a.RatString() != "1/2" || b.RatString() != "1/3" {
		t.Fatal("Add mutated its operands")
	}
	if sum.RatString() != "5/6" {
		t.Fatalf("Add(1/2, 1/3) = %s, want 5/6", sum.RatString())
	}
	sum.SetInt64(99)
	if a.RatString() != "1/2" {
		t.Fatal("result aliases operand")
	}
}

func TestSubMulDivNeg(t *testing.T) {
	if got := Sub(R(3, 4), R(1, 4)); got.RatString() != "1/2" {
		t.Fatalf("Sub = %s", got.RatString())
	}
	if got := Mul(R(2, 3), R(3, 4)); got.RatString() != "1/2" {
		t.Fatalf("Mul = %s", got.RatString())
	}
	if got := Div(R(1, 2), R(1, 4)); got.RatString() != "2" {
		t.Fatalf("Div = %s", got.RatString())
	}
	if got := Neg(R(1, 2)); got.RatString() != "-1/2" {
		t.Fatalf("Neg = %s", got.RatString())
	}
}

func TestMinMaxAbs(t *testing.T) {
	a, b := R(-1, 2), R(1, 3)
	if got := Min(a, b); got.Cmp(a) != 0 {
		t.Fatalf("Min = %s", got.RatString())
	}
	if got := Max(a, b); got.Cmp(b) != 0 {
		t.Fatalf("Max = %s", got.RatString())
	}
	if got := Abs(a); got.RatString() != "1/2" {
		t.Fatalf("Abs = %s", got.RatString())
	}
}

func TestComparators(t *testing.T) {
	a, b := R(1, 3), R(1, 2)
	if !Lt(a, b) || !Le(a, b) || !Le(a, a) || !Eq(a, a) {
		t.Fatal("Lt/Le/Eq misbehave")
	}
	if !Gt(b, a) || !Ge(b, a) || !Ge(b, b) {
		t.Fatal("Gt/Ge misbehave")
	}
	if Eq(a, b) || Lt(b, a) || Gt(a, b) {
		t.Fatal("false positives in comparators")
	}
}

func TestSum(t *testing.T) {
	got := Sum(R(1, 2), R(1, 3), R(1, 6))
	if got.Cmp(One()) != 0 {
		t.Fatalf("Sum = %s, want 1", got.RatString())
	}
	if Sum().Sign() != 0 {
		t.Fatal("empty Sum is not zero")
	}
}

func TestPow(t *testing.T) {
	if got := Pow(R(1, 2), 3); got.RatString() != "1/8" {
		t.Fatalf("Pow(1/2, 3) = %s", got.RatString())
	}
	if got := Pow(R(7, 3), 0); got.Cmp(One()) != 0 {
		t.Fatalf("Pow(x, 0) = %s", got.RatString())
	}
	if got := Pow(I(-2), 3); got.RatString() != "-8" {
		t.Fatalf("Pow(-2, 3) = %s", got.RatString())
	}
}

func TestPowPanicsOnNegativeExponent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow with negative exponent did not panic")
		}
	}()
	Pow(One(), -1)
}

func TestPowMatchesRepeatedMultiplication(t *testing.T) {
	f := func(num int16, k uint8) bool {
		x := R(int64(num), 7)
		exp := int(k % 12)
		want := One()
		for i := 0; i < exp; i++ {
			want = Mul(want, x)
		}
		return Eq(Pow(x, exp), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {20, 10, 184756},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(I(c.want)) != 0 {
			t.Errorf("Binomial(%d,%d) = %s, want %d", c.n, c.k, got.RatString(), c.want)
		}
	}
	if Binomial(5, -1).Sign() != 0 || Binomial(5, 6).Sign() != 0 {
		t.Error("out-of-range Binomial should be zero")
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	f := func(n, k uint8) bool {
		nn, kk := int(n%30)+1, int(k%32)
		lhs := Binomial(nn, kk)
		rhs := Add(Binomial(nn-1, kk-1), Binomial(nn-1, kk))
		return Eq(lhs, rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRat(t *testing.T) {
	for _, s := range []string{"3/8", "0.375", "-2", "1"} {
		if _, err := ParseRat(s); err != nil {
			t.Errorf("ParseRat(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseRat("not-a-number"); err == nil {
		t.Error("ParseRat accepted garbage")
	}
	if got := MustRat("3/8"); got.RatString() != "3/8" {
		t.Errorf("MustRat = %s", got.RatString())
	}
}

func TestMustRatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRat did not panic on garbage")
		}
	}()
	MustRat("zzz")
}
