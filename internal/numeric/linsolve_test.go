package numeric

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveUniqueSystem(t *testing.T) {
	// x + y = 3; x - y = 1  =>  x = 2, y = 1.
	a := MatrixOfInts([][]int64{{1, 1}, {1, -1}})
	b := VecOfInts(3, 1)
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Unique || sol.Rank != 2 {
		t.Fatalf("unique=%v rank=%d", sol.Unique, sol.Rank)
	}
	if !sol.X.Equal(VecOfInts(2, 1)) {
		t.Fatalf("X = %s", sol.X)
	}
}

func TestSolveRationalSystem(t *testing.T) {
	// 2x + 3y = 1; 4x + 9y = 2  =>  x = 1/2, y = 0.
	a := MatrixOfInts([][]int64{{2, 3}, {4, 9}})
	b := VecOfInts(1, 2)
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X.Equal(VecOf(R(1, 2), Zero())) {
		t.Fatalf("X = %s", sol.X)
	}
}

func TestSolveInconsistent(t *testing.T) {
	a := MatrixOfInts([][]int64{{1, 1}, {1, 1}})
	b := VecOfInts(1, 2)
	_, err := Solve(a, b)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestSolveUnderdetermined(t *testing.T) {
	a := MatrixOfInts([][]int64{{1, 1, 1}})
	b := VecOfInts(5)
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Unique {
		t.Fatal("1 equation, 3 unknowns should not be unique")
	}
	if sol.Rank != 1 || len(sol.FreeCols) != 2 {
		t.Fatalf("rank=%d free=%v", sol.Rank, sol.FreeCols)
	}
	// The particular solution must still satisfy the system.
	if got := a.MulVec(sol.X); !got.Equal(b) {
		t.Fatalf("A·x = %s, want %s", got, b)
	}
}

func TestSolveOverdeterminedConsistent(t *testing.T) {
	// Three consistent equations in two unknowns.
	a := MatrixOfInts([][]int64{{1, 0}, {0, 1}, {1, 1}})
	b := VecOfInts(2, 3, 5)
	sol, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.X.Equal(VecOfInts(2, 3)) || !sol.Unique {
		t.Fatalf("X = %s unique=%v", sol.X, sol.Unique)
	}
}

func TestSolveZeroSystem(t *testing.T) {
	sol, err := Solve(NewMatrix(2, 2), NewVec(2))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Unique || sol.Rank != 0 || !sol.X.IsZero() {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want int
	}{
		{MatrixOfInts([][]int64{{1, 2}, {2, 4}}), 1},
		{MatrixOfInts([][]int64{{1, 0}, {0, 1}}), 2},
		{NewMatrix(3, 3), 0},
		{MatrixOfInts([][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}), 2},
	}
	for i, c := range cases {
		if got := Rank(c.m); got != c.want {
			t.Errorf("case %d: Rank = %d, want %d", i, got, c.want)
		}
	}
}

// Property: for random square systems with a planted solution, Solve recovers
// a vector that satisfies the system exactly.
func TestSolveSatisfiesSystemProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.SetAt(i, j, I(int64(rng.Intn(21)-10)))
			}
		}
		planted := NewVec(n)
		for i := 0; i < n; i++ {
			planted.SetAt(i, R(int64(rng.Intn(21)-10), int64(1+rng.Intn(9))))
		}
		b := a.MulVec(planted)
		sol, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: planted system reported inconsistent", trial)
		}
		if got := a.MulVec(sol.X); !got.Equal(b) {
			t.Fatalf("trial %d: A·x != b", trial)
		}
		if sol.Unique && !sol.X.Equal(planted) {
			t.Fatalf("trial %d: unique solution differs from planted", trial)
		}
	}
}

// Property: rank is invariant under transposition for small random matrices.
func TestRankTransposeInvariantProperty(t *testing.T) {
	f := func(a, b, c, d, e, f2 int8) bool {
		m := MatrixOfInts([][]int64{
			{int64(a), int64(b), int64(c)},
			{int64(d), int64(e), int64(f2)},
		})
		return Rank(m) == Rank(m.Transpose())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
