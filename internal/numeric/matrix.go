package numeric

import (
	"math/big"
	"strings"
)

// Matrix is a dense rows×cols matrix of rationals. Elements are owned by the
// matrix; accessors copy on read and write.
type Matrix struct {
	rows, cols int
	elems      []*big.Rat // row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: negative matrix dimension")
	}
	elems := make([]*big.Rat, rows*cols)
	for i := range elems {
		elems[i] = new(big.Rat)
	}
	return &Matrix{rows: rows, cols: cols, elems: elems}
}

// MatrixOfInts builds a matrix from integer rows. All rows must have equal
// length.
func MatrixOfInts(rows [][]int64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic("numeric: ragged matrix literal")
		}
		for j, x := range row {
			m.elems[i*m.cols+j].SetInt64(x)
		}
	}
	return m
}

// MatrixOfRats builds a matrix copying rational rows. All rows must have
// equal length.
func MatrixOfRats(rows [][]*big.Rat) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic("numeric: ragged matrix literal")
		}
		for j, x := range row {
			m.elems[i*m.cols+j].Set(x)
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns a copy of element (i, j).
func (m *Matrix) At(i, j int) *big.Rat { return Copy(m.at(i, j)) }

// SetAt sets element (i, j) to a copy of x.
func (m *Matrix) SetAt(i, j int, x *big.Rat) { m.at(i, j).Set(x) }

func (m *Matrix) at(i, j int) *big.Rat {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic("numeric: matrix index out of range")
	}
	return m.elems[i*m.cols+j]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	for i, e := range m.elems {
		c.elems[i].Set(e)
	}
	return c
}

// Equal reports whether m and n have the same shape and elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.elems {
		if m.elems[i].Cmp(n.elems[i]) != 0 {
			return false
		}
	}
	return true
}

// Row returns row i as a fresh vector.
func (m *Matrix) Row(i int) *Vec {
	v := NewVec(m.cols)
	for j := 0; j < m.cols; j++ {
		v.elems[j].Set(m.at(i, j))
	}
	return v
}

// Col returns column j as a fresh vector.
func (m *Matrix) Col(j int) *Vec {
	v := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		v.elems[i].Set(m.at(i, j))
	}
	return v
}

// Transpose returns the transpose of m as a fresh matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.at(j, i).Set(m.at(i, j))
		}
	}
	return t
}

// MulVec returns m·v as a fresh vector. It panics if v.Len() != m.Cols().
func (m *Matrix) MulVec(v *Vec) *Vec {
	if v.Len() != m.cols {
		panic("numeric: matrix-vector dimension mismatch")
	}
	out := NewVec(m.rows)
	term := new(big.Rat)
	for i := 0; i < m.rows; i++ {
		acc := out.elems[i]
		for j := 0; j < m.cols; j++ {
			term.Mul(m.at(i, j), v.elems[j])
			acc.Add(acc, term)
		}
	}
	return out
}

// VecMul returns vᵀ·m as a fresh vector. It panics if v.Len() != m.Rows().
func (m *Matrix) VecMul(v *Vec) *Vec {
	if v.Len() != m.rows {
		panic("numeric: vector-matrix dimension mismatch")
	}
	out := NewVec(m.cols)
	term := new(big.Rat)
	for j := 0; j < m.cols; j++ {
		acc := out.elems[j]
		for i := 0; i < m.rows; i++ {
			term.Mul(v.elems[i], m.at(i, j))
			acc.Add(acc, term)
		}
	}
	return out
}

// Mul returns m·n as a fresh matrix. It panics if m.Cols() != n.Rows().
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic("numeric: matrix-matrix dimension mismatch")
	}
	out := NewMatrix(m.rows, n.cols)
	term := new(big.Rat)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < n.cols; j++ {
			acc := out.at(i, j)
			for k := 0; k < m.cols; k++ {
				term.Mul(m.at(i, k), n.at(k, j))
				acc.Add(acc, term)
			}
		}
	}
	return out
}

// Scale returns k*m as a fresh matrix.
func (m *Matrix) Scale(k *big.Rat) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i, e := range m.elems {
		out.elems[i].Mul(e, k)
	}
	return out
}

// Add returns m+n as a fresh matrix. It panics on shape mismatch.
func (m *Matrix) Add(n *Matrix) *Matrix {
	if m.rows != n.rows || m.cols != n.cols {
		panic("numeric: matrix shape mismatch")
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.elems {
		out.elems[i].Add(m.elems[i], n.elems[i])
	}
	return out
}

// Submatrix returns the matrix restricted to the given row and column index
// sets, in the given order.
func (m *Matrix) Submatrix(rowIdx, colIdx []int) *Matrix {
	out := NewMatrix(len(rowIdx), len(colIdx))
	for i, r := range rowIdx {
		for j, c := range colIdx {
			out.at(i, j).Set(m.at(r, c))
		}
	}
	return out
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(m.at(i, j).RatString())
		}
		sb.WriteByte(']')
	}
	return sb.String()
}
