// Package reputation implements the trust layer of the rationality
// authority: verifiers are "trustable service providers that profit from
// selling general purpose verification procedures ... and therefore would
// like to have a good long-lasting reputation". The paper notes "the
// possibility of having several verifiers, such that their majority is
// trusted. The reputation of the verifiers can be updated according to the
// (majority of their) results", and that dishonest inventors, agents, and
// verifiers "can be reported to a reputation system that audits their
// actions".
//
// This package provides exactly that: a concurrent-safe registry of
// reputation scores, majority voting across verifier verdicts with
// automatic agreement-based score updates, and an append-only audit log of
// misbehaviour reports.
package reputation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Score tracks a party's track record. The reputation estimate is the
// Laplace-smoothed success rate (Agreements+1)/(Total+2), so unknown parties
// start at 1/2 and a single observation cannot saturate trust.
type Score struct {
	Agreements    int
	Disagreements int
	// Unresponsive counts timeouts: the party was asked and never answered.
	// Silence is weaker evidence than a wrong answer — a network partition
	// looks identical to a stalling adversary — so unresponsiveness drags
	// the denominator at half weight and only up to UnresponsiveCap, giving
	// a dead-but-honest party a bounded floor a liar falls straight through.
	Unresponsive int
}

// UnresponsiveWeight is the denominator weight of one unresponsive report
// relative to a disagreement (which weighs 1).
const UnresponsiveWeight = 0.5

// UnresponsiveCap bounds how many unresponsive reports count against a
// party. At the cap, an otherwise-clean party's reputation floors at
// 1/(2+Cap·Weight) = 0.2 — below most quorum thresholds but above where a
// proven liar lands, so timeouts alone degrade trust without forging
// evidence of dishonesty.
const UnresponsiveCap = 6

// Reputation returns the smoothed estimate in (0, 1).
func (s Score) Reputation() float64 {
	penalty := float64(min(s.Unresponsive, UnresponsiveCap)) * UnresponsiveWeight
	return float64(s.Agreements+1) / (float64(s.Agreements+s.Disagreements+2) + penalty)
}

// Registry is a concurrent-safe reputation store keyed by party identifier.
// The zero value is NOT usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	scores map[string]Score
	log    []Event
	now    func() time.Time
}

// Event is one audit-log entry.
type Event struct {
	Time    time.Time
	Party   string
	Kind    EventKind
	Details string
}

// EventKind classifies audit events.
type EventKind int

// Audit event kinds.
const (
	// Agreed: the party's verdict matched the majority.
	Agreed EventKind = iota + 1
	// Disagreed: the party's verdict contradicted the majority.
	Disagreed
	// Misbehaved: a verifiable offence (forged proof, false advice, broken
	// commitment) with evidence in Details.
	Misbehaved
	// Unresponsive: the party timed out when consulted. Counted at reduced,
	// capped weight — see Score.Unresponsive.
	Unresponsive
)

func (k EventKind) String() string {
	switch k {
	case Agreed:
		return "agreed"
	case Disagreed:
		return "disagreed"
	case Misbehaved:
		return "misbehaved"
	case Unresponsive:
		return "unresponsive"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// NewRegistry creates an empty registry using wall-clock time.
func NewRegistry() *Registry {
	return NewRegistryWithClock(time.Now)
}

// NewRegistryWithClock creates a registry with an injectable clock for
// deterministic tests.
func NewRegistryWithClock(now func() time.Time) *Registry {
	return &Registry{scores: make(map[string]Score), now: now}
}

// Reputation returns the party's current smoothed reputation (1/2 for
// unknown parties).
func (r *Registry) Reputation(party string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scores[party].Reputation()
}

// Score returns the raw score of a party.
func (r *Registry) Score(party string) Score {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scores[party]
}

// Trusted reports whether the party's reputation meets the threshold.
func (r *Registry) Trusted(party string, threshold float64) bool {
	return r.Reputation(party) >= threshold
}

// ReportAgreement records whether a party agreed with the majority.
func (r *Registry) ReportAgreement(party string, agreed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scores[party]
	kind := Agreed
	if agreed {
		s.Agreements++
	} else {
		s.Disagreements++
		kind = Disagreed
	}
	r.scores[party] = s
	r.log = append(r.log, Event{Time: r.now(), Party: party, Kind: kind})
}

// ReportMisbehaviour records a verifiable offence with evidence. It counts
// as a disagreement with honesty and is logged with the evidence so the
// party "can be excluded from acting in games" (§7).
func (r *Registry) ReportMisbehaviour(party, evidence string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scores[party]
	s.Disagreements++
	r.scores[party] = s
	r.log = append(r.log, Event{Time: r.now(), Party: party, Kind: Misbehaved, Details: evidence})
}

// ReportUnresponsive records that a party timed out when consulted, with
// the circumstances in evidence. Unlike ReportMisbehaviour this is NOT
// proof of dishonesty — the charge is half-weight and capped (see
// Score.Unresponsive), so repeated timeouts decay trust more slowly than
// lying and bottom out instead of saturating.
func (r *Registry) ReportUnresponsive(party, evidence string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scores[party]
	s.Unresponsive++
	r.scores[party] = s
	r.log = append(r.log, Event{Time: r.now(), Party: party, Kind: Unresponsive, Details: evidence})
}

// Events returns a copy of the audit log in chronological order.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.log...)
}

// Parties returns the known party identifiers sorted by descending
// reputation (then lexicographically for determinism).
func (r *Registry) Parties() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.scores))
	for p := range r.scores {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := r.scores[out[i]].Reputation(), r.scores[out[j]].Reputation()
		if ri != rj {
			return ri > rj
		}
		return out[i] < out[j]
	})
	return out
}

// ErrNoVerdicts is returned by MajorityVote when no verdicts are supplied.
var ErrNoVerdicts = errors.New("reputation: no verdicts to vote on")

// ErrTie is returned by MajorityVote and WeightedVote when neither the
// vote counts nor the voters' aggregate reputations separate the sides.
var ErrTie = errors.New("reputation: verdicts tied; no majority")

// voters returns the parties of a verdict map in sorted order. Both the
// weight sums and the audit log must not depend on map iteration order:
// float addition is not associative, so summing reputations in a random
// order could flip a hairline weight comparison between runs of the very
// same vote.
func voters(verdicts map[string]bool) []string {
	parties := make([]string, 0, len(verdicts))
	for p := range verdicts {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	return parties
}

// tally sums each side of a vote: how many verifiers voted accept/reject
// and the aggregate current reputation behind each side, accumulated in
// sorted-party order for run-to-run determinism.
func (r *Registry) tally(verdicts map[string]bool) (accepts, rejects int, acceptW, rejectW float64) {
	for _, party := range voters(verdicts) {
		w := r.Reputation(party)
		if verdicts[party] {
			accepts++
			acceptW += w
		} else {
			rejects++
			rejectW += w
		}
	}
	return accepts, rejects, acceptW, rejectW
}

// record updates every voter's reputation by agreement with the outcome,
// in sorted order so the audit log is deterministic.
func (r *Registry) record(verdicts map[string]bool, outcome bool) {
	for _, party := range voters(verdicts) {
		r.ReportAgreement(party, verdicts[party] == outcome)
	}
}

// MajorityVote aggregates per-verifier accept/reject verdicts: the majority
// outcome wins and each verifier's reputation is updated by agreement with
// it. An even split is broken by the voters' aggregate current reputations
// — the side backed by more earned trust wins, so even-sized quorums
// degrade gracefully instead of erroring — and only when the reputations
// tie too is nothing updated and ErrTie returned: the agent should consult
// more verifiers.
func (r *Registry) MajorityVote(verdicts map[string]bool) (bool, error) {
	if len(verdicts) == 0 {
		return false, ErrNoVerdicts
	}
	accepts, rejects, acceptW, rejectW := r.tally(verdicts)
	var outcome bool
	switch {
	case accepts != rejects:
		outcome = accepts > rejects
	case acceptW != rejectW:
		outcome = acceptW > rejectW
	default:
		return false, ErrTie
	}
	r.record(verdicts, outcome)
	return outcome, nil
}

// WeightedVote aggregates verdicts with each vote weighted by the voter's
// current reputation — the paper's "majority of the verifiers is trusted"
// with trust made quantitative: a verifier that has lied before moves the
// outcome less than one with a clean record. A weight tie falls back to
// raw counts; ErrTie is returned only when both tie, and then nothing is
// updated. On success every voter's reputation is updated by agreement
// with the outcome, so a dissenting verifier's reputation decays.
func (r *Registry) WeightedVote(verdicts map[string]bool) (bool, error) {
	if len(verdicts) == 0 {
		return false, ErrNoVerdicts
	}
	accepts, rejects, acceptW, rejectW := r.tally(verdicts)
	var outcome bool
	switch {
	case acceptW != rejectW:
		outcome = acceptW > rejectW
	case accepts != rejects:
		outcome = accepts > rejects
	default:
		return false, ErrTie
	}
	r.record(verdicts, outcome)
	return outcome, nil
}
