// Package reputation implements the trust layer of the rationality
// authority: verifiers are "trustable service providers that profit from
// selling general purpose verification procedures ... and therefore would
// like to have a good long-lasting reputation". The paper notes "the
// possibility of having several verifiers, such that their majority is
// trusted. The reputation of the verifiers can be updated according to the
// (majority of their) results", and that dishonest inventors, agents, and
// verifiers "can be reported to a reputation system that audits their
// actions".
//
// This package provides exactly that: a concurrent-safe registry of
// reputation scores, majority voting across verifier verdicts with
// automatic agreement-based score updates, and an append-only audit log of
// misbehaviour reports.
package reputation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Score tracks a party's track record. The reputation estimate is the
// Laplace-smoothed success rate (Agreements+1)/(Total+2), so unknown parties
// start at 1/2 and a single observation cannot saturate trust.
type Score struct {
	Agreements    int
	Disagreements int
}

// Reputation returns the smoothed estimate in (0, 1).
func (s Score) Reputation() float64 {
	return float64(s.Agreements+1) / float64(s.Agreements+s.Disagreements+2)
}

// Registry is a concurrent-safe reputation store keyed by party identifier.
// The zero value is NOT usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	scores map[string]Score
	log    []Event
	now    func() time.Time
}

// Event is one audit-log entry.
type Event struct {
	Time    time.Time
	Party   string
	Kind    EventKind
	Details string
}

// EventKind classifies audit events.
type EventKind int

// Audit event kinds.
const (
	// Agreed: the party's verdict matched the majority.
	Agreed EventKind = iota + 1
	// Disagreed: the party's verdict contradicted the majority.
	Disagreed
	// Misbehaved: a verifiable offence (forged proof, false advice, broken
	// commitment) with evidence in Details.
	Misbehaved
)

func (k EventKind) String() string {
	switch k {
	case Agreed:
		return "agreed"
	case Disagreed:
		return "disagreed"
	case Misbehaved:
		return "misbehaved"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// NewRegistry creates an empty registry using wall-clock time.
func NewRegistry() *Registry {
	return NewRegistryWithClock(time.Now)
}

// NewRegistryWithClock creates a registry with an injectable clock for
// deterministic tests.
func NewRegistryWithClock(now func() time.Time) *Registry {
	return &Registry{scores: make(map[string]Score), now: now}
}

// Reputation returns the party's current smoothed reputation (1/2 for
// unknown parties).
func (r *Registry) Reputation(party string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scores[party].Reputation()
}

// Score returns the raw score of a party.
func (r *Registry) Score(party string) Score {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scores[party]
}

// Trusted reports whether the party's reputation meets the threshold.
func (r *Registry) Trusted(party string, threshold float64) bool {
	return r.Reputation(party) >= threshold
}

// ReportAgreement records whether a party agreed with the majority.
func (r *Registry) ReportAgreement(party string, agreed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scores[party]
	kind := Agreed
	if agreed {
		s.Agreements++
	} else {
		s.Disagreements++
		kind = Disagreed
	}
	r.scores[party] = s
	r.log = append(r.log, Event{Time: r.now(), Party: party, Kind: kind})
}

// ReportMisbehaviour records a verifiable offence with evidence. It counts
// as a disagreement with honesty and is logged with the evidence so the
// party "can be excluded from acting in games" (§7).
func (r *Registry) ReportMisbehaviour(party, evidence string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scores[party]
	s.Disagreements++
	r.scores[party] = s
	r.log = append(r.log, Event{Time: r.now(), Party: party, Kind: Misbehaved, Details: evidence})
}

// Events returns a copy of the audit log in chronological order.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.log...)
}

// Parties returns the known party identifiers sorted by descending
// reputation (then lexicographically for determinism).
func (r *Registry) Parties() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.scores))
	for p := range r.scores {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := r.scores[out[i]].Reputation(), r.scores[out[j]].Reputation()
		if ri != rj {
			return ri > rj
		}
		return out[i] < out[j]
	})
	return out
}

// ErrNoVerdicts is returned by MajorityVote when no verdicts are supplied.
var ErrNoVerdicts = errors.New("reputation: no verdicts to vote on")

// ErrTie is returned by MajorityVote on an exact tie.
var ErrTie = errors.New("reputation: verdicts tied; no majority")

// MajorityVote aggregates per-verifier accept/reject verdicts: the majority
// outcome wins, each verifier's reputation is updated by agreement with the
// majority, and the outcome is returned. On a tie nothing is updated and
// ErrTie is returned — the agent should consult more verifiers.
func (r *Registry) MajorityVote(verdicts map[string]bool) (bool, error) {
	if len(verdicts) == 0 {
		return false, ErrNoVerdicts
	}
	accepts := 0
	for _, v := range verdicts {
		if v {
			accepts++
		}
	}
	rejects := len(verdicts) - accepts
	if accepts == rejects {
		return false, ErrTie
	}
	outcome := accepts > rejects
	for party, v := range verdicts {
		r.ReportAgreement(party, v == outcome)
	}
	return outcome, nil
}
