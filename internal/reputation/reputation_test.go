package reputation

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 6, 11, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestUnknownPartyStartsAtHalf(t *testing.T) {
	r := NewRegistry()
	if got := r.Reputation("nobody"); got != 0.5 {
		t.Errorf("reputation = %f, want 0.5", got)
	}
	if r.Trusted("nobody", 0.6) {
		t.Error("unknown party should not clear a 0.6 threshold")
	}
	if !r.Trusted("nobody", 0.5) {
		t.Error("unknown party should clear a 0.5 threshold")
	}
}

func TestReputationUpdates(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	for i := 0; i < 8; i++ {
		r.ReportAgreement("good", true)
	}
	r.ReportAgreement("good", false)
	// (8+1)/(9+2) = 9/11.
	if got := r.Reputation("good"); got != 9.0/11.0 {
		t.Errorf("reputation = %f, want %f", got, 9.0/11.0)
	}
	s := r.Score("good")
	if s.Agreements != 8 || s.Disagreements != 1 {
		t.Errorf("score = %+v", s)
	}
}

func TestReportMisbehaviourLogsEvidence(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	r.ReportMisbehaviour("evil-inventor", "forged NashMax witness for profile [0 1]")
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	e := events[0]
	if e.Party != "evil-inventor" || e.Kind != Misbehaved || e.Details == "" {
		t.Errorf("event = %+v", e)
	}
	if got := r.Reputation("evil-inventor"); got >= 0.5 {
		t.Errorf("misbehaving party's reputation %f should drop below 0.5", got)
	}
}

func TestEventsAreCopied(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	r.ReportAgreement("a", true)
	events := r.Events()
	events[0].Party = "tampered"
	if r.Events()[0].Party != "a" {
		t.Error("Events leaked internal state")
	}
}

func TestMajorityVoteAccepts(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	outcome, err := r.MajorityVote(map[string]bool{"v1": true, "v2": true, "v3": false})
	if err != nil {
		t.Fatal(err)
	}
	if !outcome {
		t.Error("majority said accept")
	}
	if r.Reputation("v1") <= 0.5 || r.Reputation("v2") <= 0.5 {
		t.Error("agreeing verifiers should gain reputation")
	}
	if r.Reputation("v3") >= 0.5 {
		t.Error("dissenting verifier should lose reputation")
	}
}

func TestMajorityVoteRejects(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	outcome, err := r.MajorityVote(map[string]bool{"v1": false, "v2": false, "v3": true})
	if err != nil {
		t.Fatal(err)
	}
	if outcome {
		t.Error("majority said reject")
	}
}

func TestMajorityVoteEdgeCases(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	if _, err := r.MajorityVote(nil); !errors.Is(err, ErrNoVerdicts) {
		t.Errorf("err = %v, want ErrNoVerdicts", err)
	}
	if _, err := r.MajorityVote(map[string]bool{"a": true, "b": false}); !errors.Is(err, ErrTie) {
		t.Errorf("err = %v, want ErrTie", err)
	}
	// Ties must not move reputations.
	if r.Reputation("a") != 0.5 || r.Reputation("b") != 0.5 {
		t.Error("tie moved reputations")
	}
}

func TestPartiesSortedByReputation(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	r.ReportAgreement("mid", true)
	r.ReportAgreement("mid", false)
	for i := 0; i < 5; i++ {
		r.ReportAgreement("high", true)
	}
	r.ReportMisbehaviour("low", "lied")
	got := r.Parties()
	want := []string{"high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Parties = %v, want %v", got, want)
		}
	}
}

func TestRegistryConcurrentSafety(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.ReportAgreement("p", i%2 == 0)
				_ = r.Reputation("p")
				_, _ = r.MajorityVote(map[string]bool{"a": true, "b": true, "c": false})
			}
		}(i)
	}
	wg.Wait()
	s := r.Score("p")
	if s.Agreements+s.Disagreements != 1600 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestEventKindString(t *testing.T) {
	if Agreed.String() != "agreed" || Disagreed.String() != "disagreed" || Misbehaved.String() != "misbehaved" {
		t.Error("EventKind strings wrong")
	}
}

// Repeated majority voting drives an always-dissenting verifier's
// reputation towards 0 and the honest majority's towards 1 — the paper's
// long-lasting-reputation incentive.
func TestReputationConvergence(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	for i := 0; i < 50; i++ {
		if _, err := r.MajorityVote(map[string]bool{"h1": true, "h2": true, "liar": false}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Reputation("h1") < 0.9 {
		t.Errorf("honest verifier at %f, want > 0.9", r.Reputation("h1"))
	}
	if r.Reputation("liar") > 0.1 {
		t.Errorf("dissenter at %f, want < 0.1", r.Reputation("liar"))
	}
}
