package reputation

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 6, 11, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestUnknownPartyStartsAtHalf(t *testing.T) {
	r := NewRegistry()
	if got := r.Reputation("nobody"); got != 0.5 {
		t.Errorf("reputation = %f, want 0.5", got)
	}
	if r.Trusted("nobody", 0.6) {
		t.Error("unknown party should not clear a 0.6 threshold")
	}
	if !r.Trusted("nobody", 0.5) {
		t.Error("unknown party should clear a 0.5 threshold")
	}
}

func TestReputationUpdates(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	for i := 0; i < 8; i++ {
		r.ReportAgreement("good", true)
	}
	r.ReportAgreement("good", false)
	// (8+1)/(9+2) = 9/11.
	if got := r.Reputation("good"); got != 9.0/11.0 {
		t.Errorf("reputation = %f, want %f", got, 9.0/11.0)
	}
	s := r.Score("good")
	if s.Agreements != 8 || s.Disagreements != 1 {
		t.Errorf("score = %+v", s)
	}
}

func TestReportMisbehaviourLogsEvidence(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	r.ReportMisbehaviour("evil-inventor", "forged NashMax witness for profile [0 1]")
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	e := events[0]
	if e.Party != "evil-inventor" || e.Kind != Misbehaved || e.Details == "" {
		t.Errorf("event = %+v", e)
	}
	if got := r.Reputation("evil-inventor"); got >= 0.5 {
		t.Errorf("misbehaving party's reputation %f should drop below 0.5", got)
	}
}

func TestEventsAreCopied(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	r.ReportAgreement("a", true)
	events := r.Events()
	events[0].Party = "tampered"
	if r.Events()[0].Party != "a" {
		t.Error("Events leaked internal state")
	}
}

func TestMajorityVoteAccepts(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	outcome, err := r.MajorityVote(map[string]bool{"v1": true, "v2": true, "v3": false})
	if err != nil {
		t.Fatal(err)
	}
	if !outcome {
		t.Error("majority said accept")
	}
	if r.Reputation("v1") <= 0.5 || r.Reputation("v2") <= 0.5 {
		t.Error("agreeing verifiers should gain reputation")
	}
	if r.Reputation("v3") >= 0.5 {
		t.Error("dissenting verifier should lose reputation")
	}
}

func TestMajorityVoteRejects(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	outcome, err := r.MajorityVote(map[string]bool{"v1": false, "v2": false, "v3": true})
	if err != nil {
		t.Fatal(err)
	}
	if outcome {
		t.Error("majority said reject")
	}
}

func TestMajorityVoteEdgeCases(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	if _, err := r.MajorityVote(nil); !errors.Is(err, ErrNoVerdicts) {
		t.Errorf("err = %v, want ErrNoVerdicts", err)
	}
	if _, err := r.MajorityVote(map[string]bool{"a": true, "b": false}); !errors.Is(err, ErrTie) {
		t.Errorf("err = %v, want ErrTie", err)
	}
	// Ties must not move reputations.
	if r.Reputation("a") != 0.5 || r.Reputation("b") != 0.5 {
		t.Error("tie moved reputations")
	}
}

// seedScore drives a party to a chosen track record so vote tests can set
// up unequal reputations deterministically.
func seedScore(r *Registry, party string, agreements, disagreements int) {
	for i := 0; i < agreements; i++ {
		r.ReportAgreement(party, true)
	}
	for i := 0; i < disagreements; i++ {
		r.ReportAgreement(party, false)
	}
}

func TestVoteTieBreaking(t *testing.T) {
	// seed maps party -> (agreements, disagreements) recorded before the
	// vote, so sides can carry unequal aggregate reputations.
	type seed struct{ agree, disagree int }
	cases := []struct {
		name     string
		seeds    map[string]seed
		verdicts map[string]bool
		majority func(t *testing.T, outcome bool, err error)
		weighted func(t *testing.T, outcome bool, err error)
	}{
		{
			name:     "odd quorum: counts decide both votes",
			verdicts: map[string]bool{"a": true, "b": true, "c": false},
			majority: wantOutcome(true),
			weighted: wantOutcome(true),
		},
		{
			name:     "even split, equal weights: ErrTie from both",
			verdicts: map[string]bool{"a": true, "b": false},
			majority: wantTie(),
			weighted: wantTie(),
		},
		{
			name:     "even split, heavier accepter: weight breaks the count tie",
			seeds:    map[string]seed{"trusted": {agree: 8}},
			verdicts: map[string]bool{"trusted": true, "fresh": false},
			majority: wantOutcome(true),
			weighted: wantOutcome(true),
		},
		{
			name:     "even split, heavier rejecter: weight tie-break goes the other way",
			seeds:    map[string]seed{"trusted": {agree: 8}},
			verdicts: map[string]bool{"trusted": false, "fresh": true},
			majority: wantOutcome(false),
			weighted: wantOutcome(false),
		},
		{
			name: "count majority of discredited voters: weighted vote flips it",
			// Two liars (rep 1/12 each, sum ~0.17) outnumber one proven
			// verifier (rep 11/12): MajorityVote follows the count,
			// WeightedVote follows the earned trust.
			seeds: map[string]seed{
				"liar1": {disagree: 10},
				"liar2": {disagree: 10},
				"solid": {agree: 10},
			},
			verdicts: map[string]bool{"liar1": false, "liar2": false, "solid": true},
			majority: wantOutcome(false),
			weighted: wantOutcome(true),
		},
		{
			name: "weight tie with count majority: weighted vote falls back to counts",
			// Four accepters at reputation 1/4 (0 agreements, 2
			// disagreements each) sum to exactly 1.0, as do two fresh
			// rejecters at 1/2 — both exact binary fractions, so the
			// weights tie bit-for-bit and the 4-vs-2 count decides.
			seeds: map[string]seed{
				"a1": {disagree: 2}, "a2": {disagree: 2},
				"a3": {disagree: 2}, "a4": {disagree: 2},
			},
			verdicts: map[string]bool{
				"a1": true, "a2": true, "a3": true, "a4": true,
				"r1": false, "r2": false,
			},
			majority: wantOutcome(true),
			weighted: wantOutcome(true),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, vote := range []string{"majority", "weighted"} {
				r := NewRegistryWithClock(fixedClock())
				for party, s := range tc.seeds {
					seedScore(r, party, s.agree, s.disagree)
				}
				var outcome bool
				var err error
				check := tc.majority
				if vote == "weighted" {
					outcome, err = r.WeightedVote(tc.verdicts)
					check = tc.weighted
				} else {
					outcome, err = r.MajorityVote(tc.verdicts)
				}
				t.Run(vote, func(t *testing.T) { check(t, outcome, err) })
				if err != nil {
					// A tie must not move any voter's reputation.
					for party := range tc.verdicts {
						if _, seeded := tc.seeds[party]; !seeded && r.Reputation(party) != 0.5 {
							t.Errorf("%s vote: tie moved %s to %f", vote, party, r.Reputation(party))
						}
					}
				}
			}
		})
	}
}

func wantOutcome(want bool) func(*testing.T, bool, error) {
	return func(t *testing.T, outcome bool, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("err = %v, want outcome %v", err, want)
		}
		if outcome != want {
			t.Errorf("outcome = %v, want %v", outcome, want)
		}
	}
}

func wantTie() func(*testing.T, bool, error) {
	return func(t *testing.T, _ bool, err error) {
		t.Helper()
		if !errors.Is(err, ErrTie) {
			t.Errorf("err = %v, want ErrTie", err)
		}
	}
}

// A successful vote — tie-broken or not — must update every voter.
func TestVoteTieBreakRecordsAgreement(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	seedScore(r, "trusted", 8, 0)
	if _, err := r.MajorityVote(map[string]bool{"trusted": true, "fresh": false}); err != nil {
		t.Fatal(err)
	}
	if s := r.Score("trusted"); s.Agreements != 9 {
		t.Errorf("trusted agreements = %d, want 9", s.Agreements)
	}
	if s := r.Score("fresh"); s.Disagreements != 1 {
		t.Errorf("fresh disagreements = %d, want 1", s.Disagreements)
	}
}

func TestWeightedVoteEmpty(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	if _, err := r.WeightedVote(nil); !errors.Is(err, ErrNoVerdicts) {
		t.Errorf("err = %v, want ErrNoVerdicts", err)
	}
}

func TestPartiesSortedByReputation(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	r.ReportAgreement("mid", true)
	r.ReportAgreement("mid", false)
	for i := 0; i < 5; i++ {
		r.ReportAgreement("high", true)
	}
	r.ReportMisbehaviour("low", "lied")
	got := r.Parties()
	want := []string{"high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Parties = %v, want %v", got, want)
		}
	}
}

func TestRegistryConcurrentSafety(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.ReportAgreement("p", i%2 == 0)
				_ = r.Reputation("p")
				_, _ = r.MajorityVote(map[string]bool{"a": true, "b": true, "c": false})
			}
		}(i)
	}
	wg.Wait()
	s := r.Score("p")
	if s.Agreements+s.Disagreements != 1600 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestEventKindString(t *testing.T) {
	if Agreed.String() != "agreed" || Disagreed.String() != "disagreed" || Misbehaved.String() != "misbehaved" {
		t.Error("EventKind strings wrong")
	}
}

// Repeated majority voting drives an always-dissenting verifier's
// reputation towards 0 and the honest majority's towards 1 — the paper's
// long-lasting-reputation incentive.
func TestReputationConvergence(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())
	for i := 0; i < 50; i++ {
		if _, err := r.MajorityVote(map[string]bool{"h1": true, "h2": true, "liar": false}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Reputation("h1") < 0.9 {
		t.Errorf("honest verifier at %f, want > 0.9", r.Reputation("h1"))
	}
	if r.Reputation("liar") > 0.1 {
		t.Errorf("dissenter at %f, want < 0.1", r.Reputation("liar"))
	}
}

// Unresponsiveness decays trust at half weight and bottoms out at the cap:
// a dead-but-honest party keeps a floor a proven liar falls through.
func TestReportUnresponsiveBoundedDecay(t *testing.T) {
	r := NewRegistryWithClock(fixedClock())

	r.ReportUnresponsive("slow", "timed out after 10ms")
	gotOne := r.Reputation("slow")
	if want := 1.0 / 2.5; gotOne != want {
		t.Errorf("one timeout: reputation=%f, want %f", gotOne, want)
	}

	// Slower than lying: one disagreement costs more than one timeout.
	r.ReportMisbehaviour("liar", "served a refuted verdict")
	if lied := r.Reputation("liar"); lied >= gotOne {
		t.Errorf("one lie (%f) should cost more than one timeout (%f)", lied, gotOne)
	}

	// Bounded: past the cap, further timeouts change nothing.
	for i := 0; i < 3*UnresponsiveCap; i++ {
		r.ReportUnresponsive("slow", "timed out")
	}
	floor := 1.0 / (2.0 + float64(UnresponsiveCap)*UnresponsiveWeight)
	if got := r.Reputation("slow"); got != floor {
		t.Errorf("capped timeouts: reputation=%f, want floor %f", got, floor)
	}

	// A liar charged the same number of times has no such floor.
	for i := 0; i < 3*UnresponsiveCap; i++ {
		r.ReportMisbehaviour("liar", "served a refuted verdict")
	}
	if r.Reputation("liar") >= r.Reputation("slow") {
		t.Errorf("liar (%f) should sit below the unresponsive floor (%f)",
			r.Reputation("liar"), r.Reputation("slow"))
	}

	// The audit log names the timeouts with their evidence.
	var unresponsive int
	for _, e := range r.Events() {
		if e.Kind == Unresponsive {
			unresponsive++
			if e.Details == "" {
				t.Error("unresponsive event lost its evidence")
			}
		}
	}
	if unresponsive != 3*UnresponsiveCap+1 {
		t.Errorf("logged %d unresponsive events, want %d", unresponsive, 3*UnresponsiveCap+1)
	}
	if Unresponsive.String() != "unresponsive" {
		t.Errorf("Unresponsive.String() = %q", Unresponsive.String())
	}
}
