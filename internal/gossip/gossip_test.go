package gossip

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rationality/internal/identity"
	"rationality/internal/transport"
)

// fakeClient satisfies transport.Client; the engine never calls it
// directly (the fake Exchange does), so it only tracks Close.
type fakeClient struct {
	addr   string
	closed atomic.Bool
}

func (c *fakeClient) Call(context.Context, transport.Message) (transport.Message, error) {
	return transport.Message{}, errors.New("fake client: not a wire client")
}
func (c *fakeClient) Close() error { c.closed.Store(true); return nil }

// fakeFabric is a scriptable Dial+Exchange pair recording everything the
// engine does.
type fakeFabric struct {
	mu        sync.Mutex
	dials     []string
	exchanges []fakeExchange
	fail      map[string]bool                // addr -> next exchange errors
	signers   map[string]identity.PartyID    // addr -> reported signer
	results   map[string]Result              // addr -> result overrides
	onExch    func(addr string, req Request) // optional hook
}

type fakeExchange struct {
	addr   string
	rumors int
	full   bool
}

func newFakeFabric() *fakeFabric {
	return &fakeFabric{
		fail:    make(map[string]bool),
		signers: make(map[string]identity.PartyID),
		results: make(map[string]Result),
	}
}

func (f *fakeFabric) dial(addr string) (transport.Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dials = append(f.dials, addr)
	return &fakeClient{addr: addr}, nil
}

func (f *fakeFabric) exchange(_ context.Context, peer transport.Client, req Request) (Result, error) {
	addr := peer.(*fakeClient).addr
	f.mu.Lock()
	f.exchanges = append(f.exchanges, fakeExchange{addr: addr, rumors: len(req.Rumors), full: req.Full})
	failNow := f.fail[addr]
	res := f.results[addr]
	if s, ok := f.signers[addr]; ok {
		res.Signer = s
	}
	hook := f.onExch
	f.mu.Unlock()
	if hook != nil {
		hook(addr, req)
	}
	if failNow {
		return res, errors.New("injected exchange failure")
	}
	return res, nil
}

func (f *fakeFabric) partnerLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.exchanges))
	for i, e := range f.exchanges {
		out[i] = e.addr
	}
	return out
}

func newTestEngine(t *testing.T, f *fakeFabric, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Peers:    []string{"p1", "p2", "p3", "p4"},
		Fanout:   2,
		Seed:     42,
		Dial:     f.dial,
		Exchange: f.exchange,
		Logf:     t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// Same seed, same peers: identical partner sequences across runs. This is
// the reproducibility contract the logged seed promises.
func TestRoundPartnerSelectionIsSeedDeterministic(t *testing.T) {
	runOnce := func() []string {
		f := newFakeFabric()
		e := newTestEngine(t, f, nil)
		for i := 0; i < 5; i++ {
			if err := e.Round(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		return f.partnerLog()
	}
	a, b := runOnce(), runOnce()
	if len(a) != 10 { // 5 rounds × fanout 2
		t.Fatalf("got %d exchanges, want 10: %v", len(a), a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverged at %d: %v vs %v", i, a, b)
		}
	}
	// And a different seed picks a different sequence (overwhelmingly).
	f := newFakeFabric()
	e := newTestEngine(t, f, func(c *Config) { c.Seed = 43 })
	for i := 0; i < 5; i++ {
		if err := e.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	c := f.partnerLog()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 10-pick sequences")
	}
}

// A peer whose proven identity the Permitted hook vetoes is never picked
// again, and the skip is counted per peer.
func TestRoundSkipsVetoedPeers(t *testing.T) {
	f := newFakeFabric()
	f.signers["p1"] = "signer-1"
	f.signers["p2"] = "signer-2"
	f.signers["p3"] = "signer-3"
	f.signers["p4"] = "signer-4"
	var veto atomic.Bool
	e := newTestEngine(t, f, func(c *Config) {
		c.Permitted = func(s identity.PartyID) bool {
			return !(veto.Load() && s == "signer-2")
		}
	})
	// Warm-up rounds teach the engine every peer's signer.
	for i := 0; i < 8; i++ {
		if err := e.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range f.partnerLog() {
		if addr == "p2" {
			goto learned
		}
	}
	t.Fatal("warm-up never exchanged with p2; can't exercise the veto")
learned:
	veto.Store(true)
	before := len(f.partnerLog())
	for i := 0; i < 12; i++ {
		if err := e.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range f.partnerLog()[before:] {
		if addr == "p2" {
			t.Fatal("vetoed peer was selected as a gossip partner")
		}
	}
	st := e.Stats()
	var skipped uint64
	for _, p := range st.Peers {
		if p.Address == "p2" {
			skipped = p.SkippedQuarantine
		}
	}
	if skipped == 0 {
		t.Fatalf("veto left no SkippedQuarantine trace: %+v", st.Peers)
	}
}

// Rumors ride along for TTL successful exchanges, then drop off the board.
func TestRumorTTLDecrementsPerSuccessfulExchange(t *testing.T) {
	f := newFakeFabric()
	e := newTestEngine(t, f, func(c *Config) {
		c.Peers = []string{"p1"}
		c.Fanout = 1
		c.RumorTTL = 3
	})
	key := identity.DigestBytes([]byte("hot-record"))
	e.AddRumor(key)
	if st := e.Stats(); st.RumorsPending != 1 {
		t.Fatalf("RumorsPending = %d, want 1", st.RumorsPending)
	}
	for i := 0; i < 3; i++ {
		if err := e.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	f.mu.Lock()
	for i, ex := range f.exchanges {
		if ex.rumors != 1 {
			t.Fatalf("exchange %d carried %d rumors, want 1", i, ex.rumors)
		}
	}
	f.mu.Unlock()
	if st := e.Stats(); st.RumorsPending != 0 {
		t.Fatalf("RumorsPending = %d after TTL exhausted, want 0", st.RumorsPending)
	}
	if err := e.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	last := f.exchanges[len(f.exchanges)-1]
	f.mu.Unlock()
	if last.rumors != 0 {
		t.Fatal("expired rumor still rode an exchange")
	}
}

// Failed exchanges do not age rumors: a node that can't reach anyone
// keeps its hot records hot.
func TestRumorSurvivesFailedRounds(t *testing.T) {
	f := newFakeFabric()
	f.fail["p1"] = true
	e := newTestEngine(t, f, func(c *Config) {
		c.Peers = []string{"p1"}
		c.Fanout = 1
		c.RumorTTL = 1
	})
	e.AddRumor(identity.DigestBytes([]byte("stuck")))
	for i := 0; i < 4; i++ {
		if err := e.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.RumorsPending != 1 || st.Failures != 4 {
		t.Fatalf("stats after failed rounds: %+v", st)
	}
	f.mu.Lock()
	f.fail["p1"] = false
	f.mu.Unlock()
	if err := e.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.RumorsPending != 0 {
		t.Fatal("rumor survived its one successful exchange")
	}
}

// Every AntiEntropyEvery-th round is a full reconciliation; the others
// are fingerprint probes.
func TestAntiEntropyCadence(t *testing.T) {
	f := newFakeFabric()
	e := newTestEngine(t, f, func(c *Config) {
		c.Peers = []string{"p1"}
		c.Fanout = 1
		c.AntiEntropyEvery = 3
	})
	for i := 0; i < 7; i++ {
		if err := e.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, ex := range f.exchanges {
		round := i + 1
		if want := round%3 == 0; ex.full != want {
			t.Fatalf("round %d full=%v, want %v", round, ex.full, want)
		}
	}
}

// A failed exchange closes the cached client; the next selection re-dials.
func TestFailureDropsCachedClient(t *testing.T) {
	f := newFakeFabric()
	f.fail["p1"] = true
	e := newTestEngine(t, f, func(c *Config) {
		c.Peers = []string{"p1"}
		c.Fanout = 1
	})
	if err := e.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	f.fail["p1"] = false
	dialsAfterFailure := len(f.dials)
	f.mu.Unlock()
	if err := e.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.dials) != dialsAfterFailure+1 {
		t.Fatalf("dials = %v, want a re-dial after the failure", f.dials)
	}
}

// Start drives rounds on the configured cadence; Stop joins the loop and
// releases clients. Manual engines refuse Start.
func TestStartStopLoop(t *testing.T) {
	f := newFakeFabric()
	rounds := make(chan struct{}, 64)
	e := newTestEngine(t, f, func(c *Config) {
		c.Peers = []string{"p1"}
		c.Fanout = 1
		c.Interval = time.Millisecond
		c.OnRound = func(bool) { rounds <- struct{}{} }
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case <-rounds:
		case <-time.After(5 * time.Second):
			t.Fatal("loop produced no round")
		}
	}
	e.Stop()
	st := e.Stats()
	if st.Rounds < 3 || st.Exchanges < 3 {
		t.Fatalf("stats after loop: %+v", st)
	}

	manual := newTestEngine(t, newFakeFabric(), nil)
	if err := manual.Start(); err == nil {
		t.Fatal("Start on an interval-less engine must fail")
	}
}

// New rejects nonsense configurations.
func TestNewValidates(t *testing.T) {
	f := newFakeFabric()
	if _, err := New(Config{Dial: f.dial, Exchange: f.exchange}); err == nil {
		t.Fatal("no peers must fail")
	}
	if _, err := New(Config{Peers: []string{"p"}}); err == nil {
		t.Fatal("missing Dial/Exchange must fail")
	}
	if _, err := New(Config{Peers: []string{"p"}, Dial: f.dial, Exchange: f.exchange, Interval: -time.Second}); err == nil {
		t.Fatal("negative interval must fail")
	}
	// Fanout larger than the peer set clamps instead of failing.
	e, err := New(Config{Peers: []string{"p"}, Fanout: 9, Dial: f.dial, Exchange: f.exchange})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Fanout != 1 {
		t.Fatalf("fanout = %d, want clamped to 1", e.Stats().Fanout)
	}
}
