// Package gossiptest is the in-process federation harness: it spins N
// verification authorities over an in-memory transport (transport.PipeNet),
// each with its own signing key, durable store, full allowlist and a
// manually stepped gossiper, then drives lockstep gossip rounds and
// measures convergence. Tests use it to assert round budgets and
// manifest identity under fault injection; cmd/experiments uses the same
// harness to produce the gossip-vs-all-pairs bench artifact — which is
// why everything here reports errors instead of importing testing.
package gossiptest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/reputation"
	"rationality/internal/service"
	"rationality/internal/transport"
	"rationality/internal/trust"
)

// ProcFormat is the proof format the harness procedure serves.
const ProcFormat = "gossiptest/v1"

// Proc is the harness verification procedure: deterministic, trivially
// cheap, and polarity-configurable so a cluster can contain Byzantine
// authorities whose vouched verdicts honest re-verification refutes.
type Proc struct {
	// Accept is the verdict polarity every verification returns.
	Accept bool
}

// Format implements core.Procedure.
func (p *Proc) Format() string { return ProcFormat }

// Verify implements core.Procedure: every well-formed proof gets the
// configured polarity. Determinism is what makes audits meaningful — an
// honest node re-running a Byzantine node's verification always exposes
// the contradiction.
func (p *Proc) Verify(gameSpec, advice, proofBody json.RawMessage) (*core.Verdict, error) {
	return &core.Verdict{
		Accepted: p.Accept,
		Format:   ProcFormat,
		Reason:   fmt.Sprintf("gossiptest fixture verdict (accept=%v)", p.Accept),
	}, nil
}

// Config sizes and seeds a harness cluster.
type Config struct {
	// N is the number of authorities. Required, >= 2.
	N int
	// Fanout, RumorTTL and AntiEntropyEvery pass through to each node's
	// gossiper (zero = the engine defaults).
	Fanout           int
	RumorTTL         int
	AntiEntropyEvery int
	// Seed makes the whole cluster reproducible: node keys aside (which
	// are random but interchangeable), every peer selection and fault
	// plan derives from it. Zero means 1.
	Seed int64
	// AuditRate is each node's Config.AuditRate (0 disables auditing);
	// AuditRateFor, when non-nil, overrides it per node — e.g. a
	// Byzantine node that never audits (it has nothing to learn from
	// re-running its own lies).
	AuditRate    float64
	AuditRateFor func(i int) float64
	// Accept, when non-nil, sets node i's procedure polarity; nil means
	// every node verifies honestly (accept).
	Accept func(i int) bool
	// Trust attaches a quarantine policy to every node.
	Trust bool
	// Chaos, when non-nil, wraps every dialed connection in a fault
	// injector with these probabilities (the per-client seed derives from
	// Seed and the dial sequence, so runs replay).
	Chaos *transport.ChaosConfig
	// Logf receives the nodes' log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Node is one authority in the cluster.
type Node struct {
	// Index is the node's position; Addr its PipeNet listen name; ID its
	// signing identity.
	Index int
	Addr  string
	ID    identity.PartyID
	// Service is the node's verification authority; Gossiper its manually
	// stepped gossip loop; Trust its quarantine policy (nil unless
	// Config.Trust).
	Service  *service.Service
	Gossiper *service.Gossiper
	Trust    *trust.Policy
}

// Cluster is a running in-process federation. Build with New, release
// with Close.
type Cluster struct {
	// Net is the shared in-memory network; its byte counter is the
	// bytes-on-wire measurement.
	Net   *transport.PipeNet
	Nodes []*Node

	cfg       Config
	chaosSeed atomic.Int64
}

// New builds and starts a cluster. dir hosts each node's durable store
// and trust state (node-0, node-1, ...).
func New(dir string, cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("gossiptest: cluster needs N >= 2, got %d", cfg.N)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Cluster{Net: transport.NewPipeNet(), cfg: cfg}
	keys := make([]*identity.KeyPair, cfg.N)
	ids := make([]identity.PartyID, cfg.N)
	for i := range keys {
		k, err := identity.NewKeyPair()
		if err != nil {
			c.close()
			return nil, err
		}
		keys[i] = k
		ids[i] = k.ID()
	}
	for i := 0; i < cfg.N; i++ {
		node, err := c.startNode(dir, i, keys[i], ids)
		if err != nil {
			c.close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// startNode builds authority i: service, listener, gossiper.
func (c *Cluster) startNode(dir string, i int, key *identity.KeyPair, ids []identity.PartyID) (*Node, error) {
	cfg := c.cfg
	addr := fmt.Sprintf("node-%d", i)
	nodeDir := filepath.Join(dir, addr)
	if err := os.MkdirAll(nodeDir, 0o755); err != nil {
		return nil, err
	}
	allow := make([]identity.PartyID, 0, cfg.N-1)
	peers := make([]string, 0, cfg.N-1)
	for j, id := range ids {
		if j == i {
			continue
		}
		allow = append(allow, id)
		peers = append(peers, fmt.Sprintf("node-%d", j))
	}
	var pol *trust.Policy
	if cfg.Trust {
		var err error
		pol, err = trust.New(trust.Config{
			Registry: reputation.NewRegistry(),
			Path:     filepath.Join(nodeDir, "trust.json"),
		})
		if err != nil {
			return nil, err
		}
	}
	auditRate := cfg.AuditRate
	if cfg.AuditRateFor != nil {
		auditRate = cfg.AuditRateFor(i)
	}
	svc, err := service.New(service.Config{
		ID:          addr,
		PersistPath: filepath.Join(nodeDir, "store"),
		Key:         key,
		PeerKeys:    allow,
		Trust:       pol,
		AuditRate:   auditRate,
		Seed:        cfg.Seed + int64(i),
	})
	if err != nil {
		return nil, err
	}
	accept := true
	if cfg.Accept != nil {
		accept = cfg.Accept(i)
	}
	svc.Register(&Proc{Accept: accept})
	if err := c.Net.Listen(addr, svc); err != nil {
		_ = svc.Close()
		return nil, err
	}
	logf := func(format string, args ...any) {
		cfg.Logf("[%s] "+format, append([]any{addr}, args...)...)
	}
	g, err := svc.StartGossiper(service.GossiperConfig{
		Peers:            peers,
		Fanout:           cfg.Fanout,
		RumorTTL:         cfg.RumorTTL,
		AntiEntropyEvery: cfg.AntiEntropyEvery,
		Seed:             cfg.Seed*1000003 + int64(i),
		Dial:             c.dialer(),
		Logf:             logf,
	})
	if err != nil {
		_ = svc.Close()
		return nil, err
	}
	return &Node{Index: i, Addr: addr, ID: key.ID(), Service: svc, Gossiper: g, Trust: pol}, nil
}

// dialer opens pipe clients, wrapping each in a chaos injector when the
// cluster is configured with one. Chaos seeds derive from the cluster
// seed and the dial sequence number: lockstep stepping dials in a
// deterministic order, so the whole fault schedule replays from Seed.
func (c *Cluster) dialer() func(addr string) (transport.Client, error) {
	return func(addr string) (transport.Client, error) {
		client, err := c.Net.Dial(addr)
		if err != nil {
			return nil, err
		}
		if c.cfg.Chaos == nil {
			return client, nil
		}
		cc := *c.cfg.Chaos
		cc.Seed = c.cfg.Seed*7919 + c.chaosSeed.Add(1)
		return transport.Chaos(client, cc), nil
	}
}

// Verify runs n verifications on one node, with payloads unique to tag —
// n fresh verdicts in that node's log for gossip to spread.
func (c *Cluster) Verify(node int, tag string, n int) error {
	svc := c.Nodes[node].Service
	for i := 0; i < n; i++ {
		ann := core.Announcement{
			InventorID: "harness-inventor",
			Format:     ProcFormat,
			Game:       json.RawMessage(fmt.Sprintf(`{"%s":%d}`, tag, i)),
			Advice:     json.RawMessage(`{}`),
		}
		if _, err := svc.VerifyAnnouncement(context.Background(), ann); err != nil {
			return fmt.Errorf("gossiptest: verify on node %d: %w", node, err)
		}
	}
	return nil
}

// Step runs one lockstep gossip round: every node's gossiper takes one
// Round, in index order. Peer failures inside a round are counted, not
// returned; the error is the context's.
func (c *Cluster) Step(ctx context.Context) error {
	for _, n := range c.Nodes {
		if err := n.Gossiper.Round(ctx); err != nil {
			return err
		}
	}
	return nil
}

// manifestEntry is one record line in a node's canonical manifest.
type manifestEntry struct {
	Key   string
	Stamp uint64
	Sum   uint32
}

// manifest snapshots one node's verdict log as a sorted entry list,
// via the same SyncOffer surface peers see.
func (c *Cluster) manifest(i int) ([]manifestEntry, error) {
	offer, err := c.Nodes[i].Service.SyncOffer()
	if err != nil {
		return nil, err
	}
	out := make([]manifestEntry, 0, len(offer.Have))
	for _, e := range offer.Have {
		out = append(out, manifestEntry{Key: string(e.Key), Stamp: e.Stamp, Sum: e.Sum})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, nil
}

// Converged reports whether every node's manifest — key, stamp and sum
// sets — is identical. This is the strong invariant: not just equal
// fingerprints, byte-equal replica state.
func (c *Cluster) Converged() (bool, error) {
	all := make([]int, len(c.Nodes))
	for i := range all {
		all[i] = i
	}
	return c.ConvergedAmong(all)
}

// ConvergedAmong checks manifest identity over a subset of nodes — e.g.
// the honest ones, when a Byzantine node keeps rewriting its own copy.
func (c *Cluster) ConvergedAmong(nodes []int) (bool, error) {
	if len(nodes) < 2 {
		return true, nil
	}
	want, err := c.manifest(nodes[0])
	if err != nil {
		return false, err
	}
	for _, i := range nodes[1:] {
		got, err := c.manifest(i)
		if err != nil {
			return false, err
		}
		if len(got) != len(want) {
			return false, nil
		}
		for j := range got {
			if got[j] != want[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// DivergenceReport names the first divergent node pair, for test failure
// messages. Empty when converged.
func (c *Cluster) DivergenceReport() (string, error) {
	want, err := c.manifest(0)
	if err != nil {
		return "", err
	}
	wantJSON, _ := json.Marshal(want)
	for i := 1; i < len(c.Nodes); i++ {
		got, err := c.manifest(i)
		if err != nil {
			return "", err
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(gotJSON, wantJSON) {
			return fmt.Sprintf("node-0 holds %d records, node-%d holds %d", len(want), i, len(got)), nil
		}
	}
	return "", nil
}

// RoundsToConverge steps the cluster until every manifest is identical,
// returning the number of rounds it took. Fails with an error after max
// rounds — the round-budget assertion, inverted.
func (c *Cluster) RoundsToConverge(ctx context.Context, max int) (int, error) {
	for r := 1; r <= max; r++ {
		if err := c.Step(ctx); err != nil {
			return r, err
		}
		ok, err := c.Converged()
		if err != nil {
			return r, err
		}
		if ok {
			return r, nil
		}
	}
	report, _ := c.DivergenceReport()
	return max, fmt.Errorf("gossiptest: not converged after %d rounds: %s", max, report)
}

// AllPairsPull runs one classic anti-entropy interval: every node pulls
// from every other node once (n·(n−1) signed exchanges). With static
// data one interval converges the cluster — it is the baseline the
// gossip bench compares against. Fresh unchaosed clients are dialed and
// closed per pull so the byte counter sees exactly the pull traffic.
func (c *Cluster) AllPairsPull(ctx context.Context) error {
	for i, n := range c.Nodes {
		for j := range c.Nodes {
			if j == i {
				continue
			}
			client, err := c.Net.Dial(c.Nodes[j].Addr)
			if err != nil {
				return err
			}
			_, _, err = n.Service.PullFrom(ctx, client)
			_ = client.Close()
			if err != nil {
				return fmt.Errorf("gossiptest: node %d pull from %d: %w", i, j, err)
			}
		}
		n.Service.NoteSyncRound()
	}
	return nil
}

// BytesOnWire reports the total bytes moved across the cluster's network
// since it started.
func (c *Cluster) BytesOnWire() uint64 { return c.Net.BytesOnWire() }

// GossipStats sums the per-node gossip counters into one cluster view.
func (c *Cluster) GossipStats() (rounds, exchanges, failures, inSync uint64) {
	for _, n := range c.Nodes {
		st := n.Gossiper.Stats()
		rounds += st.Rounds
		exchanges += st.Exchanges
		failures += st.Failures
		inSync += st.InSync
	}
	return
}

// Close stops every gossiper, closes every service and tears the network
// down. The first error wins; teardown continues regardless.
func (c *Cluster) Close() error { return c.close() }

func (c *Cluster) close() error {
	var first error
	for _, n := range c.Nodes {
		n.Gossiper.Stop()
	}
	if err := c.Net.Close(); err != nil && first == nil {
		first = err
	}
	for _, n := range c.Nodes {
		if err := n.Service.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
