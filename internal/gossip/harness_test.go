package gossip_test

import (
	"context"
	"testing"
	"time"

	"rationality/internal/gossip/gossiptest"
	"rationality/internal/transport"
	"rationality/internal/trust"
)

// seedCluster gives every node tag-distinct records so the cluster
// starts fully divergent: n nodes, recordsPer each, no overlap.
func seedCluster(t *testing.T, c *gossiptest.Cluster, recordsPer int) {
	t.Helper()
	for i := range c.Nodes {
		if err := c.Verify(i, c.Nodes[i].Addr, recordsPer); err != nil {
			t.Fatal(err)
		}
	}
}

// The headline budget: a 20-authority federation, every node holding
// records no other node has, converges to identical manifests within
// ceil(2*log2(20)) = 9 lockstep push-pull rounds. CI runs this with
// -race -count=2; the budget is the regression tripwire for the O(log n)
// claim.
func TestGossipConvergenceBudget20Nodes(t *testing.T) {
	c, err := gossiptest.New(t.TempDir(), gossiptest.Config{
		N: 20, Fanout: 2, Seed: 42, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c, 2)
	rounds, err := c.RoundsToConverge(context.Background(), 9)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("20 nodes converged in %d rounds, %d bytes on wire", rounds, c.BytesOnWire())

	// Convergence-invariant: once settled, further rounds keep every
	// manifest byte-identical and settle on cheap in-sync probes.
	_, _, _, inSyncBefore := c.GossipStats()
	for i := 0; i < 3; i++ {
		if err := c.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := c.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		report, _ := c.DivergenceReport()
		t.Fatalf("converged cluster diverged under further rounds: %s", report)
	}
	_, _, _, inSyncAfter := c.GossipStats()
	if inSyncAfter <= inSyncBefore {
		t.Fatalf("converged rounds were not in-sync probes: %d -> %d", inSyncBefore, inSyncAfter)
	}
}

// Chaos-link rounds: 30% of calls dropped, 15% duplicated, 15% of
// replies garbled. Convergence survives — failed exchanges are counted
// and retried on later rounds, duplicates are absorbed by idempotent
// ingest, garbled replies fail signature/decode checks before any record
// lands — it just takes more rounds.
func TestGossipConvergenceUnderChaos(t *testing.T) {
	c, err := gossiptest.New(t.TempDir(), gossiptest.Config{
		N: 10, Fanout: 2, Seed: 7,
		Chaos: &transport.ChaosConfig{Drop: 0.30, Duplicate: 0.15, Garble: 0.15},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c, 2)
	rounds, err := c.RoundsToConverge(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	_, exchanges, failures, _ := c.GossipStats()
	t.Logf("10 chaos nodes converged in %d rounds (%d exchanges, %d injected failures)",
		rounds, exchanges, failures)
	if failures == 0 {
		t.Fatal("a thirty-percent-drop fault plan injected no failures: chaos not wired")
	}
}

// A peer quarantined by the trust policy is never selected as a gossip
// partner once its identity is learned: the engine skips it before
// dialing and counts the skip.
func TestGossipQuarantinedPeerNeverSelected(t *testing.T) {
	c, err := gossiptest.New(t.TempDir(), gossiptest.Config{
		N: 4, Fanout: 2, Seed: 11, Trust: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seedCluster(t, c, 1)
	ctx := context.Background()
	liar := c.Nodes[3]

	// Warm rounds until every honest engine has learned the target's
	// signing identity (an exchange teaches it).
	learned := func() bool {
		for _, n := range c.Nodes[:3] {
			found := false
			for _, p := range n.Gossiper.Stats().Peers {
				if p.Address == liar.Addr && p.Signer == liar.ID {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	for r := 0; r < 40 && !learned(); r++ {
		if err := c.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if !learned() {
		t.Fatal("honest nodes never learned the target's identity")
	}

	// Quarantine the target on every honest node's policy, by evidence.
	for _, n := range c.Nodes[:3] {
		for i := 0; i < 4 && n.Trust.State(string(liar.ID)) != trust.Quarantined; i++ {
			n.Trust.Charge(string(liar.ID), "harness: forced quarantine")
		}
		if got := n.Trust.State(string(liar.ID)); got != trust.Quarantined {
			t.Fatalf("charges did not quarantine the peer: state %s", got)
		}
	}

	exchangesWith := func(n *gossiptest.Node) (ex, skipped uint64) {
		for _, p := range n.Gossiper.Stats().Peers {
			if p.Address == liar.Addr {
				return p.Exchanges, p.SkippedQuarantine
			}
		}
		return 0, 0
	}
	before := make([]uint64, 3)
	for i, n := range c.Nodes[:3] {
		before[i], _ = exchangesWith(n)
	}
	for r := 0; r < 10; r++ {
		if err := c.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var skippedTotal uint64
	for i, n := range c.Nodes[:3] {
		after, skipped := exchangesWith(n)
		if after != before[i] {
			t.Fatalf("node %d exchanged with a quarantined peer (%d -> %d)", i, before[i], after)
		}
		skippedTotal += skipped
	}
	if skippedTotal == 0 {
		t.Fatal("ten fanout-2 rounds over three peers never even considered the quarantined one")
	}
}

// The accountability loop over gossip paths, mirroring the PR 7 syncer
// test: a Byzantine authority vouches for lying verdicts, gossip spreads
// them, honest auditors (AuditRate 1) refute and repair them, and the
// repaired records out-gossip the lies — the cluster converges on the
// truth, with the liar quarantined by evidence on the nodes that caught
// it first-hand.
func TestGossipByzantineLieRepairedThroughGossip(t *testing.T) {
	const lies = 3
	c, err := gossiptest.New(t.TempDir(), gossiptest.Config{
		N: 4, Fanout: 2, Seed: 23, Trust: true,
		Accept: func(i int) bool { return i != 3 },
		// Honest nodes audit everything; the liar audits nothing (re-running
		// its own lying procedure would only "repair" truth back into lies).
		AuditRateFor: func(i int) float64 {
			if i == 3 {
				return 0
			}
			return 1
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	liar := c.Nodes[3]
	if err := c.Verify(3, "lie", lies); err != nil {
		t.Fatal(err)
	}
	lieSums := manifestSums(t, c, 3)
	if len(lieSums) != lies {
		t.Fatalf("liar seeded %d records, want %d", len(lieSums), lies)
	}

	// Step rounds (with breathing room for the async auditors) until the
	// cluster converges on content that is NOT the lies: every node's
	// manifest identical, and every lie key re-summed by a repair.
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	// Convergence is asserted among the honest nodes: the liar also pulls
	// the repairs back, but charging relays and quarantine timing make its
	// copy's stamps a race, and the truth invariant is about honest state.
	repaired := func() bool {
		ok, err := c.ConvergedAmong([]int{0, 1, 2})
		if err != nil || !ok {
			return false
		}
		sums := manifestSums(t, c, 0)
		for key, sum := range lieSums {
			if got, held := sums[key]; !held || got == sum {
				return false // key missing or still carrying the lying verdict
			}
		}
		return true
	}
	for !repaired() {
		if time.Now().After(deadline) {
			report, _ := c.DivergenceReport()
			t.Fatalf("cluster never converged on repaired content: %s", report)
		}
		if err := c.Step(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let auditors drain between rounds
	}

	// At least one honest node caught the lies first-hand and quarantined
	// the liar; its stats carry the refutations.
	quarantinedBy, refutations := 0, uint64(0)
	for _, n := range c.Nodes[:3] {
		if n.Trust.State(string(liar.ID)) == trust.Quarantined {
			quarantinedBy++
		}
		refutations += n.Service.Stats().AuditRefutations
	}
	if quarantinedBy == 0 {
		t.Fatal("no honest node quarantined the Byzantine voucher")
	}
	if refutations < lies {
		t.Fatalf("audit refutations = %d, want >= %d", refutations, lies)
	}
}

// manifestSums maps record key -> content sum for one node's manifest.
func manifestSums(t *testing.T, c *gossiptest.Cluster, node int) map[string]uint32 {
	t.Helper()
	offer, err := c.Nodes[node].Service.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]uint32, len(offer.Have))
	for _, e := range offer.Have {
		out[string(e.Key)] = e.Sum
	}
	return out
}
