// Package gossip implements the epidemic push-pull replication rounds
// that replace all-pairs anti-entropy at federation scale. Each round a
// node picks a small random fan-out of peers, probes each with a compact
// store fingerprint (and any hot "rumor" records riding along), and only
// reconciles fully — manifests and signed deltas both directions — when
// the fingerprints disagree. With fan-out k ≥ 1 an update reaches all n
// nodes in O(log n) rounds with high probability (the standard epidemic
// analysis; see Aspnes's distributed-systems notes in PAPERS.md), at
// k·n exchanges per round instead of the n·(n−1) of an all-pairs pass.
//
// The engine is deliberately policy-free: it owns round cadence, peer
// selection, rumor TTLs and statistics, and delegates the exchange
// itself to an injected callback — the service layer supplies one that
// routes every transferred record through its signed federation gate, so
// gossip inherits allowlisting, quarantine and audit sampling unchanged.
// (The service package imports this one; the callback keeps the
// dependency one-directional.)
package gossip

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rationality/internal/identity"
	"rationality/internal/transport"
)

// Engine defaults, applied by New for zero Config fields.
const (
	// DefaultFanout is how many peers one round exchanges with.
	DefaultFanout = 2
	// DefaultRumorTTL is how many successful exchanges a fresh record is
	// eagerly pushed through before demotion to anti-entropy repair.
	DefaultRumorTTL = 3
	// DefaultAntiEntropyEvery forces a full manifest reconciliation every
	// Nth round even when fingerprints agree — the repair backstop against
	// fingerprint collisions and half-open partitions.
	DefaultAntiEntropyEvery = 8
	// DefaultTimeout bounds one exchange (dial included).
	DefaultTimeout = time.Minute
	// DefaultJitter is the fraction by which the round cadence is
	// randomized.
	DefaultJitter = 0.2
)

// Request is what the engine asks of one exchange: the hot keys to push
// as rumors, and whether to force a full reconciliation regardless of
// fingerprint agreement.
type Request struct {
	// Rumors are the keys whose records should be pushed eagerly.
	Rumors []identity.Hash
	// Full forces the complete manifest exchange (the anti-entropy
	// backstop round).
	Full bool
}

// Result is one completed exchange as the injected callback reports it.
type Result struct {
	// Signer is the peer's proven signing identity, learned from the
	// exchange — what quarantine-aware selection keys on.
	Signer identity.PartyID
	// InSync reports that the fingerprints matched (after any rumor
	// application) and no reconciliation was needed: a cheap round.
	InSync bool
	// Sent / Received count records transferred in each direction.
	Sent, Received int
	// BytesSent / BytesReceived count the payload bytes of those
	// transfers (framed records plus manifests).
	BytesSent, BytesReceived uint64
}

// ExchangeFunc performs one push-pull exchange with a dialed peer.
type ExchangeFunc func(ctx context.Context, peer transport.Client, req Request) (Result, error)

// Config configures an Engine.
type Config struct {
	// Peers are the addresses eligible as gossip partners. Required,
	// non-empty.
	Peers []string
	// Fanout is how many peers each round exchanges with; zero means
	// DefaultFanout, capped at len(Peers).
	Fanout int
	// Interval is the round cadence for Start; zero means the engine is
	// driven manually through Round (harnesses, tests).
	Interval time.Duration
	// Jitter randomizes the cadence by ±Jitter (0.2 = ±20%). Zero means
	// DefaultJitter; negative disables jitter.
	Jitter float64
	// RumorTTL is how many successful exchanges each rumor rides; zero
	// means DefaultRumorTTL.
	RumorTTL int
	// AntiEntropyEvery forces a full reconciliation every Nth round; zero
	// means DefaultAntiEntropyEvery, 1 makes every round full, negative
	// disables the backstop.
	AntiEntropyEvery int
	// Timeout bounds one exchange; zero means DefaultTimeout.
	Timeout time.Duration
	// Seed seeds peer selection and jitter; zero uses the clock. The
	// resolved seed is logged and reported in Stats, so any run — chaos
	// tests included — replays exactly from its log line.
	Seed int64
	// Dial opens a client to a peer address. Required.
	Dial func(addr string) (transport.Client, error)
	// Exchange runs one push-pull exchange. Required.
	Exchange ExchangeFunc
	// Permitted, when non-nil, vets a peer's proven signing identity
	// before selection: a false answer (e.g. quarantined by the trust
	// policy) skips the peer without dialing.
	Permitted func(signer identity.PartyID) bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// OnRound, when non-nil, observes every completed round with whether
	// at least one exchange succeeded — the readiness-gate hook.
	OnRound func(exchanged bool)
}

// peerState is one peer's engine-side state, guarded by Engine.mu.
type peerState struct {
	addr   string
	client transport.Client
	signer identity.PartyID

	exchanges         uint64
	failures          uint64
	sent              uint64
	received          uint64
	skippedQuarantine uint64
}

// Engine runs gossip rounds. Build with New; drive with Round, or Start
// the background loop and Stop it on shutdown.
type Engine struct {
	cfg  Config
	seed int64

	// roundMu serializes rounds (the loop and manual Round callers);
	// mu guards the mutable state below and is never held across an
	// exchange.
	roundMu sync.Mutex
	mu      sync.Mutex
	rng     *rand.Rand
	peers   []*peerState
	board   map[identity.Hash]int // rumor key -> remaining TTL
	rounds  uint64
	exchgs  uint64
	fails   uint64
	inSync  uint64
	sent    uint64
	recvd   uint64
	bytesTx uint64
	bytesRx uint64

	ctx     context.Context
	cancel  context.CancelFunc
	exited  chan struct{}
	start   sync.Once
	stop    sync.Once
	looping bool // Start launched the loop goroutine
}

// New validates the configuration and builds an idle engine: no goroutine
// runs until Start, and Round can be called directly for manually stepped
// harnesses.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("gossip: engine needs at least one peer address")
	}
	if cfg.Dial == nil || cfg.Exchange == nil {
		return nil, errors.New("gossip: engine needs Dial and Exchange")
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("gossip: negative interval %s", cfg.Interval)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Fanout > len(cfg.Peers) {
		cfg.Fanout = len(cfg.Peers)
	}
	if cfg.RumorTTL <= 0 {
		cfg.RumorTTL = DefaultRumorTTL
	}
	switch {
	case cfg.AntiEntropyEvery == 0:
		cfg.AntiEntropyEvery = DefaultAntiEntropyEvery
	case cfg.AntiEntropyEvery < 0:
		cfg.AntiEntropyEvery = 0 // no backstop
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = DefaultJitter
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:    cfg,
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		board:  make(map[identity.Hash]int),
		ctx:    ctx,
		cancel: cancel,
		exited: make(chan struct{}),
	}
	for _, addr := range cfg.Peers {
		e.peers = append(e.peers, &peerState{addr: addr})
	}
	// The seed line is what makes a chaos failure replayable: re-run with
	// Config.Seed set to the logged value and the same peer selections,
	// jitter and fault plans come back.
	cfg.Logf("gossip: fanout=%d rumor-ttl=%d anti-entropy-every=%d seed=%d",
		cfg.Fanout, cfg.RumorTTL, cfg.AntiEntropyEvery, seed)
	return e, nil
}

// Seed reports the resolved selection/jitter seed (the logged value).
func (e *Engine) Seed() int64 { return e.seed }

// AddRumor marks a key hot: its record is pushed eagerly on the next
// RumorTTL successful exchanges. Safe from any goroutine; re-adding a
// key refreshes its TTL.
func (e *Engine) AddRumor(key identity.Hash) {
	e.mu.Lock()
	e.board[key] = e.cfg.RumorTTL
	e.mu.Unlock()
}

// Start launches the background round loop: one round immediately, then
// one per jittered interval until Stop. It is an error to Start an
// engine configured without an Interval (a manually stepped one).
func (e *Engine) Start() error {
	if e.cfg.Interval <= 0 {
		return errors.New("gossip: Start needs Config.Interval (zero means manual Round stepping)")
	}
	e.start.Do(func() {
		if e.ctx.Err() != nil {
			return // already stopped; never launch
		}
		e.mu.Lock()
		e.looping = true
		e.mu.Unlock()
		go e.run()
	})
	return nil
}

// Stop halts the loop, cancels any in-flight exchange, and closes the
// peer clients. Safe to call more than once, and valid for manually
// stepped engines too (it releases the clients Round dialed).
func (e *Engine) Stop() {
	e.stop.Do(func() {
		e.cancel()
		e.mu.Lock()
		looping := e.looping
		e.mu.Unlock()
		if looping {
			<-e.exited
		}
		// Serialize with any in-flight manual Round, then release clients.
		e.roundMu.Lock()
		defer e.roundMu.Unlock()
		e.mu.Lock()
		defer e.mu.Unlock()
		for _, p := range e.peers {
			if p.client != nil {
				_ = p.client.Close()
				p.client = nil
			}
		}
	})
}

// run is the loop goroutine.
func (e *Engine) run() {
	defer close(e.exited)
	_ = e.Round(e.ctx)
	for {
		e.mu.Lock()
		d := e.jitterLocked(e.cfg.Interval)
		e.mu.Unlock()
		timer := time.NewTimer(d)
		select {
		case <-e.ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		if err := e.Round(e.ctx); err != nil && e.ctx.Err() == nil {
			e.cfg.Logf("gossip: round: %v", err)
		}
	}
}

// Round runs one gossip round: pick Fanout random non-quarantined peers,
// exchange with each (rumors pushed, fingerprints probed, reconciliation
// when they disagree or the anti-entropy backstop is due), then age the
// rumor board by the number of successful exchanges. Rounds serialize;
// concurrent callers queue. The error is the context's, never a peer's —
// peer failures are counted, logged and survived.
func (e *Engine) Round(ctx context.Context) error {
	e.roundMu.Lock()
	defer e.roundMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	e.mu.Lock()
	e.rounds++
	full := e.cfg.AntiEntropyEvery > 0 && e.rounds%uint64(e.cfg.AntiEntropyEvery) == 0
	partners := e.selectLocked()
	rumors := make([]identity.Hash, 0, len(e.board))
	for k := range e.board {
		rumors = append(rumors, k)
	}
	e.mu.Unlock()

	succeeded := 0
	for _, p := range partners {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if e.exchangeWith(ctx, p, Request{Rumors: rumors, Full: full}) {
			succeeded++
		}
	}

	e.mu.Lock()
	if succeeded > 0 {
		for _, k := range rumors {
			if ttl, ok := e.board[k]; ok {
				if ttl -= succeeded; ttl <= 0 {
					delete(e.board, k)
				} else {
					e.board[k] = ttl
				}
			}
		}
	}
	e.mu.Unlock()
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(succeeded > 0)
	}
	return nil
}

// selectLocked picks this round's partners: a seeded shuffle of the peer
// list, keeping the first Fanout peers whose proven identity the
// Permitted hook does not veto. Peers with no proven identity yet are
// always eligible — their first exchange is what proves it, and the
// service-side federation gate refuses their data regardless if they
// turn out quarantined. Callers hold e.mu.
func (e *Engine) selectLocked() []*peerState {
	order := e.rng.Perm(len(e.peers))
	picked := make([]*peerState, 0, e.cfg.Fanout)
	for _, i := range order {
		if len(picked) == e.cfg.Fanout {
			break
		}
		p := e.peers[i]
		if p.signer != "" && e.cfg.Permitted != nil && !e.cfg.Permitted(p.signer) {
			p.skippedQuarantine++
			continue
		}
		picked = append(picked, p)
	}
	return picked
}

// exchangeWith runs one peer's exchange and folds the result into the
// counters. A failure closes the peer's client so the next selection
// re-dials fresh.
func (e *Engine) exchangeWith(ctx context.Context, p *peerState, req Request) bool {
	e.mu.Lock()
	client := p.client
	e.mu.Unlock()
	if client == nil {
		c, err := e.cfg.Dial(p.addr)
		if err != nil {
			e.cfg.Logf("gossip: %s unreachable: %v", p.addr, err)
			e.noteFailure(p, nil)
			return false
		}
		e.mu.Lock()
		p.client = c
		e.mu.Unlock()
		client = c
	}
	exCtx, cancel := context.WithTimeout(ctx, e.cfg.Timeout)
	res, err := e.cfg.Exchange(exCtx, client, req)
	cancel()
	if res.Signer != "" {
		e.mu.Lock()
		p.signer = res.Signer
		e.mu.Unlock()
	}
	if err != nil {
		if ctx.Err() != nil {
			return false // shutdown mid-exchange: not a peer failure
		}
		e.cfg.Logf("gossip: exchange with %s: %v", p.addr, err)
		e.noteFailure(p, client)
		return false
	}
	e.mu.Lock()
	p.exchanges++
	p.sent += uint64(res.Sent)
	p.received += uint64(res.Received)
	e.exchgs++
	e.sent += uint64(res.Sent)
	e.recvd += uint64(res.Received)
	e.bytesTx += res.BytesSent
	e.bytesRx += res.BytesReceived
	if res.InSync {
		e.inSync++
	}
	e.mu.Unlock()
	if res.Sent > 0 || res.Received > 0 {
		e.cfg.Logf("gossip: exchanged with %s: sent=%d received=%d", p.addr, res.Sent, res.Received)
	}
	return true
}

// noteFailure counts one failed exchange and releases the peer's client.
func (e *Engine) noteFailure(p *peerState, client transport.Client) {
	e.mu.Lock()
	p.failures++
	e.fails++
	if p.client == client && client != nil {
		_ = client.Close()
		p.client = nil
	}
	e.mu.Unlock()
}

// jitterLocked randomizes a duration by ±cfg.Jitter. Callers hold e.mu.
func (e *Engine) jitterLocked(d time.Duration) time.Duration {
	j := e.cfg.Jitter
	if j <= 0 {
		return d
	}
	delta := float64(d) * j
	return time.Duration(float64(d) - delta + 2*delta*e.rng.Float64())
}

// Stats is a point-in-time snapshot of the engine's counters, carried in
// the service Stats tree as the "gossip" section.
type Stats struct {
	// Rounds counts completed gossip rounds; Exchanges the successful
	// peer exchanges inside them and Failures the failed ones.
	Rounds    uint64 `json:"rounds"`
	Exchanges uint64 `json:"exchanges"`
	Failures  uint64 `json:"failures,omitempty"`
	// InSync counts exchanges settled by fingerprint agreement alone — a
	// converged federation idles at InSync ≈ Exchanges, which is the
	// convergence signal dashboards watch.
	InSync uint64 `json:"inSync,omitempty"`
	// RecordsSent / RecordsReceived count records pushed to and pulled
	// from peers; BytesSent / BytesReceived the payload bytes moved.
	RecordsSent     uint64 `json:"recordsSent,omitempty"`
	RecordsReceived uint64 `json:"recordsReceived,omitempty"`
	BytesSent       uint64 `json:"bytesSent,omitempty"`
	BytesReceived   uint64 `json:"bytesReceived,omitempty"`
	// RumorsPending is the hot-record board's current population.
	RumorsPending int `json:"rumorsPending,omitempty"`
	// Fanout and Seed echo the engine's resolved configuration; Seed is
	// what replays a run.
	Fanout int   `json:"fanout"`
	Seed   int64 `json:"seed"`
	// Peers is the per-peer view, in configured order.
	Peers []PeerStats `json:"peers,omitempty"`
}

// PeerStats is one peer's gossip history.
type PeerStats struct {
	// Address is the configured peer address; Signer the identity its
	// exchanges proved (empty until the first completed exchange).
	Address string           `json:"address"`
	Signer  identity.PartyID `json:"signer,omitempty"`
	// Exchanges / Failures count completed and failed exchanges;
	// RecordsSent / RecordsReceived the records moved with this peer.
	Exchanges       uint64 `json:"exchanges"`
	Failures        uint64 `json:"failures,omitempty"`
	RecordsSent     uint64 `json:"recordsSent,omitempty"`
	RecordsReceived uint64 `json:"recordsReceived,omitempty"`
	// SkippedQuarantine counts selections that passed over the peer
	// because the trust policy quarantines its proven identity.
	SkippedQuarantine uint64 `json:"skippedQuarantine,omitempty"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Rounds:          e.rounds,
		Exchanges:       e.exchgs,
		Failures:        e.fails,
		InSync:          e.inSync,
		RecordsSent:     e.sent,
		RecordsReceived: e.recvd,
		BytesSent:       e.bytesTx,
		BytesReceived:   e.bytesRx,
		RumorsPending:   len(e.board),
		Fanout:          e.cfg.Fanout,
		Seed:            e.seed,
	}
	for _, p := range e.peers {
		st.Peers = append(st.Peers, PeerStats{
			Address:           p.addr,
			Signer:            p.signer,
			Exchanges:         p.exchanges,
			Failures:          p.failures,
			RecordsSent:       p.sent,
			RecordsReceived:   p.received,
			SkippedQuarantine: p.skippedQuarantine,
		})
	}
	return st
}
