package participation

import (
	"testing"

	"rationality/internal/numeric"
)

func TestLastMoverAdviceRule(t *testing.T) {
	g := paperGame() // n = 3, k = 2, v = 8, c = 3
	cases := []struct {
		count    int
		want     Decision
		wantGain string
	}{
		{0, Abstain, "0"},     // solo entry would pay −c
		{1, Participate, "5"}, // completes the quorum: v − c = 5 (the paper's 5v/8)
		{2, Abstain, "8"},     // quorum met: free ride for v
	}
	for _, c := range cases {
		got, gain, err := g.LastMoverAdvice(c.count)
		if err != nil {
			t.Fatalf("count %d: %v", c.count, err)
		}
		if got != c.want {
			t.Errorf("count %d: advice = %v, want %v", c.count, got, c.want)
		}
		if gain.RatString() != c.wantGain {
			t.Errorf("count %d: gain = %s, want %s", c.count, gain.RatString(), c.wantGain)
		}
	}
	if _, _, err := g.LastMoverAdvice(-1); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := g.LastMoverAdvice(3); err == nil {
		t.Error("count beyond n−1 accepted")
	}
}

func TestVerifyLastMoverAdvice(t *testing.T) {
	g := paperGame()
	// Honest advice verifies and returns the gain.
	gain, err := g.VerifyLastMoverAdvice(1, Participate)
	if err != nil {
		t.Fatalf("honest advice rejected: %v", err)
	}
	if gain.RatString() != "5" {
		t.Errorf("gain = %s, want 5", gain.RatString())
	}

	// The paper: "false advice to the last agent, i.e., a flip of the value
	// of p, will result in a loss!"
	if _, err := g.VerifyLastMoverAdvice(1, Abstain); err == nil {
		t.Error("flipped advice (abstain when pivotal) accepted")
	}
	if _, err := g.VerifyLastMoverAdvice(0, Participate); err == nil {
		t.Error("flipped advice (solo participation) accepted")
	}
	if _, err := g.VerifyLastMoverAdvice(2, Participate); err == nil {
		t.Error("flipped advice (paying fee when free-riding is available) accepted")
	}
	if _, err := g.VerifyLastMoverAdvice(7, Abstain); err == nil {
		t.Error("impossible count accepted")
	}
}

// The paper's online numbers: the last firm gains v − c = 5v/8 when advised
// p = 1 and v when the quorum is already met; under a random arrival order
// the expected gain of any firm is at least 1/3 · 5v/8 = 5v/24, better than
// the offline v/16.
func TestOnlineOutcomePaperBound(t *testing.T) {
	g := paperGame() // v = 8: 5v/24 = 5/3, v/16 = 1/2.
	p := numeric.R(1, 4)
	out, err := g.AnalyzeOnline(p, false)
	if err != nil {
		t.Fatal(err)
	}

	// Exact last-mover expectation with two early movers at p = 1/4:
	// Pr{count=1} = 2·(1/4)(3/4) = 6/16 → gain 5; Pr{count=2} = 1/16 → gain 8;
	// Pr{count=0} = 9/16 → gain 0. Total = 30/16 + 8/16 = 38/16 = 19/8.
	if out.LastMoverGain.RatString() != "19/8" {
		t.Errorf("LastMoverGain = %s, want 19/8", out.LastMoverGain.RatString())
	}

	bound := numeric.MustRat("5/3") // 5v/24
	if numeric.Lt(out.RandomOrderGain, bound) {
		t.Errorf("RandomOrderGain = %s < paper bound 5v/24 = %s",
			out.RandomOrderGain.RatString(), bound.RatString())
	}
	offline := numeric.R(1, 2) // v/16
	if !numeric.Gt(out.RandomOrderGain, offline) {
		t.Errorf("online gain %s does not beat offline v/16 = %s",
			out.RandomOrderGain.RatString(), offline.RatString())
	}

	// The early movers benefit too: a participating early mover is always
	// completed to quorum by the last mover, so its gain is v − c > 0.
	if out.EarlyMoverGain.Sign() <= 0 {
		t.Errorf("EarlyMoverGain = %s, want positive", out.EarlyMoverGain.RatString())
	}
}

func TestOnlineFlippedAdviceCausesLoss(t *testing.T) {
	g := paperGame()
	p := numeric.R(1, 4)
	honest, err := g.AnalyzeOnline(p, false)
	if err != nil {
		t.Fatal(err)
	}
	flipped, err := g.AnalyzeOnline(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Lt(flipped.LastMoverGain, honest.LastMoverGain) {
		t.Errorf("flipped advice (%s) should hurt the last mover vs honest (%s)",
			flipped.LastMoverGain.RatString(), honest.LastMoverGain.RatString())
	}
	// With 9/16 probability nobody has entered and the flipped advice says
	// participate → pays −c: the last mover's expectation must be negative...
	// Pr0·(−3) + Pr1·0 + Pr2·5 = 9/16·(−3) + 1/16·5 = −22/16 = −11/8.
	if flipped.LastMoverGain.RatString() != "-11/8" {
		t.Errorf("flipped LastMoverGain = %s, want -11/8", flipped.LastMoverGain.RatString())
	}
}

func TestAnalyzeOnlineValidation(t *testing.T) {
	g := paperGame()
	if _, err := g.AnalyzeOnline(numeric.I(-1), false); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := g.AnalyzeOnline(numeric.I(2), false); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestAnalyzeOnlineDegenerateProbabilities(t *testing.T) {
	g := paperGame()
	// p = 0: early movers never enter; the last mover abstains; everyone 0.
	out, err := g.AnalyzeOnline(numeric.Zero(), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.LastMoverGain.Sign() != 0 || out.EarlyMoverGain.Sign() != 0 {
		t.Errorf("p = 0 should give all-zero gains, got %+v", out)
	}
	// p = 1: both early movers enter; last mover free-rides for v = 8; early
	// movers get v − c = 5 each.
	out, err = g.AnalyzeOnline(numeric.One(), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.LastMoverGain.RatString() != "8" {
		t.Errorf("LastMoverGain = %s, want 8", out.LastMoverGain.RatString())
	}
	if out.EarlyMoverGain.RatString() != "5" {
		t.Errorf("EarlyMoverGain = %s, want 5", out.EarlyMoverGain.RatString())
	}
}

func TestDecisionString(t *testing.T) {
	if Participate.String() != "participate" || Abstain.String() != "abstain" {
		t.Error("Decision.String misbehaves")
	}
}

func TestOnlineLargerGame(t *testing.T) {
	// n = 5, k = 2, v = 8, c = 3: the mechanism scales; the random-order
	// gain still beats the offline equilibrium gain.
	g := MustNew(5, 2, numeric.I(8), numeric.I(3))
	p, ok := g.SolveExact(LowBranch, 64)
	if !ok {
		// Fall back to a bisected root; the comparison only needs a
		// reasonable p.
		var err error
		p, _, err = g.Solve(LowBranch, numeric.R(1, 1<<24))
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := g.AnalyzeOnline(p, false)
	if err != nil {
		t.Fatal(err)
	}
	offlineGain := g.GainAbstain(p)
	if !numeric.Gt(out.RandomOrderGain, offlineGain) {
		t.Errorf("online %s should beat offline %s",
			out.RandomOrderGain.RatString(), offlineGain.RatString())
	}
}
