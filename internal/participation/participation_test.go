package participation

import (
	"errors"
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

// paperGame is the §5 worked example: n = 3 firms, k = 2, c/v = 3/8.
// With v = 8 and c = 3 all the paper's quantities are exact rationals.
func paperGame() *Game {
	return MustNew(3, 2, numeric.I(8), numeric.I(3))
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		n, k    int
		v, c    *numeric.Rat
		wantErr bool
	}{
		{"valid", 3, 2, numeric.I(8), numeric.I(3), false},
		{"k too small", 3, 1, numeric.I(8), numeric.I(3), true},
		{"n below quorum", 2, 3, numeric.I(8), numeric.I(3), true},
		{"zero fee", 3, 2, numeric.I(8), numeric.Zero(), true},
		{"fee above prize", 3, 2, numeric.I(3), numeric.I(8), true},
		{"fee equals prize", 3, 2, numeric.I(3), numeric.I(3), true},
		{"n equals k", 4, 4, numeric.I(8), numeric.I(3), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.n, c.k, c.v, c.c)
			if (err != nil) != c.wantErr {
				t.Fatalf("New(%d, %d) error = %v, wantErr = %v", c.n, c.k, err, c.wantErr)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	g := paperGame()
	if g.N() != 3 || g.K() != 2 {
		t.Errorf("N, K = %d, %d", g.N(), g.K())
	}
	if g.V().RatString() != "8" || g.C().RatString() != "3" {
		t.Errorf("V, C = %s, %s", g.V(), g.C())
	}
	// Accessors copy.
	v := g.V()
	v.SetInt64(0)
	if g.V().RatString() != "8" {
		t.Error("V leaked internal state")
	}
}

// The paper's k = 2 closed forms:
// A = 1−(1−p)^{n−1}, B = (1−p)^{n−1},
// C = 1−(1−p)^{n−1}−(n−1)p(1−p)^{n−2}, D = (1−p)^{n−1}+(n−1)p(1−p)^{n−2}.
func TestConditionalProbabilitiesK2ClosedForm(t *testing.T) {
	g := paperGame()
	p := numeric.R(1, 4)
	q := numeric.R(3, 4)

	wantA := numeric.Sub(numeric.One(), numeric.Pow(q, 2)) // 1 − 9/16 = 7/16
	if got := g.Ak(p); !numeric.Eq(got, wantA) {
		t.Errorf("Ak = %s, want %s", got.RatString(), wantA.RatString())
	}
	if got := g.Bk(p); !numeric.Eq(got, numeric.Pow(q, 2)) {
		t.Errorf("Bk = %s, want 9/16", got.RatString())
	}
	// C = 1 − 9/16 − 2·(1/4)(3/4) = 1 − 9/16 − 6/16 = 1/16.
	if got := g.Ck(p); got.RatString() != "1/16" {
		t.Errorf("Ck = %s, want 1/16", got.RatString())
	}
	if got := g.Dk(p); got.RatString() != "15/16" {
		t.Errorf("Dk = %s, want 15/16", got.RatString())
	}
}

func TestProbabilitiesComplement(t *testing.T) {
	g := MustNew(7, 3, numeric.I(10), numeric.I(2))
	for _, ps := range []string{"0", "1/7", "2/5", "9/10", "1"} {
		p := numeric.MustRat(ps)
		if !numeric.Eq(numeric.Add(g.Ak(p), g.Bk(p)), numeric.One()) {
			t.Errorf("p = %s: Ak + Bk != 1", ps)
		}
		if !numeric.Eq(numeric.Add(g.Ck(p), g.Dk(p)), numeric.One()) {
			t.Errorf("p = %s: Ck + Dk != 1", ps)
		}
		// Participating can only help the quorum: Ak >= Ck.
		if numeric.Lt(g.Ak(p), g.Ck(p)) {
			t.Errorf("p = %s: Ak < Ck", ps)
		}
	}
}

// The paper: for c/v = 3/8 and n = 3, the equilibrium is p = 1/4 and the
// firm's expected gain is v/16.
func TestPaperEquilibriumNumbers(t *testing.T) {
	g := paperGame()
	p := numeric.R(1, 4)

	gain, err := g.VerifyAdvice(p)
	if err != nil {
		t.Fatalf("p = 1/4 rejected: %v", err)
	}
	// v/16 with v = 8 is 1/2.
	if gain.RatString() != "1/2" {
		t.Errorf("equilibrium gain = %s, want v/16 = 1/2", gain.RatString())
	}
	// Eq. (4): c = v(n−1)p(1−p)^{n−2} → 3 = 8·2·(1/4)·(3/4) = 3. ✓
	if g.PivotGap(p).Sign() != 0 {
		t.Errorf("PivotGap(1/4) = %s, want 0", g.PivotGap(p).RatString())
	}
}

func TestVerifyAdviceRejectsWrongP(t *testing.T) {
	g := paperGame()
	for _, ps := range []string{"1/3", "1/8", "0", "1", "-1/4", "9/8"} {
		if _, err := g.VerifyAdvice(numeric.MustRat(ps)); err == nil {
			t.Errorf("p = %s accepted", ps)
		}
	}
	// The high-branch root 1/2 is also a valid equilibrium: c = 8·2·(1/2)(1/2) = 4?
	// No: 8·2·(1/2)·(1/2) = 4 != 3, so 1/2 is NOT a root here. The true high
	// root solves 16p(1−p) = 3 → p = 3/4·... Let's verify: p = 3/4 gives
	// 16·(3/4)(1/4) = 3. ✓
	if _, err := g.VerifyAdvice(numeric.R(3, 4)); err != nil {
		t.Errorf("high-branch root 3/4 rejected: %v", err)
	}
}

func TestVerifyAdviceApprox(t *testing.T) {
	g := paperGame()
	nearRoot := numeric.MustRat("2499/10000") // close to 1/4
	if _, err := g.VerifyAdvice(nearRoot); err == nil {
		t.Fatal("inexact root accepted by the exact verifier")
	}
	if _, err := g.VerifyAdviceApprox(nearRoot, numeric.R(1, 100)); err != nil {
		t.Fatalf("near-root rejected with generous tolerance: %v", err)
	}
	if _, err := g.VerifyAdviceApprox(nearRoot, numeric.R(1, 1000000)); err == nil {
		t.Fatal("near-root accepted with tight tolerance")
	}
	if _, err := g.VerifyAdviceApprox(nearRoot, numeric.I(-1)); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestIndifferenceGapEqualsPivotGapIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		k := 2 + rng.Intn(n-1)
		if k > n {
			k = n
		}
		v := numeric.I(int64(2 + rng.Intn(20)))
		c := numeric.Div(v, numeric.I(int64(2+rng.Intn(8))))
		g, err := New(n, k, v, c)
		if err != nil {
			continue
		}
		p := numeric.R(int64(1+rng.Intn(9)), 10)
		if !numeric.Eq(g.IndifferenceGap(p), g.PivotGap(p)) {
			t.Fatalf("trial %d (n=%d k=%d p=%s): IndifferenceGap %s != PivotGap %s",
				trial, n, k, p.RatString(),
				g.IndifferenceGap(p).RatString(), g.PivotGap(p).RatString())
		}
	}
}

func TestSolveExactFindsPaperRoots(t *testing.T) {
	g := paperGame()
	low, ok := g.SolveExact(LowBranch, 16)
	if !ok || low.RatString() != "1/4" {
		t.Fatalf("low root = %v (ok=%v), want 1/4", low, ok)
	}
	high, ok := g.SolveExact(HighBranch, 16)
	if !ok || high.RatString() != "3/4" {
		t.Fatalf("high root = %v (ok=%v), want 3/4", high, ok)
	}
}

func TestSolveBisection(t *testing.T) {
	g := paperGame()
	p, gap, err := g.Solve(LowBranch, numeric.R(1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Must be within tolerance of 1/4.
	delta := numeric.Abs(numeric.Sub(p, numeric.R(1, 4)))
	if numeric.Gt(delta, numeric.R(1, 1<<20)) {
		t.Errorf("low root %s not within tolerance of 1/4", p.RatString())
	}
	_ = gap

	p, _, err = g.Solve(HighBranch, numeric.R(1, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	delta = numeric.Abs(numeric.Sub(p, numeric.R(3, 4)))
	if numeric.Gt(delta, numeric.R(1, 1<<20)) {
		t.Errorf("high root %s not within tolerance of 3/4", p.RatString())
	}
}

func TestSolveNoEquilibriumWhenFeeTooHigh(t *testing.T) {
	// Peak pivot value at n=3, k=2 is v·2·(1/2)(1/2) = v/2; any c > v/2
	// admits no interior symmetric equilibrium.
	g := MustNew(3, 2, numeric.I(8), numeric.I(5))
	if _, _, err := g.Solve(LowBranch, numeric.R(1, 1024)); !errors.Is(err, ErrNoSymmetricEquilibrium) {
		t.Fatalf("err = %v, want ErrNoSymmetricEquilibrium", err)
	}
}

func TestSolveUnanimityQuorumEdge(t *testing.T) {
	// n == k: the quorum needs everyone, the pivot peak sits at p = 1, and
	// the whole of (0, 1] is the "low" branch. The interior root of
	// v·p^{k−1} = c is (c/v)^{1/(k−1)}; with v = 8, c = 2, k = n = 3 that is
	// p = 1/2 exactly.
	g := MustNew(3, 3, numeric.I(8), numeric.I(2))
	p, ok := g.SolveExact(LowBranch, 8)
	if !ok || p.RatString() != "1/2" {
		t.Fatalf("p = %v ok=%v, want 1/2", p, ok)
	}
	if _, err := g.VerifyAdvice(p); err != nil {
		t.Fatalf("unanimity-quorum advice rejected: %v", err)
	}
	// The high branch is empty ([peak, 1) with peak = 1): bisection
	// degenerates and reports a non-zero gap rather than a fake root.
	hp, gap, err := g.Solve(HighBranch, numeric.R(1, 1024))
	if err != nil {
		t.Fatalf("high branch errored: %v", err)
	}
	if gap.Sign() == 0 && hp.Cmp(numeric.One()) < 0 {
		t.Fatalf("high branch fabricated an interior root %s", hp.RatString())
	}
}

func TestSolveValidation(t *testing.T) {
	g := paperGame()
	if _, _, err := g.Solve(LowBranch, numeric.Zero()); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, _, err := g.Solve(Branch(9), numeric.R(1, 4)); err == nil {
		t.Error("unknown branch accepted")
	}
}

func TestSolveGeneralK(t *testing.T) {
	// n = 5, k = 3: the inventor must find a root of
	// v·C(4,2)·p²(1−p)² = c. With v = 6, c = 6·6·(1/4·1/4·... pick p = 1/2:
	// 6·6·(1/4)(1/4) = 9/4. Use c = 9/4 so p = 1/2 is exact.
	g := MustNew(5, 3, numeric.I(6), numeric.R(9, 4))
	p, ok := g.SolveExact(LowBranch, 8)
	if !ok {
		t.Fatal("no exact root found")
	}
	if p.RatString() != "1/2" {
		t.Fatalf("p = %s, want 1/2", p.RatString())
	}
	if _, err := g.VerifyAdvice(p); err != nil {
		t.Fatalf("general-k advice rejected: %v", err)
	}
}

// Property: whatever Solve returns on either branch has |gap| small, and
// VerifyAdviceApprox accepts it with the same tolerance scaled by the
// pivot's Lipschitz slack.
func TestSolveThenVerifyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		v := numeric.I(int64(4 + rng.Intn(12)))
		c := numeric.Div(v, numeric.I(int64(4+rng.Intn(12))))
		g, err := New(n, 2, v, c)
		if err != nil {
			continue
		}
		tol := numeric.R(1, 1<<24)
		p, _, err := g.Solve(LowBranch, tol)
		if errors.Is(err, ErrNoSymmetricEquilibrium) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The gap at the returned p must be tiny: accept with a loose
		// tolerance derived from v and n.
		loose := numeric.Div(numeric.Mul(v, numeric.I(int64(n*n))), numeric.I(1<<20))
		if _, err := g.VerifyAdviceApprox(p, loose); err != nil {
			t.Fatalf("trial %d: solver output rejected: %v", trial, err)
		}
	}
}
