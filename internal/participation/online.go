package participation

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// This file implements §5's "On-line Participation": firms decide in
// sequence, and the inventor — who observes how many firms have already
// entered — advises the last mover deterministically. For k = 2 the paper's
// rule is: participate exactly when one other firm has already entered
// (completing the quorum earns v − c); abstain when none has (a solo entry
// pays −c) and when the quorum is already met (free-riding earns v).
//
// Such advice is trivially *verifiable* given the disclosed count — the
// paper notes this verification method reveals how many firms have played —
// and false advice to the last mover causes an outright loss, which is the
// point of requiring proofs: a counselee can always audit the consultant.

// Decision is the advised action for one firm.
type Decision bool

// Advised actions.
const (
	Participate Decision = true
	Abstain     Decision = false
)

func (d Decision) String() string {
	if d == Participate {
		return "participate"
	}
	return "abstain"
}

// LastMoverAdvice returns the inventor's advice for the final firm given the
// number of firms that already chose to participate, together with the exact
// gain the firm will realize by following it.
func (g *Game) LastMoverAdvice(participantsSoFar int) (Decision, *big.Rat, error) {
	if participantsSoFar < 0 || participantsSoFar > g.n-1 {
		return Abstain, nil, fmt.Errorf("participation: %d prior participants impossible with n = %d",
			participantsSoFar, g.n)
	}
	d := g.bestLastMove(participantsSoFar)
	return d, g.lastMoverGain(participantsSoFar, d), nil
}

// VerifyLastMoverAdvice checks that the advised decision is a best reply
// given the disclosed count, returning the guaranteed gain. A flipped
// (false) advice is rejected with the loss it would have caused, so the
// agent can quantify the damage when reporting the inventor.
func (g *Game) VerifyLastMoverAdvice(participantsSoFar int, advised Decision) (*big.Rat, error) {
	if participantsSoFar < 0 || participantsSoFar > g.n-1 {
		return nil, fmt.Errorf("participation: %d prior participants impossible with n = %d",
			participantsSoFar, g.n)
	}
	gainAdvised := g.lastMoverGain(participantsSoFar, advised)
	gainOther := g.lastMoverGain(participantsSoFar, !advised)
	if numeric.Lt(gainAdvised, gainOther) {
		return nil, fmt.Errorf(
			"participation: advice %q is not a best reply with %d prior participants: it yields %s, the alternative %s",
			advised, participantsSoFar, gainAdvised.RatString(), gainOther.RatString())
	}
	return gainAdvised, nil
}

// bestLastMove picks the gain-maximizing decision (ties go to Abstain,
// which risks nothing).
func (g *Game) bestLastMove(count int) Decision {
	if numeric.Gt(g.lastMoverGain(count, Participate), g.lastMoverGain(count, Abstain)) {
		return Participate
	}
	return Abstain
}

// lastMoverGain is the deterministic payoff of the last mover.
func (g *Game) lastMoverGain(count int, d Decision) *big.Rat {
	if d == Participate {
		if count+1 >= g.k {
			return numeric.Sub(g.v, g.c) // quorum met including the firm
		}
		return numeric.Neg(g.c) // paid the fee, no quorum
	}
	if count >= g.k {
		return numeric.Copy(g.v) // free ride on an already-met quorum
	}
	return numeric.Zero()
}

// OnlineOutcome is the exact analysis of the sequential game where the
// first n−1 firms play the symmetric offline equilibrium probability p and
// the last firm follows the inventor (or its flipped, false advice).
type OnlineOutcome struct {
	// LastMoverGain is the last firm's expected gain before arrival order is
	// known.
	LastMoverGain *big.Rat
	// EarlyMoverGain is the expected gain of each of the first n−1 firms
	// (they are exchangeable).
	EarlyMoverGain *big.Rat
	// RandomOrderGain is a uniformly random firm's expected gain:
	// (1/n)·LastMoverGain + ((n−1)/n)·EarlyMoverGain.
	RandomOrderGain *big.Rat
}

// AnalyzeOnline computes OnlineOutcome exactly by enumerating the 2^(n−1)
// participation patterns of the early movers, each weighted by p. Set
// flippedAdvice to analyze the paper's "false advice to the last agent"
// scenario, where the inventor inverts its recommendation.
func (g *Game) AnalyzeOnline(p *big.Rat, flippedAdvice bool) (*OnlineOutcome, error) {
	if p.Sign() < 0 || p.Cmp(numeric.One()) > 0 {
		return nil, fmt.Errorf("participation: probability %s outside [0, 1]", p.RatString())
	}
	m := g.n - 1 // early movers
	q := numeric.Sub(numeric.One(), p)

	lastGain := numeric.Zero()
	earlyGainTotal := numeric.Zero() // summed over the m early movers

	// Enumerate early-mover participation patterns.
	for mask := 0; mask < 1<<m; mask++ {
		count := popcount(mask)
		weight := numeric.Mul(numeric.Pow(p, count), numeric.Pow(q, m-count))

		advice := g.bestLastMove(count)
		if flippedAdvice {
			advice = !advice
		}
		lastParticipates := advice == Participate

		total := count
		if lastParticipates {
			total++
		}

		// Last mover's realized gain.
		lastGain = numeric.Add(lastGain, numeric.Mul(weight, g.realizedGain(lastParticipates, total)))

		// Early movers' realized gains.
		for i := 0; i < m; i++ {
			participated := mask&(1<<i) != 0
			earlyGainTotal = numeric.Add(earlyGainTotal,
				numeric.Mul(weight, g.realizedGain(participated, total)))
		}
	}

	early := numeric.Div(earlyGainTotal, numeric.I(int64(m)))
	random := numeric.Div(
		numeric.Add(lastGain, earlyGainTotal),
		numeric.I(int64(g.n)))
	return &OnlineOutcome{
		LastMoverGain:   lastGain,
		EarlyMoverGain:  early,
		RandomOrderGain: random,
	}, nil
}

// realizedGain is a firm's payoff given its own choice and the TOTAL number
// of participants (including itself when it participated).
func (g *Game) realizedGain(participated bool, total int) *big.Rat {
	if participated {
		if total >= g.k {
			return numeric.Sub(g.v, g.c)
		}
		return numeric.Neg(g.c)
	}
	if total >= g.k {
		return numeric.Copy(g.v)
	}
	return numeric.Zero()
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
