// Package participation implements the paper's §5 Participation game and its
// equilibrium consultant.
//
// n symmetric firms decide independently whether to enter an auction with
// participation fee c > 0 and prize value v > c:
//
//   - a firm gains v when at least k firms participate and it abstains;
//   - a firm gains v − c when at least k firms participate and it is one;
//   - a firm pays c when it participates but fewer than k firms do;
//   - everyone gains 0 when nobody participates.
//
// The game is symmetric, so by Nash's theorem it has a symmetric mixed
// equilibrium where every firm participates with the same probability p.
// Computing p requires root finding on Eq. (5)'s indifference condition —
// the inventor's job — but verifying a supplied p is a single exact
// evaluation of the conditional probabilities Ak, Bk, Ck, Dk, which is the
// rationality authority's point: advice is hard to produce, cheap to check.
//
// The online variant (§5, "On-line Participation") is in online.go.
package participation

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// Game is the Participation game ⟨n, v, c, k⟩.
type Game struct {
	n int
	k int
	v *big.Rat
	c *big.Rat
}

// New validates and constructs a Participation game. It requires
// v > c > 0 (so participating in a successful auction is worthwhile),
// n >= k >= 2 (a solo participant can never win).
func New(n, k int, v, c *big.Rat) (*Game, error) {
	if k < 2 {
		return nil, fmt.Errorf("participation: k = %d; the game needs k >= 2", k)
	}
	if n < k {
		return nil, fmt.Errorf("participation: n = %d firms cannot reach the k = %d quorum", n, k)
	}
	if c.Sign() <= 0 {
		return nil, fmt.Errorf("participation: participation fee c must be positive")
	}
	if v.Cmp(c) <= 0 {
		return nil, fmt.Errorf("participation: prize v must exceed the fee c")
	}
	return &Game{n: n, k: k, v: numeric.Copy(v), c: numeric.Copy(c)}, nil
}

// MustNew is New that panics on error.
func MustNew(n, k int, v, c *big.Rat) *Game {
	g, err := New(n, k, v, c)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of firms.
func (g *Game) N() int { return g.n }

// K returns the participation quorum.
func (g *Game) K() int { return g.k }

// V returns the prize value.
func (g *Game) V() *big.Rat { return numeric.Copy(g.v) }

// C returns the participation fee.
func (g *Game) C() *big.Rat { return numeric.Copy(g.c) }

// binomTail returns Pr[X >= lo] for X ~ Binomial(m, p), exactly.
func binomTail(m, lo int, p *big.Rat) *big.Rat {
	if lo <= 0 {
		return numeric.One()
	}
	if lo > m {
		return numeric.Zero()
	}
	q := numeric.Sub(numeric.One(), p)
	total := numeric.Zero()
	for j := lo; j <= m; j++ {
		term := numeric.Mul(numeric.Binomial(m, j), numeric.Mul(numeric.Pow(p, j), numeric.Pow(q, m-j)))
		total = numeric.Add(total, term)
	}
	return total
}

// Ak is Pr{at least k firms participate | f participates} when the other
// n−1 firms participate independently with probability p: the quorum needs
// at least k−1 of them.
func (g *Game) Ak(p *big.Rat) *big.Rat { return binomTail(g.n-1, g.k-1, p) }

// Bk is Pr{at most k−1 firms participate | f participates} = 1 − Ak.
func (g *Game) Bk(p *big.Rat) *big.Rat { return numeric.Sub(numeric.One(), g.Ak(p)) }

// Ck is Pr{at least k firms participate | f does not}: all k must come from
// the other n−1 firms.
func (g *Game) Ck(p *big.Rat) *big.Rat { return binomTail(g.n-1, g.k, p) }

// Dk is Pr{at most k−1 firms participate | f does not} = 1 − Ck.
func (g *Game) Dk(p *big.Rat) *big.Rat { return numeric.Sub(numeric.One(), g.Ck(p)) }

// GainParticipate is a firm's expected payoff for participating when every
// other firm participates with probability p: (v−c)·Ak + (−c)·Bk.
func (g *Game) GainParticipate(p *big.Rat) *big.Rat {
	vc := numeric.Sub(g.v, g.c)
	return numeric.Sub(numeric.Mul(vc, g.Ak(p)), numeric.Mul(g.c, g.Bk(p)))
}

// GainAbstain is a firm's expected payoff for abstaining: v·Ck + 0·Dk.
func (g *Game) GainAbstain(p *big.Rat) *big.Rat {
	return numeric.Mul(g.v, g.Ck(p))
}

// IndifferenceGap is the left-minus-right side of Eq. (5):
// (v−c)·Ak − c·Bk − v·Ck. It is zero exactly at a symmetric equilibrium.
func (g *Game) IndifferenceGap(p *big.Rat) *big.Rat {
	return numeric.Sub(g.GainParticipate(p), g.GainAbstain(p))
}

// PivotGap is the algebraically simplified gap
// v·C(n−1, k−1)·p^{k−1}·(1−p)^{n−k} − c, which for k = 2 is the paper's
// Eq. (4): c = v(n−1)p(1−p)^{n−2}. It must agree with IndifferenceGap for
// every p; the test suite checks this identity.
func (g *Game) PivotGap(p *big.Rat) *big.Rat {
	q := numeric.Sub(numeric.One(), p)
	pivot := numeric.Mul(g.v, numeric.Mul(numeric.Binomial(g.n-1, g.k-1),
		numeric.Mul(numeric.Pow(p, g.k-1), numeric.Pow(q, g.n-g.k))))
	return numeric.Sub(pivot, g.c)
}

// VerifyAdvice is the agent-side verifier of §5: given the inventor's
// advised probability p it asserts Eq. (5) exactly. On success it returns
// the firm's expected equilibrium gain (v·Ck, the abstain side of the
// indifference). It rejects p outside (0, 1) — the symmetric equilibrium of
// interest is interior — and any p that does not satisfy the indifference.
func (g *Game) VerifyAdvice(p *big.Rat) (*big.Rat, error) {
	if p.Sign() <= 0 || p.Cmp(numeric.One()) >= 0 {
		return nil, fmt.Errorf("participation: advised probability %s outside (0, 1)", p.RatString())
	}
	if gap := g.IndifferenceGap(p); gap.Sign() != 0 {
		return nil, fmt.Errorf("participation: advised p = %s violates the indifference condition by %s",
			p.RatString(), gap.RatString())
	}
	return g.GainAbstain(p), nil
}

// VerifyAdviceApprox accepts p whose indifference gap is within tol in
// absolute value, returning the gap. Inventors that compute p by numeric
// root finding cannot always land on an exact rational root; the agent
// decides how much slack to accept (tol = 0 reproduces VerifyAdvice).
func (g *Game) VerifyAdviceApprox(p, tol *big.Rat) (*big.Rat, error) {
	if tol.Sign() < 0 {
		return nil, fmt.Errorf("participation: negative tolerance")
	}
	if p.Sign() <= 0 || p.Cmp(numeric.One()) >= 0 {
		return nil, fmt.Errorf("participation: advised probability %s outside (0, 1)", p.RatString())
	}
	gap := g.IndifferenceGap(p)
	if numeric.Gt(numeric.Abs(gap), tol) {
		return nil, fmt.Errorf("participation: advised p = %s violates the indifference condition by %s (tolerance %s)",
			p.RatString(), gap.RatString(), tol.RatString())
	}
	return gap, nil
}
