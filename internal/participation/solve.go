package participation

import (
	"errors"
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// ErrNoSymmetricEquilibrium is returned by Solve when the fee is too high
// for any interior symmetric equilibrium to exist (c exceeds the maximum
// pivot probability payoff).
var ErrNoSymmetricEquilibrium = errors.New(
	"participation: no interior symmetric equilibrium: the fee exceeds the peak pivot value")

// Branch selects which root of the indifference condition Solve returns.
// The pivot gap v·C(n−1,k−1)·p^{k−1}(1−p)^{n−k} − c is unimodal with its
// peak at p* = (k−1)/(n−1); when c is below the peak there are two roots.
type Branch int

// Equilibrium branches.
const (
	// LowBranch is the root in (0, p*]: the "cautious" equilibrium with the
	// smaller participation probability.
	LowBranch Branch = iota + 1
	// HighBranch is the root in [p*, 1): more aggressive participation.
	HighBranch
)

// Solve computes the symmetric equilibrium probability on the requested
// branch. This is the inventor's hard computation. The root is generally
// irrational; Solve bisects with exact rational arithmetic until the
// enclosing interval is narrower than tol and returns its midpoint together
// with the exact indifference gap at that point. When the bisection lands on
// an exact root (as in the paper's c/v = 3/8, n = 3 example, where
// p = 1/4), the returned gap is exactly zero.
func (g *Game) Solve(branch Branch, tol *big.Rat) (p, gap *big.Rat, err error) {
	if tol.Sign() <= 0 {
		return nil, nil, fmt.Errorf("participation: tolerance must be positive")
	}
	peak := numeric.R(int64(g.k-1), int64(g.n-1))
	if g.PivotGap(peak).Sign() < 0 {
		return nil, nil, ErrNoSymmetricEquilibrium
	}

	var lo, hi *big.Rat
	switch branch {
	case LowBranch:
		lo, hi = numeric.Zero(), peak // gap(lo) = −c < 0 <= gap(hi)
	case HighBranch:
		lo, hi = peak, numeric.One() // gap(lo) >= 0 > gap(hi) = −c
	default:
		return nil, nil, fmt.Errorf("participation: unknown branch %d", int(branch))
	}

	// Invariant: the root lies in [lo, hi]; sign(gap) differs at the ends
	// (increasing on the low branch, decreasing on the high branch).
	increasing := branch == LowBranch
	half := numeric.R(1, 2)
	for numeric.Gt(numeric.Sub(hi, lo), tol) {
		mid := numeric.Mul(numeric.Add(lo, hi), half)
		s := g.PivotGap(mid).Sign()
		if s == 0 {
			return mid, numeric.Zero(), nil
		}
		below := s < 0 // gap negative at mid
		if below == increasing {
			lo = mid
		} else {
			hi = mid
		}
	}
	mid := numeric.Mul(numeric.Add(lo, hi), half)
	return mid, g.IndifferenceGap(mid), nil
}

// SolveExact tries small-denominator rationals for an exact equilibrium
// probability: every p = a/b with 2 <= b <= maxDenominator is tested against
// the exact indifference condition. The paper's worked example (n = 3,
// c/v = 3/8) has the exact roots p = 1/4 and p = 1/2. Returns ok = false
// when no exact rational root with such a denominator exists.
func (g *Game) SolveExact(branch Branch, maxDenominator int64) (p *big.Rat, ok bool) {
	peak := numeric.R(int64(g.k-1), int64(g.n-1))
	var best *big.Rat
	for b := int64(2); b <= maxDenominator; b++ {
		for a := int64(1); a < b; a++ {
			cand := numeric.R(a, b)
			onBranch := cand.Cmp(peak) <= 0
			if branch == HighBranch {
				onBranch = cand.Cmp(peak) >= 0
			}
			if !onBranch {
				continue
			}
			if g.IndifferenceGap(cand).Sign() == 0 {
				if best == nil || (branch == LowBranch && numeric.Lt(cand, best)) ||
					(branch == HighBranch && numeric.Gt(cand, best)) {
					best = cand
				}
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}
