// Package lottery implements the discussion scenario of the paper's §7: a
// lottery company sells x raffle tickets; it knows that fake tickets —
// almost indistinguishable from valid ones — are being sold in certain
// geographic areas. The company (as game inventor) advises participants to
// avoid buying in those areas, "supplying convincing proofs for identifying
// these fake raffles", so that participants keep their winning chance at
// 1/x. The information disclosure is minimal: the company publishes one
// salted commitment per ticket at issuance and only ever opens the
// commitments of challenged tickets, never the full fake list.
package lottery

import (
	"fmt"
	"io"
	"math/big"
	"sort"

	"rationality/internal/commitment"
	"rationality/internal/numeric"
)

// Ticket is one raffle ticket as known to the company.
type Ticket struct {
	Serial string
	Area   string
	Fake   bool
}

// Company is the lottery operator: it holds the ground truth and the
// commitment openings.
type Company struct {
	tickets map[string]Ticket
	comms   map[string]commitment.Commitment
	opens   map[string]*commitment.Opening
}

// NewCompany registers the tickets and commits to each ticket's validity.
// Serials must be unique and non-empty.
func NewCompany(tickets []Ticket, rng io.Reader) (*Company, error) {
	if len(tickets) == 0 {
		return nil, fmt.Errorf("lottery: no tickets")
	}
	c := &Company{
		tickets: make(map[string]Ticket, len(tickets)),
		comms:   make(map[string]commitment.Commitment, len(tickets)),
		opens:   make(map[string]*commitment.Opening, len(tickets)),
	}
	for _, t := range tickets {
		if t.Serial == "" {
			return nil, fmt.Errorf("lottery: empty serial")
		}
		if _, dup := c.tickets[t.Serial]; dup {
			return nil, fmt.Errorf("lottery: duplicate serial %q", t.Serial)
		}
		comm, open, err := commitment.CommitWithRand(validityClaim(t.Serial, t.Fake), rng)
		if err != nil {
			return nil, err
		}
		c.tickets[t.Serial] = t
		c.comms[t.Serial] = comm
		c.opens[t.Serial] = open
	}
	return c, nil
}

// validityClaim is the committed statement; binding the serial into the
// value stops a malicious company from reusing one ticket's opening for
// another.
func validityClaim(serial string, fake bool) []byte {
	status := "valid"
	if fake {
		status = "fake"
	}
	return []byte(serial + ":" + status)
}

// Commitments returns the published per-ticket commitments (the company's
// issuance-time disclosure).
func (c *Company) Commitments() map[string]commitment.Commitment {
	out := make(map[string]commitment.Commitment, len(c.comms))
	for s, cm := range c.comms {
		out[s] = cm
	}
	return out
}

// AdviseAvoidAreas returns the areas in which fake tickets circulate, in
// sorted order — the company's advice to participants.
func (c *Company) AdviseAvoidAreas() []string {
	seen := map[string]bool{}
	for _, t := range c.tickets {
		if t.Fake {
			seen[t.Area] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ProveTicket opens the validity commitment for one serial — the company's
// checkable proof when a participant challenges a specific ticket.
func (c *Company) ProveTicket(serial string) (*commitment.Opening, error) {
	open, ok := c.opens[serial]
	if !ok {
		return nil, fmt.Errorf("lottery: unknown serial %q", serial)
	}
	return open, nil
}

// VerifyTicketProof checks an opened validity claim against the published
// commitments. It returns whether the ticket is VALID. A mismatched or
// replayed opening is rejected.
func VerifyTicketProof(comms map[string]commitment.Commitment, serial string, open *commitment.Opening) (bool, error) {
	comm, ok := comms[serial]
	if !ok {
		return false, fmt.Errorf("lottery: no commitment published for serial %q", serial)
	}
	if err := commitment.Verify(comm, open); err != nil {
		return false, fmt.Errorf("lottery: proof for %q: %w", serial, err)
	}
	switch string(open.Value) {
	case serial + ":valid":
		return true, nil
	case serial + ":fake":
		return false, nil
	default:
		return false, fmt.Errorf("lottery: opening for %q carries a claim about a different ticket", serial)
	}
}

// WinProbability is the chance that a uniformly chosen ticket from the given
// area wins the (fair) lottery: valid tickets win with probability 1/x where
// x is the total number of valid tickets; fakes never win. An area with no
// tickets has probability zero.
func (c *Company) WinProbability(area string) *big.Rat {
	validTotal := 0
	inArea, validInArea := 0, 0
	for _, t := range c.tickets {
		if !t.Fake {
			validTotal++
		}
		if t.Area == area {
			inArea++
			if !t.Fake {
				validInArea++
			}
		}
	}
	if inArea == 0 || validTotal == 0 {
		return numeric.Zero()
	}
	// Pr[ticket valid] · 1/x = (validInArea/inArea) · (1/validTotal).
	return numeric.Div(
		numeric.R(int64(validInArea), int64(inArea)),
		numeric.I(int64(validTotal)))
}

// FairChance returns 1/x, the winning chance of a guaranteed-valid ticket.
func (c *Company) FairChance() *big.Rat {
	validTotal := 0
	for _, t := range c.tickets {
		if !t.Fake {
			validTotal++
		}
	}
	if validTotal == 0 {
		return numeric.Zero()
	}
	return numeric.R(1, int64(validTotal))
}

// AdviceValue quantifies the advice for a participant: the win probability
// when buying in a clean area minus the probability when buying in the
// avoided area — how much following the advice is worth.
func (c *Company) AdviceValue(cleanArea, avoidedArea string) *big.Rat {
	return numeric.Sub(c.WinProbability(cleanArea), c.WinProbability(avoidedArea))
}
