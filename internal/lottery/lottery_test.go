package lottery

import (
	"math/rand"
	"strings"
	"testing"

	"rationality/internal/numeric"
)

func testTickets() []Ticket {
	return []Ticket{
		{Serial: "T1", Area: "north", Fake: false},
		{Serial: "T2", Area: "north", Fake: false},
		{Serial: "T3", Area: "south", Fake: true},
		{Serial: "T4", Area: "south", Fake: false},
		{Serial: "T5", Area: "east", Fake: false},
	}
}

func newTestCompany(t *testing.T) *Company {
	t.Helper()
	c, err := NewCompany(testTickets(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCompanyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewCompany(nil, rng); err == nil {
		t.Error("empty ticket list accepted")
	}
	if _, err := NewCompany([]Ticket{{Serial: "", Area: "a"}}, rng); err == nil {
		t.Error("empty serial accepted")
	}
	if _, err := NewCompany([]Ticket{{Serial: "x"}, {Serial: "x"}}, rng); err == nil {
		t.Error("duplicate serial accepted")
	}
}

func TestAdviseAvoidAreas(t *testing.T) {
	c := newTestCompany(t)
	got := c.AdviseAvoidAreas()
	if len(got) != 1 || got[0] != "south" {
		t.Fatalf("AdviseAvoidAreas = %v, want [south]", got)
	}
}

func TestProveAndVerifyTicket(t *testing.T) {
	c := newTestCompany(t)
	comms := c.Commitments()

	open, err := c.ProveTicket("T3")
	if err != nil {
		t.Fatal(err)
	}
	valid, err := VerifyTicketProof(comms, "T3", open)
	if err != nil {
		t.Fatal(err)
	}
	if valid {
		t.Error("T3 is fake; proof says valid")
	}

	open1, err := c.ProveTicket("T1")
	if err != nil {
		t.Fatal(err)
	}
	valid, err = VerifyTicketProof(comms, "T1", open1)
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Error("T1 is valid; proof says fake")
	}

	if _, err := c.ProveTicket("nope"); err == nil {
		t.Error("unknown serial accepted")
	}
}

func TestVerifyTicketProofRejectsReplay(t *testing.T) {
	c := newTestCompany(t)
	comms := c.Commitments()
	// Opening for T1 (valid) replayed against T3's commitment must fail: the
	// serial is bound into the committed value.
	open1, err := c.ProveTicket("T1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyTicketProof(comms, "T3", open1); err == nil {
		t.Error("cross-serial replay accepted")
	}
	if _, err := VerifyTicketProof(comms, "ghost", open1); err == nil {
		t.Error("unknown serial accepted")
	}
}

func TestVerifyTicketProofRejectsTampering(t *testing.T) {
	c := newTestCompany(t)
	comms := c.Commitments()
	open, err := c.ProveTicket("T3")
	if err != nil {
		t.Fatal(err)
	}
	forged := *open
	forged.Value = []byte("T3:valid") // flip fake -> valid without the right salt
	if _, err := VerifyTicketProof(comms, "T3", &forged); err == nil ||
		!strings.Contains(err.Error(), "commitment") {
		t.Errorf("tampered proof accepted or wrong error: %v", err)
	}
}

func TestWinProbabilities(t *testing.T) {
	c := newTestCompany(t)
	// 4 valid tickets total → fair chance 1/4.
	if got := c.FairChance(); !numeric.Eq(got, numeric.R(1, 4)) {
		t.Errorf("FairChance = %s, want 1/4", got.RatString())
	}
	// North: all valid → 1/4.
	if got := c.WinProbability("north"); !numeric.Eq(got, numeric.R(1, 4)) {
		t.Errorf("north = %s, want 1/4", got.RatString())
	}
	// South: 1 of 2 valid → (1/2)·(1/4) = 1/8.
	if got := c.WinProbability("south"); !numeric.Eq(got, numeric.R(1, 8)) {
		t.Errorf("south = %s, want 1/8", got.RatString())
	}
	// Unknown area → 0.
	if c.WinProbability("mars").Sign() != 0 {
		t.Error("unknown area should have zero probability")
	}
}

func TestAdviceValue(t *testing.T) {
	c := newTestCompany(t)
	// Following the advice (buy north, not south) is worth 1/4 − 1/8 = 1/8.
	if got := c.AdviceValue("north", "south"); !numeric.Eq(got, numeric.R(1, 8)) {
		t.Errorf("AdviceValue = %s, want 1/8", got.RatString())
	}
}

func TestAllFakeLottery(t *testing.T) {
	c, err := NewCompany([]Ticket{
		{Serial: "F1", Area: "a", Fake: true},
		{Serial: "F2", Area: "a", Fake: true},
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if c.FairChance().Sign() != 0 || c.WinProbability("a").Sign() != 0 {
		t.Error("all-fake lottery should have zero winning chances")
	}
}

// Privacy: the published commitments alone do not reveal which tickets are
// fake — commitments of fake and valid tickets are indistinguishable without
// openings (different salts, no structure). We can't test indistinguishable
// distributions directly, but we can check that no commitment equals the
// unsalted hash of its claim, i.e. the salt matters.
func TestCommitmentsAreSalted(t *testing.T) {
	c := newTestCompany(t)
	comms := c.Commitments()
	if len(comms) != 5 {
		t.Fatalf("%d commitments", len(comms))
	}
	// Two companies over the same tickets produce different commitments.
	c2, err := NewCompany(testTickets(), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	comms2 := c2.Commitments()
	for s := range comms {
		if comms[s] == comms2[s] {
			t.Fatalf("commitment for %s identical across independent salts", s)
		}
	}
}
