// Package fsx holds the filesystem durability helpers the verdict store
// and the identity keyfile writer share. Policies like "how to fsync a
// directory" are platform lore (which errno means the filesystem simply
// cannot do it?); keeping one copy means a future quirk gets fixed for
// every writer at once instead of for whichever copy the fixer happened
// to find.
package fsx

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// SyncDir fsyncs a directory so a just-renamed (or just-linked) file's
// directory entry is durable. The error matters to callers that order a
// destructive step after the rename (the store truncates its tail only
// once the snapshot's entry is durable). Filesystems that genuinely
// cannot sync directories (EINVAL) are excused — rename durability there
// is as good as the platform gets.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsx: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("fsx: syncing dir: %w", err)
	}
	return nil
}
