package proof

import (
	"fmt"

	"rationality/internal/game"
	"rationality/internal/numeric"
)

// CheckError is the verifier's rejection: it pinpoints which proof step
// failed and why, so an agent can report the inventor to the reputation
// system with evidence.
type CheckError struct {
	Step   string // which proposition failed: allStrat, allNash, NashMax, ...
	Detail string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("proof rejected at step %s: %s", e.Step, e.Detail)
}

func reject(step, format string, args ...any) error {
	return &CheckError{Step: step, Detail: fmt.Sprintf(format, args...)}
}

// Check verifies a §3 certificate against the game. It re-derives every
// proof step with only local work per step:
//
//   - allStrat: Equilibria ∪ NonEquilibria covers the entire profile space
//     exactly once (Fig. 2 line 30).
//   - allNash: every listed equilibrium has no profitable deviation, and
//     every listed counterexample is a genuinely improving deviation
//     (Fig. 2 line 33).
//   - advised: the advised profile is among the equilibria.
//   - NashMax: every other equilibrium is ≤u the advised profile or carries
//     a valid incomparability witness (Fig. 2 line 36); flipped for MinNash.
//
// A nil error means the advice is rational: feasible (a valid profile that
// is an equilibrium) and optimal (maximal/minimal per the proof mode).
func Check(g *game.Game, p *Proof) error {
	if p == nil {
		return reject("proof", "nil proof")
	}
	switch p.Mode {
	case MaxNash, MinNash, AnyNash:
	default:
		return reject("proof", "unknown mode %v", p.Mode)
	}

	if !g.ValidProfile(p.Advised) {
		return reject("isStrat", "advised profile %v invalid for the game", p.Advised)
	}

	// allStrat: exact coverage of the profile space.
	seen := make(map[string]bool, g.NumProfiles())
	record := func(q game.Profile) error {
		if !g.ValidProfile(q) {
			return reject("allStrat", "profile %v is not a strategy profile of the game", q)
		}
		key := q.String()
		if seen[key] {
			return reject("allStrat", "profile %v listed twice", q)
		}
		seen[key] = true
		return nil
	}
	for _, e := range p.Equilibria {
		if err := record(e); err != nil {
			return err
		}
	}
	for _, c := range p.NonEquilibria {
		if err := record(c.Profile); err != nil {
			return err
		}
	}
	if len(seen) != g.NumProfiles() {
		return reject("allStrat", "proof enumerates %d of %d profiles", len(seen), g.NumProfiles())
	}

	// allNash, positive side: each claimed equilibrium really is one.
	for _, e := range p.Equilibria {
		if dev, deviates := g.FindDeviation(e); deviates {
			return reject("allNash", "profile %v claimed as equilibrium but agent %d improves with strategy %d",
				e, dev.Agent, dev.Strategy)
		}
	}
	// allNash, negative side: each counterexample must be strictly improving.
	for _, c := range p.NonEquilibria {
		if c.Agent < 0 || c.Agent >= g.NumAgents() {
			return reject("allNash", "counterexample for %v names agent %d out of range", c.Profile, c.Agent)
		}
		if c.Strategy < 0 || c.Strategy >= g.NumStrategies(c.Agent) {
			return reject("allNash", "counterexample for %v names strategy %d out of range", c.Profile, c.Strategy)
		}
		if numeric.Le(gain(g, c.Profile, c.Agent, c.Strategy), numeric.Zero()) {
			return reject("allNash", "counterexample for %v does not improve agent %d", c.Profile, c.Agent)
		}
	}

	// advised membership.
	advisedListed := false
	for _, e := range p.Equilibria {
		if e.Equal(p.Advised) {
			advisedListed = true
			break
		}
	}
	if !advisedListed {
		return reject("allNash", "advised profile %v not among the certified equilibria", p.Advised)
	}

	if p.Mode == AnyNash {
		return nil
	}
	return checkOptimality(g, p)
}

// checkOptimality verifies the NashMax (or flipped NashMin) step.
func checkOptimality(g *game.Game, p *Proof) error {
	// Every non-advised equilibrium needs exactly one witness.
	need := make(map[string]game.Profile, len(p.Equilibria))
	for _, e := range p.Equilibria {
		if !e.Equal(p.Advised) {
			need[e.String()] = e
		}
	}
	witnessed := make(map[string]bool, len(p.MaxWitnesses))
	for _, w := range p.MaxWitnesses {
		key := w.Equilibrium.String()
		if _, ok := need[key]; !ok {
			return reject("NashMax", "witness for %v, which is not a certified non-advised equilibrium", w.Equilibrium)
		}
		if witnessed[key] {
			return reject("NashMax", "duplicate witness for %v", w.Equilibrium)
		}
		witnessed[key] = true
		if err := checkWitness(g, p, w); err != nil {
			return err
		}
	}
	for key, e := range need {
		if !witnessed[key] {
			return reject("NashMax", "no optimality witness for equilibrium %v", e)
		}
	}
	return nil
}

func checkWitness(g *game.Game, p *Proof, w MaxWitness) error {
	lo, hi := w.Equilibrium, p.Advised // MaxNash orientation
	if p.Mode == MinNash {
		lo, hi = p.Advised, w.Equilibrium
	}
	switch w.Kind {
	case LeAdvised:
		if !g.LeU(lo, hi) {
			return reject("NashMax", "claimed %v ≤u %v does not hold", lo, hi)
		}
	case NoComp:
		iOther, iAdvised := w.AgentFavoringOther, w.AgentFavoringAdvised
		for _, a := range []int{iOther, iAdvised} {
			if a < 0 || a >= g.NumAgents() {
				return reject("NashMax", "incomparability witness names agent %d out of range", a)
			}
		}
		if !numeric.Gt(g.Payoff(iOther, w.Equilibrium), g.Payoff(iOther, p.Advised)) {
			return reject("NashMax", "agent %d does not strictly prefer %v over the advised profile",
				iOther, w.Equilibrium)
		}
		if !numeric.Gt(g.Payoff(iAdvised, p.Advised), g.Payoff(iAdvised, w.Equilibrium)) {
			return reject("NashMax", "agent %d does not strictly prefer the advised profile over %v",
				iAdvised, w.Equilibrium)
		}
	default:
		return reject("NashMax", "unknown witness kind %v", w.Kind)
	}
	return nil
}
