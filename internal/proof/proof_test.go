package proof

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"rationality/internal/game"
	"rationality/internal/numeric"
)

func mustBuild(t *testing.T, g *game.Game, advised game.Profile, mode Mode) *Proof {
	t.Helper()
	p, err := Build(g, advised, mode)
	if err != nil {
		t.Fatalf("Build(%v, %v): %v", advised, mode, err)
	}
	return p
}

func TestBuildAndCheckPrisonersDilemma(t *testing.T) {
	g := game.PrisonersDilemma()
	p := mustBuild(t, g, game.Profile{1, 1}, MaxNash)
	if err := Check(g, p); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
	if len(p.Equilibria) != 1 || len(p.NonEquilibria) != 3 {
		t.Errorf("equilibria=%d nonEquilibria=%d", len(p.Equilibria), len(p.NonEquilibria))
	}
	if p.Steps() != 4 {
		t.Errorf("Steps = %d, want 4", p.Steps())
	}
}

func TestBuildRejectsFalseClaim(t *testing.T) {
	g := game.PrisonersDilemma()
	if _, err := Build(g, game.Profile{0, 0}, MaxNash); err == nil {
		t.Fatal("Build proved a non-equilibrium")
	}
	if _, err := Build(g, game.Profile{9, 9}, MaxNash); err == nil {
		t.Fatal("Build accepted an invalid profile")
	}
}

func TestBuildRejectsDominatedAdvice(t *testing.T) {
	g := game.Coordination()
	// [0 0] is an equilibrium but dominated by [1 1]: MaxNash must fail.
	if _, err := Build(g, game.Profile{0, 0}, MaxNash); err == nil {
		t.Fatal("Build certified a dominated equilibrium as maximal")
	}
	// ... but MinNash and AnyNash are fine.
	if _, err := Build(g, game.Profile{0, 0}, MinNash); err != nil {
		t.Fatalf("MinNash: %v", err)
	}
	if _, err := Build(g, game.Profile{0, 0}, AnyNash); err != nil {
		t.Fatalf("AnyNash: %v", err)
	}
	// And the dominant equilibrium is MaxNash-certifiable.
	p := mustBuild(t, g, game.Profile{1, 1}, MaxNash)
	if err := Check(g, p); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestBattleOfSexesIncomparabilityWitness(t *testing.T) {
	g := game.BattleOfSexes()
	p := mustBuild(t, g, game.Profile{0, 0}, MaxNash)
	if err := Check(g, p); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(p.MaxWitnesses) != 1 || p.MaxWitnesses[0].Kind != NoComp {
		t.Fatalf("MaxWitnesses = %+v, want one NoComp", p.MaxWitnesses)
	}
}

func TestMinNashProof(t *testing.T) {
	g := game.Coordination()
	p := mustBuild(t, g, game.Profile{0, 0}, MinNash)
	if err := Check(g, p); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(p.MaxWitnesses) != 1 || p.MaxWitnesses[0].Kind != LeAdvised {
		t.Fatalf("MaxWitnesses = %+v", p.MaxWitnesses)
	}
	// The maximal equilibrium is not minimal.
	if _, err := Build(g, game.Profile{1, 1}, MinNash); err == nil {
		t.Fatal("certified a dominating equilibrium as minimal")
	}
}

func TestBuildBestAdvice(t *testing.T) {
	for _, mode := range []Mode{MaxNash, MinNash, AnyNash} {
		g := game.BattleOfSexes()
		p, err := BuildBestAdvice(g, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := Check(g, p); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
	if _, err := BuildBestAdvice(game.MatchingPennies(), MaxNash); !errors.Is(err, ErrNoEquilibrium) {
		t.Fatalf("err = %v, want ErrNoEquilibrium", err)
	}
}

func TestCheckRejectsNilAndBadMode(t *testing.T) {
	g := game.PrisonersDilemma()
	if err := Check(g, nil); err == nil {
		t.Error("nil proof accepted")
	}
	p := mustBuild(t, g, game.Profile{1, 1}, MaxNash)
	p.Mode = Mode(42)
	if err := Check(g, p); err == nil {
		t.Error("unknown mode accepted")
	}
}

// Forgery tests: each mutation of an honest proof must be rejected at the
// right step.
func TestCheckRejectsForgeries(t *testing.T) {
	build := func() (*game.Game, *Proof) {
		g := game.BattleOfSexes()
		p, err := Build(g, game.Profile{0, 0}, MaxNash)
		if err != nil {
			panic(err)
		}
		return g, p
	}

	cases := []struct {
		name   string
		mutate func(p *Proof)
		step   string
	}{
		{
			name:   "drop a non-equilibrium",
			mutate: func(p *Proof) { p.NonEquilibria = p.NonEquilibria[1:] },
			step:   "allStrat",
		},
		{
			name: "duplicate an equilibrium",
			mutate: func(p *Proof) {
				p.Equilibria = append(p.Equilibria, p.Equilibria[0].Clone())
			},
			step: "allStrat",
		},
		{
			name: "claim a non-equilibrium as equilibrium",
			mutate: func(p *Proof) {
				moved := p.NonEquilibria[0].Profile
				p.NonEquilibria = p.NonEquilibria[1:]
				p.Equilibria = append(p.Equilibria, moved)
			},
			step: "allNash",
		},
		{
			name: "break a counterexample witness",
			mutate: func(p *Proof) {
				// Point the deviation at the strategy already played, which
				// cannot be improving.
				c := &p.NonEquilibria[0]
				c.Strategy = c.Profile[c.Agent]
			},
			step: "allNash",
		},
		{
			name: "out-of-range counterexample agent",
			mutate: func(p *Proof) {
				p.NonEquilibria[0].Agent = 99
			},
			step: "allNash",
		},
		{
			name: "advise a profile outside the equilibria",
			mutate: func(p *Proof) {
				p.Advised = p.NonEquilibria[0].Profile.Clone()
			},
			step: "allNash",
		},
		{
			name:   "drop the optimality witness",
			mutate: func(p *Proof) { p.MaxWitnesses = nil },
			step:   "NashMax",
		},
		{
			name: "forge the witness kind",
			mutate: func(p *Proof) {
				// BoS equilibria are incomparable; claiming ≤u must fail.
				p.MaxWitnesses[0].Kind = LeAdvised
			},
			step: "NashMax",
		},
		{
			name: "witness for a non-equilibrium",
			mutate: func(p *Proof) {
				p.MaxWitnesses[0].Equilibrium = p.NonEquilibria[0].Profile.Clone()
			},
			step: "NashMax",
		},
		{
			name: "wrong incomparability agents",
			mutate: func(p *Proof) {
				w := &p.MaxWitnesses[0]
				w.AgentFavoringOther, w.AgentFavoringAdvised = w.AgentFavoringAdvised, w.AgentFavoringOther
			},
			step: "NashMax",
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, p := build()
			c.mutate(p)
			err := Check(g, p)
			if err == nil {
				t.Fatal("forged proof accepted")
			}
			var ce *CheckError
			if !errors.As(err, &ce) {
				t.Fatalf("error type %T, want *CheckError", err)
			}
			if ce.Step != c.step {
				t.Fatalf("rejected at step %q, want %q (err: %v)", ce.Step, c.step, err)
			}
		})
	}
}

func TestProofRoundTripJSON(t *testing.T) {
	g := game.BattleOfSexes()
	p := mustBuild(t, g, game.Profile{1, 1}, MaxNash)
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, q); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
	if !q.Advised.Equal(p.Advised) || q.Mode != p.Mode {
		t.Error("round trip lost fields")
	}
	if _, err := Unmarshal([]byte("{broken")); err == nil {
		t.Error("garbage unmarshalled")
	}
}

func TestCheckErrorMessage(t *testing.T) {
	err := reject("allNash", "profile %v bogus", game.Profile{1, 2})
	if !strings.Contains(err.Error(), "allNash") || !strings.Contains(err.Error(), "[1 2]") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestThreeAgentProof(t *testing.T) {
	g := game.ThreeAgentMajority()
	p, err := BuildBestAdvice(g, MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, p); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Equilibria) + len(p.NonEquilibria); got != g.NumProfiles() {
		t.Errorf("enumerated %d profiles, want %d", got, g.NumProfiles())
	}
}

// Property: for random games with at least one PNE, Build+Check round-trips,
// and the checker agrees with game.IsMaxNash on the advised profile.
func TestBuildCheckAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		g := game.RandomGame("r", []int{2, 2, 2}, 3, rng.Int63n)
		all := g.AllNash()
		if len(all) == 0 {
			continue
		}
		for _, e := range all {
			p, err := Build(g, e, MaxNash)
			if g.IsMaxNash(e) {
				if err != nil {
					t.Fatalf("trial %d: Build failed on maximal equilibrium: %v", trial, err)
				}
				if err := Check(g, p); err != nil {
					t.Fatalf("trial %d: Check rejected honest proof: %v", trial, err)
				}
				checked++
			} else if err == nil {
				t.Fatalf("trial %d: Build certified non-maximal equilibrium %v", trial, e)
			}
		}
	}
	if checked == 0 {
		t.Fatal("property test exercised no games")
	}
}

// Property: proofs are game-specific — an honest proof for one game is
// rejected against a game with perturbed payoffs (unless the perturbation
// preserves all the inequalities, which the guard below filters out).
func TestProofNotTransferableProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rejected := 0
	for trial := 0; trial < 100; trial++ {
		g := game.RandomGame("a", []int{2, 2}, 4, rng.Int63n)
		all := g.AllNash()
		if len(all) == 0 {
			continue
		}
		p, err := Build(g, all[0], AnyNash)
		if err != nil {
			continue
		}
		h := game.RandomGame("b", []int{2, 2}, 4, rng.Int63n)
		// Only meaningful when the advised profile is not an equilibrium of h.
		if h.IsNash(p.Advised) {
			continue
		}
		if err := Check(h, p); err == nil {
			t.Fatalf("trial %d: proof for game a accepted against game b", trial)
		}
		rejected++
	}
	if rejected == 0 {
		t.Skip("no discriminating instances drawn")
	}
}

func gainHelperCoverage(t *testing.T) {
	g := game.PrisonersDilemma()
	if numeric.Le(gain(g, game.Profile{0, 0}, 0, 1), numeric.Zero()) {
		t.Error("defecting against cooperate should strictly gain")
	}
}

func TestGainHelper(t *testing.T) { gainHelperCoverage(t) }
