// Package proof implements the paper's §3 proof scheme as explicit,
// serializable certificate objects plus an independent checker.
//
// The paper sketches, in the Coq theorem prover, a proof that a strategy
// profile NSi is a (maximal) pure Nash equilibrium. The proof enumerates all
// strategy profiles (Proposition allStrat, Fig. 2 line 30), classifies each
// as an equilibrium or exhibits a deviation counterexample (allNash,
// line 33), and certifies maximality by comparing NSi with every other
// equilibrium (NashMax, line 36). We cannot ship Coq, so the same proof
// structure is realized as plain data: the inventor produces a Proof, the
// verifier's procedure v() re-derives every step with only local work. A
// forged or truncated proof is rejected with a descriptive error. The
// deliberate cost of this scheme — proof size proportional to the full
// profile space — is exactly the intractability §3 warns about, and is
// measured by the E7 experiment.
package proof

import (
	"encoding/json"
	"fmt"

	"rationality/internal/game"
)

// Mode selects which optimality direction a proof certifies, mirroring the
// paper's remark that NashMax can be flipped to certify minimality.
type Mode int

// Proof modes.
const (
	// MaxNash certifies that the advised profile is a maximal equilibrium.
	MaxNash Mode = iota + 1
	// MinNash certifies that the advised profile is a minimal equilibrium.
	MinNash
	// AnyNash certifies equilibrium membership only (no optimality step).
	AnyNash
)

func (m Mode) String() string {
	switch m {
	case MaxNash:
		return "max-nash"
	case MinNash:
		return "min-nash"
	case AnyNash:
		return "any-nash"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Counterexample witnesses that a profile is NOT an equilibrium: agent Agent
// strictly gains by switching to strategy Strategy. It corresponds to the
// "i and si such as u(i,Si) < u(i, change(Si, si, i))" step of §3.
type Counterexample struct {
	Profile  game.Profile `json:"profile"`
	Agent    int          `json:"agent"`
	Strategy int          `json:"strategy"`
}

// ComparisonKind says how another equilibrium relates to the advised one in
// the NashMax step.
type ComparisonKind int

// Comparison kinds for maximality witnesses.
const (
	// LeAdvised: the other equilibrium is ≤u the advised one (leStrat).
	LeAdvised ComparisonKind = iota + 1
	// NoComp: the two equilibria are ≤u-incomparable, witnessed by a pair of
	// agents pulling in opposite directions.
	NoComp
)

func (k ComparisonKind) String() string {
	switch k {
	case LeAdvised:
		return "le-advised"
	case NoComp:
		return "no-comp"
	default:
		return fmt.Sprintf("ComparisonKind(%d)", int(k))
	}
}

// MaxWitness certifies, for one other equilibrium, that it does not
// ≥u-dominate the advised profile.
type MaxWitness struct {
	Equilibrium game.Profile   `json:"equilibrium"`
	Kind        ComparisonKind `json:"kind"`
	// For NoComp: AgentFavoringOther strictly prefers Equilibrium and
	// AgentFavoringAdvised strictly prefers the advised profile.
	AgentFavoringOther   int `json:"agentFavoringOther,omitempty"`
	AgentFavoringAdvised int `json:"agentFavoringAdvised,omitempty"`
}

// Proof is the full §3 certificate. Together, Equilibria and NonEquilibria
// must enumerate the entire profile space (the allStrat step).
type Proof struct {
	// Mode selects the optimality direction certified.
	Mode Mode `json:"mode"`
	// Advised is the profile the inventor recommends (NSi).
	Advised game.Profile `json:"advised"`
	// Equilibria lists every pure Nash equilibrium (the allNash step).
	Equilibria []game.Profile `json:"equilibria"`
	// NonEquilibria carries one deviation counterexample per non-equilibrium
	// profile.
	NonEquilibria []Counterexample `json:"nonEquilibria"`
	// MaxWitnesses has one comparison per equilibrium other than Advised
	// (present in MaxNash and MinNash modes).
	MaxWitnesses []MaxWitness `json:"maxWitnesses,omitempty"`
}

// Steps returns the number of elementary proof steps: one per enumerated
// profile plus one per optimality comparison. It is the size measure used by
// experiment E7.
func (p *Proof) Steps() int {
	return len(p.Equilibria) + len(p.NonEquilibria) + len(p.MaxWitnesses)
}

// Marshal encodes the proof to its canonical JSON wire form.
func (p *Proof) Marshal() ([]byte, error) {
	return json.Marshal(p)
}

// Unmarshal decodes a proof from its JSON wire form.
func Unmarshal(data []byte) (*Proof, error) {
	var p Proof
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("proof: decoding: %w", err)
	}
	return &p, nil
}
