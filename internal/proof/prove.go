package proof

import (
	"errors"
	"fmt"

	"rationality/internal/game"
	"rationality/internal/numeric"
)

// ErrNoEquilibrium is returned by Build when the game has no pure Nash
// equilibrium at all.
var ErrNoEquilibrium = errors.New("proof: game has no pure Nash equilibrium")

// Build constructs the §3 certificate for the given game and advised
// profile. This is the (possibly expensive) work of the game inventor: it
// enumerates the full profile space once. It fails when the advised profile
// is not an equilibrium of the requested kind, since an honest inventor
// cannot prove a false claim.
func Build(g *game.Game, advised game.Profile, mode Mode) (*Proof, error) {
	if !g.ValidProfile(advised) {
		return nil, fmt.Errorf("proof: advised profile %v is not a valid profile", advised)
	}
	p := &Proof{Mode: mode, Advised: advised.Clone()}

	g.ForEachProfile(func(q game.Profile) bool {
		if dev, deviates := g.FindDeviation(q); deviates {
			p.NonEquilibria = append(p.NonEquilibria, Counterexample{
				Profile:  q.Clone(),
				Agent:    dev.Agent,
				Strategy: dev.Strategy,
			})
		} else {
			p.Equilibria = append(p.Equilibria, q.Clone())
		}
		return true
	})

	advisedIsNash := false
	for _, e := range p.Equilibria {
		if e.Equal(advised) {
			advisedIsNash = true
			break
		}
	}
	if !advisedIsNash {
		return nil, fmt.Errorf("proof: advised profile %v is not a Nash equilibrium", advised)
	}

	if mode == AnyNash {
		return p, nil
	}

	for _, e := range p.Equilibria {
		if e.Equal(advised) {
			continue
		}
		w, err := compareWitness(g, advised, e, mode)
		if err != nil {
			return nil, err
		}
		p.MaxWitnesses = append(p.MaxWitnesses, w)
	}
	return p, nil
}

// compareWitness produces the NashMax-step witness that equilibrium other
// does not dominate advised (MaxNash mode) or is not dominated by it
// (MinNash mode).
func compareWitness(g *game.Game, advised, other game.Profile, mode Mode) (MaxWitness, error) {
	lo, hi := other, advised // MaxNash: show other ≤u advised or noComp
	if mode == MinNash {
		lo, hi = advised, other // MinNash: show advised ≤u other or noComp
	}
	if g.LeU(lo, hi) {
		return MaxWitness{Equilibrium: other.Clone(), Kind: LeAdvised}, nil
	}
	// Not ≤u: some agent strictly prefers lo. For incomparability we also
	// need an agent strictly preferring hi; otherwise hi is dominated and the
	// claim is false.
	favLo, favHi := -1, -1
	for i := 0; i < g.NumAgents(); i++ {
		switch g.Payoff(i, lo).Cmp(g.Payoff(i, hi)) {
		case 1:
			if favLo < 0 {
				favLo = i
			}
		case -1:
			if favHi < 0 {
				favHi = i
			}
		}
	}
	if favLo < 0 || favHi < 0 {
		return MaxWitness{}, fmt.Errorf(
			"proof: advised profile %v is dominated by equilibrium %v; cannot certify %v",
			advised, other, mode)
	}
	w := MaxWitness{Equilibrium: other.Clone(), Kind: NoComp}
	if mode == MinNash {
		// lo == advised: favLo prefers the advised profile.
		w.AgentFavoringAdvised, w.AgentFavoringOther = favLo, favHi
	} else {
		// lo == other: favLo prefers the other equilibrium.
		w.AgentFavoringOther, w.AgentFavoringAdvised = favLo, favHi
	}
	return w, nil
}

// BuildBestAdvice finds a maximal (or minimal) equilibrium and proves it. It
// is the inventor's end-to-end "advise + prove" step for small games; it
// returns ErrNoEquilibrium when the game has no pure equilibrium.
func BuildBestAdvice(g *game.Game, mode Mode) (*Proof, error) {
	all := g.AllNash()
	if len(all) == 0 {
		return nil, ErrNoEquilibrium
	}
	if mode == AnyNash {
		return Build(g, all[0], mode)
	}
	for _, candidate := range all {
		ok := true
		for _, other := range all {
			if other.Equal(candidate) {
				continue
			}
			dominatedByOther := g.LeU(candidate, other) && !g.LeU(other, candidate)
			dominatesOther := g.LeU(other, candidate) && !g.LeU(candidate, other)
			if mode == MaxNash && dominatedByOther {
				ok = false
				break
			}
			if mode == MinNash && dominatesOther {
				ok = false
				break
			}
		}
		if ok {
			return Build(g, candidate, mode)
		}
	}
	// Unreachable: a finite preorder always has maximal and minimal elements.
	return nil, ErrNoEquilibrium
}

// gain is a small helper shared with the checker: the utility delta for
// agent i when switching from p to p.Change(i, si).
func gain(g *game.Game, p game.Profile, i, si int) *numeric.Rat {
	return numeric.Sub(g.Payoff(i, p.Change(i, si)), g.Payoff(i, p))
}
