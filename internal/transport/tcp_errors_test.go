package transport

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests pin down the TCP transport's failure behaviour: refused
// connections, garbage on the wire, cancellation while a request is in
// flight, and misbehaving clients sharing a listener with honest ones.

func TestDialTCPConnectionRefused(t *testing.T) {
	// Bind and immediately close a listener so the port is known-dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = DialTCP(addr, 200*time.Millisecond)
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("refused-dial error %q does not name the address %q", err, addr)
	}
}

func TestTCPMalformedFrameDropsConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw client sends bytes that are not a JSON Message frame.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("!!! this is not json !!!")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection rather than hang or crash: the
	// next read observes EOF (or a reset), never a reply frame.
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if n, err := raw.Read(buf); err == nil {
		t.Fatalf("server replied %d bytes to a malformed frame, want dropped connection", n)
	}

	// The listener survives: a well-formed client still gets service.
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req, _ := NewMessage("ping", ping{N: 7})
	resp, err := c.Call(context.Background(), req)
	if err != nil {
		t.Fatalf("healthy client failed after a malformed peer: %v", err)
	}
	var p ping
	if err := resp.Decode(&p); err != nil || p.N != 7 {
		t.Fatalf("echo after malformed peer: %+v err=%v", p, err)
	}
}

func TestTCPContextCancelMidRequest(t *testing.T) {
	release := make(chan struct{})
	slow := HandlerFunc(func(ctx context.Context, req Message) (Message, error) {
		<-release
		return req, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)

	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Cancel after the request is on the wire but before any reply exists.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	req, _ := NewMessage("ping", ping{N: 1})
	start := time.Now()
	_, err = c.Call(ctx, req)
	if err == nil {
		t.Fatal("cancelled mid-request call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 800*time.Millisecond {
		t.Fatalf("cancellation took %s to take effect", elapsed)
	}
}

func TestTCPConcurrentClientsWithMisbehavingPeers(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 6
	const callsPerClient = 5
	var wg sync.WaitGroup
	errCh := make(chan error, clients*callsPerClient+1)

	// Honest clients issue several sequential calls each...
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialTCP(srv.Addr(), time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for j := 0; j < callsPerClient; j++ {
				req, _ := NewMessage("ping", ping{N: i*100 + j})
				resp, err := c.Call(context.Background(), req)
				if err != nil {
					errCh <- err
					return
				}
				var p ping
				if err := resp.Decode(&p); err != nil || p.N != i*100+j {
					errCh <- err
					return
				}
			}
		}(i)
	}
	// ...while misbehaving peers spray garbage and slam connections shut.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 4; j++ {
			raw, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			_, _ = raw.Write([]byte("garbage\x00\x01"))
			_ = raw.Close()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPServerDrainLetsInFlightExchangeReply(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	slow := HandlerFunc(func(ctx context.Context, req Message) (Message, error) {
		close(started)
		<-release
		return req, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}

	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		resp Message
		err  error
	}
	got := make(chan result, 1)
	go func() {
		req, _ := NewMessage("ping", ping{N: 9})
		resp, err := c.Call(context.Background(), req)
		got <- result{resp, err}
	}()
	<-started

	// Close while the exchange is mid-handling: it must block until the
	// reply is written, and the client must receive it, not a reset.
	closed := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while an exchange was mid-handling")
	case <-time.After(30 * time.Millisecond):
	}

	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight client lost its reply during drain: %v", r.err)
	}
	var p ping
	if err := r.resp.Decode(&p); err != nil || p.N != 9 {
		t.Fatalf("drained reply = %+v err=%v", p, err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never finished after the exchange completed")
	}

	// The drained connection is closed afterwards: the next call fails.
	req, _ := NewMessage("ping", ping{N: 10})
	if _, err := c.Call(context.Background(), req); err == nil {
		t.Fatal("call on a drained server succeeded")
	}
}
