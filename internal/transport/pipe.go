package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// PipeNet is an in-memory network: handlers listen on names, clients dial
// those names, and every exchange runs over a net.Pipe speaking the exact
// JSON stream codec the TCP transport uses. It exists so multi-authority
// tests (and the federation harness) get real transport semantics —
// serialization, strict request/response framing, connection breakage,
// deadlines — without binding real ports: no port-conflict flakes, no
// kernel round trips, and a -race suite that spins fifty authorities in
// milliseconds.
//
// Every byte written on either end of every pipe is counted, so a harness
// can measure bytes-on-wire for a whole cluster with one counter read —
// the measurement the gossip-vs-all-pairs comparison is built on.
type PipeNet struct {
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	bytes atomic.Uint64

	// streamWriteTimeout bounds each streaming frame write (nanoseconds);
	// zero means DefaultStreamWriteTimeout, negative disables the bound.
	streamWriteTimeout atomic.Int64
}

// NewPipeNet creates an empty in-memory network.
func NewPipeNet() *PipeNet {
	return &PipeNet{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Listen registers a handler under addr (any non-empty name). Dials to
// that name reach this handler until Close. Registering a name twice is
// an error — it would silently shadow a live authority.
func (n *PipeNet) Listen(addr string, h Handler) error {
	if addr == "" {
		return errors.New("transport: pipe listen needs a non-empty address")
	}
	if h == nil {
		return errors.New("transport: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, dup := n.handlers[addr]; dup {
		return fmt.Errorf("transport: pipe address %q already listening", addr)
	}
	n.handlers[addr] = h
	return nil
}

// BytesOnWire reports the total bytes written across every connection the
// network has carried, requests and replies both.
func (n *PipeNet) BytesOnWire() uint64 { return n.bytes.Load() }

// SetStreamWriteTimeout overrides the per-frame write deadline streaming
// replies are bounded by (DefaultStreamWriteTimeout when unset). A
// negative duration disables the bound. Safe to call while serving.
func (n *PipeNet) SetStreamWriteTimeout(d time.Duration) {
	n.streamWriteTimeout.Store(int64(d))
}

// streamTimeout resolves the effective per-frame write deadline.
func (n *PipeNet) streamTimeout() time.Duration {
	if d := n.streamWriteTimeout.Load(); d != 0 {
		return time.Duration(d)
	}
	return DefaultStreamWriteTimeout
}

// Dial connects to a listening name and returns a client whose calls run
// the strict request/response protocol over an in-memory pipe. A broken
// exchange closes the pipe; the next call transparently re-dials (the
// same recovery a pooled TCP client performs with a fresh connection).
func (n *PipeNet) Dial(addr string) (*PipeClient, error) {
	c := &PipeClient{net: n, addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect opens one pipe to the address's handler and starts its serving
// goroutine.
func (n *PipeNet) connect(addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	h, ok := n.handlers[addr]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: pipe dial %q: no such listener", addr)
	}
	clientEnd, serverEnd := net.Pipe()
	counted := countedConn{Conn: clientEnd, bytes: &n.bytes}
	n.conns[counted] = struct{}{}
	n.conns[serverEnd] = struct{}{}
	n.wg.Add(1)
	n.mu.Unlock()
	go n.serveConn(serverEnd, h)
	return counted, nil
}

// serveConn is the server half of one pipe: the same decode → handle →
// encode loop the TCP server runs per accepted connection, handler errors
// becoming "error" replies.
func (n *PipeNet) serveConn(conn net.Conn, h Handler) {
	defer n.wg.Done()
	defer n.forget(conn)
	counted := countedConn{Conn: conn, bytes: &n.bytes}
	dec := json.NewDecoder(counted)
	enc := json.NewEncoder(counted)
	for {
		var req Message
		if err := dec.Decode(&req); err != nil {
			return // client hung up
		}
		if sh, ok := h.(StreamHandler); ok && sh.Streams(req.Type) {
			if err := serveStream(counted, enc, sh, req, n.streamTimeout()); err != nil {
				return
			}
			continue
		}
		resp, err := h.Handle(context.Background(), req)
		if err != nil {
			resp = ErrorMessage(err)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// forget closes and deregisters one pipe end.
func (n *PipeNet) forget(conn net.Conn) {
	_ = conn.Close()
	n.mu.Lock()
	delete(n.conns, conn)
	n.mu.Unlock()
}

// Close tears the network down: every live pipe is closed (in-flight
// exchanges fail promptly), every serving goroutine is joined, and
// further Listen/Dial calls return ErrClosed.
func (n *PipeNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	for conn := range n.conns {
		_ = conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

// countedConn counts every written byte into the owning PipeNet's total.
type countedConn struct {
	net.Conn
	bytes *atomic.Uint64
}

// Write implements net.Conn, adding the written size to the wire total.
func (c countedConn) Write(p []byte) (int, error) {
	m, err := c.Conn.Write(p)
	c.bytes.Add(uint64(m))
	return m, err
}

// PipeClient is a Client over one PipeNet connection. Calls serialize on
// the connection (strict request/response); a failed exchange closes the
// pipe and the next call re-dials. Create with PipeNet.Dial.
type PipeClient struct {
	net  *PipeNet
	addr string

	mu     sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	closed bool
}

var (
	_ Client       = (*PipeClient)(nil)
	_ StreamCaller = (*PipeClient)(nil)
)

// CallStream implements StreamCaller. Each stream runs on its own
// dedicated pipe (dialed here, torn down when the stream finishes), so
// unary Calls on this client proceed concurrently with an open stream
// instead of serializing behind it. The context bounds the exchange
// through the pipe deadline, exactly as Call does.
func (c *PipeClient) CallStream(ctx context.Context, req Message) (Stream, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	conn, err := c.net.connect(c.addr)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	stopWatchdog := func() {}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				_ = conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		stopWatchdog = func() {
			close(stop)
			<-exited
		}
	}
	finish := func(bool) {
		// The pipe is dedicated to this one stream either way: forget it.
		stopWatchdog()
		c.net.forget(conn)
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(req); err != nil {
		finish(true)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("transport: sending request: %w", ctxErr)
		}
		return nil, fmt.Errorf("transport: sending request: %w", err)
	}
	return &clientStream{ctx: ctx, dec: dec, finish: finish}, nil
}

// connect (re-)establishes the pipe. Callers hold no lock on first use;
// reconnects happen under c.mu inside Call.
func (c *PipeClient) connect() error {
	conn, err := c.net.connect(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.dec = json.NewDecoder(conn)
	c.enc = json.NewEncoder(conn)
	return nil
}

// Call implements Client: one request/response exchange over the pipe,
// bounded by the context's deadline via the connection deadline (net.Pipe
// supports deadlines), with cancellation expiring the deadline early.
func (c *PipeClient) Call(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Message{}, ErrClosed
	}
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return Message{}, err
		}
	}
	resp, err, broken := c.roundTrip(ctx, req)
	if broken {
		c.net.forget(c.conn)
		c.conn = nil
	}
	return resp, err
}

// roundTrip runs one exchange; broken reports a desynchronized pipe that
// must not be reused.
func (c *PipeClient) roundTrip(ctx context.Context, req Message) (resp Message, err error, broken bool) {
	conn := c.conn
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				_ = conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-exited
		}()
	}
	if err := c.enc.Encode(req); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: sending request: %w", ctxErr), true
		}
		return Message{}, fmt.Errorf("transport: sending request: %w", err), true
	}
	if err := c.dec.Decode(&resp); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: reading reply: %w", ctxErr), true
		}
		return Message{}, fmt.Errorf("transport: reading reply: %w", err), true
	}
	if err := resp.AsError(); err != nil {
		return Message{}, err, false
	}
	return resp, nil, false
}

// Close implements Client: the pipe is closed and further calls return
// ErrClosed.
func (c *PipeClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		c.net.forget(c.conn)
		c.conn = nil
	}
	return nil
}
