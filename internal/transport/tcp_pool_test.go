package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin down the pooled TCP client: concurrent calls genuinely
// run in parallel on separate connections, and a broken connection is
// replaced by a lazy re-dial instead of bricking the client.

func TestTCPPoolConcurrentCalls(t *testing.T) {
	// The handler is a barrier: no request completes until `clients`
	// requests are in flight at once. A client that serialized its calls
	// on one connection could never satisfy it.
	const clients = 4
	var arrived atomic.Int32
	barrier := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, req Message) (Message, error) {
		if arrived.Add(1) == clients {
			close(barrier)
		}
		select {
		case <-barrier:
			return req, nil
		case <-time.After(5 * time.Second):
			return Message{}, context.DeadlineExceeded
		}
	})
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTCPPool(srv.Addr(), time.Second, clients)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := NewMessage("ping", ping{N: i})
			resp, err := c.Call(ctx, req)
			if err != nil {
				errCh <- err
				return
			}
			var p ping
			if err := resp.Decode(&p); err != nil || p.N != i {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("pooled concurrent call failed: %v", err)
		}
	}
}

func TestTCPPoolRedialsAfterBrokenConnection(t *testing.T) {
	// The first request hangs (so the caller cancels mid-request and the
	// connection is torn down); later requests echo immediately.
	var calls atomic.Int32
	release := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, req Message) (Message, error) {
		if calls.Add(1) == 1 {
			<-release
		}
		return req, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Registered after srv.Close so it runs first: the drain waits for the
	// gated first request, which must be released before Close can finish.
	defer close(release)

	c, err := DialTCPPool(srv.Addr(), time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := NewMessage("ping", ping{N: 1})
	if _, err := c.Call(ctx, req); err == nil {
		t.Fatal("cancelled mid-request call succeeded")
	}

	// The pool must recover by dialing a fresh connection lazily.
	req2, _ := NewMessage("ping", ping{N: 2})
	resp, err := c.Call(context.Background(), req2)
	if err != nil {
		t.Fatalf("call after broken connection: %v", err)
	}
	var p ping
	if err := resp.Decode(&p); err != nil || p.N != 2 {
		t.Fatalf("redialed echo = %+v err=%v", p, err)
	}
}

func TestDialTCPPoolSizeDefaults(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCPPool(srv.Addr(), time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := cap(c.slots); got != DefaultPoolSize {
		t.Fatalf("pool size = %d, want DefaultPoolSize %d", got, DefaultPoolSize)
	}
}
