package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// streamCountReq parameterizes the test stream handler: emit Frames
// frames of Pad bytes each, failing before frame FailAt when set (>= 0).
type streamCountReq struct {
	Frames int `json:"frames"`
	Pad    int `json:"pad,omitempty"`
	FailAt int `json:"failAt"`
}

type streamCountFrame struct {
	I   int    `json:"i"`
	Pad string `json:"pad,omitempty"`
}

// countStreamer is the StreamHandler test double: unary requests echo,
// "count" requests stream numbered frames. An optional gate paces frame
// emission; the first send failure is published on sendErr.
type countStreamer struct {
	gate    chan struct{} // when non-nil, received before each frame
	sendErr chan error    // capacity >= 1
}

func newCountStreamer() *countStreamer {
	return &countStreamer{sendErr: make(chan error, 1)}
}

func (h *countStreamer) Handle(_ context.Context, req Message) (Message, error) {
	if req.Type == "boom" {
		return Message{}, errors.New("kaboom")
	}
	return Message{Type: "echo", Payload: req.Payload}, nil
}

func (h *countStreamer) Streams(msgType string) bool { return msgType == "count" }

func (h *countStreamer) HandleStream(_ context.Context, req Message, send func(Message) error) (Message, error) {
	var sr streamCountReq
	if err := req.Decode(&sr); err != nil {
		return Message{}, err
	}
	pad := strings.Repeat("x", sr.Pad)
	for i := 0; i < sr.Frames; i++ {
		if sr.FailAt >= 0 && i == sr.FailAt {
			return Message{}, fmt.Errorf("deliberate failure before frame %d", i)
		}
		if h.gate != nil {
			<-h.gate
		}
		m, err := NewMessage("frame", streamCountFrame{I: i, Pad: pad})
		if err != nil {
			return Message{}, err
		}
		if err := send(m); err != nil {
			select {
			case h.sendErr <- err:
			default:
			}
			return Message{}, err
		}
	}
	return NewMessage("trailer", streamCountReq{Frames: sr.Frames, FailAt: -1})
}

func countRequest(t *testing.T, frames, pad, failAt int) Message {
	t.Helper()
	req, err := NewMessage("count", streamCountReq{Frames: frames, Pad: pad, FailAt: failAt})
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// drainStream reads frames until the trailer, asserting order, and
// returns the trailer message.
func drainStream(t *testing.T, st Stream, wantFrames int) Message {
	t.Helper()
	for i := 0; i < wantFrames; i++ {
		m, err := st.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.Type != "frame" || m.Last {
			t.Fatalf("frame %d = %+v, want non-terminal frame", i, m)
		}
		var f streamCountFrame
		if err := m.Decode(&f); err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if f.I != i {
			t.Fatalf("frame %d carries index %d: stream reordered", i, f.I)
		}
	}
	trailer, err := st.Next()
	if err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if !trailer.Last || trailer.Type != "trailer" {
		t.Fatalf("trailer = %+v, want Last trailer", trailer)
	}
	return trailer
}

// TestTCPStreamHappyPath runs a full streaming exchange over TCP on a
// single-connection pool and proves the connection returns to
// request/response duty afterwards.
func TestTCPStreamHappyPath(t *testing.T) {
	h := newCountStreamer()
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second) // pool of one: reuse is provable
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.CallStream(context.Background(), countRequest(t, 5, 0, -1))
	if err != nil {
		t.Fatal(err)
	}
	drainStream(t, st, 5)
	if _, err := st.Next(); !errors.Is(err, ErrStreamDone) {
		t.Fatalf("post-trailer Next = %v, want ErrStreamDone", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close after trailer: %v", err)
	}

	// The pool's only connection must be back and in sync: a unary call on
	// it succeeds immediately.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := c.Call(context.Background(), Message{Type: "ping"})
		if err != nil || resp.Type != "echo" {
			t.Errorf("unary after stream: %+v, %v", resp, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("unary call after stream wedged: connection not returned to the pool")
	}
}

// TestPipeStreamHappyPath runs the same exchange over the in-memory
// transport, with a unary call proceeding while the stream is open —
// pipe streams run on dedicated pipes, so they must not serialize
// unary traffic behind them.
func TestPipeStreamHappyPath(t *testing.T) {
	h := newCountStreamer()
	h.gate = make(chan struct{})
	n := NewPipeNet()
	defer n.Close()
	if err := n.Listen("auth", h); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("auth")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.CallStream(context.Background(), countRequest(t, 3, 0, -1))
	if err != nil {
		t.Fatal(err)
	}
	// Stream open, zero frames released: a unary call must still complete.
	unaryCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if resp, err := c.Call(unaryCtx, Message{Type: "ping"}); err != nil || resp.Type != "echo" {
		t.Fatalf("unary during open stream: %+v, %v", resp, err)
	}
	go func() {
		for i := 0; i < 3; i++ {
			h.gate <- struct{}{}
		}
	}()
	drainStream(t, st, 3)
	if _, err := st.Next(); !errors.Is(err, ErrStreamDone) {
		t.Fatalf("post-trailer Next = %v, want ErrStreamDone", err)
	}
}

// TestStreamServerErrorBeforeFrames: a handler that fails before
// emitting anything must surface as a terminal error frame — and over
// TCP the connection stays clean for the next unary exchange.
func TestStreamServerErrorBeforeFrames(t *testing.T) {
	h := newCountStreamer()
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.CallStream(context.Background(), countRequest(t, 5, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("Next = %v, want the handler's error", err)
	}
	if _, err := st.Next(); !errors.Is(err, ErrStreamDone) {
		t.Fatalf("Next after terminal error = %v, want ErrStreamDone", err)
	}
	if resp, err := c.Call(context.Background(), Message{Type: "ping"}); err != nil || resp.Type != "echo" {
		t.Fatalf("unary after error stream: %+v, %v", resp, err)
	}
}

// TestStreamServerErrorMidStream: frames already delivered stand; the
// failure arrives as the terminal error.
func TestStreamServerErrorMidStream(t *testing.T) {
	h := newCountStreamer()
	n := NewPipeNet()
	defer n.Close()
	if err := n.Listen("auth", h); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("auth")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.CallStream(context.Background(), countRequest(t, 5, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := st.Next()
		if err != nil || m.Type != "frame" {
			t.Fatalf("frame %d: %+v, %v", i, m, err)
		}
	}
	if _, err := st.Next(); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("Next = %v, want mid-stream handler error", err)
	}
}

// TestTCPStreamClientCancelMidStream cancels the consumer halfway: the
// client's next read fails with the context error, and the server's
// frame writes start failing (it must observe the dead peer rather than
// stream into the void). The client recovers with a fresh connection.
func TestTCPStreamClientCancelMidStream(t *testing.T) {
	h := newCountStreamer()
	h.gate = make(chan struct{}, 1024)
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.CallStream(ctx, countRequest(t, 1_000_000, 4096, -1))
	if err != nil {
		t.Fatal(err)
	}
	h.gate <- struct{}{}
	h.gate <- struct{}{}
	for i := 0; i < 2; i++ {
		if _, err := st.Next(); err != nil {
			t.Fatalf("frame %d before cancel: %v", i, err)
		}
	}
	cancel()
	if _, err := st.Next(); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	_ = st.Close()

	// Keep releasing frames until the server's write hits the closed
	// connection; the handler publishes the first send failure.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-h.sendErr:
			if err == nil {
				t.Fatal("handler published a nil send error")
			}
			goto recovered
		case <-deadline:
			t.Fatal("server never observed the dead consumer")
		case h.gate <- struct{}{}:
		default:
			time.Sleep(time.Millisecond)
		}
	}
recovered:
	// The aborted connection was discarded; a later unary call re-dials.
	if resp, err := c.Call(context.Background(), Message{Type: "ping"}); err != nil || resp.Type != "echo" {
		t.Fatalf("unary after aborted stream: %+v, %v", resp, err)
	}
}

// TestStreamStalledReaderHitsWriteDeadline connects a raw socket that
// sends a streaming request and then never reads: the per-frame write
// deadline must fail the server's send within the configured bound
// instead of pinning the serving goroutine, and server Close must
// complete promptly afterwards.
func TestStreamStalledReaderHitsWriteDeadline(t *testing.T) {
	h := newCountStreamer()
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetStreamWriteTimeout(200 * time.Millisecond)

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Big frames fill the kernel buffers fast; the stall then blocks the
	// server's write until the frame deadline fires.
	req := countRequest(t, 100_000, 256<<10, -1)
	if err := json.NewEncoder(raw).Encode(req); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	select {
	case err := <-h.sendErr:
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("send error = %v, want a write-deadline timeout", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("stalled reader never tripped the write deadline")
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("deadline took %v to fire with a 200ms frame timeout", waited)
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close wedged on the stalled stream")
	}
}

// TestStreamCloseBeforeTrailer abandons a stream early: the connection
// is discarded, ErrStreamDone surfaces, and the client dials fresh for
// the next call.
func TestStreamCloseBeforeTrailer(t *testing.T) {
	h := newCountStreamer()
	h.gate = make(chan struct{}, 16)
	srv, err := ListenTCP("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.CallStream(context.Background(), countRequest(t, 100, 0, -1))
	if err != nil {
		t.Fatal(err)
	}
	h.gate <- struct{}{}
	if _, err := st.Next(); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("early Close: %v", err)
	}
	if _, err := st.Next(); !errors.Is(err, ErrStreamDone) {
		t.Fatalf("Next after Close = %v, want ErrStreamDone", err)
	}
	for i := 0; i < 4; i++ {
		h.gate <- struct{}{} // let the abandoned handler run into its dead conn
	}
	if resp, err := c.Call(context.Background(), Message{Type: "ping"}); err != nil || resp.Type != "echo" {
		t.Fatalf("unary after early close: %+v, %v", resp, err)
	}
}
