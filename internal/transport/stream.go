package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStreamWriteTimeout bounds how long a streaming server waits for
// a stalled reader to drain one frame before declaring the connection
// dead. Unary exchanges are naturally bounded by the client's context;
// a stream writes many frames to a peer that may have stopped reading,
// so every frame write carries its own deadline.
const DefaultStreamWriteTimeout = 30 * time.Second

// ErrStreamDone is returned by Stream.Next after the terminal frame has
// been delivered (or the stream was closed early).
var ErrStreamDone = errors.New("transport: stream done")

// Stream is the client's view of one streaming exchange: a sequence of
// frames ending in a trailer whose Last flag is set. Next returns each
// frame in order; the frame with Last set is the trailer and the stream
// is done after it. A server-side failure arrives as an "error"-typed
// terminal frame translated into the returned error. Streams are not safe
// for concurrent Next calls, but Close may be called from another
// goroutine to abort a blocked Next.
type Stream interface {
	// Next returns the next frame. After the terminal frame (Last set,
	// returned with a nil error) further calls return ErrStreamDone.
	Next() (Message, error)
	// Close releases the stream. Closing before the terminal frame
	// abandons the exchange: the underlying connection cannot be reused
	// and is discarded. Close after the trailer is a no-op.
	Close() error
}

// StreamCaller is a Client that can additionally run streaming
// exchanges. Only message types the server streams (StreamHandler.
// Streams) may be sent through CallStream: a unary reply to a streamed
// request has no terminal frame, so Next would block on the second call.
type StreamCaller interface {
	Client
	// CallStream sends a request and returns the reply stream. The
	// context bounds the whole exchange: cancellation mid-stream expires
	// the connection deadline, failing the next frame read promptly.
	CallStream(ctx context.Context, req Message) (Stream, error)
}

// StreamHandler is a Handler that serves some message types as frame
// streams instead of single replies. The transports probe for it: a
// request whose type Streams() reports true is dispatched to
// HandleStream, everything else goes through Handle as before.
type StreamHandler interface {
	Handler
	// Streams reports whether msgType is served as a stream.
	Streams(msgType string) bool
	// HandleStream serves one streaming request: it calls send once per
	// intermediate frame (send blocks on backpressure and returns an
	// error when the connection is broken — the handler must stop
	// streaming then) and returns the trailer, which the transport
	// delivers with the Last flag set. A returned error becomes a
	// terminal "error" frame instead.
	HandleStream(ctx context.Context, req Message, send func(Message) error) (Message, error)
}

// serveStream runs the server half of one streaming exchange on conn,
// whose encoder enc already owns the write side. Every frame write —
// intermediate and trailer alike — is bounded by frameTimeout (<= 0
// disables the bound), so a reader that stopped draining cannot pin a
// serving goroutine forever. The returned error means the connection is
// broken and must be dropped; nil means the trailer was written and the
// connection is back in request/response state.
func serveStream(conn net.Conn, enc *json.Encoder, sh StreamHandler, req Message, frameTimeout time.Duration) error {
	send := func(m Message) error {
		if frameTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(frameTimeout)); err != nil {
				return fmt.Errorf("transport: arming stream write deadline: %w", err)
			}
		}
		err := enc.Encode(m)
		if frameTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Time{})
		}
		if err != nil {
			return fmt.Errorf("transport: writing stream frame: %w", err)
		}
		return nil
	}
	trailer, err := sh.HandleStream(context.Background(), req, func(m Message) error {
		m.Last = false // the trailer is the transport's to mark
		return send(m)
	})
	if err != nil {
		trailer = ErrorMessage(err)
	}
	trailer.Last = true
	return send(trailer)
}

// clientStream is the Stream implementation both clients share: a
// decoder positioned after the request was written, and a finish hook
// that returns (or discards) the underlying connection exactly once.
type clientStream struct {
	ctx  context.Context
	dec  *json.Decoder
	done atomic.Bool
	once sync.Once
	// finish releases the connection; broken means the exchange did not
	// reach its terminal frame, so the connection is desynchronized.
	finish func(broken bool)
}

// end runs the finish hook exactly once.
func (s *clientStream) end(broken bool) {
	s.once.Do(func() { s.finish(broken) })
}

// Next implements Stream.
func (s *clientStream) Next() (Message, error) {
	if s.done.Load() {
		return Message{}, ErrStreamDone
	}
	var m Message
	if err := s.dec.Decode(&m); err != nil {
		s.done.Store(true)
		s.end(true)
		if ctxErr := s.ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: reading stream frame: %w", ctxErr)
		}
		return Message{}, fmt.Errorf("transport: reading stream frame: %w", err)
	}
	if m.Last {
		s.done.Store(true)
		s.end(false)
		if err := m.AsError(); err != nil {
			return Message{}, err
		}
		return m, nil
	}
	if err := m.AsError(); err != nil {
		// A unary error reply: the server refused the request before any
		// streaming began (e.g. a pre-streaming peer). The exchange is
		// complete, so the connection is clean.
		s.done.Store(true)
		s.end(false)
		return Message{}, err
	}
	return m, nil
}

// Close implements Stream.
func (s *clientStream) Close() error {
	s.done.Store(true)
	s.end(true)
	return nil
}
