package transport

import (
	"context"
	"sync"
)

// InProcClient calls a Handler directly in the same process. It is the
// transport used by tests, examples, and single-machine simulations; the
// seam stays identical to TCP so parties cannot tell the difference.
type InProcClient struct {
	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Client = (*InProcClient)(nil)

// DialInProc connects a client directly to the handler.
func DialInProc(h Handler) *InProcClient {
	return &InProcClient{handler: h}
}

// Call implements Client. Application errors returned by the handler are
// translated into "error" messages and back, exactly like the TCP path, so
// behaviour matches across transports.
func (c *InProcClient) Call(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	closed := c.closed
	h := c.handler
	c.mu.Unlock()
	if closed {
		return Message{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	resp, err := h.Handle(ctx, req)
	if err != nil {
		resp = ErrorMessage(err)
	}
	if err := resp.AsError(); err != nil {
		return Message{}, err
	}
	return resp, nil
}

// Close implements Client.
func (c *InProcClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
