// Package transport provides the message layer the rationality-authority
// parties talk over: a typed request/response envelope, an in-process
// implementation for tests and single-machine simulations, and a TCP
// implementation with a JSON wire codec for genuinely distributed
// deployments (one process per inventor/verifier/agent).
package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// Message is the envelope every party exchanges: a type tag and a JSON
// payload. Keeping the payload raw lets the transport stay ignorant of the
// game-theoretic types above it.
type Message struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Last marks the terminal frame of a streaming exchange: the server
	// sets it on the trailer (or terminal error) so the client knows the
	// connection has returned to the strict request/response state. Unary
	// exchanges never set it, which keeps the field invisible on the wire
	// (omitempty) for every pre-streaming peer.
	Last bool `json:"last,omitempty"`
}

// NewMessage marshals a payload into an envelope.
func NewMessage(msgType string, payload any) (Message, error) {
	if msgType == "" {
		return Message{}, errors.New("transport: empty message type")
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("transport: encoding %q payload: %w", msgType, err)
	}
	return Message{Type: msgType, Payload: data}, nil
}

// Decode unmarshals the payload into out.
func (m Message) Decode(out any) error {
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("transport: decoding %q payload: %w", m.Type, err)
	}
	return nil
}

// ErrorPayload is the body of the reserved "error" reply type.
type ErrorPayload struct {
	Error string `json:"error"`
}

// ErrorMessage builds the standard error reply.
func ErrorMessage(err error) Message {
	data, marshalErr := json.Marshal(ErrorPayload{Error: err.Error()})
	if marshalErr != nil {
		// ErrorPayload marshalling cannot realistically fail; keep the
		// envelope valid regardless.
		data = []byte(`{"error":"internal error"}`)
	}
	return Message{Type: "error", Payload: data}
}

// AsError extracts the error from an "error" reply, or nil for other types.
func (m Message) AsError() error {
	if m.Type != "error" {
		return nil
	}
	var p ErrorPayload
	if err := json.Unmarshal(m.Payload, &p); err != nil {
		return fmt.Errorf("transport: malformed error reply")
	}
	return errors.New(p.Error)
}

// Handler serves requests. Implementations must be safe for concurrent use:
// both transports may serve multiple clients at once.
type Handler interface {
	Handle(ctx context.Context, req Message) (Message, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, req Message) (Message, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, req Message) (Message, error) {
	return f(ctx, req)
}

// Client issues requests to a remote (or co-located) party.
type Client interface {
	// Call sends a request and waits for the reply. An application-level
	// failure arrives as an "error"-typed message translated into the
	// returned error.
	Call(ctx context.Context, req Message) (Message, error)
	// Close releases the client's resources.
	Close() error
}

// ErrClosed is returned by operations on a closed client or server.
var ErrClosed = errors.New("transport: closed")
