package transport

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzMessageCodec throws arbitrary bytes at the wire envelope decoder:
// whatever json accepts as a Message must survive a re-encode → re-decode
// round trip bit-for-bit in meaning (type, payload, terminal flag), and
// the error translation must never panic. This is the codec every
// exchange — unary and streaming — rides on.
func FuzzMessageCodec(f *testing.F) {
	f.Add([]byte(`{"type":"verify","payload":{"n":1}}`))
	f.Add([]byte(`{"type":"stream-trailer","payload":{"items":3},"last":true}`))
	f.Add([]byte(`{"type":"error","payload":{"error":"nope"},"last":true}`))
	f.Add([]byte(`{"type":""}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := json.Unmarshal(data, &m); err != nil {
			return // not a message; rejecting is the correct outcome
		}
		_ = m.AsError() // must not panic on any decodable envelope
		encoded, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (input %q)", err, data)
		}
		var back Message
		if err := json.Unmarshal(encoded, &back); err != nil {
			t.Fatalf("re-encoded message failed to decode: %v (wire %q)", err, encoded)
		}
		if back.Type != m.Type || back.Last != m.Last {
			t.Fatalf("round trip changed the envelope: %+v -> %+v", m, back)
		}
		if !jsonEquivalent(m.Payload, back.Payload) {
			t.Fatalf("round trip changed the payload: %q -> %q", m.Payload, back.Payload)
		}
	})
}

// jsonEquivalent compares two raw payloads structurally (key order and
// whitespace are not wire contract).
func jsonEquivalent(a, b json.RawMessage) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(bytes.TrimSpace(a)) == len(bytes.TrimSpace(b))
	}
	var av, bv any
	if err := json.Unmarshal(a, &av); err != nil {
		return false
	}
	if err := json.Unmarshal(b, &bv); err != nil {
		return false
	}
	ra, _ := json.Marshal(av)
	rb, _ := json.Marshal(bv)
	return bytes.Equal(ra, rb)
}
