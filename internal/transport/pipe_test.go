package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipeEchoHandler answers "echo" with the same payload and fails
// everything else.
type pipeEchoHandler struct{}

func (pipeEchoHandler) Handle(_ context.Context, req Message) (Message, error) {
	if req.Type != "echo" {
		return Message{}, fmt.Errorf("unhandled type %q", req.Type)
	}
	return Message{Type: "echoed", Payload: req.Payload}, nil
}

func TestPipeNetCallRoundTrip(t *testing.T) {
	n := NewPipeNet()
	defer n.Close()
	if err := n.Listen("a", pipeEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req, err := NewMessage("echo", map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != "echoed" || string(resp.Payload) != string(req.Payload) {
		t.Fatalf("got %q %s", resp.Type, resp.Payload)
	}
	if n.BytesOnWire() == 0 {
		t.Fatal("exchange moved no counted bytes")
	}
}

func TestPipeNetHandlerErrorsBecomeAppErrors(t *testing.T) {
	n := NewPipeNet()
	defer n.Close()
	if err := n.Listen("a", pipeEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), Message{Type: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unhandled type") {
		t.Fatalf("want translated handler error, got %v", err)
	}
	// The error was an application reply, not a broken pipe: the same
	// connection must still serve the next call.
	req, _ := NewMessage("echo", 1)
	if _, err := c.Call(context.Background(), req); err != nil {
		t.Fatalf("connection did not survive an app error: %v", err)
	}
}

func TestPipeNetDialUnknownAndDuplicateListen(t *testing.T) {
	n := NewPipeNet()
	defer n.Close()
	if _, err := n.Dial("ghost"); err == nil {
		t.Fatal("dialing an unknown name must fail")
	}
	if err := n.Listen("a", pipeEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("a", pipeEchoHandler{}); err == nil {
		t.Fatal("duplicate listen must fail")
	}
}

func TestPipeNetConcurrentClients(t *testing.T) {
	n := NewPipeNet()
	defer n.Close()
	if err := n.Listen("a", pipeEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("a")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				req, _ := NewMessage("echo", i*100+j)
				resp, err := c.Call(context.Background(), req)
				if err != nil {
					t.Error(err)
					return
				}
				var got int
				if err := resp.Decode(&got); err != nil || got != i*100+j {
					t.Errorf("reply mismatch: %d err %v", got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// stallHandler blocks until released, to exercise deadlines.
type stallHandler struct{ release chan struct{} }

func (h stallHandler) Handle(context.Context, Message) (Message, error) {
	<-h.release
	return Message{Type: "ok"}, nil
}

func TestPipeNetCallHonorsContext(t *testing.T) {
	n := NewPipeNet()
	defer n.Close()
	h := stallHandler{release: make(chan struct{})}
	defer close(h.release)
	if err := n.Listen("slow", h); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, Message{Type: "echo"}); err == nil {
		t.Fatal("stalled call must fail at the deadline")
	}
	// The aborted exchange broke the pipe; the next call re-dials and
	// succeeds against a released handler... which here still stalls, so
	// just verify the client refuses nothing structurally: a fresh dial
	// to a live echo listener works.
	if err := n.Listen("fast", pipeEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	c2, err := n.Dial("fast")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Call(context.Background(), Message{Type: "echo"}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeNetClose(t *testing.T) {
	n := NewPipeNet()
	if err := n.Listen("a", pipeEchoHandler{}); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), Message{Type: "echo"}); err == nil {
		t.Fatal("call through a closed network must fail")
	}
	if _, err := n.Dial("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("dial after close: want ErrClosed, got %v", err)
	}
	if err := n.Listen("b", pipeEchoHandler{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("listen after close: want ErrClosed, got %v", err)
	}
}
