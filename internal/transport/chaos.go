package transport

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the error a ChaosClient returns for a call it chose
// to drop. Callers under test can distinguish injected loss from real
// transport failures.
var ErrInjectedDrop = errors.New("transport: chaos: injected drop")

// ChaosConfig parameterizes a ChaosClient. Each rate is an independent
// probability in [0, 1] drawn per call; a zero config injects nothing
// and the wrapper is a transparent passthrough.
type ChaosConfig struct {
	// Seed makes the fault sequence deterministic: two ChaosClients with
	// the same seed and the same call sequence inject the same faults in
	// the same order, so a failing chaos test replays exactly.
	Seed int64
	// Drop is the probability a call is swallowed: the inner client is
	// never invoked and Call returns ErrInjectedDrop.
	Drop float64
	// Delay is the probability a call is stalled before delivery, by a
	// duration drawn uniformly from [DelayMin, DelayMax]. The stall
	// respects context cancellation, so a delayed call against a short
	// deadline surfaces as a timeout — exactly how a slow peer looks.
	Delay    float64
	DelayMin time.Duration
	DelayMax time.Duration
	// Duplicate is the probability the request is delivered twice: the
	// inner client is called again with the same request and the second
	// reply is discarded. Exercises receiver idempotency.
	Duplicate float64
	// Garble is the probability the response payload is corrupted (one
	// byte XORed) before being returned. Exercises checksum/signature
	// verification downstream.
	Garble float64
}

// ChaosStats counts the faults a ChaosClient has injected.
type ChaosStats struct {
	Calls      uint64 `json:"calls"`
	Drops      uint64 `json:"drops"`
	Delays     uint64 `json:"delays"`
	Duplicates uint64 `json:"duplicates"`
	Garbles    uint64 `json:"garbles"`
}

// ChaosClient wraps a Client and injects seeded, deterministic faults:
// drops, delays, duplicates, and payload corruption. It exists for
// fault-injection tests — production federations meet flaky links; the
// test suite should too, reproducibly.
type ChaosClient struct {
	inner Client
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	calls, drops, delays, dupes, garbles atomic.Uint64
}

// Chaos wraps inner with fault injection per cfg.
func Chaos(inner Client, cfg ChaosConfig) *ChaosClient {
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = cfg.DelayMin
	}
	return &ChaosClient{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// callFaults is the fault plan for one call, drawn under the lock in a
// fixed order so the sequence depends only on the seed and call count,
// never on goroutine timing.
type callFaults struct {
	drop      bool
	delay     time.Duration
	duplicate bool
	garbleAt  int // -1: no garble; else index hint into the payload
}

// plan draws one call's faults.
func (c *ChaosClient) plan() callFaults {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := callFaults{garbleAt: -1}
	if c.rng.Float64() < c.cfg.Drop {
		f.drop = true
	}
	if c.rng.Float64() < c.cfg.Delay {
		span := c.cfg.DelayMax - c.cfg.DelayMin
		f.delay = c.cfg.DelayMin
		if span > 0 {
			f.delay += time.Duration(c.rng.Int63n(int64(span) + 1))
		}
	}
	if c.rng.Float64() < c.cfg.Duplicate {
		f.duplicate = true
	}
	if c.rng.Float64() < c.cfg.Garble {
		f.garbleAt = c.rng.Intn(1 << 16)
	}
	return f
}

// Call injects this call's planned faults around the inner client.
func (c *ChaosClient) Call(ctx context.Context, req Message) (Message, error) {
	c.calls.Add(1)
	f := c.plan()
	if f.delay > 0 {
		c.delays.Add(1)
		t := time.NewTimer(f.delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return Message{}, ctx.Err()
		}
	}
	if f.drop {
		c.drops.Add(1)
		return Message{}, ErrInjectedDrop
	}
	resp, err := c.inner.Call(ctx, req)
	if f.duplicate {
		c.dupes.Add(1)
		// Redeliver and discard: the receiver must tolerate replays.
		if dup, dupErr := c.inner.Call(ctx, req); dupErr == nil {
			_ = dup
		}
	}
	if err == nil && f.garbleAt >= 0 && len(resp.Payload) > 0 {
		c.garbles.Add(1)
		garbled := append([]byte(nil), resp.Payload...)
		garbled[f.garbleAt%len(garbled)] ^= 0xA5
		resp.Payload = garbled
	}
	return resp, err
}

// Close closes the inner client.
func (c *ChaosClient) Close() error { return c.inner.Close() }

// Stats reports the fault counts injected so far.
func (c *ChaosClient) Stats() ChaosStats {
	return ChaosStats{
		Calls:      c.calls.Load(),
		Drops:      c.drops.Load(),
		Delays:     c.delays.Load(),
		Duplicates: c.dupes.Load(),
		Garbles:    c.garbles.Load(),
	}
}
