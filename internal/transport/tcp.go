package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPServer serves a Handler over TCP with a newline-free JSON stream codec
// (one Message per json.Decoder token). Each accepted connection is served
// by its own goroutine; Close stops accepting, closes live connections, and
// waits for the serving goroutines to exit.
type TCPServer struct {
	listener net.Listener
	handler  Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP starts a server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		listener: ln,
		handler:  h,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Message
		if err := dec.Decode(&req); err != nil {
			return // client hung up or sent garbage; drop the connection
		}
		resp, err := s.handler.Handle(context.Background(), req)
		if err != nil {
			resp = ErrorMessage(err)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close stops the server and waits for in-flight connections to finish.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is a Client over a single persistent TCP connection. Calls are
// serialized: the protocol is strict request/response.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

var _ Client = (*TCPClient)(nil)

// DialTCP connects to a TCPServer.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPClient{
		conn: conn,
		dec:  json.NewDecoder(conn),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Call implements Client. The context's deadline is applied to the
// round trip via the connection deadline.
func (c *TCPClient) Call(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Message{}, ErrClosed
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return Message{}, fmt.Errorf("transport: setting deadline: %w", err)
		}
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(req); err != nil {
		return Message{}, fmt.Errorf("transport: sending request: %w", err)
	}
	var resp Message
	if err := c.dec.Decode(&resp); err != nil {
		return Message{}, fmt.Errorf("transport: reading reply: %w", err)
	}
	if err := resp.AsError(); err != nil {
		return Message{}, err
	}
	return resp, nil
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
