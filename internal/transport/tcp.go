package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPServer serves a Handler over TCP with a newline-free JSON stream codec
// (one Message per json.Decoder token). Each accepted connection is served
// by its own goroutine; Close stops accepting and drains gracefully: a
// connection mid-exchange finishes handling and writes its reply before
// closing, idle connections are closed immediately, and Close waits for
// the serving goroutines to exit.
type TCPServer struct {
	listener net.Listener
	handler  Handler

	mu     sync.Mutex
	conns  map[net.Conn]*connState
	closed bool
	wg     sync.WaitGroup
}

// connState tracks whether a connection is mid-exchange, so a drain can
// close idle connections immediately but let a request that is being
// handled receive its reply first.
type connState struct {
	mu             sync.Mutex
	busy           bool
	closeRequested bool
}

// ListenTCP starts a server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		listener: ln,
		handler:  h,
		conns:    make(map[net.Conn]*connState),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn, st)
	}
}

func (s *TCPServer) serveConn(conn net.Conn, st *connState) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Message
		if err := dec.Decode(&req); err != nil {
			return // client hung up or sent garbage; drop the connection
		}
		st.mu.Lock()
		if st.closeRequested {
			// The drain closed this connection as idle while the request
			// was arriving; the client already observes a closed conn.
			st.mu.Unlock()
			return
		}
		st.busy = true
		st.mu.Unlock()

		resp, err := s.handler.Handle(context.Background(), req)
		if err != nil {
			resp = ErrorMessage(err)
		}
		writeErr := enc.Encode(resp)

		st.mu.Lock()
		st.busy = false
		done := st.closeRequested
		st.mu.Unlock()
		if writeErr != nil || done {
			return
		}
	}
}

// Close stops the server and drains: connections mid-exchange write their
// reply first, idle connections close immediately, and Close waits for
// every serving goroutine to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn, st := range s.conns {
		st.mu.Lock()
		st.closeRequested = true
		if !st.busy {
			_ = conn.Close() // unblocks the Decode on an idle connection
		}
		st.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is a Client over a single persistent TCP connection. Calls are
// serialized: the protocol is strict request/response.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

var _ Client = (*TCPClient)(nil)

// DialTCP connects to a TCPServer.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPClient{
		conn: conn,
		dec:  json.NewDecoder(conn),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Call implements Client. The context's deadline is applied to the round
// trip via the connection deadline, and cancellation mid-request unblocks
// the round trip by expiring the connection deadline immediately. A failed
// or aborted round trip closes the connection: the stream protocol is
// strict request/response, so a half-finished exchange cannot be resumed
// — the next Call would otherwise read the stale reply. Subsequent calls
// return ErrClosed; callers re-dial.
func (c *TCPClient) Call(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Message{}, ErrClosed
	}
	conn := c.conn
	// Registered first so it runs last, after the watchdog below has been
	// joined — otherwise a late watchdog could re-expire the deadline.
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return Message{}, fmt.Errorf("transport: setting deadline: %w", err)
		}
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				_ = conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-exited
		}()
	}
	if err := c.enc.Encode(req); err != nil {
		c.teardownLocked()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: sending request: %w", ctxErr)
		}
		return Message{}, fmt.Errorf("transport: sending request: %w", err)
	}
	var resp Message
	if err := c.dec.Decode(&resp); err != nil {
		c.teardownLocked()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: reading reply: %w", ctxErr)
		}
		return Message{}, fmt.Errorf("transport: reading reply: %w", err)
	}
	if err := resp.AsError(); err != nil {
		return Message{}, err
	}
	return resp, nil
}

// teardownLocked closes a desynchronized connection. Callers hold c.mu.
func (c *TCPClient) teardownLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
