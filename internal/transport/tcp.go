package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPServer serves a Handler over TCP with a newline-free JSON stream codec
// (one Message per json.Decoder token). Each accepted connection is served
// by its own goroutine; Close stops accepting and drains gracefully: a
// connection mid-exchange finishes handling and writes its reply before
// closing, idle connections are closed immediately, and Close waits for
// the serving goroutines to exit.
type TCPServer struct {
	listener net.Listener
	handler  Handler

	// streamWriteTimeout bounds each streaming frame write (nanoseconds);
	// zero means DefaultStreamWriteTimeout, negative disables the bound.
	streamWriteTimeout atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]*connState
	closed bool
	wg     sync.WaitGroup
}

// connState tracks whether a connection is mid-exchange, so a drain can
// close idle connections immediately but let a request that is being
// handled receive its reply first.
type connState struct {
	mu             sync.Mutex
	busy           bool
	closeRequested bool
}

// ListenTCP starts a server on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func ListenTCP(addr string, h Handler) (*TCPServer, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		listener: ln,
		handler:  h,
		conns:    make(map[net.Conn]*connState),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// SetStreamWriteTimeout overrides the per-frame write deadline streaming
// replies are bounded by (DefaultStreamWriteTimeout when unset). A
// negative duration disables the bound. Safe to call while serving.
func (s *TCPServer) SetStreamWriteTimeout(d time.Duration) {
	s.streamWriteTimeout.Store(int64(d))
}

// streamTimeout resolves the effective per-frame write deadline.
func (s *TCPServer) streamTimeout() time.Duration {
	if d := s.streamWriteTimeout.Load(); d != 0 {
		return time.Duration(d)
	}
	return DefaultStreamWriteTimeout
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn, st)
	}
}

func (s *TCPServer) serveConn(conn net.Conn, st *connState) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Message
		if err := dec.Decode(&req); err != nil {
			return // client hung up or sent garbage; drop the connection
		}
		st.mu.Lock()
		if st.closeRequested {
			// The drain closed this connection as idle while the request
			// was arriving; the client already observes a closed conn.
			st.mu.Unlock()
			return
		}
		st.busy = true
		st.mu.Unlock()

		if sh, ok := s.handler.(StreamHandler); ok && sh.Streams(req.Type) {
			streamErr := serveStream(conn, enc, sh, req, s.streamTimeout())
			st.mu.Lock()
			st.busy = false
			done := st.closeRequested
			st.mu.Unlock()
			if streamErr != nil || done {
				return
			}
			continue
		}

		resp, err := s.handler.Handle(context.Background(), req)
		if err != nil {
			resp = ErrorMessage(err)
		}
		writeErr := enc.Encode(resp)

		st.mu.Lock()
		st.busy = false
		done := st.closeRequested
		st.mu.Unlock()
		if writeErr != nil || done {
			return
		}
	}
}

// Close stops the server and drains: connections mid-exchange write their
// reply first, idle connections close immediately, and Close waits for
// every serving goroutine to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn, st := range s.conns {
		st.mu.Lock()
		st.closeRequested = true
		if !st.busy {
			_ = conn.Close() // unblocks the Decode on an idle connection
		}
		st.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is a Client over a pool of persistent TCP connections. Each
// connection speaks the strict request/response stream protocol, so one
// call owns one connection for its whole round trip; pooling lets up to
// poolSize calls proceed concurrently instead of serializing on a single
// connection's mutex. Connections are checked out per call and dialed
// lazily: a broken connection is discarded and replaced by a fresh dial on
// a later call, so a transient failure never bricks the client. Each
// pooled connection keeps its own JSON encoder/decoder for its lifetime —
// the per-call codec state (and its buffers) is pooled along with the
// connection rather than re-allocated per request.
type TCPClient struct {
	addr        string
	dialTimeout time.Duration
	// slots is the checkout queue, with one element per pool slot: a
	// ready connection, or nil — a permit to dial lazily.
	slots chan *poolConn

	mu     sync.Mutex
	closed bool
	live   map[*poolConn]struct{}
}

// poolConn is one pooled connection with its persistent stream codec.
type poolConn struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

var (
	_ Client       = (*TCPClient)(nil)
	_ StreamCaller = (*TCPClient)(nil)
)

// DefaultPoolSize is the connection-pool size used by DialTCPPool when the
// requested size is zero or negative.
const DefaultPoolSize = 4

// DialTCP connects to a TCPServer with a single-connection pool: calls
// serialize exactly as the classic client did. Use DialTCPPool to let
// concurrent calls proceed in parallel.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	return DialTCPPool(addr, timeout, 1)
}

// DialTCPPool connects to a TCPServer with a pool of up to poolSize
// connections (zero or negative means DefaultPoolSize). The first
// connection is dialed eagerly so an unreachable server fails fast; the
// rest are dialed lazily, on demand, as concurrent calls need them.
func DialTCPPool(addr string, timeout time.Duration, poolSize int) (*TCPClient, error) {
	if poolSize <= 0 {
		poolSize = DefaultPoolSize
	}
	c := &TCPClient{
		addr:        addr,
		dialTimeout: timeout,
		slots:       make(chan *poolConn, poolSize),
		live:        make(map[*poolConn]struct{}),
	}
	pc, err := c.dial(context.Background())
	if err != nil {
		return nil, err
	}
	c.slots <- pc
	for i := 1; i < poolSize; i++ {
		c.slots <- nil // lazy-dial permits
	}
	return c, nil
}

// dial opens one pooled connection and registers it for Close. The dial
// is bounded by both the configured timeout and the caller's context, so
// a lazy dial inside Call cannot outlive the call's deadline.
func (c *TCPClient) dial(ctx context.Context) (*poolConn, error) {
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	pc := &poolConn{
		conn: conn,
		dec:  json.NewDecoder(conn),
		enc:  json.NewEncoder(conn),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	c.live[pc] = struct{}{}
	c.mu.Unlock()
	return pc, nil
}

// discard closes a desynchronized or surplus connection and forgets it.
func (c *TCPClient) discard(pc *poolConn) {
	_ = pc.conn.Close()
	c.mu.Lock()
	delete(c.live, pc)
	c.mu.Unlock()
}

// Call implements Client. It checks a connection out of the pool (dialing
// lazily when the slot is empty), runs the round trip on it, and returns
// it. The context's deadline is applied to the round trip via the
// connection deadline, and cancellation mid-request unblocks the round
// trip by expiring the connection deadline immediately; waiting for a free
// pool slot honors the context too. A failed or aborted round trip closes
// its connection: the stream protocol is strict request/response, so a
// half-finished exchange cannot be resumed — a later call dials a
// replacement instead of reading the stale reply. After Close, calls
// return ErrClosed.
func (c *TCPClient) Call(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return Message{}, ErrClosed
	}
	var pc *poolConn
	select {
	case pc = <-c.slots:
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
	if pc == nil {
		var err error
		if pc, err = c.dial(ctx); err != nil {
			c.slots <- nil // hand the permit back
			return Message{}, err
		}
	}
	resp, err, broken := c.roundTrip(ctx, pc, req)
	if broken {
		c.discard(pc)
		c.slots <- nil
	} else {
		c.slots <- pc
	}
	return resp, err
}

// CallStream implements StreamCaller: it checks a connection out of the
// pool exactly like Call, sends the request, and returns the reply
// stream. The connection stays checked out until the stream finishes —
// cleanly (trailer read, connection returned to the pool) or not (closed
// early or broken, connection discarded). The context bounds the whole
// exchange through the connection deadline, so cancellation mid-stream
// fails the next Next promptly. Only send message types the server
// streams: a unary reply has no terminal frame to end the stream on.
func (c *TCPClient) CallStream(ctx context.Context, req Message) (Stream, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	var pc *poolConn
	select {
	case pc = <-c.slots:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if pc == nil {
		var err error
		if pc, err = c.dial(ctx); err != nil {
			c.slots <- nil // hand the permit back
			return nil, err
		}
	}
	conn := pc.conn
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			c.discard(pc)
			c.slots <- nil
			return nil, fmt.Errorf("transport: setting deadline: %w", err)
		}
	}
	// The cancellation watchdog spans the whole stream, not one round
	// trip: it is joined by the finish hook when the stream ends.
	stopWatchdog := func() {}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				_ = conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		stopWatchdog = func() {
			close(stop)
			<-exited
		}
	}
	finish := func(broken bool) {
		stopWatchdog()
		_ = conn.SetDeadline(time.Time{})
		if broken {
			c.discard(pc)
			c.slots <- nil
		} else {
			c.slots <- pc
		}
	}
	if err := pc.enc.Encode(req); err != nil {
		finish(true)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("transport: sending request: %w", ctxErr)
		}
		return nil, fmt.Errorf("transport: sending request: %w", err)
	}
	return &clientStream{ctx: ctx, dec: pc.dec, finish: finish}, nil
}

// roundTrip runs one exchange on a checked-out connection. broken reports
// that the connection is desynchronized and must not be reused.
func (c *TCPClient) roundTrip(ctx context.Context, pc *poolConn, req Message) (resp Message, err error, broken bool) {
	conn := pc.conn
	// Registered first so it runs last, after the watchdog below has been
	// joined — otherwise a late watchdog could re-expire the deadline.
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return Message{}, fmt.Errorf("transport: setting deadline: %w", err), true
		}
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-ctx.Done():
				_ = conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-exited
		}()
	}
	if err := pc.enc.Encode(req); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: sending request: %w", ctxErr), true
		}
		return Message{}, fmt.Errorf("transport: sending request: %w", err), true
	}
	if err := pc.dec.Decode(&resp); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, fmt.Errorf("transport: reading reply: %w", ctxErr), true
		}
		return Message{}, fmt.Errorf("transport: reading reply: %w", err), true
	}
	if err := resp.AsError(); err != nil {
		return Message{}, err, false
	}
	return resp, nil, false
}

// Close implements Client: it closes every pooled connection, including
// ones currently checked out by in-flight calls (their round trips fail
// promptly rather than lingering). Close is idempotent; subsequent calls
// return ErrClosed.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	for pc := range c.live {
		if cerr := pc.conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.live = nil
	return err
}
