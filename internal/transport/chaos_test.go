package transport

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// echoClient is a deterministic inner client that counts deliveries and
// echoes the request type back with a fixed payload.
type echoClient struct {
	delivered atomic.Uint64
	closed    atomic.Bool
}

func (e *echoClient) Call(ctx context.Context, req Message) (Message, error) {
	e.delivered.Add(1)
	return Message{Type: req.Type, Payload: json.RawMessage(`{"ok":true,"n":12345}`)}, nil
}
func (e *echoClient) Close() error { e.closed.Store(true); return nil }

func chaosCall(t *testing.T, c Client) (Message, error) {
	t.Helper()
	return c.Call(context.Background(), Message{Type: "ping"})
}

// A zero config is a transparent passthrough: no faults, no mutation.
func TestChaosPassthrough(t *testing.T) {
	inner := &echoClient{}
	c := Chaos(inner, ChaosConfig{Seed: 1})
	for i := 0; i < 50; i++ {
		resp, err := chaosCall(t, c)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp.Payload) != `{"ok":true,"n":12345}` {
			t.Fatalf("call %d: payload mutated: %s", i, resp.Payload)
		}
	}
	st := c.Stats()
	if st.Calls != 50 || st.Drops+st.Delays+st.Duplicates+st.Garbles != 0 {
		t.Errorf("passthrough injected faults: %+v", st)
	}
	if inner.delivered.Load() != 50 {
		t.Errorf("delivered=%d, want 50", inner.delivered.Load())
	}
	if err := c.Close(); err != nil || !inner.closed.Load() {
		t.Error("Close must reach the inner client")
	}
}

// Drop=1: every call is swallowed before the inner client sees it.
func TestChaosDrop(t *testing.T) {
	inner := &echoClient{}
	c := Chaos(inner, ChaosConfig{Seed: 7, Drop: 1})
	for i := 0; i < 10; i++ {
		if _, err := chaosCall(t, c); !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("call %d: err=%v, want ErrInjectedDrop", i, err)
		}
	}
	if inner.delivered.Load() != 0 {
		t.Errorf("dropped calls reached the inner client: %d", inner.delivered.Load())
	}
	if st := c.Stats(); st.Drops != 10 {
		t.Errorf("stats=%+v, want 10 drops", st)
	}
}

// Delay=1 stalls the call; a tighter context deadline wins, so a delayed
// peer looks exactly like a slow one to the caller.
func TestChaosDelayRespectsContext(t *testing.T) {
	inner := &echoClient{}
	c := Chaos(inner, ChaosConfig{Seed: 3, Delay: 1, DelayMin: 50 * time.Millisecond, DelayMax: 50 * time.Millisecond})

	start := time.Now()
	if _, err := c.Call(context.Background(), Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("delayed call returned after %s, want >= 50ms", d)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, Message{Type: "ping"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err=%v, want DeadlineExceeded", err)
	}
	if inner.delivered.Load() != 1 {
		t.Errorf("delivered=%d: the timed-out call must not reach the inner client", inner.delivered.Load())
	}
}

// Duplicate=1: the receiver sees every request twice; the caller sees
// one reply.
func TestChaosDuplicate(t *testing.T) {
	inner := &echoClient{}
	c := Chaos(inner, ChaosConfig{Seed: 5, Duplicate: 1})
	for i := 0; i < 10; i++ {
		if _, err := chaosCall(t, c); err != nil {
			t.Fatal(err)
		}
	}
	if inner.delivered.Load() != 20 {
		t.Errorf("delivered=%d, want 20 (each call duplicated)", inner.delivered.Load())
	}
	if st := c.Stats(); st.Duplicates != 10 {
		t.Errorf("stats=%+v, want 10 duplicates", st)
	}
}

// Garble=1: the response payload comes back corrupted — and therefore
// unparseable or signature-failing downstream — while the inner client's
// reply was untouched.
func TestChaosGarble(t *testing.T) {
	inner := &echoClient{}
	c := Chaos(inner, ChaosConfig{Seed: 9, Garble: 1})
	garbled := 0
	for i := 0; i < 10; i++ {
		resp, err := chaosCall(t, c)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Payload) != `{"ok":true,"n":12345}` {
			garbled++
		}
	}
	if garbled != 10 {
		t.Errorf("garbled %d/10 payloads, want all", garbled)
	}
	if st := c.Stats(); st.Garbles != 10 {
		t.Errorf("stats=%+v", st)
	}
}

// Same seed, same call sequence → same fault plan, call for call. The
// whole point of seeding: a failing chaos test replays exactly.
func TestChaosSeededDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, Drop: 0.3, Duplicate: 0.3, Garble: 0.3}
	run := func() []string {
		inner := &echoClient{}
		c := Chaos(inner, cfg)
		var trace []string
		for i := 0; i < 200; i++ {
			resp, err := chaosCall(t, c)
			switch {
			case errors.Is(err, ErrInjectedDrop):
				trace = append(trace, "drop")
			case err != nil:
				t.Fatal(err)
			case string(resp.Payload) != `{"ok":true,"n":12345}`:
				trace = append(trace, "garble")
			default:
				trace = append(trace, "ok")
			}
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged: %s vs %s", i, a[i], b[i])
		}
	}

	// A different seed yields a different plan (overwhelmingly likely
	// over 200 draws at these rates).
	cfg.Seed = 43
	diff := run()
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}
