package transport

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func BenchmarkInProcRoundTrip(b *testing.B) {
	c := DialInProc(echoHandler)
	defer c.Close()
	req, err := NewMessage("ping", ping{N: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req, err := NewMessage("ping", ping{N: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: messages of arbitrary payload bytes survive the envelope and
// the in-process transport unchanged.
func TestMessagePayloadRoundTripProperty(t *testing.T) {
	c := DialInProc(echoHandler)
	defer c.Close()
	f := func(n int32, s string) bool {
		req, err := NewMessage("ping", map[string]any{"n": n, "s": s})
		if err != nil {
			return false
		}
		resp, err := c.Call(context.Background(), req)
		if err != nil {
			return false
		}
		var out struct {
			N int32  `json:"n"`
			S string `json:"s"`
		}
		if err := resp.Decode(&out); err != nil {
			return false
		}
		return out.N == n && out.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
