package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoHandler replies with the request payload under type "echo", or fails
// on request type "boom".
var echoHandler = HandlerFunc(func(_ context.Context, req Message) (Message, error) {
	if req.Type == "boom" {
		return Message{}, errors.New("kaboom")
	}
	return Message{Type: "echo", Payload: req.Payload}, nil
})

type ping struct {
	N int `json:"n"`
}

func TestNewMessageAndDecode(t *testing.T) {
	m, err := NewMessage("ping", ping{N: 42})
	if err != nil {
		t.Fatal(err)
	}
	var p ping
	if err := m.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.N != 42 {
		t.Errorf("N = %d", p.N)
	}
	if _, err := NewMessage("", nil); err == nil {
		t.Error("empty type accepted")
	}
	if _, err := NewMessage("x", make(chan int)); err == nil {
		t.Error("unmarshalable payload accepted")
	}
}

func TestErrorMessageRoundTrip(t *testing.T) {
	m := ErrorMessage(errors.New("nope"))
	if err := m.AsError(); err == nil || err.Error() != "nope" {
		t.Errorf("AsError = %v", err)
	}
	ok, _ := NewMessage("fine", nil)
	if ok.AsError() != nil {
		t.Error("non-error message reported an error")
	}
}

func TestInProcCall(t *testing.T) {
	c := DialInProc(echoHandler)
	defer c.Close()
	req, _ := NewMessage("ping", ping{N: 7})
	resp, err := c.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var p ping
	if err := resp.Decode(&p); err != nil || p.N != 7 {
		t.Fatalf("resp = %+v err = %v", p, err)
	}
}

func TestInProcErrors(t *testing.T) {
	c := DialInProc(echoHandler)
	req, _ := NewMessage("boom", nil)
	if _, err := c.Call(context.Background(), req); err == nil || err.Error() != "kaboom" {
		t.Fatalf("err = %v, want kaboom", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestInProcContextCancelled(t *testing.T) {
	c := DialInProc(echoHandler)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := NewMessage("ping", nil)
	if _, err := c.Call(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 5; i++ {
		req, _ := NewMessage("ping", ping{N: i})
		resp, err := client.Call(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		var p ping
		if err := resp.Decode(&p); err != nil || p.N != i {
			t.Fatalf("round %d: %+v err=%v", i, p, err)
		}
	}
}

func TestTCPApplicationError(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	req, _ := NewMessage("boom", nil)
	if _, err := client.Call(context.Background(), req); err == nil || err.Error() != "kaboom" {
		t.Fatalf("err = %v, want kaboom", err)
	}
	// The connection survives application errors.
	req2, _ := NewMessage("ping", ping{N: 1})
	if _, err := client.Call(context.Background(), req2); err != nil {
		t.Fatalf("connection did not survive an application error: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	var mu sync.Mutex
	served := 0
	counting := HandlerFunc(func(ctx context.Context, req Message) (Message, error) {
		mu.Lock()
		served++
		mu.Unlock()
		return echoHandler(ctx, req)
	})
	srv, err := ListenTCP("127.0.0.1:0", counting)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialTCP(srv.Addr(), time.Second)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			req, _ := NewMessage("ping", ping{N: i})
			if _, err := c.Call(context.Background(), req); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if served != clients {
		t.Errorf("served %d, want %d", served, clients)
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

func TestTCPClientClosed(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	req, _ := NewMessage("ping", nil)
	if _, err := c.Call(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPContextDeadline(t *testing.T) {
	slow := HandlerFunc(func(ctx context.Context, req Message) (Message, error) {
		time.Sleep(200 * time.Millisecond)
		return req, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := NewMessage("ping", nil)
	if _, err := c.Call(ctx, req); err == nil {
		t.Fatal("deadline not enforced")
	}
}

func TestListenTCPValidation(t *testing.T) {
	if _, err := ListenTCP("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := ListenTCP("256.256.256.256:0", echoHandler); err == nil {
		t.Error("bogus address accepted")
	}
}

func TestDialTCPFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestTransportParity(t *testing.T) {
	// The same handler must behave identically over both transports.
	srv, err := ListenTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tcpClient, err := DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpClient.Close()
	inproc := DialInProc(echoHandler)
	defer inproc.Close()

	req, _ := NewMessage("ping", ping{N: 3})
	for name, c := range map[string]Client{"tcp": tcpClient, "inproc": inproc} {
		resp, err := c.Call(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var p ping
		if err := resp.Decode(&p); err != nil || p.N != 3 {
			t.Fatalf("%s: %+v err=%v", name, p, err)
		}
	}
}

func TestMessageDecodeError(t *testing.T) {
	m := Message{Type: "x", Payload: []byte("{broken")}
	var out ping
	if err := m.Decode(&out); err == nil {
		t.Error("broken payload decoded")
	}
	if fmt.Sprint(m.Type) != "x" {
		t.Error("unexpected type")
	}
}
