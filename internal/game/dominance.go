package game

import "rationality/internal/numeric"

// Dominance analysis. The paper's related work (Tadjouddine [29]) notes
// that verifying a dominant-strategy equilibrium is NP-complete in general
// encodings; for the dense strategic-form games this package materializes,
// the checks below are polynomial in the (already exponential) profile
// count, mirroring the enumeration trade-off of §3.

// DominanceKind distinguishes strict from weak dominance.
type DominanceKind int

// Dominance kinds.
const (
	// Strict: strictly better against every opponent profile.
	Strict DominanceKind = iota + 1
	// Weak: at least as good everywhere, strictly better somewhere.
	Weak
)

func (k DominanceKind) String() string {
	switch k {
	case Strict:
		return "strict"
	case Weak:
		return "weak"
	default:
		return "unknown"
	}
}

// Dominates reports whether agent i's strategy si dominates its strategy ti
// (strictly or weakly per kind), i.e. for every combination of the other
// agents' strategies.
func (g *Game) Dominates(i, si, ti int, kind DominanceKind) bool {
	if si == ti {
		return false
	}
	strictlyBetterSomewhere := false
	dominated := true
	g.ForEachProfile(func(p Profile) bool {
		if p[i] != ti {
			return true // only compare against profiles where i plays ti
		}
		uTi := g.Payoff(i, p)
		uSi := g.Payoff(i, p.Change(i, si))
		switch uSi.Cmp(uTi) {
		case -1:
			dominated = false
			return false
		case 1:
			strictlyBetterSomewhere = true
		case 0:
			if kind == Strict {
				dominated = false
				return false
			}
		}
		return true
	})
	if !dominated {
		return false
	}
	if kind == Weak {
		return strictlyBetterSomewhere
	}
	return true
}

// DominantStrategy returns agent i's strategy that dominates all its other
// strategies (per kind), or ok = false when none exists.
func (g *Game) DominantStrategy(i int, kind DominanceKind) (si int, ok bool) {
	for cand := 0; cand < g.NumStrategies(i); cand++ {
		dominatesAll := true
		for other := 0; other < g.NumStrategies(i); other++ {
			if other == cand {
				continue
			}
			if !g.Dominates(i, cand, other, kind) {
				dominatesAll = false
				break
			}
		}
		if dominatesAll {
			return cand, true
		}
	}
	return 0, false
}

// DominantEquilibrium returns the profile in which every agent plays a
// dominant strategy of the given kind, or ok = false when some agent has
// none. A dominant-strategy equilibrium is in particular a Nash equilibrium.
func (g *Game) DominantEquilibrium(kind DominanceKind) (Profile, bool) {
	p := make(Profile, g.NumAgents())
	for i := 0; i < g.NumAgents(); i++ {
		si, ok := g.DominantStrategy(i, kind)
		if !ok {
			return nil, false
		}
		p[i] = si
	}
	return p, true
}

// EliminateDominated performs iterated elimination of strictly dominated
// strategies (IESDS) and returns, per agent, the surviving strategy indices
// (in increasing order). The survivor set is order-independent for strict
// dominance. Every Nash equilibrium survives IESDS.
func (g *Game) EliminateDominated() [][]int {
	alive := make([][]bool, g.NumAgents())
	for i := range alive {
		alive[i] = make([]bool, g.NumStrategies(i))
		for s := range alive[i] {
			alive[i][s] = true
		}
	}

	// dominatesOnSubgame restricts the Dominates check to profiles whose
	// strategies are all alive.
	dominatesOnSubgame := func(i, si, ti int) bool {
		dominated := true
		g.ForEachProfile(func(p Profile) bool {
			if p[i] != ti {
				return true
			}
			for j, s := range p {
				if j != i && !alive[j][s] {
					return true // opponent profile eliminated
				}
			}
			if numeric.Le(g.Payoff(i, p.Change(i, si)), g.Payoff(i, p)) {
				dominated = false
				return false
			}
			return true
		})
		return dominated
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < g.NumAgents(); i++ {
			aliveCount := 0
			for _, a := range alive[i] {
				if a {
					aliveCount++
				}
			}
			if aliveCount <= 1 {
				continue
			}
			for ti := 0; ti < g.NumStrategies(i) && aliveCount > 1; ti++ {
				if !alive[i][ti] {
					continue
				}
				for si := 0; si < g.NumStrategies(i); si++ {
					if si == ti || !alive[i][si] {
						continue
					}
					if dominatesOnSubgame(i, si, ti) {
						alive[i][ti] = false
						aliveCount--
						changed = true
						break
					}
				}
			}
		}
	}

	out := make([][]int, g.NumAgents())
	for i := range alive {
		for s, a := range alive[i] {
			if a {
				out[i] = append(out[i], s)
			}
		}
	}
	return out
}
