package game

import "rationality/internal/numeric"

// LeU reports whether profile p ≤u q: every agent weakly prefers q, i.e.
// ∀i: ui(p) <= ui(q). It is the paper's leStrat(n, u, Si1, Si2) predicate
// (Fig. 2 line 20).
func (g *Game) LeU(p, q Profile) bool {
	for i := 0; i < g.NumAgents(); i++ {
		if numeric.Gt(g.Payoff(i, p), g.Payoff(i, q)) {
			return false
		}
	}
	return true
}

// Incomparable reports whether p and q are incomparable under ≤u: some agent
// strictly prefers p and some agent strictly prefers q. It is the paper's
// noComp predicate (Fig. 2 line 18: ∃i, j: ui(Si1) < ui(Si2) ∧ uj(Si2) < uj(Si1)).
func (g *Game) Incomparable(p, q Profile) bool {
	someonePrefersQ := false
	someonePrefersP := false
	for i := 0; i < g.NumAgents(); i++ {
		switch g.Payoff(i, p).Cmp(g.Payoff(i, q)) {
		case -1:
			someonePrefersQ = true
		case 1:
			someonePrefersP = true
		}
	}
	return someonePrefersQ && someonePrefersP
}

// Deviation is a profitable unilateral deviation from a profile: agent Agent
// strictly improves by switching to Strategy.
type Deviation struct {
	Agent    int
	Strategy int
}

// FindDeviation searches for a profitable unilateral deviation from p. It
// returns the first one in (agent, strategy) order, or ok=false when p is a
// pure Nash equilibrium. The returned deviation doubles as the
// counterexample witness used by the §3 proof scheme.
func (g *Game) FindDeviation(p Profile) (dev Deviation, ok bool) {
	if !g.ValidProfile(p) {
		panic("game: FindDeviation on invalid profile")
	}
	for i := 0; i < g.NumAgents(); i++ {
		base := g.Payoff(i, p)
		for si := 0; si < g.NumStrategies(i); si++ {
			if si == p[i] {
				continue
			}
			if numeric.Gt(g.Payoff(i, p.Change(i, si)), base) {
				return Deviation{Agent: i, Strategy: si}, true
			}
		}
	}
	return Deviation{}, false
}

// IsNash reports whether p is a pure Nash equilibrium: isStrat(p) and no
// agent can strictly gain by a unilateral deviation (Fig. 2 line 22-24).
func (g *Game) IsNash(p Profile) bool {
	if !g.ValidProfile(p) {
		return false
	}
	_, deviates := g.FindDeviation(p)
	return !deviates
}

// AllNash returns every pure Nash equilibrium of the game in lexicographic
// order. This is the enumeration the §3 proof scheme certifies (allNash).
func (g *Game) AllNash() []Profile {
	var out []Profile
	g.ForEachProfile(func(p Profile) bool {
		if g.IsNash(p) {
			out = append(out, p.Clone())
		}
		return true
	})
	return out
}

// IsMaxNash reports whether p is a maximal pure Nash equilibrium: p is an
// equilibrium and no other equilibrium q has q ≥u p with q ≠ p (Fig. 2
// line 26, NashMax line 36: every equilibrium is ≤u p or incomparable).
func (g *Game) IsMaxNash(p Profile) bool {
	if !g.IsNash(p) {
		return false
	}
	dominated := false
	g.ForEachProfile(func(q Profile) bool {
		if !g.IsNash(q) || q.Equal(p) {
			return true
		}
		// q dominates p iff p ≤u q and they are not payoff-identical.
		if g.LeU(p, q) && !g.LeU(q, p) {
			dominated = true
			return false
		}
		return true
	})
	return !dominated
}

// IsMinNash reports whether p is a minimal pure Nash equilibrium (footnote 1
// of the paper: no equilibrium q has q ≤u p with strictly less for someone).
func (g *Game) IsMinNash(p Profile) bool {
	if !g.IsNash(p) {
		return false
	}
	dominated := false
	g.ForEachProfile(func(q Profile) bool {
		if !g.IsNash(q) || q.Equal(p) {
			return true
		}
		if g.LeU(q, p) && !g.LeU(p, q) {
			dominated = true
			return false
		}
		return true
	})
	return !dominated
}

// BestResponses returns the set of agent i's best responses to the other
// agents' strategies in p, as strategy indices in increasing order.
func (g *Game) BestResponses(i int, p Profile) []int {
	if !g.ValidProfile(p) {
		panic("game: BestResponses on invalid profile")
	}
	best := g.Payoff(i, p.Change(i, 0))
	var out []int
	for si := 0; si < g.NumStrategies(i); si++ {
		v := g.Payoff(i, p.Change(i, si))
		switch v.Cmp(best) {
		case 1:
			best = v
			out = out[:0]
			out = append(out, si)
		case 0:
			out = append(out, si)
		}
	}
	return out
}
