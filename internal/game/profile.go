// Package game implements finite strategic-form games: agents, strategy
// profiles, payoff tensors, and the pure Nash equilibrium predicates of the
// paper's Fig. 2 (isStrat, eqStrat, change, leStrat, noComp, isNash,
// isMaxNash). It is the substrate shared by the proof checker (§3), the
// participation game (§5), and the congestion games (§6).
package game

import (
	"fmt"
	"strconv"
	"strings"
)

// Profile is a pure strategy profile: Profile[i] is the index of the strategy
// played by agent i. It corresponds to Si in the paper's Fig. 2.
type Profile []int

// Clone returns an independent copy of p.
func (p Profile) Clone() Profile {
	c := make(Profile, len(p))
	copy(c, p)
	return c
}

// Equal reports whether p and q select the same strategy for every agent.
// It is the paper's eqStrat predicate.
func (p Profile) Equal(q Profile) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Change returns a new profile identical to p except that agent i plays
// strategy si. It is the paper's change(Si, si, i) function; Fig. 2 notes it
// can build all profiles needed to prove a profile is a Nash equilibrium.
func (p Profile) Change(i, si int) Profile {
	if i < 0 || i >= len(p) {
		panic(fmt.Sprintf("game: agent %d out of range for %d-agent profile", i, len(p)))
	}
	c := p.Clone()
	c[i] = si
	return c
}

// String renders the profile as "[s0 s1 ...]".
func (p Profile) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, s := range p {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(s))
	}
	sb.WriteByte(']')
	return sb.String()
}
