package game

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// Game is a finite strategic-form game ⟨N, A = (Ai), U = (ui)⟩. Payoffs are
// exact rationals stored densely: payoffs[i] holds agent i's utility for
// every profile, indexed by the mixed-radix encoding of the profile.
type Game struct {
	name          string
	numStrategies []int        // TSi in Fig. 2: numStrategies[i] = |Ai|
	payoffs       [][]*big.Rat // payoffs[agent][profileIndex]
	numProfiles   int
}

// New creates a game with the given strategy set sizes (one per agent) and
// all payoffs zero. Every agent must have at least one strategy.
func New(name string, numStrategies []int) (*Game, error) {
	if len(numStrategies) == 0 {
		return nil, fmt.Errorf("game: a game needs at least one agent")
	}
	numProfiles := 1
	for i, k := range numStrategies {
		if k <= 0 {
			return nil, fmt.Errorf("game: agent %d has %d strategies; need >= 1", i, k)
		}
		if numProfiles > 1<<28/k {
			return nil, fmt.Errorf("game: profile space too large to materialize")
		}
		numProfiles *= k
	}
	sizes := make([]int, len(numStrategies))
	copy(sizes, numStrategies)
	payoffs := make([][]*big.Rat, len(sizes))
	for i := range payoffs {
		row := make([]*big.Rat, numProfiles)
		for j := range row {
			row[j] = new(big.Rat)
		}
		payoffs[i] = row
	}
	return &Game{name: name, numStrategies: sizes, payoffs: payoffs, numProfiles: numProfiles}, nil
}

// MustNew is New that panics on error; for tests, examples, and literals.
func MustNew(name string, numStrategies []int) *Game {
	g, err := New(name, numStrategies)
	if err != nil {
		panic(err)
	}
	return g
}

// FromFunc creates a game whose payoffs are produced by u(agent, profile).
// The profile passed to u must not be retained.
func FromFunc(name string, numStrategies []int, u func(agent int, p Profile) *big.Rat) (*Game, error) {
	g, err := New(name, numStrategies)
	if err != nil {
		return nil, err
	}
	g.ForEachProfile(func(p Profile) bool {
		idx := g.index(p)
		for i := range g.payoffs {
			g.payoffs[i][idx].Set(u(i, p))
		}
		return true
	})
	return g, nil
}

// Name returns the game's display name.
func (g *Game) Name() string { return g.name }

// NumAgents returns |N|.
func (g *Game) NumAgents() int { return len(g.numStrategies) }

// NumStrategies returns |Ai| for agent i.
func (g *Game) NumStrategies(i int) int { return g.numStrategies[i] }

// StrategyCounts returns a copy of the per-agent strategy set sizes (the
// paper's TSi).
func (g *Game) StrategyCounts() []int {
	c := make([]int, len(g.numStrategies))
	copy(c, g.numStrategies)
	return c
}

// NumProfiles returns |A| = ∏|Ai|.
func (g *Game) NumProfiles() int { return g.numProfiles }

// ValidProfile reports whether p selects an in-range strategy for every
// agent. It is the paper's isStrat(n, TSi, Si) predicate.
func (g *Game) ValidProfile(p Profile) bool {
	if len(p) != len(g.numStrategies) {
		return false
	}
	for i, s := range p {
		if s < 0 || s >= g.numStrategies[i] {
			return false
		}
	}
	return true
}

// index converts a profile to its dense payoff index (mixed radix).
func (g *Game) index(p Profile) int {
	idx := 0
	for i, s := range p {
		idx = idx*g.numStrategies[i] + s
	}
	return idx
}

// profileAt is the inverse of index.
func (g *Game) profileAt(idx int) Profile {
	p := make(Profile, len(g.numStrategies))
	for i := len(g.numStrategies) - 1; i >= 0; i-- {
		k := g.numStrategies[i]
		p[i] = idx % k
		idx /= k
	}
	return p
}

// Payoff returns agent i's utility ui(p) as a fresh rational. It panics on an
// invalid profile, mirroring that u is only defined on A.
func (g *Game) Payoff(i int, p Profile) *big.Rat {
	if i < 0 || i >= g.NumAgents() {
		panic(fmt.Sprintf("game: agent %d out of range", i))
	}
	if !g.ValidProfile(p) {
		panic(fmt.Sprintf("game: invalid profile %v", p))
	}
	return numeric.Copy(g.payoffs[i][g.index(p)])
}

// SetPayoff sets agent i's utility for profile p.
func (g *Game) SetPayoff(i int, p Profile, v *big.Rat) {
	if i < 0 || i >= g.NumAgents() {
		panic(fmt.Sprintf("game: agent %d out of range", i))
	}
	if !g.ValidProfile(p) {
		panic(fmt.Sprintf("game: invalid profile %v", p))
	}
	g.payoffs[i][g.index(p)].Set(v)
}

// SetPayoffs sets every agent's utility for profile p at once.
func (g *Game) SetPayoffs(p Profile, vs ...*big.Rat) {
	if len(vs) != g.NumAgents() {
		panic(fmt.Sprintf("game: %d payoffs for %d agents", len(vs), g.NumAgents()))
	}
	for i, v := range vs {
		g.SetPayoff(i, p, v)
	}
}

// ForEachProfile calls fn for every profile in lexicographic order until fn
// returns false. The profile passed to fn is reused across calls; clone it to
// retain it.
func (g *Game) ForEachProfile(fn func(p Profile) bool) {
	p := make(Profile, g.NumAgents())
	for idx := 0; idx < g.numProfiles; idx++ {
		copy(p, g.profileAt(idx))
		if !fn(p) {
			return
		}
	}
}

// Profiles returns every profile of the game in lexicographic order. The
// slice is freshly allocated; with large games prefer ForEachProfile.
func (g *Game) Profiles() []Profile {
	out := make([]Profile, 0, g.numProfiles)
	g.ForEachProfile(func(p Profile) bool {
		out = append(out, p.Clone())
		return true
	})
	return out
}
