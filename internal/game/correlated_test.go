package game

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestNewCorrelatedDistributionValidation(t *testing.T) {
	g := BattleOfSexes()
	if _, err := NewCorrelatedDistribution(g, map[string]*numeric.Rat{
		"[0 0]": numeric.R(1, 2),
	}); err == nil {
		t.Error("sub-stochastic distribution accepted")
	}
	if _, err := NewCorrelatedDistribution(g, map[string]*numeric.Rat{
		"[0 0]": numeric.R(3, 2),
		"[1 1]": numeric.Neg(numeric.R(1, 2)),
	}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewCorrelatedDistribution(g, map[string]*numeric.Rat{
		"[7 7]": numeric.One(),
	}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestBoSFairCorrelatedEquilibrium(t *testing.T) {
	g := BattleOfSexes()
	// The classic device: flip a fair coin between the two pure equilibria.
	d, err := NewCorrelatedDistribution(g, map[string]*numeric.Rat{
		"[0 0]": numeric.R(1, 2),
		"[1 1]": numeric.R(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCorrelatedEquilibrium(d) {
		t.Fatal("the coin-flip device should be a correlated equilibrium")
	}
	// Each agent expects (2+1)/2 = 3/2.
	for i := 0; i < 2; i++ {
		if got := g.ExpectedPayoffCorrelated(i, d); got.RatString() != "3/2" {
			t.Errorf("agent %d value = %s, want 3/2", i, got.RatString())
		}
	}
	if got := d.Prob(g, Profile{0, 0}); got.RatString() != "1/2" {
		t.Errorf("Prob = %s", got.RatString())
	}
}

func TestNonEquilibriumDistributionRejected(t *testing.T) {
	g := PrisonersDilemma()
	// All mass on (Cooperate, Cooperate): each agent wants to defect.
	d, err := NewCorrelatedDistribution(g, map[string]*numeric.Rat{
		"[0 0]": numeric.One(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsCorrelatedEquilibrium(d) {
		t.Fatal("(C, C) point mass accepted as correlated equilibrium")
	}
}

func TestSolveCorrelatedEquilibriumBoS(t *testing.T) {
	g := BattleOfSexes()
	d, err := g.SolveCorrelatedEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCorrelatedEquilibrium(d) {
		t.Fatal("solver returned a non-equilibrium")
	}
	// Max social welfare in BoS is 3 (either pure equilibrium); the optimal
	// correlated equilibrium achieves exactly 3.
	welfare := numeric.Add(g.ExpectedPayoffCorrelated(0, d), g.ExpectedPayoffCorrelated(1, d))
	if welfare.RatString() != "3" {
		t.Errorf("welfare = %s, want 3", welfare.RatString())
	}
}

func TestSolveCorrelatedEquilibriumChicken(t *testing.T) {
	// Chicken: the canonical game where correlation beats every Nash
	// equilibrium's welfare mix.
	//        Swerve  Dare
	// Swerve  (6,6)  (2,7)
	// Dare    (7,2)  (0,0)
	g := NewBimatrix("chicken",
		[][]int64{{6, 2}, {7, 0}},
		[][]int64{{6, 7}, {2, 0}},
	)
	d, err := g.SolveCorrelatedEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCorrelatedEquilibrium(d) {
		t.Fatal("solver returned a non-equilibrium")
	}
	welfare := numeric.Add(g.ExpectedPayoffCorrelated(0, d), g.ExpectedPayoffCorrelated(1, d))
	// Pure equilibria give welfare 9; the mixed Nash gives less. The optimal
	// correlated equilibrium mixes in (Swerve, Swerve) and beats 9.
	if !numeric.Gt(welfare, numeric.I(9)) {
		t.Errorf("correlated welfare = %s, want > 9 (the Nash ceiling)", welfare.RatString())
	}
	// (Dare, Dare) must get zero mass: it is never obedient.
	if d.Prob(g, Profile{1, 1}).Sign() != 0 {
		t.Error("mass on (Dare, Dare)")
	}
}

// Property: every pure Nash equilibrium, as a point mass, is a correlated
// equilibrium; and the solver's optimum always verifies.
func TestNashPointMassIsCorrelatedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 60; trial++ {
		g := RandomGame("r", []int{2, 3}, 5, rng.Int63n)
		for _, eq := range g.AllNash() {
			d, err := NewCorrelatedDistribution(g, map[string]*numeric.Rat{
				eq.String(): numeric.One(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsCorrelatedEquilibrium(d) {
				t.Fatalf("trial %d: Nash point mass %v rejected", trial, eq)
			}
		}
		d, err := g.SolveCorrelatedEquilibrium()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !g.IsCorrelatedEquilibrium(d) {
			t.Fatalf("trial %d: solver output rejected", trial)
		}
	}
}
