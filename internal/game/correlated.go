package game

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// Correlated equilibria (Aumann [1], which the paper contrasts with the
// rationality authority: a correlation device is TRUSTED, the authority is
// not). A correlated equilibrium is a distribution over pure profiles such
// that, after being told its recommended strategy, no agent gains by
// deviating. Verifying one is a set of linear inequality checks —
// polynomial in the profile count — and finding one is a linear program,
// both of which exercise this repository's exact LP machinery.

// CorrelatedDistribution maps profile index (the game's lexicographic
// order) to probability. Use NewCorrelatedDistribution to build one from
// explicit (profile, probability) pairs.
type CorrelatedDistribution struct {
	probs []*big.Rat // by profile index
}

// NewCorrelatedDistribution builds a distribution; unspecified profiles get
// probability zero. It validates stochasticity.
func NewCorrelatedDistribution(g *Game, entries map[string]*big.Rat) (*CorrelatedDistribution, error) {
	d := &CorrelatedDistribution{probs: make([]*big.Rat, g.NumProfiles())}
	for i := range d.probs {
		d.probs[i] = new(big.Rat)
	}
	remaining := len(entries)
	g.ForEachProfile(func(p Profile) bool {
		if v, ok := entries[p.String()]; ok {
			d.probs[g.index(p)].Set(v)
			remaining--
		}
		return true
	})
	if remaining != 0 {
		return nil, fmt.Errorf("game: %d distribution entries name profiles outside the game", remaining)
	}
	total := new(big.Rat)
	for _, v := range d.probs {
		if v.Sign() < 0 {
			return nil, fmt.Errorf("game: negative probability in correlated distribution")
		}
		total.Add(total, v)
	}
	if total.Cmp(numeric.One()) != 0 {
		return nil, fmt.Errorf("game: correlated distribution sums to %s, want 1", total.RatString())
	}
	return d, nil
}

// Prob returns the probability of profile p.
func (d *CorrelatedDistribution) Prob(g *Game, p Profile) *big.Rat {
	if !g.ValidProfile(p) {
		panic("game: Prob on invalid profile")
	}
	return numeric.Copy(d.probs[g.index(p)])
}

// IsCorrelatedEquilibrium checks Aumann's obedience constraints exactly:
// for every agent i and every pair of strategies (r, t),
//
//	Σ_{p : p[i]=r} π(p)·(ui(p) − ui(p with i→t)) >= 0,
//
// i.e. an agent recommended r never gains in expectation by playing t
// instead.
func (g *Game) IsCorrelatedEquilibrium(d *CorrelatedDistribution) bool {
	if d == nil || len(d.probs) != g.NumProfiles() {
		return false
	}
	for i := 0; i < g.NumAgents(); i++ {
		for r := 0; r < g.NumStrategies(i); r++ {
			for t := 0; t < g.NumStrategies(i); t++ {
				if r == t {
					continue
				}
				gain := new(big.Rat)
				g.ForEachProfile(func(p Profile) bool {
					if p[i] != r {
						return true
					}
					w := d.probs[g.index(p)]
					if w.Sign() == 0 {
						return true
					}
					diff := numeric.Sub(g.Payoff(i, p), g.Payoff(i, p.Change(i, t)))
					gain.Add(gain, numeric.Mul(w, diff))
					return true
				})
				if gain.Sign() < 0 {
					return false
				}
			}
		}
	}
	return true
}

// ExpectedPayoffCorrelated returns agent i's expected utility under the
// distribution.
func (g *Game) ExpectedPayoffCorrelated(i int, d *CorrelatedDistribution) *big.Rat {
	total := new(big.Rat)
	g.ForEachProfile(func(p Profile) bool {
		w := d.probs[g.index(p)]
		if w.Sign() != 0 {
			total.Add(total, numeric.Mul(w, g.Payoff(i, p)))
		}
		return true
	})
	return total
}

// SolveCorrelatedEquilibrium finds the correlated equilibrium maximizing
// utilitarian social welfare (the sum of all agents' expected payoffs) by
// one exact LP over the profile probabilities. Unlike Nash equilibria,
// this is polynomial in the profile count — the classic tractability gap
// correlation buys.
func (g *Game) SolveCorrelatedEquilibrium() (*CorrelatedDistribution, error) {
	nProfiles := g.NumProfiles()
	lp := &numeric.LP{NumVars: nProfiles, Objective: numeric.NewVec(nProfiles)}

	// Objective: social welfare.
	idx := 0
	g.ForEachProfile(func(p Profile) bool {
		welfare := new(big.Rat)
		for i := 0; i < g.NumAgents(); i++ {
			welfare.Add(welfare, g.Payoff(i, p))
		}
		lp.Objective.SetAt(idx, welfare)
		idx++
		return true
	})

	// Obedience constraints.
	for i := 0; i < g.NumAgents(); i++ {
		for r := 0; r < g.NumStrategies(i); r++ {
			for t := 0; t < g.NumStrategies(i); t++ {
				if r == t {
					continue
				}
				row := numeric.NewVec(nProfiles)
				col := 0
				g.ForEachProfile(func(p Profile) bool {
					if p[i] == r {
						row.SetAt(col, numeric.Sub(g.Payoff(i, p), g.Payoff(i, p.Change(i, t))))
					}
					col++
					return true
				})
				lp.AddGE(row, numeric.Zero())
			}
		}
	}

	// Normalization.
	ones := numeric.NewVec(nProfiles)
	for j := 0; j < nProfiles; j++ {
		ones.SetAt(j, numeric.One())
	}
	lp.AddEQ(ones, numeric.One())

	res, err := numeric.SolveLP(lp)
	if err != nil {
		return nil, err
	}
	if res.Status != numeric.Optimal {
		// Cannot happen: every Nash equilibrium (which exists in mixed
		// strategies) induces a feasible correlated distribution, and the
		// simplex over a probability simplex is bounded.
		return nil, fmt.Errorf("game: correlated LP status %v", res.Status)
	}
	d := &CorrelatedDistribution{probs: make([]*big.Rat, nProfiles)}
	for j := 0; j < nProfiles; j++ {
		d.probs[j] = res.X.At(j)
	}
	return d, nil
}
