package game

import (
	"math/big"

	"rationality/internal/numeric"
)

// This file provides a small catalog of classic games used throughout the
// repository's tests, examples, and benchmarks.

// NewBimatrix builds a 2-agent game from integer payoff matrices a (row
// agent) and b (column agent) of equal shape.
func NewBimatrix(name string, a, b [][]int64) *Game {
	if len(a) == 0 || len(a) != len(b) || len(a[0]) != len(b[0]) {
		panic("game: bimatrix payoff shape mismatch")
	}
	g := MustNew(name, []int{len(a), len(a[0])})
	for i := range a {
		for j := range a[i] {
			p := Profile{i, j}
			g.SetPayoff(0, p, numeric.I(a[i][j]))
			g.SetPayoff(1, p, numeric.I(b[i][j]))
		}
	}
	return g
}

// PrisonersDilemma returns the classic Prisoner's Dilemma. Its unique pure
// Nash equilibrium is (Defect, Defect) = profile [1 1].
func PrisonersDilemma() *Game {
	return NewBimatrix("prisoners-dilemma",
		[][]int64{{3, 0}, {5, 1}},
		[][]int64{{3, 5}, {0, 1}},
	)
}

// MatchingPennies returns Matching Pennies, which has no pure Nash
// equilibrium (its unique equilibrium is mixed at (1/2, 1/2)).
func MatchingPennies() *Game {
	return NewBimatrix("matching-pennies",
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
}

// BattleOfSexes returns Battle of the Sexes with two pure equilibria,
// [0 0] and [1 1], which are ≤u-incomparable.
func BattleOfSexes() *Game {
	return NewBimatrix("battle-of-the-sexes",
		[][]int64{{2, 0}, {0, 1}},
		[][]int64{{1, 0}, {0, 2}},
	)
}

// Coordination returns a pure coordination game with two equilibria where
// [1 1] strictly ≥u-dominates [0 0]; only [1 1] is a maximal equilibrium.
func Coordination() *Game {
	return NewBimatrix("coordination",
		[][]int64{{1, 0}, {0, 2}},
		[][]int64{{1, 0}, {0, 2}},
	)
}

// Fig5Game returns the bimatrix game of the paper's Fig. 5:
//
//	     C     D
//	A  1,1   1,1
//	B  0,1   2,0
//
// Used by Remark 2 to show that P2 does not reveal the column agent's
// equilibrium: with S1 = {A}, any (qC, qD) with qC + qD = 1, qC <= 1/2 is a
// Nash equilibrium with payoffs λ1 = λ2 = 1.
func Fig5Game() *Game {
	return NewBimatrix("fig5",
		[][]int64{{1, 1}, {0, 2}},
		[][]int64{{1, 1}, {1, 0}},
	)
}

// ThreeAgentMajority returns a 3-agent, 2-strategy majority coordination
// game: each agent gains 1 when it matches the majority choice, else 0.
// Both unanimous profiles are equilibria.
func ThreeAgentMajority() *Game {
	u := func(agent int, p Profile) *big.Rat {
		count := 0
		for _, s := range p {
			if s == p[agent] {
				count++
			}
		}
		if count >= 2 {
			return numeric.One()
		}
		return numeric.Zero()
	}
	g, err := FromFunc("majority-3", []int{2, 2, 2}, u)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomGame returns a game with the given strategy counts and payoffs drawn
// uniformly from {0, 1, ..., maxPayoff} by the supplied source. It is used by
// property tests and benchmarks; determinism comes from the caller's seed.
func RandomGame(name string, numStrategies []int, maxPayoff int64, next func(n int64) int64) *Game {
	u := func(agent int, p Profile) *big.Rat {
		return numeric.I(next(maxPayoff + 1))
	}
	g, err := FromFunc(name, numStrategies, u)
	if err != nil {
		panic(err)
	}
	return g
}
