package game

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("empty", nil); err == nil {
		t.Error("zero agents accepted")
	}
	if _, err := New("bad", []int{2, 0}); err == nil {
		t.Error("zero strategies accepted")
	}
	if _, err := New("huge", []int{1 << 15, 1 << 15}); err == nil {
		t.Error("oversized profile space accepted")
	}
}

func TestGameShape(t *testing.T) {
	g := MustNew("g", []int{2, 3, 4})
	if g.NumAgents() != 3 {
		t.Errorf("NumAgents = %d", g.NumAgents())
	}
	if g.NumProfiles() != 24 {
		t.Errorf("NumProfiles = %d", g.NumProfiles())
	}
	if g.NumStrategies(1) != 3 {
		t.Errorf("NumStrategies(1) = %d", g.NumStrategies(1))
	}
	counts := g.StrategyCounts()
	counts[0] = 99
	if g.NumStrategies(0) != 2 {
		t.Error("StrategyCounts leaked internal state")
	}
	if g.Name() != "g" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestPayoffRoundTrip(t *testing.T) {
	g := MustNew("g", []int{2, 2})
	p := Profile{1, 0}
	g.SetPayoff(0, p, numeric.R(7, 3))
	if got := g.Payoff(0, p); got.RatString() != "7/3" {
		t.Errorf("Payoff = %s", got.RatString())
	}
	// Unset payoffs default to zero.
	if got := g.Payoff(1, Profile{0, 0}); got.Sign() != 0 {
		t.Errorf("default payoff = %s", got.RatString())
	}
}

func TestPayoffCopies(t *testing.T) {
	g := MustNew("g", []int{2, 2})
	v := numeric.I(5)
	p := Profile{0, 0}
	g.SetPayoff(0, p, v)
	v.SetInt64(0)
	if g.Payoff(0, p).RatString() != "5" {
		t.Error("SetPayoff aliased its argument")
	}
	got := g.Payoff(0, p)
	got.SetInt64(0)
	if g.Payoff(0, p).RatString() != "5" {
		t.Error("Payoff leaked internal state")
	}
}

func TestSetPayoffs(t *testing.T) {
	g := MustNew("g", []int{2, 2})
	g.SetPayoffs(Profile{0, 1}, numeric.I(3), numeric.I(4))
	if g.Payoff(0, Profile{0, 1}).RatString() != "3" || g.Payoff(1, Profile{0, 1}).RatString() != "4" {
		t.Error("SetPayoffs wrote wrong values")
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	g := MustNew("g", []int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Payoff on invalid profile did not panic")
		}
	}()
	g.Payoff(0, Profile{0, 5})
}

func TestValidProfile(t *testing.T) {
	g := MustNew("g", []int{2, 3})
	cases := []struct {
		p    Profile
		want bool
	}{
		{Profile{0, 0}, true},
		{Profile{1, 2}, true},
		{Profile{2, 0}, false},
		{Profile{0, 3}, false},
		{Profile{-1, 0}, false},
		{Profile{0}, false},
		{Profile{0, 0, 0}, false},
	}
	for _, c := range cases {
		if got := g.ValidProfile(c.p); got != c.want {
			t.Errorf("ValidProfile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestProfilesEnumeration(t *testing.T) {
	g := MustNew("g", []int{2, 3})
	ps := g.Profiles()
	if len(ps) != 6 {
		t.Fatalf("len(Profiles) = %d", len(ps))
	}
	if !ps[0].Equal(Profile{0, 0}) || !ps[5].Equal(Profile{1, 2}) {
		t.Errorf("unexpected order: first=%v last=%v", ps[0], ps[5])
	}
	// All distinct.
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.String()] {
			t.Fatalf("duplicate profile %v", p)
		}
		seen[p.String()] = true
	}
}

func TestForEachProfileEarlyStop(t *testing.T) {
	g := MustNew("g", []int{2, 2})
	count := 0
	g.ForEachProfile(func(p Profile) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("visited %d profiles, want 2", count)
	}
}

func TestProfileChange(t *testing.T) {
	p := Profile{0, 1, 2}
	q := p.Change(1, 5)
	if !q.Equal(Profile{0, 5, 2}) {
		t.Errorf("Change = %v", q)
	}
	if !p.Equal(Profile{0, 1, 2}) {
		t.Error("Change mutated the receiver")
	}
}

func TestProfileChangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Change with bad agent did not panic")
		}
	}()
	Profile{0}.Change(3, 0)
}

func TestProfileEqual(t *testing.T) {
	if !(Profile{1, 2}).Equal(Profile{1, 2}) {
		t.Error("equal profiles reported unequal")
	}
	if (Profile{1, 2}).Equal(Profile{1, 3}) || (Profile{1}).Equal(Profile{1, 2}) {
		t.Error("unequal profiles reported equal")
	}
}

func TestProfileString(t *testing.T) {
	if got := (Profile{1, 0, 2}).String(); got != "[1 0 2]" {
		t.Errorf("String = %q", got)
	}
}

func TestFromFunc(t *testing.T) {
	g, err := FromFunc("sum", []int{2, 2}, func(agent int, p Profile) *numeric.Rat {
		return numeric.I(int64(p[0] + p[1] + agent))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Payoff(1, Profile{1, 1}); got.RatString() != "3" {
		t.Errorf("payoff = %s", got.RatString())
	}
}

func TestRandomGameDeterministic(t *testing.T) {
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	g1 := RandomGame("r", []int{2, 2}, 10, r1.Int63n)
	g2 := RandomGame("r", []int{2, 2}, 10, r2.Int63n)
	for _, p := range g1.Profiles() {
		for i := 0; i < 2; i++ {
			if !numeric.Eq(g1.Payoff(i, p), g2.Payoff(i, p)) {
				t.Fatal("same seed produced different games")
			}
		}
	}
}
