package game

import (
	"testing"

	"rationality/internal/numeric"
)

func uniformMixed(g *Game) MixedProfile {
	mp := make(MixedProfile, g.NumAgents())
	for i := range mp {
		k := g.NumStrategies(i)
		v := numeric.NewVec(k)
		for s := 0; s < k; s++ {
			v.SetAt(s, numeric.R(1, int64(k)))
		}
		mp[i] = v
	}
	return mp
}

func TestValidMixed(t *testing.T) {
	g := MatchingPennies()
	if !g.ValidMixed(uniformMixed(g)) {
		t.Error("uniform profile should be valid")
	}
	if g.ValidMixed(nil) {
		t.Error("nil profile accepted")
	}
	if g.ValidMixed(MixedProfile{numeric.VecOfInts(1, 0)}) {
		t.Error("wrong agent count accepted")
	}
	bad := uniformMixed(g)
	bad[0] = numeric.VecOfInts(1, 1) // sums to 2
	if g.ValidMixed(bad) {
		t.Error("non-stochastic vector accepted")
	}
}

func TestPureAsMixed(t *testing.T) {
	g := PrisonersDilemma()
	mp := g.PureAsMixed(Profile{1, 0})
	if !mp[0].Equal(numeric.VecOfInts(0, 1)) || !mp[1].Equal(numeric.VecOfInts(1, 0)) {
		t.Errorf("PureAsMixed = (%s, %s)", mp[0], mp[1])
	}
}

func TestExpectedPayoffMatchesPure(t *testing.T) {
	g := PrisonersDilemma()
	for _, p := range g.Profiles() {
		mp := g.PureAsMixed(p)
		for i := 0; i < g.NumAgents(); i++ {
			if !numeric.Eq(g.ExpectedPayoff(i, mp), g.Payoff(i, p)) {
				t.Fatalf("expected payoff of degenerate mix differs at %v agent %d", p, i)
			}
		}
	}
}

func TestExpectedPayoffUniformMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	mp := uniformMixed(g)
	for i := 0; i < 2; i++ {
		if got := g.ExpectedPayoff(i, mp); got.Sign() != 0 {
			t.Errorf("agent %d expected payoff = %s, want 0", i, got.RatString())
		}
	}
}

func TestIsMixedNashMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	if !g.IsMixedNash(uniformMixed(g)) {
		t.Error("uniform profile is the MP equilibrium")
	}
	if g.IsMixedNash(g.PureAsMixed(Profile{0, 0})) {
		t.Error("pure profile is not an MP equilibrium")
	}
}

func TestIsMixedNashAgreesWithPure(t *testing.T) {
	for _, g := range []*Game{PrisonersDilemma(), BattleOfSexes(), Coordination(), Fig5Game(), ThreeAgentMajority()} {
		g.ForEachProfile(func(p Profile) bool {
			want := g.IsNash(p)
			if got := g.IsMixedNash(g.PureAsMixed(p)); got != want {
				t.Errorf("%s: IsMixedNash(pure %v) = %v, IsNash = %v", g.Name(), p, got, want)
			}
			return true
		})
	}
}

func TestExpectedPayoffPureDeviation(t *testing.T) {
	g := MatchingPennies()
	mp := uniformMixed(g)
	// Against a uniform opponent every deviation still yields 0.
	for si := 0; si < 2; si++ {
		if got := g.ExpectedPayoffPureDeviation(0, si, mp); got.Sign() != 0 {
			t.Errorf("deviation to %d = %s, want 0", si, got.RatString())
		}
	}
	// Against pure heads, matching (row plays heads) yields +1.
	pure := g.PureAsMixed(Profile{0, 0})
	if got := g.ExpectedPayoffPureDeviation(0, 0, pure); got.RatString() != "1" {
		t.Errorf("deviation payoff = %s, want 1", got.RatString())
	}
}

func TestThreeAgentMixedEquilibrium(t *testing.T) {
	g := ThreeAgentMajority()
	// Unanimity as a degenerate mixed profile is an equilibrium.
	if !g.IsMixedNash(g.PureAsMixed(Profile{0, 0, 0})) {
		t.Error("unanimous pure profile should be a mixed equilibrium")
	}
	// The uniform profile is also an equilibrium of majority-matching by
	// symmetry: every strategy yields the same expected payoff.
	if !g.IsMixedNash(uniformMixed(g)) {
		t.Error("uniform profile should be an equilibrium by symmetry")
	}
}

func TestExpectedPayoffPanicsOnInvalid(t *testing.T) {
	g := MatchingPennies()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid mixed profile")
		}
	}()
	g.ExpectedPayoff(0, MixedProfile{numeric.VecOfInts(1)})
}
