package game

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestPrisonersDilemmaNash(t *testing.T) {
	g := PrisonersDilemma()
	if !g.IsNash(Profile{1, 1}) {
		t.Error("(Defect, Defect) should be a Nash equilibrium")
	}
	for _, p := range []Profile{{0, 0}, {0, 1}, {1, 0}} {
		if g.IsNash(p) {
			t.Errorf("%v should not be an equilibrium", p)
		}
	}
	all := g.AllNash()
	if len(all) != 1 || !all[0].Equal(Profile{1, 1}) {
		t.Errorf("AllNash = %v", all)
	}
}

func TestMatchingPenniesHasNoPNE(t *testing.T) {
	if got := MatchingPennies().AllNash(); len(got) != 0 {
		t.Errorf("Matching Pennies has PNE %v", got)
	}
}

func TestBattleOfSexesEquilibria(t *testing.T) {
	g := BattleOfSexes()
	all := g.AllNash()
	if len(all) != 2 {
		t.Fatalf("AllNash = %v, want 2 equilibria", all)
	}
	if !all[0].Equal(Profile{0, 0}) || !all[1].Equal(Profile{1, 1}) {
		t.Errorf("AllNash = %v", all)
	}
	// The two equilibria are incomparable, so both are maximal.
	if !g.Incomparable(all[0], all[1]) {
		t.Error("BoS equilibria should be incomparable")
	}
	if !g.IsMaxNash(all[0]) || !g.IsMaxNash(all[1]) {
		t.Error("both BoS equilibria should be maximal")
	}
	if !g.IsMinNash(all[0]) || !g.IsMinNash(all[1]) {
		t.Error("both BoS equilibria should be minimal")
	}
}

func TestCoordinationMaximality(t *testing.T) {
	g := Coordination()
	if !g.IsNash(Profile{0, 0}) || !g.IsNash(Profile{1, 1}) {
		t.Fatal("both diagonal profiles should be equilibria")
	}
	if g.IsMaxNash(Profile{0, 0}) {
		t.Error("[0 0] is dominated by [1 1]; not maximal")
	}
	if !g.IsMaxNash(Profile{1, 1}) {
		t.Error("[1 1] should be maximal")
	}
	if !g.IsMinNash(Profile{0, 0}) {
		t.Error("[0 0] should be minimal")
	}
	if g.IsMinNash(Profile{1, 1}) {
		t.Error("[1 1] dominates [0 0]; not minimal")
	}
}

func TestFig5GameEquilibrium(t *testing.T) {
	g := Fig5Game()
	// (A, C) = [0 0] is a pure equilibrium with payoffs (1, 1).
	if !g.IsNash(Profile{0, 0}) {
		t.Error("(A, C) should be an equilibrium")
	}
	if got := g.Payoff(0, Profile{0, 0}); got.RatString() != "1" {
		t.Errorf("λ1 = %s, want 1", got.RatString())
	}
	if got := g.Payoff(1, Profile{0, 0}); got.RatString() != "1" {
		t.Errorf("λ2 = %s, want 1", got.RatString())
	}
	// (B, D) is not: the column agent would deviate to C (payoff 1 > 0).
	if g.IsNash(Profile{1, 1}) {
		t.Error("(B, D) should not be an equilibrium")
	}
}

func TestThreeAgentMajority(t *testing.T) {
	g := ThreeAgentMajority()
	if !g.IsNash(Profile{0, 0, 0}) || !g.IsNash(Profile{1, 1, 1}) {
		t.Error("unanimous profiles should be equilibria")
	}
	// 2-vs-1 splits: the minority agent cannot gain by switching (it would
	// join the majority and gain), so e.g. [0 0 1] is NOT an equilibrium.
	if g.IsNash(Profile{0, 0, 1}) {
		t.Error("[0 0 1] should not be an equilibrium")
	}
}

func TestFindDeviationWitness(t *testing.T) {
	g := PrisonersDilemma()
	dev, ok := g.FindDeviation(Profile{0, 0})
	if !ok {
		t.Fatal("(C, C) must have a profitable deviation")
	}
	// The witness must actually improve the deviator's payoff.
	p := Profile{0, 0}
	before := g.Payoff(dev.Agent, p)
	after := g.Payoff(dev.Agent, p.Change(dev.Agent, dev.Strategy))
	if !numeric.Gt(after, before) {
		t.Errorf("witness does not improve: %s -> %s", before, after)
	}

	if _, ok := g.FindDeviation(Profile{1, 1}); ok {
		t.Error("equilibrium should have no deviation")
	}
}

func TestLeU(t *testing.T) {
	g := Coordination()
	if !g.LeU(Profile{0, 0}, Profile{1, 1}) {
		t.Error("[0 0] ≤u [1 1] should hold")
	}
	if g.LeU(Profile{1, 1}, Profile{0, 0}) {
		t.Error("[1 1] ≤u [0 0] should not hold")
	}
	if !g.LeU(Profile{0, 0}, Profile{0, 0}) {
		t.Error("≤u must be reflexive")
	}
}

func TestBestResponses(t *testing.T) {
	g := PrisonersDilemma()
	// Against cooperate, defect (1) is the unique best response for the row agent.
	br := g.BestResponses(0, Profile{0, 0})
	if len(br) != 1 || br[0] != 1 {
		t.Errorf("BestResponses = %v, want [1]", br)
	}
	// In Fig. 5, against C both A and B give the row agent 1 and 0: best is A only.
	br = Fig5Game().BestResponses(0, Profile{0, 0})
	if len(br) != 1 || br[0] != 0 {
		t.Errorf("Fig5 BestResponses = %v, want [0]", br)
	}
}

func TestBestResponsesTies(t *testing.T) {
	// A game where both strategies tie.
	g := NewBimatrix("tie", [][]int64{{1, 0}, {1, 0}}, [][]int64{{0, 0}, {0, 0}})
	br := g.BestResponses(0, Profile{0, 0})
	if len(br) != 2 {
		t.Errorf("BestResponses = %v, want both", br)
	}
}

// Property: IsNash(p) agrees with the definition ∀i ∀si: ui(p) >= ui(change).
func TestIsNashMatchesDefinitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		g := RandomGame("r", []int{2, 3, 2}, 4, rng.Int63n)
		g.ForEachProfile(func(p Profile) bool {
			want := true
			for i := 0; i < g.NumAgents() && want; i++ {
				for si := 0; si < g.NumStrategies(i); si++ {
					if numeric.Gt(g.Payoff(i, p.Change(i, si)), g.Payoff(i, p)) {
						want = false
						break
					}
				}
			}
			if got := g.IsNash(p); got != want {
				t.Fatalf("trial %d: IsNash(%v) = %v, want %v", trial, p, got, want)
			}
			return true
		})
	}
}

// Property: every maximal equilibrium is an equilibrium, and if any
// equilibrium exists, at least one maximal equilibrium exists.
func TestMaxNashExistsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		g := RandomGame("r", []int{3, 3}, 5, rng.Int63n)
		all := g.AllNash()
		if len(all) == 0 {
			continue
		}
		foundMax := false
		for _, p := range all {
			if g.IsMaxNash(p) {
				foundMax = true
				if !g.IsNash(p) {
					t.Fatal("maximal equilibrium is not an equilibrium")
				}
			}
		}
		if !foundMax {
			t.Fatalf("trial %d: %d equilibria but no maximal one", trial, len(all))
		}
	}
}
