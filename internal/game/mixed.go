package game

import (
	"math/big"

	"rationality/internal/numeric"
)

// MixedProfile assigns each agent a probability distribution over its
// strategies. MixedProfile[i] must have length NumStrategies(i) and be
// stochastic for the profile to be valid.
type MixedProfile []*numeric.Vec

// ValidMixed reports whether mp has one stochastic vector of the right
// dimension per agent.
func (g *Game) ValidMixed(mp MixedProfile) bool {
	if len(mp) != g.NumAgents() {
		return false
	}
	for i, v := range mp {
		if v == nil || v.Len() != g.NumStrategies(i) || !v.IsStochastic() {
			return false
		}
	}
	return true
}

// PureAsMixed lifts a pure profile to the equivalent degenerate mixed
// profile.
func (g *Game) PureAsMixed(p Profile) MixedProfile {
	if !g.ValidProfile(p) {
		panic("game: PureAsMixed on invalid profile")
	}
	mp := make(MixedProfile, g.NumAgents())
	for i := range mp {
		v := numeric.NewVec(g.NumStrategies(i))
		v.SetAt(p[i], numeric.One())
		mp[i] = v
	}
	return mp
}

// ExpectedPayoff returns agent i's expected utility under the mixed profile:
// Σ_profiles Π_k mp[k](p[k]) · ui(p). The sum enumerates the full profile
// space, so it is exponential in the number of agents — acceptable for the
// small games this repository verifies directly; the interactive P1/P2
// protocols exist precisely to avoid this cost for 2-agent games.
func (g *Game) ExpectedPayoff(i int, mp MixedProfile) *big.Rat {
	if !g.ValidMixed(mp) {
		panic("game: ExpectedPayoff on invalid mixed profile")
	}
	return g.expectedPayoff(i, mp)
}

func (g *Game) expectedPayoff(i int, mp MixedProfile) *big.Rat {
	total := new(big.Rat)
	weight := new(big.Rat)
	g.ForEachProfile(func(p Profile) bool {
		weight.SetInt64(1)
		for k, s := range p {
			prob := mp[k].At(s)
			if prob.Sign() == 0 {
				weight.SetInt64(0)
				break
			}
			weight.Mul(weight, prob)
		}
		if weight.Sign() != 0 {
			weight.Mul(weight, g.payoffs[i][g.index(p)])
			total.Add(total, weight)
		}
		return true
	})
	return total
}

// ExpectedPayoffPureDeviation returns agent i's expected utility when it
// deviates to pure strategy si while everyone else plays mp.
func (g *Game) ExpectedPayoffPureDeviation(i, si int, mp MixedProfile) *big.Rat {
	if !g.ValidMixed(mp) {
		panic("game: ExpectedPayoffPureDeviation on invalid mixed profile")
	}
	if si < 0 || si >= g.NumStrategies(i) {
		panic("game: deviation strategy out of range")
	}
	dev := make(MixedProfile, len(mp))
	copy(dev, mp)
	pure := numeric.NewVec(g.NumStrategies(i))
	pure.SetAt(si, numeric.One())
	dev[i] = pure
	return g.expectedPayoff(i, dev)
}

// IsMixedNash reports whether mp is a mixed Nash equilibrium: no agent can
// strictly gain by deviating to any pure strategy (which, by linearity of
// expectation, covers all mixed deviations too).
func (g *Game) IsMixedNash(mp MixedProfile) bool {
	if !g.ValidMixed(mp) {
		return false
	}
	for i := 0; i < g.NumAgents(); i++ {
		base := g.expectedPayoff(i, mp)
		for si := 0; si < g.NumStrategies(i); si++ {
			if numeric.Gt(g.ExpectedPayoffPureDeviation(i, si, mp), base) {
				return false
			}
		}
	}
	return true
}
