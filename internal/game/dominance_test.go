package game

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestDominatesPrisonersDilemma(t *testing.T) {
	g := PrisonersDilemma()
	// Defect (1) strictly dominates Cooperate (0) for both agents.
	for i := 0; i < 2; i++ {
		if !g.Dominates(i, 1, 0, Strict) {
			t.Errorf("agent %d: defect should strictly dominate cooperate", i)
		}
		if g.Dominates(i, 0, 1, Strict) || g.Dominates(i, 0, 1, Weak) {
			t.Errorf("agent %d: cooperate should not dominate defect", i)
		}
	}
	// A strategy never dominates itself.
	if g.Dominates(0, 1, 1, Strict) {
		t.Error("self-domination reported")
	}
}

func TestWeakVsStrictDominance(t *testing.T) {
	// Row strategies: 0 ties 1 in column 0, beats it in column 1: weak, not
	// strict.
	g := NewBimatrix("weak",
		[][]int64{{1, 2}, {1, 1}},
		[][]int64{{0, 0}, {0, 0}},
	)
	if g.Dominates(0, 0, 1, Strict) {
		t.Error("tie should break strict dominance")
	}
	if !g.Dominates(0, 0, 1, Weak) {
		t.Error("weak dominance should hold")
	}
	// Identical payoffs: not even weak dominance (no strict improvement).
	gg := NewBimatrix("equal",
		[][]int64{{1, 1}, {1, 1}},
		[][]int64{{0, 0}, {0, 0}},
	)
	if gg.Dominates(0, 0, 1, Weak) {
		t.Error("payoff-identical strategies should not weakly dominate")
	}
}

func TestDominantStrategyAndEquilibrium(t *testing.T) {
	g := PrisonersDilemma()
	s, ok := g.DominantStrategy(0, Strict)
	if !ok || s != 1 {
		t.Fatalf("DominantStrategy = %d ok=%v, want 1", s, ok)
	}
	p, ok := g.DominantEquilibrium(Strict)
	if !ok || !p.Equal(Profile{1, 1}) {
		t.Fatalf("DominantEquilibrium = %v ok=%v", p, ok)
	}
	// A dominant-strategy equilibrium is a Nash equilibrium.
	if !g.IsNash(p) {
		t.Error("dominant equilibrium is not Nash")
	}
	// Battle of the Sexes has no dominant strategies.
	if _, ok := BattleOfSexes().DominantEquilibrium(Weak); ok {
		t.Error("BoS should have no dominant equilibrium")
	}
}

func TestEliminateDominatedPD(t *testing.T) {
	g := PrisonersDilemma()
	surviving := g.EliminateDominated()
	for i := 0; i < 2; i++ {
		if len(surviving[i]) != 1 || surviving[i][0] != 1 {
			t.Errorf("agent %d survivors = %v, want [1]", i, surviving[i])
		}
	}
}

func TestEliminateDominatedIterates(t *testing.T) {
	// Classic two-step IESDS: column's C is strictly dominated by R; after
	// removing C, row's B becomes dominated by T.
	//        L      C      R
	//	T   (3,1)  (0,0)  (1,2)
	//	B   (1,1)  (2,3)  (0,2)
	// Column: does R strictly dominate C? vs T: 2>0 ✓; vs B: 2<3 ✗. Try L vs
	// C: 1>0 ✓, 1<3 ✗. Use a cleaner textbook instance:
	//        L      R
	//	T   (1,0)  (1,1)
	//	M   (0,1)  (2,0)
	//	B   (0,0)  (0,0)   <- B strictly dominated by T
	// After removing B nothing else is strictly dominated (T vs M: 1>0 at L,
	// 1<2 at R).
	g := MustNew("iesds", []int{3, 2})
	set := func(r, c int, a, b int64) {
		g.SetPayoffs(Profile{r, c}, intRat(a), intRat(b))
	}
	set(0, 0, 1, 0)
	set(0, 1, 1, 1)
	set(1, 0, 0, 1)
	set(1, 1, 2, 0)
	set(2, 0, 0, 0)
	set(2, 1, 0, 0)
	surviving := g.EliminateDominated()
	if len(surviving[0]) != 2 || surviving[0][0] != 0 || surviving[0][1] != 1 {
		t.Errorf("row survivors = %v, want [0 1]", surviving[0])
	}
	if len(surviving[1]) != 2 {
		t.Errorf("column survivors = %v, want both", surviving[1])
	}
}

// Property: every pure Nash equilibrium survives IESDS.
func TestNashSurvivesIESDSProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 100; trial++ {
		g := RandomGame("r", []int{3, 3}, 5, rng.Int63n)
		surviving := g.EliminateDominated()
		aliveSet := make([]map[int]bool, g.NumAgents())
		for i, s := range surviving {
			aliveSet[i] = make(map[int]bool, len(s))
			for _, idx := range s {
				aliveSet[i][idx] = true
			}
		}
		for _, eq := range g.AllNash() {
			for i, s := range eq {
				if !aliveSet[i][s] {
					t.Fatalf("trial %d: equilibrium %v eliminated at agent %d", trial, eq, i)
				}
			}
		}
	}
}

// Property: a strict dominant-strategy profile, when it exists, is the
// unique pure Nash equilibrium.
func TestStrictDominantIsUniqueNashProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		g := RandomGame("r", []int{2, 2}, 6, rng.Int63n)
		p, ok := g.DominantEquilibrium(Strict)
		if !ok {
			continue
		}
		checked++
		all := g.AllNash()
		if len(all) != 1 || !all[0].Equal(p) {
			t.Fatalf("trial %d: strict dominant profile %v but equilibria %v", trial, p, all)
		}
	}
	if checked == 0 {
		t.Skip("no games with strict dominant equilibria drawn")
	}
}

// intRat is a tiny local helper to keep the payoff literals short.
func intRat(v int64) *numeric.Rat { return numeric.I(v) }
