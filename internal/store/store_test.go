package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"rationality/internal/core"
	"rationality/internal/identity"
)

func testKey(i int) identity.Hash {
	return identity.DigestBytes([]byte(strconv.Itoa(i)))
}

func testVerdict(i int) core.Verdict {
	return core.Verdict{
		Accepted: i%2 == 0,
		Format:   "test/v1",
		Reason:   fmt.Sprintf("reason-%d", i),
		Details:  map[string]string{"i": strconv.Itoa(i)},
	}
}

// waitFor polls cond until it holds or the deadline expires; the flusher
// is asynchronous, so tests observe its effects eventually.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, []Record) {
	t.Helper()
	s, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, recs
}

func TestOpenEmptyDirAndRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d records, want 0", len(recs))
	}
	const n = 10
	for i := 0; i < n; i++ {
		if !s.Append(testKey(i), testVerdict(i), nil) {
			t.Fatalf("append %d refused", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Persisted != n || st.LiveRecords != n || st.GarbageRecords != 0 {
		t.Fatalf("stats after close: %+v", st)
	}

	s2, recs2 := mustOpen(t, dir, Options{})
	if len(recs2) != n {
		t.Fatalf("recovered %d records, want %d", len(recs2), n)
	}
	if got := s2.Stats().Replayed; got != n {
		t.Fatalf("Replayed = %d, want %d", got, n)
	}
	byKey := make(map[identity.Hash]core.Verdict, n)
	for _, r := range recs2 {
		byKey[r.Key] = r.Verdict
	}
	for i := 0; i < n; i++ {
		got, ok := byKey[testKey(i)]
		if !ok {
			t.Fatalf("record %d missing after restart", i)
		}
		if !reflect.DeepEqual(got, testVerdict(i)) {
			t.Fatalf("record %d verdict = %+v, want %+v", i, got, testVerdict(i))
		}
	}
	// Records come back oldest-first: stamps strictly increase.
	for i := 1; i < len(recs2); i++ {
		if recs2[i].Stamp <= recs2[i-1].Stamp {
			t.Fatalf("records not in stamp order: %d after %d", recs2[i].Stamp, recs2[i-1].Stamp)
		}
	}
}

func TestLatestWinsAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	s, _ := mustOpen(t, dir, Options{})
	s.Append(key, testVerdict(0), nil)
	s.Append(key, testVerdict(2), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LiveRecords != 1 || st.GarbageRecords != 1 {
		t.Fatalf("stats = %+v, want 1 live / 1 garbage", st)
	}

	// Second life supersedes the key again; the third must see only the
	// newest verdict, proving stamps continue across restarts.
	s2, recs := mustOpen(t, dir, Options{})
	if len(recs) != 1 || !reflect.DeepEqual(recs[0].Verdict, testVerdict(2)) {
		t.Fatalf("second life recovered %+v, want the i=2 verdict", recs)
	}
	s2.Append(key, testVerdict(4), nil)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs3 := mustOpen(t, dir, Options{})
	if len(recs3) != 1 || !reflect.DeepEqual(recs3[0].Verdict, testVerdict(4)) {
		t.Fatalf("third life recovered %+v, want the i=4 verdict", recs3)
	}
}

func TestCompactionRewritesLiveSet(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{CompactAt: 8, SyncEvery: 1})
	// Two keys, rewritten over and over: garbage accumulates fast.
	for i := 0; i < 40; i++ {
		s.Append(testKey(i%2), testVerdict(i), nil)
		// Pace the appends so the flusher sees distinct bursts and its
		// post-burst compaction check actually runs.
		waitFor(t, "append flushed", func() bool { return s.Stats().Persisted >= uint64(i+1) })
	}
	waitFor(t, "compaction", func() bool { return s.Stats().Compactions >= 1 })
	st := s.Stats()
	if st.CompactedRecords == 0 {
		t.Fatalf("compaction eliminated no records: %+v", st)
	}
	if st.LiveRecords != 2 {
		t.Fatalf("LiveRecords = %d, want 2", st.LiveRecords)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot segment missing after compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart recovers exactly the two live verdicts, newest per key.
	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after compaction, want 2", len(recs))
	}
	for _, r := range recs {
		i, _ := strconv.Atoi(r.Verdict.Details["i"])
		if i < 38 {
			t.Fatalf("recovered stale verdict i=%d; compaction must keep the newest", i)
		}
	}
}

func TestAppendAfterCloseRefused(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Append(testKey(0), testVerdict(0), nil) {
		t.Fatal("Append accepted a record after Close")
	}
}

// TestRetainShieldsHotRecordsFromRetirement: MaxLive retirement must
// prefer records the Retain hook does not vouch for — a hot verdict's
// append stamp is forever old (cache hits never re-append), so stamp
// order alone would retire exactly the records worth keeping.
func TestRetainShieldsHotRecordsFromRetirement(t *testing.T) {
	dir := t.TempDir()
	hot := map[identity.Hash]bool{testKey(0): true, testKey(1): true}
	s, _, err := Open(dir, Options{
		MaxLive:   4,
		CompactAt: 4,
		SyncEvery: 1,
		Retain:    func(k identity.Hash) bool { return hot[k] },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	// Keys 0 and 1 are the oldest appends — and the hot set. The rest is
	// a stream of newer one-off keys that forces retirement.
	const n = 20
	for i := 0; i < n; i++ {
		s.Append(testKey(i), testVerdict(i), nil)
		waitFor(t, "append flushed", func() bool { return s.Stats().Persisted >= uint64(i+1) })
	}
	waitFor(t, "retention compaction", func() bool { return s.Stats().Compactions >= 1 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs := mustOpen(t, dir, Options{})
	got := make(map[identity.Hash]bool, len(recs))
	for _, r := range recs {
		got[r.Key] = true
	}
	for k := range hot {
		if !got[k] {
			t.Fatalf("hot record retired despite Retain; survivors: %d records", len(recs))
		}
	}
}

// TestFailedCountsDeadDisk: records lost to a write failure show up in
// Failed (not Dropped, whose contract is queue overflow), and Close
// surfaces the underlying error.
func TestFailedCountsDeadDisk(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{SyncEvery: 1})
	// Kill the disk out from under the flusher: the tail handle is
	// closed, so the next write fails fatally.
	if err := s.tail.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.Append(testKey(0), testVerdict(0), nil) {
		t.Fatal("append refused while the store still looks healthy")
	}
	waitFor(t, "failure counted", func() bool { return s.Stats().Failed >= 1 })
	if st := s.Stats(); st.Dropped != 0 {
		t.Fatalf("write failure miscounted as queue drop: %+v", st)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the flusher's fatal I/O error")
	}
}

// TestMaxLiveRetiresOldest: with a retention bound, compaction retires
// the oldest live records — the store's footprint tracks the bound, not
// the whole history, and a restart recovers only the newest records.
func TestMaxLiveRetiresOldest(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{MaxLive: 4, CompactAt: 4, SyncEvery: 1})
	const n = 20 // all-distinct keys: no garbage, only live growth
	for i := 0; i < n; i++ {
		s.Append(testKey(i), testVerdict(i), nil)
		waitFor(t, "append flushed", func() bool { return s.Stats().Persisted >= uint64(i+1) })
	}
	waitFor(t, "retention compaction", func() bool { return s.Stats().Compactions >= 1 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LiveRecords > 4+4 { // bound plus at most one compaction's slack
		t.Fatalf("LiveRecords = %d, want <= 8 under MaxLive=4/CompactAt=4", st.LiveRecords)
	}
	if st.CompactedRecords == 0 {
		t.Fatalf("no records retired: %+v", st)
	}

	_, recs := mustOpen(t, dir, Options{})
	if len(recs) == 0 || len(recs) > 8 {
		t.Fatalf("recovered %d records, want a bounded newest suffix", len(recs))
	}
	// Whatever survived must be a suffix of the history: nothing older
	// than the oldest possible survivor given the bound.
	for _, r := range recs {
		i, _ := strconv.Atoi(r.Verdict.Details["i"])
		if i < n-8-4 {
			t.Fatalf("record i=%d survived retention; too old for MaxLive=4", i)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
}
