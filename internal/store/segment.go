package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rationality/internal/core"
	"rationality/internal/identity"
)

// Segment record framing. A segment file is a plain concatenation of
// records, each independently checksummed so a reader can detect exactly
// where a torn write begins:
//
//	offset  size  field
//	------  ----  -----------------------------------------------
//	0       4     length  uint32 BE — byte length of the payload
//	4       4     crc     uint32 BE — CRC32C (Castagnoli) of payload
//	8       len   payload:
//	          32     key    identity.Hash (raw SHA-256 content address)
//	          8      stamp  uint64 BE (monotonic append sequence)
//	          len-40 verdict (JSON-encoded core.Verdict)
//
// The CRC covers the whole payload (key, stamp and verdict), so a flipped
// bit anywhere in a record is detected; the length prefix is implicitly
// protected because a corrupted length makes the CRC check of the
// mis-framed payload fail (except with probability 2^-32).

// crcTable is the Castagnoli polynomial table; CRC32C has hardware support
// on amd64/arm64, so framing costs no measurable CPU next to the syscall.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	// headerLen is the fixed per-record frame header: length + CRC.
	headerLen = 8
	// keyLen is the raw content-address length inside the payload.
	keyLen = len(identity.Hash{})
	// stampLen is the monotonic stamp length inside the payload.
	stampLen = 8
	// minPayload is the smallest well-formed payload: a key, a stamp and
	// an empty verdict would still be longer, but the frame reader only
	// needs to bound the length field before allocating.
	minPayload = keyLen + stampLen
	// maxPayload bounds a single record. Announcements are wire messages
	// (games, advice, proofs as JSON) and verdicts are small; a length
	// beyond this is corruption, not data, and the reader must not
	// allocate gigabytes on a torn length field's say-so.
	maxPayload = 16 << 20
)

// Record is one persisted verdict: the cache key, the monotonic append
// stamp (larger = written later; recovery keeps the largest per key), and
// the verdict itself.
type Record struct {
	Key     identity.Hash
	Stamp   uint64
	Verdict core.Verdict
}

// idxEntry is one on-disk index line: the newest stamp a key holds and
// the checksum of the verdict content at that stamp. The sum lets the
// anti-entropy manifest distinguish "peer has newer content" from "peer
// merely re-stamped identical content" (compaction's warmth re-ranking
// does the latter on every pass), so stamp churn never causes a
// re-transfer.
type idxEntry struct {
	stamp uint64
	sum   uint32
}

// verdictSum is the content checksum the index and sync manifests carry:
// CRC32C over the canonical JSON encoding of the verdict — the exact
// bytes appendRecord frames, so every replica computes the same sum for
// the same verdict regardless of which one first persisted it.
func verdictSum(v *core.Verdict) uint32 {
	body, err := json.Marshal(v)
	if err != nil {
		return 0 // unencodable: writeStamped will refuse it anyway
	}
	return crc32.Checksum(body, crcTable)
}

// appendRecord encodes a record onto buf and returns the extended slice
// plus the verdict's content checksum (computed here, where the verdict
// bytes already exist, so the index never pays a second marshal). The
// frame is assembled in memory first so the file write is a single
// contiguous append — the closest a userspace writer gets to atomicity.
func appendRecord(buf []byte, r *Record) ([]byte, uint32, error) {
	body, err := json.Marshal(&r.Verdict)
	if err != nil {
		return buf, 0, fmt.Errorf("store: encoding verdict: %w", err)
	}
	payloadLen := minPayload + len(body)
	if payloadLen > maxPayload {
		return buf, 0, fmt.Errorf("store: verdict of %d bytes exceeds the %d-byte record bound", len(body), maxPayload)
	}
	start := len(buf)
	buf = append(buf, make([]byte, headerLen)...)
	buf = append(buf, r.Key[:]...)
	buf = binary.BigEndian.AppendUint64(buf, r.Stamp)
	buf = append(buf, body...)
	payload := buf[start+headerLen:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf, crc32.Checksum(body, crcTable), nil
}

// errTorn reports a frame that cannot be trusted: a short read, a length
// field out of bounds, or a CRC mismatch. It marks the end of a segment's
// valid prefix rather than a fatal store error.
var errTorn = errors.New("store: torn or corrupt record")

// readRecord decodes the next record from r and returns its framed size
// in bytes. It returns io.EOF at a clean segment end, errTorn when the
// next frame is short, over-long or fails its checksum, and any other
// error verbatim (a real I/O failure).
func readRecord(r io.Reader, rec *Record) (int, error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF // clean end: no partial header
		}
		if err == io.ErrUnexpectedEOF {
			return 0, errTorn // header itself is torn
		}
		return 0, err
	}
	length := int(binary.BigEndian.Uint32(header[:4]))
	if length < minPayload || length > maxPayload {
		return 0, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errTorn // payload shorter than its header promised
		}
		return 0, err
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(header[4:8]) {
		return 0, errTorn
	}
	copy(rec.Key[:], payload[:keyLen])
	rec.Stamp = binary.BigEndian.Uint64(payload[keyLen : keyLen+stampLen])
	rec.Verdict = core.Verdict{}
	if err := json.Unmarshal(payload[minPayload:], &rec.Verdict); err != nil {
		// The CRC passed, so these bytes are what the writer wrote — a
		// writer bug, not a torn write. Treat it like corruption anyway:
		// salvage stops here rather than guessing at the next frame.
		return 0, errTorn
	}
	return headerLen + int(length), nil
}
