package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rationality/internal/core"
	"rationality/internal/identity"
)

// Segment framing. A segment file is a five-byte version header followed
// by a plain concatenation of records, each independently checksummed so
// a reader can detect exactly where a torn write begins:
//
//	offset  size  field
//	------  ----  -----------------------------------------------
//	0       4     magic   "RVLS" (rationality verdict-log segment)
//	4       1     version 4
//	then per record:
//	0       4     length  uint32 BE — byte length of the payload
//	4       4     crc     uint32 BE — CRC32C (Castagnoli) of payload
//	8       len   payload:
//	          32     key     identity.Hash (raw SHA-256 content address)
//	          8      stamp   uint64 BE (monotonic append sequence)
//	          2      olen    uint16 BE — byte length of origin
//	          4      qlen    uint32 BE — byte length of request
//	          4      clen    uint32 BE — byte length of cert
//	          olen   origin  identity.PartyID of the vouching authority
//	                         (hex Ed25519 public key; empty = unattributed)
//	          qlen   request (JSON-encoded core.VerifyRequest — the inputs
//	                         the verdict was computed from; empty = the
//	                         record predates v3 and cannot be re-audited)
//	          clen   cert    (JSON-encoded core.Certificate — the aggregate
//	                         quorum certificate vouching for the verdict;
//	                         empty = uncertified)
//	          rest   verdict (JSON-encoded core.Verdict)
//
// Version 1 segments — everything written before the federation change —
// have no header and no origin column: the payload is key, stamp, verdict.
// A reader distinguishes the formats by the magic: v1 could never start
// with "RVLS" because a record's first four bytes are a big-endian length
// far below 0x52564c53. Version 2 added the header and the origin column;
// version 3 added the request column (what lets any authority re-run the
// verification procedure for any record it holds — the audit loop's raw
// material); version 4 adds the certificate column, which makes aggregate
// quorum certificates first-class records that warm-start, compact and
// replicate exactly like the verdicts they certify. v1, v2 and v3
// segments are read transparently (missing columns come back empty) and
// upgraded to v4 the first time the store opens them; v4 is the only
// format ever written.
//
// The CRC covers the whole payload (key, stamp, origin, request, cert and
// verdict), so a flipped bit anywhere in a record is detected; the length
// prefix is implicitly protected because a corrupted length makes the CRC
// check of the mis-framed payload fail (except with probability 2^-32).

// crcTable is the Castagnoli polynomial table; CRC32C has hardware support
// on amd64/arm64, so framing costs no measurable CPU next to the syscall.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Segment format versions. segmentV1 is the legacy headerless layout (no
// origin column); segmentV2 added the header and origin; segmentV3 added
// the request column; segmentV4 — the current layout — adds the
// certificate column.
const (
	segmentV1 = 1
	segmentV2 = 2
	segmentV3 = 3
	segmentV4 = 4
)

// segmentHeader is the five-byte prefix of every written segment (and of
// every wire-framed delta): the magic plus the current version.
var segmentHeader = []byte{'R', 'V', 'L', 'S', segmentV4}

const (
	// segmentHeaderLen is the length of the per-file version header.
	segmentHeaderLen = 5
	// headerLen is the fixed per-record frame header: length + CRC.
	headerLen = 8
	// keyLen is the raw content-address length inside the payload.
	keyLen = len(identity.Hash{})
	// stampLen is the monotonic stamp length inside the payload.
	stampLen = 8
	// originLenLen is the origin length prefix inside a v2+ payload.
	originLenLen = 2
	// requestLenLen is the request length prefix inside a v3+ payload.
	requestLenLen = 4
	// certLenLen is the certificate length prefix inside a v4 payload.
	certLenLen = 4
	// minPayloadV1 / minPayloadV2 / minPayloadV3 / minPayloadV4 bound the
	// smallest well-formed payload per format version, so the frame reader
	// can reject a length field before allocating.
	minPayloadV1 = keyLen + stampLen
	minPayloadV2 = keyLen + stampLen + originLenLen
	minPayloadV3 = keyLen + stampLen + originLenLen + requestLenLen
	minPayloadV4 = keyLen + stampLen + originLenLen + requestLenLen + certLenLen
	// maxOrigin bounds the origin column. A party ID is 64 bytes of hex;
	// anything much longer is corruption, not an identity.
	maxOrigin = 256
	// maxPayload bounds a single record. Announcements are wire messages
	// (games, advice, proofs as JSON) and verdicts are small; a length
	// beyond this is corruption, not data, and the reader must not
	// allocate gigabytes on a torn length field's say-so.
	maxPayload = 16 << 20
)

// Record is one persisted verdict: the cache key, the monotonic append
// stamp (larger = written later; recovery keeps the largest per key), the
// identity of the authority that vouched for the record's entry into this
// log (the local authority for fresh verdicts, the signing peer for
// ingested ones; empty on unkeyed deployments and legacy v1 records), the
// request the verdict was computed from (JSON core.VerifyRequest; empty
// on records that predate the v3 format — those cannot be re-audited),
// the aggregate quorum certificate vouching for the verdict (JSON
// core.Certificate; empty on uncertified records and everything that
// predates the v4 format), and the verdict itself.
type Record struct {
	Key     identity.Hash
	Stamp   uint64
	Origin  identity.PartyID
	Request json.RawMessage
	Cert    []byte
	Verdict core.Verdict
}

// idxEntry is one on-disk index line: the newest stamp a key holds, the
// checksum of the verdict content at that stamp, the record's origin, and
// the verdict's polarity. The sum lets the anti-entropy manifest
// distinguish "peer has newer content" from "peer merely re-stamped
// identical content" (compaction's warmth re-ranking does the latter on
// every pass), so stamp churn never causes a re-transfer. The origin
// feeds the Provenance summary without a disk scan; the polarity lets
// Ingest refute an incoming record that contradicts a locally verified
// one without re-reading the log.
type idxEntry struct {
	stamp    uint64
	sum      uint32
	origin   identity.PartyID
	accepted bool
}

// recordSum is the content checksum the index and sync manifests carry:
// CRC32C over the canonical JSON encoding of the verdict extended with
// the certificate bytes — the exact bytes appendRecord frames, so every
// replica computes the same sum for the same content regardless of which
// one first persisted it or which authority's provenance it carries (the
// origin column is deliberately excluded: replicas converge on content,
// not on custody chains). Including the certificate means a record that
// gains a quorum certificate reads as new content to anti-entropy and
// gossip, so certificates propagate even where the bare verdict already
// converged.
func recordSum(r *Record) uint32 {
	body, err := json.Marshal(&r.Verdict)
	if err != nil {
		return 0 // unencodable: writeStamped will refuse it anyway
	}
	sum := crc32.Checksum(body, crcTable)
	if len(r.Cert) > 0 {
		sum = crc32.Update(sum, crcTable, r.Cert)
	}
	return sum
}

// appendRecord encodes a record onto buf in the v4 layout and returns the
// extended slice plus the record's content checksum (computed here, where
// the verdict bytes already exist, so the index never pays a second
// marshal). The frame is assembled in memory first so the file write is a
// single contiguous append — the closest a userspace writer gets to
// atomicity.
func appendRecord(buf []byte, r *Record) ([]byte, uint32, error) {
	body, err := json.Marshal(&r.Verdict)
	if err != nil {
		return buf, 0, fmt.Errorf("store: encoding verdict: %w", err)
	}
	if len(r.Origin) > maxOrigin {
		return buf, 0, fmt.Errorf("store: origin of %d bytes exceeds the %d-byte bound", len(r.Origin), maxOrigin)
	}
	payloadLen := minPayloadV4 + len(r.Origin) + len(r.Request) + len(r.Cert) + len(body)
	if payloadLen > maxPayload {
		return buf, 0, fmt.Errorf("store: record of %d bytes exceeds the %d-byte bound", payloadLen, maxPayload)
	}
	start := len(buf)
	buf = append(buf, make([]byte, headerLen)...)
	buf = append(buf, r.Key[:]...)
	buf = binary.BigEndian.AppendUint64(buf, r.Stamp)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Origin)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Request)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Cert)))
	buf = append(buf, r.Origin...)
	buf = append(buf, r.Request...)
	buf = append(buf, r.Cert...)
	buf = append(buf, body...)
	payload := buf[start+headerLen:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	sum := crc32.Checksum(body, crcTable)
	if len(r.Cert) > 0 {
		sum = crc32.Update(sum, crcTable, r.Cert)
	}
	return buf, sum, nil
}

// errTorn reports a frame that cannot be trusted: a short read, a length
// field out of bounds, or a CRC mismatch. It marks the end of a segment's
// valid prefix rather than a fatal store error.
var errTorn = errors.New("store: torn or corrupt record")

// errVersion reports a segment or wire blob whose header names a format
// version this code does not speak — refusing it outright beats guessing
// at an unknown layout's record boundaries.
var errVersion = errors.New("store: unsupported segment version")

// sniffVersion peeks at the reader's first bytes and consumes the segment
// header when one is present, returning the format version to read
// records with. A stream that does not start with the magic is a legacy
// v1 segment and is left unconsumed; a stream with the magic but an
// unknown version is refused.
func sniffVersion(br *bufio.Reader) (int, error) {
	head, err := br.Peek(segmentHeaderLen)
	if err != nil {
		// Shorter than a header: whatever it is (empty file, torn v1
		// record), the v1 record reader gives the right answer.
		return segmentV1, nil
	}
	if string(head[:4]) != string(segmentHeader[:4]) {
		return segmentV1, nil
	}
	if head[4] != segmentV2 && head[4] != segmentV3 && head[4] != segmentV4 {
		return 0, fmt.Errorf("%w: %d", errVersion, head[4])
	}
	br.Discard(segmentHeaderLen)
	return int(head[4]), nil
}

// readRecord decodes the next record from r using the given format
// version and returns its framed size in bytes. It returns io.EOF at a
// clean segment end, errTorn when the next frame is short, over-long or
// fails its checksum, and any other error verbatim (a real I/O failure).
func readRecord(r io.Reader, rec *Record, version int) (int, error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF // clean end: no partial header
		}
		if err == io.ErrUnexpectedEOF {
			return 0, errTorn // header itself is torn
		}
		return 0, err
	}
	minPayload := minPayloadV1
	switch {
	case version >= segmentV4:
		minPayload = minPayloadV4
	case version >= segmentV3:
		minPayload = minPayloadV3
	case version >= segmentV2:
		minPayload = minPayloadV2
	}
	length := int(binary.BigEndian.Uint32(header[:4]))
	if length < minPayload || length > maxPayload {
		return 0, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errTorn // payload shorter than its header promised
		}
		return 0, err
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(header[4:8]) {
		return 0, errTorn
	}
	copy(rec.Key[:], payload[:keyLen])
	rec.Stamp = binary.BigEndian.Uint64(payload[keyLen : keyLen+stampLen])
	body := payload[minPayloadV1:]
	rec.Origin = ""
	rec.Request = nil
	rec.Cert = nil
	switch {
	case version >= segmentV4:
		olen := int(binary.BigEndian.Uint16(payload[keyLen+stampLen : keyLen+stampLen+originLenLen]))
		qlen := int(binary.BigEndian.Uint32(payload[keyLen+stampLen+originLenLen : minPayloadV3]))
		clen := int(binary.BigEndian.Uint32(payload[minPayloadV3:minPayloadV4]))
		if olen > maxOrigin || qlen > maxPayload || clen > maxPayload ||
			minPayloadV4+olen+qlen+clen > length {
			return 0, errTorn
		}
		rec.Origin = identity.PartyID(payload[minPayloadV4 : minPayloadV4+olen])
		if qlen > 0 {
			rec.Request = json.RawMessage(payload[minPayloadV4+olen : minPayloadV4+olen+qlen])
		}
		if clen > 0 {
			rec.Cert = payload[minPayloadV4+olen+qlen : minPayloadV4+olen+qlen+clen]
		}
		body = payload[minPayloadV4+olen+qlen+clen:]
	case version >= segmentV3:
		olen := int(binary.BigEndian.Uint16(payload[keyLen+stampLen : keyLen+stampLen+originLenLen]))
		qlen := int(binary.BigEndian.Uint32(payload[keyLen+stampLen+originLenLen : minPayloadV3]))
		if olen > maxOrigin || qlen > maxPayload || minPayloadV3+olen+qlen > length {
			return 0, errTorn
		}
		rec.Origin = identity.PartyID(payload[minPayloadV3 : minPayloadV3+olen])
		if qlen > 0 {
			rec.Request = json.RawMessage(payload[minPayloadV3+olen : minPayloadV3+olen+qlen])
		}
		body = payload[minPayloadV3+olen+qlen:]
	case version >= segmentV2:
		olen := int(binary.BigEndian.Uint16(payload[keyLen+stampLen : minPayloadV2]))
		if olen > maxOrigin || minPayloadV2+olen > length {
			return 0, errTorn
		}
		rec.Origin = identity.PartyID(payload[minPayloadV2 : minPayloadV2+olen])
		body = payload[minPayloadV2+olen:]
	}
	rec.Verdict = core.Verdict{}
	if err := json.Unmarshal(body, &rec.Verdict); err != nil {
		// The CRC passed, so these bytes are what the writer wrote — a
		// writer bug, not a torn write. Treat it like corruption anyway:
		// salvage stops here rather than guessing at the next frame.
		return 0, errTorn
	}
	return headerLen + int(length), nil
}
