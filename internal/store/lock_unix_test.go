//go:build unix

package store

import "testing"

// TestOpenRefusesSecondProcessStyleOpen: two stores must never share a
// directory — the second Open fails while the first holds the flock and
// succeeds once it is released.
func TestOpenRefusesSecondProcessStyleOpen(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked store directory succeeded")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after release: %v", err)
	}
	_ = s2.Close()
}
