package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rationality/internal/identity"
)

// Segment file names inside the store directory. The snapshot holds the
// compacted live set (rewritten atomically via rename); the log is the
// append-only tail that fresh verdicts stream into.
const (
	snapshotName = "verdicts.snap"
	tailName     = "verdicts.log"
	lockName     = "store.lock"
)

// replaySegment streams records out of r, calling fn for each valid one,
// and returns the byte length of the valid prefix (version header
// included) plus the segment's format version. clean is false when the
// segment ends in a torn or corrupt frame — everything from validBytes on
// is untrustworthy, because record boundaries cannot be re-found past a
// bad length field. A non-nil error is a real I/O failure or an unknown
// segment version, not corruption.
func replaySegment(r io.Reader, fn func(*Record)) (validBytes int64, clean bool, version int, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	version, err = sniffVersion(br)
	if err != nil {
		return 0, false, 0, err
	}
	if version >= segmentV2 {
		validBytes = segmentHeaderLen
	}
	var rec Record
	for {
		n, err := readRecord(br, &rec, version)
		switch err {
		case nil:
			validBytes += int64(n)
			fn(&rec)
		case io.EOF:
			return validBytes, true, version, nil
		case errTorn:
			return validBytes, false, version, nil
		default:
			return 0, false, version, err
		}
	}
}

// recovery is what Open learned from the segments on disk.
type recovery struct {
	live     map[identity.Hash]*Record // latest record per key
	maxStamp uint64
	total    uint64 // valid records seen across snapshot + tail
	salvaged int64  // bytes truncated off a torn tail
	// upgrade is set when a non-empty legacy segment (v1 headerless, v2
	// without the request column, or v3 without the certificate column)
	// was replayed: Open then rewrites the store in the current format
	// before the flusher starts, so v4 is the only format ever appended
	// to.
	upgrade bool
}

// recoverDir replays snapshot + tail from dir, keeping the largest-stamp
// record per key, and salvages a torn tail by truncating it back to its
// longest valid prefix so subsequent appends continue from a trusted
// boundary. A torn snapshot is only read up to its valid prefix (its file
// is left alone — the next compaction rewrites it wholesale); tail records
// are newer than any snapshot loss, so replay continues regardless.
func recoverDir(dir string) (*recovery, error) {
	rec := &recovery{live: make(map[identity.Hash]*Record)}
	absorb := func(r *Record) {
		rec.total++
		if r.Stamp > rec.maxStamp {
			rec.maxStamp = r.Stamp
		}
		if old, ok := rec.live[r.Key]; ok && old.Stamp > r.Stamp {
			return // an already-seen record is newer; keep it
		}
		cp := *r
		rec.live[r.Key] = &cp
	}
	noteLegacy := func(version int, size int64) {
		if version < segmentV4 && size > 0 {
			rec.upgrade = true
		}
	}
	if err := replayFile(filepath.Join(dir, snapshotName), absorb, func(valid, size int64, version int) error {
		noteLegacy(version, size)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := replayFile(filepath.Join(dir, tailName), absorb, func(valid, size int64, version int) error {
		noteLegacy(version, size)
		if valid < size {
			rec.salvaged = size - valid
			return os.Truncate(filepath.Join(dir, tailName), valid)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rec, nil
}

// replayFile replays one segment file if it exists; after the replay,
// onDone (when non-nil) receives the valid-prefix length, the file size
// and the segment's format version, so the caller can truncate a torn
// tail or note a legacy segment for upgrade.
func replayFile(path string, fn func(*Record), onDone func(valid, size int64, version int) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if onDone != nil {
			return onDone(0, 0, segmentV4)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", filepath.Base(path), err)
	}
	valid, _, version, err := replaySegment(f, fn)
	if err != nil {
		return fmt.Errorf("store: replaying %s: %w", filepath.Base(path), err)
	}
	if onDone != nil {
		return onDone(valid, info.Size(), version)
	}
	return nil
}

// liveRecords flattens the recovered live set, ordered by stamp (oldest
// first), so cache pre-population replays verdicts in write order.
func (r *recovery) liveRecords() []Record {
	out := make([]Record, 0, len(r.live))
	for _, rec := range r.live {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out
}
