package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"rationality/internal/identity"
)

// Anti-entropy support: a quorum of verifiers converges on shared verdict
// history by exchanging manifests (key -> newest stamp) and deltas (the
// framed records one side has and the other lacks). Everything here runs
// on the store's flusher goroutine via the command channel, so the
// exported calls are safe from any goroutine yet never race the writer.

// ErrClosed is returned by the synchronous store API (Manifest, Delta,
// Ingest) after Close.
var ErrClosed = errors.New("store: closed")

// do runs fn on the flusher goroutine and waits for it to finish. After
// Close the flusher only drains its append queue and exits, so do fails
// with ErrClosed instead of blocking forever.
func (s *Store) do(fn func()) error {
	done := make(chan struct{})
	select {
	case s.cmds <- func() { fn(); close(done) }:
		// cmds is unbuffered, so a completed send means the flusher holds
		// the closure and runs it to completion before it can exit; done
		// is therefore guaranteed to close, and waiting on it alone can
		// neither hang nor misreport a command that did run as ErrClosed.
		<-done
		return nil
	case <-s.done:
		return ErrClosed
	case <-s.quit:
		return ErrClosed
	}
}

// RecordInfo is one manifest line: the newest stamp a store holds for a
// key and the checksum of the verdict content at that stamp. The sum is
// what keeps anti-entropy quiescent under stamp churn — compaction
// re-ranks retained records with fresh stamps, and without a content
// check every re-rank would look like new data to every peer, making
// converged replicas re-transfer their whole hot sets forever.
type RecordInfo struct {
	Stamp uint64
	Sum   uint32
}

// Manifest returns a snapshot of the store's on-disk index: the newest
// stamp and content sum per live key. It is the "what I have" half of an
// anti-entropy exchange — a peer answers it with the records this store
// is missing.
func (s *Store) Manifest() (map[identity.Hash]RecordInfo, error) {
	var m map[identity.Hash]RecordInfo
	err := s.do(func() {
		m = make(map[identity.Hash]RecordInfo, len(s.index))
		for k, e := range s.index {
			m[k] = RecordInfo{Stamp: e.stamp, Sum: e.sum}
		}
	})
	return m, err
}

// Delta returns this store's live records that the given manifest is
// missing — or holds both an older stamp and different content for —
// ordered oldest stamp first. A peer whose copy has an older stamp but
// the same content sum needs nothing: the stamp gap is compaction
// re-ranking, not data, and sending it would only bounce identical
// verdicts between replicas forever. The verdict bodies are read back
// off the segment files (the in-memory index holds only stamps and
// sums), so a delta costs one log scan — anti-entropy cadence, not
// hot-path cadence. The tail is synced first: a record handed to a peer
// must not be one a local crash could still lose.
func (s *Store) Delta(have map[identity.Hash]RecordInfo) ([]Record, error) {
	var out []Record
	var scanErr error
	err := s.do(func() {
		need := make(map[identity.Hash]bool)
		for key, e := range s.index {
			peer, ok := have[key]
			if !ok || (peer.Stamp < e.stamp && peer.Sum != e.sum) {
				need[key] = true
			}
		}
		if len(need) == 0 {
			return
		}
		s.syncTail()
		if s.flushErr != nil {
			scanErr = s.flushErr
			return
		}
		found := make(map[identity.Hash]Record, len(need))
		absorb := func(r *Record) {
			if need[r.Key] && r.Stamp == s.index[r.Key].stamp {
				found[r.Key] = *r // the live copy, not a superseded one
			}
		}
		if err := replayFile(filepath.Join(s.dir, snapshotName), absorb, nil); err != nil {
			scanErr = err
			return
		}
		if err := replayFile(filepath.Join(s.dir, tailName), absorb, nil); err != nil {
			scanErr = err
			return
		}
		out = make([]Record, 0, len(found))
		for _, r := range found {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	})
	if err != nil {
		return nil, err
	}
	return out, scanErr
}

// Refutation is ingest-time evidence of a lying voucher: an incoming
// record whose verdict polarity contradicts the verdict this store's own
// authority computed and vouched for locally. The record was refused —
// deterministic procedures make local execution ground truth, so
// newest-stamp-wins must not let a peer's stamp overwrite it — and the
// contradiction is returned to the owner, who charges the record's
// provenance through the trust layer.
type Refutation struct {
	// Record is the refused incoming record; its Origin names the peer
	// that vouched for it.
	Record Record
	// LocalAccepted is the polarity of the locally vouched verdict the
	// record contradicts.
	LocalAccepted bool
}

// Ingest merges records pulled from a peer into the log: per key the
// newest stamp wins, stale offers are skipped, and applied records keep
// the peer's stamp so repeated exchanges converge on identical histories.
// Under a MaxLive bound, *new* keys are declined once the live set is at
// the bound — absorbing them would only hand the next compaction more
// history to retire, an ingest-retire ping-pong that would otherwise
// repeat every sync round — while updates to keys the store already
// holds always land.
//
// One class of records is refused regardless of stamp: a record whose
// verdict polarity contradicts a verdict this store's own authority
// (Options.Origin) verified locally. Verification procedures are
// deterministic, so the local execution is ground truth and the incoming
// record is evidence of a lying voucher, not newer data. Such records
// come back as Refutations so the owner can charge the peer that vouched
// for them.
//
// It returns the records actually applied (stamp order preserved from
// the input), which the owner should install in its caches, the
// refutations, and surfaces the store's fatal write error when one is
// set: a dead disk must fail the pull loudly, not silently no-op it
// forever. The applied suffix is synced before Ingest returns — a merged
// record is durable, not parked in the flusher queue.
func (s *Store) Ingest(recs []Record) ([]Record, []Refutation, error) {
	var applied []Record
	var refuted []Refutation
	var writeErr error
	err := s.do(func() {
		for i := range recs {
			r := &recs[i]
			cur, exists := s.index[r.Key]
			if exists && s.opts.Origin != "" && cur.origin == s.opts.Origin &&
				cur.accepted != r.Verdict.Accepted {
				// Contradicts our own locally verified verdict: refuse it
				// whatever its stamp, and report the lie.
				refuted = append(refuted, Refutation{Record: *r, LocalAccepted: cur.accepted})
				continue
			}
			if exists && cur.stamp >= r.Stamp {
				continue // local copy is as new or newer: skip
			}
			if !exists && s.opts.MaxLive > 0 && s.live.Load() >= uint64(s.opts.MaxLive) {
				continue // at the retention bound: don't absorb history just to retire it
			}
			s.writeStamped(r)
			if s.flushErr == nil {
				applied = append(applied, *r)
				s.ingested.Add(1)
			}
		}
		s.syncTail()
		// A large merge piles up garbage and history just like a burst of
		// appends; hold it to the same compaction cadence.
		s.maybeCompact()
		writeErr = s.flushErr
	})
	if err != nil {
		return nil, nil, err
	}
	return applied, refuted, writeErr
}

// EncodeRecords frames records for the wire with the exact segment-file
// layout (version header, then length prefix + CRC32C per record — see
// segment.go), so a sync delta enjoys the same per-record integrity check
// as the log itself and the receiver can reject a corrupted transfer
// record-by-record. The leading header makes the blob self-describing:
// DecodeRecords on the far side knows which payload layout it is parsing
// without out-of-band agreement.
func EncodeRecords(recs []Record) ([]byte, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	buf := append([]byte(nil), segmentHeader...)
	var err error
	for i := range recs {
		if buf, _, err = appendRecord(buf, &recs[i]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeRecords parses a framed blob produced by EncodeRecords, verifying
// every record's checksum. A blob without the version header is read as
// the legacy v1 layout (a pre-federation peer's delta: records come back
// with no Origin), a v2-headed blob as the pre-audit layout (no Request
// column), and a v3-headed blob as the pre-certificate layout (no Cert
// column), so an upgraded verifier keeps pulling successfully from
// not-yet-upgraded peers during a rolling upgrade. Compatibility is
// one-directional: an older DecodeRecords cannot parse a newer header,
// so old requesters pulling from an upgraded responder fail with a
// corruption error until they upgrade too — upgrade the pullers first.
// Unlike segment recovery — which salvages the valid prefix of a torn
// tail — a short or corrupt wire delta is an error: nothing was crashed
// here, so damage means a bad peer or transport.
func DecodeRecords(data []byte) ([]Record, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	version, err := sniffVersion(br)
	if err != nil {
		return nil, fmt.Errorf("store: sync delta: %w", err)
	}
	var out []Record
	for {
		var rec Record
		if _, err := readRecord(br, &rec, version); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("store: corrupt sync delta after %d records: %w", len(out), err)
		}
		out = append(out, rec)
	}
}
