package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecords feeds arbitrary bytes to the sync-frame decoder —
// the bytes every anti-entropy and gossip exchange hands to a peer it
// does not trust. Decoding must never panic or accept garbage silently:
// whatever decodes must survive a re-encode → re-decode round trip
// unchanged.
func FuzzDecodeRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RVLS\x04"))
	f.Add([]byte("RVLS\x02\x00\x00\x00\x00"))
	f.Add([]byte("RVLS\x7f"))
	f.Add([]byte("not a sync frame at all"))
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if err != nil {
			return // rejection is the expected fate of fuzz garbage
		}
		if len(recs) == 0 {
			return // e.g. a bare header: nothing to round-trip
		}
		encoded, err := EncodeRecords(recs)
		if err != nil {
			t.Fatalf("decoded records failed to re-encode: %v", err)
		}
		back, err := DecodeRecords(encoded)
		if err != nil {
			t.Fatalf("re-encoded records failed to decode: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed the record count: %d -> %d", len(recs), len(back))
		}
		for i := range recs {
			a, b := recs[i], back[i]
			if a.Key != b.Key || a.Stamp != b.Stamp || a.Origin != b.Origin || a.Verdict.Accepted != b.Verdict.Accepted {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, a, b)
			}
			if !bytes.Equal(a.Cert, b.Cert) {
				t.Fatalf("record %d certificate changed in round trip", i)
			}
		}
	})
}
