package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"rationality/internal/identity"
)

// testRequest is a canonical request body for audit-column tests.
func testRequest(i int) []byte {
	req, _ := json.Marshal(map[string]any{"format": "test/v1", "game": json.RawMessage(strconv.Itoa(i))})
	return req
}

// appendRecordV2 frames one record in the pre-audit v2 layout (origin
// column, no request column) — exactly what a PR-5-era store wrote. It
// exists only in tests: production code writes v3 only.
func appendRecordV2(t *testing.T, buf []byte, r *Record) []byte {
	t.Helper()
	body, err := json.Marshal(&r.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 0, minPayloadV2+len(r.Origin)+len(body))
	payload = append(payload, r.Key[:]...)
	payload = binary.BigEndian.AppendUint64(payload, r.Stamp)
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(r.Origin)))
	payload = append(payload, r.Origin...)
	payload = append(payload, body...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// The request column round-trips: through the tail, through recovery,
// through compaction's snapshot rewrite, and over the wire.
func TestRequestColumnRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Origin: "aa11"})
	req := testRequest(1)
	if !s.Append(testKey(1), testVerdict(1), req) {
		t.Fatal("append refused")
	}
	if !s.Append(testKey(2), testVerdict(2), nil) {
		t.Fatal("append refused")
	}
	waitFor(t, "appends", func() bool { return s.Stats().Persisted == 2 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recs := mustOpen(t, dir, Options{Origin: "aa11"})
	byKey := map[identity.Hash]Record{}
	for _, r := range recs {
		byKey[r.Key] = r
	}
	if got := byKey[testKey(1)]; !bytes.Equal(got.Request, req) {
		t.Errorf("recovered request = %s, want %s", got.Request, req)
	}
	if got := byKey[testKey(2)]; got.Request != nil {
		t.Errorf("request-less record recovered with request %s", got.Request)
	}

	// Over the wire: a delta built from this store carries the request.
	delta, err := s2.Delta(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeRecords(delta)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRecords(blob)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range decoded {
		if r.Key == testKey(1) {
			found = true
			if !bytes.Equal(r.Request, req) {
				t.Errorf("wire request = %s, want %s", r.Request, req)
			}
		}
	}
	if !found {
		t.Fatal("delta lost the record")
	}
}

// A v2 store (origin column, no request column) upgrades on open exactly
// like v1 did: records come back with their origins and empty requests,
// the store is rewritten as v3, and new appends carry requests.
func TestOpenUpgradesV2Log(t *testing.T) {
	dir := t.TempDir()
	const peer = identity.PartyID("bb22")
	var tail []byte
	tail = append(tail, 'R', 'V', 'L', 'S', segmentV2)
	tail = appendRecordV2(t, tail, &Record{Key: testKey(0), Stamp: 1, Origin: peer, Verdict: testVerdict(0)})
	tail = appendRecordV2(t, tail, &Record{Key: testKey(1), Stamp: 2, Verdict: testVerdict(1)})
	if err := os.WriteFile(filepath.Join(dir, tailName), tail, 0o644); err != nil {
		t.Fatal(err)
	}

	s, recs, err := Open(dir, Options{Origin: "aa11"})
	if err != nil {
		t.Fatalf("v2 log must open under v3 code: %v", err)
	}
	defer s.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Request != nil {
			t.Errorf("migrated v2 record %x claims a request; nobody recorded its inputs", r.Key[:4])
		}
	}
	if recs[0].Origin != peer {
		t.Errorf("migrated record lost its origin: %q", recs[0].Origin)
	}
	// The upgrade rewrote the store: the tail now has the v3 header.
	head := make([]byte, segmentHeaderLen)
	f, err := os.Open(filepath.Join(dir, tailName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, segmentHeader) {
		t.Errorf("upgraded tail header = %v, want v3 %v", head, segmentHeader)
	}
	if s.Stats().Compactions != 1 {
		t.Errorf("upgrade should count as one compaction, got %d", s.Stats().Compactions)
	}

	// And the upgraded store keeps working with the request column.
	if !s.Append(testKey(2), testVerdict(2), testRequest(2)) {
		t.Fatal("append refused after upgrade")
	}
	waitFor(t, "post-upgrade append", func() bool { return s.Stats().Persisted >= 1 })
}

// A wire delta in the v2 layout (from a not-yet-upgraded peer) still
// decodes; the records just carry no requests.
func TestDecodeRecordsV2Compat(t *testing.T) {
	blob := []byte{'R', 'V', 'L', 'S', segmentV2}
	blob = appendRecordV2(t, blob, &Record{Key: testKey(3), Stamp: 7, Origin: "cc33", Verdict: testVerdict(3)})
	recs, err := DecodeRecords(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Origin != "cc33" || recs[0].Request != nil || recs[0].Stamp != 7 {
		t.Fatalf("v2 wire decode: %+v", recs)
	}
}

// Ingest refuses — and reports — records that contradict a verdict this
// store's own authority verified locally, regardless of stamp order.
func TestIngestRefutesContradictionOfLocalVerdict(t *testing.T) {
	dir := t.TempDir()
	const me = identity.PartyID("aa11")
	const liar = identity.PartyID("ff00")
	s, _ := mustOpen(t, dir, Options{Origin: me})

	v := testVerdict(0) // Accepted: true
	if !v.Accepted {
		t.Fatal("test premise: verdict 0 accepts")
	}
	if !s.Append(testKey(0), v, testRequest(0)) {
		t.Fatal("append refused")
	}
	waitFor(t, "local append", func() bool { return s.Stats().Persisted == 1 })

	lie := testVerdict(0)
	lie.Accepted = false
	lie.Reason = "byzantine flip"
	applied, refuted, err := s.Ingest([]Record{
		// Newer stamp + contradicting polarity: must be refused, not win.
		{Key: testKey(0), Stamp: 999, Origin: liar, Verdict: lie},
		// Same polarity, newer stamp: normal newest-wins ingestion.
		{Key: testKey(1), Stamp: 1000, Origin: liar, Verdict: testVerdict(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Key != testKey(1) {
		t.Fatalf("applied=%v, want only the honest record", applied)
	}
	if len(refuted) != 1 {
		t.Fatalf("refuted=%d, want 1", len(refuted))
	}
	r := refuted[0]
	if r.Record.Key != testKey(0) || r.Record.Origin != liar || !r.LocalAccepted {
		t.Errorf("refutation = %+v", r)
	}

	// The local record survived untouched: same stamp, same polarity.
	m, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m[testKey(0)].Stamp == 999 {
		t.Error("the lie's stamp overwrote the local record")
	}

	// A contradiction of a PEER-vouched record is NOT a refutation here:
	// this store never verified it locally, so newest-stamp-wins applies.
	flip := testVerdict(2)
	flip.Accepted = !flip.Accepted
	applied, refuted, err = s.Ingest([]Record{
		{Key: testKey(1), Stamp: 2000, Origin: "dd44", Verdict: flip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refuted) != 0 || len(applied) != 1 {
		t.Errorf("peer-vs-peer contradiction: applied=%d refuted=%d, want 1/0", len(applied), len(refuted))
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The polarity index survives restart: the same lie is refuted again
	// by the reopened store.
	s2, _ := mustOpen(t, dir, Options{Origin: me})
	_, refuted, err = s2.Ingest([]Record{{Key: testKey(0), Stamp: 3000, Origin: liar, Verdict: lie}})
	if err != nil {
		t.Fatal(err)
	}
	if len(refuted) != 1 {
		t.Errorf("restart lost the refutation index: refuted=%d", len(refuted))
	}
}
