package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rationality/internal/identity"
)

// appendRecordV1 frames one record in the legacy pre-federation layout:
// no segment header, no origin column — exactly what a v1 store wrote.
// It exists only in tests (and mirrors the fixture generator): production
// code writes v2 only.
func appendRecordV1(t *testing.T, buf []byte, r *Record) []byte {
	t.Helper()
	body, err := json.Marshal(&r.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 0, keyLen+stampLen+len(body))
	payload = append(payload, r.Key[:]...)
	payload = binary.BigEndian.AppendUint64(payload, r.Stamp)
	payload = append(payload, body...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// TestOpenUpgradesV1Log is the federation upgrade path: a log written by
// the pre-provenance store must warm-start under the current code, come
// back rewritten in the v2 format, and keep working — new appends carry
// the configured origin while the migrated history stays unattributed.
func TestOpenUpgradesV1Log(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	var tail []byte
	for i := 0; i < n; i++ {
		tail = appendRecordV1(t, tail, &Record{Key: testKey(i), Stamp: uint64(i + 1), Verdict: testVerdict(i)})
	}
	if err := os.WriteFile(filepath.Join(dir, tailName), tail, 0o644); err != nil {
		t.Fatal(err)
	}

	const me = identity.PartyID("aa11")
	s, recs, err := Open(dir, Options{Origin: me})
	if err != nil {
		t.Fatalf("v1 log must open under v2 code: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records from the v1 log, want %d", len(recs), n)
	}
	for _, r := range recs {
		if r.Origin != "" {
			t.Fatalf("migrated v1 record claims origin %q; nobody signed for it", r.Origin)
		}
	}
	if st := s.Stats(); st.Compactions != 1 {
		t.Fatalf("upgrade rewrite must count as one compaction, got %d", st.Compactions)
	}

	// The store must now be pure v2 on disk: snapshot and tail both carry
	// the version header.
	for _, name := range []string{snapshotName, tailName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, segmentHeader) {
			t.Fatalf("%s not rewritten to v2 after upgrade (starts %x)", name, data[:min(8, len(data))])
		}
	}

	// And it must keep working: a fresh append lands with the configured
	// origin and everything survives a restart.
	fresh := identity.DigestBytes([]byte("post-upgrade"))
	if !s.Append(fresh, testVerdict(9), nil) {
		t.Fatal("append refused after upgrade")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, recs2, err := Open(dir, Options{Origin: me})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(recs2) != n+1 {
		t.Fatalf("after upgrade+append+restart: %d records, want %d", len(recs2), n+1)
	}
	for _, r := range recs2 {
		switch {
		case r.Key == fresh:
			if r.Origin != me {
				t.Fatalf("fresh record origin = %q, want %q", r.Origin, me)
			}
		case r.Origin != "":
			t.Fatalf("migrated record gained origin %q across restart", r.Origin)
		}
	}
	prov, err := s2.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if prov[""] != n || prov[me] != 1 {
		t.Fatalf("Provenance = %v, want %d unattributed and 1 from %q", prov, n, me)
	}
}

// TestOriginSurvivesIngestAndDelta: provenance rides the wire framing and
// the disk round trip — a record ingested with a peer's origin is re-read
// off disk with it intact when served onward in a delta.
func TestOriginSurvivesIngestAndDelta(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const peer = identity.PartyID("bb22")
	in := []Record{{Key: testKey(1), Stamp: 7, Origin: peer, Verdict: testVerdict(1)}}
	applied, _, err := s.Ingest(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 {
		t.Fatalf("applied %d records, want 1", len(applied))
	}
	delta, err := s.Delta(nil)
	if err != nil {
		t.Fatal(err)
	}
	framed, err := EncodeRecords(delta)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRecords(framed)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Origin != peer {
		t.Fatalf("origin lost across disk+wire: %+v", decoded)
	}
	if !reflect.DeepEqual(decoded[0].Verdict, testVerdict(1)) {
		t.Fatalf("verdict mangled: %+v", decoded[0].Verdict)
	}
}

// TestDecodeRecordsLegacyWire: a delta from a pre-federation peer — no
// version header, no origin column — still decodes, so a mixed fleet
// converges during a rolling upgrade.
func TestDecodeRecordsLegacyWire(t *testing.T) {
	var blob []byte
	blob = appendRecordV1(t, blob, &Record{Key: testKey(3), Stamp: 5, Verdict: testVerdict(3)})
	recs, err := DecodeRecords(blob)
	if err != nil {
		t.Fatalf("legacy wire delta rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Origin != "" || recs[0].Stamp != 5 {
		t.Fatalf("legacy decode = %+v", recs)
	}
}

// TestDecodeRecordsUnknownVersion: a header claiming a future format is
// refused outright instead of mis-parsed.
func TestDecodeRecordsUnknownVersion(t *testing.T) {
	blob := []byte{'R', 'V', 'L', 'S', 99, 0, 0, 0, 0}
	if _, err := DecodeRecords(blob); err == nil {
		t.Fatal("unknown segment version accepted")
	}
}

// TestOpenCommittedV1Fixture guards the checked-in legacy segment that
// the CI smoke also feeds a live verifier: if the fixture rots — or the
// upgrade path stops reading real v1 bytes — this fails before CI does.
func TestOpenCommittedV1Fixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "v1", "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tailName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("committed v1 fixture failed to open: %v", err)
	}
	defer s.Close()
	if len(recs) != 1 {
		t.Fatalf("fixture replayed %d records, want 1", len(recs))
	}
	r := recs[0]
	if !r.Verdict.Accepted || r.Verdict.Format != "enumeration-nash/v1" || r.Origin != "" {
		t.Fatalf("fixture record mangled: %+v", r)
	}
	if st := s.Stats(); st.Replayed != 1 || st.LiveRecords != 1 {
		t.Fatalf("fixture stats = %+v", st)
	}
}
