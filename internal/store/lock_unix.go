//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on the store directory's
// lock file, so two processes can never append to and compact the same
// segments — a rolling restart that overlaps the old verifier's drain
// with the new one's startup fails loudly at Open instead of silently
// truncating the other process's durable verdicts. The kernel releases
// a flock when its holder dies, so a kill -9'd owner never wedges the
// next start (the failure mode an O_EXCL lock file would have).
func lockDir(dir string) (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already in use by another process: %w", dir, err)
	}
	return func() { _ = f.Close() }, nil // closing the fd drops the flock
}
