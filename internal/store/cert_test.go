package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// appendRecordV3 frames one record in the pre-certificate v3 layout
// (origin + request columns, no cert column) — exactly what a PR-7-era
// store wrote. It exists only in tests: production code writes v4 only.
func appendRecordV3(t *testing.T, buf []byte, r *Record) []byte {
	t.Helper()
	body, err := json.Marshal(&r.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	start := len(buf)
	buf = append(buf, make([]byte, headerLen)...)
	buf = append(buf, r.Key[:]...)
	buf = binary.BigEndian.AppendUint64(buf, r.Stamp)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Origin)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Request)))
	buf = append(buf, r.Origin...)
	buf = append(buf, r.Request...)
	buf = append(buf, body...)
	payload := buf[start+headerLen:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// TestCertifiedRecordRoundTrip persists a record with a certificate
// column and replays it across a restart: the certificate must survive
// byte for byte, and uncertified records must keep an empty column.
func TestCertifiedRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cert := []byte(`{"key":"ab","verdict":{"accepted":true},"panel":"Bw==","sigs":[]}`)
	if !s.AppendCertified(testKey(0), testVerdict(0), testRequest(0), cert) {
		t.Fatal("certified append refused")
	}
	if !s.Append(testKey(1), testVerdict(1), testRequest(1)) {
		t.Fatal("plain append refused")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, records, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(records) != 2 {
		t.Fatalf("replayed %d records, want 2", len(records))
	}
	byKey := map[[32]byte]Record{}
	for _, r := range records {
		byKey[r.Key] = r
	}
	if got := byKey[testKey(0)].Cert; !bytes.Equal(got, cert) {
		t.Fatalf("certificate column round-trip: got %q, want %q", got, cert)
	}
	if got := byKey[testKey(1)].Cert; got != nil {
		t.Fatalf("uncertified record grew a cert column: %q", got)
	}
}

// TestV3SegmentUpgrade commits a v3-era log (origin + request, no cert
// column) and opens it: records must replay with empty certificates, the
// store must rewrite itself to v4 (counted as a compaction), and the new
// tail must carry the v4 header.
func TestV3SegmentUpgrade(t *testing.T) {
	dir := t.TempDir()
	tail := []byte{'R', 'V', 'L', 'S', segmentV3}
	tail = appendRecordV3(t, tail, &Record{Key: testKey(0), Stamp: 1, Origin: "aa11", Request: testRequest(0), Verdict: testVerdict(0)})
	tail = appendRecordV3(t, tail, &Record{Key: testKey(1), Stamp: 2, Verdict: testVerdict(1)})
	if err := os.WriteFile(filepath.Join(dir, tailName), tail, 0o644); err != nil {
		t.Fatal(err)
	}

	s, records, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("replayed %d records from the v3 log, want 2", len(records))
	}
	if records[0].Origin != "aa11" || records[0].Request == nil {
		t.Fatalf("v3 columns lost in upgrade: %+v", records[0])
	}
	if records[0].Cert != nil || records[1].Cert != nil {
		t.Fatal("v3 records must replay uncertified")
	}
	if got := s.Stats().Compactions; got != 1 {
		t.Fatalf("upgrade rewrite counted %d compactions, want 1", got)
	}
	// A certificate now persists in the upgraded store...
	cert := []byte(`{"key":"cd"}`)
	if !s.AppendCertified(testKey(2), testVerdict(2), nil, cert) {
		t.Fatal("append after upgrade refused")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and the tail header is v4.
	head := make([]byte, segmentHeaderLen)
	f, err := os.Open(filepath.Join(dir, tailName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	if head[4] != segmentV4 {
		t.Fatalf("upgraded tail header version = %d, want %d", head[4], segmentV4)
	}
}

// TestCertificateTravelsAntiEntropy proves certificates are replicated
// data: a record that gains a certificate reads as new content (the
// record sum covers the cert column), so Delta re-sends it to a peer that
// already converged on the bare verdict, and Ingest carries the
// certificate into the receiving store.
func TestCertificateTravelsAntiEntropy(t *testing.T) {
	a, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Both sides hold the identical bare verdict.
	if !a.Append(testKey(0), testVerdict(0), testRequest(0)) {
		t.Fatal("append refused")
	}
	man, err := a.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	delta, err := a.Delta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Ingest(delta); err != nil {
		t.Fatal(err)
	}
	// Converged: a's delta against b's manifest is empty.
	bman, err := b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if d, err := a.Delta(bman); err != nil || len(d) != 0 {
		t.Fatalf("converged stores still transfer: %d records, %v", len(d), err)
	}

	// a's record gains a certificate: new content, so it travels.
	cert := []byte(`{"key":"ef","sigs":[]}`)
	if !a.AppendCertified(testKey(0), testVerdict(0), testRequest(0), cert) {
		t.Fatal("certified re-append refused")
	}
	man2, err := a.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if man2[testKey(0)].Sum == man[testKey(0)].Sum {
		t.Fatal("record sum unchanged by the certificate — anti-entropy would never ship it")
	}
	d, err := a.Delta(bman)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || !bytes.Equal(d[0].Cert, cert) {
		t.Fatalf("certified record not in delta: %+v", d)
	}
	applied, _, err := b.Ingest(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || !bytes.Equal(applied[0].Cert, cert) {
		t.Fatalf("certificate lost in ingest: %+v", applied)
	}

	// And the wire framing preserves it.
	blob, err := EncodeRecords(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecords(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !bytes.Equal(back[0].Cert, cert) {
		t.Fatalf("certificate lost on the wire: %+v", back)
	}
}
