// Package store is the durable verdict log behind the verification
// service's warm start. The paper's verifiers are reputation-bearing
// authorities whose verdicts are durable facts; this package makes them
// literally durable: every fresh verdict is appended to a crash-safe,
// content-addressed segment log, and a restarting service replays the log
// to pre-populate its verdict cache before it accepts traffic — no proof
// is ever re-checked just because the process died.
//
// The design keeps persistence entirely off the verification hot path:
//
//   - Append is one non-blocking send on a bounded channel. It never
//     takes a lock, performs a syscall, or blocks the verify path; when
//     the channel is full the record is dropped (and counted) rather
//     than ever applying backpressure to verification.
//   - A single flusher goroutine owns the tail file. It drains the
//     channel, frames records (length prefix + CRC32C, see segment.go),
//     appends them, and fsyncs every SyncEvery records — plus once more
//     whenever the queue drains — so durability amortizes the sync cost
//     across a burst without leaving a quiet service's records unsynced.
//   - Compaction runs on the same goroutine: once superseded records
//     (same key re-appended after a cache eviction, or duplicates left
//     by an earlier crash) exceed CompactAt, the live set is rewritten
//     into a snapshot segment — built as a temp file, fsynced, then
//     atomically renamed — and the tail is truncated. Recovery replays
//     snapshot + tail, newest stamp per key winning.
//   - Recovery salvages a torn tail: the replay keeps the longest valid
//     prefix (every record independently CRC-checked) and truncates the
//     rest, so a crash mid-append costs at most the unsynced suffix,
//     never the log.
//
// The store knows nothing about the service; it persists (key, verdict)
// pairs keyed by identity.Hash — the same content address the verdict
// cache uses — and hands them back at Open.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"rationality/internal/core"
	"rationality/internal/identity"
)

// Tuning defaults; zero-valued Options fields fall back to these.
const (
	// DefaultSyncEvery is how many appended records may accumulate before
	// the flusher fsyncs the tail. A crash can lose at most this many
	// acknowledged-but-unsynced verdicts (plus any still queued).
	DefaultSyncEvery = 64
	// DefaultQueueSize is the bounded append queue's capacity. When the
	// flusher falls behind by this many records, further appends are
	// dropped (and counted) instead of blocking verification.
	DefaultQueueSize = 1024
	// DefaultCompactAt is how many superseded (garbage) records may
	// accumulate before the flusher rewrites the live set into a fresh
	// snapshot segment and truncates the tail.
	DefaultCompactAt = 1024
)

// Options tunes a Store. The zero value is ready to use.
type Options struct {
	// SyncEvery is the fsync cadence in records; zero or negative means
	// DefaultSyncEvery. One means every record is synced before the next
	// is written (maximum durability, one syscall per verdict). The
	// flusher additionally syncs whenever its queue drains, so the
	// cadence only governs sustained bursts, never how long an idle
	// service leaves records in the page cache.
	SyncEvery int
	// QueueSize bounds the append queue; zero or negative means
	// DefaultQueueSize.
	QueueSize int
	// CompactAt is the garbage-record threshold that triggers
	// compaction; zero or negative means DefaultCompactAt.
	CompactAt int
	// MaxLive bounds how many live records the store retains; zero or
	// negative means unbounded. When set, compaction retires live
	// records beyond the bound (and compaction also triggers once the
	// live set outgrows MaxLive by CompactAt), so the index memory,
	// compaction I/O and recovery time stay proportional to the bound
	// instead of to the store's whole history. The service sets this to
	// its cache capacity: records beyond it could never be replayed
	// anyway. Retirement order is oldest append stamp first among the
	// records Retain does not vouch for — see Retain.
	MaxLive int
	// Origin is the party ID stamped onto locally appended records as
	// their provenance: the authority that vouches for them. Empty means
	// unattributed (an unkeyed deployment). Records arriving through
	// Ingest keep the origin the caller set on them — the anti-entropy
	// layer stamps the signing peer's identity there.
	Origin identity.PartyID
	// Retain, when non-nil, is consulted during MaxLive retirement: a
	// key it returns true for is kept in preference to one it does not.
	// Append stamps alone are a poor warmth signal — a popular verdict
	// is appended once and then served from the owner's cache forever,
	// never refreshing its stamp — so the owner vouches for the keys
	// that are still hot (the service passes its cache's residency
	// check, which is a lock-free map load). Called only on the store's
	// flusher goroutine, during compaction; it must be safe to call
	// concurrently with the owner's own reads and writes.
	Retain func(identity.Hash) bool
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Persisted counts records appended to the tail segment since Open.
	Persisted uint64 `json:"persisted"`
	// Replayed counts live records recovered from disk at Open. (The
	// verification service overrides this in its own Stats with the
	// count that actually entered its cache, which is smaller when the
	// cache is smaller than the recovered live set.)
	Replayed uint64 `json:"replayed"`
	// Dropped counts appends discarded because the queue was full: lost
	// warmth, never lost correctness.
	Dropped uint64 `json:"dropped"`
	// Failed counts records lost to a write failure — an unencodable
	// verdict or, after the first fatal I/O error (disk full, dead
	// device), every subsequent record: the store stops writing and
	// Close returns the error. A non-zero, growing Failed with a quiet
	// Dropped means the disk is the problem, not the load.
	Failed uint64 `json:"failed"`
	// Ingested counts records absorbed from peers via Ingest (anti-entropy)
	// since Open — applied records only, not stale offers that lost the
	// newest-stamp-wins comparison.
	Ingested uint64 `json:"ingested"`
	// Compactions counts snapshot rewrites since Open; CompactedRecords
	// the records they eliminated — superseded duplicates plus, under a
	// MaxLive bound, retired oldest records.
	Compactions      uint64 `json:"compactions"`
	CompactedRecords uint64 `json:"compactedRecords"`
	// LiveRecords is the current number of distinct keys on disk;
	// GarbageRecords the superseded records awaiting compaction.
	LiveRecords    uint64 `json:"liveRecords"`
	GarbageRecords uint64 `json:"garbageRecords"`
	// SalvagedBytes is how much of a torn tail recovery truncated at
	// Open (zero after a clean shutdown).
	SalvagedBytes uint64 `json:"salvagedBytes"`
}

// Store is a crash-safe, content-addressed verdict log. Append may be
// called from any goroutine; everything that touches the disk happens on
// the store's single flusher goroutine. Create it with Open, release it
// with Close.
type Store struct {
	dir    string
	opts   Options
	tail   *os.File
	unlock func() // releases the directory's exclusive flock

	queue chan Record
	cmds  chan func()   // synchronous flusher-thread commands (sync API)
	quit  chan struct{} // closed by Close: flusher drains and exits
	done  chan struct{} // closed by the flusher on exit
	once  sync.Once

	// Flusher-owned state (no locking: single goroutine).
	index     map[identity.Hash]idxEntry // key -> newest on-disk stamp + content sum
	nextStamp uint64
	sinceSync int
	buf       []byte
	flushErr  error // first fatal I/O error; flusher stops appending

	// Counters: written by the flusher (and Open), read by Stats from
	// any goroutine.
	persisted   atomic.Uint64
	replayed    atomic.Uint64
	dropped     atomic.Uint64
	failed      atomic.Uint64
	ingested    atomic.Uint64
	compactions atomic.Uint64
	compacted   atomic.Uint64
	live        atomic.Uint64
	garbage     atomic.Uint64
	salvaged    atomic.Uint64
}

// Open recovers the store at dir (creating it if needed) and returns the
// recovered live records, oldest first, for cache pre-population. The
// returned store is ready for Append: its flusher goroutine is running.
//
// Recovery replays the snapshot segment then the tail, keeping the
// newest-stamped record per key. A torn final record — the signature of a
// crash mid-append — is detected by its CRC and discarded along with
// everything after it; the tail is truncated back to the longest valid
// prefix so appends resume from a trusted boundary.
func Open(dir string, opts Options) (*Store, []Record, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = DefaultQueueSize
	}
	if opts.CompactAt <= 0 {
		opts.CompactAt = DefaultCompactAt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	// Exclusive ownership before touching a segment: a second process on
	// the same directory would truncate this one's records at its next
	// compaction. The flock dies with the process, so a crash never
	// wedges the next start.
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	rec, err := recoverDir(dir)
	if err != nil {
		unlock()
		return nil, nil, err
	}
	tail, err := os.OpenFile(filepath.Join(dir, tailName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		unlock()
		return nil, nil, fmt.Errorf("store: opening tail: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		tail:      tail,
		unlock:    unlock,
		queue:     make(chan Record, opts.QueueSize),
		cmds:      make(chan func()),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		index:     make(map[identity.Hash]idxEntry, len(rec.live)),
		nextStamp: rec.maxStamp + 1,
	}
	for key, r := range rec.live {
		s.index[key] = idxEntry{stamp: r.Stamp, sum: recordSum(r), origin: r.Origin, accepted: r.Verdict.Accepted}
	}
	live := uint64(len(rec.live))
	s.replayed.Store(live)
	s.live.Store(live)
	s.garbage.Store(rec.total - live)
	s.salvaged.Store(uint64(rec.salvaged))
	if err := s.upgradeSegments(rec); err != nil {
		tail.Close()
		unlock()
		return nil, nil, err
	}
	records := rec.liveRecords()
	go s.flusher()
	return s, records, nil
}

// upgradeSegments brings the on-disk format to the current segment
// version before the flusher starts. A store whose segments replayed as
// legacy (v1, v2 or v3) is rewritten wholesale — the live set goes into a
// fresh v4 snapshot, the tail is truncated and given the version header —
// so v4 is the only format ever appended to and the origin, request and
// certificate columns exist for every future record (the migrated history
// keeps whatever columns it had: v1 records stay unattributed, pre-v3
// records stay unauditable, pre-v4 records stay uncertified — no one
// recorded what was never there). The rewrite is a compaction in all but
// trigger, and is counted as one. A store already at v4 only has its tail
// header written when the tail is brand new or was salvaged to empty.
func (s *Store) upgradeSegments(rec *recovery) error {
	if rec.upgrade {
		if err := s.writeSnapshot(rec.live); err != nil {
			return fmt.Errorf("store: upgrading legacy segments: %w", err)
		}
		if err := s.tail.Truncate(0); err != nil {
			return fmt.Errorf("store: truncating legacy tail: %w", err)
		}
		s.compactions.Add(1)
		s.compacted.Add(s.garbage.Swap(0))
	}
	info, err := s.tail.Stat()
	if err != nil {
		return fmt.Errorf("store: stat tail: %w", err)
	}
	if info.Size() != 0 {
		return nil // existing v2 tail: header already on disk
	}
	if _, err := s.tail.Write(segmentHeader); err != nil {
		return fmt.Errorf("store: writing tail header: %w", err)
	}
	if err := s.tail.Sync(); err != nil {
		return fmt.Errorf("store: syncing tail header: %w", err)
	}
	return nil
}

// Append queues one verdict for persistence and reports whether it was
// accepted. It never blocks: when the flusher is behind and the queue is
// full, the record is dropped (counted in Stats.Dropped) — restart warmth
// is best-effort, verification latency is not. The verdict's Details map
// is deep-copied here, so the caller may keep mutating its copy; request
// — the JSON-encoded core.VerifyRequest the verdict was computed from,
// which is what makes the record independently re-verifiable by an
// auditor — is likewise copied, and may be nil when the caller has no
// inputs to offer (such a record simply cannot be audited).
//
// Records queued after Close starts may or may not be persisted; call
// Append only before Close, as the service's drain ordering guarantees.
func (s *Store) Append(key identity.Hash, v core.Verdict, request []byte) bool {
	return s.AppendCertified(key, v, request, nil)
}

// AppendCertified is Append with an aggregate quorum certificate
// attached: the encoded core.Certificate persists in the record's
// certificate column and replicates with it, so a restarted or syncing
// authority serves the certificate as readily as the verdict. A nil cert
// is exactly Append.
func (s *Store) AppendCertified(key identity.Hash, v core.Verdict, request, cert []byte) bool {
	select {
	case <-s.quit:
		return false // closed: the flusher is draining or gone
	default:
	}
	if len(s.queue) == cap(s.queue) {
		// Overloaded: drop before paying for the Details copy. The
		// length read races benignly with the flusher — at worst a
		// record is dropped just as a slot frees, which the best-effort
		// contract already allows.
		s.dropped.Add(1)
		return false
	}
	var req json.RawMessage
	if len(request) > 0 {
		req = append(json.RawMessage(nil), request...)
	}
	var cp []byte
	if len(cert) > 0 {
		cp = append([]byte(nil), cert...)
	}
	select {
	case s.queue <- Record{Key: key, Verdict: v.Clone(), Request: req, Cert: cp}:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Stats returns a point-in-time snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Persisted:        s.persisted.Load(),
		Replayed:         s.replayed.Load(),
		Dropped:          s.dropped.Load(),
		Failed:           s.failed.Load(),
		Ingested:         s.ingested.Load(),
		Compactions:      s.compactions.Load(),
		CompactedRecords: s.compacted.Load(),
		LiveRecords:      s.live.Load(),
		GarbageRecords:   s.garbage.Load(),
		SalvagedBytes:    s.salvaged.Load(),
	}
}

// Close drains the queue, writes and syncs everything accepted so far,
// and releases the tail file. Idempotent; returns the first fatal I/O
// error the flusher hit, if any.
func (s *Store) Close() error {
	s.once.Do(func() { close(s.quit) })
	<-s.done
	return s.flushErr
}

// flusher is the store's single writer goroutine: it owns the tail file,
// the on-disk index, and the compaction machinery.
func (s *Store) flusher() {
	defer close(s.done)
	defer s.unlock()
	defer s.tail.Close()
	for {
		select {
		case <-s.quit:
			// Final drain: persist everything accepted before Close.
			for {
				select {
				case r := <-s.queue:
					s.writeRecord(&r)
				default:
					s.syncTail()
					return
				}
			}
		case fn := <-s.cmds:
			// Writes first, then the command: any Append accepted before
			// the command was issued is on disk when the command runs, so
			// the sync API (Manifest/Delta/Ingest) observes a consistent
			// prefix of the append history.
			s.drainPending()
			fn()
		case r := <-s.queue:
			s.handleRecord(&r)
			s.drainPending()
		}
	}
}

// drainPending handles every currently queued record without blocking,
// then syncs the leftovers before the flusher goes idle (or runs a
// command). handleRecord keeps the sync cadence honest inside the burst,
// so one fsync covers at most SyncEvery records even under a load that
// never lets the queue run dry; the trailing sync means a quiet service
// never leaves records sitting in the page cache waiting for record
// number SyncEvery to show up.
func (s *Store) drainPending() {
	for {
		select {
		case r := <-s.queue:
			s.handleRecord(&r)
		default:
			s.syncTail()
			return
		}
	}
}

// handleRecord writes one record and then enforces the maintenance
// cadences. Both checks run after every record — not just when the queue
// goes idle — so sustained traffic cannot starve the SyncEvery durability
// contract or defer compaction forever.
func (s *Store) handleRecord(r *Record) {
	s.writeRecord(r)
	if s.sinceSync >= s.opts.SyncEvery {
		s.syncTail()
	}
	s.maybeCompact()
}

// maybeCompact runs a compaction when superseded records pile up — or,
// with a MaxLive bound, when the live set outgrows it by a compaction's
// worth, so an all-distinct-keys workload (which creates no garbage)
// still gets its history retired on the same amortized cadence. Local
// appends and anti-entropy merges share this single trigger.
func (s *Store) maybeCompact() {
	if s.garbage.Load() >= uint64(s.opts.CompactAt) ||
		(s.opts.MaxLive > 0 && s.live.Load() >= uint64(s.opts.MaxLive+s.opts.CompactAt)) {
		s.compact()
	}
}

// writeRecord stamps, frames and appends one record, updating the on-disk
// index and the live/garbage accounting. After a fatal I/O error the
// store stops writing — every further record counts as Failed, so the
// operator-visible signal distinguishes a dead disk from queue overflow —
// rather than spinning on a device that already refused a write.
func (s *Store) writeRecord(r *Record) {
	if s.flushErr != nil {
		s.failed.Add(1)
		return
	}
	r.Stamp = s.nextStamp
	s.nextStamp++
	r.Origin = s.opts.Origin // local append: this authority vouches
	s.writeStamped(r)
}

// writeStamped frames and appends a record that already carries its stamp.
// Local appends arrive via writeRecord with a fresh stamp; anti-entropy
// ingestion keeps the peer's stamp so replicas converge on identical
// (key, stamp) histories, and the local clock jumps past it to keep
// stamps monotonic across the merged history.
func (s *Store) writeStamped(r *Record) {
	if s.flushErr != nil {
		s.failed.Add(1)
		return
	}
	if r.Stamp >= s.nextStamp {
		s.nextStamp = r.Stamp + 1
	}
	buf, sum, err := appendRecord(s.buf[:0], r)
	if err != nil {
		s.failed.Add(1) // unencodable verdict: skip the record
		return
	}
	s.buf = buf[:0]
	if _, err := s.tail.Write(buf); err != nil {
		s.flushErr = fmt.Errorf("store: appending record: %w", err)
		s.failed.Add(1)
		return
	}
	if _, seen := s.index[r.Key]; seen {
		s.garbage.Add(1)
	} else {
		s.live.Add(1)
	}
	s.index[r.Key] = idxEntry{stamp: r.Stamp, sum: sum, origin: r.Origin, accepted: r.Verdict.Accepted}
	s.persisted.Add(1)
	s.sinceSync++
}

// Provenance summarizes the live set by vouching authority: how many
// on-disk records each origin party ID accounts for (the empty ID groups
// unattributed records — unkeyed deployments and migrated v1 history).
// It runs as a flusher command at anti-entropy cadence, so the counts are
// exact with respect to every accepted Append, never racing the writer.
func (s *Store) Provenance() (map[identity.PartyID]uint64, error) {
	var m map[identity.PartyID]uint64
	err := s.do(func() {
		m = make(map[identity.PartyID]uint64)
		for _, e := range s.index {
			m[e.origin]++
		}
	})
	return m, err
}

// syncTail fsyncs the tail segment if there are unsynced records.
func (s *Store) syncTail() {
	if s.sinceSync == 0 || s.flushErr != nil {
		return
	}
	if err := s.tail.Sync(); err != nil {
		s.flushErr = fmt.Errorf("store: syncing tail: %w", err)
		return
	}
	s.sinceSync = 0
}
