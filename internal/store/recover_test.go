package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rationality/internal/core"
	"rationality/internal/identity"
)

// buildTail frames n records into a byte slice exactly as the flusher
// would write them (version header first), returning the bytes and the
// framed length of each record so tests can corrupt precise offsets.
func buildTail(t *testing.T, n int) (data []byte, sizes []int) {
	t.Helper()
	data = append(data, segmentHeader...)
	for i := 0; i < n; i++ {
		rec := Record{Key: testKey(i), Stamp: uint64(i + 1), Verdict: testVerdict(i)}
		before := len(data)
		var err error
		data, _, err = appendRecord(data, &rec)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(data)-before)
	}
	return data, sizes
}

// TestCrashRecoveryTable is the torn-write salvage table: each case
// corrupts the tail segment a different way, and recovery must come back
// with exactly the longest valid prefix — never an error, never a record
// that was not written (a corrupt record must not poison the cache), and
// always a store that accepts appends afterwards.
func TestCrashRecoveryTable(t *testing.T) {
	const n = 6
	cases := []struct {
		name string
		// corrupt mutates the well-formed tail bytes.
		corrupt func(data []byte, sizes []int) []byte
		// wantRecords is how many records the longest valid prefix holds.
		wantRecords int
		wantSalvage bool
	}{
		{
			name:        "clean file",
			corrupt:     func(data []byte, _ []int) []byte { return data },
			wantRecords: n,
		},
		{
			name:        "empty file",
			corrupt:     func(_ []byte, _ []int) []byte { return nil },
			wantRecords: 0,
		},
		{
			name: "truncated tail record",
			corrupt: func(data []byte, sizes []int) []byte {
				// Cut mid-payload of the final record: the classic torn
				// write of a crash during an append.
				return data[:len(data)-sizes[n-1]/2]
			},
			wantRecords: n - 1,
			wantSalvage: true,
		},
		{
			name: "truncated mid-header",
			corrupt: func(data []byte, sizes []int) []byte {
				return data[:len(data)-sizes[n-1]+3]
			},
			wantRecords: n - 1,
			wantSalvage: true,
		},
		{
			name: "flipped CRC byte in final record",
			corrupt: func(data []byte, sizes []int) []byte {
				data[len(data)-1] ^= 0xff
				return data
			},
			wantRecords: n - 1,
			wantSalvage: true,
		},
		{
			name: "flipped byte mid-log",
			corrupt: func(data []byte, sizes []int) []byte {
				// Corrupt the third record's payload: framing cannot be
				// trusted past it, so salvage keeps only records 0 and 1
				// even though later bytes happen to be intact.
				off := sizes[0] + sizes[1] + sizes[2] - 1
				data[off] ^= 0xff
				return data
			},
			wantRecords: 2,
			wantSalvage: true,
		},
		{
			name: "garbage appended after valid records",
			corrupt: func(data []byte, _ []int) []byte {
				return append(data, []byte{0xde, 0xad, 0xbe, 0xef, 0x01}...)
			},
			wantRecords: n,
			wantSalvage: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			data, sizes := buildTail(t, n)
			tailPath := filepath.Join(dir, tailName)
			if err := os.WriteFile(tailPath, tc.corrupt(data, sizes), 0o644); err != nil {
				t.Fatal(err)
			}

			s, recs, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery must salvage, not fail: %v", err)
			}
			defer s.Close()
			if len(recs) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.wantRecords)
			}
			st := s.Stats()
			if st.Replayed != uint64(tc.wantRecords) {
				t.Fatalf("Replayed = %d, want %d", st.Replayed, tc.wantRecords)
			}
			if tc.wantSalvage && st.SalvagedBytes == 0 {
				t.Fatal("salvage expected but SalvagedBytes == 0")
			}
			if !tc.wantSalvage && st.SalvagedBytes != 0 {
				t.Fatalf("SalvagedBytes = %d on an uncorrupted tail", st.SalvagedBytes)
			}
			// Never poison the cache: every recovered verdict must be
			// byte-for-byte one that was actually written, under its key.
			for _, r := range recs {
				want := -1
				for i := 0; i < n; i++ {
					if r.Key == testKey(i) {
						want = i
						break
					}
				}
				if want == -1 {
					t.Fatalf("recovered a key that was never written: %x", r.Key)
				}
				if !reflect.DeepEqual(r.Verdict, testVerdict(want)) {
					t.Fatalf("verdict %d corrupted in recovery: %+v", want, r.Verdict)
				}
			}
			// The salvaged tail must be a trusted append point: new
			// records land after the valid prefix and survive a restart.
			fresh := identity.DigestBytes([]byte("post-salvage"))
			if !s.Append(fresh, core.Verdict{Accepted: true, Format: "test/v1"}, nil) {
				t.Fatal("append refused after salvage")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, recs2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if len(recs2) != tc.wantRecords+1 {
				t.Fatalf("after salvage+append+restart: %d records, want %d",
					len(recs2), tc.wantRecords+1)
			}
		})
	}
}

// TestRecoverTornSnapshot: a corrupt snapshot loses only its own suffix;
// the tail still replays, and nothing fails.
func TestRecoverTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapData, snapSizes := buildTail(t, 3)
	// Stamp-shift a tail with 2 newer records for different keys.
	tail := append([]byte(nil), segmentHeader...)
	for i := 10; i < 12; i++ {
		rec := Record{Key: testKey(i), Stamp: uint64(i + 1), Verdict: testVerdict(i)}
		var err error
		tail, _, err = appendRecord(tail, &rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the snapshot's last record.
	snapData = snapData[:len(snapData)-snapSizes[2]/2]
	if err := os.WriteFile(filepath.Join(dir, snapshotName), snapData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tailName), tail, 0o644); err != nil {
		t.Fatal(err)
	}
	s, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(recs) != 4 { // 2 salvaged from the snapshot + 2 from the tail
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
}

// TestStampsResumePastSalvage: the next stamp continues above the highest
// recovered stamp, so latest-wins ordering holds across a crash.
func TestStampsResumePastSalvage(t *testing.T) {
	dir := t.TempDir()
	data, _ := buildTail(t, 4)
	if err := os.WriteFile(filepath.Join(dir, tailName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Supersede key 0; its stamp must beat the recovered stamp 1.
	s.Append(testKey(0), testVerdict(8), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Key == testKey(0) && !reflect.DeepEqual(r.Verdict, testVerdict(8)) {
			t.Fatalf("superseding verdict lost: %+v", r.Verdict)
		}
	}
}
