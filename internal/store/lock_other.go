//go:build !unix

package store

// lockDir is a no-op where flock is unavailable: single-process use per
// store directory becomes an operator responsibility on such platforms.
func lockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
