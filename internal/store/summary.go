package store

import (
	"encoding/binary"
	"hash/fnv"
	"path/filepath"
	"sort"

	"rationality/internal/identity"
)

// Gossip support: a push-pull round wants to know "do we already agree?"
// without shipping a manifest, and "give me these exact records" without
// computing a full delta. Summary answers the first with one fixed-size
// digest; Records answers the second for rumor pushes. Both run on the
// flusher goroutine via the command channel, like the rest of the sync
// surface.

// Summary is a store's content fingerprint: the live-key count and an
// order-independent digest over every live (key, content sum) pair. Two
// stores with equal summaries hold the same verdict content with
// overwhelming probability; stamps are deliberately excluded — compaction
// re-ranks retained records with fresh stamps, and a digest that moved on
// every re-rank would make converged replicas look divergent forever.
type Summary struct {
	// Count is the number of live keys.
	Count int `json:"count"`
	// Digest folds every live record's key and content sum into one
	// 64-bit value, XOR-combined so iteration order cannot matter.
	Digest uint64 `json:"digest"`
}

// Summary fingerprints the live set. Cost is one pass over the in-memory
// index — no disk reads — so a gossip round can afford one per exchange.
func (s *Store) Summary() (Summary, error) {
	var sum Summary
	err := s.do(func() {
		sum.Count = len(s.index)
		var buf [36]byte
		for key, e := range s.index {
			copy(buf[:32], key[:])
			binary.LittleEndian.PutUint32(buf[32:], e.sum)
			h := fnv.New64a()
			_, _ = h.Write(buf[:])
			sum.Digest ^= h.Sum64()
		}
	})
	return sum, err
}

// Records materializes the live copies of the requested keys, oldest
// stamp first, reading the verdict bodies back off the segment files
// (the index holds only stamps and sums). Keys the store does not hold
// live are skipped silently — a rumor can outlive its record's
// supersession. The tail is synced first, matching Delta: a record
// handed to a peer must not be one a local crash could still lose.
func (s *Store) Records(keys []identity.Hash) ([]Record, error) {
	var out []Record
	var scanErr error
	err := s.do(func() {
		need := make(map[identity.Hash]bool, len(keys))
		for _, k := range keys {
			if _, ok := s.index[k]; ok {
				need[k] = true
			}
		}
		if len(need) == 0 {
			return
		}
		s.syncTail()
		if s.flushErr != nil {
			scanErr = s.flushErr
			return
		}
		found := make(map[identity.Hash]Record, len(need))
		absorb := func(r *Record) {
			if need[r.Key] && r.Stamp == s.index[r.Key].stamp {
				found[r.Key] = *r // the live copy, not a superseded one
			}
		}
		if err := replayFile(filepath.Join(s.dir, snapshotName), absorb, nil); err != nil {
			scanErr = err
			return
		}
		if err := replayFile(filepath.Join(s.dir, tailName), absorb, nil); err != nil {
			scanErr = err
			return
		}
		out = make([]Record, 0, len(found))
		for _, r := range found {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	})
	if err != nil {
		return nil, err
	}
	return out, scanErr
}
