package store

import (
	"errors"
	"reflect"
	"testing"

	"rationality/internal/identity"
)

// pull performs one anti-entropy pull: dst offers its manifest, src
// answers with a delta, dst ingests it — over the same Encode/Decode
// framing the wire uses, so the test covers the full round trip.
func pull(t *testing.T, dst, src *Store) []Record {
	t.Helper()
	have, err := dst.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	delta, err := src.Delta(have)
	if err != nil {
		t.Fatal(err)
	}
	framed, err := EncodeRecords(delta)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRecords(framed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, delta) {
		t.Fatalf("wire framing not lossless: sent %+v, received %+v", delta, decoded)
	}
	applied, _, err := dst.Ingest(decoded)
	if err != nil {
		t.Fatal(err)
	}
	return applied
}

func manifestOf(t *testing.T, s *Store) map[identity.Hash]RecordInfo {
	t.Helper()
	m, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Two stores with disjoint histories ingest each other's deltas and end
// with identical live sets — stamps included, so a third exchange in
// either direction is a no-op.
func TestAntiEntropyConvergesDisjointStores(t *testing.T) {
	a, _ := mustOpen(t, t.TempDir(), Options{})
	defer a.Close()
	b, _ := mustOpen(t, t.TempDir(), Options{})
	defer b.Close()
	for i := 0; i < 5; i++ {
		if !a.Append(testKey(i), testVerdict(i), nil) {
			t.Fatal("append refused")
		}
	}
	for i := 5; i < 8; i++ {
		if !b.Append(testKey(i), testVerdict(i), nil) {
			t.Fatal("append refused")
		}
	}

	if n := pull(t, a, b); len(n) != 3 {
		t.Fatalf("a pulled %d records from b, want 3", len(n))
	}
	if n := pull(t, b, a); len(n) != 5 {
		t.Fatalf("b pulled %d records from a, want 5", len(n))
	}

	ma, mb := manifestOf(t, a), manifestOf(t, b)
	if len(ma) != 8 || !reflect.DeepEqual(ma, mb) {
		t.Fatalf("manifests diverge after one round:\n a=%v\n b=%v", ma, mb)
	}
	if st := a.Stats(); st.Ingested != 3 || st.LiveRecords != 8 {
		t.Fatalf("a stats = %+v, want Ingested 3, LiveRecords 8", st)
	}

	// Converged replicas exchange nothing.
	if n := pull(t, a, b); len(n) != 0 {
		t.Fatalf("second pull moved %d records, want 0", len(n))
	}

	// The merged history must survive a restart on both sides.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2, recs := mustOpen(t, a.dir, Options{})
	defer a2.Close()
	if len(recs) != 8 {
		t.Fatalf("a recovered %d records after merge, want 8", len(recs))
	}
}

// Conflicting stamps on the same key: the newest stamp wins no matter
// which direction the exchange runs, and an equal-or-older offer never
// clobbers the local copy.
func TestAntiEntropyNewestStampWins(t *testing.T) {
	a, _ := mustOpen(t, t.TempDir(), Options{})
	defer a.Close()
	b, _ := mustOpen(t, t.TempDir(), Options{})
	defer b.Close()
	key := testKey(0)
	a.Append(key, testVerdict(1), nil) // a's stamp 1
	b.Append(key, testVerdict(2), nil) // b's stamp 1
	b.Append(key, testVerdict(3), nil) // b's stamp 2: b's live copy

	// a pulls from b: b's stamp-2 record beats a's stamp-1 record.
	if n := pull(t, a, b); len(n) != 1 || n[0].Stamp != 2 {
		t.Fatalf("a applied %+v, want one record at stamp 2", n)
	}
	// b pulls from a: a now has nothing newer — equal stamps, no motion.
	if n := pull(t, b, a); len(n) != 0 {
		t.Fatalf("b applied %+v, want nothing", n)
	}
	for name, s := range map[string]*Store{"a": a, "b": b} {
		m := manifestOf(t, s)
		if len(m) != 1 || m[key].Stamp != 2 {
			t.Fatalf("%s manifest = %v, want stamp 2 for %v", name, m, key)
		}
	}

	// The winning verdict — not just the winning stamp — is what recovery
	// hands back on the side that ingested.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, a.dir, Options{})
	if len(recs) != 1 || !reflect.DeepEqual(recs[0].Verdict, testVerdict(3)) {
		t.Fatalf("a recovered %+v, want b's stamp-2 verdict", recs)
	}

	// A stale re-offer (the loser's record) must be skipped.
	applied, _, err := b.Ingest([]Record{{Key: key, Stamp: 1, Verdict: testVerdict(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 0 {
		t.Fatalf("stale ingest applied %+v, want nothing", applied)
	}
}

// Local appends after a merge must stamp above everything ingested, so
// "newest stamp" keeps meaning "most recent write" across the replicas.
func TestIngestAdvancesLocalClock(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if _, _, err := s.Ingest([]Record{{Key: testKey(0), Stamp: 50, Verdict: testVerdict(0)}}); err != nil {
		t.Fatal(err)
	}
	s.Append(testKey(1), testVerdict(1), nil)
	m := manifestOf(t, s)
	if m[testKey(1)].Stamp <= 50 {
		t.Fatalf("local append stamped %d, want > 50 (ingested clock)", m[testKey(1)].Stamp)
	}
}

// Identical content under diverged stamps (the signature of compaction's
// warmth re-ranking) must transfer nothing: without the content check in
// Delta, converged replicas would bounce their whole hot sets between
// each other on every sync round, forever.
func TestDeltaSkipsRestampedIdenticalContent(t *testing.T) {
	a, _ := mustOpen(t, t.TempDir(), Options{})
	defer a.Close()
	b, _ := mustOpen(t, t.TempDir(), Options{})
	defer b.Close()
	key := testKey(0)
	a.Append(key, testVerdict(7), nil)
	// b holds the same verdict at a much newer stamp — as if b compacted
	// and re-ranked it after the replicas had converged.
	if _, _, err := b.Ingest([]Record{{Key: key, Stamp: 9, Verdict: testVerdict(7)}}); err != nil {
		t.Fatal(err)
	}
	delta, err := b.Delta(manifestOf(t, a))
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 0 {
		t.Fatalf("re-stamped identical content produced a delta: %+v", delta)
	}
	// Different content at the newer stamp must still transfer.
	if _, _, err := b.Ingest([]Record{{Key: key, Stamp: 10, Verdict: testVerdict(8)}}); err != nil {
		t.Fatal(err)
	}
	delta, err = b.Delta(manifestOf(t, a))
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) != 1 || delta[0].Stamp != 10 {
		t.Fatalf("changed content not offered: %+v", delta)
	}
}

// At the MaxLive retention bound, ingest declines brand-new keys (they
// would only be retired by the next compaction — and then re-offered by
// the peer every round) but still applies updates to keys it holds.
func TestIngestRespectsMaxLive(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{MaxLive: 2, SyncEvery: 1})
	defer s.Close()
	s.Append(testKey(0), testVerdict(0), nil)
	s.Append(testKey(1), testVerdict(1), nil)
	applied, _, err := s.Ingest([]Record{
		{Key: testKey(2), Stamp: 100, Verdict: testVerdict(2)}, // new key: at the bound, declined
		{Key: testKey(0), Stamp: 101, Verdict: testVerdict(9)}, // update: always lands
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Key != testKey(0) {
		t.Fatalf("applied = %+v, want only the update to key 0", applied)
	}
	m := manifestOf(t, s)
	if len(m) != 2 {
		t.Fatalf("live set = %d keys, want 2 (bound held)", len(m))
	}
	if _, leaked := m[testKey(2)]; leaked {
		t.Fatal("ingest absorbed a key beyond the retention bound")
	}
}

// A dead disk must fail the pull loudly: Ingest surfaces the flusher's
// fatal write error instead of returning success with nothing applied.
func TestIngestSurfacesWriteError(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{SyncEvery: 1})
	defer s.Close()
	if err := s.tail.Close(); err != nil { // kill the disk under the flusher
		t.Fatal(err)
	}
	applied, _, err := s.Ingest([]Record{{Key: testKey(0), Stamp: 1, Verdict: testVerdict(0)}})
	if err == nil {
		t.Fatal("ingest on a dead store reported success")
	}
	if len(applied) != 0 {
		t.Fatalf("dead store claimed to apply %+v", applied)
	}
}

// A corrupted wire delta is rejected outright — no salvage semantics off
// the disk path — and a truncated one too.
func TestDecodeRecordsRejectsCorruption(t *testing.T) {
	framed, err := EncodeRecords([]Record{{Key: testKey(0), Stamp: 1, Verdict: testVerdict(0)}})
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), framed...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := DecodeRecords(flipped); err == nil {
		t.Fatal("flipped payload byte decoded cleanly")
	}
	if _, err := DecodeRecords(framed[:len(framed)-3]); err == nil {
		t.Fatal("truncated delta decoded cleanly")
	}
	recs, err := DecodeRecords(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty delta: recs=%v err=%v, want none/nil", recs, err)
	}
}

// The sync API must fail with ErrClosed after Close instead of hanging on
// a flusher that is no longer listening.
func TestSyncAPIAfterClose(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Manifest(); !errors.Is(err, ErrClosed) {
		t.Errorf("Manifest after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.Delta(nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Delta after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := s.Ingest(nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after Close: err = %v, want ErrClosed", err)
	}
}
