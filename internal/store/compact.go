package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rationality/internal/fsx"
	"rationality/internal/identity"
)

// compact rewrites the live set into a fresh snapshot segment and empties
// the tail. It runs on the flusher goroutine (never concurrently with a
// write) and keeps the invariant that at every instant the union of
// snapshot + tail on disk contains every synced record's newest version:
//
//  1. Replay snapshot + tail from disk into the live set (the in-memory
//     index has only stamps; the verdicts come back off the disk, so
//     compaction memory is O(live), not O(log)).
//  2. Write the live records, stamps preserved, into verdicts.snap.tmp;
//     fsync it.
//  3. Rename over verdicts.snap (atomic on POSIX) and fsync the
//     directory, making the snapshot the durable source of truth.
//  4. Truncate the tail to zero and fsync it.
//
// A crash between 3 and 4 leaves tail records that duplicate snapshot
// records with equal stamps; recovery's newest-stamp-wins replay makes
// that harmless. A crash before 3 leaves the old snapshot + full tail —
// exactly the pre-compaction state. Appends queued while compaction runs
// wait in the bounded channel (or are dropped and counted when it
// overflows); verification itself never waits.
func (s *Store) compact() {
	if s.flushErr != nil {
		return
	}
	// Everything the replay reads back must be on its way to disk first.
	s.syncTail()
	if s.flushErr != nil {
		return
	}
	live := make(map[identity.Hash]*Record, len(s.index))
	absorb := func(r *Record) {
		if cur, ok := s.index[r.Key]; !ok || r.Stamp != cur.stamp {
			return // superseded or unknown: garbage
		}
		cp := *r
		live[r.Key] = &cp
	}
	if err := replayFile(filepath.Join(s.dir, snapshotName), absorb, nil); err != nil {
		s.flushErr = err
		return
	}
	if err := replayFile(filepath.Join(s.dir, tailName), absorb, nil); err != nil {
		s.flushErr = err
		return
	}
	cold, hot := s.partitionRetained(live)
	retired := s.retireOldest(live, cold, hot)
	s.refreshRetained(live, hot)
	if err := s.writeSnapshot(live); err != nil {
		s.flushErr = err
		return
	}
	if err := s.tail.Truncate(0); err != nil {
		s.flushErr = fmt.Errorf("store: truncating tail: %w", err)
		return
	}
	if _, err := s.tail.Write(segmentHeader); err != nil {
		s.flushErr = fmt.Errorf("store: writing tail header: %w", err)
		return
	}
	if err := s.tail.Sync(); err != nil {
		s.flushErr = fmt.Errorf("store: syncing truncated tail: %w", err)
		return
	}
	s.compactions.Add(1)
	s.compacted.Add(s.garbage.Swap(0) + retired)
}

// partitionRetained splits the live set into cold records and records
// the Retain hook vouches for (e.g. cache-resident verdicts), each
// sorted oldest append stamp first. One scan and one Retain call per
// record serves both retirement and re-stamping — the hook is a foreign
// lookup (the service's cache probe) the flusher shouldn't pay twice
// per compaction.
func (s *Store) partitionRetained(live map[identity.Hash]*Record) (cold, hot []*Record) {
	cold = make([]*Record, 0, len(live))
	for _, r := range live {
		if s.opts.Retain != nil && s.opts.Retain(r.Key) {
			hot = append(hot, r)
		} else {
			cold = append(cold, r)
		}
	}
	byStamp := func(rs []*Record) {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Stamp < rs[j].Stamp })
	}
	byStamp(cold)
	byStamp(hot)
	return cold, hot
}

// retireOldest enforces the MaxLive retention bound: when the live set
// exceeds it, surplus records are removed from both the snapshot-to-be
// and the in-memory index — retired history, counted with the compacted
// records. Victim order is oldest append stamp first among the cold
// records; hot (vouched-for) records go last, so a verdict that was
// appended long ago and then served from the cache forever — its stamp
// never refreshes, because cache hits must not touch the store —
// survives retirement as long as it stays hot. With MaxLive equal to
// the owner's cache capacity the hot set always fits the bound, so a
// retained record is in practice never retired.
func (s *Store) retireOldest(live map[identity.Hash]*Record, cold, hot []*Record) uint64 {
	if s.opts.MaxLive <= 0 || len(live) <= s.opts.MaxLive {
		return 0
	}
	victims := append(cold[:len(cold):len(cold)], hot...)[:len(live)-s.opts.MaxLive]
	for _, r := range victims {
		delete(live, r.Key)
		delete(s.index, r.Key)
	}
	retired := uint64(len(victims))
	s.live.Add(^(retired - 1)) // atomic subtract; victims is non-empty here
	return retired
}

// refreshRetained re-stamps the surviving hot records, in their existing
// relative order, above every other stamp. A hot record's append stamp
// is frozen at its first verification, so without this the stamp
// ordering that recovery and retirement rely on would rank the most
// valuable records as the most expendable; after each compaction the
// stamps again mean "least valuable first". The tail may still hold the
// old-stamp duplicates — newest-wins replay collapses them onto the
// re-stamped snapshot copy.
func (s *Store) refreshRetained(live map[identity.Hash]*Record, hot []*Record) {
	for _, r := range hot {
		if _, survived := live[r.Key]; !survived {
			continue // retired above: nothing to re-rank
		}
		r.Stamp = s.nextStamp
		s.nextStamp++
		entry := s.index[r.Key]
		entry.stamp = r.Stamp // content unchanged: the sum stays
		s.index[r.Key] = entry
	}
}

// writeSnapshot writes the live set into a temp segment, fsyncs it, and
// atomically renames it over the snapshot. Writes go through one
// buffered writer — a large live set must not become one syscall per
// record on the flusher goroutine, which has appends queueing behind it.
func (s *Store) writeSnapshot(live map[identity.Hash]*Record) error {
	tmpPath := filepath.Join(s.dir, snapshotName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	defer tmp.Close() // no-op after the explicit Close below
	w := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := w.Write(segmentHeader); err != nil {
		return fmt.Errorf("store: writing snapshot header: %w", err)
	}
	buf := s.buf[:0]
	for _, r := range live {
		if buf, _, err = appendRecord(buf[:0], r); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
	}
	s.buf = buf[:0]
	if err := w.Flush(); err != nil {
		return fmt.Errorf("store: flushing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	// Compaction truncates the tail only after the snapshot's directory
	// entry is durable: a durable truncation paired with a non-durable
	// rename would lose the whole live set on a crash.
	return fsx.SyncDir(s.dir)
}
