package store

import (
	"reflect"
	"testing"

	"rationality/internal/identity"
)

func summaryOf(t *testing.T, s *Store) Summary {
	t.Helper()
	sum, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// Two stores that hold the same verdict content report equal summaries —
// regardless of the stamps their copies carry or the order history
// arrived in — and any content difference moves the digest.
func TestSummaryTracksContentNotStamps(t *testing.T) {
	a, _ := mustOpen(t, t.TempDir(), Options{})
	b, _ := mustOpen(t, t.TempDir(), Options{})
	if got := summaryOf(t, a); got.Count != 0 || got.Digest != 0 {
		t.Fatalf("empty store summary = %+v, want zero", got)
	}
	// Same records, appended in opposite orders: different stamps per
	// key, same content.
	for i := 0; i < 6; i++ {
		a.Append(testKey(i), testVerdict(i), nil)
	}
	for i := 5; i >= 0; i-- {
		b.Append(testKey(i), testVerdict(i), nil)
	}
	sa, sb := summaryOf(t, a), summaryOf(t, b)
	if sa.Count != 6 || sa != sb {
		t.Fatalf("equal content, unequal summaries: %+v vs %+v", sa, sb)
	}
	if ma, mb := manifestOf(t, a), manifestOf(t, b); reflect.DeepEqual(ma, mb) {
		t.Fatal("test premise broken: opposite append orders produced identical stamps")
	}
	// One diverging verdict changes the digest but not the count.
	b.Append(testKey(3), testVerdict(4), nil)
	if sb2 := summaryOf(t, b); sb2.Count != 6 || sb2.Digest == sa.Digest {
		t.Fatalf("diverged content kept the digest: %+v vs %+v", sb2, sa)
	}
	// A new key changes the count.
	a.Append(testKey(99), testVerdict(99), nil)
	if sa2 := summaryOf(t, a); sa2.Count != 7 {
		t.Fatalf("count = %d after a new key, want 7", sa2.Count)
	}
}

// Summaries agree after anti-entropy convergence: the summary is the
// cheap equality check a gossip round uses in place of full manifests.
func TestSummaryAgreesAfterConvergence(t *testing.T) {
	a, _ := mustOpen(t, t.TempDir(), Options{})
	b, _ := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 4; i++ {
		a.Append(testKey(i), testVerdict(i), nil)
	}
	for i := 4; i < 8; i++ {
		b.Append(testKey(i), testVerdict(i), nil)
	}
	if summaryOf(t, a) == summaryOf(t, b) {
		t.Fatal("disjoint stores must not summarize equal")
	}
	pull(t, a, b)
	pull(t, b, a)
	if sa, sb := summaryOf(t, a), summaryOf(t, b); sa != sb {
		t.Fatalf("converged stores summarize unequal: %+v vs %+v", sa, sb)
	}
}

// Records materializes exactly the requested live copies, skipping
// unknown keys and superseded versions.
func TestRecordsMaterializesLiveCopies(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 5; i++ {
		s.Append(testKey(i), testVerdict(i), []byte(`{"req":true}`))
	}
	// Supersede key 2: the fetch must return the newest copy.
	s.Append(testKey(2), testVerdict(7), nil)
	got, err := s.Records([]identity.Hash{testKey(1), testKey(2), testKey(42)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (unknown key skipped)", len(got))
	}
	byKey := map[identity.Hash]Record{}
	for _, r := range got {
		byKey[r.Key] = r
	}
	if r, ok := byKey[testKey(1)]; !ok || r.Verdict.Reason != testVerdict(1).Reason {
		t.Fatalf("key 1: got %+v", r)
	}
	if r, ok := byKey[testKey(2)]; !ok || r.Verdict.Reason != testVerdict(7).Reason {
		t.Fatalf("key 2 not the superseding copy: %+v", r)
	}
	if r := byKey[testKey(1)]; string(r.Request) != `{"req":true}` {
		t.Fatalf("request column lost: %q", r.Request)
	}
	// Empty and all-unknown requests cost nothing and return nothing.
	if recs, err := s.Records(nil); err != nil || len(recs) != 0 {
		t.Fatalf("nil request: %v %v", recs, err)
	}
}

// Summary and Records fail with ErrClosed after Close, like the rest of
// the sync surface.
func TestSummaryAndRecordsAfterClose(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	s.Append(testKey(1), testVerdict(1), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Summary(); err != ErrClosed {
		t.Fatalf("Summary after close: %v", err)
	}
	if _, err := s.Records([]identity.Hash{testKey(1)}); err != ErrClosed {
		t.Fatalf("Records after close: %v", err)
	}
}
