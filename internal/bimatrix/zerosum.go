package bimatrix

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// ZeroSumSolution is the minimax solution of a zero-sum matrix game: the
// game value and optimal (maximin/minimax) mixed strategies.
type ZeroSumSolution struct {
	Value *big.Rat
	X     *numeric.Vec // row agent's maximin strategy
	Y     *numeric.Vec // column agent's minimax strategy
}

// SolveZeroSum solves the zero-sum game with row-agent payoff matrix a
// (column agent receives −a) by a pair of exact LPs. By the minimax theorem
// the two LP optima coincide; the solver cross-checks this and fails loudly
// if they do not (which would indicate an LP bug, not a property of the
// game).
func SolveZeroSum(a *numeric.Matrix) (*ZeroSumSolution, error) {
	if a.Rows() == 0 || a.Cols() == 0 {
		return nil, fmt.Errorf("bimatrix: empty matrix")
	}
	n, m := a.Rows(), a.Cols()

	// Row agent: max v s.t. Σ_i x_i A(i,j) >= v for all j, Σ x = 1, x >= 0.
	// Variables: x_0..x_{n-1}, v⁺, v⁻.
	rowLP := &numeric.LP{NumVars: n + 2, Objective: numeric.NewVec(n + 2)}
	rowLP.Objective.SetAt(n, numeric.One())
	rowLP.Objective.SetAt(n+1, numeric.I(-1))
	for j := 0; j < m; j++ {
		row := numeric.NewVec(n + 2)
		for i := 0; i < n; i++ {
			row.SetAt(i, a.At(i, j))
		}
		row.SetAt(n, numeric.I(-1))
		row.SetAt(n+1, numeric.One())
		rowLP.AddGE(row, numeric.Zero())
	}
	sum := numeric.NewVec(n + 2)
	for i := 0; i < n; i++ {
		sum.SetAt(i, numeric.One())
	}
	rowLP.AddEQ(sum, numeric.One())

	rowRes, err := numeric.SolveLP(rowLP)
	if err != nil {
		return nil, err
	}
	if rowRes.Status != numeric.Optimal {
		return nil, fmt.Errorf("bimatrix: row LP status %v", rowRes.Status)
	}

	// Column agent: min w s.t. Σ_j y_j A(i,j) <= w for all i, Σ y = 1, y >= 0.
	colLP := &numeric.LP{NumVars: m + 2, Objective: numeric.NewVec(m + 2), Minimize: true}
	colLP.Objective.SetAt(m, numeric.One())
	colLP.Objective.SetAt(m+1, numeric.I(-1))
	for i := 0; i < n; i++ {
		row := numeric.NewVec(m + 2)
		for j := 0; j < m; j++ {
			row.SetAt(j, a.At(i, j))
		}
		row.SetAt(m, numeric.I(-1))
		row.SetAt(m+1, numeric.One())
		colLP.AddLE(row, numeric.Zero())
	}
	csum := numeric.NewVec(m + 2)
	for j := 0; j < m; j++ {
		csum.SetAt(j, numeric.One())
	}
	colLP.AddEQ(csum, numeric.One())

	colRes, err := numeric.SolveLP(colLP)
	if err != nil {
		return nil, err
	}
	if colRes.Status != numeric.Optimal {
		return nil, fmt.Errorf("bimatrix: column LP status %v", colRes.Status)
	}

	if !numeric.Eq(rowRes.Objective, colRes.Objective) {
		return nil, fmt.Errorf("bimatrix: minimax gap %s vs %s",
			rowRes.Objective.RatString(), colRes.Objective.RatString())
	}

	x := numeric.NewVec(n)
	for i := 0; i < n; i++ {
		x.SetAt(i, rowRes.X.At(i))
	}
	y := numeric.NewVec(m)
	for j := 0; j < m; j++ {
		y.SetAt(j, colRes.X.At(j))
	}
	return &ZeroSumSolution{Value: numeric.Copy(rowRes.Objective), X: x, Y: y}, nil
}
