package bimatrix

import (
	"errors"
	"fmt"

	"rationality/internal/numeric"
)

// ErrNoEquilibrium is returned when support enumeration finds no equilibrium.
// By Nash's theorem this cannot happen for a correct implementation on a
// finite game; it is kept as a defensive signal rather than a panic.
var ErrNoEquilibrium = errors.New("bimatrix: no equilibrium found")

// FindEquilibrium computes one mixed Nash equilibrium by support
// enumeration: for every pair of candidate supports (ordered by total size,
// so pure equilibria are found first) it solves the indifference system and
// checks feasibility. This is the inventor's intractable-in-general
// computation — worst case it inspects (2ⁿ−1)(2ᵐ−1) support pairs.
func (g *Game) FindEquilibrium() (*Equilibrium, error) {
	var found *Equilibrium
	g.enumerateSupportEquilibria(func(e *Equilibrium) bool {
		found = e
		return false
	})
	if found == nil {
		return nil, ErrNoEquilibrium
	}
	return found, nil
}

// AllSupportEquilibria returns every equilibrium found by support
// enumeration, one per support pair that admits one (degenerate games can
// have continua; this returns one representative per support pair).
func (g *Game) AllSupportEquilibria() []*Equilibrium {
	var out []*Equilibrium
	g.enumerateSupportEquilibria(func(e *Equilibrium) bool {
		out = append(out, e)
		return true
	})
	return out
}

// enumerateSupportEquilibria invokes fn for each support pair admitting an
// equilibrium until fn returns false.
func (g *Game) enumerateSupportEquilibria(fn func(*Equilibrium) bool) {
	n, m := g.Rows(), g.Cols()
	rowSupports := subsetsBySize(n)
	colSupports := subsetsBySize(m)
	// Order by total support size so small (pure) equilibria come first.
	for total := 2; total <= n+m; total++ {
		for _, s1 := range rowSupports {
			if len(s1) >= total {
				continue
			}
			s2Size := total - len(s1)
			if s2Size < 1 || s2Size > m {
				continue
			}
			for _, s2 := range colSupports {
				if len(s2) != s2Size {
					continue
				}
				e, err := g.SolveForSupports(s1, s2)
				if err != nil {
					continue
				}
				if !fn(e) {
					return
				}
			}
		}
	}
}

// SolveForSupports attempts to find an equilibrium whose supports are
// contained in (s1, s2). It solves, by exact LP feasibility, the
// indifference-and-dominance system of the paper's Fig. 3 for both agents:
//
//	y_j >= 0 (j ∈ s2), Σ y_j = 1, (A·y)_i = λ1 for i ∈ s1, (A·y)_i <= λ1 otherwise,
//	x_i >= 0 (i ∈ s1), Σ x_i = 1, (Bᵀ·x)_j = λ2 for j ∈ s2, (Bᵀ·x)_j <= λ2 otherwise.
//
// The solution is then re-verified with IsEquilibrium before being returned,
// so a caller can trust the result unconditionally.
func (g *Game) SolveForSupports(s1, s2 []int) (*Equilibrium, error) {
	if err := validSupport(s1, g.Rows()); err != nil {
		return nil, fmt.Errorf("bimatrix: row support: %w", err)
	}
	if err := validSupport(s2, g.Cols()); err != nil {
		return nil, fmt.Errorf("bimatrix: column support: %w", err)
	}

	y, err := solveSide(g.a, s1, s2, false)
	if err != nil {
		return nil, err
	}
	x, err := solveSide(g.b, s2, s1, true)
	if err != nil {
		return nil, err
	}
	p := Profile{X: x, Y: y}
	if !g.IsEquilibrium(p) {
		return nil, ErrNoEquilibrium
	}
	return g.newEquilibrium(p), nil
}

// solveSide finds a mix for the "responding" agent that makes the "indifferent"
// agent indifferent across its support eqSupport and weakly worse off it.
// For the row agent's indifference (transposed == false) the unknown is the
// column mix y over mixSupport and payoffs come from matrix rows; for the
// column agent's indifference (transposed == true) the unknown is the row
// mix x and payoffs come from matrix columns.
func solveSide(payoff *numeric.Matrix, eqSupport, mixSupport []int, transposed bool) (*numeric.Vec, error) {
	dim := payoff.Cols()
	if transposed {
		dim = payoff.Rows()
	}
	total := payoff.Rows()
	if transposed {
		total = payoff.Cols()
	}

	// LP variables: one probability per mixSupport entry, then λ⁺, λ⁻
	// (λ = λ⁺ − λ⁻ is free).
	k := len(mixSupport)
	lp := &numeric.LP{NumVars: k + 2}

	coeff := func(strat, mixIdx int) *numeric.Rat {
		if transposed {
			return payoff.At(mixSupport[mixIdx], strat)
		}
		return payoff.At(strat, mixSupport[mixIdx])
	}

	inEq := make(map[int]bool, len(eqSupport))
	for _, i := range eqSupport {
		inEq[i] = true
	}

	for strat := 0; strat < total; strat++ {
		row := numeric.NewVec(k + 2)
		for t := 0; t < k; t++ {
			row.SetAt(t, coeff(strat, t))
		}
		row.SetAt(k, numeric.I(-1))   // −λ⁺
		row.SetAt(k+1, numeric.One()) // +λ⁻
		if inEq[strat] {
			lp.AddEQ(row, numeric.Zero())
		} else {
			lp.AddLE(row, numeric.Zero())
		}
	}

	// Probabilities sum to one.
	sumRow := numeric.NewVec(k + 2)
	for t := 0; t < k; t++ {
		sumRow.SetAt(t, numeric.One())
	}
	lp.AddEQ(sumRow, numeric.One())

	res, err := numeric.SolveLP(lp)
	if err != nil {
		return nil, err
	}
	if res.Status != numeric.Optimal {
		return nil, ErrNoEquilibrium
	}

	mix := numeric.NewVec(dim)
	for t, idx := range mixSupport {
		mix.SetAt(idx, res.X.At(t))
	}
	return mix, nil
}

func validSupport(s []int, limit int) error {
	if len(s) == 0 {
		return errors.New("empty support")
	}
	seen := make(map[int]bool, len(s))
	for _, i := range s {
		if i < 0 || i >= limit {
			return fmt.Errorf("index %d out of range [0, %d)", i, limit)
		}
		if seen[i] {
			return fmt.Errorf("index %d repeated", i)
		}
		seen[i] = true
	}
	return nil
}

// subsetsBySize returns all non-empty subsets of {0..n-1} grouped in
// increasing-size, lexicographic order.
func subsetsBySize(n int) [][]int {
	var out [][]int
	for size := 1; size <= n; size++ {
		combs(n, size, func(c []int) {
			cc := make([]int, len(c))
			copy(cc, c)
			out = append(out, cc)
		})
	}
	return out
}

// combs enumerates the size-k subsets of {0..n-1} in lexicographic order.
func combs(n, k int, fn func([]int)) {
	c := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(c)
			return
		}
		for i := start; i < n; i++ {
			c[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}
