package bimatrix

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

// fig5 is the paper's Fig. 5 game:
//
//	     C     D
//	A  1,1   1,1
//	B  0,1   2,0
func fig5() *Game {
	return FromInts(
		[][]int64{{1, 1}, {0, 2}},
		[][]int64{{1, 1}, {1, 0}},
	)
}

func matchingPennies() *Game {
	return FromInts(
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
}

func prisonersDilemma() *Game {
	return FromInts(
		[][]int64{{3, 0}, {5, 1}},
		[][]int64{{3, 5}, {0, 1}},
	)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(numeric.NewMatrix(0, 0), numeric.NewMatrix(0, 0)); err == nil {
		t.Error("empty matrices accepted")
	}
	if _, err := New(numeric.NewMatrix(2, 2), numeric.NewMatrix(2, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestAccessors(t *testing.T) {
	g := fig5()
	if g.Rows() != 2 || g.Cols() != 2 {
		t.Fatalf("shape %dx%d", g.Rows(), g.Cols())
	}
	if g.PayoffA(1, 1).RatString() != "2" || g.PayoffB(1, 1).RatString() != "0" {
		t.Error("payoff accessors wrong")
	}
	// A() returns a copy.
	a := g.A()
	a.SetAt(0, 0, numeric.I(99))
	if g.PayoffA(0, 0).RatString() != "1" {
		t.Error("A() leaked internal state")
	}
}

func TestExpectedPayoffs(t *testing.T) {
	g := matchingPennies()
	uniform := numeric.VecOf(numeric.R(1, 2), numeric.R(1, 2))
	p := Profile{X: uniform, Y: uniform.Clone()}
	if got := g.ExpectedA(p); got.Sign() != 0 {
		t.Errorf("ExpectedA = %s, want 0", got.RatString())
	}
	if got := g.ExpectedB(p); got.Sign() != 0 {
		t.Errorf("ExpectedB = %s, want 0", got.RatString())
	}
}

func TestRowColValues(t *testing.T) {
	g := fig5()
	// Against pure C (y = (1, 0)): row values are (1, 0).
	y := numeric.VecOfInts(1, 0)
	if got := g.RowValues(y); !got.Equal(numeric.VecOfInts(1, 0)) {
		t.Errorf("RowValues = %s", got)
	}
	// Against pure A (x = (1, 0)): column values are (1, 1).
	x := numeric.VecOfInts(1, 0)
	if got := g.ColValues(x); !got.Equal(numeric.VecOfInts(1, 1)) {
		t.Errorf("ColValues = %s", got)
	}
}

func TestIsEquilibrium(t *testing.T) {
	g := matchingPennies()
	half := numeric.R(1, 2)
	uniform := numeric.VecOf(half, half)
	if !g.IsEquilibrium(Profile{X: uniform, Y: uniform.Clone()}) {
		t.Error("uniform profile should be the MP equilibrium")
	}
	pureHeads := numeric.VecOfInts(1, 0)
	if g.IsEquilibrium(Profile{X: pureHeads, Y: pureHeads.Clone()}) {
		t.Error("pure profile is not an MP equilibrium")
	}
	// Invalid profiles are never equilibria.
	if g.IsEquilibrium(Profile{X: numeric.VecOfInts(1), Y: uniform}) {
		t.Error("wrong-dimension profile accepted")
	}
	if g.IsEquilibrium(Profile{X: numeric.VecOfInts(2, -1), Y: uniform}) {
		t.Error("non-stochastic profile accepted")
	}
	if g.IsEquilibrium(Profile{}) {
		t.Error("nil profile accepted")
	}
}

func TestFindEquilibriumMatchingPennies(t *testing.T) {
	g := matchingPennies()
	e, err := g.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	half := numeric.R(1, 2)
	want := numeric.VecOf(half, half)
	if !e.X.Equal(want) || !e.Y.Equal(want) {
		t.Errorf("equilibrium = (%s, %s), want uniform", e.X, e.Y)
	}
	if e.LambdaRow.Sign() != 0 || e.LambdaCol.Sign() != 0 {
		t.Errorf("values = (%s, %s), want (0, 0)", e.LambdaRow, e.LambdaCol)
	}
}

func TestFindEquilibriumPrisonersDilemma(t *testing.T) {
	g := prisonersDilemma()
	e, err := g.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	// Support enumeration visits small supports first, so the pure (D, D)
	// equilibrium is found.
	if !e.X.Equal(numeric.VecOfInts(0, 1)) || !e.Y.Equal(numeric.VecOfInts(0, 1)) {
		t.Errorf("equilibrium = (%s, %s), want pure (D, D)", e.X, e.Y)
	}
	if e.LambdaRow.RatString() != "1" || e.LambdaCol.RatString() != "1" {
		t.Errorf("values = (%s, %s)", e.LambdaRow, e.LambdaCol)
	}
}

func TestFig5Equilibria(t *testing.T) {
	g := fig5()
	e, err := g.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsEquilibrium(e.Profile) {
		t.Fatal("solver returned a non-equilibrium")
	}
	// Remark 2: with S1 = {A}, both payoffs are 1.
	if e.LambdaRow.RatString() != "1" || e.LambdaCol.RatString() != "1" {
		t.Errorf("λ = (%s, %s), want (1, 1)", e.LambdaRow, e.LambdaCol)
	}

	// Remark 2's ambiguity (the paper's "q <= 1/2" is qD <= 1/2): any column
	// mix with qD <= 1/2 makes (A; q) an equilibrium, since row B pays 2·qD
	// <= 1 = row A's payoff and the column agent is indifferent against A.
	for _, qd := range []string{"0", "1/4", "1/2"} {
		q := numeric.MustRat(qd)
		y := numeric.VecOf(numeric.Sub(numeric.One(), q), q)
		p := Profile{X: numeric.VecOfInts(1, 0), Y: y}
		if !g.IsEquilibrium(p) {
			t.Errorf("qD = %s: (A; q) should be an equilibrium", qd)
		}
	}
	// ... while qD > 1/2 lets the row agent deviate to B (payoff 2·qD > 1);
	// the extreme case is pure D.
	pureD := numeric.VecOfInts(0, 1)
	p := Profile{X: numeric.VecOfInts(1, 0), Y: pureD}
	if g.IsEquilibrium(p) {
		t.Error("(A; D) should not be an equilibrium: row deviates to B")
	}
	threeQuarters := numeric.VecOf(numeric.R(1, 4), numeric.R(3, 4))
	if g.IsEquilibrium(Profile{X: numeric.VecOfInts(1, 0), Y: threeQuarters}) {
		t.Error("qD = 3/4: row agent deviates to B; not an equilibrium")
	}
}

func TestSolveForSupportsFig5(t *testing.T) {
	g := fig5()
	// Supports S1 = {A} = {0}, S2 = {C, D} = {0, 1}: equilibrium family; the
	// solver returns one member and verifies it.
	e, err := g.SolveForSupports([]int{0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsEquilibrium(e.Profile) {
		t.Fatal("returned profile is not an equilibrium")
	}
	if e.LambdaRow.RatString() != "1" {
		t.Errorf("λ1 = %s", e.LambdaRow.RatString())
	}

	// Support pair with no equilibrium.
	if _, err := g.SolveForSupports([]int{1}, []int{0}); err == nil {
		t.Error("S1={B}, S2={C} admits no equilibrium; accepted anyway")
	}
}

func TestSolveForSupportsValidation(t *testing.T) {
	g := fig5()
	if _, err := g.SolveForSupports(nil, []int{0}); err == nil {
		t.Error("empty support accepted")
	}
	if _, err := g.SolveForSupports([]int{0, 0}, []int{0}); err == nil {
		t.Error("duplicate support index accepted")
	}
	if _, err := g.SolveForSupports([]int{5}, []int{0}); err == nil {
		t.Error("out-of-range support accepted")
	}
}

func TestAllSupportEquilibriaBattleOfSexes(t *testing.T) {
	g := FromInts(
		[][]int64{{2, 0}, {0, 1}},
		[][]int64{{1, 0}, {0, 2}},
	)
	all := g.AllSupportEquilibria()
	// BoS has two pure equilibria and one fully mixed one.
	var pure, mixed int
	for _, e := range all {
		if !g.IsEquilibrium(e.Profile) {
			t.Fatal("non-equilibrium returned")
		}
		if len(e.X.Support()) == 1 && len(e.Y.Support()) == 1 {
			pure++
		}
		if len(e.X.Support()) == 2 && len(e.Y.Support()) == 2 {
			mixed++
		}
	}
	if pure != 2 {
		t.Errorf("found %d pure equilibria, want 2", pure)
	}
	if mixed < 1 {
		t.Error("missing the fully mixed equilibrium")
	}
}

func TestZeroSumMatchingPennies(t *testing.T) {
	sol, err := SolveZeroSum(numeric.MatrixOfInts([][]int64{{1, -1}, {-1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value.Sign() != 0 {
		t.Errorf("value = %s, want 0", sol.Value.RatString())
	}
	half := numeric.R(1, 2)
	if !sol.X.Equal(numeric.VecOf(half, half)) || !sol.Y.Equal(numeric.VecOf(half, half)) {
		t.Errorf("strategies = (%s, %s)", sol.X, sol.Y)
	}
}

func TestZeroSumDominantStrategy(t *testing.T) {
	// Row 0 dominates: value is the min of row 0.
	sol, err := SolveZeroSum(numeric.MatrixOfInts([][]int64{{4, 3}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value.RatString() != "3" {
		t.Errorf("value = %s, want 3", sol.Value.RatString())
	}
}

func TestZeroSumEmpty(t *testing.T) {
	if _, err := SolveZeroSum(numeric.NewMatrix(0, 0)); err == nil {
		t.Error("empty matrix accepted")
	}
}

// Property: on random small games the support-enumeration solver always
// finds a verified equilibrium (Nash's theorem), and the zero-sum value of
// A equals the row payoff of an equilibrium of (A, −A).
func TestSolverAlwaysFindsEquilibriumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n, m := 2+rng.Intn(2), 2+rng.Intn(2)
		a := make([][]int64, n)
		b := make([][]int64, n)
		neg := make([][]int64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]int64, m)
			b[i] = make([]int64, m)
			neg[i] = make([]int64, m)
			for j := 0; j < m; j++ {
				a[i][j] = int64(rng.Intn(9) - 4)
				b[i][j] = int64(rng.Intn(9) - 4)
				neg[i][j] = -a[i][j]
			}
		}
		g := FromInts(a, b)
		e, err := g.FindEquilibrium()
		if err != nil {
			t.Fatalf("trial %d: no equilibrium found", trial)
		}
		if !g.IsEquilibrium(e.Profile) {
			t.Fatalf("trial %d: solver returned non-equilibrium", trial)
		}

		zs := FromInts(a, neg)
		ze, err := zs.FindEquilibrium()
		if err != nil {
			t.Fatalf("trial %d: zero-sum game has no equilibrium", trial)
		}
		sol, err := SolveZeroSum(numeric.MatrixOfInts(a))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.Eq(ze.LambdaRow, sol.Value) {
			t.Fatalf("trial %d: equilibrium payoff %s != game value %s",
				trial, ze.LambdaRow.RatString(), sol.Value.RatString())
		}
	}
}
