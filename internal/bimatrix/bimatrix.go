// Package bimatrix implements finite 2-agent games in mixed strategies: the
// n×m payoff matrices A (row agent) and B (column agent) of §4, expected
// payoffs, mixed Nash equilibrium predicates, a support-enumeration solver
// (the PPAD-hard computation performed by the game inventor), and an exact
// zero-sum LP solver.
//
// Everything is exact rational arithmetic: the solver's output can be
// verified with equality checks, which is what the P1/P2 verifiers of the
// interactive package rely on.
package bimatrix

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// Game is a two-agent game in strategic form. The row agent has n pure
// strategies (rows) and the column agent m (columns); A and B hold their
// respective payoffs.
type Game struct {
	a, b *numeric.Matrix
}

// New builds a game from the two payoff matrices, which must be non-empty
// and of equal shape.
func New(a, b *numeric.Matrix) (*Game, error) {
	if a.Rows() == 0 || a.Cols() == 0 {
		return nil, fmt.Errorf("bimatrix: empty payoff matrix")
	}
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return nil, fmt.Errorf("bimatrix: A is %dx%d but B is %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	return &Game{a: a.Clone(), b: b.Clone()}, nil
}

// FromInts builds a game from integer payoff literals.
func FromInts(a, b [][]int64) *Game {
	g, err := New(numeric.MatrixOfInts(a), numeric.MatrixOfInts(b))
	if err != nil {
		panic(err)
	}
	return g
}

// Rows returns the number of row-agent pure strategies (n).
func (g *Game) Rows() int { return g.a.Rows() }

// Cols returns the number of column-agent pure strategies (m).
func (g *Game) Cols() int { return g.a.Cols() }

// A returns a copy of the row agent's payoff matrix.
func (g *Game) A() *numeric.Matrix { return g.a.Clone() }

// B returns a copy of the column agent's payoff matrix.
func (g *Game) B() *numeric.Matrix { return g.b.Clone() }

// PayoffA returns A(i, j).
func (g *Game) PayoffA(i, j int) *big.Rat { return g.a.At(i, j) }

// PayoffB returns B(i, j).
func (g *Game) PayoffB(i, j int) *big.Rat { return g.b.At(i, j) }

// Profile is a mixed strategy profile: X over the rows, Y over the columns.
type Profile struct {
	X *numeric.Vec
	Y *numeric.Vec
}

// Valid reports whether the profile's dimensions match the game and both
// strategies are probability vectors.
func (g *Game) Valid(p Profile) bool {
	return p.X != nil && p.Y != nil &&
		p.X.Len() == g.Rows() && p.Y.Len() == g.Cols() &&
		p.X.IsStochastic() && p.Y.IsStochastic()
}

// RowValues returns A·y: entry i is the row agent's expected payoff for pure
// row i against the column mix y.
func (g *Game) RowValues(y *numeric.Vec) *numeric.Vec { return g.a.MulVec(y) }

// ColValues returns Bᵀ·x: entry j is the column agent's expected payoff for
// pure column j against the row mix x.
func (g *Game) ColValues(x *numeric.Vec) *numeric.Vec { return g.b.VecMul(x) }

// ExpectedA returns the row agent's expected payoff xᵀ·A·y.
func (g *Game) ExpectedA(p Profile) *big.Rat { return p.X.Dot(g.a.MulVec(p.Y)) }

// ExpectedB returns the column agent's expected payoff xᵀ·B·y.
func (g *Game) ExpectedB(p Profile) *big.Rat { return p.X.Dot(g.b.MulVec(p.Y)) }

// IsEquilibrium reports whether p is a mixed Nash equilibrium: every pure
// strategy in each agent's support is a best response to the opponent's mix
// (the "second Nash theorem" condition Lemma 1 relies on).
func (g *Game) IsEquilibrium(p Profile) bool {
	if !g.Valid(p) {
		return false
	}
	rowVals := g.RowValues(p.Y)
	if !supportIsOptimal(p.X, rowVals) {
		return false
	}
	colVals := g.ColValues(p.X)
	return supportIsOptimal(p.Y, colVals)
}

// supportIsOptimal reports whether every index in the support of mix
// achieves the maximum of vals.
func supportIsOptimal(mix, vals *numeric.Vec) bool {
	best := vals.At(0)
	for i := 1; i < vals.Len(); i++ {
		if v := vals.At(i); numeric.Gt(v, best) {
			best = v
		}
	}
	for _, i := range mix.Support() {
		if !numeric.Eq(vals.At(i), best) {
			return false
		}
	}
	return true
}

// Equilibrium is a mixed Nash equilibrium with its value to both agents:
// LambdaRow = λ1 and LambdaCol = λ2 in the paper's notation.
type Equilibrium struct {
	Profile
	LambdaRow *big.Rat
	LambdaCol *big.Rat
}

// newEquilibrium packages a verified profile with its expected payoffs.
func (g *Game) newEquilibrium(p Profile) *Equilibrium {
	return &Equilibrium{
		Profile:   p,
		LambdaRow: g.ExpectedA(p),
		LambdaCol: g.ExpectedB(p),
	}
}
