// Package commitment implements a salted SHA-256 commitment scheme.
//
// In the paper's P2 protocol (§4, Fig. 4) the prover answers membership
// queries ("is index j in the other agent's support?") one at a time. A
// dishonest prover could adapt its answers to the verifier's queries unless
// the answers are bound up front. Committing to the full membership vector
// before the first query — and opening only the queried bits — keeps the
// protocol private (unqueried bits stay hidden) while making the answers
// binding, which is the "resembles zero-knowledge proofs" flavour the paper
// describes.
//
// The scheme is computationally binding and hiding under standard
// assumptions on SHA-256: commit = SHA-256(salt ‖ value) with a 32-byte
// random salt.
package commitment

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
)

// SaltSize is the length in bytes of commitment salts.
const SaltSize = 32

// Commitment is the binding digest published by the committer.
type Commitment [sha256.Size]byte

// String renders the commitment in hex.
func (c Commitment) String() string { return fmt.Sprintf("%x", c[:]) }

// Opening reveals a committed value together with the salt that binds it.
type Opening struct {
	Value []byte `json:"value"`
	Salt  []byte `json:"salt"`
}

// ErrBadOpening is returned by Verify when an opening does not match its
// commitment.
var ErrBadOpening = errors.New("commitment: opening does not match commitment")

// Commit commits to value with fresh randomness from crypto/rand.
func Commit(value []byte) (Commitment, *Opening, error) {
	return CommitWithRand(value, rand.Reader)
}

// CommitWithRand commits to value drawing the salt from the given source.
// Tests use a deterministic source; production callers should use
// crypto/rand (via Commit).
func CommitWithRand(value []byte, rng io.Reader) (Commitment, *Opening, error) {
	salt := make([]byte, SaltSize)
	if _, err := io.ReadFull(rng, salt); err != nil {
		return Commitment{}, nil, fmt.Errorf("commitment: drawing salt: %w", err)
	}
	open := &Opening{Value: bytes.Clone(value), Salt: salt}
	return digest(open), open, nil
}

// Verify checks that the opening matches the commitment. The comparison is
// constant time in the digest.
func Verify(c Commitment, open *Opening) error {
	if open == nil {
		return ErrBadOpening
	}
	if len(open.Salt) != SaltSize {
		return fmt.Errorf("%w: salt is %d bytes, want %d", ErrBadOpening, len(open.Salt), SaltSize)
	}
	d := digest(open)
	if subtle.ConstantTimeCompare(d[:], c[:]) != 1 {
		return ErrBadOpening
	}
	return nil
}

func digest(open *Opening) Commitment {
	h := sha256.New()
	h.Write(open.Salt)
	h.Write(open.Value)
	var c Commitment
	copy(c[:], h.Sum(nil))
	return c
}

// BitVector packs boolean membership answers for per-index commitments: the
// P2 prover commits to each support-membership bit separately so it can open
// exactly the queried indices and nothing else.
type BitVector []bool

// Bytes encodes one bit per byte (0x00 / 0x01); the redundancy keeps
// openings self-describing.
func (b BitVector) Bytes() []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		if v {
			out[i] = 1
		}
	}
	return out
}

// CommitBits commits to each bit of b independently, returning parallel
// slices of commitments and openings.
func CommitBits(b BitVector, rng io.Reader) ([]Commitment, []*Opening, error) {
	comms := make([]Commitment, len(b))
	opens := make([]*Opening, len(b))
	for i, bit := range b {
		v := []byte{0}
		if bit {
			v[0] = 1
		}
		c, o, err := CommitWithRand(v, rng)
		if err != nil {
			return nil, nil, err
		}
		comms[i], opens[i] = c, o
	}
	return comms, opens, nil
}

// OpenBit interprets an opening produced by CommitBits as a boolean after
// verifying it against the commitment.
func OpenBit(c Commitment, open *Opening) (bool, error) {
	if err := Verify(c, open); err != nil {
		return false, err
	}
	if len(open.Value) != 1 || open.Value[0] > 1 {
		return false, fmt.Errorf("%w: not a bit opening", ErrBadOpening)
	}
	return open.Value[0] == 1, nil
}
