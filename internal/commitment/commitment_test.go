package commitment

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommitVerifyRoundTrip(t *testing.T) {
	c, open, err := Commit([]byte("the column support is {2, 5}"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, open); err != nil {
		t.Fatalf("honest opening rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedValue(t *testing.T) {
	c, open, err := Commit([]byte("yes"))
	if err != nil {
		t.Fatal(err)
	}
	open.Value = []byte("no!")
	if err := Verify(c, open); !errors.Is(err, ErrBadOpening) {
		t.Fatalf("err = %v, want ErrBadOpening", err)
	}
}

func TestVerifyRejectsTamperedSalt(t *testing.T) {
	c, open, err := Commit([]byte("yes"))
	if err != nil {
		t.Fatal(err)
	}
	open.Salt[0] ^= 0xff
	if err := Verify(c, open); !errors.Is(err, ErrBadOpening) {
		t.Fatalf("err = %v, want ErrBadOpening", err)
	}
}

func TestVerifyRejectsNilAndShortSalt(t *testing.T) {
	c, open, err := Commit([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, nil); !errors.Is(err, ErrBadOpening) {
		t.Error("nil opening accepted")
	}
	open.Salt = open.Salt[:4]
	if err := Verify(c, open); !errors.Is(err, ErrBadOpening) {
		t.Error("short salt accepted")
	}
}

func TestCommitmentsAreHiding(t *testing.T) {
	// Same value, fresh salts → different commitments.
	c1, _, err := Commit([]byte("bit"))
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Commit([]byte("bit"))
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("identical commitments for independent commits: salt ignored?")
	}
}

func TestCommitDoesNotAliasValue(t *testing.T) {
	v := []byte("secret")
	c, open, err := Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	v[0] = 'X'
	if err := Verify(c, open); err != nil {
		t.Fatal("mutating the caller's buffer broke the opening: value aliased")
	}
}

func TestCommitWithRandDeterministic(t *testing.T) {
	c1, _, err := CommitWithRand([]byte("v"), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := CommitWithRand([]byte("v"), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("same seed should give same commitment")
	}
}

func TestBitVectorBytes(t *testing.T) {
	b := BitVector{true, false, true}
	if !bytes.Equal(b.Bytes(), []byte{1, 0, 1}) {
		t.Fatalf("Bytes = %v", b.Bytes())
	}
}

func TestCommitBitsAndOpenBit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bits := BitVector{true, false, false, true, true}
	comms, opens, err := CommitBits(bits, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != len(bits) || len(opens) != len(bits) {
		t.Fatalf("lengths %d/%d", len(comms), len(opens))
	}
	for i := range bits {
		got, err := OpenBit(comms[i], opens[i])
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != bool(bits[i]) {
			t.Fatalf("bit %d = %v, want %v", i, got, bits[i])
		}
	}
	// Cross-opening must fail (bindingness across indices).
	if _, err := OpenBit(comms[0], opens[1]); !errors.Is(err, ErrBadOpening) {
		t.Error("opening for one index accepted for another")
	}
}

func TestOpenBitRejectsNonBit(t *testing.T) {
	c, open, err := CommitWithRand([]byte{7}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBit(c, open); !errors.Is(err, ErrBadOpening) {
		t.Error("non-bit value accepted by OpenBit")
	}
}

// Property: Verify accepts exactly the opening produced by Commit, for
// arbitrary values.
func TestCommitVerifyProperty(t *testing.T) {
	f := func(value []byte, seed int64) bool {
		c, open, err := CommitWithRand(value, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return Verify(c, open) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any byte of the committed value is detected.
func TestTamperDetectionProperty(t *testing.T) {
	f := func(value []byte, pos uint8, seed int64) bool {
		if len(value) == 0 {
			return true
		}
		c, open, err := CommitWithRand(value, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		i := int(pos) % len(open.Value)
		open.Value[i] ^= 0x01
		return errors.Is(Verify(c, open), ErrBadOpening)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
