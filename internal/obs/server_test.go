package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rationality/internal/service"
)

// startServer spins up an admin server on an ephemeral port and tears it
// down with the test.
func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// get fetches one admin path and returns status and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestReadyzTransitions walks /readyz through the full startup sequence
// of a peered authority: not ready during warm-start replay, still not
// ready before the first sync round, ready after — and the flip is a
// latch: it happens exactly once and re-marking gates cannot unflip it.
func TestReadyzTransitions(t *testing.T) {
	ready := NewReadiness(GateWarmStart, GateFirstSync)
	s := startServer(t, ServerConfig{ID: "t", Readiness: ready})

	code, body := get(t, s, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("cold /readyz = %d, want 503", code)
	}
	if !strings.Contains(body, GateWarmStart) || !strings.Contains(body, GateFirstSync) {
		t.Fatalf("cold /readyz body should name both pending gates, got %q", body)
	}

	ready.Mark(GateWarmStart)
	code, body = get(t, s, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after warm-start only = %d, want 503 (first sync round still pending)", code)
	}
	if strings.Contains(body, GateWarmStart) || !strings.Contains(body, GateFirstSync) {
		t.Fatalf("post-warm-start body should name only first-sync, got %q", body)
	}

	ready.Mark(GateFirstSync)
	if code, _ = get(t, s, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after both gates = %d, want 200", code)
	}

	// The latch flips exactly once: marking again (the sync loop signals
	// every round, not just the first) and probing repeatedly stays 200.
	for i := 0; i < 3; i++ {
		ready.Mark(GateFirstSync)
		ready.Mark(GateWarmStart)
		if code, _ = get(t, s, "/readyz"); code != http.StatusOK {
			t.Fatalf("/readyz flipped back to %d on probe %d", code, i)
		}
	}
}

// TestReadyzWithoutPeers covers the unpeered authority: one warm-start
// gate, ready the moment it marks.
func TestReadyzWithoutPeers(t *testing.T) {
	ready := NewReadiness(GateWarmStart)
	s := startServer(t, ServerConfig{ID: "t", Readiness: ready})
	if code, _ := get(t, s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("cold /readyz = %d, want 503", code)
	}
	ready.Mark(GateWarmStart)
	if code, _ := get(t, s, "/readyz"); code != http.StatusOK {
		t.Fatalf("warm /readyz = %d, want 200", code)
	}
}

// TestReadyzNilReadiness: no latch configured means readiness mirrors
// liveness.
func TestReadyzNilReadiness(t *testing.T) {
	s := startServer(t, ServerConfig{ID: "t"})
	if code, _ := get(t, s, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with nil readiness = %d, want 200", code)
	}
}

// TestHealthzAlwaysLive: liveness answers 200 even while readiness gates
// are pending — the probe distinction load balancers rely on.
func TestHealthzAlwaysLive(t *testing.T) {
	ready := NewReadiness(GateWarmStart)
	s := startServer(t, ServerConfig{ID: "t", Readiness: ready})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
}

// TestMetricsEndpoint: /metrics serves the exposition content type, the
// stats tree, and the appended readiness series; the whole reply passes
// the lint.
func TestMetricsEndpoint(t *testing.T) {
	ready := NewReadiness(GateWarmStart)
	s := startServer(t, ServerConfig{
		ID:        "verify-corp",
		Stats:     func() service.Stats { return fixtureStats() },
		Readiness: ready,
	})
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, MetricsContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	lintExposition(t, text)
	for _, want := range []string{
		"rationality_requests_total 120",
		`rationality_federation_rejected_total{cause="unknown-signer"} 3`,
		"rationality_ready 0",
		`rationality_ready_gate{gate="warm-start"} 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsNilStats: the admin plane can come up before the service it
// observes; /metrics then serves a zero-valued (but well-formed) tree.
func TestMetricsNilStats(t *testing.T) {
	s := startServer(t, ServerConfig{ID: "warming"})
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics with nil stats = %d, want 200", code)
	}
	lintExposition(t, body)
	if !strings.Contains(body, "rationality_requests_total 0\n") {
		t.Error("zero-valued exposition missing rationality_requests_total 0")
	}
}

// TestPprofWired: the profiling endpoints answer on the admin port — a
// heap profile is one curl away.
func TestPprofWired(t *testing.T) {
	s := startServer(t, ServerConfig{ID: "t"})
	code, body := get(t, s, "/debug/pprof/heap?debug=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d, want 200", code)
	}
	if !strings.Contains(body, "heap profile") {
		t.Errorf("heap profile body unrecognized: %.80q", body)
	}
	if code, _ := get(t, s, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ index = %d, want 200", code)
	}
}

// TestServerCloseIdempotent: Close drains gracefully and a second Close
// (the deferred one after an explicit shutdown) returns promptly.
func TestServerCloseIdempotent(t *testing.T) {
	s, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", ID: "t", ShutdownTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second Close hung")
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("listener still answering after Close")
	}
}
