// Package obs is the authority's operator plane: a dependency-free
// observability layer over the service's lock-free Stats snapshot.
//
// The service layer already maintains every number an operator needs —
// request/cache/failure counters, a log2 latency histogram with
// percentile estimates, per-shard cache gauges, durable-store counters,
// per-peer federation rejection buckets — but until this package the only
// way to read them was a bespoke TCP message and a one-shot CLI print.
// obs turns that snapshot into the three surfaces real operations expect:
//
//   - WriteMetrics renders the full Stats tree in Prometheus text
//     exposition format (stable metric names, HELP/TYPE lines, labels for
//     peer/cause/shard, the log2 histogram as a native Prometheus
//     histogram with cumulative `le` buckets);
//   - WriteText is the human rendering the CLI `stats` subcommand and the
//     verifier's shutdown report share, and DiffStats turns two snapshots
//     into the rates (req/s, hit ratio, rejections/s) a live `top`-style
//     watch prints;
//   - Server is a separate HTTP admin listener serving /metrics,
//     /healthz (process liveness), /readyz (readiness gated on a
//     Readiness latch) and net/http/pprof, so profiles are one curl away
//     and a load balancer can keep a cold authority out of rotation.
//
// Everything here reads snapshots at probe cadence; nothing in this
// package is ever on the verification hot path.
package obs

import (
	"sort"
	"strings"
	"sync"
)

// Canonical readiness gate names used by cmd/authority. They are plain
// strings — a Readiness accepts any names — but sharing the constants
// keeps dashboards and the README's documentation in one vocabulary.
const (
	// GateWarmStart is held open until the durable log has been replayed
	// into the cache (service.New returning): a restarted authority must
	// not take traffic while its cache is cold.
	GateWarmStart = "warm-start"
	// GateFirstSync is held open until the first anti-entropy round with
	// at least one successful peer exchange: an authority that was down
	// must not take traffic while its verdict log is behind its peers.
	GateFirstSync = "first-sync"
)

// Readiness is a monotone latch over a fixed set of named gates. Every
// gate starts pending; Mark flips one to done and nothing ever flips it
// back, so Ready is monotone — it becomes true exactly once, when the
// last gate is marked, and stays true. Safe for concurrent use.
type Readiness struct {
	mu    sync.Mutex
	order []string // declaration order, for stable rendering
	done  map[string]bool
}

// NewReadiness declares the gates that must all be marked before the
// latch reports ready. With no gates the latch is born ready (the
// degenerate case of an authority with nothing to wait for). Duplicate
// names collapse into one gate.
func NewReadiness(gates ...string) *Readiness {
	r := &Readiness{done: make(map[string]bool, len(gates))}
	for _, g := range gates {
		if _, dup := r.done[g]; !dup {
			r.order = append(r.order, g)
			r.done[g] = false
		}
	}
	return r
}

// Mark flips one gate to done. Marking an already-done gate is a no-op
// (callers may signal on every round, not just the first); marking a gate
// that was never declared is also a no-op — the latch's contract is the
// declared set, and a stray name must not widen or wedge it.
func (r *Readiness) Mark(gate string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, declared := r.done[gate]; declared {
		r.done[gate] = true
	}
}

// Ready reports whether every declared gate has been marked.
func (r *Readiness) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, done := range r.done {
		if !done {
			return false
		}
	}
	return true
}

// Pending lists the gates not yet marked, in declaration order — the
// /readyz body an operator reads to learn *why* an authority is out of
// rotation.
func (r *Readiness) Pending() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, g := range r.order {
		if !r.done[g] {
			out = append(out, g)
		}
	}
	return out
}

// Gates returns every declared gate name in declaration order.
func (r *Readiness) Gates() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// snapshot returns the gate states without holding the lock during
// rendering.
func (r *Readiness) snapshot() (gates []string, done map[string]bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gates = append([]string(nil), r.order...)
	done = make(map[string]bool, len(r.done))
	for g, d := range r.done {
		done[g] = d
	}
	return gates, done
}

// sortedKeys returns a map's keys in sorted order: metric renderings must
// be deterministic, and Go map iteration is not.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// joinOr renders a list as "a, b, c" with a fallback for the empty case.
func joinOr(items []string, empty string) string {
	if len(items) == 0 {
		return empty
	}
	return strings.Join(items, ", ")
}
