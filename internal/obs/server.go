package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rationality/internal/service"
)

// ServerConfig configures an admin Server.
type ServerConfig struct {
	// Addr is the listen address of the admin plane, e.g. "127.0.0.1:9090".
	// It should be a separate listener from the verification port: the
	// operator plane must stay reachable when the service port is
	// saturated, and pprof must never be exposed where clients connect.
	Addr string
	// ID is the verifier identity stamped on rationality_authority_info.
	ID string
	// Stats supplies the snapshot /metrics renders. It is called once per
	// scrape; it must be safe for concurrent use. A nil function serves
	// zero-valued stats — the admin plane can come up before the service
	// it observes (e.g. while a warm-start replay is still running).
	Stats func() service.Stats
	// Readiness, when non-nil, gates /readyz: 200 once every gate is
	// marked, 503 with the pending gate list before. Nil means /readyz
	// mirrors /healthz (an authority with nothing to wait for).
	Readiness *Readiness
	// ShutdownTimeout bounds Close's graceful drain of in-flight scrapes;
	// zero means DefaultShutdownTimeout.
	ShutdownTimeout time.Duration
}

// DefaultShutdownTimeout bounds the admin server's graceful shutdown when
// ServerConfig.ShutdownTimeout is zero: long enough for an in-flight
// scrape, far too short to hold a drain hostage.
const DefaultShutdownTimeout = 5 * time.Second

// Server is the authority's HTTP admin listener: /metrics (Prometheus
// text exposition), /healthz (process liveness), /readyz (readiness
// latch) and /debug/pprof (CPU, heap and contention profiles). Create it
// with NewServer — the listener is live when NewServer returns — and
// release it with Close, which drains in-flight requests gracefully.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	timeout time.Duration
	done    chan error
}

// NewServer binds the admin listener and starts serving. The returned
// server is already answering probes; Close releases it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("obs: admin server needs a listen address")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listener: %w", err)
	}
	timeout := cfg.ShutdownTimeout
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	s := &Server{
		ln:      ln,
		timeout: timeout,
		done:    make(chan error, 1),
	}
	s.srv = &http.Server{
		Handler: s.handler(cfg),
		// Scrapes and probes are small; generous-but-bounded timeouts keep
		// a wedged client from pinning admin connections forever. Pprof's
		// profile endpoints stream for their ?seconds= duration, so the
		// write timeout must comfortably exceed the profiling default
		// (30s) rather than the probe norm.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
	}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// handler builds the admin mux. Routes are registered on a private mux,
// never http.DefaultServeMux, so embedding two authorities in one process
// cannot collide (and nothing else in the process leaks onto this port).
func (s *Server) handler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var st service.Stats
		if cfg.Stats != nil {
			st = cfg.Stats()
		}
		w.Header().Set("Content-Type", MetricsContentType)
		_ = WriteMetrics(w, cfg.ID, st)
		if cfg.Readiness != nil {
			_ = WriteReadyMetrics(w, cfg.Readiness)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness is the process answering at all: if this handler runs,
		// the process is alive. Readiness is the separate, gated question.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Readiness == nil || cfg.Readiness.Ready() {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: waiting on %s\n", joinOr(cfg.Readiness.Pending(), "nothing"))
	})
	// net/http/pprof registers on the default mux at import; wire its
	// handlers here explicitly so profiles live on the admin port only.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Addr is the bound admin address (useful when the config asked for
// port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the admin server down gracefully: the listener closes
// immediately (probes get connection-refused, which is what a draining
// process should answer), in-flight scrapes get up to the configured
// shutdown timeout to finish, and stragglers are cut off. Idempotent.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err == context.DeadlineExceeded {
		err = s.srv.Close()
	}
	if serveErr := <-s.done; err == nil {
		err = serveErr
	}
	// Close may be called again (e.g. a deferred close after an explicit
	// one); feed the drained channel so the second call cannot block.
	s.done <- nil
	return err
}
