package obs

import (
	"io"
	"strconv"
	"strings"

	"rationality/internal/gossip"
	"rationality/internal/service"
)

// Prometheus text exposition (format version 0.0.4) over service.Stats.
// The renderer is deliberately hand-rolled: the module is dependency-free
// and the exposition format is tiny — HELP/TYPE lines per family, one
// sample per line, label values escaped. Everything the Stats tree holds
// is rendered, nothing is sampled twice, and all output is deterministic
// (map-backed sections iterate in sorted order) so the golden test can
// compare bytes.

// MetricsContentType is the Content-Type of the /metrics reply: the
// Prometheus text exposition version this package renders.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promLabel is one label pair of a sample line.
type promLabel struct{ name, value string }

// promWriter accumulates exposition text family by family.
type promWriter struct {
	b strings.Builder
}

// family emits the HELP and TYPE header of one metric family.
func (p *promWriter) family(name, help, typ string) {
	p.b.WriteString("# HELP ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(escapeHelp(help))
	p.b.WriteString("\n# TYPE ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(typ)
	p.b.WriteByte('\n')
}

// sample emits one sample line: name{labels} value.
func (p *promWriter) sample(name string, labels []promLabel, value string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			p.b.WriteString(l.name)
			p.b.WriteString(`="`)
			p.b.WriteString(escapeLabel(l.value))
			p.b.WriteByte('"')
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(value)
	p.b.WriteByte('\n')
}

// counter emits a single-sample counter family.
func (p *promWriter) counter(name, help string, v uint64) {
	p.family(name, help, "counter")
	p.sample(name, nil, formatUint(v))
}

// gauge emits a single-sample gauge family.
func (p *promWriter) gauge(name, help string, v int64) {
	p.family(name, help, "gauge")
	p.sample(name, nil, strconv.FormatInt(v, 10))
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are legal
// there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatUint renders a counter value.
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatSeconds renders a duration-derived float the shortest way that
// round-trips, the conventional Prometheus float formatting.
func formatSeconds(sec float64) string { return strconv.FormatFloat(sec, 'g', -1, 64) }

// WriteMetrics renders a service Stats snapshot as Prometheus text
// exposition: every counter and gauge the snapshot carries, the log2
// latency histogram as a native Prometheus histogram with cumulative `le`
// buckets over the full bucket range (the summary's trimmed tail is
// rendered as zeros), per-shard cache gauges, the durable store's
// counters when persistence is enabled, and the federation trust-boundary
// counters — per rejection cause and per peer — when federation is
// configured. verifierID labels the rationality_authority_info series.
// Output is deterministic for a given snapshot.
func WriteMetrics(w io.Writer, verifierID string, st service.Stats) error {
	var p promWriter

	// Identity first: the info-series idiom gives dashboards the authority
	// ID and signing identity as labels without stamping them on every
	// series.
	p.family("rationality_authority_info", "Authority identity: constant 1, labeled with the verifier ID and (when keyed) the Ed25519 signing party ID.", "gauge")
	info := []promLabel{{"id", verifierID}}
	if st.Federation != nil && st.Federation.Signer != "" {
		info = append(info, promLabel{"signer", string(st.Federation.Signer)})
	}
	p.sample("rationality_authority_info", info, "1")

	// Request-path counters.
	p.counter("rationality_requests_total", "Admitted single verifications (batch items included); cache hits + misses always equal this.", st.Requests)
	p.counter("rationality_batches_total", "VerifyBatch calls.", st.Batches)
	p.counter("rationality_cache_hits_total", "Requests answered from the verdict cache.", st.CacheHits)
	p.counter("rationality_cache_misses_total", "Requests that missed the verdict cache.", st.CacheMisses)
	p.counter("rationality_deduplicated_total", "Requests that shared a concurrent identical verification (singleflight followers).", st.Deduplicated)
	p.family("rationality_verdicts_total", "Delivered verdicts partitioned by outcome.", "counter")
	p.sample("rationality_verdicts_total", []promLabel{{"verdict", "accepted"}}, formatUint(st.Accepted))
	p.sample("rationality_verdicts_total", []promLabel{{"verdict", "rejected"}}, formatUint(st.Rejected))
	p.counter("rationality_failures_total", "Requests that produced no verdict at all (unknown format, cancelled context, service shutdown).", st.Failures)

	// Concurrency gauges.
	p.gauge("rationality_in_flight", "Requests currently being served.", st.InFlight)
	p.gauge("rationality_in_flight_peak", "Highest concurrency observed since start.", st.PeakInFlight)
	p.gauge("rationality_workers", "Executor pool size.", int64(st.Workers))

	// Cache population, total and per stripe.
	p.gauge("rationality_cache_entries", "Current verdict-cache population.", int64(st.CacheEntries))
	p.gauge("rationality_cache_shards", "Verdict-cache stripe count.", int64(st.CacheShards))
	if len(st.ShardEntries) > 0 {
		p.family("rationality_cache_shard_entries", "Verdict-cache population per stripe.", "gauge")
		for i, n := range st.ShardEntries {
			p.sample("rationality_cache_shard_entries", []promLabel{{"shard", strconv.Itoa(i)}}, strconv.Itoa(n))
		}
	}

	// Anti-entropy counters (present even unfederated: intra-operator
	// replication reports here too).
	p.counter("rationality_ingested_total", "Verdicts absorbed from peers via anti-entropy (replication, never counted as hits or misses).", st.Ingested)
	p.counter("rationality_sync_deltas_served_total", "Sync-offer requests answered for peers.", st.DeltasServed)
	p.counter("rationality_sync_rounds_total", "Completed anti-entropy passes over the peer list.", st.SyncRounds)

	// Accountability counters: refutations caught at ingest, and the
	// background audit re-verifier's activity.
	p.counter("rationality_ingest_refutations_total", "Ingested records refused because they contradicted a locally verified verdict (each one charged to the vouching peer).", st.IngestRefutations)
	p.counter("rationality_audits_total", "Ingested records re-verified by the background auditor.", st.Audits)
	p.counter("rationality_audit_refutations_total", "Audits that refuted the vouched verdict: proven lies, charged and repaired.", st.AuditRefutations)
	p.counter("rationality_audits_shed_total", "Audit samples dropped because the audit queue was full (lost coverage, never correctness).", st.AuditsShed)

	// Quorum-certificate counters: the CoSi-style collective-signing
	// pipeline, from a panel member's co-signatures out to offline serving.
	p.counter("rationality_certificates_cosigned_total", "Co-signatures this authority issued over its own verdicts (cosign requests answered).", st.CertsCosigned)
	p.counter("rationality_certificates_stored_total", "Quorum certificates accepted into the durable log, locally submitted or carried in by anti-entropy.", st.CertsStored)
	p.counter("rationality_certificates_served_total", "Stored certificates handed to clients for offline verification.", st.CertsServed)
	p.counter("rationality_certificates_rejected_total", "Certificates refused because they failed offline verification against the panel keyset.", st.CertsRejected)

	writeLatencyHistogram(&p, "rationality_request_duration_seconds",
		"End-to-end request latency, from the service's lock-free log2 histogram (bucket i spans up to 2^(i+1)-1 ns).",
		st.Latency)
	// Min/Max are exact observed bounds the histogram's resolution cannot
	// carry; exposed as companion gauges.
	p.family("rationality_request_duration_min_seconds", "Smallest observed request latency (0 until the first request completes).", "gauge")
	p.sample("rationality_request_duration_min_seconds", nil, formatSeconds(st.Latency.Min.Seconds()))
	p.family("rationality_request_duration_max_seconds", "Largest observed request latency.", "gauge")
	p.sample("rationality_request_duration_max_seconds", nil, formatSeconds(st.Latency.Max.Seconds()))

	// Streaming: stream count plus the time-to-first-verdict histogram —
	// the latency streaming exists to flatten.
	p.counter("rationality_streams_total", "VerifyStream exchanges started (admitted past the batch class).", st.Streams)
	writeLatencyHistogram(&p, "rationality_stream_first_verdict_seconds",
		"Time from stream admission to the first emitted verdict, per stream.",
		st.StreamTTFV)

	writeAdmission(&p, st.Admission)

	if ps := st.Persistence; ps != nil {
		p.counter("rationality_store_persisted_total", "Records appended to the durable verdict log since open.", ps.Persisted)
		p.gauge("rationality_store_replayed", "Warm-start records replayed into the cache at open.", int64(ps.Replayed))
		p.counter("rationality_store_dropped_total", "Appends discarded because the store queue was full (lost warmth, never correctness).", ps.Dropped)
		p.counter("rationality_store_failed_total", "Records lost to a write failure; growing with quiet drops means the disk is the problem, not the load.", ps.Failed)
		p.counter("rationality_store_ingested_total", "Records absorbed into the durable log from peers since open.", ps.Ingested)
		p.counter("rationality_store_compactions_total", "Snapshot compactions since open.", ps.Compactions)
		p.counter("rationality_store_compacted_records_total", "Records eliminated by compaction (superseded duplicates plus retired cold records).", ps.CompactedRecords)
		p.gauge("rationality_store_live_records", "Distinct live keys on disk.", int64(ps.LiveRecords))
		p.gauge("rationality_store_garbage_records", "Superseded records awaiting compaction.", int64(ps.GarbageRecords))
		p.gauge("rationality_store_salvaged_bytes", "Bytes a torn-tail recovery truncated at open (zero after a clean shutdown).", int64(ps.SalvagedBytes))
	}

	if fs := st.Federation; fs != nil {
		p.gauge("rationality_federation_trusted_peers", "Peer-allowlist size; zero accepts any peer (intra-operator mode).", int64(fs.TrustedPeers))
		p.gauge("rationality_peers_quarantined", "Peers currently quarantined by the trust policy.", int64(fs.Quarantined))
		p.family("rationality_federation_rejected_total", "Sync-deltas refused before ingest, by cause: unsigned, unknown-signer, bad-signature, corrupt, quarantined.", "counter")
		for _, c := range []struct {
			cause string
			n     uint64
		}{
			{"unsigned", fs.RejectedUnsigned},
			{"unknown-signer", fs.RejectedUnknown},
			{"bad-signature", fs.RejectedBadSig},
			{"corrupt", fs.RejectedCorrupt},
			{"quarantined", fs.RejectedQuarantined},
		} {
			p.sample("rationality_federation_rejected_total", []promLabel{{"cause", c.cause}}, formatUint(c.n))
		}
		if len(fs.Peers) > 0 {
			peerIDs := sortedKeys(fs.Peers)
			p.family("rationality_federation_peer_deltas_total", "Verified sync-deltas accepted per signing peer.", "counter")
			for _, id := range peerIDs {
				p.sample("rationality_federation_peer_deltas_total", []promLabel{{"peer", id}}, formatUint(fs.Peers[id].Deltas))
			}
			p.family("rationality_federation_peer_records_total", "Records applied from each signing peer's accepted deltas.", "counter")
			for _, id := range peerIDs {
				p.sample("rationality_federation_peer_records_total", []promLabel{{"peer", id}}, formatUint(fs.Peers[id].Records))
			}
			p.family("rationality_federation_peer_rejected_total", "Sync-deltas refused per claimed signing peer.", "counter")
			for _, id := range peerIDs {
				p.sample("rationality_federation_peer_rejected_total", []promLabel{{"peer", id}}, formatUint(fs.Peers[id].Rejected))
			}
			// Trust standing per peer, present only when a trust policy is
			// attached (State is empty otherwise).
			tracked := make([]string, 0, len(peerIDs))
			for _, id := range peerIDs {
				if fs.Peers[id].State != "" {
					tracked = append(tracked, id)
				}
			}
			if len(tracked) > 0 {
				p.family("rationality_peer_quarantined", "Whether the trust policy currently quarantines the peer: 1 refused, 0 ingesting (active or probation).", "gauge")
				for _, id := range tracked {
					v := "0"
					if fs.Peers[id].State == "quarantined" {
						v = "1"
					}
					p.sample("rationality_peer_quarantined", []promLabel{{"peer", id}}, v)
				}
				p.family("rationality_peer_reputation", "The peer's smoothed reputation in (0, 1) as the trust policy sees it.", "gauge")
				for _, id := range tracked {
					p.sample("rationality_peer_reputation", []promLabel{{"peer", id}}, formatSeconds(fs.Peers[id].Reputation))
				}
				p.family("rationality_peer_refutations_total", "Proven lies charged to the peer: ingest contradictions plus audit refutations.", "counter")
				for _, id := range tracked {
					p.sample("rationality_peer_refutations_total", []promLabel{{"peer", id}}, formatUint(fs.Peers[id].Refutations))
				}
			}
		}
	}

	writeSyncPeers(&p, st.SyncPeers)
	writeGossip(&p, st.Gossip)

	_, err := io.WriteString(w, p.b.String())
	return err
}

// writeGossip renders the epidemic gossip loop's counters: round and
// exchange totals, the in-sync probe count (a converged federation idles
// at inSync ≈ exchanges — the convergence signal), payload bytes by
// direction, the rumor-board gauge and the per-peer exchange view. Absent
// entirely when no gossiper is attached.
func writeGossip(p *promWriter, gs *gossip.Stats) {
	if gs == nil {
		return
	}
	p.counter("rationality_gossip_rounds_total", "Completed gossip rounds.", gs.Rounds)
	p.counter("rationality_gossip_exchanges_total", "Successful push-pull exchanges across all rounds.", gs.Exchanges)
	p.counter("rationality_gossip_exchange_failures_total", "Exchanges that failed (dial, timeout, refused delta); retried against other partners on later rounds.", gs.Failures)
	p.counter("rationality_gossip_in_sync_total", "Exchanges settled by fingerprint agreement alone; a converged federation idles with this tracking exchanges.", gs.InSync)
	p.family("rationality_gossip_records_total", "Records moved by gossip, by direction.", "counter")
	p.sample("rationality_gossip_records_total", []promLabel{{"direction", "sent"}}, formatUint(gs.RecordsSent))
	p.sample("rationality_gossip_records_total", []promLabel{{"direction", "received"}}, formatUint(gs.RecordsReceived))
	p.family("rationality_gossip_payload_bytes_total", "Gossip payload bytes on the wire, by direction.", "counter")
	p.sample("rationality_gossip_payload_bytes_total", []promLabel{{"direction", "sent"}}, formatUint(gs.BytesSent))
	p.sample("rationality_gossip_payload_bytes_total", []promLabel{{"direction", "received"}}, formatUint(gs.BytesReceived))
	p.gauge("rationality_gossip_rumors_pending", "Hot records currently on the rumor board, still being pushed eagerly.", int64(gs.RumorsPending))
	p.gauge("rationality_gossip_fanout", "Partners contacted per round.", int64(gs.Fanout))
	if len(gs.Peers) > 0 {
		p.family("rationality_gossip_peer_exchanges_total", "Successful exchanges per configured gossip peer.", "counter")
		for _, gp := range gs.Peers {
			p.sample("rationality_gossip_peer_exchanges_total", []promLabel{{"peer", gp.Address}}, formatUint(gp.Exchanges))
		}
		p.family("rationality_gossip_peer_failures_total", "Failed exchanges per configured gossip peer.", "counter")
		for _, gp := range gs.Peers {
			p.sample("rationality_gossip_peer_failures_total", []promLabel{{"peer", gp.Address}}, formatUint(gp.Failures))
		}
		p.family("rationality_gossip_peer_skipped_quarantine_total", "Partner selections that passed over the peer because its proven identity is quarantined.", "counter")
		for _, gp := range gs.Peers {
			p.sample("rationality_gossip_peer_skipped_quarantine_total", []promLabel{{"peer", gp.Address}}, formatUint(gp.SkippedQuarantine))
		}
	}
}

// writeSyncPeers renders the resilient sync loop's per-peer breaker view:
// a one-hot state family plus the attempt, failure and skip counters the
// no-dial-storm property is observable through. Peers are labeled by
// configured address — stable from the first round, before any exchange
// has proven which signing identity the address speaks for.
func writeSyncPeers(p *promWriter, peers []service.SyncPeerStats) {
	if len(peers) == 0 {
		return
	}
	p.family("rationality_sync_peer_state", "Sync-loop breaker state per peer, one-hot across healthy/degraded/open.", "gauge")
	for _, sp := range peers {
		for _, state := range []string{service.SyncHealthy, service.SyncDegraded, service.SyncOpen} {
			v := "0"
			if sp.State == state {
				v = "1"
			}
			p.sample("rationality_sync_peer_state", []promLabel{{"peer", sp.Address}, {"state", state}}, v)
		}
	}
	p.family("rationality_sync_peer_backoff_seconds", "Remaining backoff window before the peer is due another attempt (0 when due now).", "gauge")
	for _, sp := range peers {
		p.sample("rationality_sync_peer_backoff_seconds", []promLabel{{"peer", sp.Address}}, formatSeconds(sp.Backoff.Seconds()))
	}
	p.family("rationality_sync_peer_attempts_total", "Pulls actually started against the peer.", "counter")
	for _, sp := range peers {
		p.sample("rationality_sync_peer_attempts_total", []promLabel{{"peer", sp.Address}}, formatUint(sp.Attempts))
	}
	p.family("rationality_sync_peer_failed_total", "Pull attempts against the peer that errored.", "counter")
	for _, sp := range peers {
		p.sample("rationality_sync_peer_failed_total", []promLabel{{"peer", sp.Address}}, formatUint(sp.Failed))
	}
	p.family("rationality_sync_peer_pulled_records_total", "Records applied from the peer by the sync loop.", "counter")
	for _, sp := range peers {
		p.sample("rationality_sync_peer_pulled_records_total", []promLabel{{"peer", sp.Address}}, formatUint(sp.Pulled))
	}
	p.family("rationality_sync_peer_skipped_total", "Rounds that skipped the peer without dialing, by reason: backoff window still open, or quarantined by the trust policy.", "counter")
	for _, sp := range peers {
		p.sample("rationality_sync_peer_skipped_total", []promLabel{{"peer", sp.Address}, {"reason", "backoff"}}, formatUint(sp.SkippedBackoff))
		p.sample("rationality_sync_peer_skipped_total", []promLabel{{"peer", sp.Address}, {"reason", "quarantine"}}, formatUint(sp.SkippedQuarantine))
	}
}

// writeLatencyHistogram renders a log2 latency summary as a native
// Prometheus histogram under the given family name. The service's
// buckets count observations with floor(log2(ns)) == i, so bucket i's
// inclusive upper bound is 2^(i+1)-1 ns — already a cumulative-friendly
// partition: `le` for bucket i is that bound in seconds and the counts
// accumulate across the full LatencyBuckets range (the summary ships a
// trimmed slice; the tail is zeros by construction). The +Inf bucket and
// _count are both the histogram's own total, so the exposition is
// self-consistent even when a racing snapshot caught Count a hair apart
// from the bucket sum; _sum is the summary's Total.
func writeLatencyHistogram(p *promWriter, name, help string, lat service.LatencySummary) {
	p.family(name, help, "histogram")
	var cum uint64
	for i := 0; i < service.LatencyBuckets; i++ {
		if i < len(lat.Buckets) {
			cum += lat.Buckets[i]
		}
		le := formatSeconds(service.LatencyBucketBound(i).Seconds())
		p.sample(name+"_bucket", []promLabel{{"le", le}}, formatUint(cum))
	}
	p.sample(name+"_bucket", []promLabel{{"le", "+Inf"}}, formatUint(cum))
	p.sample(name+"_sum", nil, formatSeconds(lat.Total.Seconds()))
	p.sample(name+"_count", nil, formatUint(cum))
}

// writeAdmission renders the two-tier admission controller's per-class
// counters and configured budgets, labeled by class. Absent entirely
// when no admission budget is configured (the controller is off).
func writeAdmission(p *promWriter, adm *service.AdmissionStats) {
	if adm == nil {
		return
	}
	classes := []struct {
		name string
		c    service.ClassAdmissionStats
	}{
		{string(service.ClassInteractive), adm.Interactive},
		{string(service.ClassBatch), adm.Batch},
	}
	p.family("rationality_admission_admitted_total", "Admission-controller decisions that admitted the request (a whole batch or stream counts once), by class.", "counter")
	for _, cl := range classes {
		p.sample("rationality_admission_admitted_total", []promLabel{{"class", cl.name}}, formatUint(cl.c.Admitted))
	}
	p.family("rationality_admission_shed_total", "Requests refused with 'admission rejected', by class; the batch class always saturates first.", "counter")
	for _, cl := range classes {
		p.sample("rationality_admission_shed_total", []promLabel{{"class", cl.name}}, formatUint(cl.c.Shed))
	}
	p.family("rationality_admission_shed_items_total", "Verification items inside shed requests, by class (a shed N-item batch counts N).", "counter")
	for _, cl := range classes {
		p.sample("rationality_admission_shed_items_total", []promLabel{{"class", cl.name}}, formatUint(cl.c.ShedItems))
	}
	p.family("rationality_admission_rate", "Configured sustained admission rate in items per second, by class (0 means unlimited).", "gauge")
	for _, cl := range classes {
		p.sample("rationality_admission_rate", []promLabel{{"class", cl.name}}, formatSeconds(cl.c.Rate))
	}
	p.family("rationality_admission_burst", "Configured admission burst in items, by class.", "gauge")
	for _, cl := range classes {
		p.sample("rationality_admission_burst", []promLabel{{"class", cl.name}}, strconv.Itoa(cl.c.Burst))
	}
}

// WriteReadyMetrics renders the readiness latch as metrics:
// rationality_ready (1 once every gate is marked) and one
// rationality_ready_gate sample per declared gate. The admin server
// appends this after WriteMetrics so dashboards can plot readiness next
// to traffic; it is exported separately because readiness lives outside
// the service Stats tree.
func WriteReadyMetrics(w io.Writer, r *Readiness) error {
	var p promWriter
	gates, done := r.snapshot()
	ready := "1"
	for _, g := range gates {
		if !done[g] {
			ready = "0"
			break
		}
	}
	p.family("rationality_ready", "Whether every readiness gate has been marked: 1 serves traffic, 0 is warming up.", "gauge")
	p.sample("rationality_ready", nil, ready)
	if len(gates) > 0 {
		p.family("rationality_ready_gate", "Per-gate readiness state: 1 once the named gate has been marked.", "gauge")
		for _, g := range gates {
			v := "0"
			if done[g] {
				v = "1"
			}
			p.sample("rationality_ready_gate", []promLabel{{"gate", g}}, v)
		}
	}
	_, err := io.WriteString(w, p.b.String())
	return err
}
