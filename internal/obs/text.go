package obs

import (
	"fmt"
	"io"
	"math"
	"time"

	"rationality/internal/service"
)

// WriteText renders a Stats snapshot for humans: the exact lines the
// authority's `stats` subcommand prints and the verifier's shutdown
// report ends with. The format is stable — the README's operator guides
// and the CI smoke grep these lines — so changes here are API changes.
func WriteText(w io.Writer, st service.Stats) {
	fmt.Fprintf(w, "requests=%d batches=%d hits=%d misses=%d deduped=%d ingested=%d deltasServed=%d syncRounds=%d\n",
		st.Requests, st.Batches, st.CacheHits, st.CacheMisses, st.Deduplicated,
		st.Ingested, st.DeltasServed, st.SyncRounds)
	fmt.Fprintf(w, "accepted=%d rejected=%d failures=%d peakInFlight=%d cacheEntries=%d workers=%d\n",
		st.Accepted, st.Rejected, st.Failures, st.PeakInFlight, st.CacheEntries, st.Workers)
	if st.CacheShards > 0 {
		fmt.Fprintf(w, "cache: %d shards, per-shard entries %v\n", st.CacheShards, st.ShardEntries)
	}
	if st.Latency.Count > 0 {
		fmt.Fprintf(w, "latency: n=%d mean=%s min=%s max=%s\n",
			st.Latency.Count, st.Latency.Mean, st.Latency.Min, st.Latency.Max)
		fmt.Fprintf(w, "latency: p50<=%s p95<=%s p99<=%s (log2-bucket estimates)\n",
			st.Latency.P50, st.Latency.P95, st.Latency.P99)
	}
	if st.Streams > 0 {
		fmt.Fprintf(w, "streams: n=%d ttfv mean=%s max=%s\n",
			st.Streams, st.StreamTTFV.Mean, st.StreamTTFV.Max)
		fmt.Fprintf(w, "streams: ttfv p50<=%s p95<=%s p99<=%s (log2-bucket estimates)\n",
			st.StreamTTFV.P50, st.StreamTTFV.P95, st.StreamTTFV.P99)
	}
	if a := st.Admission; a != nil {
		fmt.Fprintf(w, "admission: interactive admitted=%d shed=%d shedItems=%d rate=%g burst=%d\n",
			a.Interactive.Admitted, a.Interactive.Shed, a.Interactive.ShedItems, a.Interactive.Rate, a.Interactive.Burst)
		fmt.Fprintf(w, "admission: batch admitted=%d shed=%d shedItems=%d rate=%g burst=%d\n",
			a.Batch.Admitted, a.Batch.Shed, a.Batch.ShedItems, a.Batch.Rate, a.Batch.Burst)
	}
	if p := st.Persistence; p != nil {
		fmt.Fprintf(w, "persistence: persisted=%d replayed=%d ingested=%d dropped=%d failed=%d live=%d garbage=%d\n",
			p.Persisted, p.Replayed, p.Ingested, p.Dropped, p.Failed, p.LiveRecords, p.GarbageRecords)
		fmt.Fprintf(w, "persistence: compactions=%d compactedRecords=%d salvagedBytes=%d\n",
			p.Compactions, p.CompactedRecords, p.SalvagedBytes)
	}
	if st.Audits > 0 || st.AuditRefutations > 0 || st.AuditsShed > 0 || st.IngestRefutations > 0 {
		fmt.Fprintf(w, "accountability: audits=%d auditRefutations=%d auditsShed=%d ingestRefutations=%d\n",
			st.Audits, st.AuditRefutations, st.AuditsShed, st.IngestRefutations)
	}
	if st.CertsCosigned > 0 || st.CertsStored > 0 || st.CertsServed > 0 || st.CertsRejected > 0 {
		fmt.Fprintf(w, "certificates: cosigned=%d stored=%d served=%d rejected=%d\n",
			st.CertsCosigned, st.CertsStored, st.CertsServed, st.CertsRejected)
	}
	if f := st.Federation; f != nil {
		fmt.Fprintf(w, "federation: signer=%s trustedPeers=%d rejectedUnsigned=%d rejectedUnknown=%d rejectedBadSig=%d rejectedCorrupt=%d\n",
			f.Signer, f.TrustedPeers, f.RejectedUnsigned, f.RejectedUnknown, f.RejectedBadSig, f.RejectedCorrupt)
		if f.Quarantined > 0 || f.RejectedQuarantined > 0 {
			fmt.Fprintf(w, "federation: quarantined=%d rejectedQuarantined=%d\n",
				f.Quarantined, f.RejectedQuarantined)
		}
		for _, id := range sortedKeys(f.Peers) {
			p := f.Peers[id]
			fmt.Fprintf(w, "federation: peer %s deltas=%d records=%d rejected=%d\n",
				id, p.Deltas, p.Records, p.Rejected)
			if p.State != "" {
				fmt.Fprintf(w, "federation: trust %s state=%s reputation=%.3f refutations=%d\n",
					id, p.State, p.Reputation, p.Refutations)
			}
		}
	}
	for _, sp := range st.SyncPeers {
		fmt.Fprintf(w, "sync: peer %s state=%s attempts=%d pulled=%d failed=%d skippedBackoff=%d skippedQuarantine=%d\n",
			sp.Address, sp.State, sp.Attempts, sp.Pulled, sp.Failed, sp.SkippedBackoff, sp.SkippedQuarantine)
	}
	if g := st.Gossip; g != nil {
		fmt.Fprintf(w, "gossip: rounds=%d exchanges=%d failures=%d inSync=%d sent=%d received=%d bytesTx=%d bytesRx=%d rumors=%d fanout=%d seed=%d\n",
			g.Rounds, g.Exchanges, g.Failures, g.InSync, g.RecordsSent, g.RecordsReceived,
			g.BytesSent, g.BytesReceived, g.RumorsPending, g.Fanout, g.Seed)
	}
}

// WatchDelta is one row of the live `stats -watch` view: the rates and
// ratios computed between two consecutive Stats snapshots, plus the
// point-in-time gauges from the newer one. Build it with DiffStats.
type WatchDelta struct {
	// Elapsed is the window the rates are normalized over.
	Elapsed time.Duration
	// Requests counts verifications completed inside the window.
	Requests uint64
	// ReqPerSec is the window's per-second rate of admitted requests.
	ReqPerSec float64
	// DedupPerSec is the per-second rate of singleflight followers.
	DedupPerSec float64
	// IngestPerSec is the per-second rate of anti-entropy ingests.
	IngestPerSec float64
	// FedRejectPerSec is the per-second rate of federation rejections,
	// all causes summed.
	FedRejectPerSec float64
	// FailPerSec is the per-second rate of no-verdict failures.
	FailPerSec float64
	// HitRatio is cache hits over requests within the window; NaN when
	// the window saw no requests (rendered as "-").
	HitRatio float64
	// P50 / P99 are the newer snapshot's cumulative latency estimates.
	P50, P99 time.Duration
	// InFlight is the newer snapshot's in-flight request gauge.
	InFlight int64
	// CacheEntries is the newer snapshot's verdict-cache population.
	CacheEntries int
	// LiveRecords is the newer snapshot's on-disk live-key count (zero
	// without persistence).
	LiveRecords uint64
}

// DiffStats computes one watch row from two snapshots taken elapsed
// apart. Counters that moved backwards — a restarted authority — are
// treated as counting from zero, so a watch survives the restart of what
// it is watching instead of printing absurd negative rates.
func DiffStats(prev, cur service.Stats, elapsed time.Duration) WatchDelta {
	sec := elapsed.Seconds()
	if sec <= 0 {
		sec = math.Inf(1) // degenerate window: every rate reads 0
	}
	reqs := counterDelta(prev.Requests, cur.Requests)
	hits := counterDelta(prev.CacheHits, cur.CacheHits)
	d := WatchDelta{
		Elapsed:         elapsed,
		Requests:        reqs,
		ReqPerSec:       float64(reqs) / sec,
		DedupPerSec:     float64(counterDelta(prev.Deduplicated, cur.Deduplicated)) / sec,
		IngestPerSec:    float64(counterDelta(prev.Ingested, cur.Ingested)) / sec,
		FedRejectPerSec: float64(counterDelta(fedRejected(prev), fedRejected(cur))) / sec,
		FailPerSec:      float64(counterDelta(prev.Failures, cur.Failures)) / sec,
		HitRatio:        math.NaN(),
		P50:             cur.Latency.P50,
		P99:             cur.Latency.P99,
		InFlight:        cur.InFlight,
		CacheEntries:    cur.CacheEntries,
	}
	if reqs > 0 {
		d.HitRatio = float64(hits) / float64(reqs)
	}
	if cur.Persistence != nil {
		d.LiveRecords = cur.Persistence.LiveRecords
	}
	return d
}

// counterDelta is cur-prev with restart tolerance: a counter that moved
// backwards restarted at zero, so the window's delta is cur itself.
func counterDelta(prev, cur uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// fedRejected sums a snapshot's federation rejection buckets across all
// causes (zero when federation is off).
func fedRejected(st service.Stats) uint64 {
	f := st.Federation
	if f == nil {
		return 0
	}
	return f.RejectedUnsigned + f.RejectedUnknown + f.RejectedBadSig + f.RejectedCorrupt + f.RejectedQuarantined
}

// WatchHeader is the column header of the watch view; the watch loop
// reprints it periodically, top-style.
func WatchHeader() string {
	return fmt.Sprintf("%9s %6s %8s %8s %8s %7s %11s %11s %6s %7s %7s",
		"req/s", "hit%", "dedup/s", "ingst/s", "fedrej/s", "fail/s", "p50", "p99", "inflt", "cache", "live")
}

// Row renders the delta as one aligned watch line under WatchHeader.
func (d WatchDelta) Row() string {
	hit := "-"
	if !math.IsNaN(d.HitRatio) {
		hit = fmt.Sprintf("%.1f%%", d.HitRatio*100)
	}
	return fmt.Sprintf("%9.1f %6s %8.1f %8.1f %8.1f %7.1f %11s %11s %6d %7d %7d",
		d.ReqPerSec, hit, d.DedupPerSec, d.IngestPerSec, d.FedRejectPerSec, d.FailPerSec,
		watchDuration(d.P50), watchDuration(d.P99), d.InFlight, d.CacheEntries, d.LiveRecords)
}

// watchDuration renders a latency estimate compactly: log2 bucket bounds
// carry sub-nanosecond noise no one reads in a terminal column.
func watchDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Nanosecond).String()
	case d < time.Second:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
