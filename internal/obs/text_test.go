package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"rationality/internal/service"
	"rationality/internal/store"
)

// TestWriteTextStableLines: the human rendering keeps the exact line
// shapes the README documents and the CI smoke greps.
func TestWriteTextStableLines(t *testing.T) {
	var buf bytes.Buffer
	WriteText(&buf, fixtureStats())
	out := buf.String()
	for _, want := range []string{
		"requests=120 batches=3 hits=90 misses=30 deduped=7 ingested=12 deltasServed=4 syncRounds=9",
		"accepted=100 rejected=18 failures=2 peakInFlight=8 cacheEntries=5 workers=4",
		"cache: 4 shards, per-shard entries [2 1 0 2]",
		"persistence: persisted=30 replayed=5 ingested=12 dropped=1 failed=0 live=35 garbage=3",
		"federation: signer=aa11aa11 trustedPeers=2 rejectedUnsigned=1 rejectedUnknown=3 rejectedBadSig=0 rejectedCorrupt=1",
		"federation: quarantined=1 rejectedQuarantined=2",
		"federation: peer bb22bb22 deltas=4 records=12 rejected=2",
		"accountability: audits=10 auditRefutations=3 auditsShed=1 ingestRefutations=2",
		"federation: trust bb22bb22 state=quarantined reputation=0.200 refutations=3",
		"sync: peer 10.0.0.2:7002 state=open attempts=9 pulled=12 failed=5 skippedBackoff=40 skippedQuarantine=2",
		"sync: peer 10.0.0.3:7002 state=healthy attempts=11 pulled=30 failed=0 skippedBackoff=0 skippedQuarantine=0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("text rendering missing line %q\ngot:\n%s", want, out)
		}
	}
	// Peers print in sorted order, so the output is stable run to run.
	if strings.Index(out, "bb22bb22") > strings.Index(out, "evil") {
		t.Error("peer lines not sorted")
	}
}

// TestDiffStatsRates: a two-second window with known counter movement
// produces the expected per-second rates and hit ratio.
func TestDiffStatsRates(t *testing.T) {
	prev := service.Stats{
		Requests: 100, CacheHits: 80, Deduplicated: 4, Ingested: 10, Failures: 2,
		Federation: &service.FederationStats{RejectedUnknown: 3},
	}
	cur := service.Stats{
		Requests: 300, CacheHits: 230, Deduplicated: 8, Ingested: 16, Failures: 2,
		InFlight: 5, CacheEntries: 42,
		Latency:     service.LatencySummary{P50: 2047, P99: 1_048_575},
		Federation:  &service.FederationStats{RejectedUnknown: 3, RejectedBadSig: 7},
		Persistence: &store.Stats{LiveRecords: 19},
	}
	d := DiffStats(prev, cur, 2*time.Second)
	if d.Requests != 200 || d.ReqPerSec != 100 {
		t.Errorf("req rate = %d (%v/s), want 200 (100/s)", d.Requests, d.ReqPerSec)
	}
	if got := d.HitRatio; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("hit ratio = %v, want 0.75", got)
	}
	if d.DedupPerSec != 2 {
		t.Errorf("dedup/s = %v, want 2", d.DedupPerSec)
	}
	if d.IngestPerSec != 3 {
		t.Errorf("ingest/s = %v, want 3", d.IngestPerSec)
	}
	// Rejections across causes: prev total 3, cur total 10 → 3.5/s.
	if d.FedRejectPerSec != 3.5 {
		t.Errorf("fedrej/s = %v, want 3.5", d.FedRejectPerSec)
	}
	if d.FailPerSec != 0 {
		t.Errorf("fail/s = %v, want 0", d.FailPerSec)
	}
	if d.P50 != 2047 || d.P99 != 1_048_575 {
		t.Errorf("p50/p99 = %v/%v", d.P50, d.P99)
	}
	if d.InFlight != 5 || d.CacheEntries != 42 || d.LiveRecords != 19 {
		t.Errorf("gauges = %d/%d/%d", d.InFlight, d.CacheEntries, d.LiveRecords)
	}
}

// TestDiffStatsRestartTolerance: counters that moved backwards mean the
// watched authority restarted; the window counts from zero instead of
// underflowing to absurd rates.
func TestDiffStatsRestartTolerance(t *testing.T) {
	prev := service.Stats{Requests: 1000, CacheHits: 900}
	cur := service.Stats{Requests: 10, CacheHits: 4}
	d := DiffStats(prev, cur, time.Second)
	if d.Requests != 10 || d.ReqPerSec != 10 {
		t.Errorf("post-restart req delta = %d (%v/s), want 10 (10/s)", d.Requests, d.ReqPerSec)
	}
	if math.Abs(d.HitRatio-0.4) > 1e-9 {
		t.Errorf("post-restart hit ratio = %v, want 0.4", d.HitRatio)
	}
}

// TestDiffStatsIdleWindow: no requests in the window renders the hit
// ratio as unknown, not a division by zero.
func TestDiffStatsIdleWindow(t *testing.T) {
	st := service.Stats{Requests: 50, CacheHits: 50}
	d := DiffStats(st, st, time.Second)
	if !math.IsNaN(d.HitRatio) {
		t.Errorf("idle hit ratio = %v, want NaN", d.HitRatio)
	}
	if !strings.Contains(d.Row(), " - ") {
		t.Errorf("idle row should render hit%% as '-': %q", d.Row())
	}
	if d.ReqPerSec != 0 {
		t.Errorf("idle req/s = %v", d.ReqPerSec)
	}
}

// TestWatchRowAlignment: rows line up under the header, column for
// column, so the watch view reads as a table.
func TestWatchRowAlignment(t *testing.T) {
	d := DiffStats(service.Stats{}, fixtureStats(), 2*time.Second)
	header := WatchHeader()
	row := d.Row()
	// Terminal columns are runes, not bytes — durations carry a µ.
	if utf8.RuneCountInString(header) != utf8.RuneCountInString(row) {
		t.Errorf("header/row width mismatch:\n%s\n%s", header, row)
	}
}
