package obs

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rationality/internal/core"
	"rationality/internal/game"
	"rationality/internal/gossip"
	"rationality/internal/identity"
	"rationality/internal/proof"
	"rationality/internal/service"
	"rationality/internal/store"
)

// -update regenerates the golden exposition file from the current
// renderer: go test ./internal/obs -run TestWriteMetricsGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// fixtureStats is a fully populated snapshot: every section present,
// every counter distinct (so a transposed field shows up in the golden
// diff), a trimmed latency histogram, and a peer ID that needs label
// escaping.
func fixtureStats() service.Stats {
	lat := service.LatencySummary{
		Count: 120,
		Mean:  12_345 * time.Nanosecond,
		Total: 1_481_400 * time.Nanosecond,
		Min:   800 * time.Nanosecond,
		Max:   2 * time.Millisecond,
		P50:   2047 * time.Nanosecond,
		P95:   1_048_575 * time.Nanosecond,
		P99:   2 * time.Millisecond,
		// Buckets trimmed after the last populated index (20), the way
		// service.Stats ships them.
		Buckets: []uint64{0, 0, 0, 0, 0, 0, 0, 0, 0, 100, 18, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2},
	}
	return service.Stats{
		Requests:          120,
		Batches:           3,
		CacheHits:         90,
		CacheMisses:       30,
		Deduplicated:      7,
		Ingested:          12,
		DeltasServed:      4,
		SyncRounds:        9,
		IngestRefutations: 2,
		Audits:            10,
		AuditRefutations:  3,
		AuditsShed:        1,
		CertsCosigned:     6,
		CertsStored:       5,
		CertsServed:       13,
		CertsRejected:     2,
		Accepted:          100,
		Rejected:          18,
		Failures:          2,
		InFlight:          1,
		PeakInFlight:      8,
		CacheEntries:      5,
		CacheShards:       4,
		ShardEntries:      []int{2, 1, 0, 2},
		Workers:           4,
		Latency:           lat,
		Streams:           5,
		StreamTTFV: service.LatencySummary{
			Count:   5,
			Mean:    40_000 * time.Nanosecond,
			Total:   200_000 * time.Nanosecond,
			Min:     10_000 * time.Nanosecond,
			Max:     120_000 * time.Nanosecond,
			P50:     32_767 * time.Nanosecond,
			P95:     131_071 * time.Nanosecond,
			P99:     131_071 * time.Nanosecond,
			Buckets: []uint64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 2},
		},
		Admission: &service.AdmissionStats{
			Interactive: service.ClassAdmissionStats{Admitted: 95, Shed: 2, ShedItems: 2, Rate: 200, Burst: 400},
			Batch:       service.ClassAdmissionStats{Admitted: 4, Shed: 3, ShedItems: 6000, Rate: 500, Burst: 1000},
		},
		Persistence: &store.Stats{
			Persisted:        30,
			Replayed:         5,
			Dropped:          1,
			Failed:           0,
			Ingested:         12,
			Compactions:      2,
			CompactedRecords: 9,
			LiveRecords:      35,
			GarbageRecords:   3,
			SalvagedBytes:    128,
		},
		Federation: &service.FederationStats{
			Signer:              "aa11aa11",
			TrustedPeers:        2,
			RejectedUnsigned:    1,
			RejectedUnknown:     3,
			RejectedBadSig:      0,
			RejectedCorrupt:     1,
			RejectedQuarantined: 2,
			Quarantined:         1,
			Peers: map[string]service.PeerSyncStats{
				"bb22bb22": {Deltas: 4, Records: 12, Rejected: 2,
					Refutations: 3, Reputation: 0.2, State: "quarantined"},
				// A hostile peer ID exercising every label escape: quote,
				// backslash, newline.
				"evil\"peer\\one\n": {Deltas: 0, Records: 0, Rejected: 3},
			},
		},
		SyncPeers: []service.SyncPeerStats{
			{
				Address: "10.0.0.2:7002", Signer: "bb22bb22", State: "open",
				ConsecutiveFailures: 3, Backoff: 1500 * time.Millisecond,
				Attempts: 9, Pulled: 12, Failed: 5,
				SkippedBackoff: 40, SkippedQuarantine: 2,
			},
			{Address: "10.0.0.3:7002", State: "healthy", Attempts: 11, Pulled: 30},
		},
		Gossip: &gossip.Stats{
			Rounds:          14,
			Exchanges:       25,
			Failures:        3,
			InSync:          16,
			RecordsSent:     42,
			RecordsReceived: 37,
			BytesSent:       9001,
			BytesReceived:   8002,
			RumorsPending:   2,
			Fanout:          2,
			Seed:            42,
			Peers: []gossip.PeerStats{
				{Address: "10.0.0.2:7002", Signer: "bb22bb22", Exchanges: 13,
					Failures: 1, RecordsSent: 20, RecordsReceived: 17, SkippedQuarantine: 4},
				{Address: "10.0.0.3:7002", Exchanges: 12, Failures: 2,
					RecordsSent: 22, RecordsReceived: 20},
			},
		},
	}
}

// TestWriteMetricsGolden compares the full exposition output against the
// committed golden file: every metric family, HELP/TYPE line, label and
// sample, byte for byte.
func TestWriteMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, "verify-corp", fixtureStats()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition output differs from %s (re-run with -update after intentional changes)\ngot:\n%s", golden, diffFirstLine(buf.Bytes(), want))
	}
}

// diffFirstLine points a failing golden comparison at the first
// mismatching line instead of dumping two full expositions.
func diffFirstLine(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  got:  " + g[i] + "\n  want: " + w[i]
		}
	}
	return "got " + strconv.Itoa(len(g)) + " lines, want " + strconv.Itoa(len(w))
}

// TestWriteMetricsLint re-parses the rendered exposition with the
// promtool-free lint below: well-formed HELP/TYPE for every family,
// legal metric and label names, parseable values, correctly quoted and
// escaped labels, monotone cumulative histogram buckets, and no
// duplicate series.
func TestWriteMetricsLint(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, "verify-corp", fixtureStats()); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, buf.String())
}

// TestWriteMetricsLintLiveService runs the lint over a rendering of a
// real service's stats — persistence and federation enabled, real
// traffic — so the fixture cannot drift from what the service actually
// produces.
func TestWriteMetricsLintLiveService(t *testing.T) {
	key, err := identity.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	peer, err := identity.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{
		ID:          "live",
		PersistPath: t.TempDir(),
		Key:         key,
		PeerKeys:    []identity.PartyID{peer.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ann, err := core.AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.VerifyAnnouncement(context.Background(), ann); err != nil {
			t.Fatal(err)
		}
	}
	// SyncOffer drains the store's async flusher queue, so the snapshot
	// below sees the persisted record deterministically.
	if _, err := svc.SyncOffer(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, "live", svc.Stats()); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, buf.String())
	for _, want := range []string{
		"rationality_requests_total 3",
		"rationality_cache_hits_total 2",
		`rationality_authority_info{id="live",signer="` + string(key.ID()) + `"} 1`,
		`rationality_federation_rejected_total{cause="unknown-signer"} 0`,
		"rationality_store_live_records 1",
	} {
		if !strings.Contains(buf.String(), want+"\n") &&
			!strings.Contains(buf.String(), want+" ") {
			t.Errorf("live exposition missing %q", want)
		}
	}
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// lintExposition is the promtool-free lint: it re-parses the exposition
// text and fails the test on any structural violation.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end with a newline")
	}
	helps := map[string]bool{}
	types := map[string]string{}
	seen := map[string]bool{} // duplicate-series guard: name + sorted labels
	var samples []promSample
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := i + 1
		switch {
		case line == "":
			t.Errorf("line %d: blank line in exposition", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Errorf("line %d: HELP without text: %q", lineNo, line)
			}
			checkMetricName(t, lineNo, name)
			if helps[name] {
				t.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			helps[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Errorf("line %d: TYPE without a type: %q", lineNo, line)
				continue
			}
			checkMetricName(t, lineNo, name)
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown TYPE %q", lineNo, typ)
			}
			if !helps[name] {
				t.Errorf("line %d: TYPE %s precedes its HELP", lineNo, name)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			types[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unrecognized comment %q", lineNo, line)
		default:
			s, err := parseSample(line)
			if err != nil {
				t.Errorf("line %d: %v", lineNo, err)
				continue
			}
			s.line = lineNo
			fam := familyOf(s.name, types)
			if _, ok := types[fam]; !ok {
				t.Errorf("line %d: sample %s has no TYPE line (family %s)", lineNo, s.name, fam)
			}
			if !helps[fam] {
				t.Errorf("line %d: sample %s has no HELP line (family %s)", lineNo, s.name, fam)
			}
			key := seriesKey(s)
			if seen[key] {
				t.Errorf("line %d: duplicate series %s", lineNo, key)
			}
			seen[key] = true
			samples = append(samples, s)
		}
	}
	lintHistograms(t, samples, types)
}

// checkMetricName enforces the exposition's metric-name charset.
func checkMetricName(t *testing.T, line int, name string) {
	t.Helper()
	if name == "" {
		t.Errorf("line %d: empty metric name", line)
		return
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			t.Errorf("line %d: illegal metric name %q", line, name)
			return
		}
	}
}

// parseSample parses `name{labels} value`, validating label quoting and
// escape sequences.
func parseSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && brace < space {
		s.name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, errLint("label without '=' in " + line)
			}
			lname := rest[:eq]
			for i, r := range lname {
				alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
				if !alpha && (i == 0 || r < '0' || r > '9') {
					return s, errLint("illegal label name " + lname)
				}
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, errLint("unquoted label value in " + line)
			}
			rest = rest[1:]
			var val strings.Builder
		scan:
			for {
				if len(rest) == 0 {
					return s, errLint("unterminated label value in " + line)
				}
				switch rest[0] {
				case '\\':
					if len(rest) < 2 {
						return s, errLint("dangling escape in " + line)
					}
					switch rest[1] {
					case '\\', '"':
						val.WriteByte(rest[1])
					case 'n':
						val.WriteByte('\n')
					default:
						return s, errLint("illegal escape \\" + string(rest[1]) + " in " + line)
					}
					rest = rest[2:]
				case '"':
					rest = rest[1:]
					break scan
				case '\n':
					return s, errLint("raw newline in label value of " + line)
				default:
					val.WriteByte(rest[0])
					rest = rest[1:]
				}
			}
			if _, dup := s.labels[lname]; dup {
				return s, errLint("duplicate label " + lname + " in " + line)
			}
			s.labels[lname] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, errLint("malformed label list in " + line)
		}
		if !strings.HasPrefix(rest, " ") {
			return s, errLint("missing space before value in " + line)
		}
		rest = rest[1:]
	} else {
		if space < 0 {
			return s, errLint("sample without value: " + line)
		}
		s.name = rest[:space]
		rest = rest[space+1:]
	}
	v, err := parsePromFloat(rest)
	if err != nil {
		return s, errLint("bad value " + rest + " in " + line)
	}
	s.value = v
	return s, nil
}

// errLint wraps a lint message as an error.
func errLint(msg string) error { return &lintError{msg} }

type lintError struct{ msg string }

func (e *lintError) Error() string { return e.msg }

// parsePromFloat accepts the exposition's value syntax, including +Inf.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf maps a sample name to its metric family: histogram samples
// (_bucket/_sum/_count) belong to the base name their TYPE line declares.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// seriesKey identifies one series: name plus sorted label pairs.
func seriesKey(s promSample) string {
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range sortedKeys(s.labels) {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.labels[k])
	}
	return b.String()
}

// lintHistograms checks every histogram family: le values strictly
// increasing and cumulative counts nondecreasing, the last bucket is
// +Inf, and _count equals the +Inf bucket.
func lintHistograms(t *testing.T, samples []promSample, types map[string]string) {
	t.Helper()
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		lastLE := math.Inf(-1)
		lastCum := -1.0
		infCount := -1.0
		var count, sum float64 = -1, math.NaN()
		buckets := 0
		for _, s := range samples {
			switch s.name {
			case fam + "_bucket":
				le, err := parsePromFloat(s.labels["le"])
				if err != nil {
					t.Errorf("line %d: histogram %s bucket with bad le %q", s.line, fam, s.labels["le"])
					continue
				}
				buckets++
				if le <= lastLE {
					t.Errorf("line %d: histogram %s le %v not increasing (previous %v)", s.line, fam, le, lastLE)
				}
				if s.value < lastCum {
					t.Errorf("line %d: histogram %s cumulative count decreased: %v after %v", s.line, fam, s.value, lastCum)
				}
				lastLE, lastCum = le, s.value
				if math.IsInf(le, 1) {
					infCount = s.value
				}
			case fam + "_count":
				count = s.value
			case fam + "_sum":
				sum = s.value
			}
		}
		if buckets == 0 {
			t.Errorf("histogram %s has no buckets", fam)
			continue
		}
		if infCount < 0 {
			t.Errorf("histogram %s is missing its +Inf bucket", fam)
		}
		if count != infCount {
			t.Errorf("histogram %s: _count %v != +Inf bucket %v", fam, count, infCount)
		}
		if math.IsNaN(sum) {
			t.Errorf("histogram %s is missing _sum", fam)
		}
	}
}

// TestWriteReadyMetrics renders the readiness latch in both states and
// lints the output.
func TestWriteReadyMetrics(t *testing.T) {
	r := NewReadiness(GateWarmStart, GateFirstSync)
	var buf bytes.Buffer
	if err := WriteReadyMetrics(&buf, r); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, buf.String())
	for _, want := range []string{
		"rationality_ready 0",
		`rationality_ready_gate{gate="warm-start"} 0`,
		`rationality_ready_gate{gate="first-sync"} 0`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("not-ready rendering missing %q:\n%s", want, buf.String())
		}
	}
	r.Mark(GateWarmStart)
	r.Mark(GateFirstSync)
	buf.Reset()
	if err := WriteReadyMetrics(&buf, r); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, buf.String())
	for _, want := range []string{
		"rationality_ready 1",
		`rationality_ready_gate{gate="warm-start"} 1`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("ready rendering missing %q:\n%s", want, buf.String())
		}
	}
}
