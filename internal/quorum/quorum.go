// Package quorum is the multi-verifier panel the paper trusts in place of
// any single authority: "the possibility of having several verifiers,
// such that their majority is trusted. The reputation of the verifiers
// can be updated according to the (majority of their) results" (§7). A
// quorum client fans one verification request out to every member
// concurrently, bounds each consultation with its own timeout (a slow or
// dead verifier abstains instead of stalling the panel), and aggregates
// the collected verdicts through the reputation registry's weighted vote:
// each verifier's vote counts in proportion to its earned reputation, and
// every vote moves that reputation — agreement with the quorum builds
// trust, dissent decays it, so a lying verifier is progressively priced
// out of the panel it is lying to.
//
// The result is a quorum-certified verdict plus a dissent report: which
// members disagreed, what they claimed, and where their reputation now
// stands — the audit trail an agent (or an operator deciding whom to stop
// paying) acts on.
//
// The package also carries the anti-entropy client (sync.go): quorum
// members converge on shared verdict history by pulling, from each peer,
// the durable-log records they are missing.
package quorum

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"rationality/internal/core"
	"rationality/internal/reputation"
	"rationality/internal/transport"
)

// DefaultCallTimeout bounds one member's consultation when Config leaves
// CallTimeout zero.
const DefaultCallTimeout = 10 * time.Second

// Member is one verifier on the panel: its reputation identity and the
// client it answers on.
type Member struct {
	// ID keys the verifier in the reputation registry.
	ID string
	// Client reaches the verifier (TCP pool, in-process, …).
	Client transport.Client
}

// Config configures a quorum client.
type Config struct {
	// Members is the panel; at least one is required, an odd count is
	// wise, and IDs must be unique (they key the reputation registry).
	Members []Member
	// Registry records every vote and supplies the weights; required.
	Registry *reputation.Registry
	// CallTimeout bounds each member's consultation; zero means
	// DefaultCallTimeout, negative disables the per-member bound (the
	// caller's context still applies).
	CallTimeout time.Duration
	// Threshold excludes members whose reputation has fallen below it
	// from consultation (0 consults everyone): the paper's exclusion of
	// parties "reported to a reputation system that audits their
	// actions".
	Threshold float64
}

// Client fans verification requests out to a quorum of verifiers and
// majority-votes the answers. Safe for concurrent use.
type Client struct {
	members   []Member
	registry  *reputation.Registry
	timeout   time.Duration
	threshold float64
}

// New validates the panel and builds a quorum client. The member clients
// are borrowed, not owned: closing them remains the caller's job.
func New(cfg Config) (*Client, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("quorum: need at least one member")
	}
	if cfg.Registry == nil {
		return nil, errors.New("quorum: need a reputation registry")
	}
	seen := make(map[string]bool, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.ID == "" || m.Client == nil {
			return nil, fmt.Errorf("quorum: member %q needs an ID and a client", m.ID)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("quorum: duplicate member %q", m.ID)
		}
		seen[m.ID] = true
	}
	timeout := cfg.CallTimeout
	if timeout == 0 {
		timeout = DefaultCallTimeout
	}
	members := append([]Member(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	return &Client{
		members:   members,
		registry:  cfg.Registry,
		timeout:   timeout,
		threshold: cfg.Threshold,
	}, nil
}

// Vote is one member's contribution to a quorum decision.
type Vote struct {
	// VerifierID is the member that answered.
	VerifierID string
	// Verdict is the member's full answer.
	Verdict core.Verdict
	// Reputation is the member's score after this vote was recorded.
	Reputation float64
	// Dissented marks a vote that contradicted the quorum outcome.
	Dissented bool
}

// Result is a quorum-certified verdict with its dissent report.
type Result struct {
	// Accepted is the weighted-majority outcome.
	Accepted bool
	// Verdict is the representative verdict: the answer of the
	// highest-reputation member that voted with the majority (ties broken
	// by ID), so the caller gets the evidence Details of a trusted voter,
	// not a dissenter's.
	Verdict core.Verdict
	// Votes holds every answering member's vote, sorted by VerifierID.
	Votes []Vote
	// Dissents counts votes against the outcome.
	Dissents int
	// Abstained lists members that failed to answer (unreachable, timed
	// out, erred) and therefore neither voted nor moved their reputation,
	// sorted by ID.
	Abstained []string
}

// ErrAllAbstained is returned when no member produced a verdict.
var ErrAllAbstained = errors.New("quorum: every verifier failed to answer")

// Verify fans the request out to every consultable member concurrently,
// collects the verdicts, and weighted-majority-votes them through the
// reputation registry — recording every voter's agreement or dissent, so
// reputations move on each decision. Member failures are abstentions; a
// vote the registry cannot break (reputation.ErrTie) is returned as an
// error wrapping ErrTie with the votes unrecorded.
func (q *Client) Verify(ctx context.Context, req core.VerifyRequest) (*Result, error) {
	msg, err := transport.NewMessage(core.MsgVerify, req)
	if err != nil {
		return nil, err
	}
	consulted := q.consultable()
	if len(consulted) == 0 {
		return nil, fmt.Errorf("quorum: no member meets the reputation threshold %.2f", q.threshold)
	}

	type answer struct {
		id      string
		verdict *core.Verdict
		err     error
	}
	answers := make(chan answer, len(consulted))
	for _, m := range consulted {
		go func(m Member) {
			v, err := q.ask(ctx, m, msg)
			answers <- answer{id: m.ID, verdict: v, err: err}
		}(m)
	}

	verdicts := make(map[string]core.Verdict, len(consulted))
	votes := make(map[string]bool, len(consulted))
	var abstained []string
	for range consulted {
		a := <-answers
		if a.err != nil {
			abstained = append(abstained, a.id)
			// A member that ran out the per-member timeout while the
			// panel's own deadline still stood was unresponsive, and that
			// is worth recording: reputation.ReportUnresponsive is a
			// bounded, half-weight charge (slowness is evidence of flak-
			// iness, not of lying), so a member that repeatedly times out
			// decays toward the consultation threshold instead of keeping
			// a pristine score by never answering. When the caller's own
			// context expired, every member "timed out" — that proves
			// nothing about any of them, so nothing is recorded.
			if ctx.Err() == nil && errors.Is(a.err, context.DeadlineExceeded) {
				q.registry.ReportUnresponsive(a.id,
					fmt.Sprintf("quorum: consultation timed out after %s", q.timeout))
			}
			continue
		}
		verdicts[a.id] = *a.verdict
		votes[a.id] = a.verdict.Accepted
	}
	sort.Strings(abstained)
	if len(votes) == 0 {
		return nil, ErrAllAbstained
	}

	accepted, err := q.registry.WeightedVote(votes)
	if err != nil {
		return nil, fmt.Errorf("quorum: no usable majority among %d votes: %w", len(votes), err)
	}
	return q.assemble(accepted, verdicts, abstained), nil
}

// VerifyAnnouncement is Verify for an inventor's announcement: the quorum
// checks the proof, and a rejection is additionally reported against the
// inventor — the full Fig. 1 accountability loop with the single trusted
// verifier replaced by the panel.
func (q *Client) VerifyAnnouncement(ctx context.Context, ann core.Announcement) (*Result, error) {
	res, err := q.Verify(ctx, core.VerifyRequest{
		Format: ann.Format,
		Game:   ann.Game,
		Advice: ann.Advice,
		Proof:  ann.Proof,
	})
	if err != nil {
		return nil, err
	}
	if !res.Accepted && ann.InventorID != "" {
		q.registry.ReportMisbehaviour(ann.InventorID,
			fmt.Sprintf("quorum of %d verifiers rejected the %s proof (%d dissents)",
				len(res.Votes), ann.Format, res.Dissents))
	}
	return res, nil
}

// consultable filters the panel by the reputation threshold.
func (q *Client) consultable() []Member {
	if q.threshold <= 0 {
		return q.members
	}
	out := make([]Member, 0, len(q.members))
	for _, m := range q.members {
		if q.registry.Trusted(m.ID, q.threshold) {
			out = append(out, m)
		}
	}
	return out
}

// ask runs one member's consultation under the per-member timeout.
func (q *Client) ask(ctx context.Context, m Member, msg transport.Message) (*core.Verdict, error) {
	if q.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.timeout)
		defer cancel()
	}
	resp, err := m.Client.Call(ctx, msg)
	if err != nil {
		return nil, err
	}
	var vr core.VerifyResponse
	if err := resp.Decode(&vr); err != nil {
		return nil, err
	}
	return &vr.Verdict, nil
}

// assemble builds the Result once the registry has recorded the vote:
// per-member votes with post-vote reputations, the dissent count, and the
// representative verdict from the weightiest agreeing member.
func (q *Client) assemble(accepted bool, verdicts map[string]core.Verdict, abstained []string) *Result {
	res := &Result{Accepted: accepted, Abstained: abstained}
	ids := make([]string, 0, len(verdicts))
	for id := range verdicts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	bestRep := -1.0
	for _, id := range ids {
		v := verdicts[id]
		vote := Vote{
			VerifierID: id,
			Verdict:    v,
			Reputation: q.registry.Reputation(id),
			Dissented:  v.Accepted != accepted,
		}
		if vote.Dissented {
			res.Dissents++
		} else if vote.Reputation > bestRep {
			// ids are sorted, so the first of equal-reputation agreeing
			// members wins deterministically.
			bestRep = vote.Reputation
			res.Verdict = v
		}
		res.Votes = append(res.Votes, vote)
	}
	return res
}
