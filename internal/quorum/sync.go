package quorum

import (
	"context"
	"fmt"

	"rationality/internal/service"
	"rationality/internal/store"
	"rationality/internal/transport"
)

// Pull performs one anti-entropy round against a single peer: it offers
// the local service's verdict-log manifest ("sync-offer"), receives the
// framed records the peer holds and the local log lacks ("sync-delta"),
// verifies each record's CRC32C frame, and ingests the survivors —
// newest stamp per key winning — into the local log and cache. It
// returns how many records were applied.
//
// Pull is one direction of the exchange by design: each verifier pulls
// what it is missing on its own cadence (cmd/authority's -peers loop), so
// after every pair has pulled from every other, the quorum's logs agree.
// A failed peer costs the round an error, never local state.
func Pull(ctx context.Context, svc *service.Service, peer transport.Client) (int, error) {
	offer, err := svc.SyncOffer()
	if err != nil {
		return 0, err
	}
	req, err := transport.NewMessage(service.MsgSyncOffer, offer)
	if err != nil {
		return 0, err
	}
	resp, err := peer.Call(ctx, req)
	if err != nil {
		return 0, fmt.Errorf("quorum: sync-offer exchange: %w", err)
	}
	if resp.Type != service.MsgSyncDelta {
		return 0, fmt.Errorf("quorum: peer answered sync-offer with %q, want %q", resp.Type, service.MsgSyncDelta)
	}
	var delta service.SyncDeltaResponse
	if err := resp.Decode(&delta); err != nil {
		return 0, err
	}
	recs, err := store.DecodeRecords(delta.Records)
	if err != nil {
		// A frame that fails its checksum means a corrupt transfer or a
		// misbehaving peer; nothing before the bad frame is trusted
		// either — the peer re-sends the whole delta next round.
		return 0, fmt.Errorf("quorum: delta from %q: %w", delta.VerifierID, err)
	}
	return svc.Ingest(recs)
}
