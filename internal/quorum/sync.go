package quorum

import (
	"context"

	"rationality/internal/service"
	"rationality/internal/transport"
)

// Pull performs one anti-entropy round against a single peer: it offers
// the local service's verdict-log manifest ("sync-offer"), receives the
// framed records the peer holds and the local log lacks ("sync-delta"),
// and hands the reply to the service's federation gate
// (service.IngestDelta), which verifies the delta's Ed25519 signature
// against the peer allowlist, checks each record's CRC32C frame, stamps
// the signer's identity onto the survivors as provenance, and ingests
// them — newest stamp per key winning — into the local log and cache. It
// returns how many records were applied.
//
// Pull is one direction of the exchange by design: each verifier pulls
// what it is missing on its own cadence (cmd/authority's -peers loop), so
// after every pair has pulled from every other, the quorum's logs agree.
// A failed peer — or one whose delta the gate rejects — costs the round
// an error, never local state.
func Pull(ctx context.Context, svc *service.Service, peer transport.Client) (int, error) {
	// The gate rejects before ingest: an unsigned or mis-signed delta (or
	// a corrupt frame — a bad peer or transport, since nothing crashed
	// here) leaves the local log untouched, and the peer re-serves the
	// whole delta next round.
	n, _, err := svc.PullFrom(ctx, peer)
	return n, err
}
