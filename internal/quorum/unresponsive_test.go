package quorum

import (
	"context"
	"errors"
	"testing"
	"time"

	"rationality/internal/reputation"
	"rationality/internal/transport"
)

// slowClient never answers: every call blocks until its context expires,
// exactly how a stalled or partitioned verifier looks on the wire.
type slowClient struct{}

func (slowClient) Call(ctx context.Context, _ transport.Message) (transport.Message, error) {
	<-ctx.Done()
	return transport.Message{}, ctx.Err()
}
func (slowClient) Close() error { return nil }

// A member that repeatedly runs out the per-member timeout is charged as
// unresponsive — bounded, half-weight decay toward the floor, never the
// free abstention a dead-but-blameless member gets on caller cancel.
func TestQuorumChargesUnresponsiveMember(t *testing.T) {
	honest := newPersistedService(t, "honest")
	registry := reputation.NewRegistry()
	q, err := New(Config{
		Members: []Member{
			{ID: "honest", Client: transport.DialInProc(honest)},
			{ID: "stalled", Client: slowClient{}},
		},
		Registry:    registry,
		CallTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		res, err := q.VerifyAnnouncement(ctx, pdAnnouncement(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Abstained) != 1 || res.Abstained[0] != "stalled" {
			t.Fatalf("round %d abstained = %v, want [stalled]", i, res.Abstained)
		}
	}
	if got := registry.Score("stalled").Unresponsive; got != rounds {
		t.Fatalf("Unresponsive count = %d, want %d", got, rounds)
	}
	// The decay is bounded: past the cap the reputation floors at 0.2 —
	// degraded below consultation thresholds, but above where a proven
	// liar lands. Slowness is not evidence of lying.
	floor := reputation.Score{Unresponsive: reputation.UnresponsiveCap}.Reputation()
	if got := registry.Reputation("stalled"); got != floor {
		t.Fatalf("reputation after %d timeouts = %f, want floor %f", rounds, got, floor)
	}
	unresponsiveEvents := 0
	for _, ev := range registry.Events() {
		if ev.Party == "stalled" && ev.Kind == reputation.Unresponsive {
			unresponsiveEvents++
		}
	}
	if unresponsiveEvents != rounds {
		t.Fatalf("recorded %d unresponsive events, want %d", unresponsiveEvents, rounds)
	}
}

// Chaos-injected slowness looks the same as a stalled member: the delay
// outlives the per-member timeout, the member abstains, and the timeout
// is charged against it.
func TestQuorumChargesChaosDelayedMember(t *testing.T) {
	honest := newPersistedService(t, "honest")
	flaky := newPersistedService(t, "flaky")
	registry := reputation.NewRegistry()
	q, err := New(Config{
		Members: []Member{
			{ID: "honest", Client: transport.DialInProc(honest)},
			{ID: "flaky", Client: transport.Chaos(transport.DialInProc(flaky), transport.ChaosConfig{
				Seed:     7,
				Delay:    1, // every call stalled...
				DelayMin: time.Second,
				DelayMax: 2 * time.Second, // ...well past the member timeout
			})},
		},
		Registry:    registry,
		CallTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.VerifyAnnouncement(context.Background(), pdAnnouncement(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("result = %+v, want acceptance from the honest member", res)
	}
	if len(res.Abstained) != 1 || res.Abstained[0] != "flaky" {
		t.Fatalf("abstained = %v, want [flaky]", res.Abstained)
	}
	if got := registry.Score("flaky").Unresponsive; got != 1 {
		t.Fatalf("Unresponsive count = %d, want 1", got)
	}
}

// When the caller's own deadline expires, every member "times out" — that
// proves nothing about any of them, so nothing is charged.
func TestQuorumCallerCancelChargesNobody(t *testing.T) {
	registry := reputation.NewRegistry()
	q, err := New(Config{
		Members:     []Member{{ID: "stalled", Client: slowClient{}}},
		Registry:    registry,
		CallTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := q.VerifyAnnouncement(ctx, pdAnnouncement(t)); !errors.Is(err, ErrAllAbstained) {
		t.Fatalf("err = %v, want ErrAllAbstained", err)
	}
	if got := registry.Score("stalled").Unresponsive; got != 0 {
		t.Fatalf("caller cancel charged the member %d times; silence under a dead caller proves nothing", got)
	}
}
