package quorum

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/service"
	"rationality/internal/transport"
)

// Certifier is the CoSi-style coordinator: it runs the panel fan-out once
// — a cosign request to every member — collects each member's Ed25519
// signature over the canonical verdict digest, and assembles a
// core.Certificate any client verifies offline against the known panel
// keyset. Where the quorum Client's Result is the live panel's word (the
// caller must trust the coordinator's report of the vote), a Certificate
// is self-proving: the co-signatures are checkable by anyone holding the
// keyset, with zero live panel members.
type Certifier struct {
	members   []Member
	keyset    []identity.PartyID
	index     map[identity.PartyID]int
	threshold int
	timeout   time.Duration
}

// CertifierConfig configures a certificate coordinator.
type CertifierConfig struct {
	// Members is the panel to fan cosign requests out to; at least one is
	// required. Member IDs are display names for errors — the identities
	// that matter are the Ed25519 signers in Keyset.
	Members []Member
	// Keyset is the ordered panel keyset: the Ed25519 party IDs whose
	// co-signatures certificates carry, in the exact order every verifying
	// client configures (the certificate bitmap indexes this slice).
	// Required, and members answering with a signer outside it are
	// discarded as keyset mismatches.
	Keyset []identity.PartyID
	// Threshold is the minimum co-signature count for an assembled
	// certificate; zero means core.SupermajorityThreshold(len(Keyset)).
	Threshold int
	// CallTimeout bounds each member's consultation; zero means
	// DefaultCallTimeout, negative disables the per-member bound.
	CallTimeout time.Duration
}

// ErrCertification is the base error for a fan-out that could not produce
// a certificate: too few co-signatures for the threshold, or members that
// could not agree on one verdict.
var ErrCertification = errors.New("quorum: certification failed")

// NewCertifier validates the panel and keyset and builds a coordinator.
// The member clients are borrowed, not owned, exactly as in New.
func NewCertifier(cfg CertifierConfig) (*Certifier, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("quorum: certifier needs at least one member")
	}
	if len(cfg.Keyset) == 0 {
		return nil, errors.New("quorum: certifier needs the ordered panel keyset")
	}
	for _, m := range cfg.Members {
		if m.ID == "" || m.Client == nil {
			return nil, fmt.Errorf("quorum: certifier member %q needs an ID and a client", m.ID)
		}
	}
	c := &Certifier{
		members:   append([]Member(nil), cfg.Members...),
		threshold: cfg.Threshold,
		timeout:   cfg.CallTimeout,
	}
	if c.timeout == 0 {
		c.timeout = DefaultCallTimeout
	}
	if c.threshold <= 0 {
		c.threshold = core.SupermajorityThreshold(len(cfg.Keyset))
	}
	c.index = make(map[identity.PartyID]int, len(cfg.Keyset))
	for i, pk := range cfg.Keyset {
		canonical, err := identity.ParsePartyID(string(pk))
		if err != nil {
			return nil, fmt.Errorf("quorum: certifier keyset[%d]: %w", i, err)
		}
		if _, dup := c.index[canonical]; dup {
			return nil, fmt.Errorf("quorum: certifier keyset[%d]: duplicate panel key %s", i, canonical)
		}
		c.keyset = append(c.keyset, canonical)
		c.index[canonical] = i
	}
	return c, nil
}

// Threshold reports the co-signature count Certify requires.
func (c *Certifier) Threshold() int { return c.threshold }

// cosignature is one validated member answer, keyed into the panel.
type cosignature struct {
	slot int // index into the keyset
	sig  []byte
}

// Certify fans the request out to every panel member concurrently,
// validates each returned co-signature — the claimed signer must be in
// the keyset, must not have signed already, and the signature must verify
// over the canonical digest of the member's own verdict — and assembles a
// core.Certificate from the verdict that gathered at least Threshold
// valid co-signatures. Members that fail, time out, answer with a signer
// outside the keyset, or sign a digest that does not verify are simply
// not in the certificate; if no verdict reaches the threshold, Certify
// reports what fell short with an error wrapping ErrCertification.
func (c *Certifier) Certify(ctx context.Context, req core.VerifyRequest) (*core.Certificate, error) {
	msg, err := transport.NewMessage(service.MsgCoSign, service.CoSignRequest{Request: req})
	if err != nil {
		return nil, err
	}
	key := identity.DigestBytes([]byte(req.Format), req.Game, req.Advice, req.Proof)

	answers := make(chan *service.CoSignResponse, len(c.members))
	for _, m := range c.members {
		go func(m Member) {
			resp, err := c.ask(ctx, m, msg)
			if err != nil {
				answers <- nil
				return
			}
			answers <- resp
		}(m)
	}

	// Group validated co-signatures by canonical verdict JSON: members
	// must co-sign the *same* verdict, and the digest each one signed is
	// bound to its own verdict bytes, so grouping by those bytes keeps
	// signature and verdict consistent by construction.
	type tally struct {
		verdict core.Verdict
		sigs    map[int][]byte // keyset slot -> signature (dedupes signers)
	}
	tallies := make(map[string]*tally)
	for range c.members {
		resp := <-answers
		if resp == nil || resp.Key != key.String() {
			continue // abstention, or a member answering for the wrong request
		}
		slot, ok := c.index[resp.Signer]
		if !ok {
			continue // keyset mismatch: a signer the clients would not accept
		}
		verdictJSON, err := json.Marshal(resp.Verdict)
		if err != nil {
			continue
		}
		digest := identity.CertificateDigest(key, verdictJSON)
		if identity.Verify(resp.Signer, digest, resp.Signature) != nil {
			continue // signature over the wrong digest, or forged
		}
		tl := tallies[string(verdictJSON)]
		if tl == nil {
			tl = &tally{verdict: resp.Verdict, sigs: make(map[int][]byte)}
			tallies[string(verdictJSON)] = tl
		}
		// A duplicate signer keeps its first valid signature: one panel
		// member is one bitmap bit, however often it answers.
		if _, dup := tl.sigs[slot]; !dup {
			tl.sigs[slot] = resp.Signature
		}
	}

	var winner *tally
	best := 0
	for _, tl := range tallies {
		if len(tl.sigs) > best {
			winner, best = tl, len(tl.sigs)
		}
	}
	if winner == nil || best < c.threshold {
		return nil, fmt.Errorf("%w: %d valid co-signatures over one verdict from a panel of %d, need %d",
			ErrCertification, best, len(c.keyset), c.threshold)
	}

	slots := make([]int, 0, len(winner.sigs))
	for slot := range winner.sigs {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	cert := &core.Certificate{
		Key:     key.String(),
		Verdict: winner.verdict,
		Panel:   make([]byte, (len(c.keyset)+7)/8),
		Sigs:    make([][]byte, 0, len(slots)),
	}
	for _, slot := range slots {
		cert.Panel[slot/8] |= 1 << (slot % 8)
		cert.Sigs = append(cert.Sigs, winner.sigs[slot])
	}
	// Self-check before handing the certificate out: assembly bugs must
	// fail the coordinator, never a client.
	if err := cert.Verify(c.keyset, c.threshold); err != nil {
		return nil, fmt.Errorf("quorum: assembled certificate failed self-verification: %w", err)
	}
	return cert, nil
}

// ask runs one member's cosign consultation under the per-member timeout.
func (c *Certifier) ask(ctx context.Context, m Member, msg transport.Message) (*service.CoSignResponse, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	resp, err := m.Client.Call(ctx, msg)
	if err != nil {
		return nil, err
	}
	var cr service.CoSignResponse
	if err := resp.Decode(&cr); err != nil {
		return nil, err
	}
	return &cr, nil
}
