package quorum

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/service"
	"rationality/internal/transport"
)

// keyedService starts a persisted, keyed verification authority and
// returns it with its signing identity.
func keyedService(t *testing.T, id string) (*service.Service, identity.PartyID) {
	t.Helper()
	key, err := identity.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{ID: id, PersistPath: t.TempDir(), Key: key})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc, key.ID()
}

// certPanel builds an n-member keyed panel plus its ordered keyset and a
// ready certifier.
func certPanel(t *testing.T, n int) ([]*service.Service, []identity.PartyID, *Certifier) {
	t.Helper()
	services := make([]*service.Service, n)
	keyset := make([]identity.PartyID, n)
	members := make([]Member, n)
	for i := range services {
		id := string(rune('a' + i))
		services[i], keyset[i] = keyedService(t, "panel-"+id)
		members[i] = Member{ID: "panel-" + id, Client: transport.DialInProc(services[i])}
	}
	cert, err := NewCertifier(CertifierConfig{Members: members, Keyset: keyset})
	if err != nil {
		t.Fatal(err)
	}
	return services, keyset, cert
}

func verifyRequestOf(t *testing.T, ann core.Announcement) core.VerifyRequest {
	t.Helper()
	return core.VerifyRequest{Format: ann.Format, Game: ann.Game, Advice: ann.Advice, Proof: ann.Proof}
}

// TestCertifyEndToEnd is the tentpole path: a three-member keyed panel
// co-signs one verdict, the assembled certificate verifies offline
// against the keyset alone, persists at a fourth non-panel authority, and
// is served back by one request — no live panel member involved.
func TestCertifyEndToEnd(t *testing.T) {
	panel, keyset, certifier := certPanel(t, 3)
	req := verifyRequestOf(t, pdAnnouncement(t))

	cert, err := certifier.Certify(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Verdict.Accepted {
		t.Fatalf("panel rejected an honest proof: %+v", cert.Verdict)
	}
	// Offline verification: keyset only, no clients.
	if err := cert.Verify(keyset, 0); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
	signers, err := cert.CoSigners(keyset)
	if err != nil {
		t.Fatal(err)
	}
	if len(signers) != 3 {
		t.Fatalf("co-signers = %d, want the full panel of 3", len(signers))
	}
	for _, svc := range panel {
		if got := svc.Stats().CertsCosigned; got != 1 {
			t.Fatalf("member co-sign counter = %d, want 1", got)
		}
	}

	// A fourth authority — configured with the panel keyset but not on the
	// panel — accepts the certificate and serves it from its cache.
	archive, err := service.New(service.Config{
		ID: "archive", PersistPath: t.TempDir(), PanelKeys: keyset,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer archive.Close()
	if err := archive.StoreCertificate(cert); err != nil {
		t.Fatal(err)
	}
	key, err := cert.KeyHash()
	if err != nil {
		t.Fatal(err)
	}
	served, found, err := archive.Certificate(key)
	if err != nil || !found {
		t.Fatalf("certificate not served back: found=%v err=%v", found, err)
	}
	if err := served.Verify(keyset, 0); err != nil {
		t.Fatalf("served certificate failed offline verification: %v", err)
	}
	st := archive.Stats()
	if st.CertsStored != 1 || st.CertsServed != 1 {
		t.Fatalf("archive cert counters = stored %d served %d, want 1/1", st.CertsStored, st.CertsServed)
	}
}

// TestCertifyDuplicateSigner wires the same keyed member behind two panel
// seats: its answers count as one signer, so a 3-seat panel with only 2
// distinct keys cannot reach the 3-signature supermajority.
func TestCertifyDuplicateSigner(t *testing.T) {
	svcA, idA := keyedService(t, "dup-a")
	svcB, idB := keyedService(t, "dup-b")
	stranger, err := identity.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	keyset := []identity.PartyID{idA, idB, stranger.ID()}
	certifier, err := NewCertifier(CertifierConfig{
		Members: []Member{
			{ID: "a", Client: transport.DialInProc(svcA)},
			{ID: "a-again", Client: transport.DialInProc(svcA)},
			{ID: "b", Client: transport.DialInProc(svcB)},
		},
		Keyset: keyset,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = certifier.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if !errors.Is(err, ErrCertification) {
		t.Fatalf("duplicate signer reached threshold: %v", err)
	}
	if !strings.Contains(err.Error(), "2 valid co-signatures") {
		t.Fatalf("duplicate co-signature not deduplicated: %v", err)
	}
}

// TestCertifyBelowThreshold fails enough members that the survivors
// cannot reach the supermajority.
func TestCertifyBelowThreshold(t *testing.T) {
	svc, id := keyedService(t, "lonely")
	stranger1, _ := identity.NewKeyPair()
	stranger2, _ := identity.NewKeyPair()
	certifier, err := NewCertifier(CertifierConfig{
		Members: []Member{
			{ID: "lonely", Client: transport.DialInProc(svc)},
			{ID: "down-1", Client: failingClient{}},
			{ID: "down-2", Client: failingClient{}},
		},
		Keyset: []identity.PartyID{id, stranger1.ID(), stranger2.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = certifier.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if !errors.Is(err, ErrCertification) {
		t.Fatalf("1-of-3 produced a certificate: %v", err)
	}
}

// wrongDigestHandler relays cosign responses but replaces the signature
// with one over unrelated bytes — a member that signs the wrong digest.
type wrongDigestHandler struct {
	inner transport.Handler
	key   *identity.KeyPair
}

func (w wrongDigestHandler) Handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	resp, err := w.inner.Handle(ctx, req)
	if err != nil || req.Type != service.MsgCoSign {
		return resp, err
	}
	var cr service.CoSignResponse
	if err := resp.Decode(&cr); err != nil {
		return transport.Message{}, err
	}
	cr.Signature = w.key.Sign([]byte("the wrong digest entirely"))
	return transport.NewMessage(service.MsgCoSigned, cr)
}

// TestCertifyWrongDigestSignature rejects a co-signature over the wrong
// bytes even though the signing key is a legitimate panel member's.
func TestCertifyWrongDigestSignature(t *testing.T) {
	services, keyset, _ := certPanel(t, 3)
	badKey, err := identity.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	certifier, err := NewCertifier(CertifierConfig{
		Members: []Member{
			{ID: "good-a", Client: transport.DialInProc(services[0])},
			{ID: "good-b", Client: transport.DialInProc(services[1])},
			{ID: "bad", Client: transport.DialInProc(wrongDigestHandler{inner: services[2], key: badKey})},
		},
		Keyset: keyset,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = certifier.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if !errors.Is(err, ErrCertification) {
		t.Fatalf("wrong-digest signature counted toward the threshold: %v", err)
	}
	if !strings.Contains(err.Error(), "2 valid co-signatures") {
		t.Fatalf("expected exactly the two honest co-signatures to survive: %v", err)
	}
}

// TestCertifyKeysetMismatch runs a panel whose third member signs with a
// key outside the configured keyset: its (valid) co-signature is
// discarded, because no offline client could ever check it.
func TestCertifyKeysetMismatch(t *testing.T) {
	services, keyset, _ := certPanel(t, 3)
	outsider, outsiderID := keyedService(t, "outsider")
	certifier, err := NewCertifier(CertifierConfig{
		Members: []Member{
			{ID: "good-a", Client: transport.DialInProc(services[0])},
			{ID: "good-b", Client: transport.DialInProc(services[1])},
			{ID: "outsider", Client: transport.DialInProc(outsider)},
		},
		Keyset: keyset, // outsiderID is NOT in here
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = certifier.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if !errors.Is(err, ErrCertification) {
		t.Fatalf("keyset-mismatched signer counted toward the threshold: %v", err)
	}

	// With an explicit threshold of 2 the two in-keyset members suffice —
	// and the assembled certificate must not mention the outsider.
	certifier2, err := NewCertifier(CertifierConfig{
		Members: []Member{
			{ID: "good-a", Client: transport.DialInProc(services[0])},
			{ID: "good-b", Client: transport.DialInProc(services[1])},
			{ID: "outsider", Client: transport.DialInProc(outsider)},
		},
		Keyset:    keyset,
		Threshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := certifier2.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if err != nil {
		t.Fatal(err)
	}
	signers, err := cert.CoSigners(keyset)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range signers {
		if s == outsiderID {
			t.Fatal("outsider's signature leaked into the certificate")
		}
	}
	if err := cert.Verify(keyset, 2); err != nil {
		t.Fatalf("2-of-3 certificate failed offline verification: %v", err)
	}
}

// TestCertificateRejectedAtStore submits tampered certificates to an
// authority configured with the panel keyset: a flipped verdict byte and
// a forged panel bitmap are both refused with the documented
// "certificate rejected:" error and counted.
func TestCertificateRejectedAtStore(t *testing.T) {
	_, keyset, certifier := certPanel(t, 3)
	cert, err := certifier.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if err != nil {
		t.Fatal(err)
	}
	archive, err := service.New(service.Config{
		ID: "archive", PersistPath: t.TempDir(), PanelKeys: keyset,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer archive.Close()

	flipped := *cert
	flipped.Verdict.Accepted = !flipped.Verdict.Accepted
	if err := archive.StoreCertificate(&flipped); !errors.Is(err, core.ErrCertificateRejected) {
		t.Fatalf("tampered verdict stored: %v", err)
	}
	forged := *cert
	forged.Panel = append([]byte(nil), cert.Panel...)
	forged.Panel[0] ^= 1 << 1 // claim a different co-signer set
	if err := archive.StoreCertificate(&forged); !errors.Is(err, core.ErrCertificateRejected) {
		t.Fatalf("forged bitmap stored: %v", err)
	}
	if got := archive.Stats().CertsRejected; got != 2 {
		t.Fatalf("certsRejected = %d, want 2", got)
	}
	// The untampered original still lands.
	if err := archive.StoreCertificate(cert); err != nil {
		t.Fatal(err)
	}
}

// TestIngestStripsBadCertificate sends a record whose carried certificate
// fails keyset verification through the ingest gate: the verdict merges,
// the certificate does not survive, and the rejection is counted.
func TestIngestStripsBadCertificate(t *testing.T) {
	_, keyset, certifier := certPanel(t, 3)
	cert, err := certifier.Certify(context.Background(), verifyRequestOf(t, pdAnnouncement(t)))
	if err != nil {
		t.Fatal(err)
	}
	cert.Verdict.Reason = "tampered after signing"
	source, err := service.New(service.Config{ID: "source", PersistPath: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	if err := source.StoreCertificate(cert); err != nil {
		t.Fatal(err) // unkeyed authority: stores it blind
	}

	sink, err := service.New(service.Config{
		ID: "sink", PersistPath: t.TempDir(), PanelKeys: keyset,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if _, _, err := sink.PullFrom(context.Background(), transport.DialInProc(source)); err != nil {
		t.Fatal(err)
	}
	key, err := cert.KeyHash()
	if err != nil {
		t.Fatal(err)
	}
	if _, found, _ := sink.Certificate(key); found {
		t.Fatal("tampered certificate survived the ingest gate")
	}
	if got := sink.Stats().CertsRejected; got != 1 {
		t.Fatalf("certsRejected = %d, want 1", got)
	}
}
