package quorum

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rationality/internal/core"
	"rationality/internal/game"
	"rationality/internal/proof"
	"rationality/internal/reputation"
	"rationality/internal/service"
	"rationality/internal/transport"
)

// flipHandler wraps an honest verifier and lies on the wire: every
// verify reply's verdict is inverted. The verifier behind it still
// computes (and persists) honest verdicts — the paper's lying verifier
// is dishonest in what it reports, which is all an agent can observe.
type flipHandler struct {
	inner transport.Handler
}

func (f flipHandler) Handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	resp, err := f.inner.Handle(ctx, req)
	if err != nil || req.Type != core.MsgVerify {
		return resp, err
	}
	var vr core.VerifyResponse
	if err := resp.Decode(&vr); err != nil {
		return transport.Message{}, err
	}
	vr.Verdict.Accepted = !vr.Verdict.Accepted
	if vr.Verdict.Accepted {
		vr.Verdict.Reason = ""
	} else {
		vr.Verdict.Reason = "rejected"
	}
	return transport.NewMessage("verdict", vr)
}

// failingClient abstains by construction: every call errors.
type failingClient struct{}

func (failingClient) Call(context.Context, transport.Message) (transport.Message, error) {
	return transport.Message{}, errors.New("unreachable")
}
func (failingClient) Close() error { return nil }

func pdAnnouncement(t testing.TB) core.Announcement {
	t.Helper()
	ann, err := core.AnnounceEnumeration("honest-inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

func forgedAnnouncement(t testing.TB) core.Announcement {
	t.Helper()
	ann, err := core.AnnounceEnumerationForged("shady-inventor", game.PrisonersDilemma(), game.Profile{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

func newPersistedService(t *testing.T, id string) *service.Service {
	t.Helper()
	svc, err := service.New(service.Config{ID: id, PersistPath: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

// liveCount reads a service's durable-log live-record count.
func liveCount(t *testing.T, svc *service.Service) uint64 {
	t.Helper()
	st := svc.Stats()
	if st.Persistence == nil {
		t.Fatal("service has no persistence stats")
	}
	return st.Persistence.LiveRecords
}

// The acceptance scenario: three verifiers, one of them lying, decide on
// honest and forged proofs; the majority matches ground truth both ways,
// the liar's reputation strictly decreases on every decision, and one
// anti-entropy round leaves all three durable logs with the same live
// record count.
func TestThreeVerifiersOneLiar(t *testing.T) {
	services := []*service.Service{
		newPersistedService(t, "verify-a"),
		newPersistedService(t, "verify-b"),
		newPersistedService(t, "liar"),
	}
	registry := reputation.NewRegistry()
	q, err := New(Config{
		Members: []Member{
			{ID: "verify-a", Client: transport.DialInProc(services[0])},
			{ID: "verify-b", Client: transport.DialInProc(services[1])},
			{ID: "liar", Client: transport.DialInProc(flipHandler{inner: services[2]})},
		},
		Registry: registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Honest proof: ground truth is acceptance; the liar claims rejection.
	repBefore := registry.Reputation("liar")
	res, err := q.VerifyAnnouncement(ctx, pdAnnouncement(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("quorum rejected an honest proof")
	}
	if res.Dissents != 1 || len(res.Votes) != 3 || len(res.Abstained) != 0 {
		t.Fatalf("dissent report = %d dissents, %d votes, %v abstained; want 1/3/none",
			res.Dissents, len(res.Votes), res.Abstained)
	}
	if !res.Verdict.Accepted {
		t.Fatalf("representative verdict = %+v, want an accepting one", res.Verdict)
	}
	repAfter := registry.Reputation("liar")
	if repAfter >= repBefore {
		t.Fatalf("liar reputation %f -> %f, want a strict decrease", repBefore, repAfter)
	}
	for _, id := range []string{"verify-a", "verify-b"} {
		if registry.Reputation(id) <= 0.5 {
			t.Errorf("honest %s at %f, want > 0.5", id, registry.Reputation(id))
		}
	}
	for _, v := range res.Votes {
		if (v.VerifierID == "liar") != v.Dissented {
			t.Errorf("vote %s: dissented=%v", v.VerifierID, v.Dissented)
		}
	}

	// Forged proof: ground truth is rejection; the liar flips to acceptance.
	repBefore = repAfter
	res, err = q.VerifyAnnouncement(ctx, forgedAnnouncement(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("quorum accepted a forged proof")
	}
	if res.Dissents != 1 {
		t.Fatalf("dissents = %d, want 1 (the liar)", res.Dissents)
	}
	if repAfter = registry.Reputation("liar"); repAfter >= repBefore {
		t.Fatalf("liar reputation %f -> %f, want a strict decrease", repBefore, repAfter)
	}
	// The rejected inventor was reported to the reputation system.
	if registry.Reputation("shady-inventor") >= 0.5 {
		t.Errorf("shady inventor at %f, want < 0.5", registry.Reputation("shady-inventor"))
	}

	// Skew the histories: extra verdicts only the first verifier has. The
	// cache key is content-addressed over the raw bytes, so a JSON field
	// the game parser ignores still makes each a distinct record.
	for i := 0; i < 4; i++ {
		ann := pdAnnouncement(t)
		ann.Game = append(append([]byte(nil), ann.Game[:len(ann.Game)-1]...), []byte(fmt.Sprintf(`,"skew":%d}`, i))...)
		if _, err := services[0].VerifyAnnouncement(ctx, ann); err != nil {
			t.Fatal(err)
		}
	}
	// Appends are asynchronous, so counting via SyncOffer — whose manifest
	// snapshot runs behind the flusher's queue drain — is deterministic
	// where a bare Stats() read would race the flusher.
	counts := func() []int {
		out := make([]int, len(services))
		for i, svc := range services {
			offer, err := svc.SyncOffer()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = len(offer.Have)
		}
		return out
	}
	before := counts()
	if before[0] == before[1] {
		t.Fatalf("histories not skewed before anti-entropy: %v", before)
	}

	// One full anti-entropy round: every member pulls from every other.
	for i, dst := range services {
		for j, src := range services {
			if i == j {
				continue
			}
			if _, err := Pull(ctx, dst, transport.DialInProc(src)); err != nil {
				t.Fatalf("pull %d<-%d: %v", i, j, err)
			}
		}
	}
	after := counts()
	if after[0] != after[1] || after[1] != after[2] {
		t.Fatalf("live record counts diverge after one round: %v", after)
	}
	if after[0] < before[0] {
		t.Fatalf("anti-entropy lost records: %v -> %v", before, after)
	}
	// The operator-facing stats agree: by now every flusher has drained
	// (each service served or ran a sync command), so the Stats read is
	// no longer racing the append queue.
	for i, svc := range services {
		if got := liveCount(t, svc); got != uint64(after[i]) {
			t.Errorf("service %d Stats live = %d, manifest = %d", i, got, after[i])
		}
	}
}

// A dead member abstains; the survivors still form a quorum.
func TestQuorumToleratesAbstention(t *testing.T) {
	svcA := newPersistedService(t, "a")
	svcB := newPersistedService(t, "b")
	registry := reputation.NewRegistry()
	q, err := New(Config{
		Members: []Member{
			{ID: "a", Client: transport.DialInProc(svcA)},
			{ID: "b", Client: transport.DialInProc(svcB)},
			{ID: "dead", Client: failingClient{}},
		},
		Registry:    registry,
		CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.VerifyAnnouncement(context.Background(), pdAnnouncement(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || len(res.Votes) != 2 {
		t.Fatalf("result = %+v, want acceptance on 2 votes", res)
	}
	if len(res.Abstained) != 1 || res.Abstained[0] != "dead" {
		t.Fatalf("abstained = %v, want [dead]", res.Abstained)
	}
	// Abstention is not dissent: the dead member's reputation is untouched.
	if registry.Reputation("dead") != 0.5 {
		t.Errorf("dead member reputation moved to %f", registry.Reputation("dead"))
	}
}

// Every member failing is an error, not a verdict.
func TestQuorumAllAbstained(t *testing.T) {
	q, err := New(Config{
		Members:  []Member{{ID: "dead", Client: failingClient{}}},
		Registry: reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.VerifyAnnouncement(context.Background(), pdAnnouncement(t)); !errors.Is(err, ErrAllAbstained) {
		t.Fatalf("err = %v, want ErrAllAbstained", err)
	}
}

// An even, equal-weight split surfaces the registry's ErrTie.
func TestQuorumTieSurfaces(t *testing.T) {
	honest := newPersistedService(t, "honest")
	liarBase := newPersistedService(t, "liar")
	q, err := New(Config{
		Members: []Member{
			{ID: "honest", Client: transport.DialInProc(honest)},
			{ID: "liar", Client: transport.DialInProc(flipHandler{inner: liarBase})},
		},
		Registry: reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.VerifyAnnouncement(context.Background(), pdAnnouncement(t)); !errors.Is(err, reputation.ErrTie) {
		t.Fatalf("err = %v, want reputation.ErrTie", err)
	}
}

// Once a member's reputation falls below the threshold it is no longer
// consulted — the paper's exclusion of audited misbehavers.
func TestQuorumThresholdExcludesDecayedMember(t *testing.T) {
	services := []*service.Service{
		newPersistedService(t, "verify-a"),
		newPersistedService(t, "verify-b"),
		newPersistedService(t, "liar"),
	}
	registry := reputation.NewRegistry()
	q, err := New(Config{
		Members: []Member{
			{ID: "verify-a", Client: transport.DialInProc(services[0])},
			{ID: "verify-b", Client: transport.DialInProc(services[1])},
			{ID: "liar", Client: transport.DialInProc(flipHandler{inner: services[2]})},
		},
		Registry:  registry,
		Threshold: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := q.VerifyAnnouncement(ctx, pdAnnouncement(t)); err != nil {
		t.Fatal(err)
	}
	// One dissent put the liar at 1/3 < 0.4: the next decision runs
	// without it.
	res, err := q.VerifyAnnouncement(ctx, forgedAnnouncement(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Votes) != 2 || res.Dissents != 0 {
		t.Fatalf("votes = %d, dissents = %d; want 2 votes, 0 dissents (liar excluded)",
			len(res.Votes), res.Dissents)
	}
}

func TestNewValidation(t *testing.T) {
	reg := reputation.NewRegistry()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no members", Config{Registry: reg}},
		{"no registry", Config{Members: []Member{{ID: "a", Client: failingClient{}}}}},
		{"empty member ID", Config{Members: []Member{{Client: failingClient{}}}, Registry: reg}},
		{"nil member client", Config{Members: []Member{{ID: "a"}}, Registry: reg}},
		{"duplicate member", Config{Members: []Member{
			{ID: "a", Client: failingClient{}}, {ID: "a", Client: failingClient{}},
		}, Registry: reg}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Error("config accepted")
			}
		})
	}
}
