package quorum

import (
	"context"
	"fmt"
	"testing"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/reputation"
	"rationality/internal/service"
	"rationality/internal/transport"
)

// BenchmarkQuorumVerify is the fan-out baseline: one request dispatched
// to three in-process verification services concurrently, votes weighted
// and recorded. After the first iteration every member answers from its
// verdict cache, so the number isolates the quorum machinery — fan-out
// goroutines, collection, weighted vote, reputation recording — from
// procedure cost.
func BenchmarkQuorumVerify(b *testing.B) {
	for _, members := range []int{3, 5} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			panel := make([]Member, members)
			for i := range panel {
				svc, err := service.New(service.Config{ID: fmt.Sprintf("v%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				panel[i] = Member{ID: fmt.Sprintf("v%d", i), Client: transport.DialInProc(svc)}
			}
			q, err := New(Config{Members: panel, Registry: reputation.NewRegistry()})
			if err != nil {
				b.Fatal(err)
			}
			ann := pdAnnouncement(b)
			ctx := context.Background()
			req := core.VerifyRequest{Format: ann.Format, Game: ann.Game, Advice: ann.Advice, Proof: ann.Proof}
			if _, err := q.Verify(ctx, req); err != nil {
				b.Fatal(err) // warm every member's cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := q.Verify(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Accepted {
					b.Fatal("quorum rejected the honest benchmark proof")
				}
			}
		})
	}
}

// BenchmarkCertificateVerify is the offline client's hot path: checking
// an assembled quorum certificate against the known panel keyset — one
// digest plus one Ed25519 verification per co-signature, no network, no
// live panel. The certificate is assembled once outside the timed loop.
func BenchmarkCertificateVerify(b *testing.B) {
	for _, members := range []int{3, 5} {
		b.Run(fmt.Sprintf("panel=%d", members), func(b *testing.B) {
			keyset := make([]identity.PartyID, members)
			panel := make([]Member, members)
			for i := range panel {
				key, err := identity.NewKeyPair()
				if err != nil {
					b.Fatal(err)
				}
				svc, err := service.New(service.Config{
					ID: fmt.Sprintf("v%d", i), PersistPath: b.TempDir(), Key: key,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				keyset[i] = key.ID()
				panel[i] = Member{ID: fmt.Sprintf("v%d", i), Client: transport.DialInProc(svc)}
			}
			certifier, err := NewCertifier(CertifierConfig{Members: panel, Keyset: keyset})
			if err != nil {
				b.Fatal(err)
			}
			ann := pdAnnouncement(b)
			req := core.VerifyRequest{Format: ann.Format, Game: ann.Game, Advice: ann.Advice, Proof: ann.Proof}
			cert, err := certifier.Certify(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cert.Verify(keyset, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
