package quorum

import (
	"context"
	"fmt"
	"testing"

	"rationality/internal/core"
	"rationality/internal/reputation"
	"rationality/internal/service"
	"rationality/internal/transport"
)

// BenchmarkQuorumVerify is the fan-out baseline: one request dispatched
// to three in-process verification services concurrently, votes weighted
// and recorded. After the first iteration every member answers from its
// verdict cache, so the number isolates the quorum machinery — fan-out
// goroutines, collection, weighted vote, reputation recording — from
// procedure cost.
func BenchmarkQuorumVerify(b *testing.B) {
	for _, members := range []int{3, 5} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			panel := make([]Member, members)
			for i := range panel {
				svc, err := service.New(service.Config{ID: fmt.Sprintf("v%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				panel[i] = Member{ID: fmt.Sprintf("v%d", i), Client: transport.DialInProc(svc)}
			}
			q, err := New(Config{Members: panel, Registry: reputation.NewRegistry()})
			if err != nil {
				b.Fatal(err)
			}
			ann := pdAnnouncement(b)
			ctx := context.Background()
			req := core.VerifyRequest{Format: ann.Format, Game: ann.Game, Advice: ann.Advice, Proof: ann.Proof}
			if _, err := q.Verify(ctx, req); err != nil {
				b.Fatal(err) // warm every member's cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := q.Verify(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Accepted {
					b.Fatal("quorum rejected the honest benchmark proof")
				}
			}
		})
	}
}
