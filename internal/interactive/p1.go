// Package interactive implements the paper's §4 interactive proofs:
//
//   - P1 (Fig. 3): the prover reveals both equilibrium supports; each agent's
//     verifier solves the linear indifference system to recover the Nash
//     probabilities and checks feasibility and optimality in polynomial time
//     (Lemma 1: verifier time LP(n, m), O(n+m) communicated bits).
//   - P2 (Fig. 4): the prover reveals to each agent only its own support and
//     probabilities plus the equilibrium values λ1, λ2, and answers random
//     support-membership queries about the other agent. The test is
//     conclusive as soon as a queried index lies in the hidden support, so
//     O(n) queries suffice on average and O(1) for Θ(n)-size supports
//     (Remark 3). Membership answers are bound by upfront hash commitments,
//     giving the zero-knowledge-style privacy the paper describes: the
//     verifier never learns the other agent's support or probabilities
//     beyond the queried bits (Remark 2).
//
// The package also implements Remark 1's n-agent generalization, where the
// prover supplies supports and probabilities for all agents and each
// verifier checks the (polynomial) indifference system directly.
package interactive

import (
	"errors"
	"fmt"
	"math/big"

	"rationality/internal/bimatrix"
	"rationality/internal/numeric"
)

// RejectionError explains why a verifier rejected the prover's advice. The
// agent can forward it to the reputation system as evidence.
type RejectionError struct {
	Protocol string // "P1", "P2", "Pn"
	Reason   string
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("%s verifier rejected the advice: %s", e.Protocol, e.Reason)
}

func rejectP(protocol, format string, args ...any) error {
	return &RejectionError{Protocol: protocol, Reason: fmt.Sprintf(format, args...)}
}

// P1Advice is the prover's message in protocol P1: the two equilibrium
// supports, encodable as an n-bit plus an m-bit vector (Lemma 1's O(n+m)
// communication).
type P1Advice struct {
	RowSupport []int `json:"rowSupport"`
	ColSupport []int `json:"colSupport"`
	// Rows and Cols carry the game dimensions so the message is
	// self-describing on the wire.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// BitsOnWire returns the size of the advice in the paper's accounting: one
// membership bit per pure strategy of each agent.
func (a *P1Advice) BitsOnWire() int { return a.Rows + a.Cols }

// BuildP1Advice is the prover side of P1: the (game inventor's) possibly
// intractable equilibrium computation, reduced to its supports.
func BuildP1Advice(g *bimatrix.Game) (*P1Advice, *bimatrix.Equilibrium, error) {
	eq, err := g.FindEquilibrium()
	if err != nil {
		return nil, nil, fmt.Errorf("interactive: prover cannot find an equilibrium: %w", err)
	}
	return AdviceFromEquilibrium(g, eq), eq, nil
}

// AdviceFromEquilibrium extracts the P1 message from a known equilibrium
// (e.g. one observed statistically, as the paper's introduction suggests).
func AdviceFromEquilibrium(g *bimatrix.Game, eq *bimatrix.Equilibrium) *P1Advice {
	return &P1Advice{
		RowSupport: eq.X.Support(),
		ColSupport: eq.Y.Support(),
		Rows:       g.Rows(),
		Cols:       g.Cols(),
	}
}

// VerifyP1Row is the row agent's verifier of Fig. 3. Given the supports it
// solves linear system (1) — for every row i ∈ S1, the expected gain
// Σ_{j∈S2} y_j·A(i,j) equals λ1, and Σ y_j = 1 — and then checks that the
// recovered y is a probability vector and that every row outside S1 earns at
// most λ1. It returns the column agent's Nash probabilities and λ1.
func VerifyP1Row(g *bimatrix.Game, advice *P1Advice) (*numeric.Vec, *big.Rat, error) {
	if err := checkAdviceShape(g, advice); err != nil {
		return nil, nil, err
	}
	y, lambda1, err := solveIndifference(g.A(), advice.RowSupport, advice.ColSupport, false)
	if err != nil {
		return nil, nil, err
	}
	return y, lambda1, nil
}

// VerifyP1Col is the column agent's verifier, symmetric to VerifyP1Row: it
// recovers the row agent's Nash probabilities x and λ2 from B.
func VerifyP1Col(g *bimatrix.Game, advice *P1Advice) (*numeric.Vec, *big.Rat, error) {
	if err := checkAdviceShape(g, advice); err != nil {
		return nil, nil, err
	}
	x, lambda2, err := solveIndifference(g.B(), advice.ColSupport, advice.RowSupport, true)
	if err != nil {
		return nil, nil, err
	}
	return x, lambda2, nil
}

// VerifyP1 runs both agents' verifiers and cross-checks that the recovered
// profile is a Nash equilibrium of the game, returning it with both values.
func VerifyP1(g *bimatrix.Game, advice *P1Advice) (*bimatrix.Equilibrium, error) {
	y, lambda1, err := VerifyP1Row(g, advice)
	if err != nil {
		return nil, err
	}
	x, lambda2, err := VerifyP1Col(g, advice)
	if err != nil {
		return nil, err
	}
	p := bimatrix.Profile{X: x, Y: y}
	if !g.IsEquilibrium(p) {
		return nil, rejectP("P1", "recovered profile is not an equilibrium")
	}
	return &bimatrix.Equilibrium{Profile: p, LambdaRow: lambda1, LambdaCol: lambda2}, nil
}

func checkAdviceShape(g *bimatrix.Game, advice *P1Advice) error {
	if advice == nil {
		return rejectP("P1", "nil advice")
	}
	if advice.Rows != g.Rows() || advice.Cols != g.Cols() {
		return rejectP("P1", "advice is for a %dx%d game; this game is %dx%d",
			advice.Rows, advice.Cols, g.Rows(), g.Cols())
	}
	if err := checkSupport(advice.RowSupport, g.Rows()); err != nil {
		return rejectP("P1", "row support: %v", err)
	}
	if err := checkSupport(advice.ColSupport, g.Cols()); err != nil {
		return rejectP("P1", "column support: %v", err)
	}
	return nil
}

func checkSupport(s []int, limit int) error {
	if len(s) == 0 {
		return errors.New("empty")
	}
	seen := make(map[int]bool, len(s))
	for _, i := range s {
		if i < 0 || i >= limit {
			return fmt.Errorf("index %d out of range [0, %d)", i, limit)
		}
		if seen[i] {
			return fmt.Errorf("index %d repeated", i)
		}
		seen[i] = true
	}
	return nil
}

// solveIndifference solves Fig. 3's system for one side. With
// transposed == false it recovers the column mix y over colSupport that
// makes every row in rowSupport indifferent at value λ using matrix rows;
// with transposed == true the roles of the index sets are swapped and
// payoffs are read down columns (recovering the row mix x from B).
//
// The solver first attempts plain Gaussian elimination on the square-ish
// system exactly as in Lemma 1. When the system is underdetermined (a
// degenerate game), it falls back to exact LP feasibility so that a valid
// advice is never rejected for degeneracy.
func solveIndifference(payoff *numeric.Matrix, eqSupport, mixSupport []int, transposed bool) (*numeric.Vec, *big.Rat, error) {
	k := len(mixSupport)
	at := func(strat, t int) *big.Rat {
		if transposed {
			return payoff.At(mixSupport[t], strat)
		}
		return payoff.At(strat, mixSupport[t])
	}
	outDim := payoff.Cols()
	total := payoff.Rows()
	if transposed {
		outDim = payoff.Rows()
		total = payoff.Cols()
	}

	// Unknowns: y_{mixSupport[0..k-1]}, λ. Equations: one per eqSupport row
	// plus normalization.
	sys := numeric.NewMatrix(len(eqSupport)+1, k+1)
	rhs := numeric.NewVec(len(eqSupport) + 1)
	for r, strat := range eqSupport {
		for t := 0; t < k; t++ {
			sys.SetAt(r, t, at(strat, t))
		}
		sys.SetAt(r, k, numeric.I(-1)) // −λ
	}
	for t := 0; t < k; t++ {
		sys.SetAt(len(eqSupport), t, numeric.One())
	}
	rhs.SetAt(len(eqSupport), numeric.One())

	var mix *numeric.Vec
	var lambda *big.Rat
	sol, err := numeric.Solve(sys, rhs)
	switch {
	case err != nil:
		return nil, nil, rejectP("P1", "indifference system is inconsistent: the supports admit no equilibrium")
	case sol.Unique:
		mix = numeric.NewVec(outDim)
		for t, idx := range mixSupport {
			mix.SetAt(idx, sol.X.At(t))
		}
		lambda = sol.X.At(k)
	default:
		mix, lambda, err = lpCompletion(payoff, eqSupport, mixSupport, transposed, outDim, total)
		if err != nil {
			return nil, nil, err
		}
	}

	// Feasibility: 0 <= y_t <= 1 on the support.
	one := numeric.One()
	for _, idx := range mixSupport {
		v := mix.At(idx)
		if v.Sign() < 0 || numeric.Gt(v, one) {
			return nil, nil, rejectP("P1", "recovered probability %s for strategy %d is outside [0, 1]",
				v.RatString(), idx)
		}
	}
	// Optimality: strategies outside eqSupport earn at most λ.
	inEq := make(map[int]bool, len(eqSupport))
	for _, s := range eqSupport {
		inEq[s] = true
	}
	acc := new(big.Rat)
	term := new(big.Rat)
	for strat := 0; strat < total; strat++ {
		if inEq[strat] {
			continue
		}
		acc.SetInt64(0)
		for t := 0; t < k; t++ {
			term.Mul(at(strat, t), mix.At(mixSupport[t]))
			acc.Add(acc, term)
		}
		if acc.Cmp(lambda) > 0 {
			return nil, nil, rejectP("P1", "off-support strategy %d earns %s > λ = %s",
				strat, acc.RatString(), lambda.RatString())
		}
	}
	return mix, numeric.Copy(lambda), nil
}

// lpCompletion resolves a degenerate (underdetermined) indifference system
// by exact LP feasibility over the same constraints plus the off-support
// dominance inequalities.
func lpCompletion(payoff *numeric.Matrix, eqSupport, mixSupport []int, transposed bool, outDim, total int) (*numeric.Vec, *big.Rat, error) {
	k := len(mixSupport)
	at := func(strat, t int) *big.Rat {
		if transposed {
			return payoff.At(mixSupport[t], strat)
		}
		return payoff.At(strat, mixSupport[t])
	}
	inEq := make(map[int]bool, len(eqSupport))
	for _, s := range eqSupport {
		inEq[s] = true
	}

	// Vars: k mix probabilities, λ⁺, λ⁻.
	lp := &numeric.LP{NumVars: k + 2}
	for strat := 0; strat < total; strat++ {
		row := numeric.NewVec(k + 2)
		for t := 0; t < k; t++ {
			row.SetAt(t, at(strat, t))
		}
		row.SetAt(k, numeric.I(-1))
		row.SetAt(k+1, numeric.One())
		if inEq[strat] {
			lp.AddEQ(row, numeric.Zero())
		} else {
			lp.AddLE(row, numeric.Zero())
		}
	}
	sum := numeric.NewVec(k + 2)
	for t := 0; t < k; t++ {
		sum.SetAt(t, numeric.One())
	}
	lp.AddEQ(sum, numeric.One())

	res, err := numeric.SolveLP(lp)
	if err != nil {
		return nil, nil, err
	}
	if res.Status != numeric.Optimal {
		return nil, nil, rejectP("P1", "degenerate indifference system has no feasible completion")
	}
	mix := numeric.NewVec(outDim)
	for t, idx := range mixSupport {
		mix.SetAt(idx, res.X.At(t))
	}
	lambda := numeric.Sub(res.X.At(k), res.X.At(k+1))
	return mix, lambda, nil
}
