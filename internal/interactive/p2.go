package interactive

import (
	"fmt"
	"math/big"
	"math/rand"

	"rationality/internal/bimatrix"
	"rationality/internal/commitment"
	"rationality/internal/numeric"
)

// Role identifies which agent of a bimatrix game a message or verifier
// belongs to.
type Role int

// Agent roles.
const (
	RowAgent Role = iota + 1
	ColAgent
)

func (r Role) String() string {
	switch r {
	case RowAgent:
		return "row"
	case ColAgent:
		return "column"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Other returns the opposite role.
func (r Role) Other() Role {
	if r == RowAgent {
		return ColAgent
	}
	return RowAgent
}

// P2Offer is the prover's opening message of Fig. 4, addressed to one agent:
// "just its support, its probabilities, and the values λ1, λ2" — nothing
// about the other agent except binding commitments to the membership bits of
// the other agent's support, which the prover opens one index at a time on
// query.
type P2Offer struct {
	Role        Role
	OwnSupport  []int
	OwnProbs    *numeric.Vec
	LambdaOwn   *big.Rat // the receiving agent's equilibrium value
	LambdaOther *big.Rat // the other agent's equilibrium value
	// MembershipCommitments[j] binds the answer to "is the other agent's
	// pure strategy j in its support?".
	MembershipCommitments []commitment.Commitment
}

// P2Prover answers the verifier's protocol messages. Implementations may be
// honest or adversarial; the verifier must accept the former and reject (or
// leave inconclusive) the latter.
type P2Prover interface {
	// Offer returns the opening message for the given agent.
	Offer(role Role) (*P2Offer, error)
	// OpenMembership opens the membership commitment for pure strategy
	// index of the agent opposite to role.
	OpenMembership(role Role, index int) (*commitment.Opening, error)
}

// P2Config tunes the verifier.
type P2Config struct {
	// Rng drives the random index queries. Required.
	Rng *rand.Rand
	// MinConclusive is how many conclusive (in-support-touching) query pairs
	// must pass before accepting. Default 1, matching Fig. 4; Remark 3's
	// constant-k testing sets it higher.
	MinConclusive int
	// MaxQueries bounds the total number of index queries before the
	// verifier gives up and rejects as inconclusive. Default 64·n where n is
	// the opponent strategy count.
	MaxQueries int
}

// P2Report is the verifier's outcome together with the query statistics that
// experiment E5 (Remark 3) measures.
type P2Report struct {
	Accepted   bool
	Queries    int // total membership queries issued
	Conclusive int // conclusive query pairs observed
	// RevealedIndices counts how many distinct opponent indices were opened;
	// the privacy measure: |revealed| << n means the support stayed hidden.
	RevealedIndices int
}

// VerifyP2 runs the Fig. 4 verifier for the given agent role. It checks the
// offer's self-consistency, then repeatedly asks the prover for two random
// indices of the other agent's strategy space and applies the paper's two
// conclusive tests:
//
//   - both in the hidden support: both expected gains must equal λ_other;
//   - one in, one out: the in-gain must equal λ_other and weakly exceed the
//     out-gain.
//
// A pair with both indices outside the support is inconclusive. Expected
// gains λ_other(j) are computed from the verifier's OWN probabilities, which
// the offer supplies, so nothing about the other agent is revealed beyond
// the queried bits.
func VerifyP2(g *bimatrix.Game, role Role, prover P2Prover, cfg P2Config) (*P2Report, error) {
	if cfg.Rng == nil {
		return nil, fmt.Errorf("interactive: P2Config.Rng is required")
	}
	ownDim, otherDim := g.Rows(), g.Cols()
	if role == ColAgent {
		ownDim, otherDim = g.Cols(), g.Rows()
	}
	minConclusive := cfg.MinConclusive
	if minConclusive <= 0 {
		minConclusive = 1
	}
	maxQueries := cfg.MaxQueries
	if maxQueries <= 0 {
		maxQueries = 64 * otherDim
	}

	report := &P2Report{}

	offer, err := prover.Offer(role)
	if err != nil {
		return report, fmt.Errorf("interactive: prover refused to make an offer: %w", err)
	}
	if err := checkOffer(offer, role, ownDim, otherDim); err != nil {
		return report, err
	}

	// The receiving agent's expected gain for the other agent's pure
	// strategy j, computed from its own mix: for the row agent this is
	// λ2(j) = Σ_i x_i B(i, j); for the column agent λ1(i) = Σ_j y_j A(i, j).
	gainOther := func(j int) *big.Rat {
		if role == RowAgent {
			return g.ColValues(offer.OwnProbs).At(j)
		}
		return g.RowValues(offer.OwnProbs).At(j)
	}
	// Precompute all of them once; otherDim values.
	gains := make([]*big.Rat, otherDim)
	for j := 0; j < otherDim; j++ {
		gains[j] = gainOther(j)
	}

	opened := make(map[int]bool, otherDim)
	membership := make(map[int]bool, otherDim)
	query := func(j int) (bool, error) {
		report.Queries++
		if in, ok := membership[j]; ok {
			return in, nil
		}
		open, err := prover.OpenMembership(role, j)
		if err != nil {
			return false, fmt.Errorf("interactive: prover refused membership query %d: %w", j, err)
		}
		in, err := commitment.OpenBit(offer.MembershipCommitments[j], open)
		if err != nil {
			return false, rejectP("P2", "membership opening for index %d is invalid: %v", j, err)
		}
		opened[j] = true
		membership[j] = in
		report.RevealedIndices = len(opened)
		return in, nil
	}

	for report.Conclusive < minConclusive {
		if report.Queries+2 > maxQueries {
			return report, rejectP("P2", "inconclusive after %d queries: no queried index was in the hidden support",
				report.Queries)
		}
		j1 := cfg.Rng.Intn(otherDim)
		j2 := cfg.Rng.Intn(otherDim)
		in1, err := query(j1)
		if err != nil {
			return report, err
		}
		in2, err := query(j2)
		if err != nil {
			return report, err
		}

		switch {
		case in1 && in2:
			if !numeric.Eq(gains[j1], offer.LambdaOther) || !numeric.Eq(gains[j2], offer.LambdaOther) {
				return report, rejectP("P2", "both-in test failed: gains (%s, %s) != λ_other = %s",
					gains[j1].RatString(), gains[j2].RatString(), offer.LambdaOther.RatString())
			}
			report.Conclusive++
		case in1 || in2:
			in, out := j1, j2
			if in2 {
				in, out = j2, j1
			}
			if !numeric.Eq(gains[in], offer.LambdaOther) {
				return report, rejectP("P2", "1-in/1-out test failed: in-gain %s != λ_other = %s",
					gains[in].RatString(), offer.LambdaOther.RatString())
			}
			if numeric.Gt(gains[out], offer.LambdaOther) {
				return report, rejectP("P2", "1-in/1-out test failed: out-gain %s exceeds λ_other = %s",
					gains[out].RatString(), offer.LambdaOther.RatString())
			}
			report.Conclusive++
		default:
			// Both out: inconclusive (Fig. 4), but the out-gains must still
			// not exceed λ_other; a violation is a free catch.
			for _, j := range []int{j1, j2} {
				if numeric.Gt(gains[j], offer.LambdaOther) {
					return report, rejectP("P2", "out-of-support index %d gains %s > λ_other = %s",
						j, gains[j].RatString(), offer.LambdaOther.RatString())
				}
			}
		}
	}

	report.Accepted = true
	return report, nil
}

// checkOffer validates the self-describing parts of a P2 offer.
func checkOffer(offer *P2Offer, role Role, ownDim, otherDim int) error {
	if offer == nil {
		return rejectP("P2", "nil offer")
	}
	if offer.Role != role {
		return rejectP("P2", "offer addressed to %v, expected %v", offer.Role, role)
	}
	if offer.OwnProbs == nil || offer.OwnProbs.Len() != ownDim {
		return rejectP("P2", "own probability vector has wrong dimension")
	}
	if !offer.OwnProbs.IsStochastic() {
		return rejectP("P2", "own probabilities are not a distribution")
	}
	if err := checkSupport(offer.OwnSupport, ownDim); err != nil {
		return rejectP("P2", "own support: %v", err)
	}
	// The support must be exactly the non-zeros of the probabilities.
	actual := offer.OwnProbs.Support()
	if len(actual) != len(offer.OwnSupport) {
		return rejectP("P2", "own support size %d does not match probabilities' support size %d",
			len(offer.OwnSupport), len(actual))
	}
	inClaimed := make(map[int]bool, len(offer.OwnSupport))
	for _, i := range offer.OwnSupport {
		inClaimed[i] = true
	}
	for _, i := range actual {
		if !inClaimed[i] {
			return rejectP("P2", "probability on strategy %d outside the claimed support", i)
		}
	}
	if offer.LambdaOwn == nil || offer.LambdaOther == nil {
		return rejectP("P2", "missing equilibrium values")
	}
	if len(offer.MembershipCommitments) != otherDim {
		return rejectP("P2", "expected %d membership commitments, got %d",
			otherDim, len(offer.MembershipCommitments))
	}
	return nil
}
