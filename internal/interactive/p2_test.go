package interactive

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"rationality/internal/bimatrix"
	"rationality/internal/commitment"
	"rationality/internal/numeric"
)

func honestProverFor(t *testing.T, g *bimatrix.Game, seed int64) (*HonestProver, *bimatrix.Equilibrium) {
	t.Helper()
	eq, err := g.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewHonestProver(g, eq, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return prover, eq
}

func TestP2AcceptsHonestProver(t *testing.T) {
	g := matchingPennies()
	prover, _ := honestProverFor(t, g, 1)
	for _, role := range []Role{RowAgent, ColAgent} {
		report, err := VerifyP2(g, role, prover, P2Config{Rng: rand.New(rand.NewSource(2))})
		if err != nil {
			t.Fatalf("%v: honest prover rejected: %v", role, err)
		}
		if !report.Accepted || report.Conclusive < 1 {
			t.Fatalf("%v: report = %+v", role, report)
		}
	}
}

func TestP2RequiresRng(t *testing.T) {
	g := matchingPennies()
	prover, _ := honestProverFor(t, g, 1)
	if _, err := VerifyP2(g, RowAgent, prover, P2Config{}); err == nil {
		t.Fatal("missing Rng accepted")
	}
}

func TestP2HonestProverRefusesNonEquilibrium(t *testing.T) {
	g := matchingPennies()
	bad := &bimatrix.Equilibrium{
		Profile: bimatrix.Profile{
			X: numeric.VecOfInts(1, 0),
			Y: numeric.VecOfInts(1, 0),
		},
		LambdaRow: numeric.One(),
		LambdaCol: numeric.I(-1),
	}
	if _, err := NewHonestProver(g, bad, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("honest prover constructed on a non-equilibrium")
	}
}

func TestP2RejectsLyingLambda(t *testing.T) {
	g := matchingPennies()
	honest, _ := honestProverFor(t, g, 4)
	liar := &LyingLambdaProver{HonestProver: honest}
	report, err := VerifyP2(g, RowAgent, liar, P2Config{Rng: rand.New(rand.NewSource(5))})
	if err == nil {
		t.Fatal("lying λ accepted")
	}
	if report.Accepted {
		t.Fatal("report claims acceptance despite error")
	}
	var re *RejectionError
	if !errors.As(err, &re) || re.Protocol != "P2" {
		t.Fatalf("err = %v, want P2 rejection", err)
	}
}

func TestP2RejectsEquivocation(t *testing.T) {
	g := matchingPennies()
	honest, _ := honestProverFor(t, g, 6)
	eq := &EquivocatingProver{HonestProver: honest}
	_, err := VerifyP2(g, RowAgent, eq, P2Config{Rng: rand.New(rand.NewSource(7))})
	if err == nil {
		t.Fatal("equivocating prover accepted")
	}
	if !strings.Contains(err.Error(), "opening") {
		t.Fatalf("expected a commitment-opening rejection, got: %v", err)
	}
}

func TestP2RejectsDenierAsInconclusive(t *testing.T) {
	g := matchingPennies()
	honest, _ := honestProverFor(t, g, 8)
	denier, err := NewDenyingProver(honest, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	report, err := VerifyP2(g, RowAgent, denier, P2Config{
		Rng:        rand.New(rand.NewSource(10)),
		MaxQueries: 20,
	})
	if err == nil {
		t.Fatal("denier accepted")
	}
	if !strings.Contains(err.Error(), "inconclusive") {
		t.Fatalf("expected inconclusive rejection, got: %v", err)
	}
	if report.Queries < 20-1 {
		t.Errorf("gave up after %d queries, want to exhaust the budget", report.Queries)
	}
}

func TestP2RejectsOverclaiming(t *testing.T) {
	// Game with an equilibrium NOT using all strategies, so overclaiming is
	// detectable: prisoner's dilemma — the equilibrium is pure (D, D).
	g := bimatrix.FromInts(
		[][]int64{{3, 0}, {5, 1}},
		[][]int64{{3, 5}, {0, 1}},
	)
	honest, _ := honestProverFor(t, g, 11)
	over, err := NewOverclaimingProver(honest, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	// The fake in-support index C has gain 5 > λ2(D,D)=1 for... check: row
	// agent's view of column gains with x = (0,1): λ2(C) = B(1,0) = 0,
	// λ2(D) = 1. Overclaimed C: in-support but gain 0 != 1 → reject.
	_, err = VerifyP2(g, RowAgent, over, P2Config{Rng: rand.New(rand.NewSource(13))})
	if err == nil {
		t.Fatal("overclaiming prover accepted")
	}
}

func TestP2RejectsFakeEquilibrium(t *testing.T) {
	g := matchingPennies()
	// Claim the pure profile (heads, heads) with fabricated values.
	fake, err := FakeEquilibriumProver(g,
		numeric.VecOfInts(1, 0), numeric.VecOfInts(1, 0),
		numeric.One(), numeric.I(-1),
		rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	// The column verifier computes the row agent's gains from its own mix
	// y = (1, 0): λ1(heads) = 1 = claimed λ_other... but λ1(tails) = −1.
	// The row verifier computes column gains from x = (1, 0): λ2(heads) = −1
	// != claimed λ_other = −1 — actually matches. Soundness here comes from
	// the out-of-support dominance check: for the row agent, the hidden
	// support is {heads}; querying tails (out) has gain 1 > λ_other = −1.
	_, err = VerifyP2(g, RowAgent, fake, P2Config{Rng: rand.New(rand.NewSource(15))})
	if err == nil {
		t.Fatal("fake equilibrium accepted by row verifier")
	}
}

func TestP2RejectsMalformedOffers(t *testing.T) {
	g := matchingPennies()
	prover, _ := honestProverFor(t, g, 16)
	offer, err := prover.Offer(RowAgent)
	if err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name   string
		mutate func(o *P2Offer)
	}{
		{"wrong role", func(o *P2Offer) { o.Role = ColAgent }},
		{"nil probs", func(o *P2Offer) { o.OwnProbs = nil }},
		{"non-stochastic probs", func(o *P2Offer) { o.OwnProbs = numeric.VecOfInts(1, 1) }},
		{"empty support", func(o *P2Offer) { o.OwnSupport = nil }},
		{"support/probs mismatch", func(o *P2Offer) { o.OwnSupport = []int{0} }},
		{"missing lambda", func(o *P2Offer) { o.LambdaOther = nil }},
		{"short commitments", func(o *P2Offer) { o.MembershipCommitments = o.MembershipCommitments[:1] }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			bad := *offer
			bad.OwnProbs = offer.OwnProbs.Clone()
			bad.OwnSupport = append([]int(nil), offer.OwnSupport...)
			bad.MembershipCommitments = append([]commitment.Commitment(nil), offer.MembershipCommitments...)
			m.mutate(&bad)
			fp := &fixedOfferProver{offer: &bad, inner: prover}
			if _, err := VerifyP2(g, RowAgent, fp, P2Config{Rng: rand.New(rand.NewSource(17))}); err == nil {
				t.Fatal("malformed offer accepted")
			}
		})
	}
}

// fixedOfferProver serves a fixed offer and delegates openings.
type fixedOfferProver struct {
	offer *P2Offer
	inner P2Prover
}

func (p *fixedOfferProver) Offer(Role) (*P2Offer, error) { return p.offer, nil }
func (p *fixedOfferProver) OpenMembership(role Role, index int) (*commitment.Opening, error) {
	return p.inner.OpenMembership(role, index)
}

func TestP2PrivacyRevealsOnlyQueriedBits(t *testing.T) {
	// A larger game with a small support: the verifier should reveal far
	// fewer indices than the full dimension.
	n := 12
	a := make([][]int64, n)
	b := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			// Diagonal coordination: equilibria are pure on the diagonal.
			if i == j {
				a[i][j], b[i][j] = 1, 1
			}
		}
	}
	g := bimatrix.FromInts(a, b)
	prover, _ := honestProverFor(t, g, 18)
	report, err := VerifyP2(g, RowAgent, prover, P2Config{
		Rng:           rand.New(rand.NewSource(19)),
		MinConclusive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.RevealedIndices >= n {
		t.Errorf("revealed %d of %d indices; privacy lost", report.RevealedIndices, n)
	}
}

// Remark 3: with a Θ(n)-size hidden support, the expected number of queries
// until a conclusive pair is O(1); with a constant-size support it is Θ(n).
func TestP2QueryCountScaling(t *testing.T) {
	avgQueries := func(supportFrac float64, n int) float64 {
		// Build a diagonal game whose equilibrium support we control via a
		// coordination sub-block of size k.
		k := int(supportFrac * float64(n))
		if k < 1 {
			k = 1
		}
		g, eq := diagonalBlockGame(n, k)
		total := 0
		const iters = 40
		for i := 0; i < iters; i++ {
			prover, err := NewHonestProver(g, eq, rand.New(rand.NewSource(int64(100+i))))
			if err != nil {
				t.Fatal(err)
			}
			report, err := VerifyP2(g, RowAgent, prover, P2Config{
				Rng: rand.New(rand.NewSource(int64(200 + i))),
			})
			if err != nil {
				t.Fatal(err)
			}
			total += report.Queries
		}
		return float64(total) / iters
	}

	n := 16
	dense := avgQueries(0.5, n)  // support ~ n/2: O(1) expected queries
	sparse := avgQueries(0.0, n) // support = 1: ~n expected queries
	if dense >= sparse {
		t.Errorf("dense-support queries (%f) should be fewer than sparse (%f)", dense, sparse)
	}
}

// diagonalBlockGame builds an n×n game whose unique "advised" equilibrium
// mixes uniformly over the first k diagonal strategies.
func diagonalBlockGame(n, k int) (*bimatrix.Game, *bimatrix.Equilibrium) {
	a := make([][]int64, n)
	b := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
	}
	// In the k-block, matching pays 1 to both; outside it pays 0.
	for i := 0; i < k; i++ {
		a[i][i], b[i][i] = 1, 1
	}
	g := bimatrix.FromInts(a, b)
	x := numeric.NewVec(n)
	y := numeric.NewVec(n)
	for i := 0; i < k; i++ {
		x.SetAt(i, numeric.R(1, int64(k)))
		y.SetAt(i, numeric.R(1, int64(k)))
	}
	p := bimatrix.Profile{X: x, Y: y}
	if !g.IsEquilibrium(p) {
		panic("diagonalBlockGame: constructed profile is not an equilibrium")
	}
	return g, &bimatrix.Equilibrium{
		Profile:   p,
		LambdaRow: numeric.R(1, int64(k)),
		LambdaCol: numeric.R(1, int64(k)),
	}
}
