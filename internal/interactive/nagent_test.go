package interactive

import (
	"testing"

	"rationality/internal/game"
	"rationality/internal/numeric"
)

func uniformProfile(g *game.Game) game.MixedProfile {
	mp := make(game.MixedProfile, g.NumAgents())
	for i := range mp {
		k := g.NumStrategies(i)
		v := numeric.NewVec(k)
		for s := 0; s < k; s++ {
			v.SetAt(s, numeric.R(1, int64(k)))
		}
		mp[i] = v
	}
	return mp
}

func TestNAgentHonestAdviceAccepted(t *testing.T) {
	g := game.ThreeAgentMajority()
	mp := uniformProfile(g)
	advice, err := BuildNAgentAdvice(g, mp)
	if err != nil {
		t.Fatal(err)
	}
	values, err := VerifyNAgent(g, advice)
	if err != nil {
		t.Fatalf("honest advice rejected: %v", err)
	}
	if len(values) != 3 {
		t.Fatalf("values = %v", values)
	}
	// By symmetry every agent's value is Pr[at least one of the two others
	// matches me] = 1 − 1/2·1/2 = 3/4... check: matches majority means at
	// least one other picks my side: 1 − (1/2)² = 3/4.
	for i, v := range values {
		if v.RatString() != "3/4" {
			t.Errorf("agent %d value = %s, want 3/4", i, v.RatString())
		}
	}
}

func TestNAgentPureEquilibriumAdvice(t *testing.T) {
	g := game.PrisonersDilemma()
	mp := g.PureAsMixed(game.Profile{1, 1})
	advice, err := BuildNAgentAdvice(g, mp)
	if err != nil {
		t.Fatal(err)
	}
	values, err := VerifyNAgent(g, advice)
	if err != nil {
		t.Fatalf("pure equilibrium advice rejected: %v", err)
	}
	if values[0].RatString() != "1" || values[1].RatString() != "1" {
		t.Errorf("values = (%s, %s), want (1, 1)", values[0], values[1])
	}
}

func TestNAgentRejectsNonEquilibrium(t *testing.T) {
	g := game.PrisonersDilemma()
	mp := g.PureAsMixed(game.Profile{0, 0}) // cooperate-cooperate: not an equilibrium
	advice, err := BuildNAgentAdvice(g, mp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyNAgent(g, advice); err == nil {
		t.Fatal("non-equilibrium advice accepted")
	}
}

func TestNAgentRejectsMalformedAdvice(t *testing.T) {
	g := game.ThreeAgentMajority()
	mp := uniformProfile(g)
	honest, err := BuildNAgentAdvice(g, mp)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := VerifyNAgent(g, nil); err == nil {
		t.Error("nil advice accepted")
	}

	short := &NAgentAdvice{Supports: honest.Supports[:2], Probs: honest.Probs[:2]}
	if _, err := VerifyNAgent(g, short); err == nil {
		t.Error("wrong agent count accepted")
	}

	badSupport := &NAgentAdvice{
		Supports: [][]int{{0, 1}, {0, 1}, {7}},
		Probs:    honest.Probs,
	}
	if _, err := VerifyNAgent(g, badSupport); err == nil {
		t.Error("out-of-range support accepted")
	}

	mismatched := &NAgentAdvice{
		Supports: [][]int{{0}, {0, 1}, {0, 1}},
		Probs:    honest.Probs,
	}
	if _, err := VerifyNAgent(g, mismatched); err == nil {
		t.Error("support/probability mismatch accepted")
	}
}

func TestNAgentBuildRejectsInvalidProfile(t *testing.T) {
	g := game.ThreeAgentMajority()
	if _, err := BuildNAgentAdvice(g, game.MixedProfile{numeric.VecOfInts(1)}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestNAgentTwoAgentMatchesP1(t *testing.T) {
	// The n-agent verifier specialized to 2 agents must agree with the
	// bimatrix machinery on Matching Pennies.
	g := game.MatchingPennies()
	mp := uniformProfile(g)
	advice, err := BuildNAgentAdvice(g, mp)
	if err != nil {
		t.Fatal(err)
	}
	values, err := VerifyNAgent(g, advice)
	if err != nil {
		t.Fatalf("uniform MP advice rejected: %v", err)
	}
	if values[0].Sign() != 0 || values[1].Sign() != 0 {
		t.Errorf("values = (%s, %s), want (0, 0)", values[0], values[1])
	}
}
