package interactive

import (
	"rationality/internal/game"
	"rationality/internal/numeric"
)

// NAgentAdvice is Remark 1's generalization of P1 to n agents: the prover
// provides the support sets S1, ..., Sn (and, to keep each agent's
// verification polynomial in the game size rather than requiring a
// polynomial-system solver, the Nash probabilities realizing them).
type NAgentAdvice struct {
	Supports [][]int
	Probs    game.MixedProfile
}

// BuildNAgentAdvice packages a known mixed equilibrium of an n-agent game.
func BuildNAgentAdvice(g *game.Game, mp game.MixedProfile) (*NAgentAdvice, error) {
	if !g.ValidMixed(mp) {
		return nil, rejectP("Pn", "profile is not a valid mixed profile for the game")
	}
	supports := make([][]int, g.NumAgents())
	probs := make(game.MixedProfile, g.NumAgents())
	for i, v := range mp {
		supports[i] = v.Support()
		probs[i] = v.Clone()
	}
	return &NAgentAdvice{Supports: supports, Probs: probs}, nil
}

// VerifyNAgent checks Remark 1's advice: the probabilities realize the
// claimed supports, every in-support pure strategy of every agent attains
// that agent's equilibrium value, and no strategy beats it. On success it
// returns the per-agent equilibrium values.
func VerifyNAgent(g *game.Game, advice *NAgentAdvice) ([]*numeric.Rat, error) {
	if advice == nil {
		return nil, rejectP("Pn", "nil advice")
	}
	if len(advice.Supports) != g.NumAgents() || len(advice.Probs) != g.NumAgents() {
		return nil, rejectP("Pn", "advice covers %d agents; game has %d",
			len(advice.Supports), g.NumAgents())
	}
	if !g.ValidMixed(advice.Probs) {
		return nil, rejectP("Pn", "probabilities are not a valid mixed profile")
	}
	for i, s := range advice.Supports {
		if err := checkSupport(s, g.NumStrategies(i)); err != nil {
			return nil, rejectP("Pn", "agent %d support: %v", i, err)
		}
		actual := advice.Probs[i].Support()
		if len(actual) != len(s) {
			return nil, rejectP("Pn", "agent %d: support size %d does not match probabilities (%d non-zero)",
				i, len(s), len(actual))
		}
		claimed := make(map[int]bool, len(s))
		for _, idx := range s {
			claimed[idx] = true
		}
		for _, idx := range actual {
			if !claimed[idx] {
				return nil, rejectP("Pn", "agent %d: probability mass on strategy %d outside the claimed support", i, idx)
			}
		}
	}

	values := make([]*numeric.Rat, g.NumAgents())
	for i := 0; i < g.NumAgents(); i++ {
		value := g.ExpectedPayoff(i, advice.Probs)
		inSupport := make(map[int]bool, len(advice.Supports[i]))
		for _, s := range advice.Supports[i] {
			inSupport[s] = true
		}
		for si := 0; si < g.NumStrategies(i); si++ {
			dev := g.ExpectedPayoffPureDeviation(i, si, advice.Probs)
			if inSupport[si] && !numeric.Eq(dev, value) {
				return nil, rejectP("Pn", "agent %d: in-support strategy %d earns %s, not the equilibrium value %s",
					i, si, dev.RatString(), value.RatString())
			}
			if numeric.Gt(dev, value) {
				return nil, rejectP("Pn", "agent %d: strategy %d earns %s > equilibrium value %s",
					i, si, dev.RatString(), value.RatString())
			}
		}
		values[i] = value
	}
	return values, nil
}
