package interactive

import (
	"errors"
	"math/rand"
	"testing"

	"rationality/internal/bimatrix"
	"rationality/internal/numeric"
)

func fig5() *bimatrix.Game {
	return bimatrix.FromInts(
		[][]int64{{1, 1}, {0, 2}},
		[][]int64{{1, 1}, {1, 0}},
	)
}

func matchingPennies() *bimatrix.Game {
	return bimatrix.FromInts(
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
}

func TestP1RoundTripMatchingPennies(t *testing.T) {
	g := matchingPennies()
	advice, eq, err := BuildP1Advice(g)
	if err != nil {
		t.Fatal(err)
	}
	if advice.BitsOnWire() != 4 {
		t.Errorf("BitsOnWire = %d, want n+m = 4", advice.BitsOnWire())
	}
	got, err := VerifyP1(g, advice)
	if err != nil {
		t.Fatalf("honest advice rejected: %v", err)
	}
	if !got.X.Equal(eq.X) || !got.Y.Equal(eq.Y) {
		t.Errorf("recovered (%s, %s), prover had (%s, %s)", got.X, got.Y, eq.X, eq.Y)
	}
	if got.LambdaRow.Sign() != 0 || got.LambdaCol.Sign() != 0 {
		t.Errorf("values (%s, %s), want (0, 0)", got.LambdaRow, got.LambdaCol)
	}
}

func TestP1RowVerifierRecoversColumnMix(t *testing.T) {
	g := matchingPennies()
	advice := &P1Advice{RowSupport: []int{0, 1}, ColSupport: []int{0, 1}, Rows: 2, Cols: 2}
	y, lambda1, err := VerifyP1Row(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	half := numeric.R(1, 2)
	if !y.Equal(numeric.VecOf(half, half)) {
		t.Errorf("y = %s, want uniform", y)
	}
	if lambda1.Sign() != 0 {
		t.Errorf("λ1 = %s, want 0", lambda1.RatString())
	}
}

func TestP1RejectsWrongSupports(t *testing.T) {
	g := matchingPennies()
	// Pure supports admit no equilibrium in Matching Pennies.
	advice := &P1Advice{RowSupport: []int{0}, ColSupport: []int{0}, Rows: 2, Cols: 2}
	if _, err := VerifyP1(g, advice); err == nil {
		t.Fatal("non-equilibrium supports accepted")
	}
	var re *RejectionError
	_, err := VerifyP1(g, advice)
	if !errors.As(err, &re) || re.Protocol != "P1" {
		t.Fatalf("error = %v, want P1 RejectionError", err)
	}
}

func TestP1RejectsMalformedAdvice(t *testing.T) {
	g := matchingPennies()
	cases := []*P1Advice{
		nil,
		{RowSupport: []int{0}, ColSupport: []int{0}, Rows: 3, Cols: 2},    // wrong dims
		{RowSupport: nil, ColSupport: []int{0}, Rows: 2, Cols: 2},         // empty support
		{RowSupport: []int{0, 0}, ColSupport: []int{0}, Rows: 2, Cols: 2}, // dup index
		{RowSupport: []int{5}, ColSupport: []int{0}, Rows: 2, Cols: 2},    // out of range
	}
	for i, advice := range cases {
		if _, err := VerifyP1(g, advice); err == nil {
			t.Errorf("case %d: malformed advice accepted", i)
		}
	}
}

func TestP1Fig5DegenerateSupports(t *testing.T) {
	g := fig5()
	// S1 = {A}, S2 = {C, D}: the indifference system for the row verifier is
	// underdetermined (row A pays 1 against everything); the LP fallback
	// must find a valid completion.
	advice := &P1Advice{RowSupport: []int{0}, ColSupport: []int{0, 1}, Rows: 2, Cols: 2}
	eq, err := VerifyP1(g, advice)
	if err != nil {
		t.Fatalf("degenerate advice rejected: %v", err)
	}
	if eq.LambdaRow.RatString() != "1" || eq.LambdaCol.RatString() != "1" {
		t.Errorf("λ = (%s, %s), want (1, 1)", eq.LambdaRow, eq.LambdaCol)
	}
	if !g.IsEquilibrium(eq.Profile) {
		t.Error("recovered profile is not an equilibrium")
	}
}

func TestP1OffSupportDominanceRejected(t *testing.T) {
	// Game where the column mix recovered from the claimed supports pays an
	// off-support row MORE than λ1: claim S1 = {0}, S2 = {0}; row 1 earns 5.
	g := bimatrix.FromInts(
		[][]int64{{1, 0}, {5, 0}},
		[][]int64{{1, 0}, {1, 0}},
	)
	advice := &P1Advice{RowSupport: []int{0}, ColSupport: []int{0}, Rows: 2, Cols: 2}
	if _, _, err := VerifyP1Row(g, advice); err == nil {
		t.Fatal("dominated advice accepted")
	}
}

func TestAdviceFromEquilibrium(t *testing.T) {
	g := matchingPennies()
	eq, err := g.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	advice := AdviceFromEquilibrium(g, eq)
	if len(advice.RowSupport) != 2 || len(advice.ColSupport) != 2 {
		t.Errorf("supports = %v / %v", advice.RowSupport, advice.ColSupport)
	}
	if advice.Rows != 2 || advice.Cols != 2 {
		t.Errorf("dims = %dx%d", advice.Rows, advice.Cols)
	}
}

// Property: for random games, the advice built from the solver's equilibrium
// is always accepted by the verifier, and the recovered equilibrium values
// match the solver's.
func TestP1CompletenessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		n, m := 2+rng.Intn(2), 2+rng.Intn(2)
		a := make([][]int64, n)
		b := make([][]int64, n)
		for i := range a {
			a[i] = make([]int64, m)
			b[i] = make([]int64, m)
			for j := range a[i] {
				a[i][j] = int64(rng.Intn(11) - 5)
				b[i][j] = int64(rng.Intn(11) - 5)
			}
		}
		g := bimatrix.FromInts(a, b)
		advice, eq, err := BuildP1Advice(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := VerifyP1(g, advice)
		if err != nil {
			t.Fatalf("trial %d: honest advice rejected: %v", trial, err)
		}
		if !numeric.Eq(got.LambdaRow, eq.LambdaRow) || !numeric.Eq(got.LambdaCol, eq.LambdaCol) {
			t.Fatalf("trial %d: recovered values (%s, %s) != prover's (%s, %s)",
				trial, got.LambdaRow, got.LambdaCol, eq.LambdaRow, eq.LambdaCol)
		}
	}
}

// Property: P1 soundness — advice naming supports of a profile that is NOT
// an equilibrium is rejected.
func TestP1SoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tested := 0
	for trial := 0; trial < 80; trial++ {
		n, m := 2, 2
		a := make([][]int64, n)
		b := make([][]int64, n)
		for i := range a {
			a[i] = make([]int64, m)
			b[i] = make([]int64, m)
			for j := range a[i] {
				a[i][j] = int64(rng.Intn(9) - 4)
				b[i][j] = int64(rng.Intn(9) - 4)
			}
		}
		g := bimatrix.FromInts(a, b)
		// Random supports.
		s1 := randomSupport(rng, n)
		s2 := randomSupport(rng, m)
		advice := &P1Advice{RowSupport: s1, ColSupport: s2, Rows: n, Cols: m}
		eq, err := VerifyP1(g, advice)
		if err != nil {
			continue // rejected, fine
		}
		tested++
		if !g.IsEquilibrium(eq.Profile) {
			t.Fatalf("trial %d: verifier accepted a non-equilibrium", trial)
		}
	}
	if tested == 0 {
		t.Skip("no random supports were valid equilibria")
	}
}

func randomSupport(rng *rand.Rand, n int) []int {
	var s []int
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s = append(s, i)
		}
	}
	if len(s) == 0 {
		s = append(s, rng.Intn(n))
	}
	return s
}
