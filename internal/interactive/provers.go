package interactive

import (
	"fmt"
	"io"
	"math/big"

	"rationality/internal/bimatrix"
	"rationality/internal/commitment"
	"rationality/internal/numeric"
)

// HonestProver implements P2Prover for a genuine equilibrium of the game. It
// commits to each agent's support-membership bits once at construction; all
// later openings are bound by those commitments.
type HonestProver struct {
	game *bimatrix.Game
	eq   *bimatrix.Equilibrium

	rowComms []commitment.Commitment // membership of row indices in supp(X)
	rowOpens []*commitment.Opening
	colComms []commitment.Commitment // membership of column indices in supp(Y)
	colOpens []*commitment.Opening
}

var _ P2Prover = (*HonestProver)(nil)

// NewHonestProver builds a prover for a known equilibrium, drawing
// commitment salts from rng (crypto/rand in production, a seeded source in
// tests). It refuses to be constructed on a non-equilibrium: an honest
// prover cannot prove a false statement.
func NewHonestProver(g *bimatrix.Game, eq *bimatrix.Equilibrium, rng io.Reader) (*HonestProver, error) {
	if eq == nil || !g.IsEquilibrium(eq.Profile) {
		return nil, fmt.Errorf("interactive: honest prover requires a genuine equilibrium")
	}
	rowBits := make(commitment.BitVector, g.Rows())
	for _, i := range eq.X.Support() {
		rowBits[i] = true
	}
	colBits := make(commitment.BitVector, g.Cols())
	for _, j := range eq.Y.Support() {
		colBits[j] = true
	}
	rowComms, rowOpens, err := commitment.CommitBits(rowBits, rng)
	if err != nil {
		return nil, err
	}
	colComms, colOpens, err := commitment.CommitBits(colBits, rng)
	if err != nil {
		return nil, err
	}
	return &HonestProver{
		game: g, eq: eq,
		rowComms: rowComms, rowOpens: rowOpens,
		colComms: colComms, colOpens: colOpens,
	}, nil
}

// Offer implements P2Prover: each agent receives its own side of the
// equilibrium plus commitments to the other side's membership bits.
func (p *HonestProver) Offer(role Role) (*P2Offer, error) {
	switch role {
	case RowAgent:
		return &P2Offer{
			Role:                  RowAgent,
			OwnSupport:            p.eq.X.Support(),
			OwnProbs:              p.eq.X.Clone(),
			LambdaOwn:             numeric.Copy(p.eq.LambdaRow),
			LambdaOther:           numeric.Copy(p.eq.LambdaCol),
			MembershipCommitments: append([]commitment.Commitment(nil), p.colComms...),
		}, nil
	case ColAgent:
		return &P2Offer{
			Role:                  ColAgent,
			OwnSupport:            p.eq.Y.Support(),
			OwnProbs:              p.eq.Y.Clone(),
			LambdaOwn:             numeric.Copy(p.eq.LambdaCol),
			LambdaOther:           numeric.Copy(p.eq.LambdaRow),
			MembershipCommitments: append([]commitment.Commitment(nil), p.rowComms...),
		}, nil
	default:
		return nil, fmt.Errorf("interactive: unknown role %v", role)
	}
}

// OpenMembership implements P2Prover by opening the committed bit for the
// other agent's strategy index.
func (p *HonestProver) OpenMembership(role Role, index int) (*commitment.Opening, error) {
	opens := p.colOpens
	if role == ColAgent {
		opens = p.rowOpens
	}
	if index < 0 || index >= len(opens) {
		return nil, fmt.Errorf("interactive: membership index %d out of range", index)
	}
	return opens[index], nil
}

// P1ProverFunc adapts an equilibrium to the P1 exchange for tests and the
// core framework: the prover's single message is the advice.
func P1ProverFunc(g *bimatrix.Game, eq *bimatrix.Equilibrium) *P1Advice {
	return AdviceFromEquilibrium(g, eq)
}

// The dishonest provers below model the adversaries the verifier must catch.

// LyingLambdaProver behaves honestly except that it inflates the other
// agent's equilibrium value, making the advice "too good": the first
// conclusive query pair exposes it.
type LyingLambdaProver struct {
	*HonestProver
}

// Offer inflates LambdaOther by 1.
func (p *LyingLambdaProver) Offer(role Role) (*P2Offer, error) {
	offer, err := p.HonestProver.Offer(role)
	if err != nil {
		return nil, err
	}
	offer.LambdaOther = numeric.Add(offer.LambdaOther, numeric.One())
	return offer, nil
}

// EquivocatingProver commits to the honest membership bits but, when asked,
// opens a *different* index's opening — modelling a prover that tries to
// adapt its answers after seeing the queries. The commitment check catches
// it immediately.
type EquivocatingProver struct {
	*HonestProver
}

// OpenMembership returns the opening of index+1 (mod n) instead of index.
func (p *EquivocatingProver) OpenMembership(role Role, index int) (*commitment.Opening, error) {
	opens := p.colOpens
	if role == ColAgent {
		opens = p.rowOpens
	}
	if len(opens) == 0 {
		return nil, fmt.Errorf("interactive: no openings")
	}
	return opens[(index+1)%len(opens)], nil
}

// DenyingProver commits to an all-zero membership vector: it denies that any
// index is in the other agent's support, so no query pair is ever
// conclusive. The verifier must reject as inconclusive rather than accept.
type DenyingProver struct {
	honest *HonestProver
	comms  []commitment.Commitment
	opens  []*commitment.Opening
}

var _ P2Prover = (*DenyingProver)(nil)

// NewDenyingProver wraps an honest prover, replacing the membership layer
// with all-zero commitments for both sides (dimension of the larger side is
// reused per role below).
func NewDenyingProver(honest *HonestProver, rng io.Reader) (*DenyingProver, error) {
	n := len(honest.rowComms)
	if len(honest.colComms) > n {
		n = len(honest.colComms)
	}
	bits := make(commitment.BitVector, n)
	comms, opens, err := commitment.CommitBits(bits, rng)
	if err != nil {
		return nil, err
	}
	return &DenyingProver{honest: honest, comms: comms, opens: opens}, nil
}

// Offer is the honest offer with all-zero membership commitments.
func (p *DenyingProver) Offer(role Role) (*P2Offer, error) {
	offer, err := p.honest.Offer(role)
	if err != nil {
		return nil, err
	}
	offer.MembershipCommitments = append([]commitment.Commitment(nil),
		p.comms[:len(offer.MembershipCommitments)]...)
	return offer, nil
}

// OpenMembership opens the all-zero bit for any index.
func (p *DenyingProver) OpenMembership(role Role, index int) (*commitment.Opening, error) {
	if index < 0 || index >= len(p.opens) {
		return nil, fmt.Errorf("interactive: index out of range")
	}
	return p.opens[index], nil
}

// OverclaimingProver commits to membership bits that include indices outside
// the true support. A conclusive test touching a fake in-support index finds
// its expected gain below λ_other and rejects.
type OverclaimingProver struct {
	honest *HonestProver
	comms  map[Role][]commitment.Commitment
	opens  map[Role][]*commitment.Opening
}

var _ P2Prover = (*OverclaimingProver)(nil)

// NewOverclaimingProver claims every index of both supports is in-support.
func NewOverclaimingProver(honest *HonestProver, rng io.Reader) (*OverclaimingProver, error) {
	p := &OverclaimingProver{
		honest: honest,
		comms:  make(map[Role][]commitment.Commitment, 2),
		opens:  make(map[Role][]*commitment.Opening, 2),
	}
	for role, dim := range map[Role]int{RowAgent: len(honest.colComms), ColAgent: len(honest.rowComms)} {
		bits := make(commitment.BitVector, dim)
		for i := range bits {
			bits[i] = true
		}
		comms, opens, err := commitment.CommitBits(bits, rng)
		if err != nil {
			return nil, err
		}
		p.comms[role], p.opens[role] = comms, opens
	}
	return p, nil
}

// Offer is the honest offer with the inflated membership commitments.
func (p *OverclaimingProver) Offer(role Role) (*P2Offer, error) {
	offer, err := p.honest.Offer(role)
	if err != nil {
		return nil, err
	}
	offer.MembershipCommitments = append([]commitment.Commitment(nil), p.comms[role]...)
	return offer, nil
}

// OpenMembership opens the all-one bit for any index.
func (p *OverclaimingProver) OpenMembership(role Role, index int) (*commitment.Opening, error) {
	opens := p.opens[role]
	if index < 0 || index >= len(opens) {
		return nil, fmt.Errorf("interactive: index out of range")
	}
	return opens[index], nil
}

// FakeEquilibriumProver runs the honest machinery on a profile that is NOT
// an equilibrium (constructed without the NewHonestProver validity check).
// It models an inventor whose "statistically observed" outcome is simply
// wrong.
func FakeEquilibriumProver(g *bimatrix.Game, x, y *numeric.Vec, lr, lc *big.Rat, rng io.Reader) (*HonestProver, error) {
	eq := &bimatrix.Equilibrium{
		Profile:   bimatrix.Profile{X: x, Y: y},
		LambdaRow: lr,
		LambdaCol: lc,
	}
	rowBits := make(commitment.BitVector, g.Rows())
	for _, i := range x.Support() {
		rowBits[i] = true
	}
	colBits := make(commitment.BitVector, g.Cols())
	for _, j := range y.Support() {
		colBits[j] = true
	}
	rowComms, rowOpens, err := commitment.CommitBits(rowBits, rng)
	if err != nil {
		return nil, err
	}
	colComms, colOpens, err := commitment.CommitBits(colBits, rng)
	if err != nil {
		return nil, err
	}
	return &HonestProver{
		game: g, eq: eq,
		rowComms: rowComms, rowOpens: rowOpens,
		colComms: colComms, colOpens: colOpens,
	}, nil
}
