package interactive

import (
	"io"
	"math/rand"
	"testing"

	"rationality/internal/bimatrix"
	"rationality/internal/commitment"
	"rationality/internal/numeric"
)

// Remark 3's constant-k testing: requiring more conclusive rounds amplifies
// the probability of catching a prover that lies about a single index.

// sneakyProver claims the honest equilibrium but quietly adds ONE fake index
// to its committed membership vector. A conclusive test touching the fake
// index rejects; tests touching only honest indices pass.
type sneakyProver struct {
	honest *HonestProver
	comms  []commitment.Commitment
	opens  []*commitment.Opening
}

func newSneakyProver(t *testing.T, g *bimatrix.Game, eq *bimatrix.Equilibrium, fakeIdx int, rng io.Reader) *sneakyProver {
	t.Helper()
	honest, err := NewHonestProver(g, eq, rng)
	if err != nil {
		t.Fatal(err)
	}
	bits := make(commitment.BitVector, g.Cols())
	for _, j := range eq.Y.Support() {
		bits[j] = true
	}
	bits[fakeIdx] = true
	comms, opens, err := commitment.CommitBits(bits, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &sneakyProver{honest: honest, comms: comms, opens: opens}
}

func (p *sneakyProver) Offer(role Role) (*P2Offer, error) {
	offer, err := p.honest.Offer(role)
	if err != nil {
		return nil, err
	}
	if role == RowAgent {
		offer.MembershipCommitments = append([]commitment.Commitment(nil), p.comms...)
	}
	return offer, nil
}

func (p *sneakyProver) OpenMembership(role Role, index int) (*commitment.Opening, error) {
	if role == RowAgent {
		return p.opens[index], nil
	}
	return p.honest.OpenMembership(role, index)
}

func TestP2ConstantKAmplification(t *testing.T) {
	// A 16-column game whose equilibrium support is {0..7}; index 15 is
	// falsely claimed in-support. Its gain is 0 != λ2 = 1/8, so any
	// conclusive test touching 15 rejects.
	const n = 16
	const s = 8
	a := make([][]int64, n)
	b := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
	}
	for i := 0; i < s; i++ {
		a[i][i], b[i][i] = 1, 1
	}
	g := bimatrix.FromInts(a, b)
	x := numeric.NewVec(n)
	y := numeric.NewVec(n)
	for i := 0; i < s; i++ {
		x.SetAt(i, numeric.R(1, s))
		y.SetAt(i, numeric.R(1, s))
	}
	eq := &bimatrix.Equilibrium{
		Profile:   bimatrix.Profile{X: x, Y: y},
		LambdaRow: numeric.R(1, s),
		LambdaCol: numeric.R(1, s),
	}

	catchRate := func(minConclusive int) float64 {
		caught := 0
		const iters = 120
		for it := 0; it < iters; it++ {
			prover := newSneakyProver(t, g, eq, n-1, rand.New(rand.NewSource(int64(it))))
			_, err := VerifyP2(g, RowAgent, prover, P2Config{
				Rng:           rand.New(rand.NewSource(int64(10_000 + it))),
				MinConclusive: minConclusive,
			})
			if err != nil {
				caught++
			}
		}
		return float64(caught) / iters
	}

	weak := catchRate(1)
	strong := catchRate(8)
	if strong <= weak {
		t.Fatalf("amplification failed: k=1 catches %.2f, k=8 catches %.2f", weak, strong)
	}
	if strong < 0.5 {
		t.Fatalf("k=8 catch rate %.2f too low", strong)
	}
}
