package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeCertificate hammers the quorum-certificate decoder with
// arbitrary bytes — certificates arrive from untrusted peers (cert-put,
// record ingestion), so the decoder must reject garbage without
// panicking, and anything it accepts must re-encode and decode back to
// the same certificate.
func FuzzDecodeCertificate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"key":"00","verdict":{"accepted":true},"panel":"AQ==","sigs":["c2ln"]}`))
	f.Add([]byte(`{"key":"zzzz"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte{0xff, 0x00, 0x01})
	if c, err := DecodeCertificate(nil); err == nil && c == nil {
		// empty-input contract exercised above; seed a well-formed blob too
		seed, err := EncodeCertificate(&Certificate{
			Key:     "ab12",
			Verdict: Verdict{Accepted: true, Format: "f/v1"},
			Panel:   []byte{0x03},
			Sigs:    [][]byte{[]byte("s0"), []byte("s1")},
		})
		if err == nil {
			f.Add(seed)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCertificate(data)
		if err != nil {
			return // rejected: fine
		}
		if c == nil {
			if len(bytes.TrimSpace(data)) != 0 && string(bytes.TrimSpace(data)) != "null" {
				// Only the documented empty-input case may yield nil, nil.
				t.Fatalf("non-empty input %q decoded to a nil certificate without error", data)
			}
			return
		}
		_, _ = c.KeyHash() // must not panic for any decoded certificate
		encoded, err := EncodeCertificate(c)
		if err != nil {
			t.Fatalf("decoded certificate failed to re-encode: %v", err)
		}
		back, err := DecodeCertificate(encoded)
		if err != nil || back == nil {
			t.Fatalf("re-encoded certificate failed to decode: %v", err)
		}
		if back.Key != c.Key || back.Verdict.Accepted != c.Verdict.Accepted ||
			!bytes.Equal(back.Panel, c.Panel) || len(back.Sigs) != len(c.Sigs) {
			t.Fatalf("round trip changed the certificate: %+v -> %+v", c, back)
		}
	})
}
