package core

import (
	"fmt"

	"rationality/internal/bimatrix"
	"rationality/internal/game"
	"rationality/internal/interactive"
	"rationality/internal/numeric"
	"rationality/internal/participation"
	"rationality/internal/proof"
)

// This file holds the inventor-side announcement builders: the (possibly
// expensive) computations that produce advice plus proof for each supported
// format. Dishonest variants forge the advice so the framework's detection
// path can be exercised end to end.

// AnnounceEnumeration computes a maximal pure Nash equilibrium of the game,
// builds its §3 enumeration certificate, and packages the announcement.
func AnnounceEnumeration(inventorID string, g *game.Game, mode proof.Mode) (Announcement, error) {
	pf, err := proof.BuildBestAdvice(g, mode)
	if err != nil {
		return Announcement{}, fmt.Errorf("core: inventor cannot prove advice: %w", err)
	}
	proofBody, err := pf.Marshal()
	if err != nil {
		return Announcement{}, err
	}
	return Announcement{
		InventorID: inventorID,
		Format:     FormatEnumeration,
		Game:       mustJSON(SpecFromGame(g)),
		Advice:     mustJSON(pf.Advised),
		Proof:      proofBody,
	}, nil
}

// AnnounceEnumerationForged is AnnounceEnumeration with the advice switched
// to an arbitrary profile after the proof was built — the forgery an honest
// verifier must catch.
func AnnounceEnumerationForged(inventorID string, g *game.Game, forged game.Profile) (Announcement, error) {
	ann, err := AnnounceEnumeration(inventorID, g, proof.MaxNash)
	if err != nil {
		return Announcement{}, err
	}
	ann.Advice = mustJSON(forged)
	return ann, nil
}

// AnnounceP1 computes a mixed equilibrium of the bimatrix game by support
// enumeration (the PPAD-hard step) and announces only the supports, P1
// style: the proof body is empty, the verifier re-derives everything.
func AnnounceP1(inventorID, name string, g *bimatrix.Game) (Announcement, error) {
	advice, _, err := interactive.BuildP1Advice(g)
	if err != nil {
		return Announcement{}, err
	}
	return Announcement{
		InventorID: inventorID,
		Format:     FormatP1,
		Game:       mustJSON(SpecFromBimatrix(name, g)),
		Advice:     mustJSON(advice),
	}, nil
}

// AnnounceP1Forged announces supports that do not correspond to any
// equilibrium of the game.
func AnnounceP1Forged(inventorID, name string, g *bimatrix.Game, rowSupport, colSupport []int) Announcement {
	return Announcement{
		InventorID: inventorID,
		Format:     FormatP1,
		Game:       mustJSON(SpecFromBimatrix(name, g)),
		Advice: mustJSON(&interactive.P1Advice{
			RowSupport: rowSupport,
			ColSupport: colSupport,
			Rows:       g.Rows(),
			Cols:       g.Cols(),
		}),
	}
}

// AnnounceNAgent packages a known mixed equilibrium of an n-agent game as a
// Remark 1 announcement.
func AnnounceNAgent(inventorID string, g *game.Game, mp game.MixedProfile) (Announcement, error) {
	advice, err := interactive.BuildNAgentAdvice(g, mp)
	if err != nil {
		return Announcement{}, err
	}
	probs := make([]VecSpec, len(advice.Probs))
	for i, v := range advice.Probs {
		probs[i] = SpecFromVec(v)
	}
	return Announcement{
		InventorID: inventorID,
		Format:     FormatNAgent,
		Game:       mustJSON(SpecFromGame(g)),
		Advice:     mustJSON(NAgentAdviceSpec{Supports: advice.Supports, Probs: probs}),
	}, nil
}

// AnnounceParticipation solves the §5 symmetric equilibrium exactly (trying
// small denominators first, then bisection with the given tolerance) and
// announces p. With an exact root the advice carries no tolerance and the
// verifier's check is exact.
func AnnounceParticipation(inventorID, name string, g *participation.Game, branch participation.Branch) (Announcement, error) {
	spec := ParticipationAdviceSpec{}
	if p, ok := g.SolveExact(branch, 64); ok {
		spec.P = p.RatString()
	} else {
		tol := numeric.R(1, 1<<30)
		p, _, err := g.Solve(branch, tol)
		if err != nil {
			return Announcement{}, err
		}
		spec.P = p.RatString()
		// The verifier tolerance must cover the residual gap: scale the
		// bisection tolerance by a safe constant.
		spec.Tolerance = numeric.Mul(numeric.Mul(g.V(), numeric.I(int64(g.N()*g.N()))), tol).RatString()
	}
	return Announcement{
		InventorID: inventorID,
		Format:     FormatParticipation,
		Game:       mustJSON(SpecFromParticipation(name, g)),
		Advice:     mustJSON(spec),
	}, nil
}

// AnnounceParticipationForged announces an arbitrary probability as the
// equilibrium.
func AnnounceParticipationForged(inventorID, name string, g *participation.Game, p string) Announcement {
	return Announcement{
		InventorID: inventorID,
		Format:     FormatParticipation,
		Game:       mustJSON(SpecFromParticipation(name, g)),
		Advice:     mustJSON(ParticipationAdviceSpec{P: p}),
	}
}
