package core

import (
	"context"
	"testing"

	"rationality/internal/game"
)

func TestEndToEndCorrelated(t *testing.T) {
	// Chicken: the welfare-optimal correlated equilibrium beats every Nash
	// equilibrium; the agents verify the device's distribution before
	// obeying.
	g := game.NewBimatrix("chicken",
		[][]int64{{6, 2}, {7, 0}},
		[][]int64{{6, 7}, {2, 0}},
	)
	ann, err := AnnounceCorrelated("device", g)
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest correlated advice rejected: %+v", res.Verdicts)
	}
	v := res.Verdicts["v1"]
	if v.Details["value[0]"] == "" || v.Details["value[1]"] == "" {
		t.Errorf("missing values: %v", v.Details)
	}
}

func TestEndToEndCorrelatedForged(t *testing.T) {
	g := game.PrisonersDilemma()
	// A point mass on mutual cooperation violates obedience.
	ann := Announcement{
		InventorID: "evil-device",
		Format:     FormatCorrelated,
		Game:       mustJSON(SpecFromGame(g)),
		Advice: mustJSON(CorrelatedAdviceSpec{Entries: []CorrelatedEntry{
			{Profile: game.Profile{0, 0}, Prob: "1"},
		}}),
	}
	agent, registry := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged correlated advice accepted")
	}
	if registry.Reputation("evil-device") >= 0.5 {
		t.Error("forging device kept its reputation")
	}
}

func TestCorrelatedProcedureMalformedInputs(t *testing.T) {
	proc := CorrelatedProcedure{}
	goodGame := mustJSON(SpecFromGame(game.PrisonersDilemma()))

	if _, err := proc.Verify([]byte("{bad"), nil, nil); err == nil {
		t.Error("broken game spec accepted")
	}
	if _, err := proc.Verify(goodGame, []byte("{bad"), nil); err == nil {
		t.Error("broken advice accepted")
	}
	if _, err := proc.Verify(goodGame, mustJSON(CorrelatedAdviceSpec{Entries: []CorrelatedEntry{
		{Profile: game.Profile{0, 0}, Prob: "zebra"},
	}}), nil); err == nil {
		t.Error("unparsable probability accepted")
	}

	// A sub-stochastic distribution is a verdict-level rejection, not an
	// error.
	verdict, err := proc.Verify(goodGame, mustJSON(CorrelatedAdviceSpec{Entries: []CorrelatedEntry{
		{Profile: game.Profile{1, 1}, Prob: "1/2"},
	}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Accepted {
		t.Error("sub-stochastic distribution accepted")
	}
}

func TestRegistryIncludesCorrelatedFormat(t *testing.T) {
	r := NewProcedureRegistry()
	if _, err := r.Lookup(FormatCorrelated); err != nil {
		t.Fatalf("correlated format not registered: %v", err)
	}
	if got := len(r.Formats()); got != 7 {
		t.Errorf("formats = %d, want 7", got)
	}
}
