package core

import (
	"encoding/json"
	"fmt"

	"rationality/internal/participation"
)

// FormatLastMover is §5's online-participation advice. Instead of answering
// one query (which would reveal to the inventor when the agent is moving),
// the inventor publishes the FULL decision table — for every possible count
// of prior participants, the advised decision — and the verifier checks
// every entry is a best reply. The agent then looks up its privately
// observed count locally: the verification method reveals the count to
// nobody, refining the paper's note that the naive per-query method "reveals
// the number of firms that have already played".
const FormatLastMover = "participation-online/v1"

// LastMoverAdviceSpec is the wire form: Decisions[count] is true to
// participate when `count` firms already entered; the table must have
// exactly n entries (counts 0..n−1).
type LastMoverAdviceSpec struct {
	Decisions []bool `json:"decisions"`
}

// LastMoverProcedure checks FormatLastMover advice: game =
// ParticipationSpec, advice = LastMoverAdviceSpec, proof = empty.
type LastMoverProcedure struct{}

// Format implements Procedure.
func (LastMoverProcedure) Format() string { return FormatLastMover }

// Verify implements Procedure.
func (LastMoverProcedure) Verify(gameSpec, advice, _ json.RawMessage) (*Verdict, error) {
	var spec ParticipationSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: last-mover game spec: %w", err)
	}
	g, err := spec.ToParticipation()
	if err != nil {
		return nil, err
	}
	var advSpec LastMoverAdviceSpec
	if err := json.Unmarshal(advice, &advSpec); err != nil {
		return nil, fmt.Errorf("core: last-mover advice: %w", err)
	}

	verdict := &Verdict{Format: FormatLastMover, Details: map[string]string{}}
	if len(advSpec.Decisions) != g.N() {
		verdict.Reason = fmt.Sprintf("decision table has %d entries; need one per count 0..%d",
			len(advSpec.Decisions), g.N()-1)
		return verdict, nil
	}
	for count, participate := range advSpec.Decisions {
		d := participation.Abstain
		if participate {
			d = participation.Participate
		}
		gain, err := g.VerifyLastMoverAdvice(count, d)
		if err != nil {
			verdict.Reason = err.Error()
			return verdict, nil
		}
		verdict.Details[fmt.Sprintf("gain[count=%d]", count)] = gain.RatString()
	}
	verdict.Accepted = true
	return verdict, nil
}

// AnnounceLastMover computes the honest decision table for the game.
func AnnounceLastMover(inventorID, name string, g *participation.Game) (Announcement, error) {
	decisions := make([]bool, g.N())
	for count := 0; count < g.N(); count++ {
		d, _, err := g.LastMoverAdvice(count)
		if err != nil {
			return Announcement{}, err
		}
		decisions[count] = d == participation.Participate
	}
	return Announcement{
		InventorID: inventorID,
		Format:     FormatLastMover,
		Game:       mustJSON(SpecFromParticipation(name, g)),
		Advice:     mustJSON(LastMoverAdviceSpec{Decisions: decisions}),
	}, nil
}

// AnnounceLastMoverFlipped is the paper's "false advice": every decision
// inverted. The verifiers must reject it (a flip causes a loss).
func AnnounceLastMoverFlipped(inventorID, name string, g *participation.Game) (Announcement, error) {
	ann, err := AnnounceLastMover(inventorID, name, g)
	if err != nil {
		return Announcement{}, err
	}
	var spec LastMoverAdviceSpec
	if err := json.Unmarshal(ann.Advice, &spec); err != nil {
		return Announcement{}, err
	}
	for i := range spec.Decisions {
		spec.Decisions[i] = !spec.Decisions[i]
	}
	ann.Advice = mustJSON(spec)
	return ann, nil
}
