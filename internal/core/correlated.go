package core

import (
	"encoding/json"
	"fmt"

	"rationality/internal/game"
	"rationality/internal/numeric"
)

// FormatCorrelated is the correlated-equilibrium advice format: the inventor
// plays the role of Aumann's correlation device, but — unlike the classical
// trusted device the paper contrasts itself with — the announced
// distribution is VERIFIED by the agents' procedures before anyone obeys a
// recommendation.
const FormatCorrelated = "correlated/v1"

// CorrelatedAdviceSpec is the wire form of a correlated-equilibrium advice:
// the distribution as (profile, probability) pairs; omitted profiles have
// probability zero.
type CorrelatedAdviceSpec struct {
	Entries []CorrelatedEntry `json:"entries"`
}

// CorrelatedEntry is one (profile, probability) pair.
type CorrelatedEntry struct {
	Profile game.Profile `json:"profile"`
	Prob    string       `json:"prob"`
}

// CorrelatedProcedure checks FormatCorrelated advice: game = GameSpec,
// advice = CorrelatedAdviceSpec, proof = empty (the obedience constraints
// are linear; the verifier checks them directly).
type CorrelatedProcedure struct{}

// Format implements Procedure.
func (CorrelatedProcedure) Format() string { return FormatCorrelated }

// Verify implements Procedure.
func (CorrelatedProcedure) Verify(gameSpec, advice, _ json.RawMessage) (*Verdict, error) {
	var spec GameSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: correlated game spec: %w", err)
	}
	g, err := spec.ToGame()
	if err != nil {
		return nil, err
	}
	var advSpec CorrelatedAdviceSpec
	if err := json.Unmarshal(advice, &advSpec); err != nil {
		return nil, fmt.Errorf("core: correlated advice: %w", err)
	}
	entries := make(map[string]*numeric.Rat, len(advSpec.Entries))
	for _, e := range advSpec.Entries {
		p, err := numeric.ParseRat(e.Prob)
		if err != nil {
			return nil, fmt.Errorf("core: correlated advice probability: %w", err)
		}
		entries[e.Profile.String()] = p
	}

	verdict := &Verdict{Format: FormatCorrelated, Details: map[string]string{}}
	d, err := game.NewCorrelatedDistribution(g, entries)
	if err != nil {
		verdict.Reason = err.Error()
		return verdict, nil
	}
	if !g.IsCorrelatedEquilibrium(d) {
		verdict.Reason = "obedience constraints violated: some recommendation invites a profitable deviation"
		return verdict, nil
	}
	verdict.Accepted = true
	for i := 0; i < g.NumAgents(); i++ {
		verdict.Details[fmt.Sprintf("value[%d]", i)] = g.ExpectedPayoffCorrelated(i, d).RatString()
	}
	return verdict, nil
}

// AnnounceCorrelated solves the welfare-optimal correlated equilibrium (one
// exact LP — polynomial, unlike Nash) and packages the announcement.
func AnnounceCorrelated(inventorID string, g *game.Game) (Announcement, error) {
	d, err := g.SolveCorrelatedEquilibrium()
	if err != nil {
		return Announcement{}, err
	}
	var entries []CorrelatedEntry
	g.ForEachProfile(func(p game.Profile) bool {
		prob := d.Prob(g, p)
		if prob.Sign() != 0 {
			entries = append(entries, CorrelatedEntry{Profile: p.Clone(), Prob: prob.RatString()})
		}
		return true
	})
	return Announcement{
		InventorID: inventorID,
		Format:     FormatCorrelated,
		Game:       mustJSON(SpecFromGame(g)),
		Advice:     mustJSON(CorrelatedAdviceSpec{Entries: entries}),
	}, nil
}
