package core

import (
	"context"
	"errors"
	"testing"

	"rationality/internal/game"
	"rationality/internal/proof"
	"rationality/internal/reputation"
	"rationality/internal/transport"
)

// Resilience tests: the agent must degrade gracefully when verifiers crash,
// hang up, or split evenly.

// brokenClient always fails.
type brokenClient struct{}

func (brokenClient) Call(context.Context, transport.Message) (transport.Message, error) {
	return transport.Message{}, errors.New("connection refused")
}
func (brokenClient) Close() error { return nil }

func TestConsultSurvivesAbstainingVerifier(t *testing.T) {
	ann, err := AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventor, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	verifiers := map[string]transport.Client{"dead": brokenClient{}}
	for _, id := range []string{"v1", "v2", "v3"} {
		vs, err := NewVerifierService(id)
		if err != nil {
			t.Fatal(err)
		}
		verifiers[id] = transport.DialInProc(vs)
	}
	registry := reputation.NewRegistry()
	agent, err := NewAgent(AgentConfig{
		Name:      "resilient",
		Inventor:  transport.DialInProc(inventor),
		Verifiers: verifiers,
		Registry:  registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("three healthy verifiers should carry the vote")
	}
	if len(res.Verdicts) != 3 {
		t.Fatalf("verdicts = %d, want 3 (dead verifier abstains)", len(res.Verdicts))
	}
	// Abstaining must not move the dead verifier's reputation.
	if registry.Reputation("dead") != 0.5 {
		t.Error("abstaining verifier's reputation changed")
	}
}

func TestConsultFailsWhenAllVerifiersDead(t *testing.T) {
	ann, err := AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventor, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(AgentConfig{
		Name:      "stranded",
		Inventor:  transport.DialInProc(inventor),
		Verifiers: map[string]transport.Client{"dead1": brokenClient{}, "dead2": brokenClient{}},
		Registry:  reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Consult(context.Background()); err == nil {
		t.Fatal("consultation succeeded with no live verifiers")
	}
}

func TestConsultTieIsAnError(t *testing.T) {
	ann, err := AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventor, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := NewVerifierService("honest")
	if err != nil {
		t.Fatal(err)
	}
	corrupt, err := NewCorruptVerifierService("corrupt")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(AgentConfig{
		Name:     "torn",
		Inventor: transport.DialInProc(inventor),
		Verifiers: map[string]transport.Client{
			"honest":  transport.DialInProc(honest),
			"corrupt": transport.DialInProc(corrupt),
		},
		Registry: reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Consult(context.Background()); !errors.Is(err, reputation.ErrTie) {
		t.Fatalf("err = %v, want a tie", err)
	}
}

func TestConsultDeadInventor(t *testing.T) {
	vs, err := NewVerifierService("v")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(AgentConfig{
		Name:      "orphan",
		Inventor:  brokenClient{},
		Verifiers: map[string]transport.Client{"v": transport.DialInProc(vs)},
		Registry:  reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Consult(context.Background()); err == nil {
		t.Fatal("consultation succeeded with a dead inventor")
	}
}

// Large announcements survive the TCP codec: an enumeration proof for a
// 2x32-strategy game is ~40 KB of JSON.
func TestLargeProofOverTCP(t *testing.T) {
	g := game.RandomGame("big", []int{32, 32}, 8, func(n int64) int64 { return n / 2 })
	pf, err := proof.BuildBestAdvice(g, proof.AnyNash)
	if err != nil {
		t.Skip("constructed game has no pure equilibrium")
	}
	proofBody, err := pf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ann := Announcement{
		InventorID: "big-inventor",
		Format:     FormatEnumeration,
		Game:       mustJSON(SpecFromGame(g)),
		Advice:     mustJSON(pf.Advised),
		Proof:      proofBody,
	}
	inventorSvc, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ListenTCP("127.0.0.1:0", inventorSvc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	vs, err := NewVerifierService("v")
	if err != nil {
		t.Fatal(err)
	}
	vsrv, err := transport.ListenTCP("127.0.0.1:0", vs)
	if err != nil {
		t.Fatal(err)
	}
	defer vsrv.Close()

	inventorClient, err := transport.DialTCP(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer inventorClient.Close()
	verifierClient, err := transport.DialTCP(vsrv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer verifierClient.Close()

	agent, err := NewAgent(AgentConfig{
		Name:      "big-agent",
		Inventor:  inventorClient,
		Verifiers: map[string]transport.Client{"v": verifierClient},
		Registry:  reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("large honest proof rejected: %+v", res.Verdicts)
	}
}
