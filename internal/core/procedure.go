package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"rationality/internal/game"
	"rationality/internal/interactive"
	"rationality/internal/numeric"
	"rationality/internal/proof"
)

// Proof formats understood by the bundled verification procedures. The
// paper: the procedures "should be able to check proofs in an agreed upon
// format", possibly "even an empty proof relying on the verifier procedure
// to check the suggested actions in the style of nondeterministic Turing
// machines" — which is exactly what the P1 and participation formats are:
// the advice is the witness, the proof body is empty.
const (
	// FormatEnumeration is the §3 Coq-style enumeration certificate for pure
	// Nash equilibria of strategic-form games.
	FormatEnumeration = "enumeration-nash/v1"
	// FormatP1 is the §4 support-revealing advice for bimatrix games; empty
	// proof, verifier solves the indifference system (Fig. 3).
	FormatP1 = "p1-supports/v1"
	// FormatNAgent is Remark 1's n-agent supports+probabilities advice.
	FormatNAgent = "n-agent-supports/v1"
	// FormatParticipation is the §5 symmetric equilibrium probability advice
	// for participation games; empty proof, verifier asserts Eq. (5).
	FormatParticipation = "participation/v1"
)

// Verdict is a verifier's structured answer.
type Verdict struct {
	Accepted bool   `json:"accepted"`
	Format   string `json:"format"`
	// Reason explains a rejection (empty on acceptance).
	Reason string `json:"reason,omitempty"`
	// Details carries format-specific findings, e.g. the equilibrium values
	// the verifier recovered.
	Details map[string]string `json:"details,omitempty"`
}

// Clone returns a deep copy of the verdict. Details is a mutable map, so
// any holder that shares a verdict across goroutines or caches it must
// copy before handing it out; this is the one place that knows which
// fields need deep treatment.
func (v Verdict) Clone() Verdict {
	if v.Details != nil {
		details := make(map[string]string, len(v.Details))
		for k, val := range v.Details {
			details[k] = val
		}
		v.Details = details
	}
	return v
}

// Procedure is one verification procedure v(): it knows how to check one
// proof format. Implementations must be stateless and safe for concurrent
// use — the same procedure object serves many requests.
type Procedure interface {
	// Format returns the proof format this procedure checks.
	Format() string
	// Verify checks advice (and proof, when the format carries one) against
	// the game description. It returns a Verdict; an error means the inputs
	// were unintelligible rather than wrong (malformed JSON, unknown game),
	// which callers usually also treat as rejection.
	Verify(gameSpec, advice, proofBody json.RawMessage) (*Verdict, error)
}

// ProcedureRegistry resolves formats to procedures; the paper's "library for
// the specification of the solution concepts".
type ProcedureRegistry struct {
	mu    sync.RWMutex
	procs map[string]Procedure
}

// NewProcedureRegistry returns a registry preloaded with the four bundled
// procedures.
func NewProcedureRegistry() *ProcedureRegistry {
	r := &ProcedureRegistry{procs: make(map[string]Procedure)}
	for _, p := range []Procedure{
		EnumerationProcedure{},
		P1Procedure{},
		NAgentProcedure{},
		ParticipationProcedure{},
		CorrelatedProcedure{},
		LastMoverProcedure{},
		LinksRoutingProcedure{},
	} {
		r.Register(p)
	}
	return r
}

// Register adds or replaces a procedure.
func (r *ProcedureRegistry) Register(p Procedure) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs[p.Format()] = p
}

// Lookup resolves a format.
func (r *ProcedureRegistry) Lookup(format string) (Procedure, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.procs[format]
	if !ok {
		return nil, fmt.Errorf("core: no verification procedure for format %q", format)
	}
	return p, nil
}

// Formats lists the registered formats in sorted order — what a verifier
// advertises to agents.
func (r *ProcedureRegistry) Formats() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.procs))
	for f := range r.procs {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// EnumerationProcedure checks §3 certificates: game = GameSpec, advice =
// the recommended profile, proof = the full proof.Proof enumeration
// certificate.
type EnumerationProcedure struct{}

// Format implements Procedure.
func (EnumerationProcedure) Format() string { return FormatEnumeration }

// Verify implements Procedure.
func (EnumerationProcedure) Verify(gameSpec, advice, proofBody json.RawMessage) (*Verdict, error) {
	var spec GameSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: enumeration game spec: %w", err)
	}
	g, err := spec.ToGame()
	if err != nil {
		return nil, err
	}
	var advised game.Profile
	if err := json.Unmarshal(advice, &advised); err != nil {
		return nil, fmt.Errorf("core: enumeration advice: %w", err)
	}
	pf, err := proof.Unmarshal(proofBody)
	if err != nil {
		return nil, err
	}
	verdict := &Verdict{Format: FormatEnumeration, Details: map[string]string{
		"steps": fmt.Sprint(pf.Steps()),
		"mode":  pf.Mode.String(),
	}}
	if !pf.Advised.Equal(advised) {
		verdict.Reason = fmt.Sprintf("proof certifies %v but the advice is %v", pf.Advised, advised)
		return verdict, nil
	}
	if err := proof.Check(g, pf); err != nil {
		verdict.Reason = err.Error()
		return verdict, nil
	}
	verdict.Accepted = true
	for i := 0; i < g.NumAgents(); i++ {
		verdict.Details[fmt.Sprintf("payoff[%d]", i)] = g.Payoff(i, advised).RatString()
	}
	return verdict, nil
}

// P1Procedure checks §4 support advice: game = BimatrixSpec, advice =
// interactive.P1Advice, proof = empty.
type P1Procedure struct{}

// Format implements Procedure.
func (P1Procedure) Format() string { return FormatP1 }

// Verify implements Procedure.
func (P1Procedure) Verify(gameSpec, advice, _ json.RawMessage) (*Verdict, error) {
	var spec BimatrixSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: P1 game spec: %w", err)
	}
	g, err := spec.ToBimatrix()
	if err != nil {
		return nil, err
	}
	var adv interactive.P1Advice
	if err := json.Unmarshal(advice, &adv); err != nil {
		return nil, fmt.Errorf("core: P1 advice: %w", err)
	}
	verdict := &Verdict{Format: FormatP1, Details: map[string]string{
		"bitsOnWire": fmt.Sprint(adv.BitsOnWire()),
	}}
	eq, err := interactive.VerifyP1(g, &adv)
	if err != nil {
		verdict.Reason = err.Error()
		return verdict, nil
	}
	verdict.Accepted = true
	verdict.Details["lambdaRow"] = eq.LambdaRow.RatString()
	verdict.Details["lambdaCol"] = eq.LambdaCol.RatString()
	verdict.Details["x"] = eq.X.String()
	verdict.Details["y"] = eq.Y.String()
	return verdict, nil
}

// NAgentAdviceSpec is the wire form of Remark 1's n-agent advice.
type NAgentAdviceSpec struct {
	Supports [][]int   `json:"supports"`
	Probs    []VecSpec `json:"probs"`
}

// NAgentProcedure checks the n-agent generalization: game = GameSpec,
// advice = NAgentAdviceSpec, proof = empty.
type NAgentProcedure struct{}

// Format implements Procedure.
func (NAgentProcedure) Format() string { return FormatNAgent }

// Verify implements Procedure.
func (NAgentProcedure) Verify(gameSpec, advice, _ json.RawMessage) (*Verdict, error) {
	var spec GameSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: n-agent game spec: %w", err)
	}
	g, err := spec.ToGame()
	if err != nil {
		return nil, err
	}
	var advSpec NAgentAdviceSpec
	if err := json.Unmarshal(advice, &advSpec); err != nil {
		return nil, fmt.Errorf("core: n-agent advice: %w", err)
	}
	probs := make(game.MixedProfile, len(advSpec.Probs))
	for i, vs := range advSpec.Probs {
		v, err := vs.ToVec()
		if err != nil {
			return nil, err
		}
		probs[i] = v
	}
	verdict := &Verdict{Format: FormatNAgent, Details: map[string]string{}}
	values, err := interactive.VerifyNAgent(g, &interactive.NAgentAdvice{
		Supports: advSpec.Supports,
		Probs:    probs,
	})
	if err != nil {
		verdict.Reason = err.Error()
		return verdict, nil
	}
	verdict.Accepted = true
	for i, v := range values {
		verdict.Details[fmt.Sprintf("value[%d]", i)] = v.RatString()
	}
	return verdict, nil
}

// ParticipationAdviceSpec is the §5 advice: the symmetric equilibrium
// probability (plus an optional tolerance for numerically solved roots).
type ParticipationAdviceSpec struct {
	P string `json:"p"`
	// Tolerance, when non-empty, lets the verifier accept a p whose
	// indifference gap is within the given bound (exact check otherwise).
	Tolerance string `json:"tolerance,omitempty"`
}

// ParticipationProcedure checks §5 advice: game = ParticipationSpec, advice
// = ParticipationAdviceSpec, proof = empty (the verifier asserts Eq. (5)).
type ParticipationProcedure struct{}

// Format implements Procedure.
func (ParticipationProcedure) Format() string { return FormatParticipation }

// Verify implements Procedure.
func (ParticipationProcedure) Verify(gameSpec, advice, _ json.RawMessage) (*Verdict, error) {
	var spec ParticipationSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: participation game spec: %w", err)
	}
	g, err := spec.ToParticipation()
	if err != nil {
		return nil, err
	}
	var advSpec ParticipationAdviceSpec
	if err := json.Unmarshal(advice, &advSpec); err != nil {
		return nil, fmt.Errorf("core: participation advice: %w", err)
	}
	p, err := numeric.ParseRat(advSpec.P)
	if err != nil {
		return nil, fmt.Errorf("core: participation advice p: %w", err)
	}
	verdict := &Verdict{Format: FormatParticipation, Details: map[string]string{
		"p": p.RatString(),
	}}
	if advSpec.Tolerance != "" {
		tol, err := numeric.ParseRat(advSpec.Tolerance)
		if err != nil {
			return nil, fmt.Errorf("core: participation tolerance: %w", err)
		}
		gap, err := g.VerifyAdviceApprox(p, tol)
		if err != nil {
			verdict.Reason = err.Error()
			return verdict, nil
		}
		verdict.Accepted = true
		verdict.Details["indifferenceGap"] = gap.RatString()
		verdict.Details["expectedGain"] = g.GainAbstain(p).RatString()
		return verdict, nil
	}
	gain, err := g.VerifyAdvice(p)
	if err != nil {
		verdict.Reason = err.Error()
		return verdict, nil
	}
	verdict.Accepted = true
	verdict.Details["expectedGain"] = gain.RatString()
	return verdict, nil
}
