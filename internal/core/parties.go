package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"rationality/internal/reputation"
	"rationality/internal/transport"
)

// Protocol message types.
const (
	// MsgAnnounce: agent → inventor. Empty payload; the reply is an
	// Announcement.
	MsgAnnounce = "announce"
	// MsgVerify: agent → verifier. Payload VerifyRequest; reply
	// VerifyResponse.
	MsgVerify = "verify"
	// MsgFormats: agent → verifier. Empty payload; reply FormatsResponse.
	MsgFormats = "formats"
)

// Announcement is the inventor's message of Fig. 1: the game G, the
// suggested actions (advice), and a checkable proof of their feasibility and
// optimality in an agreed-upon format.
type Announcement struct {
	InventorID string          `json:"inventorId"`
	Format     string          `json:"format"`
	Game       json.RawMessage `json:"game"`
	Advice     json.RawMessage `json:"advice"`
	Proof      json.RawMessage `json:"proof,omitempty"`
	// Signature, when present, is the inventor's Ed25519 signature over the
	// other fields (see SignAnnouncement); InventorID is then the signer's
	// self-certifying identity.
	Signature []byte `json:"signature,omitempty"`
}

// VerifyRequest asks a verifier to check an announcement.
type VerifyRequest struct {
	Format string          `json:"format"`
	Game   json.RawMessage `json:"game"`
	Advice json.RawMessage `json:"advice"`
	Proof  json.RawMessage `json:"proof,omitempty"`
}

// VerifyResponse is the verifier's signed-by-reputation answer.
type VerifyResponse struct {
	VerifierID string  `json:"verifierId"`
	Verdict    Verdict `json:"verdict"`
}

// FormatsResponse lists the proof formats a verifier can check.
type FormatsResponse struct {
	VerifierID string   `json:"verifierId"`
	Formats    []string `json:"formats"`
}

// InventorService serves announcements over a transport. The announcement is
// fixed at construction: one service per announced game, as in the paper's
// single-game interaction.
type InventorService struct {
	announcement Announcement
}

var _ transport.Handler = (*InventorService)(nil)

// NewInventorService wraps a prepared announcement.
func NewInventorService(a Announcement) (*InventorService, error) {
	if a.InventorID == "" {
		return nil, fmt.Errorf("core: announcement needs an inventor ID")
	}
	if a.Format == "" || len(a.Game) == 0 || len(a.Advice) == 0 {
		return nil, fmt.Errorf("core: announcement needs format, game, and advice")
	}
	return &InventorService{announcement: a}, nil
}

// Handle implements transport.Handler.
func (s *InventorService) Handle(_ context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgAnnounce:
		return transport.NewMessage("announcement", s.announcement)
	default:
		return transport.Message{}, fmt.Errorf("core: inventor cannot handle %q", req.Type)
	}
}

// VerifierService serves verification requests using a procedure registry —
// the paper's trustable seller of verification procedures.
type VerifierService struct {
	id    string
	procs *ProcedureRegistry
	// corrupt, when set, flips every verdict — a test double for the
	// "majority of verifiers is trusted" analysis. An honest deployment
	// leaves it false.
	corrupt bool
}

var _ transport.Handler = (*VerifierService)(nil)

// NewVerifierService creates an honest verifier with the bundled procedures.
func NewVerifierService(id string) (*VerifierService, error) {
	if id == "" {
		return nil, fmt.Errorf("core: verifier needs an ID")
	}
	return &VerifierService{id: id, procs: NewProcedureRegistry()}, nil
}

// NewCorruptVerifierService creates a verifier that always lies (flips its
// verdicts). Used to exercise the majority-voting and reputation machinery.
func NewCorruptVerifierService(id string) (*VerifierService, error) {
	v, err := NewVerifierService(id)
	if err != nil {
		return nil, err
	}
	v.corrupt = true
	return v, nil
}

// ID returns the verifier's identifier.
func (s *VerifierService) ID() string { return s.id }

// Register adds a custom procedure to this verifier.
func (s *VerifierService) Register(p Procedure) { s.procs.Register(p) }

// Handle implements transport.Handler.
func (s *VerifierService) Handle(_ context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgVerify:
		var vr VerifyRequest
		if err := req.Decode(&vr); err != nil {
			return transport.Message{}, err
		}
		verdict, err := s.verify(vr)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("verdict", VerifyResponse{VerifierID: s.id, Verdict: *verdict})
	case MsgFormats:
		return transport.NewMessage("formats", FormatsResponse{
			VerifierID: s.id,
			Formats:    s.procs.Formats(),
		})
	default:
		return transport.Message{}, fmt.Errorf("core: verifier cannot handle %q", req.Type)
	}
}

func (s *VerifierService) verify(vr VerifyRequest) (*Verdict, error) {
	proc, err := s.procs.Lookup(vr.Format)
	if err != nil {
		return nil, err
	}
	verdict, err := proc.Verify(vr.Game, vr.Advice, vr.Proof)
	if err != nil {
		// Unintelligible inputs: report as a rejection with the parse error,
		// so the agent still gets a verdict to vote on.
		verdict = &Verdict{Format: vr.Format, Reason: err.Error()}
	}
	if s.corrupt {
		verdict.Accepted = !verdict.Accepted
		if verdict.Accepted {
			verdict.Reason = ""
		} else {
			verdict.Reason = "rejected" // a liar gives no useful evidence
		}
	}
	return verdict, nil
}

// Agent is the counselee: it consults the (untrusted) inventor, has the
// advice checked by its trusted verifiers, applies majority voting, updates
// reputations, and only then adopts the advice.
type Agent struct {
	name      string
	inventor  transport.Client
	verifiers map[string]transport.Client
	registry  *reputation.Registry
	// threshold is the minimum reputation for a verifier to be consulted.
	threshold float64
	// requireSigned rejects unsigned announcements.
	requireSigned bool
}

// AgentConfig configures an agent.
type AgentConfig struct {
	Name     string
	Inventor transport.Client
	// Verifiers maps verifier IDs to their clients.
	Verifiers map[string]transport.Client
	Registry  *reputation.Registry
	// Threshold is the minimum reputation to include a verifier; default 0
	// (consult all).
	Threshold float64
	// RequireSignedAnnouncements makes the agent reject announcements that
	// carry no inventor signature (footnote 3 accountability). Signed
	// announcements are always signature-checked regardless.
	RequireSignedAnnouncements bool
}

// NewAgent validates and builds an agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: agent needs a name")
	}
	if cfg.Inventor == nil {
		return nil, fmt.Errorf("core: agent needs an inventor client")
	}
	if len(cfg.Verifiers) == 0 {
		return nil, fmt.Errorf("core: agent needs at least one verifier")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("core: agent needs a reputation registry")
	}
	verifiers := make(map[string]transport.Client, len(cfg.Verifiers))
	for id, c := range cfg.Verifiers {
		verifiers[id] = c
	}
	return &Agent{
		name:          cfg.Name,
		inventor:      cfg.Inventor,
		verifiers:     verifiers,
		registry:      cfg.Registry,
		threshold:     cfg.Threshold,
		requireSigned: cfg.RequireSignedAnnouncements,
	}, nil
}

// ConsultResult is the outcome of one consultation round.
type ConsultResult struct {
	Announcement Announcement
	// Verdicts holds each consulted verifier's answer.
	Verdicts map[string]Verdict
	// Accepted is the weighted-majority outcome: the advice is safe to
	// adopt.
	Accepted bool
}

// Consult performs the full Fig. 1 interaction: fetch the announcement,
// fan it out to every trusted verifier, weighted-majority-vote the
// verdicts (each vote counts in proportion to the verifier's current
// reputation and moves it — the same reputation.WeightedVote the quorum
// client uses, with the same deterministic tie-breaking: a weight tie
// falls back to raw counts, and only a double tie errors), and report the
// inventor to the reputation system when the vote rejects its proof. A
// verifier that has lied before therefore cannot out-vote a trusted one
// merely by showing up with accomplices: earned trust, not head count,
// decides what the agent acts on.
func (a *Agent) Consult(ctx context.Context) (*ConsultResult, error) {
	req, err := transport.NewMessage(MsgAnnounce, struct{}{})
	if err != nil {
		return nil, err
	}
	resp, err := a.inventor.Call(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("core: consulting the inventor: %w", err)
	}
	var ann Announcement
	if err := resp.Decode(&ann); err != nil {
		return nil, err
	}

	// Accountability: a present signature must verify; absence is rejected
	// only when the agent demands signed announcements.
	if len(ann.Signature) > 0 {
		if err := VerifyAnnouncementSignature(ann); err != nil {
			return nil, err
		}
	} else if a.requireSigned {
		return nil, ErrUnsignedAnnouncement
	}

	consulted := a.trustedVerifiers()
	if len(consulted) == 0 {
		return nil, fmt.Errorf("core: no verifier meets the reputation threshold %.2f", a.threshold)
	}

	verdicts := make(map[string]Verdict, len(consulted))
	votes := make(map[string]bool, len(consulted))
	for _, id := range consulted {
		verdict, err := a.askVerifier(ctx, a.verifiers[id], ann)
		if err != nil {
			// An unreachable or erroring verifier abstains; it neither votes
			// nor gains reputation.
			continue
		}
		verdicts[id] = *verdict
		votes[id] = verdict.Accepted
	}
	if len(votes) == 0 {
		return nil, fmt.Errorf("core: every verifier failed to answer")
	}

	accepted, err := a.registry.WeightedVote(votes)
	if err != nil {
		return nil, fmt.Errorf("core: no usable majority: %w", err)
	}
	if !accepted {
		a.registry.ReportMisbehaviour(ann.InventorID,
			fmt.Sprintf("agent %s: weighted majority of %d verifiers rejected the %s proof",
				a.name, len(votes), ann.Format))
	}
	return &ConsultResult{Announcement: ann, Verdicts: verdicts, Accepted: accepted}, nil
}

func (a *Agent) trustedVerifiers() []string {
	var ids []string
	for id := range a.verifiers {
		if a.registry.Trusted(id, a.threshold) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

func (a *Agent) askVerifier(ctx context.Context, c transport.Client, ann Announcement) (*Verdict, error) {
	req, err := transport.NewMessage(MsgVerify, VerifyRequest{
		Format: ann.Format,
		Game:   ann.Game,
		Advice: ann.Advice,
		Proof:  ann.Proof,
	})
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(ctx, req)
	if err != nil {
		return nil, err
	}
	var vr VerifyResponse
	if err := resp.Decode(&vr); err != nil {
		return nil, err
	}
	return &vr.Verdict, nil
}
