package core

import (
	"context"
	"fmt"
	"math/big"

	"rationality/internal/commitment"
	"rationality/internal/interactive"
	"rationality/internal/numeric"
	"rationality/internal/transport"
)

// This file runs the §4 interactive proof P2 across the transport layer:
// the prover (inventor) is a service, the verifier (agent) drives the
// protocol through a client. The interactive.P2Prover seam stays identical,
// so the same verifier code runs against an in-process prover, a TCP
// prover, or any adversarial implementation.

// P2 protocol message types.
const (
	// MsgP2Offer: verifier → prover. Payload P2OfferRequest; reply
	// P2OfferResponse.
	MsgP2Offer = "p2-offer"
	// MsgP2Open: verifier → prover. Payload P2OpenRequest; reply
	// P2OpenResponse.
	MsgP2Open = "p2-open"
)

// P2OfferRequest asks for the opening message addressed to a role.
type P2OfferRequest struct {
	Role interactive.Role `json:"role"`
}

// P2OfferResponse is the wire form of interactive.P2Offer.
type P2OfferResponse struct {
	Role        interactive.Role `json:"role"`
	OwnSupport  []int            `json:"ownSupport"`
	OwnProbs    VecSpec          `json:"ownProbs"`
	LambdaOwn   string           `json:"lambdaOwn"`
	LambdaOther string           `json:"lambdaOther"`
	// Commitments are the 32-byte membership commitments, in index order.
	Commitments [][]byte `json:"commitments"`
}

// P2OpenRequest asks the prover to open one membership commitment.
type P2OpenRequest struct {
	Role  interactive.Role `json:"role"`
	Index int              `json:"index"`
}

// P2OpenResponse carries the opening.
type P2OpenResponse struct {
	Opening commitment.Opening `json:"opening"`
}

// P2ProverService exposes a P2Prover (typically interactive.HonestProver)
// over a transport.
type P2ProverService struct {
	prover interactive.P2Prover
}

var _ transport.Handler = (*P2ProverService)(nil)

// NewP2ProverService wraps a prover.
func NewP2ProverService(p interactive.P2Prover) (*P2ProverService, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil P2 prover")
	}
	return &P2ProverService{prover: p}, nil
}

// Handle implements transport.Handler.
func (s *P2ProverService) Handle(_ context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgP2Offer:
		var or P2OfferRequest
		if err := req.Decode(&or); err != nil {
			return transport.Message{}, err
		}
		offer, err := s.prover.Offer(or.Role)
		if err != nil {
			return transport.Message{}, err
		}
		resp := P2OfferResponse{
			Role:        offer.Role,
			OwnSupport:  offer.OwnSupport,
			OwnProbs:    SpecFromVec(offer.OwnProbs),
			LambdaOwn:   offer.LambdaOwn.RatString(),
			LambdaOther: offer.LambdaOther.RatString(),
		}
		resp.Commitments = make([][]byte, len(offer.MembershipCommitments))
		for i, c := range offer.MembershipCommitments {
			cc := c // copy the array before slicing it
			resp.Commitments[i] = cc[:]
		}
		return transport.NewMessage("p2-offer-response", resp)
	case MsgP2Open:
		var or P2OpenRequest
		if err := req.Decode(&or); err != nil {
			return transport.Message{}, err
		}
		open, err := s.prover.OpenMembership(or.Role, or.Index)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("p2-open-response", P2OpenResponse{Opening: *open})
	default:
		return transport.Message{}, fmt.Errorf("core: P2 prover cannot handle %q", req.Type)
	}
}

// RemoteP2Prover adapts a transport client into an interactive.P2Prover, so
// interactive.VerifyP2 can drive a prover on another machine.
type RemoteP2Prover struct {
	client transport.Client
	ctx    context.Context
}

var _ interactive.P2Prover = (*RemoteP2Prover)(nil)

// NewRemoteP2Prover wraps a client. The context bounds every round trip.
func NewRemoteP2Prover(ctx context.Context, c transport.Client) *RemoteP2Prover {
	return &RemoteP2Prover{client: c, ctx: ctx}
}

// Offer implements interactive.P2Prover.
func (r *RemoteP2Prover) Offer(role interactive.Role) (*interactive.P2Offer, error) {
	req, err := transport.NewMessage(MsgP2Offer, P2OfferRequest{Role: role})
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Call(r.ctx, req)
	if err != nil {
		return nil, err
	}
	var or P2OfferResponse
	if err := resp.Decode(&or); err != nil {
		return nil, err
	}
	probs, err := or.OwnProbs.ToVec()
	if err != nil {
		return nil, err
	}
	lambdaOwn, err := parseWireRat(or.LambdaOwn)
	if err != nil {
		return nil, err
	}
	lambdaOther, err := parseWireRat(or.LambdaOther)
	if err != nil {
		return nil, err
	}
	offer := &interactive.P2Offer{
		Role:        or.Role,
		OwnSupport:  or.OwnSupport,
		OwnProbs:    probs,
		LambdaOwn:   lambdaOwn,
		LambdaOther: lambdaOther,
	}
	offer.MembershipCommitments = make([]commitment.Commitment, len(or.Commitments))
	for i, raw := range or.Commitments {
		if len(raw) != len(commitment.Commitment{}) {
			return nil, fmt.Errorf("core: commitment %d has %d bytes", i, len(raw))
		}
		copy(offer.MembershipCommitments[i][:], raw)
	}
	return offer, nil
}

// OpenMembership implements interactive.P2Prover.
func (r *RemoteP2Prover) OpenMembership(role interactive.Role, index int) (*commitment.Opening, error) {
	req, err := transport.NewMessage(MsgP2Open, P2OpenRequest{Role: role, Index: index})
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Call(r.ctx, req)
	if err != nil {
		return nil, err
	}
	var or P2OpenResponse
	if err := resp.Decode(&or); err != nil {
		return nil, err
	}
	return &or.Opening, nil
}

func parseWireRat(s string) (*big.Rat, error) {
	v, err := numeric.ParseRat(s)
	if err != nil {
		return nil, fmt.Errorf("core: wire rational: %w", err)
	}
	return v, nil
}
