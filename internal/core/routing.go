package core

import (
	"encoding/json"
	"fmt"

	"rationality/internal/links"
)

// FormatLinksRouting is §6's routing advice for parallel links, cast as a
// checkable claim. The inventor publishes (per footnote 3, signed when the
// deployment demands it) the current link loads and its statistics — the
// total load observed and how many agents are still expected — and advises
// a link. The inventor's strategy is a DETERMINISTIC function of those
// declared inputs (the LPT Nash assignment of the agent's load plus the
// expected future loads), so the verifier simply recomputes it: the advice
// is the "empty proof" style of checkable claim, with the declared
// statistics as the witness.
const FormatLinksRouting = "links-routing/v1"

// LinksRoutingSpec is the published context the advice is computed from.
type LinksRoutingSpec struct {
	// Loads are the current per-link total loads.
	Loads []int64 `json:"loads"`
	// AgentLoad is the consulting agent's own load.
	AgentLoad int64 `json:"agentLoad"`
	// Remaining is how many more agents the inventor expects after this one.
	Remaining int `json:"remaining"`
	// ObservedTotal and ObservedCount define the running average load
	// statistic w̄ = ObservedTotal / ObservedCount (AgentLoad included).
	ObservedTotal int64 `json:"observedTotal"`
	ObservedCount int   `json:"observedCount"`
}

// LinksRoutingAdviceSpec is the advised link.
type LinksRoutingAdviceSpec struct {
	Link int `json:"link"`
}

// LinksRoutingProcedure recomputes the inventor's strategy from the
// declared statistics and checks the advice matches.
type LinksRoutingProcedure struct{}

// Format implements Procedure.
func (LinksRoutingProcedure) Format() string { return FormatLinksRouting }

// Verify implements Procedure.
func (LinksRoutingProcedure) Verify(gameSpec, advice, _ json.RawMessage) (*Verdict, error) {
	var spec LinksRoutingSpec
	if err := json.Unmarshal(gameSpec, &spec); err != nil {
		return nil, fmt.Errorf("core: links-routing spec: %w", err)
	}
	var advSpec LinksRoutingAdviceSpec
	if err := json.Unmarshal(advice, &advSpec); err != nil {
		return nil, fmt.Errorf("core: links-routing advice: %w", err)
	}

	verdict := &Verdict{Format: FormatLinksRouting, Details: map[string]string{}}
	if len(spec.Loads) == 0 {
		verdict.Reason = "no links declared"
		return verdict, nil
	}
	if spec.AgentLoad <= 0 || spec.ObservedCount <= 0 || spec.ObservedTotal < spec.AgentLoad || spec.Remaining < 0 {
		verdict.Reason = fmt.Sprintf("inconsistent statistics: load=%d observed=%d/%d remaining=%d",
			spec.AgentLoad, spec.ObservedTotal, spec.ObservedCount, spec.Remaining)
		return verdict, nil
	}
	if advSpec.Link < 0 || advSpec.Link >= len(spec.Loads) {
		verdict.Reason = fmt.Sprintf("advised link %d out of range [0, %d)", advSpec.Link, len(spec.Loads))
		return verdict, nil
	}

	sys, err := links.NewSystem(len(spec.Loads))
	if err != nil {
		return nil, err
	}
	for i, l := range spec.Loads {
		if l < 0 {
			verdict.Reason = fmt.Sprintf("negative load on link %d", i)
			return verdict, nil
		}
		if err := sys.Assign(i, l); err != nil {
			return nil, err
		}
	}
	want := links.Inventor{}.Choose(sys, spec.AgentLoad, spec.Remaining, spec.ObservedTotal, spec.ObservedCount)
	verdict.Details["recomputedLink"] = fmt.Sprint(want)
	verdict.Details["greedyLink"] = fmt.Sprint(sys.LeastLoaded())
	if advSpec.Link != want {
		verdict.Reason = fmt.Sprintf("advised link %d but the declared statistics yield link %d",
			advSpec.Link, want)
		return verdict, nil
	}
	verdict.Accepted = true
	return verdict, nil
}

// AnnounceLinksRouting computes the honest routing advice for the published
// context.
func AnnounceLinksRouting(inventorID string, spec LinksRoutingSpec) (Announcement, error) {
	sys, err := links.NewSystem(len(spec.Loads))
	if err != nil {
		return Announcement{}, err
	}
	for i, l := range spec.Loads {
		if err := sys.Assign(i, l); err != nil {
			return Announcement{}, err
		}
	}
	link := links.Inventor{}.Choose(sys, spec.AgentLoad, spec.Remaining, spec.ObservedTotal, spec.ObservedCount)
	return Announcement{
		InventorID: inventorID,
		Format:     FormatLinksRouting,
		Game:       mustJSON(spec),
		Advice:     mustJSON(LinksRoutingAdviceSpec{Link: link}),
	}, nil
}
