package core

import (
	"context"
	"encoding/json"
	"testing"

	"rationality/internal/numeric"
	"rationality/internal/participation"
)

func paperParticipation() *participation.Game {
	return participation.MustNew(3, 2, numeric.I(8), numeric.I(3))
}

func TestEndToEndLastMover(t *testing.T) {
	ann, err := AnnounceLastMover("auction-house", "entry-game", paperParticipation())
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest decision table rejected: %+v", res.Verdicts)
	}
	v := res.Verdicts["v1"]
	// The verified gains: count 0 → 0; count 1 → v−c = 5; count 2 → v = 8.
	if v.Details["gain[count=0]"] != "0" || v.Details["gain[count=1]"] != "5" || v.Details["gain[count=2]"] != "8" {
		t.Errorf("gains = %v", v.Details)
	}
	// The advice table itself: abstain, participate, abstain.
	var spec LastMoverAdviceSpec
	if err := json.Unmarshal(ann.Advice, &spec); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false}
	for i, w := range want {
		if spec.Decisions[i] != w {
			t.Errorf("decision[%d] = %v, want %v", i, spec.Decisions[i], w)
		}
	}
}

func TestEndToEndLastMoverFlipped(t *testing.T) {
	ann, err := AnnounceLastMoverFlipped("shady-house", "entry-game", paperParticipation())
	if err != nil {
		t.Fatal(err)
	}
	agent, registry := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("flipped decision table accepted")
	}
	if registry.Reputation("shady-house") >= 0.5 {
		t.Error("flipping inventor kept its reputation")
	}
}

func TestLastMoverProcedureMalformed(t *testing.T) {
	proc := LastMoverProcedure{}
	goodGame := mustJSON(SpecFromParticipation("g", paperParticipation()))

	if _, err := proc.Verify([]byte("{bad"), nil, nil); err == nil {
		t.Error("broken game spec accepted")
	}
	if _, err := proc.Verify(goodGame, []byte("{bad"), nil); err == nil {
		t.Error("broken advice accepted")
	}
	// Short decision table: a verdict-level rejection.
	verdict, err := proc.Verify(goodGame, mustJSON(LastMoverAdviceSpec{Decisions: []bool{true}}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Accepted {
		t.Error("short decision table accepted")
	}
}

func TestLastMoverGeneralQuorum(t *testing.T) {
	// k = 3 of n = 5: participate exactly when count == k−1 = 2.
	g := participation.MustNew(5, 3, numeric.I(8), numeric.I(3))
	ann, err := AnnounceLastMover("inv", "g", g)
	if err != nil {
		t.Fatal(err)
	}
	var spec LastMoverAdviceSpec
	if err := json.Unmarshal(ann.Advice, &spec); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, false, false}
	for i, w := range want {
		if spec.Decisions[i] != w {
			t.Errorf("decision[count=%d] = %v, want %v", i, spec.Decisions[i], w)
		}
	}
	agent, _ := newTestAgent(t, ann, []string{"v1"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("general-k table rejected: %+v", res.Verdicts)
	}
}
