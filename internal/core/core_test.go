package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"rationality/internal/bimatrix"
	"rationality/internal/game"
	"rationality/internal/numeric"
	"rationality/internal/participation"
	"rationality/internal/proof"
	"rationality/internal/reputation"
	"rationality/internal/transport"
)

func newTestAgent(t *testing.T, ann Announcement, verifierIDs []string, corrupt map[string]bool) (*Agent, *reputation.Registry) {
	t.Helper()
	inventor, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	verifiers := make(map[string]transport.Client, len(verifierIDs))
	for _, id := range verifierIDs {
		var vs *VerifierService
		if corrupt[id] {
			vs, err = NewCorruptVerifierService(id)
		} else {
			vs, err = NewVerifierService(id)
		}
		if err != nil {
			t.Fatal(err)
		}
		verifiers[id] = transport.DialInProc(vs)
	}
	registry := reputation.NewRegistry()
	agent, err := NewAgent(AgentConfig{
		Name:      "agent-under-test",
		Inventor:  transport.DialInProc(inventor),
		Verifiers: verifiers,
		Registry:  registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	return agent, registry
}

func TestEndToEndEnumerationHonest(t *testing.T) {
	ann, err := AnnounceEnumeration("honest-inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	agent, registry := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("honest announcement rejected")
	}
	if len(res.Verdicts) != 3 {
		t.Fatalf("verdicts = %d", len(res.Verdicts))
	}
	for id, v := range res.Verdicts {
		if !v.Accepted {
			t.Errorf("%s rejected: %s", id, v.Reason)
		}
	}
	// All verifiers agreed with the majority: reputations rise.
	if registry.Reputation("v1") <= 0.5 {
		t.Error("agreeing verifier should gain reputation")
	}
	// The inventor was not reported.
	for _, e := range registry.Events() {
		if e.Party == "honest-inventor" {
			t.Error("honest inventor was reported")
		}
	}
}

func TestEndToEndEnumerationForged(t *testing.T) {
	ann, err := AnnounceEnumerationForged("evil-inventor", game.PrisonersDilemma(), game.Profile{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	agent, registry := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged announcement accepted")
	}
	// The inventor must have been reported with evidence.
	found := false
	for _, e := range registry.Events() {
		if e.Party == "evil-inventor" && e.Kind == reputation.Misbehaved {
			found = true
			if !strings.Contains(e.Details, "rejected") {
				t.Errorf("weak evidence: %q", e.Details)
			}
		}
	}
	if !found {
		t.Error("forging inventor was not reported")
	}
	if registry.Reputation("evil-inventor") >= 0.5 {
		t.Error("forging inventor kept its reputation")
	}
}

func TestEndToEndCorruptMinorityOutvoted(t *testing.T) {
	ann, err := AnnounceEnumeration("honest-inventor", game.BattleOfSexes(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	agent, registry := newTestAgent(t, ann, []string{"v1", "v2", "liar"},
		map[string]bool{"liar": true})
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("corrupt minority overturned an honest proof")
	}
	if registry.Reputation("liar") >= 0.5 {
		t.Error("lying verifier should lose reputation")
	}
	if registry.Reputation("v1") <= 0.5 {
		t.Error("honest verifier should gain reputation")
	}
}

func TestEndToEndP1(t *testing.T) {
	g := bimatrix.FromInts(
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
	ann, err := AnnounceP1("inventor", "matching-pennies", g)
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest P1 announcement rejected: %+v", res.Verdicts)
	}
	v := res.Verdicts["v1"]
	if v.Details["lambdaRow"] != "0" || v.Details["lambdaCol"] != "0" {
		t.Errorf("recovered values = %v", v.Details)
	}
	if v.Details["bitsOnWire"] != "4" {
		t.Errorf("bitsOnWire = %s, want 4", v.Details["bitsOnWire"])
	}
}

func TestEndToEndP1Forged(t *testing.T) {
	g := bimatrix.FromInts(
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
	ann := AnnounceP1Forged("evil", "mp", g, []int{0}, []int{0})
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged P1 supports accepted")
	}
}

func TestEndToEndParticipation(t *testing.T) {
	g := participation.MustNew(3, 2, numeric.I(8), numeric.I(3))
	ann, err := AnnounceParticipation("inventor", "auction", g, participation.LowBranch)
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest participation advice rejected: %+v", res.Verdicts)
	}
	v := res.Verdicts["v2"]
	if v.Details["p"] != "1/4" {
		t.Errorf("advised p = %s, want 1/4", v.Details["p"])
	}
	if v.Details["expectedGain"] != "1/2" {
		t.Errorf("expected gain = %s, want v/16 = 1/2", v.Details["expectedGain"])
	}
}

func TestEndToEndParticipationForged(t *testing.T) {
	g := participation.MustNew(3, 2, numeric.I(8), numeric.I(3))
	ann := AnnounceParticipationForged("evil", "auction", g, "1/3")
	agent, registry := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged participation advice accepted")
	}
	if registry.Reputation("evil") >= 0.5 {
		t.Error("forging inventor kept its reputation")
	}
}

func TestEndToEndNAgent(t *testing.T) {
	g := game.ThreeAgentMajority()
	uniform := make(game.MixedProfile, 3)
	for i := range uniform {
		v := numeric.NewVec(2)
		v.SetAt(0, numeric.R(1, 2))
		v.SetAt(1, numeric.R(1, 2))
		uniform[i] = v
	}
	ann, err := AnnounceNAgent("inventor", g, uniform)
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest n-agent advice rejected: %+v", res.Verdicts)
	}
	if res.Verdicts["v1"].Details["value[0]"] != "3/4" {
		t.Errorf("value[0] = %s, want 3/4", res.Verdicts["v1"].Details["value[0]"])
	}
}

func TestAgentOverTCP(t *testing.T) {
	// The same end-to-end flow with every party on its own TCP endpoint.
	ann, err := AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventorSvc, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	inventorSrv, err := transport.ListenTCP("127.0.0.1:0", inventorSvc)
	if err != nil {
		t.Fatal(err)
	}
	defer inventorSrv.Close()

	verifierIDs := []string{"v1", "v2", "v3"}
	clients := make(map[string]transport.Client, len(verifierIDs))
	for _, id := range verifierIDs {
		vs, err := NewVerifierService(id)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := transport.ListenTCP("127.0.0.1:0", vs)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := transport.DialTCP(srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[id] = c
	}

	inventorClient, err := transport.DialTCP(inventorSrv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer inventorClient.Close()

	agent, err := NewAgent(AgentConfig{
		Name:      "tcp-agent",
		Inventor:  inventorClient,
		Verifiers: clients,
		Registry:  reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := agent.Consult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("TCP consultation rejected an honest announcement")
	}
}

func TestVerifierFormatsEndpoint(t *testing.T) {
	vs, err := NewVerifierService("v")
	if err != nil {
		t.Fatal(err)
	}
	c := transport.DialInProc(vs)
	req, _ := transport.NewMessage(MsgFormats, struct{}{})
	resp, err := c.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var fr FormatsResponse
	if err := resp.Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Formats) != 7 {
		t.Errorf("formats = %v", fr.Formats)
	}
}

func TestVerifierRejectsUnknownMessage(t *testing.T) {
	vs, err := NewVerifierService("v")
	if err != nil {
		t.Fatal(err)
	}
	c := transport.DialInProc(vs)
	req, _ := transport.NewMessage("dance", struct{}{})
	if _, err := c.Call(context.Background(), req); err == nil {
		t.Error("unknown message type accepted")
	}
}

func TestVerifierRejectsUnknownFormat(t *testing.T) {
	vs, err := NewVerifierService("v")
	if err != nil {
		t.Fatal(err)
	}
	c := transport.DialInProc(vs)
	req, _ := transport.NewMessage(MsgVerify, VerifyRequest{Format: "hieroglyphs/v0"})
	if _, err := c.Call(context.Background(), req); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNewAgentValidation(t *testing.T) {
	reg := reputation.NewRegistry()
	inv := transport.DialInProc(transport.HandlerFunc(
		func(ctx context.Context, m transport.Message) (transport.Message, error) {
			return m, nil
		}))
	cases := []AgentConfig{
		{},
		{Name: "a"},
		{Name: "a", Inventor: inv},
		{Name: "a", Inventor: inv, Verifiers: map[string]transport.Client{"v": inv}},
	}
	for i, cfg := range cases {
		if _, err := NewAgent(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	_ = reg
}

func TestNewInventorServiceValidation(t *testing.T) {
	if _, err := NewInventorService(Announcement{}); err == nil {
		t.Error("empty announcement accepted")
	}
	if _, err := NewInventorService(Announcement{InventorID: "i"}); err == nil {
		t.Error("announcement without game accepted")
	}
	if _, err := NewVerifierService(""); err == nil {
		t.Error("empty verifier ID accepted")
	}
}

func TestAgentThresholdFiltersVerifiers(t *testing.T) {
	ann, err := AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventorSvc, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewVerifierService("shunned")
	if err != nil {
		t.Fatal(err)
	}
	registry := reputation.NewRegistry()
	// Destroy the verifier's reputation first.
	for i := 0; i < 10; i++ {
		registry.ReportAgreement("shunned", false)
	}
	agent, err := NewAgent(AgentConfig{
		Name:      "picky",
		Inventor:  transport.DialInProc(inventorSvc),
		Verifiers: map[string]transport.Client{"shunned": transport.DialInProc(vs)},
		Registry:  registry,
		Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Consult(context.Background()); err == nil {
		t.Error("consultation should fail with no trusted verifiers")
	}
}

// TestAgentConsultWeightedLiarOutvoted pins Consult to the weighted vote:
// two liars with wrecked reputations outnumber one trusted verifier, but
// earned trust outweighs head count — the same reputation.WeightedVote
// (and tie-breaking) the quorum client uses. A raw-count majority would
// decide both cases the liars' way.
func TestAgentConsultWeightedLiarOutvoted(t *testing.T) {
	cases := []struct {
		name         string
		forged       bool
		wantAccepted bool
	}{
		{name: "honest announcement survives a lying majority", forged: false, wantAccepted: true},
		{name: "forged announcement caught despite a lying majority", forged: true, wantAccepted: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ann Announcement
			var err error
			if tc.forged {
				ann, err = AnnounceEnumerationForged("shady-inventor", game.PrisonersDilemma(), game.Profile{0, 0})
			} else {
				ann, err = AnnounceEnumeration("honest-inventor", game.PrisonersDilemma(), proof.MaxNash)
			}
			if err != nil {
				t.Fatal(err)
			}
			agent, registry := newTestAgent(t, ann,
				[]string{"trusted", "liar-1", "liar-2"},
				map[string]bool{"liar-1": true, "liar-2": true})
			// Earned history: the trusted verifier has agreed 4 times
			// (reputation 5/6), each liar has dissented 4 times (1/6
			// apiece — 1/3 combined, so even together they cannot outweigh
			// the trusted voice).
			for i := 0; i < 4; i++ {
				registry.ReportAgreement("trusted", true)
				registry.ReportAgreement("liar-1", false)
				registry.ReportAgreement("liar-2", false)
			}
			liarBefore := registry.Reputation("liar-1")

			res, err := agent.Consult(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted != tc.wantAccepted {
				t.Fatalf("Accepted = %v, want %v (the liars' head count must not decide)",
					res.Accepted, tc.wantAccepted)
			}
			// The vote moved reputations: liars decayed further, trust grew.
			if after := registry.Reputation("liar-1"); after >= liarBefore {
				t.Errorf("liar reputation %f -> %f; dissent must decay it", liarBefore, after)
			}
			if registry.Reputation("trusted") <= 5.0/6.0 {
				t.Error("trusted verifier's agreement did not raise its reputation")
			}
			if tc.forged {
				// The weighted rejection also reports the inventor.
				found := false
				for _, e := range registry.Events() {
					if e.Party == "shady-inventor" && e.Kind == reputation.Misbehaved {
						found = true
					}
				}
				if !found {
					t.Error("rejected inventor was not reported")
				}
			}
		})
	}
}
