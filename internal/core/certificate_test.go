package core

import (
	"errors"
	"strings"
	"testing"

	"rationality/internal/identity"
)

// testPanel generates n signing identities and the ordered keyset a
// certificate over them is verified against.
func testPanel(t *testing.T, n int) ([]*identity.KeyPair, []identity.PartyID) {
	t.Helper()
	keys := make([]*identity.KeyPair, n)
	ids := make([]identity.PartyID, n)
	for i := range keys {
		k, err := identity.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		keys[i], ids[i] = k, k.ID()
	}
	return keys, ids
}

// signCertificate builds a certificate co-signed by the given members of
// the panel (indexes into keys/keyset).
func signCertificate(t *testing.T, keys []*identity.KeyPair, keysetLen int, members []int, v Verdict) *Certificate {
	t.Helper()
	c := &Certificate{
		Key:     identity.DigestBytes([]byte("request")).String(),
		Verdict: v,
		Panel:   make([]byte, (keysetLen+7)/8),
	}
	digest, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range members {
		c.Panel[i/8] |= 1 << (i % 8)
		c.Sigs = append(c.Sigs, keys[i].Sign(digest))
	}
	return c
}

func TestCertificateVerify(t *testing.T) {
	keys, keyset := testPanel(t, 3)
	v := Verdict{Accepted: true, Format: FormatEnumeration}
	c := signCertificate(t, keys, len(keyset), []int{0, 1, 2}, v)
	if err := c.Verify(keyset, 0); err != nil {
		t.Fatalf("full-panel certificate rejected: %v", err)
	}
	// 2 of 3 misses the ⌊2n/3⌋+1 = 3 supermajority default...
	c2 := signCertificate(t, keys, len(keyset), []int{0, 2}, v)
	if err := c2.Verify(keyset, 0); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("2-of-3 passed the supermajority default: %v", err)
	}
	// ...but an operator may relax the threshold explicitly.
	if err := c2.Verify(keyset, 2); err != nil {
		t.Fatalf("2-of-3 rejected under an explicit threshold of 2: %v", err)
	}
}

func TestCertificateRejectsTamperedVerdict(t *testing.T) {
	keys, keyset := testPanel(t, 3)
	c := signCertificate(t, keys, len(keyset), []int{0, 1, 2}, Verdict{Accepted: true, Format: FormatEnumeration})
	c.Verdict.Accepted = false // the CI smoke's "flipped verdict byte"
	err := c.Verify(keyset, 0)
	if !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("tampered verdict verified: %v", err)
	}
	if !strings.HasPrefix(err.Error(), "certificate rejected:") {
		t.Fatalf("rejection missing the documented prefix: %v", err)
	}
}

func TestCertificateRejectsForgedBitmap(t *testing.T) {
	keys, keyset := testPanel(t, 3)
	v := Verdict{Accepted: true, Format: FormatEnumeration}

	// A bit beyond the keyset: claims a 4th member of a 3-member panel.
	c := signCertificate(t, keys, len(keyset), []int{0, 1, 2}, v)
	c.Panel[0] |= 1 << 3
	if err := c.Verify(keyset, 0); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("stray panel bit verified: %v", err)
	}

	// More named co-signers than attached signatures.
	c = signCertificate(t, keys, len(keyset), []int{0, 1}, v)
	c.Panel[0] |= 1 << 2
	if err := c.Verify(keyset, 0); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("bitmap/signature count mismatch verified: %v", err)
	}

	// A wrong-length bitmap never indexes the keyset at all.
	c = signCertificate(t, keys, len(keyset), []int{0, 1, 2}, v)
	c.Panel = append(c.Panel, 0)
	if err := c.Verify(keyset, 0); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("oversized bitmap verified: %v", err)
	}
}

func TestCertificateRejectsBelowThreshold(t *testing.T) {
	keys, keyset := testPanel(t, 3)
	c := signCertificate(t, keys, len(keyset), []int{1}, Verdict{Accepted: true, Format: FormatEnumeration})
	err := c.Verify(keyset, 0)
	if !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("1-of-3 certificate verified: %v", err)
	}
	if !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("below-threshold rejection should name the threshold: %v", err)
	}
}

func TestCertificateRejectsWrongDigestSignature(t *testing.T) {
	keys, keyset := testPanel(t, 3)
	c := signCertificate(t, keys, len(keyset), []int{0, 1, 2}, Verdict{Accepted: true, Format: FormatEnumeration})
	// Member 1 signed something else entirely: a valid key, wrong digest.
	c.Sigs[1] = keys[1].Sign([]byte("not the certificate digest"))
	if err := c.Verify(keyset, 0); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("wrong-digest co-signature verified: %v", err)
	}
}

func TestCertificateRejectsSignerOutsideKeyset(t *testing.T) {
	keys, keyset := testPanel(t, 3)
	stranger, _ := testPanel(t, 1)
	c := signCertificate(t, keys, len(keyset), []int{0, 1}, Verdict{Accepted: true, Format: FormatEnumeration})
	// Claim member 2's slot but sign with a key outside the panel.
	c.Panel[0] |= 1 << 2
	digest, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	c.Sigs = append(c.Sigs, stranger[0].Sign(digest))
	if err := c.Verify(keyset, 0); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("outside-keyset co-signature verified: %v", err)
	}
}

func TestCertificateEncodeDecodeRoundTrip(t *testing.T) {
	keys, keyset := testPanel(t, 5)
	c := signCertificate(t, keys, len(keyset), []int{0, 2, 3, 4}, Verdict{Accepted: true, Format: FormatP1})
	data, err := EncodeCertificate(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(keyset, 0); err != nil {
		t.Fatalf("round-tripped certificate rejected: %v", err)
	}
	signers, err := back.CoSigners(keyset)
	if err != nil {
		t.Fatal(err)
	}
	if len(signers) != 4 || signers[0] != keyset[0] || signers[3] != keyset[4] {
		t.Fatalf("co-signers out of order: %v", signers)
	}
	// nil and empty round-trip to "no certificate", never an error.
	if data, err := EncodeCertificate(nil); err != nil || data != nil {
		t.Fatalf("nil certificate encoded to %q, %v", data, err)
	}
	if back, err := DecodeCertificate(nil); err != nil || back != nil {
		t.Fatalf("empty column decoded to %v, %v", back, err)
	}
	if _, err := DecodeCertificate([]byte("{not json")); !errors.Is(err, ErrCertificateRejected) {
		t.Fatalf("malformed encoding decoded: %v", err)
	}
}

func TestSupermajorityThreshold(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {6, 5}, {7, 5}, {9, 7}, {10, 7},
	} {
		if got := SupermajorityThreshold(tc.n); got != tc.want {
			t.Errorf("SupermajorityThreshold(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
