package core

import (
	"testing"

	"rationality/internal/bimatrix"
	"rationality/internal/game"
	"rationality/internal/numeric"
	"rationality/internal/participation"
)

func TestGameSpecRoundTrip(t *testing.T) {
	g := game.BattleOfSexes()
	spec := SpecFromGame(g)
	back, err := spec.ToGame()
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != g.Name() || back.NumAgents() != g.NumAgents() {
		t.Error("metadata lost")
	}
	for _, p := range g.Profiles() {
		for i := 0; i < g.NumAgents(); i++ {
			if !numeric.Eq(back.Payoff(i, p), g.Payoff(i, p)) {
				t.Fatalf("payoff mismatch at %v agent %d", p, i)
			}
		}
	}
}

func TestGameSpecValidation(t *testing.T) {
	bad := &GameSpec{Name: "x", StrategyCounts: []int{2, 2}, Payoffs: [][]string{{"1"}}}
	if _, err := bad.ToGame(); err == nil {
		t.Error("wrong payoff row count accepted")
	}
	bad2 := &GameSpec{Name: "x", StrategyCounts: []int{2}, Payoffs: [][]string{{"1", "zebra"}}}
	if _, err := bad2.ToGame(); err == nil {
		t.Error("unparsable payoff accepted")
	}
	bad3 := &GameSpec{Name: "x", StrategyCounts: nil, Payoffs: nil}
	if _, err := bad3.ToGame(); err == nil {
		t.Error("empty game accepted")
	}
	short := &GameSpec{Name: "x", StrategyCounts: []int{2}, Payoffs: [][]string{{"1"}}}
	if _, err := short.ToGame(); err == nil {
		t.Error("short payoff row accepted")
	}
}

func TestBimatrixSpecRoundTrip(t *testing.T) {
	g := bimatrix.FromInts(
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
	spec := SpecFromBimatrix("mp", g)
	back, err := spec.ToBimatrix()
	if err != nil {
		t.Fatal(err)
	}
	if !back.A().Equal(g.A()) || !back.B().Equal(g.B()) {
		t.Error("matrices lost in round trip")
	}
}

func TestBimatrixSpecValidation(t *testing.T) {
	if _, err := (&BimatrixSpec{}).ToBimatrix(); err == nil {
		t.Error("empty spec accepted")
	}
	bad := &BimatrixSpec{A: [][]string{{"1", "2"}, {"3"}}, B: [][]string{{"1", "2"}, {"3", "4"}}}
	if _, err := bad.ToBimatrix(); err == nil {
		t.Error("ragged matrix accepted")
	}
	bad2 := &BimatrixSpec{A: [][]string{{"frog"}}, B: [][]string{{"1"}}}
	if _, err := bad2.ToBimatrix(); err == nil {
		t.Error("unparsable cell accepted")
	}
}

func TestParticipationSpecRoundTrip(t *testing.T) {
	g := participation.MustNew(3, 2, numeric.I(8), numeric.I(3))
	spec := SpecFromParticipation("auction", g)
	back, err := spec.ToParticipation()
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.K() != 2 || back.V().RatString() != "8" || back.C().RatString() != "3" {
		t.Error("participation spec round trip lost fields")
	}
}

func TestParticipationSpecValidation(t *testing.T) {
	bad := &ParticipationSpec{N: 3, K: 2, V: "x", C: "1"}
	if _, err := bad.ToParticipation(); err == nil {
		t.Error("unparsable v accepted")
	}
	bad2 := &ParticipationSpec{N: 1, K: 2, V: "8", C: "3"}
	if _, err := bad2.ToParticipation(); err == nil {
		t.Error("invalid game parameters accepted")
	}
}

func TestVecSpecRoundTrip(t *testing.T) {
	v := numeric.VecOf(numeric.R(1, 4), numeric.R(3, 4))
	back, err := SpecFromVec(v).ToVec()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(v) {
		t.Error("vector round trip failed")
	}
	if _, err := (VecSpec{"bad"}).ToVec(); err == nil {
		t.Error("unparsable entry accepted")
	}
}

func TestRatSpec(t *testing.T) {
	if _, err := RatSpec("3/8"); err != nil {
		t.Error("valid rational rejected")
	}
	if _, err := RatSpec("nope"); err == nil {
		t.Error("garbage accepted")
	}
}
