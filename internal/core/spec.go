// Package core implements the rationality authority itself: the three
// separated parties of the paper's Fig. 1 — the game inventor (possibly
// biased, profits from the game), the agents (participants who must not act
// on unverified advice), and the verifiers (reputation-bearing sellers of
// general-purpose verification procedures v()) — together with the wire
// protocol they speak and the registry of verification procedures covering
// each of the paper's proof formats (§3 enumeration proofs, §4 P1 supports
// and n-agent generalization, §5 participation advice).
package core

import (
	"encoding/json"
	"fmt"
	"math/big"

	"rationality/internal/bimatrix"
	"rationality/internal/game"
	"rationality/internal/numeric"
	"rationality/internal/participation"
)

// GameSpec is the JSON wire form of a finite strategic-form game: per-agent
// strategy counts plus the dense payoff tensor, rationals as strings.
type GameSpec struct {
	Name           string `json:"name"`
	StrategyCounts []int  `json:"strategyCounts"`
	// Payoffs[i] lists agent i's payoff for every profile in lexicographic
	// profile order.
	Payoffs [][]string `json:"payoffs"`
}

// SpecFromGame serializes a game.
func SpecFromGame(g *game.Game) *GameSpec {
	spec := &GameSpec{
		Name:           g.Name(),
		StrategyCounts: g.StrategyCounts(),
		Payoffs:        make([][]string, g.NumAgents()),
	}
	for i := 0; i < g.NumAgents(); i++ {
		row := make([]string, 0, g.NumProfiles())
		g.ForEachProfile(func(p game.Profile) bool {
			row = append(row, g.Payoff(i, p).RatString())
			return true
		})
		spec.Payoffs[i] = row
	}
	return spec
}

// ToGame reconstructs the game, validating shape and payoff syntax.
func (s *GameSpec) ToGame() (*game.Game, error) {
	g, err := game.New(s.Name, s.StrategyCounts)
	if err != nil {
		return nil, fmt.Errorf("core: game spec: %w", err)
	}
	if len(s.Payoffs) != g.NumAgents() {
		return nil, fmt.Errorf("core: game spec has %d payoff rows for %d agents",
			len(s.Payoffs), g.NumAgents())
	}
	for i, row := range s.Payoffs {
		if len(row) != g.NumProfiles() {
			return nil, fmt.Errorf("core: agent %d has %d payoffs for %d profiles",
				i, len(row), g.NumProfiles())
		}
	}
	idx := 0
	var parseErr error
	g.ForEachProfile(func(p game.Profile) bool {
		for i := range s.Payoffs {
			v, err := numeric.ParseRat(s.Payoffs[i][idx])
			if err != nil {
				parseErr = fmt.Errorf("core: agent %d payoff %d: %w", i, idx, err)
				return false
			}
			g.SetPayoff(i, p, v)
		}
		idx++
		return true
	})
	if parseErr != nil {
		return nil, parseErr
	}
	return g, nil
}

// BimatrixSpec is the wire form of a 2-agent game in matrix form.
type BimatrixSpec struct {
	Name string     `json:"name"`
	A    [][]string `json:"a"`
	B    [][]string `json:"b"`
}

// SpecFromBimatrix serializes a bimatrix game.
func SpecFromBimatrix(name string, g *bimatrix.Game) *BimatrixSpec {
	spec := &BimatrixSpec{Name: name}
	spec.A = matrixToStrings(g.A())
	spec.B = matrixToStrings(g.B())
	return spec
}

// ToBimatrix reconstructs the bimatrix game.
func (s *BimatrixSpec) ToBimatrix() (*bimatrix.Game, error) {
	a, err := stringsToMatrix(s.A)
	if err != nil {
		return nil, fmt.Errorf("core: bimatrix spec A: %w", err)
	}
	b, err := stringsToMatrix(s.B)
	if err != nil {
		return nil, fmt.Errorf("core: bimatrix spec B: %w", err)
	}
	g, err := bimatrix.New(a, b)
	if err != nil {
		return nil, fmt.Errorf("core: bimatrix spec: %w", err)
	}
	return g, nil
}

func matrixToStrings(m *numeric.Matrix) [][]string {
	out := make([][]string, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		row := make([]string, m.Cols())
		for j := 0; j < m.Cols(); j++ {
			row[j] = m.At(i, j).RatString()
		}
		out[i] = row
	}
	return out
}

func stringsToMatrix(rows [][]string) (*numeric.Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("empty matrix")
	}
	m := numeric.NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols() {
			return nil, fmt.Errorf("ragged row %d", i)
		}
		for j, cell := range row {
			v, err := numeric.ParseRat(cell)
			if err != nil {
				return nil, fmt.Errorf("cell (%d, %d): %w", i, j, err)
			}
			m.SetAt(i, j, v)
		}
	}
	return m, nil
}

// ParticipationSpec is the wire form of a §5 Participation game.
type ParticipationSpec struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	K    int    `json:"k"`
	V    string `json:"v"`
	C    string `json:"c"`
}

// SpecFromParticipation serializes a participation game.
func SpecFromParticipation(name string, g *participation.Game) *ParticipationSpec {
	return &ParticipationSpec{
		Name: name,
		N:    g.N(),
		K:    g.K(),
		V:    g.V().RatString(),
		C:    g.C().RatString(),
	}
}

// ToParticipation reconstructs the participation game.
func (s *ParticipationSpec) ToParticipation() (*participation.Game, error) {
	v, err := numeric.ParseRat(s.V)
	if err != nil {
		return nil, fmt.Errorf("core: participation spec v: %w", err)
	}
	c, err := numeric.ParseRat(s.C)
	if err != nil {
		return nil, fmt.Errorf("core: participation spec c: %w", err)
	}
	g, err := participation.New(s.N, s.K, v, c)
	if err != nil {
		return nil, fmt.Errorf("core: participation spec: %w", err)
	}
	return g, nil
}

// VecSpec is the wire form of a rational vector.
type VecSpec []string

// SpecFromVec serializes a vector.
func SpecFromVec(v *numeric.Vec) VecSpec {
	out := make(VecSpec, v.Len())
	for i := 0; i < v.Len(); i++ {
		out[i] = v.At(i).RatString()
	}
	return out
}

// ToVec reconstructs the vector.
func (s VecSpec) ToVec() (*numeric.Vec, error) {
	v := numeric.NewVec(len(s))
	for i, cell := range s {
		x, err := numeric.ParseRat(cell)
		if err != nil {
			return nil, fmt.Errorf("core: vector entry %d: %w", i, err)
		}
		v.SetAt(i, x)
	}
	return v, nil
}

// RatSpec parses a single wire rational.
func RatSpec(s string) (*big.Rat, error) {
	return numeric.ParseRat(s)
}

// mustJSON marshals values that cannot fail (all wire types here); it keeps
// call sites honest about the invariant rather than swallowing errors.
func mustJSON(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: marshalling wire type %T: %v", v, err))
	}
	return data
}
