package core

import (
	"context"
	"testing"

	"rationality/internal/game"
	"rationality/internal/proof"
	"rationality/internal/reputation"
	"rationality/internal/transport"
)

// The paper's incentive loop: verifiers "would like to have a good
// long-lasting reputation"; dishonest parties "can be excluded from acting
// in games". This simulation runs many consultation rounds with a corrupt
// verifier in the pool and a reputation-threshold agent: the corrupt
// verifier's reputation decays with each outvoted lie until the agent stops
// consulting it entirely, after which its reputation stops moving.
func TestReputationEvolutionExcludesCorruptVerifier(t *testing.T) {
	ann, err := AnnounceEnumeration("inventor", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventorSvc, err := NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}

	registry := reputation.NewRegistry()
	verifiers := map[string]transport.Client{}
	for _, id := range []string{"h1", "h2", "h3"} {
		vs, err := NewVerifierService(id)
		if err != nil {
			t.Fatal(err)
		}
		verifiers[id] = transport.DialInProc(vs)
	}
	corrupt, err := NewCorruptVerifierService("liar")
	if err != nil {
		t.Fatal(err)
	}
	verifiers["liar"] = transport.DialInProc(corrupt)

	const threshold = 0.3
	agent, err := NewAgent(AgentConfig{
		Name:      "round-agent",
		Inventor:  transport.DialInProc(inventorSvc),
		Verifiers: verifiers,
		Registry:  registry,
		Threshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}

	excludedAt := -1
	for round := 0; round < 20; round++ {
		res, err := agent.Consult(context.Background())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !res.Accepted {
			t.Fatalf("round %d: honest announcement rejected", round)
		}
		if _, consulted := res.Verdicts["liar"]; !consulted && excludedAt < 0 {
			excludedAt = round
		}
	}
	if excludedAt < 0 {
		t.Fatalf("corrupt verifier never excluded; reputation = %f", registry.Reputation("liar"))
	}
	// After exclusion the liar's score is frozen: (0 agreements, k
	// disagreements) with reputation 1/(k+2) < threshold.
	if registry.Reputation("liar") >= threshold {
		t.Errorf("excluded verifier's reputation %f above the threshold", registry.Reputation("liar"))
	}
	// The honest verifiers keep earning: near-perfect reputations.
	for _, id := range []string{"h1", "h2", "h3"} {
		if registry.Reputation(id) < 0.9 {
			t.Errorf("%s reputation = %f, want > 0.9 after 20 rounds", id, registry.Reputation(id))
		}
	}
	// Exclusion must happen quickly: 1/(k+2) < 0.3 needs k >= 2, so by
	// round 2 or 3.
	if excludedAt > 5 {
		t.Errorf("exclusion took %d rounds", excludedAt)
	}
}

// The flip side: honest verifiers never fall below the consultation
// threshold even when a corrupt COLLEAGUE occasionally agrees with them
// (agreement with a correct majority never hurts anyone honest).
func TestReputationNeverPunishesHonestMajority(t *testing.T) {
	registry := reputation.NewRegistry()
	for round := 0; round < 50; round++ {
		// Three honest verdicts, one lie.
		if _, err := registry.MajorityVote(map[string]bool{
			"h1": true, "h2": true, "h3": true, "liar": false,
		}); err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"h1", "h2", "h3"} {
			if registry.Reputation(id) < 0.5 {
				t.Fatalf("round %d: honest verifier %s fell to %f", round, id, registry.Reputation(id))
			}
		}
	}
}
