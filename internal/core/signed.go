package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rationality/internal/identity"
)

// Announcement signing (footnote 3's accountability): the inventor signs
// what it announces, so an agent that catches a forged proof holds
// non-repudiable evidence when reporting to the reputation system, and
// nobody can frame an honest inventor with a fabricated announcement.

// ErrUnsignedAnnouncement is returned by VerifyAnnouncementSignature when
// the announcement carries no signature.
var ErrUnsignedAnnouncement = errors.New("core: announcement is not signed")

// SignAnnouncement binds the announcement to the key pair: the inventor ID
// becomes the signer's self-certifying identity and the signature covers
// format, game, advice, and proof.
func SignAnnouncement(k *identity.KeyPair, ann Announcement) (Announcement, error) {
	if k == nil {
		return Announcement{}, fmt.Errorf("core: nil key pair")
	}
	ann.InventorID = string(k.ID())
	ann.Signature = k.Sign(announcementMessage(ann))
	return ann, nil
}

// VerifyAnnouncementSignature checks that the announcement was signed by
// the party named in InventorID.
func VerifyAnnouncementSignature(ann Announcement) error {
	if len(ann.Signature) == 0 {
		return ErrUnsignedAnnouncement
	}
	if err := identity.Verify(identity.PartyID(ann.InventorID), announcementMessage(ann), ann.Signature); err != nil {
		return fmt.Errorf("core: announcement signature: %w", err)
	}
	return nil
}

// announcementMessage serializes the signed fields with length prefixes so
// no two distinct announcements share a message.
func announcementMessage(ann Announcement) []byte {
	parts := [][]byte{
		[]byte(ann.InventorID),
		[]byte(ann.Format),
		ann.Game,
		ann.Advice,
		ann.Proof,
	}
	size := 0
	for _, p := range parts {
		size += 8 + len(p)
	}
	msg := make([]byte, 0, size)
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		msg = append(msg, lenBuf[:]...)
		msg = append(msg, p...)
	}
	return msg
}
