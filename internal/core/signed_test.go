package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"rationality/internal/game"
	"rationality/internal/identity"
	"rationality/internal/proof"
	"rationality/internal/reputation"
	"rationality/internal/transport"
)

func signedTestAnnouncement(t *testing.T, seed int64) (Announcement, *identity.KeyPair) {
	t.Helper()
	k, err := identity.NewKeyPairFrom(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	ann, err := AnnounceEnumeration("placeholder", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := SignAnnouncement(k, ann)
	if err != nil {
		t.Fatal(err)
	}
	return signed, k
}

func TestSignAnnouncementRoundTrip(t *testing.T) {
	signed, k := signedTestAnnouncement(t, 1)
	if signed.InventorID != string(k.ID()) {
		t.Error("inventor ID not rebound to the signer")
	}
	if err := VerifyAnnouncementSignature(signed); err != nil {
		t.Fatalf("honest signature rejected: %v", err)
	}
}

func TestSignAnnouncementValidation(t *testing.T) {
	if _, err := SignAnnouncement(nil, Announcement{}); err == nil {
		t.Error("nil key pair accepted")
	}
	if err := VerifyAnnouncementSignature(Announcement{}); !errors.Is(err, ErrUnsignedAnnouncement) {
		t.Errorf("err = %v, want ErrUnsignedAnnouncement", err)
	}
}

func TestSignatureDetectsTampering(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(a *Announcement)
	}{
		{"advice swapped", func(a *Announcement) { a.Advice = mustJSON(game.Profile{0, 0}) }},
		{"format swapped", func(a *Announcement) { a.Format = FormatP1 }},
		{"game swapped", func(a *Announcement) { a.Game = mustJSON(SpecFromGame(game.BattleOfSexes())) }},
		{"proof truncated", func(a *Announcement) { a.Proof = a.Proof[:len(a.Proof)-2] }},
		{"identity swapped", func(a *Announcement) { a.InventorID = "someone-else" }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			signed, _ := signedTestAnnouncement(t, 2)
			m.mutate(&signed)
			if err := VerifyAnnouncementSignature(signed); err == nil {
				t.Fatal("tampered announcement accepted")
			}
		})
	}
}

func TestAgentAcceptsSignedAnnouncement(t *testing.T) {
	signed, _ := signedTestAnnouncement(t, 3)
	agent, _ := newTestAgent(t, signed, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("signed honest announcement rejected")
	}
}

func TestAgentRejectsTamperedSignedAnnouncement(t *testing.T) {
	signed, _ := signedTestAnnouncement(t, 4)
	signed.Advice = mustJSON(game.Profile{0, 0})
	agent, _ := newTestAgent(t, signed, []string{"v1", "v2", "v3"}, nil)
	if _, err := agent.Consult(context.Background()); err == nil {
		t.Fatal("tampered signed announcement consulted successfully")
	}
}

func TestAgentCanRequireSignatures(t *testing.T) {
	unsigned, err := AnnounceEnumeration("anon", game.PrisonersDilemma(), proof.MaxNash)
	if err != nil {
		t.Fatal(err)
	}
	inventor, err := NewInventorService(unsigned)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewVerifierService("v")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(AgentConfig{
		Name:                       "strict",
		Inventor:                   transport.DialInProc(inventor),
		Verifiers:                  map[string]transport.Client{"v": transport.DialInProc(vs)},
		Registry:                   reputation.NewRegistry(),
		RequireSignedAnnouncements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Consult(context.Background()); !errors.Is(err, ErrUnsignedAnnouncement) {
		t.Fatalf("err = %v, want ErrUnsignedAnnouncement", err)
	}
}

// A forging inventor that SIGNS its forgery is still caught by the
// verifiers, and the misbehaviour report is now bound to its key.
func TestSignedForgeryStillCaughtAndAttributed(t *testing.T) {
	k, err := identity.NewKeyPairFrom(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	forged, err := AnnounceEnumerationForged("x", game.PrisonersDilemma(), game.Profile{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	signed, err := SignAnnouncement(k, forged)
	if err != nil {
		t.Fatal(err)
	}
	agent, registry := newTestAgent(t, signed, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("signed forgery accepted")
	}
	if registry.Reputation(string(k.ID())) >= 0.5 {
		t.Error("forger's key-bound reputation did not drop")
	}
}
