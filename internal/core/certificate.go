package core

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"

	"rationality/internal/identity"
)

// Aggregate quorum certificates (CoSi-style collective signing): the
// coordinator runs the panel fan-out once, each member co-signs the
// canonical verdict digest, and the resulting certificate is a portable
// artifact any client verifies offline — one request to any authority
// that caches it, then pure signature checks against the known panel
// keyset. This replaces O(panel) client round-trips with O(1), while the
// supermajority threshold keeps the Byzantine-agreement guarantee: a
// certificate attests that at least ⌊2n/3⌋+1 of the n known panel keys
// signed this exact verdict for this exact request.

// ErrCertificateRejected is the root of every certificate verification
// failure. All rejection messages begin with "certificate rejected:" —
// the documented greppable prefix clients and the CI smoke assert on.
var ErrCertificateRejected = errors.New("certificate rejected")

// Certificate is a quorum-certified verdict: the request's content
// address, the verdict the panel agreed on, a bitmap naming which members
// of the ordered panel keyset co-signed, and their Ed25519 signatures
// over the canonical certificate digest. It marshals to JSON for the wire
// and persists verbatim as a first-class store record column.
type Certificate struct {
	// Key is the hex content address of the certified request — the same
	// digest the verdict cache and the durable store are keyed by.
	Key string `json:"key"`
	// Verdict is the verdict the co-signers certified.
	Verdict Verdict `json:"verdict"`
	// Panel is the co-signer bitmap over the ordered panel keyset:
	// bit i (byte i/8, mask 1<<(i%8)) set means keyset[i] co-signed.
	Panel []byte `json:"panel"`
	// Sigs holds one Ed25519 co-signature per set Panel bit, in ascending
	// bit order, each over the canonical certificate digest.
	Sigs [][]byte `json:"sigs"`
}

// SupermajorityThreshold is the default co-signature bar for a panel of n
// known keys: ⌊2n/3⌋+1, the classic Byzantine supermajority — any two
// certified verdicts for the same request share an honest co-signer, so
// fewer than n/3 colluding members cannot certify two contradicting
// verdicts.
func SupermajorityThreshold(n int) int {
	return 2*n/3 + 1
}

// KeyHash decodes the certificate's request key into the raw content
// address the cache and store index by.
func (c *Certificate) KeyHash() (identity.Hash, error) {
	var h identity.Hash
	raw, err := hex.DecodeString(c.Key)
	if err != nil || len(raw) != len(h) {
		return h, fmt.Errorf("%w: malformed request key %q", ErrCertificateRejected, c.Key)
	}
	copy(h[:], raw)
	return h, nil
}

// Digest computes the canonical byte string every co-signature must
// verify against: the domain-tagged digest of the request key and the
// verdict's canonical JSON encoding.
func (c *Certificate) Digest() ([]byte, error) {
	key, err := c.KeyHash()
	if err != nil {
		return nil, err
	}
	verdictJSON, err := json.Marshal(c.Verdict)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding verdict: %v", ErrCertificateRejected, err)
	}
	return identity.CertificateDigest(key, verdictJSON), nil
}

// CoSigners resolves the panel bitmap against the ordered keyset,
// returning the co-signing members in bit order. It validates bitmap
// shape only — Verify is what checks the signatures.
func (c *Certificate) CoSigners(keyset []identity.PartyID) ([]identity.PartyID, error) {
	if want := (len(keyset) + 7) / 8; len(c.Panel) != want {
		return nil, fmt.Errorf("%w: panel bitmap is %d bytes for a keyset of %d (want %d)",
			ErrCertificateRejected, len(c.Panel), len(keyset), want)
	}
	signers := make([]identity.PartyID, 0, len(c.Sigs))
	for i, b := range c.Panel {
		for b != 0 {
			bit := bits.TrailingZeros8(b)
			b &^= 1 << bit
			idx := i*8 + bit
			if idx >= len(keyset) {
				return nil, fmt.Errorf("%w: panel bitmap names member %d of a %d-member keyset",
					ErrCertificateRejected, idx, len(keyset))
			}
			signers = append(signers, keyset[idx])
		}
	}
	if len(signers) != len(c.Sigs) {
		return nil, fmt.Errorf("%w: panel bitmap names %d co-signers but %d signatures are attached",
			ErrCertificateRejected, len(signers), len(c.Sigs))
	}
	return signers, nil
}

// Verify checks the certificate offline against the ordered panel keyset:
// bitmap shape, co-signer count against the threshold (zero or negative
// means SupermajorityThreshold of the keyset), and every co-signature
// against the canonical certificate digest. A nil error means at least
// threshold distinct known panel members signed this exact verdict for
// this exact request — no live panel member was consulted.
func (c *Certificate) Verify(keyset []identity.PartyID, threshold int) error {
	if len(keyset) == 0 {
		return fmt.Errorf("%w: empty panel keyset", ErrCertificateRejected)
	}
	if threshold <= 0 {
		threshold = SupermajorityThreshold(len(keyset))
	}
	signers, err := c.CoSigners(keyset)
	if err != nil {
		return err
	}
	if len(signers) < threshold {
		return fmt.Errorf("%w: %d co-signatures, threshold is %d of %d",
			ErrCertificateRejected, len(signers), threshold, len(keyset))
	}
	digest, err := c.Digest()
	if err != nil {
		return err
	}
	for i, signer := range signers {
		if err := identity.Verify(signer, digest, c.Sigs[i]); err != nil {
			return fmt.Errorf("%w: co-signature %d (%s): %v",
				ErrCertificateRejected, i, shortID(signer), err)
		}
	}
	return nil
}

// EncodeCertificate renders a certificate for the wire or the store's
// certificate column. A nil certificate encodes to nil, which is how
// uncertified records travel.
func EncodeCertificate(c *Certificate) ([]byte, error) {
	if c == nil {
		return nil, nil
	}
	data, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("core: encoding certificate: %w", err)
	}
	return data, nil
}

// DecodeCertificate parses a certificate column or wire payload written
// by EncodeCertificate; empty input decodes to nil (no certificate).
func DecodeCertificate(data []byte) (*Certificate, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: malformed certificate encoding: %v", ErrCertificateRejected, err)
	}
	return &c, nil
}

// shortID abbreviates a party ID for log lines the way the rest of the
// system prints them: first and last four hex characters.
func shortID(id identity.PartyID) string {
	s := string(id)
	if len(s) <= 12 {
		return s
	}
	return s[:8] + "…" + s[len(s)-4:]
}
