package core

import (
	"context"
	"encoding/json"
	"testing"
)

func routingSpec() LinksRoutingSpec {
	return LinksRoutingSpec{
		Loads:         []int64{40, 10, 0},
		AgentLoad:     20,
		Remaining:     2,
		ObservedTotal: 60,
		ObservedCount: 3,
	}
}

func TestEndToEndLinksRouting(t *testing.T) {
	ann, err := AnnounceLinksRouting("operator", routingSpec())
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest routing advice rejected: %+v", res.Verdicts)
	}
	v := res.Verdicts["v1"]
	if v.Details["recomputedLink"] == "" || v.Details["greedyLink"] == "" {
		t.Errorf("missing details: %v", v.Details)
	}
}

func TestLinksRoutingForgedAdviceRejected(t *testing.T) {
	ann, err := AnnounceLinksRouting("operator", routingSpec())
	if err != nil {
		t.Fatal(err)
	}
	var honest LinksRoutingAdviceSpec
	if err := json.Unmarshal(ann.Advice, &honest); err != nil {
		t.Fatal(err)
	}
	// Point the advice at a different link.
	forgedLink := (honest.Link + 1) % 3
	ann.Advice = mustJSON(LinksRoutingAdviceSpec{Link: forgedLink})
	agent, _ := newTestAgent(t, ann, []string{"v1", "v2", "v3"}, nil)
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged routing advice accepted")
	}
}

func TestLinksRoutingProcedureValidation(t *testing.T) {
	proc := LinksRoutingProcedure{}
	if _, err := proc.Verify([]byte("{bad"), nil, nil); err == nil {
		t.Error("broken spec accepted")
	}
	good := mustJSON(routingSpec())
	if _, err := proc.Verify(good, []byte("{bad"), nil); err == nil {
		t.Error("broken advice accepted")
	}

	rejections := []struct {
		name string
		spec LinksRoutingSpec
	}{
		{"no links", LinksRoutingSpec{AgentLoad: 1, ObservedTotal: 1, ObservedCount: 1}},
		{"zero agent load", LinksRoutingSpec{Loads: []int64{0}, ObservedTotal: 1, ObservedCount: 1}},
		{"observed below own load", LinksRoutingSpec{Loads: []int64{0}, AgentLoad: 5, ObservedTotal: 3, ObservedCount: 1}},
		{"negative remaining", LinksRoutingSpec{Loads: []int64{0}, AgentLoad: 1, ObservedTotal: 1, ObservedCount: 1, Remaining: -1}},
		{"negative link load", LinksRoutingSpec{Loads: []int64{-3}, AgentLoad: 1, ObservedTotal: 1, ObservedCount: 1}},
	}
	for _, r := range rejections {
		t.Run(r.name, func(t *testing.T) {
			verdict, err := proc.Verify(mustJSON(r.spec), mustJSON(LinksRoutingAdviceSpec{}), nil)
			if err != nil {
				t.Fatal(err)
			}
			if verdict.Accepted {
				t.Fatal("inconsistent statistics accepted")
			}
		})
	}

	// Out-of-range advised link.
	verdict, err := proc.Verify(good, mustJSON(LinksRoutingAdviceSpec{Link: 99}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Accepted {
		t.Error("out-of-range link accepted")
	}
}

func TestLinksRoutingLastAgentIsGreedy(t *testing.T) {
	// Remaining = 0: the honest advice must coincide with greedy.
	spec := LinksRoutingSpec{
		Loads:         []int64{40, 10, 25},
		AgentLoad:     7,
		Remaining:     0,
		ObservedTotal: 7,
		ObservedCount: 1,
	}
	ann, err := AnnounceLinksRouting("operator", spec)
	if err != nil {
		t.Fatal(err)
	}
	var adv LinksRoutingAdviceSpec
	if err := json.Unmarshal(ann.Advice, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.Link != 1 {
		t.Fatalf("advice = %d, want the least loaded link 1", adv.Link)
	}
}
