package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"rationality/internal/bimatrix"
	"rationality/internal/interactive"
	"rationality/internal/transport"
)

func p2TestGame(t *testing.T) (*bimatrix.Game, *bimatrix.Equilibrium) {
	t.Helper()
	g := bimatrix.FromInts(
		[][]int64{{1, -1}, {-1, 1}},
		[][]int64{{-1, 1}, {1, -1}},
	)
	eq, err := g.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	return g, eq
}

func TestP2OverInProcTransport(t *testing.T) {
	g, eq := p2TestGame(t)
	honest, err := interactive.NewHonestProver(g, eq, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewP2ProverService(honest)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemoteP2Prover(context.Background(), transport.DialInProc(svc))
	for _, role := range []interactive.Role{interactive.RowAgent, interactive.ColAgent} {
		report, err := interactive.VerifyP2(g, role, remote, interactive.P2Config{
			Rng: rand.New(rand.NewSource(2)),
		})
		if err != nil {
			t.Fatalf("%v: %v", role, err)
		}
		if !report.Accepted {
			t.Fatalf("%v: honest remote prover rejected", role)
		}
	}
}

func TestP2OverTCP(t *testing.T) {
	g, eq := p2TestGame(t)
	honest, err := interactive.NewHonestProver(g, eq, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewP2ProverService(honest)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ListenTCP("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := transport.DialTCP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	remote := NewRemoteP2Prover(ctx, client)
	report, err := interactive.VerifyP2(g, interactive.RowAgent, remote, interactive.P2Config{
		Rng: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Accepted {
		t.Fatal("honest TCP prover rejected")
	}
	if report.Queries < 2 {
		t.Errorf("suspiciously few queries: %d", report.Queries)
	}
}

func TestP2OverTransportCatchesEquivocation(t *testing.T) {
	g, eq := p2TestGame(t)
	honest, err := interactive.NewHonestProver(g, eq, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	liar := &interactive.EquivocatingProver{HonestProver: honest}
	svc, err := NewP2ProverService(liar)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemoteP2Prover(context.Background(), transport.DialInProc(svc))
	if _, err := interactive.VerifyP2(g, interactive.RowAgent, remote, interactive.P2Config{
		Rng: rand.New(rand.NewSource(6)),
	}); err == nil {
		t.Fatal("equivocating prover accepted over the transport")
	}
}

func TestP2ProverServiceValidation(t *testing.T) {
	if _, err := NewP2ProverService(nil); err == nil {
		t.Error("nil prover accepted")
	}
	g, eq := p2TestGame(t)
	honest, err := interactive.NewHonestProver(g, eq, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewP2ProverService(honest)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.DialInProc(svc)
	req, _ := transport.NewMessage("nonsense", struct{}{})
	if _, err := c.Call(context.Background(), req); err == nil {
		t.Error("unknown message accepted")
	}
	// Out-of-range open request surfaces as an application error.
	req2, _ := transport.NewMessage(MsgP2Open, P2OpenRequest{Role: interactive.RowAgent, Index: 99})
	if _, err := c.Call(context.Background(), req2); err == nil {
		t.Error("out-of-range open accepted")
	}
}
