// Package congestion implements the paper's §6 on-line network congestion
// games: communication networks N = (V, E, (de)e∈E) with non-decreasing
// per-edge delay functions, configurations of agent paths, per-agent delays
// λi, total congestion Λ, congestion-aware shortest paths, Rosenthal's
// potential for unit-load games, and the Fig. 6 diamond example showing why
// a greedy best reply at arrival time need not remain a best reply when the
// game ends.
package congestion

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// DelayFunc is a non-decreasing delay function de: load ↦ delay. The
// congestion machinery assumes monotonicity; constructors in this package
// enforce it.
type DelayFunc interface {
	// Eval returns the delay at the given total load. Implementations must
	// be non-decreasing in the load and must not retain or mutate it.
	Eval(load *big.Rat) *big.Rat
	// String renders the function for logs and proofs.
	String() string
}

// LinearDelay is d(x) = A·x + B with A, B >= 0. The paper's Fig. 6 uses the
// identity d(x) = x (A = 1, B = 0).
type LinearDelay struct {
	A *big.Rat
	B *big.Rat
}

// NewLinearDelay validates A, B >= 0 (required for monotone non-negative
// delays).
func NewLinearDelay(a, b *big.Rat) (*LinearDelay, error) {
	if a.Sign() < 0 || b.Sign() < 0 {
		return nil, fmt.Errorf("congestion: linear delay needs A, B >= 0")
	}
	return &LinearDelay{A: numeric.Copy(a), B: numeric.Copy(b)}, nil
}

// Identity returns the delay d(x) = x.
func Identity() *LinearDelay {
	return &LinearDelay{A: numeric.One(), B: numeric.Zero()}
}

// Constant returns the load-independent delay d(x) = b.
func Constant(b *big.Rat) *LinearDelay {
	return &LinearDelay{A: numeric.Zero(), B: numeric.Copy(b)}
}

// Eval implements DelayFunc.
func (d *LinearDelay) Eval(load *big.Rat) *big.Rat {
	return numeric.Add(numeric.Mul(d.A, load), d.B)
}

// String implements DelayFunc.
func (d *LinearDelay) String() string {
	return fmt.Sprintf("%s*x + %s", d.A.RatString(), d.B.RatString())
}

// MonomialDelay is d(x) = C·x^Degree for C >= 0, Degree >= 1 — the standard
// polynomial congestion cost family.
type MonomialDelay struct {
	C      *big.Rat
	Degree int
}

// NewMonomialDelay validates C >= 0 and Degree >= 1.
func NewMonomialDelay(c *big.Rat, degree int) (*MonomialDelay, error) {
	if c.Sign() < 0 {
		return nil, fmt.Errorf("congestion: monomial delay needs C >= 0")
	}
	if degree < 1 {
		return nil, fmt.Errorf("congestion: monomial degree must be >= 1")
	}
	return &MonomialDelay{C: numeric.Copy(c), Degree: degree}, nil
}

// Eval implements DelayFunc.
func (d *MonomialDelay) Eval(load *big.Rat) *big.Rat {
	return numeric.Mul(d.C, numeric.Pow(load, d.Degree))
}

// String implements DelayFunc.
func (d *MonomialDelay) String() string {
	return fmt.Sprintf("%s*x^%d", d.C.RatString(), d.Degree)
}

// Edge is a directed arc with its delay function.
type Edge struct {
	ID    int
	From  int
	To    int
	Delay DelayFunc
}

// Network is a directed multigraph N = (V, E, (de)). Nodes are integers
// 0..NumNodes−1; parallel edges are allowed (the parallel-links model of §6
// is exactly a two-node network with m parallel edges).
type Network struct {
	numNodes int
	edges    []Edge
	out      [][]int // out[v] = IDs of edges leaving v
}

// NewNetwork creates a network with n isolated nodes.
func NewNetwork(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("congestion: network needs at least one node")
	}
	return &Network{numNodes: n, out: make([][]int, n)}, nil
}

// MustNetwork is NewNetwork that panics on error.
func MustNetwork(n int) *Network {
	net, err := NewNetwork(n)
	if err != nil {
		panic(err)
	}
	return net
}

// AddEdge appends a directed edge and returns its ID.
func (n *Network) AddEdge(from, to int, delay DelayFunc) (int, error) {
	if from < 0 || from >= n.numNodes || to < 0 || to >= n.numNodes {
		return 0, fmt.Errorf("congestion: edge endpoints (%d, %d) out of range", from, to)
	}
	if delay == nil {
		return 0, fmt.Errorf("congestion: nil delay function")
	}
	id := len(n.edges)
	n.edges = append(n.edges, Edge{ID: id, From: from, To: to, Delay: delay})
	n.out[from] = append(n.out[from], id)
	return id, nil
}

// MustAddEdge is AddEdge that panics on error.
func (n *Network) MustAddEdge(from, to int, delay DelayFunc) int {
	id, err := n.AddEdge(from, to, delay)
	if err != nil {
		panic(err)
	}
	return id
}

// NumNodes returns |V|.
func (n *Network) NumNodes() int { return n.numNodes }

// NumEdges returns |E|.
func (n *Network) NumEdges() int { return len(n.edges) }

// Edge returns the edge with the given ID.
func (n *Network) Edge(id int) Edge {
	return n.edges[id]
}

// OutEdges returns the IDs of edges leaving node v.
func (n *Network) OutEdges(v int) []int {
	return append([]int(nil), n.out[v]...)
}

// Path is a sequence of edge IDs. ValidPath checks connectivity.
type Path []int

// ValidPath reports whether p is a connected directed path from src to sink
// in the network (non-empty, consecutive edges share endpoints).
func (n *Network) ValidPath(p Path, src, sink int) bool {
	if len(p) == 0 {
		return false
	}
	at := src
	for _, id := range p {
		if id < 0 || id >= len(n.edges) {
			return false
		}
		e := n.edges[id]
		if e.From != at {
			return false
		}
		at = e.To
	}
	return at == sink
}
