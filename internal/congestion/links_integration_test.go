package congestion

import (
	"math/rand"
	"testing"

	"rationality/internal/links"
	"rationality/internal/numeric"
)

// The parallel-links model of package links is exactly a two-node congestion
// network with m parallel identity-delay edges. These tests pin the two
// implementations to each other: the greedy strategy must produce identical
// link loads in both, so results from the fast integer simulator (Fig. 7)
// transfer to the general-network model.

func TestGreedyMatchesLinksModel(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(30)
		loads := links.UniformLoads(rng, n, 50)

		// Fast integer simulator.
		sys, err := links.Run(m, loads, links.Greedy{})
		if err != nil {
			t.Fatal(err)
		}

		// General-network model: 2 nodes, m parallel identity edges.
		net := MustNetwork(2)
		for j := 0; j < m; j++ {
			net.MustAddEdge(0, 1, Identity())
		}
		arrivals := make([]Arrival, n)
		for i, w := range loads {
			arrivals[i] = Arrival{Source: 0, Sink: 1, Load: numeric.I(w)}
		}
		res, err := RunOnline(net, arrivals, GreedyStrategy{})
		if err != nil {
			t.Fatal(err)
		}

		// The greedy choice differs subtly: links.Greedy picks the least
		// LOADED link, while the network greedy picks the least DELAY path
		// after joining — identical for identity delays. Loads must agree
		// edge for edge (both tie-break towards lower indices).
		want := sys.Loads()
		for j := 0; j < m; j++ {
			got := res.Config.EdgeLoad(j)
			if !numeric.Eq(got, numeric.I(want[j])) {
				t.Fatalf("trial %d: edge %d load %s, links model has %d",
					trial, j, got.RatString(), want[j])
			}
		}
	}
}

func TestMakespanEqualsMaxEdgeDelayOnIdentityLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	loads := links.UniformLoads(rng, 40, 100)
	const m = 5
	sys, err := links.Run(m, loads, links.Greedy{})
	if err != nil {
		t.Fatal(err)
	}

	net := MustNetwork(2)
	for j := 0; j < m; j++ {
		net.MustAddEdge(0, 1, Identity())
	}
	cfg := NewConfig(net)
	// Replay the same assignment.
	s2, err := links.NewSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range loads {
		link := s2.LeastLoaded()
		if err := s2.Assign(link, w); err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.Join(0, 1, numeric.I(w), Path{link}); err != nil {
			t.Fatal(err)
		}
	}

	// Makespan (max link load) equals the max edge delay for identity
	// delays.
	maxDelay := numeric.Zero()
	for j := 0; j < m; j++ {
		if d := cfg.EdgeDelay(j); numeric.Gt(d, maxDelay) {
			maxDelay = d
		}
	}
	if !numeric.Eq(maxDelay, numeric.I(sys.Makespan())) {
		t.Fatalf("max edge delay %s != makespan %d", maxDelay.RatString(), sys.Makespan())
	}
}
