package congestion

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// WeightedLinearPotential computes the weighted potential of Fotakis,
// Kontogiannis and Spirakis (the paper's reference [13]) for configurations
// over LINEAR delay functions de(x) = a·x + b:
//
//	Φ(π) = Σ_e [ (a_e/2)·(W_e² + Σ_{i∈πi∋e} w_i²) + b_e·W_e ]
//
// A unilateral reroute by agent i changes Φ by exactly w_i·Δλ_i, so
// best-response dynamics strictly decrease Φ and weighted congestion games
// with linear delays always possess pure equilibria. The exactness of the
// identity is pinned by a property test. It returns an error when any edge's
// delay function is not linear.
func (c *Config) WeightedLinearPotential() (*big.Rat, error) {
	// Per-edge sum of squared weights of the agents using the edge.
	sqSums := make([]*big.Rat, c.net.NumEdges())
	for e := range sqSums {
		sqSums[e] = new(big.Rat)
	}
	for _, a := range c.agents {
		w2 := numeric.Mul(a.Load, a.Load)
		for _, e := range a.Path {
			sqSums[e].Add(sqSums[e], w2)
		}
	}

	total := numeric.Zero()
	half := numeric.R(1, 2)
	for e := 0; e < c.net.NumEdges(); e++ {
		lin, ok := c.net.Edge(e).Delay.(*LinearDelay)
		if !ok {
			return nil, fmt.Errorf("congestion: edge %d has non-linear delay %s",
				e, c.net.Edge(e).Delay)
		}
		we := c.loads[e]
		quad := numeric.Mul(lin.A, numeric.Add(numeric.Mul(we, we), sqSums[e]))
		term := numeric.Add(numeric.Mul(half, quad), numeric.Mul(lin.B, we))
		total = numeric.Add(total, term)
	}
	return total, nil
}
