package congestion

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// AgentRecord is one routed agent: its commodity (si, ti), load wi, and the
// irrevocably chosen path πi.
type AgentRecord struct {
	Source int
	Sink   int
	Load   *big.Rat
	Path   Path
}

// Config is the network configuration π(i) after some agents have joined:
// per-edge total loads We plus the roster of routed agents.
type Config struct {
	net    *Network
	loads  []*big.Rat // per edge ID
	agents []AgentRecord
}

// NewConfig returns the empty configuration of the network.
func NewConfig(net *Network) *Config {
	loads := make([]*big.Rat, net.NumEdges())
	for i := range loads {
		loads[i] = new(big.Rat)
	}
	return &Config{net: net, loads: loads}
}

// Clone returns an independent copy of the configuration.
func (c *Config) Clone() *Config {
	cc := NewConfig(c.net)
	for i, l := range c.loads {
		cc.loads[i].Set(l)
	}
	cc.agents = make([]AgentRecord, len(c.agents))
	for i, a := range c.agents {
		cc.agents[i] = AgentRecord{
			Source: a.Source,
			Sink:   a.Sink,
			Load:   numeric.Copy(a.Load),
			Path:   append(Path(nil), a.Path...),
		}
	}
	return cc
}

// Network returns the underlying network.
func (c *Config) Network() *Network { return c.net }

// NumAgents returns how many agents have joined.
func (c *Config) NumAgents() int { return len(c.agents) }

// Agent returns the record of agent i (joining order).
func (c *Config) Agent(i int) AgentRecord {
	a := c.agents[i]
	return AgentRecord{
		Source: a.Source,
		Sink:   a.Sink,
		Load:   numeric.Copy(a.Load),
		Path:   append(Path(nil), a.Path...),
	}
}

// EdgeLoad returns We, the total load on edge e.
func (c *Config) EdgeLoad(e int) *big.Rat { return numeric.Copy(c.loads[e]) }

// Join routes a new agent along path p with load w; the decision is
// irrevocable (the paper's model). It returns the agent's index.
func (c *Config) Join(src, sink int, w *big.Rat, p Path) (int, error) {
	if w.Sign() <= 0 {
		return 0, fmt.Errorf("congestion: agent load must be positive")
	}
	if !c.net.ValidPath(p, src, sink) {
		return 0, fmt.Errorf("congestion: %v is not a path from %d to %d", p, src, sink)
	}
	for _, e := range p {
		c.loads[e].Add(c.loads[e], w)
	}
	c.agents = append(c.agents, AgentRecord{
		Source: src,
		Sink:   sink,
		Load:   numeric.Copy(w),
		Path:   append(Path(nil), p...),
	})
	return len(c.agents) - 1, nil
}

// EdgeDelay returns de(We) for edge e under the current loads.
func (c *Config) EdgeDelay(e int) *big.Rat {
	return c.net.Edge(e).Delay.Eval(c.loads[e])
}

// PathDelay returns the delay currently experienced along path p:
// Σ_{e∈p} de(We).
func (c *Config) PathDelay(p Path) *big.Rat {
	total := numeric.Zero()
	for _, e := range p {
		total = numeric.Add(total, c.EdgeDelay(e))
	}
	return total
}

// PathDelayIfJoined returns the delay a new agent of load w would experience
// on path p after joining: Σ_{e∈p} de(We + w).
func (c *Config) PathDelayIfJoined(p Path, w *big.Rat) *big.Rat {
	total := numeric.Zero()
	for _, e := range p {
		total = numeric.Add(total, c.net.Edge(e).Delay.Eval(numeric.Add(c.loads[e], w)))
	}
	return total
}

// AgentDelay returns λi(π), the delay agent i experiences under the current
// configuration.
func (c *Config) AgentDelay(i int) *big.Rat {
	return c.PathDelay(c.agents[i].Path)
}

// TotalCongestion returns Λ(π) = Σ_{e∈E} de(We), the inventor's objective.
func (c *Config) TotalCongestion() *big.Rat {
	total := numeric.Zero()
	for e := 0; e < c.net.NumEdges(); e++ {
		total = numeric.Add(total, c.EdgeDelay(e))
	}
	return total
}

// RosenthalPotential computes Φ(π) = Σ_e Σ_{t=1}^{ne} de(t) for UNIT-load
// configurations, where ne is the number of agents on edge e. Best-response
// moves strictly decrease Φ, so unit-load congestion games always possess
// pure equilibria. It returns an error when any agent's load is not 1.
func (c *Config) RosenthalPotential() (*big.Rat, error) {
	one := numeric.One()
	counts := make([]int, c.net.NumEdges())
	for _, a := range c.agents {
		if a.Load.Cmp(one) != 0 {
			return nil, fmt.Errorf("congestion: Rosenthal potential requires unit loads; agent has %s",
				a.Load.RatString())
		}
		for _, e := range a.Path {
			counts[e]++
		}
	}
	total := numeric.Zero()
	for e, ne := range counts {
		for t := 1; t <= ne; t++ {
			total = numeric.Add(total, c.net.Edge(e).Delay.Eval(numeric.I(int64(t))))
		}
	}
	return total, nil
}

// Reroute moves agent i onto a different valid path, updating the loads.
// The online game forbids this (decisions are irrevocable); it exists for
// best-response dynamics analyses of the offline game.
func (c *Config) Reroute(i int, p Path) error {
	if i < 0 || i >= len(c.agents) {
		return fmt.Errorf("congestion: agent %d out of range", i)
	}
	a := &c.agents[i]
	if !c.net.ValidPath(p, a.Source, a.Sink) {
		return fmt.Errorf("congestion: %v is not a path from %d to %d", p, a.Source, a.Sink)
	}
	for _, e := range a.Path {
		c.loads[e].Sub(c.loads[e], a.Load)
	}
	a.Path = append(Path(nil), p...)
	for _, e := range a.Path {
		c.loads[e].Add(c.loads[e], a.Load)
	}
	return nil
}

// BestResponsePath returns the path minimizing agent i's delay if it could
// re-route now (its own load removed first), with the delay it would then
// experience.
func (c *Config) BestResponsePath(i int) (Path, *big.Rat, error) {
	if i < 0 || i >= len(c.agents) {
		return nil, nil, fmt.Errorf("congestion: agent %d out of range", i)
	}
	a := c.agents[i]
	// Remove the agent's load, find the congestion-aware shortest path,
	// restore.
	for _, e := range a.Path {
		c.loads[e].Sub(c.loads[e], a.Load)
	}
	p, d, err := ShortestPath(c, a.Source, a.Sink, a.Load)
	for _, e := range a.Path {
		c.loads[e].Add(c.loads[e], a.Load)
	}
	return p, d, err
}

// IsPureEquilibrium reports whether no agent can strictly reduce its delay
// by unilaterally re-routing.
func (c *Config) IsPureEquilibrium() (bool, error) {
	for i := range c.agents {
		_, best, err := c.BestResponsePath(i)
		if err != nil {
			return false, err
		}
		if numeric.Lt(best, c.AgentDelay(i)) {
			return false, nil
		}
	}
	return true, nil
}
