package congestion

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestMarginalCostMatchesGreedyOnIdentityLinks(t *testing.T) {
	// On parallel identity links, marginal cost (We + w) − We = w is the
	// same for all links plus the joining delay ordering... actually the
	// marginal cost is constant w per link, so ALL links tie and the
	// tie-break picks link 0-first among equal-distance candidates — while
	// greedy picks the least loaded. They differ! This test pins the actual
	// behaviour: marginal-cost routing on identity links is load-oblivious.
	net := MustNetwork(2)
	l0 := net.MustAddEdge(0, 1, Identity())
	net.MustAddEdge(0, 1, Identity())
	c := NewConfig(net)
	if _, err := c.Join(0, 1, numeric.I(5), Path{l0}); err != nil {
		t.Fatal(err)
	}
	p, err := (MarginalCostStrategy{}).ChoosePath(c, Arrival{0, 1, numeric.One()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0] != l0 {
		t.Fatalf("marginal-cost path = %v, want tie-broken to edge 0", p)
	}
}

func TestMarginalCostAvoidsSteepEdges(t *testing.T) {
	// Two routes 0→1: a cubic-delay edge already carrying load (steep
	// marginal cost) vs a linear edge with higher absolute delay but flat
	// marginal cost. Greedy (absolute delay) picks the cubic edge; the
	// inventor (marginal Λ) picks the linear one.
	net := MustNetwork(2)
	cubic, err := NewMonomialDelay(numeric.One(), 3)
	if err != nil {
		t.Fatal(err)
	}
	eCubic := net.MustAddEdge(0, 1, cubic)
	eLinear := net.MustAddEdge(0, 1, Constant(numeric.I(30)))

	c := NewConfig(net)
	if _, err := c.Join(0, 1, numeric.I(2), Path{eCubic}); err != nil {
		t.Fatal(err)
	}
	// Absolute delays for a unit arrival: cubic (2+1)³ = 27 < 30 linear →
	// greedy takes the cubic edge.
	greedyPath, _, err := ShortestPath(c, 0, 1, numeric.One())
	if err != nil {
		t.Fatal(err)
	}
	if greedyPath[0] != eCubic {
		t.Fatalf("greedy path = %v, want the cubic edge", greedyPath)
	}
	// Marginal Λ increase: cubic 27 − 8 = 19 vs constant 30 − 30 = 0 → the
	// inventor routes over the constant edge.
	socialPath, err := (MarginalCostStrategy{}).ChoosePath(c, Arrival{0, 1, numeric.One()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if socialPath[0] != eLinear {
		t.Fatalf("marginal-cost path = %v, want the constant edge", socialPath)
	}
}

func TestMarginalCostReducesTotalCongestion(t *testing.T) {
	// On a heterogeneous two-route network, the inventor's routing ends with
	// total congestion Λ no worse than greedy's for the same arrivals.
	build := func() *Network {
		net := MustNetwork(2)
		quad, err := NewMonomialDelay(numeric.One(), 2)
		if err != nil {
			t.Fatal(err)
		}
		net.MustAddEdge(0, 1, quad)
		net.MustAddEdge(0, 1, Identity())
		return net
	}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		arrivals := make([]Arrival, n)
		for i := range arrivals {
			arrivals[i] = Arrival{Source: 0, Sink: 1, Load: numeric.I(int64(1 + rng.Intn(3)))}
		}
		greedyRes, err := RunOnline(build(), arrivals, GreedyStrategy{})
		if err != nil {
			t.Fatal(err)
		}
		socialRes, err := RunOnline(build(), arrivals, MarginalCostStrategy{})
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Gt(socialRes.Config.TotalCongestion(), greedyRes.Config.TotalCongestion()) {
			t.Fatalf("trial %d: inventor Λ=%s worse than greedy Λ=%s",
				trial,
				socialRes.Config.TotalCongestion().RatString(),
				greedyRes.Config.TotalCongestion().RatString())
		}
	}
}

func TestMarginalCostValidation(t *testing.T) {
	net := MustNetwork(2)
	net.MustAddEdge(0, 1, Identity())
	c := NewConfig(net)
	if _, err := (MarginalCostStrategy{}).ChoosePath(c, Arrival{0, 9, numeric.One()}, 0); err == nil {
		t.Error("bad sink accepted")
	}
	if _, err := (MarginalCostStrategy{}).ChoosePath(c, Arrival{0, 1, numeric.Zero()}, 0); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := (MarginalCostStrategy{}).ChoosePath(c, Arrival{0, 0, numeric.One()}, 0); err == nil {
		t.Error("src == sink accepted")
	}
	// Unreachable sink.
	net3 := MustNetwork(3)
	net3.MustAddEdge(0, 1, Identity())
	c3 := NewConfig(net3)
	if _, err := (MarginalCostStrategy{}).ChoosePath(c3, Arrival{0, 2, numeric.One()}, 0); err == nil {
		t.Error("unreachable sink accepted")
	}
}
