package congestion

import (
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// Arrival is one agent joining the online game at time τi.
type Arrival struct {
	Source int
	Sink   int
	Load   *big.Rat
}

// Strategy chooses an irrevocable path for an arriving agent given the
// current configuration. Implementations include the greedy best reply and
// (in package links, for parallel-link networks) the inventor's
// statistics-based suggestion.
type Strategy interface {
	// ChoosePath picks a path for the arrival; remaining is how many agents
	// are still expected after this one (the inventor's statistic n − i).
	ChoosePath(c *Config, a Arrival, remaining int) (Path, error)
}

// GreedyStrategy routes each agent along its congestion-aware shortest path
// at arrival time — the best reply given π(i−1), which §6 shows need not
// remain a best reply at time τn.
type GreedyStrategy struct{}

// ChoosePath implements Strategy.
func (GreedyStrategy) ChoosePath(c *Config, a Arrival, _ int) (Path, error) {
	p, _, err := ShortestPath(c, a.Source, a.Sink, a.Load)
	return p, err
}

// OnlineResult is the outcome of an online run.
type OnlineResult struct {
	Config *Config
	// DelayAtJoin[i] is the delay agent i experienced right after joining
	// (its greedy yardstick).
	DelayAtJoin []*big.Rat
	// FinalDelay[i] is λi(π(n)), the delay when the game ends.
	FinalDelay []*big.Rat
}

// RunOnline plays the arrivals in order, each routed by the strategy. The
// strategy is told how many arrivals remain.
func RunOnline(net *Network, arrivals []Arrival, s Strategy) (*OnlineResult, error) {
	c := NewConfig(net)
	delayAtJoin := make([]*big.Rat, len(arrivals))
	for i, a := range arrivals {
		p, err := s.ChoosePath(c, a, len(arrivals)-i-1)
		if err != nil {
			return nil, fmt.Errorf("congestion: routing agent %d: %w", i, err)
		}
		idx, err := c.Join(a.Source, a.Sink, a.Load, p)
		if err != nil {
			return nil, fmt.Errorf("congestion: agent %d: %w", i, err)
		}
		delayAtJoin[i] = c.AgentDelay(idx)
	}
	final := make([]*big.Rat, len(arrivals))
	for i := range arrivals {
		final[i] = c.AgentDelay(i)
	}
	return &OnlineResult{Config: c, DelayAtJoin: delayAtJoin, FinalDelay: final}, nil
}

// Fig6Result packages the quantities of the paper's Fig. 6 example.
type Fig6Result struct {
	// GreedyFinalDelay is agent 2k+1's delay at time τ2k+2 after it greedily
	// picked a→b→d: 2k+3.
	GreedyFinalDelay *big.Rat
	// AlternativeFinalDelay is what a→c→d would have cost it: 2k+2.
	AlternativeFinalDelay *big.Rat
	// Config is the final configuration for further inspection.
	Config *Config
}

// BuildFig6 constructs the diamond network of Fig. 6 (nodes a=0, b=1, c=2,
// d=3; identity delays; unit loads), loads k agents on each of a→b→d and
// a→c→d, routes agent 2k+1 (a→d) greedily, then routes agent 2k+2 (b→d)
// through its only option, and reports agent 2k+1's final delay against the
// delay of the forgone alternative path.
func BuildFig6(k int) (*Fig6Result, error) {
	if k < 0 {
		return nil, fmt.Errorf("congestion: negative k")
	}
	const a, b, c, d = 0, 1, 2, 3
	net := MustNetwork(4)
	ab := net.MustAddEdge(a, b, Identity())
	ac := net.MustAddEdge(a, c, Identity())
	bd := net.MustAddEdge(b, d, Identity())
	cd := net.MustAddEdge(c, d, Identity())

	cfg := NewConfig(net)
	one := numeric.One()
	for i := 0; i < k; i++ {
		if _, err := cfg.Join(a, d, one, Path{ab, bd}); err != nil {
			return nil, err
		}
		if _, err := cfg.Join(a, d, one, Path{ac, cd}); err != nil {
			return nil, err
		}
	}

	// Agent 2k+1 picks its greedy best reply from a to d; with every edge at
	// congestion k both routes cost 2k+2, and the deterministic tie-break
	// selects a→b→d as in the paper.
	p, _, err := ShortestPath(cfg, a, d, one)
	if err != nil {
		return nil, err
	}
	star, err := cfg.Join(a, d, one, p)
	if err != nil {
		return nil, err
	}

	// Agent 2k+2 must route b→d; its only option is the direct edge.
	if _, err := cfg.Join(b, d, one, Path{bd}); err != nil {
		return nil, err
	}

	alt := Path{ac, cd}
	if p[0] != ab {
		alt = Path{ab, bd} // if the tie-break ever changed, compare the other way
	}
	// The forgone path's delay had agent 2k+1 used it instead: remove the
	// agent's contribution from its chosen path, then price the alternative
	// with the agent's load added.
	probe := cfg.Clone()
	if err := probe.Reroute(star, alt); err != nil {
		return nil, err
	}
	return &Fig6Result{
		GreedyFinalDelay:      cfg.AgentDelay(star),
		AlternativeFinalDelay: probe.AgentDelay(star),
		Config:                cfg,
	}, nil
}
