package congestion

import (
	"container/heap"
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// §6: "The goal of the inventor is to minimize total congestion
// Λ(π(n)) = Σ_e de(π(n))". MarginalCostStrategy is the inventor-side
// routing rule for general networks: route each arriving agent along the
// path that minimizes the marginal increase of Λ, i.e. with edge cost
// de(We + w) − de(We) >= 0 (non-negative because delays are non-decreasing).
// On parallel identity links it coincides with greedy; on heterogeneous
// networks it trades the agent's own delay against system congestion, which
// is exactly the advice an operator-inventor would give.

// MarginalCostStrategy implements Strategy for the inventor's objective.
type MarginalCostStrategy struct{}

// ChoosePath implements Strategy.
func (MarginalCostStrategy) ChoosePath(c *Config, a Arrival, _ int) (Path, error) {
	return marginalShortestPath(c, a.Source, a.Sink, a.Load)
}

// marginalShortestPath is Dijkstra with edge cost de(We + w) − de(We).
func marginalShortestPath(c *Config, src, sink int, w *big.Rat) (Path, error) {
	net := c.net
	if src < 0 || src >= net.NumNodes() || sink < 0 || sink >= net.NumNodes() {
		return nil, fmt.Errorf("congestion: endpoints (%d, %d) out of range", src, sink)
	}
	if w.Sign() <= 0 {
		return nil, fmt.Errorf("congestion: load must be positive")
	}
	if src == sink {
		return nil, fmt.Errorf("congestion: source equals sink")
	}

	dist := make([]*big.Rat, net.NumNodes())
	prevEdge := make([]int, net.NumNodes())
	done := make([]bool, net.NumNodes())
	for i := range prevEdge {
		prevEdge[i] = -1
	}
	dist[src] = numeric.Zero()

	pq := &nodeHeap{}
	heap.Init(pq)
	heap.Push(pq, nodeItem{node: src, dist: numeric.Zero()})
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == sink {
			break
		}
		for _, id := range net.out[u] {
			e := net.edges[id]
			after := e.Delay.Eval(numeric.Add(c.loads[id], w))
			before := e.Delay.Eval(c.loads[id])
			cost := numeric.Sub(after, before)
			if cost.Sign() < 0 {
				return nil, fmt.Errorf("congestion: decreasing delay on edge %d", id)
			}
			nd := numeric.Add(dist[u], cost)
			v := e.To
			if dist[v] == nil || numeric.Lt(nd, dist[v]) ||
				(numeric.Eq(nd, dist[v]) && betterTieBreak(prevEdge[v], id)) {
				dist[v] = nd
				prevEdge[v] = id
				heap.Push(pq, nodeItem{node: v, dist: nd})
			}
		}
	}
	if dist[sink] == nil {
		return nil, ErrNoPath
	}
	var rev Path
	at := sink
	for at != src {
		id := prevEdge[at]
		if id < 0 {
			return nil, ErrNoPath
		}
		rev = append(rev, id)
		at = net.edges[id].From
	}
	p := make(Path, len(rev))
	for i, id := range rev {
		p[len(rev)-1-i] = id
	}
	return p, nil
}
