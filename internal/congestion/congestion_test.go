package congestion

import (
	"errors"
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestDelayFuncs(t *testing.T) {
	lin, err := NewLinearDelay(numeric.I(2), numeric.I(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := lin.Eval(numeric.I(5)); got.RatString() != "13" {
		t.Errorf("2x+3 at 5 = %s", got.RatString())
	}
	if got := Identity().Eval(numeric.R(7, 2)); got.RatString() != "7/2" {
		t.Errorf("identity = %s", got.RatString())
	}
	if got := Constant(numeric.I(4)).Eval(numeric.I(100)); got.RatString() != "4" {
		t.Errorf("constant = %s", got.RatString())
	}
	mono, err := NewMonomialDelay(numeric.I(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := mono.Eval(numeric.I(2)); got.RatString() != "16" {
		t.Errorf("2x³ at 2 = %s", got.RatString())
	}
	if _, err := NewLinearDelay(numeric.I(-1), numeric.Zero()); err == nil {
		t.Error("negative slope accepted")
	}
	if _, err := NewMonomialDelay(numeric.I(1), 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if lin.String() == "" || mono.String() == "" {
		t.Error("empty String()")
	}
}

func TestNetworkConstruction(t *testing.T) {
	if _, err := NewNetwork(0); err == nil {
		t.Error("empty network accepted")
	}
	net := MustNetwork(3)
	id0 := net.MustAddEdge(0, 1, Identity())
	id1 := net.MustAddEdge(1, 2, Identity())
	if id0 != 0 || id1 != 1 {
		t.Errorf("edge IDs = %d, %d", id0, id1)
	}
	if net.NumNodes() != 3 || net.NumEdges() != 2 {
		t.Errorf("shape: %d nodes %d edges", net.NumNodes(), net.NumEdges())
	}
	if _, err := net.AddEdge(0, 7, Identity()); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := net.AddEdge(0, 1, nil); err == nil {
		t.Error("nil delay accepted")
	}
	out := net.OutEdges(0)
	if len(out) != 1 || out[0] != 0 {
		t.Errorf("OutEdges(0) = %v", out)
	}
	// Parallel edges allowed.
	net.MustAddEdge(0, 1, Identity())
	if len(net.OutEdges(0)) != 2 {
		t.Error("parallel edge not registered")
	}
}

func TestValidPath(t *testing.T) {
	net := MustNetwork(3)
	e01 := net.MustAddEdge(0, 1, Identity())
	e12 := net.MustAddEdge(1, 2, Identity())
	if !net.ValidPath(Path{e01, e12}, 0, 2) {
		t.Error("valid path rejected")
	}
	if net.ValidPath(Path{e12, e01}, 0, 2) {
		t.Error("disconnected order accepted")
	}
	if net.ValidPath(Path{e01}, 0, 2) {
		t.Error("path ending early accepted")
	}
	if net.ValidPath(Path{}, 0, 0) {
		t.Error("empty path accepted")
	}
	if net.ValidPath(Path{99}, 0, 2) {
		t.Error("bogus edge ID accepted")
	}
}

func twoLinkNetwork() (*Network, int, int) {
	net := MustNetwork(2)
	l0 := net.MustAddEdge(0, 1, Identity())
	l1 := net.MustAddEdge(0, 1, Identity())
	return net, l0, l1
}

func TestConfigJoinAndLoads(t *testing.T) {
	net, l0, l1 := twoLinkNetwork()
	c := NewConfig(net)
	if _, err := c.Join(0, 1, numeric.I(3), Path{l0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(0, 1, numeric.I(2), Path{l1}); err != nil {
		t.Fatal(err)
	}
	if c.EdgeLoad(l0).RatString() != "3" || c.EdgeLoad(l1).RatString() != "2" {
		t.Errorf("loads = %s, %s", c.EdgeLoad(l0), c.EdgeLoad(l1))
	}
	if c.NumAgents() != 2 {
		t.Errorf("NumAgents = %d", c.NumAgents())
	}
	if got := c.AgentDelay(0); got.RatString() != "3" {
		t.Errorf("agent 0 delay = %s", got.RatString())
	}
	if got := c.TotalCongestion(); got.RatString() != "5" {
		t.Errorf("Λ = %s", got.RatString())
	}
	// Invalid joins.
	if _, err := c.Join(0, 1, numeric.Zero(), Path{l0}); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := c.Join(0, 1, numeric.One(), Path{}); err == nil {
		t.Error("empty path accepted")
	}
}

func TestPathDelayIfJoined(t *testing.T) {
	net, l0, _ := twoLinkNetwork()
	c := NewConfig(net)
	if _, err := c.Join(0, 1, numeric.I(3), Path{l0}); err != nil {
		t.Fatal(err)
	}
	// Joining link 0 with load 2: delay = 3 + 2 = 5.
	if got := c.PathDelayIfJoined(Path{l0}, numeric.I(2)); got.RatString() != "5" {
		t.Errorf("PathDelayIfJoined = %s", got.RatString())
	}
}

func TestReroute(t *testing.T) {
	net, l0, l1 := twoLinkNetwork()
	c := NewConfig(net)
	i, err := c.Join(0, 1, numeric.I(3), Path{l0})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reroute(i, Path{l1}); err != nil {
		t.Fatal(err)
	}
	if c.EdgeLoad(l0).Sign() != 0 || c.EdgeLoad(l1).RatString() != "3" {
		t.Errorf("loads after reroute = %s, %s", c.EdgeLoad(l0), c.EdgeLoad(l1))
	}
	if err := c.Reroute(9, Path{l1}); err == nil {
		t.Error("bogus agent accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	net, l0, l1 := twoLinkNetwork()
	c := NewConfig(net)
	i, _ := c.Join(0, 1, numeric.One(), Path{l0})
	cc := c.Clone()
	if err := cc.Reroute(i, Path{l1}); err != nil {
		t.Fatal(err)
	}
	if c.EdgeLoad(l0).RatString() != "1" {
		t.Error("Clone shares load state")
	}
}

func TestShortestPathPicksLeastCongested(t *testing.T) {
	net, l0, l1 := twoLinkNetwork()
	c := NewConfig(net)
	if _, err := c.Join(0, 1, numeric.I(5), Path{l0}); err != nil {
		t.Fatal(err)
	}
	p, d, err := ShortestPath(c, 0, 1, numeric.One())
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0] != l1 {
		t.Errorf("path = %v, want the empty link", p)
	}
	if d.RatString() != "1" {
		t.Errorf("delay = %s", d.RatString())
	}
}

func TestShortestPathMultiHop(t *testing.T) {
	// 0→1→3 (cheap) vs 0→2→3 (expensive constant).
	net := MustNetwork(4)
	e01 := net.MustAddEdge(0, 1, Identity())
	e13 := net.MustAddEdge(1, 3, Identity())
	net.MustAddEdge(0, 2, Constant(numeric.I(10)))
	net.MustAddEdge(2, 3, Constant(numeric.I(10)))
	c := NewConfig(net)
	p, d, err := ShortestPath(c, 0, 3, numeric.One())
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0] != e01 || p[1] != e13 {
		t.Errorf("path = %v", p)
	}
	if d.RatString() != "2" {
		t.Errorf("delay = %s", d.RatString())
	}
}

func TestShortestPathErrors(t *testing.T) {
	net := MustNetwork(3)
	net.MustAddEdge(0, 1, Identity())
	c := NewConfig(net)
	if _, _, err := ShortestPath(c, 0, 2, numeric.One()); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
	if _, _, err := ShortestPath(c, 0, 9, numeric.One()); err == nil {
		t.Error("bad sink accepted")
	}
	if _, _, err := ShortestPath(c, 0, 1, numeric.Zero()); err == nil {
		t.Error("zero load accepted")
	}
	if _, _, err := ShortestPath(c, 0, 0, numeric.One()); err == nil {
		t.Error("src == sink accepted")
	}
}

func TestFig6ReproducesPaperDelays(t *testing.T) {
	for _, k := range []int{0, 1, 2, 5, 10} {
		res, err := BuildFig6(k)
		if err != nil {
			t.Fatalf("k = %d: %v", k, err)
		}
		wantGreedy := numeric.I(int64(2*k + 3))
		wantAlt := numeric.I(int64(2*k + 2))
		if !numeric.Eq(res.GreedyFinalDelay, wantGreedy) {
			t.Errorf("k = %d: greedy final delay = %s, want %s",
				k, res.GreedyFinalDelay.RatString(), wantGreedy.RatString())
		}
		if !numeric.Eq(res.AlternativeFinalDelay, wantAlt) {
			t.Errorf("k = %d: alternative delay = %s, want %s",
				k, res.AlternativeFinalDelay.RatString(), wantAlt.RatString())
		}
	}
	if _, err := BuildFig6(-1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestRunOnlineGreedy(t *testing.T) {
	net, l0, l1 := twoLinkNetwork()
	arrivals := []Arrival{
		{0, 1, numeric.I(3)},
		{0, 1, numeric.I(2)},
		{0, 1, numeric.I(1)},
	}
	res, err := RunOnline(net, arrivals, GreedyStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: agent0 → link0 (3); agent1 → link1 (2); agent2 → link1 (3).
	if res.Config.EdgeLoad(l0).RatString() != "3" || res.Config.EdgeLoad(l1).RatString() != "3" {
		t.Errorf("loads = %s, %s", res.Config.EdgeLoad(l0), res.Config.EdgeLoad(l1))
	}
	if res.DelayAtJoin[2].RatString() != "3" {
		t.Errorf("agent 2 delay at join = %s", res.DelayAtJoin[2].RatString())
	}
	// Final delays can exceed join-time delays but never undercut them on
	// identity links.
	for i := range arrivals {
		if numeric.Lt(res.FinalDelay[i], res.DelayAtJoin[i]) {
			t.Errorf("agent %d final < join delay", i)
		}
	}
}

func TestRosenthalPotential(t *testing.T) {
	net, l0, l1 := twoLinkNetwork()
	c := NewConfig(net)
	one := numeric.One()
	for i := 0; i < 3; i++ {
		if _, err := c.Join(0, 1, one, Path{l0}); err != nil {
			t.Fatal(err)
		}
	}
	// Φ = 1 + 2 + 3 = 6 on link0.
	phi, err := c.RosenthalPotential()
	if err != nil {
		t.Fatal(err)
	}
	if phi.RatString() != "6" {
		t.Errorf("Φ = %s, want 6", phi.RatString())
	}
	// A best-response move (one agent to the empty link) decreases Φ.
	if err := c.Reroute(0, Path{l1}); err != nil {
		t.Fatal(err)
	}
	phi2, err := c.RosenthalPotential()
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Lt(phi2, phi) {
		t.Errorf("Φ after improving move = %s, want < %s", phi2.RatString(), phi.RatString())
	}
	// Non-unit loads are rejected.
	cw := NewConfig(net)
	if _, err := cw.Join(0, 1, numeric.I(2), Path{l0}); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.RosenthalPotential(); err == nil {
		t.Error("non-unit load accepted by Rosenthal potential")
	}
}

// Property: best-response dynamics with unit loads strictly decreases the
// Rosenthal potential until a pure equilibrium is reached.
func TestBestResponseDynamicsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		// Random 2-node network with 2-4 parallel identity links and up to 6
		// unit-load agents placed adversarially on link 0.
		m := 2 + rng.Intn(3)
		net := MustNetwork(2)
		for j := 0; j < m; j++ {
			net.MustAddEdge(0, 1, Identity())
		}
		c := NewConfig(net)
		agents := 1 + rng.Intn(6)
		for i := 0; i < agents; i++ {
			if _, err := c.Join(0, 1, numeric.One(), Path{0}); err != nil {
				t.Fatal(err)
			}
		}

		prevPhi, err := c.RosenthalPotential()
		if err != nil {
			t.Fatal(err)
		}
		for steps := 0; steps < 200; steps++ {
			eq, err := c.IsPureEquilibrium()
			if err != nil {
				t.Fatal(err)
			}
			if eq {
				break
			}
			improved := false
			for i := 0; i < c.NumAgents() && !improved; i++ {
				p, best, err := c.BestResponsePath(i)
				if err != nil {
					t.Fatal(err)
				}
				if numeric.Lt(best, c.AgentDelay(i)) {
					if err := c.Reroute(i, p); err != nil {
						t.Fatal(err)
					}
					improved = true
				}
			}
			if !improved {
				t.Fatal("not at equilibrium but no improving move found")
			}
			phi, err := c.RosenthalPotential()
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.Lt(phi, prevPhi) {
				t.Fatalf("trial %d: potential did not decrease: %s -> %s",
					trial, prevPhi.RatString(), phi.RatString())
			}
			prevPhi = phi
		}
		eq, err := c.IsPureEquilibrium()
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: dynamics did not converge", trial)
		}
	}
}

func TestAgentRecordCopies(t *testing.T) {
	net, l0, _ := twoLinkNetwork()
	c := NewConfig(net)
	i, _ := c.Join(0, 1, numeric.One(), Path{l0})
	rec := c.Agent(i)
	rec.Load.SetInt64(50)
	rec.Path[0] = 99
	if c.Agent(i).Load.RatString() != "1" || c.Agent(i).Path[0] != l0 {
		t.Error("Agent() leaked internal state")
	}
}
