package congestion

import (
	"math/rand"
	"testing"

	"rationality/internal/numeric"
)

func TestWeightedLinearPotentialRejectsNonLinear(t *testing.T) {
	net := MustNetwork(2)
	mono, err := NewMonomialDelay(numeric.One(), 2)
	if err != nil {
		t.Fatal(err)
	}
	net.MustAddEdge(0, 1, mono)
	c := NewConfig(net)
	if _, err := c.WeightedLinearPotential(); err == nil {
		t.Fatal("non-linear delay accepted")
	}
}

func TestWeightedLinearPotentialEmptyIsZero(t *testing.T) {
	net := MustNetwork(2)
	net.MustAddEdge(0, 1, Identity())
	c := NewConfig(net)
	phi, err := c.WeightedLinearPotential()
	if err != nil {
		t.Fatal(err)
	}
	if phi.Sign() != 0 {
		t.Fatalf("Φ of the empty configuration = %s", phi.RatString())
	}
}

func TestWeightedLinearPotentialHandComputed(t *testing.T) {
	// One identity link with two agents of loads 1 and 2: W = 3, Σw² = 5,
	// Φ = (1/2)(9 + 5) = 7.
	net := MustNetwork(2)
	l := net.MustAddEdge(0, 1, Identity())
	c := NewConfig(net)
	if _, err := c.Join(0, 1, numeric.One(), Path{l}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(0, 1, numeric.I(2), Path{l}); err != nil {
		t.Fatal(err)
	}
	phi, err := c.WeightedLinearPotential()
	if err != nil {
		t.Fatal(err)
	}
	if phi.RatString() != "7" {
		t.Fatalf("Φ = %s, want 7", phi.RatString())
	}
}

// The defining identity, checked EXACTLY on random weighted configurations:
// a unilateral reroute by agent i changes Φ by w_i·(λ_i(after) − λ_i(before)).
func TestWeightedPotentialIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 120; trial++ {
		// Random 2-node network with parallel heterogeneous linear links.
		m := 2 + rng.Intn(4)
		net := MustNetwork(2)
		for j := 0; j < m; j++ {
			lin, err := NewLinearDelay(
				numeric.R(int64(rng.Intn(4)+1), int64(rng.Intn(3)+1)),
				numeric.R(int64(rng.Intn(5)), 1))
			if err != nil {
				t.Fatal(err)
			}
			net.MustAddEdge(0, 1, lin)
		}
		c := NewConfig(net)
		agents := 1 + rng.Intn(6)
		for i := 0; i < agents; i++ {
			w := numeric.R(int64(rng.Intn(5)+1), int64(rng.Intn(2)+1))
			if _, err := c.Join(0, 1, w, Path{rng.Intn(m)}); err != nil {
				t.Fatal(err)
			}
		}

		// Reroute a random agent to a random link.
		i := rng.Intn(agents)
		target := Path{rng.Intn(m)}

		before, err := c.WeightedLinearPotential()
		if err != nil {
			t.Fatal(err)
		}
		costBefore := c.AgentDelay(i)
		if err := c.Reroute(i, target); err != nil {
			t.Fatal(err)
		}
		after, err := c.WeightedLinearPotential()
		if err != nil {
			t.Fatal(err)
		}
		costAfter := c.AgentDelay(i)

		lhs := numeric.Sub(after, before)
		rhs := numeric.Mul(c.Agent(i).Load, numeric.Sub(costAfter, costBefore))
		if !numeric.Eq(lhs, rhs) {
			t.Fatalf("trial %d: ΔΦ = %s but w·Δλ = %s", trial, lhs.RatString(), rhs.RatString())
		}
	}
}

// Corollary: weighted best-response dynamics with linear delays converge
// (Φ strictly decreases along improving moves).
func TestWeightedBestResponseConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 15; trial++ {
		m := 2 + rng.Intn(3)
		net := MustNetwork(2)
		for j := 0; j < m; j++ {
			net.MustAddEdge(0, 1, Identity())
		}
		c := NewConfig(net)
		agents := 2 + rng.Intn(5)
		for i := 0; i < agents; i++ {
			w := numeric.I(int64(rng.Intn(9) + 1))
			if _, err := c.Join(0, 1, w, Path{0}); err != nil {
				t.Fatal(err)
			}
		}
		prev, err := c.WeightedLinearPotential()
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 500; step++ {
			improved := false
			for i := 0; i < agents; i++ {
				p, best, err := c.BestResponsePath(i)
				if err != nil {
					t.Fatal(err)
				}
				if numeric.Lt(best, c.AgentDelay(i)) {
					if err := c.Reroute(i, p); err != nil {
						t.Fatal(err)
					}
					improved = true
					break
				}
			}
			if !improved {
				break
			}
			phi, err := c.WeightedLinearPotential()
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.Lt(phi, prev) {
				t.Fatalf("trial %d: Φ did not decrease: %s -> %s", trial, prev.RatString(), phi.RatString())
			}
			prev = phi
		}
		eq, err := c.IsPureEquilibrium()
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: weighted dynamics did not converge", trial)
		}
	}
}
