package congestion

import (
	"container/heap"
	"errors"
	"fmt"
	"math/big"

	"rationality/internal/numeric"
)

// ErrNoPath is returned when the sink is unreachable from the source.
var ErrNoPath = errors.New("congestion: sink unreachable from source")

// ShortestPath returns the minimum-delay path for a NEW agent of load w
// joining the current configuration: edge e costs de(We + w), the delay the
// agent would experience on it. This is the greedy best reply at arrival
// time (§6). Delays of non-decreasing functions are non-negative here, so
// Dijkstra applies; ties are broken deterministically towards lower node and
// edge IDs, matching Fig. 6's narrative where agent 2k+1 picks a→b→d.
func ShortestPath(c *Config, src, sink int, w *big.Rat) (Path, *big.Rat, error) {
	net := c.net
	if src < 0 || src >= net.NumNodes() || sink < 0 || sink >= net.NumNodes() {
		return nil, nil, fmt.Errorf("congestion: endpoints (%d, %d) out of range", src, sink)
	}
	if w.Sign() <= 0 {
		return nil, nil, fmt.Errorf("congestion: load must be positive")
	}

	dist := make([]*big.Rat, net.NumNodes())
	prevEdge := make([]int, net.NumNodes())
	done := make([]bool, net.NumNodes())
	for i := range prevEdge {
		prevEdge[i] = -1
	}
	dist[src] = numeric.Zero()

	pq := &nodeHeap{}
	heap.Init(pq)
	heap.Push(pq, nodeItem{node: src, dist: numeric.Zero()})

	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == sink {
			break
		}
		for _, id := range net.out[u] {
			e := net.edges[id]
			cost := e.Delay.Eval(numeric.Add(c.loads[id], w))
			if cost.Sign() < 0 {
				return nil, nil, fmt.Errorf("congestion: negative delay on edge %d", id)
			}
			nd := numeric.Add(dist[u], cost)
			v := e.To
			if dist[v] == nil || numeric.Lt(nd, dist[v]) ||
				(numeric.Eq(nd, dist[v]) && betterTieBreak(prevEdge[v], id)) {
				dist[v] = nd
				prevEdge[v] = id
				heap.Push(pq, nodeItem{node: v, dist: nd})
			}
		}
	}

	if dist[sink] == nil {
		return nil, nil, ErrNoPath
	}
	if src == sink {
		return nil, nil, fmt.Errorf("congestion: source equals sink; no edge to traverse")
	}

	// Reconstruct the path backwards through prevEdge.
	var rev Path
	at := sink
	for at != src {
		id := prevEdge[at]
		if id < 0 {
			return nil, nil, ErrNoPath
		}
		rev = append(rev, id)
		at = net.edges[id].From
	}
	p := make(Path, len(rev))
	for i, id := range rev {
		p[len(rev)-1-i] = id
	}
	return p, dist[sink], nil
}

// betterTieBreak prefers the lower edge ID on equal distance, which makes
// path selection deterministic.
func betterTieBreak(current, candidate int) bool {
	return current < 0 || candidate < current
}

type nodeItem struct {
	node int
	dist *big.Rat
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if c := h[i].dist.Cmp(h[j].dist); c != 0 {
		return c < 0
	}
	return h[i].node < h[j].node
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
