package service

import (
	"context"
	"errors"
	"sync"

	"rationality/internal/core"
	"rationality/internal/identity"
)

// flightGroup deduplicates concurrent verifications of the same content
// address: the first caller (the leader) runs the procedure, every
// concurrent duplicate waits for and shares the leader's verdict. A
// minimal re-implementation of golang.org/x/sync/singleflight, kept local
// so the module stays dependency-free, keyed by the raw digest.
type flightGroup struct {
	mu    sync.Mutex
	calls map[identity.Hash]*flightCall
}

type flightCall struct {
	done    chan struct{}
	verdict *core.Verdict
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[identity.Hash]*flightCall)}
}

// Do runs fn for key, or waits for an in-flight identical call. The second
// return reports whether the result was shared with (produced by) another
// caller rather than computed by this one. Followers honor their own ctx
// while waiting, and a leader that aborts on its own context does not
// poison them: a follower with a live context retries and becomes the new
// leader.
//
// steal, when non-nil, is a work queue the follower services while it
// waits. A caller already running on a worker-pool goroutine must pass the
// pool's execution queue here: its leader's execution may be queued behind
// it on that very pool, so a follower that blocked without draining the
// queue could deadlock the pool (every worker waiting on a leader whose
// job none of them will ever pop). The queue must carry only leader
// executions — jobs that never wait on the flight group themselves — so a
// stolen job cannot nest another steal and the follower's stack stays
// bounded regardless of load. Callers not on the pool pass nil — receiving
// from a nil channel blocks forever, turning the steal case into a no-op.
func (g *flightGroup) Do(ctx context.Context, key identity.Hash, fn func() (*core.Verdict, error), steal <-chan func()) (*core.Verdict, bool, error) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
		wait:
			for {
				select {
				case <-c.done:
					break wait
				case <-ctx.Done():
					return nil, true, ctx.Err()
				case job, ok := <-steal:
					if !ok {
						// Pool closed mid-wait (cannot happen before the
						// drain completes, but stay safe): fall back to a
						// plain wait.
						steal = nil
						continue
					}
					job()
				}
			}
			if isContextError(c.err) && ctx.Err() == nil {
				continue // the leader gave up on its own ctx, not ours
			}
			return c.verdict, true, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.verdict, c.err = fn()
		close(c.done)

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		return c.verdict, false, c.err
	}
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
