package service

import (
	"context"
	"errors"
	"sync"

	"rationality/internal/core"
)

// flightGroup deduplicates concurrent verifications of the same content
// address: the first caller (the leader) runs the procedure, every
// concurrent duplicate waits for and shares the leader's verdict. A
// minimal re-implementation of golang.org/x/sync/singleflight, kept local
// so the module stays dependency-free.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	verdict *core.Verdict
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn for key, or waits for an in-flight identical call. The second
// return reports whether the result was shared with (produced by) another
// caller rather than computed by this one. Followers honor their own ctx
// while waiting, and a leader that aborts on its own context does not
// poison them: a follower with a live context retries and becomes the new
// leader.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*core.Verdict, error)) (*core.Verdict, bool, error) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
			if isContextError(c.err) && ctx.Err() == nil {
				continue // the leader gave up on its own ctx, not ours
			}
			return c.verdict, true, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.verdict, c.err = fn()
		close(c.done)

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		return c.verdict, false, c.err
	}
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
