package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rationality/internal/core"
)

// TestStressShardedHotPath hammers the sharded cache, the lock-free
// metrics and the pool-routed batch path from many goroutines at once —
// Verify, VerifyBatch, Stats and a mid-flight Close — over a cache small
// enough to evict constantly, then audits counter coherence. Run under
// -race (CI does) this doubles as the data-race proof for the lock-free
// hot path.
func TestStressShardedHotPath(t *testing.T) {
	proc := &countingProc{format: "counting/v1", accept: true}
	s, err := New(Config{
		ID:          "stress",
		Workers:     4,
		CacheSize:   8, // tiny: constant eviction pressure
		CacheShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Register(proc)

	const (
		hammerers  = 8
		iterations = 150
		distinct   = 32 // 4x the cache: misses and evictions guaranteed
	)
	ctx := context.Background()
	closeAt := make(chan struct{})
	var closeOnce sync.Once
	var wg sync.WaitGroup
	for g := 0; g < hammerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				n := (g*iterations + i) % distinct
				switch i % 4 {
				case 0, 1:
					ann := announcementFor("inv", fmt.Sprintf(`{"n":%d}`, n))
					if _, err := s.VerifyAnnouncement(ctx, ann); err != nil && !errors.Is(err, ErrServiceClosed) {
						t.Errorf("verify: %v", err)
					}
				case 2:
					batch := []core.Announcement{
						announcementFor("inv", fmt.Sprintf(`{"n":%d}`, n)),
						announcementFor("inv", fmt.Sprintf(`{"n":%d}`, (n+1)%distinct)),
						announcementFor("inv", fmt.Sprintf(`{"n":%d}`, (n+2)%distinct)),
					}
					if _, err := s.VerifyBatch(ctx, batch); err != nil && !errors.Is(err, ErrServiceClosed) {
						t.Errorf("batch: %v", err)
					}
				case 3:
					st := s.Stats()
					if st.InFlight < 0 {
						t.Errorf("negative InFlight gauge: %d", st.InFlight)
					}
				}
				if g == 0 && i == iterations/2 {
					close(closeAt) // signal the closer mid-hammer
				}
			}
		}(g)
	}
	// One goroutine closes the service while traffic is still flowing: the
	// drain must finish cleanly and late requests must be refused, not
	// miscounted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-closeAt
		closeOnce.Do(func() {
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		})
	}()
	wg.Wait()
	closeOnce.Do(func() { _ = s.Close() })

	st := s.Stats()
	if st.Requests == 0 || st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("stress produced no mixed traffic: %+v", st)
	}
	// Coherence: every admitted request is exactly one cache hit or miss,
	// and every delivered-or-failed outcome accounts for one request.
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Fatalf("hits(%d) + misses(%d) != requests(%d)",
			st.CacheHits, st.CacheMisses, st.Requests)
	}
	if st.Accepted+st.Rejected+st.Failures < st.Requests {
		t.Fatalf("accepted(%d) + rejected(%d) + failures(%d) < requests(%d): verdicts went missing",
			st.Accepted, st.Rejected, st.Failures, st.Requests)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after full drain, want 0", st.InFlight)
	}
	if st.CacheEntries > 8 {
		t.Fatalf("cache grew past its bound: %d entries", st.CacheEntries)
	}
	if st.Latency.Count != st.Requests {
		t.Fatalf("latency count %d != requests %d", st.Latency.Count, st.Requests)
	}
	if st.Latency.Count > 0 && (st.Latency.P50 <= 0 || st.Latency.P95 < st.Latency.P50 || st.Latency.P99 < st.Latency.P95) {
		t.Fatalf("percentile estimates not monotone: %+v", st.Latency)
	}
	// Post-close requests are refusals: failures only, never requests.
	before := s.Stats()
	if _, err := s.VerifyAnnouncement(ctx, announcementFor("inv", `{"n":0}`)); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("post-close verify: %v", err)
	}
	after := s.Stats()
	if after.Requests != before.Requests || after.Failures != before.Failures+1 {
		t.Fatalf("refusal accounting: requests %d->%d failures %d->%d",
			before.Requests, after.Requests, before.Failures, after.Failures)
	}
}

// TestStressSingleflightUnderChurn floods one hot key from many
// goroutines with caching disabled, so every round is a singleflight
// race; the procedure must run far fewer times than requests arrive, and
// the dedup counter must account for every shared verdict.
func TestStressSingleflightUnderChurn(t *testing.T) {
	proc := &countingProc{format: "counting/v1", accept: true}
	s := newTestService(t, Config{Workers: 2, CacheSize: -1})
	s.Register(proc)
	ann := announcementFor("inv", `{"hot":1}`)
	ctx := context.Background()

	const clients = 8
	const rounds = 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v, err := s.VerifyAnnouncement(ctx, ann)
				if err != nil {
					t.Errorf("verify: %v", err)
					return
				}
				if !v.Accepted {
					t.Error("hot announcement rejected")
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	executed := uint64(proc.calls.Load())
	if st.Requests != clients*rounds {
		t.Fatalf("requests = %d, want %d", st.Requests, clients*rounds)
	}
	if executed+st.Deduplicated != st.CacheMisses {
		t.Fatalf("executions(%d) + deduplicated(%d) != misses(%d)",
			executed, st.Deduplicated, st.CacheMisses)
	}
}

// TestLatencyHistogramPercentiles feeds the histogram synthetic latencies
// and checks the log2-bucket percentile estimates land in the right
// buckets (upper bounds, clamped by the observed max).
func TestLatencyHistogramPercentiles(t *testing.T) {
	var m metrics
	now := time.Now()
	// 90 fast requests (~1µs) and 10 slow ones (~1ms): p50 must sit in the
	// microsecond range, p99 in the millisecond range.
	for i := 0; i < 90; i++ {
		m.lat.count.Add(1)
		m.lat.total.Add(1000)
		m.lat.hist[latencyBucket(1000)].Add(1)
	}
	for i := 0; i < 10; i++ {
		m.lat.count.Add(1)
		m.lat.total.Add(1_000_000)
		m.lat.hist[latencyBucket(1_000_000)].Add(1)
	}
	m.lat.min.Store(1000)
	m.lat.max.Store(1_000_000)
	_ = now

	sum := m.lat.summary()
	if sum.Count != 100 {
		t.Fatalf("count = %d", sum.Count)
	}
	if sum.P50 < 1000 || sum.P50 > 2048 {
		t.Fatalf("p50 = %v, want within the ~1µs bucket", sum.P50)
	}
	if sum.P95 < 500_000 || sum.P95 > 2_000_000 {
		t.Fatalf("p95 = %v, want within the ~1ms bucket", sum.P95)
	}
	if sum.P99 < 500_000 || sum.P99 > 2_000_000 {
		t.Fatalf("p99 = %v, want within the ~1ms bucket", sum.P99)
	}
	if sum.Mean != time.Duration((90*1000+10*1_000_000)/100) {
		t.Fatalf("mean = %v", sum.Mean)
	}
}

// TestVerdictDetailsImmutableUnderConcurrentHits mutates returned verdicts
// while other goroutines read the same hot cache entry: every reader must
// see the pristine details (the copy-outside-the-lock must be a real
// copy). Run under -race this also proves the lock-free Get path is safe.
func TestVerdictDetailsImmutableUnderConcurrentHits(t *testing.T) {
	s := newTestService(t, Config{})
	ann := pdAnnouncement(t)
	ctx := context.Background()
	if _, err := s.VerifyAnnouncement(ctx, ann); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v, err := s.VerifyAnnouncement(ctx, ann)
				if err != nil {
					t.Errorf("verify: %v", err)
					return
				}
				if !v.Accepted {
					t.Error("hot verdict flipped")
					return
				}
				if tainted, ok := v.Details["tainted"]; ok {
					t.Errorf("cache leaked a mutated verdict: %q", tainted)
					return
				}
				// Scribble on our private copy.
				v.Details["tainted"] = fmt.Sprintf("g%d-i%d", g, i)
				v.Accepted = false
			}
		}(g)
	}
	wg.Wait()
}

// jsonNumberedAnnouncement guards against accidental test helper drift:
// announcementFor must produce content-distinct announcements for
// distinct payloads (the stress tests rely on it for miss pressure).
func TestAnnouncementForDistinctness(t *testing.T) {
	a := announcementFor("inv", `{"n":1}`)
	b := announcementFor("inv", `{"n":2}`)
	if string(a.Game) == string(b.Game) {
		t.Fatal("helper produced identical payloads")
	}
	var decoded map[string]int
	if err := json.Unmarshal(a.Game, &decoded); err != nil {
		t.Fatalf("helper payload is not JSON: %v", err)
	}
}
