package service

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/store"
	"rationality/internal/transport"
)

// testKeyPair generates a fresh signing identity or fails the test.
func testKeyPair(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// newKeyedService starts a persisted service with a signing key and an
// allowlist, registered with the counting procedure.
func newKeyedService(t *testing.T, id string, key *identity.KeyPair, allow ...identity.PartyID) *Service {
	t.Helper()
	s := newTestService(t, Config{ID: id, PersistPath: t.TempDir(), Key: key, PeerKeys: allow})
	s.Register(&countingProc{format: "counting/v1", accept: true})
	return s
}

// signedPull runs one full federation pull: dst's offer through src's
// wire handler, the signed delta back through dst's gate.
func signedPull(t *testing.T, dst, src *Service) (int, error) {
	t.Helper()
	offer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	delta := serveOffer(t, src, offer)
	return dst.IngestDelta(offer, delta)
}

// serveOffer routes an offer through src's transport handler and decodes
// the signed delta, exactly as a remote peer would produce it.
func serveOffer(t *testing.T, src *Service, offer SyncOfferRequest) SyncDeltaResponse {
	t.Helper()
	req, err := transport.NewMessage(MsgSyncOffer, offer)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := src.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var delta SyncDeltaResponse
	if err := resp.Decode(&delta); err != nil {
		t.Fatal(err)
	}
	return delta
}

// verifyN runs n distinct verifications on s.
func verifyN(t *testing.T, s *Service, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := s.VerifyAnnouncement(ctx, announcementFor("inv", fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
}

// Two keyed authorities that allowlist each other converge in one pull
// round, the ingested records carry the signer's provenance, and the
// per-peer counters account for the transfer.
func TestFederationKeyedConvergence(t *testing.T) {
	const n = 5
	keyA, keyB := testKeyPair(t), testKeyPair(t)
	a := newKeyedService(t, "a", keyA, keyB.ID())
	b := newKeyedService(t, "b", keyB, keyA.ID())
	verifyN(t, a, n)

	applied, err := signedPull(t, b, a)
	if err != nil {
		t.Fatalf("keyed pull rejected: %v", err)
	}
	if applied != n {
		t.Fatalf("applied %d records, want %d", applied, n)
	}

	// Converged: identical manifests, so a second pull moves nothing.
	if applied, err = signedPull(t, b, a); err != nil || applied != 0 {
		t.Fatalf("second pull: applied=%d err=%v, want 0/nil", applied, err)
	}
	offerA, err := a.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	offerB, err := b.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	if len(offerA.Have) != n || len(offerB.Have) != n {
		t.Fatalf("manifests differ in size: a=%d b=%d, want %d", len(offerA.Have), len(offerB.Have), n)
	}

	// Provenance: a's records are its own; b's pulled copies name a's key
	// as the authority that vouched for the transfer.
	provA, err := a.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if provA[keyA.ID()] != n {
		t.Fatalf("a.Provenance = %v, want %d records under a's own key", provA, n)
	}
	provB, err := b.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if provB[keyA.ID()] != n {
		t.Fatalf("b.Provenance = %v, want %d records vouched by a", provB, n)
	}

	st := b.Stats()
	if st.Federation == nil {
		t.Fatal("keyed service reports no federation stats")
	}
	if st.Federation.Signer != keyB.ID() || st.Federation.TrustedPeers != 1 {
		t.Fatalf("federation identity = %+v", st.Federation)
	}
	peer := st.Federation.Peers[string(keyA.ID())]
	if peer.Deltas != 2 || peer.Records != n || peer.Rejected != 0 {
		t.Fatalf("peer counters = %+v, want 2 deltas / %d records / 0 rejected", peer, n)
	}
}

// An unsigned delta is rejected before ingest when an allowlist is
// configured — and accepted when it is not (single-operator mode).
func TestFederationRejectsUnsignedDelta(t *testing.T) {
	src := newTestService(t, Config{ID: "legacy", PersistPath: t.TempDir()})
	src.Register(&countingProc{format: "counting/v1", accept: true})
	verifyN(t, src, 3)

	gated := newKeyedService(t, "gated", testKeyPair(t), testKeyPair(t).ID())
	applied, err := signedPull(t, gated, src)
	if !errors.Is(err, ErrUnsignedDelta) {
		t.Fatalf("unsigned delta: applied=%d err=%v, want ErrUnsignedDelta", applied, err)
	}
	st := gated.Stats()
	if st.Federation.RejectedUnsigned != 1 {
		t.Fatalf("RejectedUnsigned = %d, want 1", st.Federation.RejectedUnsigned)
	}
	if st.Ingested != 0 || st.Persistence.Ingested != 0 || st.CacheEntries != 0 {
		t.Fatalf("rejected delta leaked into state: %+v", st)
	}

	open := newTestService(t, Config{ID: "open", PersistPath: t.TempDir()})
	open.Register(&countingProc{format: "counting/v1", accept: true})
	if applied, err := signedPull(t, open, src); err != nil || applied != 3 {
		t.Fatalf("no-allowlist pull from unkeyed peer: applied=%d err=%v, want 3/nil", applied, err)
	}
}

// A delta signed by a key outside the allowlist is rejected and counted
// against that signer.
func TestFederationRejectsUnknownSigner(t *testing.T) {
	rogueKey := testKeyPair(t)
	rogue := newKeyedService(t, "rogue", rogueKey)
	verifyN(t, rogue, 2)

	trusted := testKeyPair(t)
	dst := newKeyedService(t, "dst", testKeyPair(t), trusted.ID())
	_, err := signedPull(t, dst, rogue)
	if !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("unknown signer: err = %v, want ErrUnknownSigner", err)
	}
	st := dst.Stats()
	if st.Federation.RejectedUnknown != 1 {
		t.Fatalf("RejectedUnknown = %d, want 1", st.Federation.RejectedUnknown)
	}
	if got := st.Federation.Peers[string(rogueKey.ID())]; got.Rejected != 1 || got.Deltas != 0 {
		t.Fatalf("rogue peer counters = %+v, want 1 rejection", got)
	}
	if st.Ingested != 0 {
		t.Fatal("unknown signer's records were ingested")
	}
}

// Tampered records — the frames no longer match the signature — are
// rejected even when the signer is allowlisted: a forged delta cannot
// ride a trusted identity.
func TestFederationRejectsForgedRecords(t *testing.T) {
	keyA := testKeyPair(t)
	src := newKeyedService(t, "src", keyA)
	verifyN(t, src, 2)
	dst := newKeyedService(t, "dst", testKeyPair(t), keyA.ID())

	offer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	delta := serveOffer(t, src, offer)
	delta.Records[len(delta.Records)-1] ^= 0xff // the forgery
	if _, err := dst.IngestDelta(offer, delta); !errors.Is(err, identity.ErrBadSignature) {
		t.Fatalf("forged records: err = %v, want ErrBadSignature", err)
	}
	if st := dst.Stats(); st.Federation.RejectedBadSig != 1 || st.Ingested != 0 {
		t.Fatalf("forgery counters = %+v", st.Federation)
	}
}

// A delta captured from one exchange does not verify against another
// offer: the signature binds the offer digest, so replay is refused.
func TestFederationRejectsReplayedDelta(t *testing.T) {
	keyA := testKeyPair(t)
	src := newKeyedService(t, "src", keyA)
	verifyN(t, src, 2)
	dst := newKeyedService(t, "dst", testKeyPair(t), keyA.ID())

	emptyOffer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	captured := serveOffer(t, src, emptyOffer)

	// The destination's state — and therefore its offer — moves on (with
	// an announcement distinct from anything src holds, so the captured
	// delta's records all remain applicable below).
	if _, err := dst.VerifyAnnouncement(context.Background(),
		announcementFor("inv", `{"i":"replay-probe"}`)); err != nil {
		t.Fatal(err)
	}
	laterOffer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.IngestDelta(laterOffer, captured); !errors.Is(err, identity.ErrBadSignature) {
		t.Fatalf("replayed delta: err = %v, want ErrBadSignature", err)
	}
	// Against its own offer the captured delta is still valid — replay
	// protection must not break the legitimate exchange.
	if applied, err := dst.IngestDelta(emptyOffer, captured); err != nil || applied != 2 {
		t.Fatalf("legitimate delta after replay attempt: applied=%d err=%v", applied, err)
	}
}

// A malformed allowlist entry is a startup error, not a silent
// never-matching allowlist.
func TestFederationRejectsBadPeerKey(t *testing.T) {
	_, err := New(Config{ID: "x", PeerKeys: []identity.PartyID{"not-a-key"}})
	if err == nil {
		t.Fatal("malformed peer key accepted at startup")
	}
}

// Even an UNFEDERATED service (no key, no allowlist — the pre-federation
// config) must not persist a claimed signer it cannot prove: a present
// signature is verified, and a bogus identity claim is rejected instead
// of becoming on-disk provenance.
func TestUnfederatedServiceVerifiesClaimedSigner(t *testing.T) {
	keyA := testKeyPair(t)
	src := newKeyedService(t, "src", keyA)
	verifyN(t, src, 2)
	dst := newTestService(t, Config{ID: "dst", PersistPath: t.TempDir()})
	dst.Register(&countingProc{format: "counting/v1", accept: true})

	offer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	delta := serveOffer(t, src, offer)

	// A forged claim: the records are genuine, but the peer names some
	// other authority as the signer.
	forged := delta
	forged.Signer = testKeyPair(t).ID()
	if _, err := dst.IngestDelta(offer, forged); !errors.Is(err, identity.ErrBadSignature) {
		t.Fatalf("forged signer claim on unfederated service: err = %v, want ErrBadSignature", err)
	}
	if prov, err := dst.Provenance(); err != nil || len(prov) != 0 {
		t.Fatalf("forged claim left provenance behind: %v (err=%v)", prov, err)
	}

	// The genuine signed delta is accepted and its provenance is the
	// provable signer.
	applied, err := dst.IngestDelta(offer, delta)
	if err != nil || applied != 2 {
		t.Fatalf("genuine signed delta on unfederated service: applied=%d err=%v", applied, err)
	}
	prov, err := dst.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if prov[keyA.ID()] != 2 {
		t.Fatalf("Provenance = %v, want 2 records vouched by src", prov)
	}
}

// A keyed puller with no allowlist (rolling-upgrade posture) accepting
// unsigned deltas must not grow a blank-identity per-peer stats row.
func TestUnsignedAcceptHasNoBlankPeerRow(t *testing.T) {
	legacy := newTestService(t, Config{ID: "legacy", PersistPath: t.TempDir()})
	legacy.Register(&countingProc{format: "counting/v1", accept: true})
	verifyN(t, legacy, 2)
	dst := newKeyedService(t, "dst", testKeyPair(t)) // keyed, no allowlist
	if applied, err := signedPull(t, dst, legacy); err != nil || applied != 2 {
		t.Fatalf("unsigned pull: applied=%d err=%v", applied, err)
	}
	fed := dst.Stats().Federation
	if _, ok := fed.Peers[""]; ok {
		t.Fatalf("blank-identity peer row present: %+v", fed.Peers)
	}
}

// An unsigned delta proves nothing about custody: per-record origins
// claimed on the wire are cleared, not persisted — otherwise anyone who
// can answer a sync-offer could fabricate provenance under a trusted
// authority's name.
func TestUnsignedDeltaWireOriginsCleared(t *testing.T) {
	dst := newTestService(t, Config{ID: "dst", PersistPath: t.TempDir()})
	dst.Register(&countingProc{format: "counting/v1", accept: true})
	offer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	framedRecs, err := store.EncodeRecords([]store.Record{{
		Key:     identity.DigestBytes([]byte("claimed")),
		Stamp:   1,
		Origin:  testKeyPair(t).ID(), // the fabricated custody claim
		Verdict: core.Verdict{Accepted: true, Format: "counting/v1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	applied, err := dst.IngestDelta(offer, SyncDeltaResponse{VerifierID: "anon", Count: 1, Records: framedRecs})
	if err != nil || applied != 1 {
		t.Fatalf("unsigned ingest: applied=%d err=%v", applied, err)
	}
	prov, err := dst.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if prov[""] != 1 || len(prov) != 1 {
		t.Fatalf("Provenance = %v, want 1 unattributed record and nothing else", prov)
	}
}
