package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAdmissionRejected is the sentinel every admission refusal wraps:
// errors.Is(err, ErrAdmissionRejected) detects a shed request, and the
// rendered message always starts with "admission rejected:" — the
// greppable prefix the operator docs and the CI smoke key on.
var ErrAdmissionRejected = errors.New("admission rejected")

// Class is an admission class: the tier a request is charged against.
type Class string

const (
	// ClassInteractive is the latency-sensitive tier: single Verify /
	// VerifyAnnouncement calls. When its own budget is empty it borrows
	// from the batch budget, so bulk capacity is sacrificed first.
	ClassInteractive Class = "interactive"
	// ClassBatch is the throughput tier: VerifyBatch and VerifyStream.
	// A whole batch is admitted or shed atomically — charging a partial
	// batch would let oversized batches starve the bucket while still
	// failing.
	ClassBatch Class = "batch"
)

// AdmissionConfig configures the two-tier admission controller. Budgets
// are token buckets denominated in verifications (items): an interactive
// call costs one token, a batch or stream costs one token per item, paid
// up front. A zero-value config disables admission control entirely —
// the service behaves exactly as before and Stats.Admission stays nil.
type AdmissionConfig struct {
	// InteractiveRate is the interactive tier's sustained budget in
	// verifications per second; zero or negative means unlimited.
	InteractiveRate float64
	// InteractiveBurst is the interactive bucket depth in verifications;
	// zero means twice the rate (minimum 1).
	InteractiveBurst int
	// BatchRate is the batch tier's sustained budget in verifications
	// per second; zero or negative means unlimited.
	BatchRate float64
	// BatchBurst is the batch bucket depth in verifications — the
	// largest batch that can ever be admitted at once; zero means twice
	// the rate (minimum 1).
	BatchBurst int
}

// enabled reports whether any tier carries a finite budget.
func (c AdmissionConfig) enabled() bool {
	return c.InteractiveRate > 0 || c.BatchRate > 0
}

// ClassAdmissionStats is one admission class's snapshot.
type ClassAdmissionStats struct {
	// Admitted counts requests the class let through; Shed counts
	// requests it refused. A batch counts once either way.
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	// ShedItems counts refused verifications: a shed batch of n items
	// adds n here, so CacheHits + CacheMisses + total ShedItems equals
	// the verifications offered to the service.
	ShedItems uint64 `json:"shedItems"`
	// Rate and Burst echo the configured budget (0 rate = unlimited).
	Rate  float64 `json:"rate"`
	Burst int     `json:"burst"`
}

// AdmissionStats is the admission controller's snapshot, per class.
type AdmissionStats struct {
	Interactive ClassAdmissionStats `json:"interactive"`
	Batch       ClassAdmissionStats `json:"batch"`
}

// tokenBucket is one class's refilling budget. Token arithmetic is
// float64 so fractional refill over short windows is not lost; the
// mutex is uncontended in practice (admission is one short critical
// section per request, not per item).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// newTokenBucket starts a bucket full: a fresh authority admits an
// initial burst instead of shedding its first seconds of traffic.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take refills for the elapsed time and takes n tokens if they fit.
func (b *tokenBucket) take(n float64, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// classCounters is one class's live admission counters.
type classCounters struct {
	admitted  atomic.Uint64
	shed      atomic.Uint64
	shedItems atomic.Uint64
}

// admissionController is the two-tier gate in front of the verification
// paths. Shed ordering is structural, not scheduled: the interactive
// tier borrows from the batch bucket when its own runs dry, so whenever
// both tiers compete for the same scarce tokens the batch class is the
// one that hits empty first.
type admissionController struct {
	cfg         AdmissionConfig
	interactive *tokenBucket // nil = unlimited
	batch       *tokenBucket // nil = unlimited

	interactiveStats classCounters
	batchStats       classCounters
}

// defaultBurst derives a bucket depth from a rate: twice the sustained
// budget, at least one token so a unit request can ever pass.
func defaultBurst(rate float64) int {
	b := int(math.Ceil(2 * rate))
	if b < 1 {
		b = 1
	}
	return b
}

// newAdmissionController builds the controller, or nil for a config with
// no finite budget.
func newAdmissionController(cfg AdmissionConfig) *admissionController {
	if !cfg.enabled() {
		return nil
	}
	a := &admissionController{cfg: cfg}
	if cfg.InteractiveRate > 0 {
		burst := cfg.InteractiveBurst
		if burst <= 0 {
			burst = defaultBurst(cfg.InteractiveRate)
		}
		a.cfg.InteractiveBurst = burst
		a.interactive = newTokenBucket(cfg.InteractiveRate, burst)
	}
	if cfg.BatchRate > 0 {
		burst := cfg.BatchBurst
		if burst <= 0 {
			burst = defaultBurst(cfg.BatchRate)
		}
		a.cfg.BatchBurst = burst
		a.batch = newTokenBucket(cfg.BatchRate, burst)
	}
	return a
}

// counters resolves a class's counter block.
func (a *admissionController) counters(class Class) *classCounters {
	if class == ClassBatch {
		return &a.batchStats
	}
	return &a.interactiveStats
}

// admit charges one request of `items` verifications against its class,
// or refuses it with an "admission rejected:" error. An unlimited class
// always admits (but still counts), and refusals never block: shedding
// is a synchronous verdict, not a queue.
func (a *admissionController) admit(class Class, items int) error {
	n := float64(items)
	now := time.Now()
	ok := true
	switch class {
	case ClassBatch:
		if a.batch != nil {
			ok = a.batch.take(n, now)
		}
	default: // interactive
		if a.interactive != nil {
			ok = a.interactive.take(n, now)
			if !ok && a.batch != nil {
				// Borrow from the batch budget: under saturation the bulk
				// tier's tokens drain into interactive traffic, so batches
				// shed strictly before any interactive request does.
				ok = a.batch.take(n, now)
			}
		}
	}
	c := a.counters(class)
	if !ok {
		c.shed.Add(1)
		c.shedItems.Add(uint64(items))
		rate, burst := a.budget(class)
		return fmt.Errorf("%w: %s class saturated (%d verification(s) over the %g/s budget, burst %d)",
			ErrAdmissionRejected, class, items, rate, burst)
	}
	c.admitted.Add(1)
	return nil
}

// budget reports a class's configured rate and burst.
func (a *admissionController) budget(class Class) (float64, int) {
	if class == ClassBatch {
		return a.cfg.BatchRate, a.cfg.BatchBurst
	}
	return a.cfg.InteractiveRate, a.cfg.InteractiveBurst
}

// snapshot assembles the AdmissionStats block for Stats().
func (a *admissionController) snapshot() *AdmissionStats {
	return &AdmissionStats{
		Interactive: ClassAdmissionStats{
			Admitted:  a.interactiveStats.admitted.Load(),
			Shed:      a.interactiveStats.shed.Load(),
			ShedItems: a.interactiveStats.shedItems.Load(),
			Rate:      a.cfg.InteractiveRate,
			Burst:     a.cfg.InteractiveBurst,
		},
		Batch: ClassAdmissionStats{
			Admitted:  a.batchStats.admitted.Load(),
			Shed:      a.batchStats.shed.Load(),
			ShedItems: a.batchStats.shedItems.Load(),
			Rate:      a.cfg.BatchRate,
			Burst:     a.cfg.BatchBurst,
		},
	}
}
