package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rationality/internal/core"
)

// slowProc simulates a procedure with a fixed verification cost, so
// streaming tests can reason about time-to-first-verdict against a known
// per-item duration.
type slowProc struct {
	format  string
	delay   time.Duration
	calls   atomic.Int64
	current atomic.Int64
}

func (p *slowProc) Format() string { return p.format }

func (p *slowProc) Verify(_, _, _ json.RawMessage) (*core.Verdict, error) {
	p.calls.Add(1)
	p.current.Add(1)
	defer p.current.Add(-1)
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return &core.Verdict{Accepted: true, Format: p.format}, nil
}

// annNumbered builds distinct announcements for one format so no two
// items share a cache key.
func annNumbered(format string, n int) core.Announcement {
	return core.Announcement{
		InventorID: "inv",
		Format:     format,
		Game:       json.RawMessage(fmt.Sprintf(`{"n":%d}`, n)),
		Advice:     json.RawMessage(`{}`),
	}
}

func TestVerifyStreamDeliversEveryItem(t *testing.T) {
	proc := &slowProc{format: "slow/v1"}
	s := newTestService(t, Config{Workers: 4})
	s.Register(proc)

	const items = 100
	anns := make([]core.Announcement, items)
	for i := range anns {
		anns[i] = annNumbered("slow/v1", i)
	}
	seen := make([]bool, items)
	frames := 0
	tr, err := s.VerifyStream(context.Background(), anns, func(sv StreamVerdict) error {
		if sv.Index < 0 || sv.Index >= items {
			t.Errorf("frame index %d out of range", sv.Index)
		} else if seen[sv.Index] {
			t.Errorf("frame index %d delivered twice", sv.Index)
		} else {
			seen[sv.Index] = true
		}
		if !sv.Verdict.Accepted {
			t.Errorf("item %d rejected: %+v", sv.Index, sv.Verdict)
		}
		frames++
		return nil
	})
	if err != nil {
		t.Fatalf("VerifyStream: %v", err)
	}
	if frames != items || tr.Delivered != items {
		t.Fatalf("frames = %d, trailer.Delivered = %d, want %d", frames, tr.Delivered, items)
	}
	if tr.Accepted != items || tr.Rejected != 0 || tr.Truncated {
		t.Fatalf("trailer = %+v, want %d accepted, no truncation", tr, items)
	}
	if tr.FirstVerdict <= 0 || tr.Elapsed < tr.FirstVerdict {
		t.Fatalf("trailer timings incoherent: first=%v elapsed=%v", tr.FirstVerdict, tr.Elapsed)
	}

	st := s.Stats()
	if st.Streams != 1 {
		t.Fatalf("Stats.Streams = %d, want 1", st.Streams)
	}
	if st.StreamTTFV.Count != 1 {
		t.Fatalf("Stats.StreamTTFV.Count = %d, want 1", st.StreamTTFV.Count)
	}
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Fatalf("hits+misses = %d, requests = %d", st.CacheHits+st.CacheMisses, st.Requests)
	}
}

func TestVerifyStreamEmptyBatch(t *testing.T) {
	s := newTestService(t, Config{})
	tr, err := s.VerifyStream(context.Background(), nil, func(StreamVerdict) error {
		t.Fatal("emit called for an empty batch")
		return nil
	})
	if err != nil {
		t.Fatalf("VerifyStream: %v", err)
	}
	if tr.Items != 0 || tr.Delivered != 0 || tr.Truncated {
		t.Fatalf("trailer = %+v, want empty non-truncated", tr)
	}
}

// TestStreamFirstVerdictWithin10xSingleVerify is the streaming
// acceptance bound: a 10k-item stream's time-to-first-verdict must track
// one verification, not the batch — within 10× of a measured single
// Verify against the same service.
func TestStreamFirstVerdictWithin10xSingleVerify(t *testing.T) {
	proc := &slowProc{format: "slow/v1", delay: time.Millisecond}
	s := newTestService(t, Config{Workers: 16, CacheSize: -1})
	s.Register(proc)

	// Measure a single Verify generously: warm up, then take the max of
	// several runs so scheduler noise widens the bound, never the margin.
	for i := 0; i < 2; i++ {
		if _, err := s.VerifyAnnouncement(context.Background(), annNumbered("slow/v1", -1-i)); err != nil {
			t.Fatalf("warmup verify: %v", err)
		}
	}
	var single time.Duration
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := s.VerifyAnnouncement(context.Background(), annNumbered("slow/v1", -10-i)); err != nil {
			t.Fatalf("measured verify: %v", err)
		}
		if d := time.Since(start); d > single {
			single = d
		}
	}

	const items = 10_000
	anns := make([]core.Announcement, items)
	for i := range anns {
		anns[i] = annNumbered("slow/v1", i)
	}
	tr, err := s.VerifyStream(context.Background(), anns, func(StreamVerdict) error { return nil })
	if err != nil {
		t.Fatalf("VerifyStream: %v", err)
	}
	if tr.Delivered != items {
		t.Fatalf("delivered %d of %d", tr.Delivered, items)
	}
	bound := 10 * single
	t.Logf("single verify (max of 5) = %v, stream TTFV = %v (bound %v), stream total = %v",
		single, tr.FirstVerdict, bound, tr.Elapsed)
	if tr.FirstVerdict > bound {
		t.Fatalf("time-to-first-verdict %v exceeds 10x a single verify (%v)", tr.FirstVerdict, bound)
	}
}

// TestVerifyStreamServerCloseMidStream covers the drain path: Close
// during an active stream lets in-flight items finish and the trailer
// reports the truncation.
func TestVerifyStreamServerCloseMidStream(t *testing.T) {
	proc := &countingProc{format: "counting/v1", accept: true, gate: make(chan struct{})}
	s := newTestService(t, Config{Workers: 1, CacheSize: -1})
	s.Register(proc)

	const items = 100
	anns := make([]core.Announcement, items)
	for i := range anns {
		anns[i] = announcementFor("inv", fmt.Sprintf(`{"n":%d}`, i))
	}
	type result struct {
		tr  StreamTrailer
		err error
	}
	delivered := make(chan StreamVerdict, items)
	res := make(chan result, 1)
	go func() {
		tr, err := s.VerifyStream(context.Background(), anns, func(sv StreamVerdict) error {
			delivered <- sv
			return nil
		})
		res <- result{tr, err}
	}()

	// Wait until the single worker holds the first item at the gate, then
	// start Close: it must block on the active stream, and the stream's
	// submitter must observe the closing flag and truncate.
	deadline := time.After(5 * time.Second)
	for proc.current.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("first stream item never reached the worker")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	for !s.closing() {
		select {
		case <-deadline:
			t.Fatal("Close never flagged the service")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(proc.gate) // release every held and future item

	var r result
	select {
	case r = <-res:
	case <-time.After(5 * time.Second):
		t.Fatal("stream never returned after Close")
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
	if r.err != nil {
		t.Fatalf("VerifyStream: %v (in-flight work should finish, not error)", r.err)
	}
	if !r.tr.Truncated {
		t.Fatalf("trailer = %+v, want Truncated", r.tr)
	}
	if !strings.Contains(r.tr.Reason, "closed") {
		t.Fatalf("trailer reason %q, want mention of the shutdown", r.tr.Reason)
	}
	if r.tr.Delivered == 0 || r.tr.Delivered >= items {
		t.Fatalf("delivered = %d, want mid-stream truncation (0 < delivered < %d)", r.tr.Delivered, items)
	}
	if got := len(delivered); got != r.tr.Delivered {
		t.Fatalf("emitted %d frames, trailer says %d", got, r.tr.Delivered)
	}
}

// TestVerifyStreamEmitErrorAborts covers the broken-consumer path: an
// emit failure must stop submission, drain cleanly and surface the error,
// leaving the pool healthy.
func TestVerifyStreamEmitErrorAborts(t *testing.T) {
	proc := &slowProc{format: "slow/v1"}
	s := newTestService(t, Config{Workers: 2, CacheSize: -1})
	s.Register(proc)

	const items = 500
	anns := make([]core.Announcement, items)
	for i := range anns {
		anns[i] = annNumbered("slow/v1", i)
	}
	boom := errors.New("consumer gone")
	frames := 0
	_, err := s.VerifyStream(context.Background(), anns, func(StreamVerdict) error {
		frames++
		if frames >= 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if proc.calls.Load() >= items {
		t.Fatalf("all %d items ran despite the aborted stream", items)
	}
	// The pool must be fully drained and reusable.
	if _, err := s.VerifyAnnouncement(context.Background(), annNumbered("slow/v1", items+1)); err != nil {
		t.Fatalf("verify after aborted stream: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after aborted stream: %v", err)
	}
}

// TestVerifyStreamCancelledContext covers caller-side cancellation at the
// service layer: completed items are emitted, the trailer reports the
// truncation, and counters stay coherent.
func TestVerifyStreamCancelledContext(t *testing.T) {
	proc := &slowProc{format: "slow/v1", delay: 2 * time.Millisecond}
	s := newTestService(t, Config{Workers: 2, CacheSize: -1})
	s.Register(proc)

	const items = 500
	anns := make([]core.Announcement, items)
	for i := range anns {
		anns[i] = annNumbered("slow/v1", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	frames := 0
	tr, err := s.VerifyStream(ctx, anns, func(StreamVerdict) error {
		frames++
		if frames == 3 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("VerifyStream: %v (cancellation truncates, it does not error)", err)
	}
	if !tr.Truncated || !strings.Contains(tr.Reason, "cancel") {
		t.Fatalf("trailer = %+v, want cancellation truncation", tr)
	}
	if tr.Delivered >= items {
		t.Fatal("cancelled stream delivered the whole batch")
	}
	st := s.Stats()
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Fatalf("hits+misses = %d, requests = %d", st.CacheHits+st.CacheMisses, st.Requests)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after stream returned, want 0", st.InFlight)
	}
}
