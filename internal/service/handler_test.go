package service

import (
	"context"
	"testing"

	"rationality/internal/core"
	"rationality/internal/game"
	"rationality/internal/reputation"
	"rationality/internal/transport"
)

// TestHandlerDropInForVerifierService: the classic agent protocol
// ("verify", "formats") must work unchanged against the service, over the
// in-process transport.
func TestHandlerVerifyAndFormats(t *testing.T) {
	s := newTestService(t, Config{ID: "svc-1"})
	client := transport.DialInProc(s)
	ann := pdAnnouncement(t)

	req, err := transport.NewMessage(core.MsgVerify, core.VerifyRequest{
		Format: ann.Format, Game: ann.Game, Advice: ann.Advice, Proof: ann.Proof,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var vr core.VerifyResponse
	if err := resp.Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.VerifierID != "svc-1" || !vr.Verdict.Accepted {
		t.Fatalf("verify reply = %+v", vr)
	}

	req, err = transport.NewMessage(core.MsgFormats, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var fr core.FormatsResponse
	if err := resp.Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Formats) == 0 {
		t.Fatal("no formats advertised")
	}
}

// TestHandlerBatchAndStatsOverWire exercises the full stream codec path —
// framing, request/response pairing, error envelopes — over an in-memory
// PipeNet, which speaks the exact byte protocol of the TCP transport
// without binding a real port.
func TestHandlerBatchAndStatsOverWire(t *testing.T) {
	rep := reputation.NewRegistry()
	s := newTestService(t, Config{ID: "svc-tcp", Reputation: rep})
	net := transport.NewPipeNet()
	defer net.Close()
	if err := net.Listen("svc", s); err != nil {
		t.Fatal(err)
	}
	client, err := net.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	honest := pdAnnouncement(t)
	forged, err := core.AnnounceEnumerationForged("shady", game.PrisonersDilemma(), game.Profile{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	req, err := transport.NewMessage(MsgVerifyBatch, BatchVerifyRequest{
		Announcements: []core.Announcement{honest, forged},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != "batch-verdicts" {
		t.Fatalf("reply type = %q", resp.Type)
	}
	var br BatchVerifyResponse
	if err := resp.Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Verdicts) != 2 || !br.Verdicts[0].Accepted || br.Verdicts[1].Accepted {
		t.Fatalf("batch verdicts = %+v", br.Verdicts)
	}

	// A second batch repeating the honest announcement: the first batch has
	// fully completed (strict request/response), so this is a definite hit.
	req, err = transport.NewMessage(MsgVerifyBatch, BatchVerifyRequest{
		Announcements: []core.Announcement{honest},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = client.Call(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	req, err = transport.NewMessage(MsgServiceStats, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	if err := resp.Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.VerifierID != "svc-tcp" || sr.Stats.Requests != 3 || sr.Stats.Batches != 2 {
		t.Fatalf("stats reply = %+v", sr)
	}
	if sr.Stats.CacheHits != 1 {
		t.Fatalf("cache counters = %+v, want exactly 1 hit from the repeat batch", sr.Stats)
	}
	if rep.Score("shady").Disagreements != 1 {
		t.Fatal("forger not reported over the wire path")
	}
}

func TestHandlerUnknownTypeAndMalformedPayload(t *testing.T) {
	s := newTestService(t, Config{ID: "svc-err"})
	client := transport.DialInProc(s)

	if _, err := client.Call(context.Background(), transport.Message{Type: "bogus"}); err == nil {
		t.Fatal("unknown message type succeeded")
	}
	malformed := transport.Message{Type: MsgVerifyBatch, Payload: []byte(`{"announcements": 42}`)}
	if _, err := client.Call(context.Background(), malformed); err == nil {
		t.Fatal("malformed batch payload succeeded")
	}
}

// TestAgentConsultsServiceBackedVerifier runs the full Fig. 1 consultation
// with the new service standing in for core.VerifierService.
func TestAgentConsultsServiceBackedVerifier(t *testing.T) {
	ann := pdAnnouncement(t)
	inventor, err := core.NewInventorService(ann)
	if err != nil {
		t.Fatal(err)
	}
	verifiers := make(map[string]transport.Client)
	for _, id := range []string{"v1", "v2", "v3"} {
		verifiers[id] = transport.DialInProc(newTestService(t, Config{ID: id}))
	}
	agent, err := core.NewAgent(core.AgentConfig{
		Name:      "jane",
		Inventor:  transport.DialInProc(inventor),
		Verifiers: verifiers,
		Registry:  reputation.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agent.Consult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || len(res.Verdicts) != 3 {
		t.Fatalf("consultation = %+v", res)
	}
}
