package service

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rationality/internal/identity"
	"rationality/internal/store"
	"rationality/internal/transport"
)

// Anti-entropy endpoints: a quorum of verification authorities converges
// on shared verdict history by pulling, from each peer, the durable-log
// records it is missing. The service side is deliberately pull-based —
// the requester offers its manifest, the responder computes the delta —
// so a verifier that was down for a day catches up with one exchange per
// peer and no peer ever pushes unrequested state.

// ErrNoStore is returned by the sync API on a service running without a
// durable verdict store: anti-entropy replicates the log, so there must
// be one (set Config.PersistPath).
var ErrNoStore = errors.New("service: anti-entropy requires a durable verdict store (Config.PersistPath)")

// ErrPeerQuarantined rejects a delta signed by a peer the trust policy
// has quarantined: its signature may be perfectly valid, but its word is
// not currently worth ingesting. The delta is counted (the peer's sync
// activity stays observable) and refused.
var ErrPeerQuarantined = errors.New("service: sync-delta signer is quarantined by this authority's trust policy")

// SyncOffer snapshots this service's verdict log as the sync-offer
// payload to send a peer: one entry per live record, newest stamp each.
func (s *Service) SyncOffer() (SyncOfferRequest, error) {
	if s.store == nil {
		return SyncOfferRequest{}, ErrNoStore
	}
	manifest, err := s.store.Manifest()
	if err != nil {
		return SyncOfferRequest{}, err
	}
	offer := SyncOfferRequest{VerifierID: s.id, Have: make([]SyncEntry, 0, len(manifest))}
	for key, info := range manifest {
		offer.Have = append(offer.Have, SyncEntry{
			Key:   append([]byte(nil), key[:]...),
			Stamp: info.Stamp,
			Sum:   info.Sum,
		})
	}
	return offer, nil
}

// ServeSyncOffer answers a peer's sync-offer with the framed records this
// service's log holds and the peer's manifest lacks (missing key, or
// older stamp). A keyed service signs the delta — over the canonical
// digest of the offer it answers, the framed records, and its own party
// ID — so the requester can verify both who served the transfer and that
// it was served for *this* offer (a captured delta replays against no
// other exchange). The handler wires it to the "sync-offer" message.
func (s *Service) ServeSyncOffer(offer SyncOfferRequest) (SyncDeltaResponse, error) {
	if s.store == nil {
		return SyncDeltaResponse{}, ErrNoStore
	}
	have := make(map[identity.Hash]store.RecordInfo, len(offer.Have))
	for _, e := range offer.Have {
		if len(e.Key) != len(identity.Hash{}) {
			return SyncDeltaResponse{}, fmt.Errorf("service: malformed sync-offer key of %d bytes", len(e.Key))
		}
		have[identity.Hash(e.Key)] = store.RecordInfo{Stamp: e.Stamp, Sum: e.Sum}
	}
	delta, err := s.store.Delta(have)
	if err != nil {
		return SyncDeltaResponse{}, err
	}
	framed, err := store.EncodeRecords(delta)
	if err != nil {
		return SyncDeltaResponse{}, err
	}
	s.metrics.deltasServed.Add(1)
	resp := SyncDeltaResponse{VerifierID: s.id, Count: len(delta), Records: framed}
	if s.fed != nil && s.fed.key != nil {
		resp.Signer = s.fed.key.ID()
		resp.Signature = s.fed.key.Sign(identity.SyncDeltaDigest(offerDigest(&offer), framed, resp.Signer))
	}
	return resp, nil
}

// NoteSyncRound records one completed anti-entropy pass over the peer
// list in Stats().SyncRounds. The sync loop lives outside the service
// (cmd/authority's -peers ticker, or an embedder's own cadence), so only
// it knows where a "round" ends; calling this after each full pass makes
// the loop's liveness observable next to the per-delta counters the
// service records itself.
func (s *Service) NoteSyncRound() { s.metrics.syncRounds.Add(1) }

// Provenance summarizes the durable log by vouching authority: how many
// live records each origin party ID accounts for. Locally verified
// verdicts appear under this service's own key (or the empty ID when
// unkeyed); records pulled from federation peers appear under the key
// that signed their transfer. It answers the operator question "whose
// word am I serving?" without a disk scan.
func (s *Service) Provenance() (map[identity.PartyID]uint64, error) {
	if s.store == nil {
		return nil, ErrNoStore
	}
	return s.store.Provenance()
}

// ProvenanceReport joins Provenance with the trust policy's standing per
// peer: one entry per vouching party, sorted by ID, each carrying its
// live record count, reputation, quarantine state and refutation tally.
// Peers the trust policy tracks but the log holds no records from (e.g.
// a quarantined peer whose lies were all repaired) still appear — a
// provenance report that hid exactly the peers being refused would be
// useless for the question it exists to answer.
func (s *Service) ProvenanceReport() (ProvenanceResponse, error) {
	counts, err := s.Provenance()
	if err != nil {
		return ProvenanceResponse{}, err
	}
	byID := make(map[identity.PartyID]ProvenancePeer, len(counts))
	for id, n := range counts {
		byID[id] = ProvenancePeer{ID: id, Records: n}
	}
	if s.trust != nil {
		for _, ts := range s.trust.Snapshot() {
			p := byID[identity.PartyID(ts.Peer)]
			p.ID = identity.PartyID(ts.Peer)
			p.Reputation = ts.Reputation
			p.State = string(ts.State)
			p.Refutations = ts.Refutations
			byID[p.ID] = p
		}
	}
	resp := ProvenanceResponse{VerifierID: s.id, Signer: s.origin, Peers: make([]ProvenancePeer, 0, len(byID))}
	for _, p := range byID {
		resp.Peers = append(resp.Peers, p)
	}
	sort.Slice(resp.Peers, func(i, j int) bool { return resp.Peers[i].ID < resp.Peers[j].ID })
	return resp, nil
}

// IngestDelta is the federation gate in front of Ingest: it verifies a
// pulled sync-delta's provenance against the peer allowlist, decodes the
// record frames, stamps the signer's identity onto them as origin, and
// only then lets the store see them. Rejections — unsigned deltas when an
// allowlist is configured, signers outside it, signatures that do not
// verify (forgery, replay against a different offer, a rotated key), and
// corrupt frames — are counted per cause and per claimed signer in
// Stats().Federation, and nothing is ingested. offer must be the exact
// offer this delta answered: the signature is bound to it.
//
// Without an allowlist a signature is still checked when present (a
// claimed identity must be provable), but unsigned deltas pass — the
// single-operator trust model anti-entropy shipped with.
func (s *Service) IngestDelta(offer SyncOfferRequest, delta SyncDeltaResponse) (int, error) {
	if s.store == nil {
		return 0, ErrNoStore
	}
	if s.fed != nil {
		if err := s.fed.admit(&offer, &delta); err != nil {
			return 0, err
		}
	} else if delta.Signer != "" || len(delta.Signature) != 0 {
		// No federation config, but the peer claims an identity: a claim
		// that cannot be proven must not become on-disk provenance, so
		// the signature is verified here too — the only difference an
		// allowlist makes is *which* provable identities are accepted.
		digest := identity.SyncDeltaDigest(offerDigest(&offer), delta.Records, delta.Signer)
		if err := identity.Verify(delta.Signer, digest, delta.Signature); err != nil {
			return 0, fmt.Errorf("service: sync-delta from signer %s (peer %q): %w", delta.Signer, delta.VerifierID, err)
		}
	}
	if s.trust != nil && delta.Signer != "" && !s.trust.Allowed(string(delta.Signer)) {
		// The signature checked out — the peer is who it claims — but its
		// standing is quarantined: count the delta (its sync activity stays
		// visible in Stats) and refuse every record in it.
		s.metrics.rejectedQuarantined.Add(1)
		if s.fed != nil {
			s.fed.countRejectPeer(delta.Signer)
		}
		return 0, fmt.Errorf("%w: signer %s (peer %q)", ErrPeerQuarantined, delta.Signer, delta.VerifierID)
	}
	recs, err := store.DecodeRecords(delta.Records)
	if err != nil {
		// The transfer-level signature already verified (when present), so
		// a bad frame here means the *responder* served bytes it should
		// not have signed — still a rejection worth counting against it.
		if s.fed != nil {
			s.fed.countReject(delta.Signer, &s.fed.rejectedCorrupt)
		}
		return 0, err
	}
	// The signing peer vouches for this transfer: its (verified) identity
	// is the provenance every applied record carries to disk, whatever
	// custody chain the peer's own copy claimed. An unsigned transfer
	// proves nothing, so whatever origins its frames claim are cleared
	// rather than persisted — unattributed beats fabricated.
	for i := range recs {
		recs[i].Origin = delta.Signer
	}
	n, err := s.Ingest(recs)
	if s.fed != nil && err == nil {
		s.fed.countAccept(delta.Signer, n)
	}
	return n, err
}

// admit enforces the allowlist and signature rules on one pulled delta.
func (f *federation) admit(offer *SyncOfferRequest, delta *SyncDeltaResponse) error {
	unsigned := delta.Signer == "" && len(delta.Signature) == 0
	if unsigned {
		if len(f.allow) == 0 {
			return nil // no allowlist: unsigned intra-operator sync is fine
		}
		f.countReject("", &f.rejectedUnsigned)
		return fmt.Errorf("%w (peer %q)", ErrUnsignedDelta, delta.VerifierID)
	}
	if len(f.allow) > 0 && !f.allow[delta.Signer] {
		f.countReject(delta.Signer, &f.rejectedUnknown)
		return fmt.Errorf("%w: signer %s (peer %q)", ErrUnknownSigner, delta.Signer, delta.VerifierID)
	}
	digest := identity.SyncDeltaDigest(offerDigest(offer), delta.Records, delta.Signer)
	if err := identity.Verify(delta.Signer, digest, delta.Signature); err != nil {
		f.countReject(delta.Signer, &f.rejectedBadSig)
		return fmt.Errorf("service: sync-delta from signer %s (peer %q): %w", delta.Signer, delta.VerifierID, err)
	}
	return nil
}

// Ingest merges records pulled from a peer into the durable log
// (newest-stamp-wins, bounded by the store's retention — see
// store.Ingest) and installs every applied verdict into the sharded
// cache at *cold* recency: replicated history fills spare capacity and
// serves as hits, but a bulk delta can never evict the node's live
// working set. Ingested verdicts never touch the hit/miss counters —
// they are replication, not traffic — and are counted in Stats.Ingested
// instead. Returns how many records were applied; stale offers that lost
// the stamp comparison are skipped silently. A store write error is
// returned after the records that did apply are installed, so a partial
// merge is still served.
//
// Two accountability hooks ride the merge. Records the store *refutes* —
// their verdict polarity contradicts one this authority verified locally
// (see store.Refutation) — charge the peer named as their origin through
// the trust policy: the refusal is the evidence. And applied foreign
// records are sampled at Config.AuditRate for background re-verification.
func (s *Service) Ingest(recs []store.Record) (int, error) {
	if s.store == nil {
		return 0, ErrNoStore
	}
	if err := s.acquire(); err != nil {
		return 0, err
	}
	defer s.release()
	for i := range recs {
		// Carried quorum certificates face the panel keyset before the
		// store sees them: a certificate that fails offline verification
		// is stripped (and counted) while its verdict still merges — bad
		// co-signatures must not block replication, and unverifiable
		// certification must not be re-served as the panel's word.
		s.admitRecordCert(&recs[i])
	}
	applied, refuted, err := s.store.Ingest(recs)
	for i := range applied {
		s.cache.PutCertified(applied[i].Key, applied[i].Verdict, applied[i].Cert, true)
		if len(applied[i].Cert) > 0 {
			s.metrics.certsStored.Add(1)
		}
		s.maybeAudit(&applied[i])
		// An applied foreign record is news to this authority's own gossip
		// partners too: re-rumoring it is what makes spread epidemic
		// (peers that already hold the copy apply nothing and the rumor
		// dies out on its TTL).
		s.noteRumor(applied[i].Key)
	}
	s.metrics.ingested.Add(uint64(len(applied)))
	for i := range refuted {
		r := &refuted[i]
		s.metrics.ingestRefutations.Add(1)
		if s.trust != nil && r.Record.Origin != "" {
			s.trust.Charge(string(r.Record.Origin), fmt.Sprintf(
				"ingest: record %x: peer %s vouched accepted=%v against locally verified accepted=%v",
				r.Record.Key[:4], r.Record.Origin, r.Record.Verdict.Accepted, r.LocalAccepted))
		}
	}
	return len(applied), err
}

// PullFrom performs one anti-entropy exchange against a single peer: it
// sends this service's verdict-log manifest as a sync-offer, receives
// the signed delta, and hands it to the federation gate (IngestDelta).
// It returns how many records were applied and the delta's signer — the
// identity the trust policy tracks, which is how a sync loop learns whom
// an address speaks for (and stops dialing it once that identity is
// quarantined). A quarantine refusal surfaces as ErrPeerQuarantined with
// the signer still reported.
func (s *Service) PullFrom(ctx context.Context, peer transport.Client) (int, identity.PartyID, error) {
	offer, err := s.SyncOffer()
	if err != nil {
		return 0, "", err
	}
	req, err := transport.NewMessage(MsgSyncOffer, offer)
	if err != nil {
		return 0, "", err
	}
	resp, err := peer.Call(ctx, req)
	if err != nil {
		return 0, "", fmt.Errorf("service: sync-offer exchange: %w", err)
	}
	if resp.Type != MsgSyncDelta {
		return 0, "", fmt.Errorf("service: peer answered sync-offer with %q, want %q", resp.Type, MsgSyncDelta)
	}
	var delta SyncDeltaResponse
	if err := resp.Decode(&delta); err != nil {
		return 0, "", err
	}
	n, err := s.IngestDelta(offer, delta)
	return n, delta.Signer, err
}
