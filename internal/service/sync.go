package service

import (
	"errors"
	"fmt"

	"rationality/internal/identity"
	"rationality/internal/store"
)

// Anti-entropy endpoints: a quorum of verification authorities converges
// on shared verdict history by pulling, from each peer, the durable-log
// records it is missing. The service side is deliberately pull-based —
// the requester offers its manifest, the responder computes the delta —
// so a verifier that was down for a day catches up with one exchange per
// peer and no peer ever pushes unrequested state.

// ErrNoStore is returned by the sync API on a service running without a
// durable verdict store: anti-entropy replicates the log, so there must
// be one (set Config.PersistPath).
var ErrNoStore = errors.New("service: anti-entropy requires a durable verdict store (Config.PersistPath)")

// SyncOffer snapshots this service's verdict log as the sync-offer
// payload to send a peer: one entry per live record, newest stamp each.
func (s *Service) SyncOffer() (SyncOfferRequest, error) {
	if s.store == nil {
		return SyncOfferRequest{}, ErrNoStore
	}
	manifest, err := s.store.Manifest()
	if err != nil {
		return SyncOfferRequest{}, err
	}
	offer := SyncOfferRequest{VerifierID: s.id, Have: make([]SyncEntry, 0, len(manifest))}
	for key, info := range manifest {
		offer.Have = append(offer.Have, SyncEntry{
			Key:   append([]byte(nil), key[:]...),
			Stamp: info.Stamp,
			Sum:   info.Sum,
		})
	}
	return offer, nil
}

// ServeSyncOffer answers a peer's sync-offer with the framed records this
// service's log holds and the peer's manifest lacks (missing key, or
// older stamp). The handler wires it to the "sync-offer" message.
func (s *Service) ServeSyncOffer(offer SyncOfferRequest) (SyncDeltaResponse, error) {
	if s.store == nil {
		return SyncDeltaResponse{}, ErrNoStore
	}
	have := make(map[identity.Hash]store.RecordInfo, len(offer.Have))
	for _, e := range offer.Have {
		if len(e.Key) != len(identity.Hash{}) {
			return SyncDeltaResponse{}, fmt.Errorf("service: malformed sync-offer key of %d bytes", len(e.Key))
		}
		have[identity.Hash(e.Key)] = store.RecordInfo{Stamp: e.Stamp, Sum: e.Sum}
	}
	delta, err := s.store.Delta(have)
	if err != nil {
		return SyncDeltaResponse{}, err
	}
	framed, err := store.EncodeRecords(delta)
	if err != nil {
		return SyncDeltaResponse{}, err
	}
	s.metrics.deltasServed.Add(1)
	return SyncDeltaResponse{VerifierID: s.id, Count: len(delta), Records: framed}, nil
}

// Ingest merges records pulled from a peer into the durable log
// (newest-stamp-wins, bounded by the store's retention — see
// store.Ingest) and installs every applied verdict into the sharded
// cache at *cold* recency: replicated history fills spare capacity and
// serves as hits, but a bulk delta can never evict the node's live
// working set. Ingested verdicts never touch the hit/miss counters —
// they are replication, not traffic — and are counted in Stats.Ingested
// instead. Returns how many records were applied; stale offers that lost
// the stamp comparison are skipped silently. A store write error is
// returned after the records that did apply are installed, so a partial
// merge is still served.
func (s *Service) Ingest(recs []store.Record) (int, error) {
	if s.store == nil {
		return 0, ErrNoStore
	}
	if err := s.acquire(); err != nil {
		return 0, err
	}
	defer s.release()
	applied, err := s.store.Ingest(recs)
	for i := range applied {
		s.cache.PutCold(applied[i].Key, applied[i].Verdict)
	}
	s.metrics.ingested.Add(uint64(len(applied)))
	return len(applied), err
}
