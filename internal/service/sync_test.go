package service

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"rationality/internal/store"
	"rationality/internal/transport"
)

// newSyncedPair starts two persisted services, verifies n distinct
// announcements on the first, and returns both.
func newSyncedPair(t *testing.T, n int) (src, dst *Service) {
	t.Helper()
	src = newTestService(t, Config{ID: "src", PersistPath: t.TempDir()})
	src.Register(&countingProc{format: "counting/v1", accept: true})
	dst = newTestService(t, Config{ID: "dst", PersistPath: t.TempDir()})
	dst.Register(&countingProc{format: "counting/v1", accept: true})
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := src.VerifyAnnouncement(ctx, announcementFor("inv", fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	return src, dst
}

// pullOverWire runs one anti-entropy pull through the actual wire
// messages: dst's offer travels to src's handler, the framed delta comes
// back, dst ingests it.
func pullOverWire(t *testing.T, dst, src *Service) int {
	t.Helper()
	offer, err := dst.SyncOffer()
	if err != nil {
		t.Fatal(err)
	}
	req, err := transport.NewMessage(MsgSyncOffer, offer)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := src.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgSyncDelta {
		t.Fatalf("reply type = %q, want %q", resp.Type, MsgSyncDelta)
	}
	var delta SyncDeltaResponse
	if err := resp.Decode(&delta); err != nil {
		t.Fatal(err)
	}
	recs, err := store.DecodeRecords(delta.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != delta.Count {
		t.Fatalf("delta framed %d records but declared %d", len(recs), delta.Count)
	}
	applied, err := dst.Ingest(recs)
	if err != nil {
		t.Fatal(err)
	}
	return applied
}

// A pulled delta must land in the receiving service's cache as servable
// history: no misses, no procedure runs, just hits — and the hit/miss
// counters must not move during the ingest itself.
func TestSyncIngestPopulatesCacheWithoutMisses(t *testing.T) {
	const n = 7
	src, dst := newSyncedPair(t, n)
	if applied := pullOverWire(t, dst, src); applied != n {
		t.Fatalf("ingested %d records, want %d", applied, n)
	}

	st := dst.Stats()
	if st.Ingested != n {
		t.Errorf("Stats.Ingested = %d, want %d", st.Ingested, n)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.Requests != 0 {
		t.Errorf("ingest moved traffic counters: %+v", st)
	}
	if st.CacheEntries != n {
		t.Errorf("CacheEntries = %d, want %d", st.CacheEntries, n)
	}
	if st.Persistence == nil || st.Persistence.Ingested != n || st.Persistence.LiveRecords != n {
		t.Errorf("persistence stats = %+v, want Ingested/LiveRecords %d", st.Persistence, n)
	}
	if srcSt := src.Stats(); srcSt.DeltasServed != 1 {
		t.Errorf("src DeltasServed = %d, want 1", srcSt.DeltasServed)
	}

	// Replicated verdicts serve as pure cache hits.
	ctx := context.Background()
	for i := 0; i < n; i++ {
		v, err := dst.VerifyAnnouncement(ctx, announcementFor("inv", fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Accepted {
			t.Fatalf("replicated verdict %d not accepted: %+v", i, v)
		}
	}
	st = dst.Stats()
	if st.CacheHits != n || st.CacheMisses != 0 {
		t.Errorf("after replay traffic: hits=%d misses=%d, want %d/0", st.CacheHits, st.CacheMisses, n)
	}

	// A second pull finds both sides converged.
	if applied := pullOverWire(t, dst, src); applied != 0 {
		t.Errorf("second pull applied %d records, want 0", applied)
	}
}

// The sync API refuses to pretend on a service without a durable store.
func TestSyncRequiresStore(t *testing.T) {
	s := newTestService(t, Config{ID: "ephemeral"})
	if _, err := s.SyncOffer(); !errors.Is(err, ErrNoStore) {
		t.Errorf("SyncOffer err = %v, want ErrNoStore", err)
	}
	if _, err := s.ServeSyncOffer(SyncOfferRequest{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("ServeSyncOffer err = %v, want ErrNoStore", err)
	}
	if _, err := s.Ingest(nil); !errors.Is(err, ErrNoStore) {
		t.Errorf("Ingest err = %v, want ErrNoStore", err)
	}
}

// A malformed manifest key is an error, not a panic or a silent skip.
func TestServeSyncOfferRejectsBadKey(t *testing.T) {
	s := newTestService(t, Config{ID: "src", PersistPath: t.TempDir()})
	_, err := s.ServeSyncOffer(SyncOfferRequest{Have: []SyncEntry{{Key: []byte("short"), Stamp: 1}}})
	if err == nil {
		t.Fatal("malformed key accepted")
	}
}

// Ingest after Close must refuse cleanly (the drain contract), not wedge
// on a stopped flusher.
func TestIngestAfterCloseRefused(t *testing.T) {
	s := newTestService(t, Config{ID: "src", PersistPath: t.TempDir()})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(nil); !errors.Is(err, ErrServiceClosed) {
		t.Errorf("Ingest after Close: err = %v, want ErrServiceClosed", err)
	}
}
