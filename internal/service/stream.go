package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/transport"
)

// Wire message types of the streaming batch exchange.
const (
	// MsgVerifyStream: agent → service. Payload BatchVerifyRequest; the
	// reply is a stream — one MsgStreamVerdict frame per item as workers
	// finish, terminated by a MsgStreamTrailer frame (transport Last flag
	// set) with the aggregate stats. Time-to-first-verdict is therefore
	// one verification, not the whole batch.
	MsgVerifyStream = "verify-stream"
	// MsgStreamVerdict is one per-item frame of a verify-stream reply;
	// payload StreamVerdict.
	MsgStreamVerdict = "stream-verdict"
	// MsgStreamTrailer is the terminal frame of a verify-stream reply;
	// payload StreamTrailer.
	MsgStreamTrailer = "stream-trailer"
)

// StreamVerdict is one streamed item result: which input it answers, the
// verdict, and — when this authority holds one — the item's quorum
// certificate, so a streaming client gets offline-verifiable results
// without a follow-up cert-get per item.
type StreamVerdict struct {
	// Index is the item's position in the requested batch. Frames arrive
	// in completion order, not input order.
	Index   int          `json:"index"`
	Verdict core.Verdict `json:"verdict"`
	// Certificate is the cached quorum certificate for this verdict, if
	// any (certificate-if-cached: the stream never waits on a panel).
	Certificate *core.Certificate `json:"certificate,omitempty"`
}

// StreamTrailer terminates a verify-stream reply with the aggregate view
// of the exchange.
type StreamTrailer struct {
	VerifierID string `json:"verifierId"`
	// Items is the batch size requested; Delivered counts the verdict
	// frames actually emitted before the trailer.
	Items     int `json:"items"`
	Delivered int `json:"delivered"`
	// Accepted / Rejected partition the delivered verdicts.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Truncated reports that the stream ended before every item was
	// verified (cancellation or shutdown); Reason says why.
	Truncated bool   `json:"truncated,omitempty"`
	Reason    string `json:"reason,omitempty"`
	// Elapsed is the stream's total service time; FirstVerdict is its
	// time-to-first-verdict — the number streaming exists to flatten.
	Elapsed      time.Duration `json:"elapsed"`
	FirstVerdict time.Duration `json:"firstVerdict,omitempty"`
}

// streamResult carries one finished item from a pool worker to the
// emitter; skip marks items that hit an infrastructure error (recorded
// separately) and have nothing to emit.
type streamResult struct {
	sv   StreamVerdict
	skip bool
}

// VerifyStream fans the announcements across the shared worker pool and
// calls emit once per completed item, in completion order, so the caller
// sees the first verdict after roughly one verification no matter how
// long the batch is. emit runs on the calling goroutine, serialized; an
// emit error aborts the stream (remaining work is cancelled and drained)
// and is returned. Infrastructure failures — cancelled context, service
// shutdown — stop submission but never discard finished work: completed
// items are still emitted and the returned trailer reports Truncated
// with the cause in Reason. The whole stream counts as one in-flight
// request (Close waits for it) and is charged to the batch admission
// class as one token per item.
func (s *Service) VerifyStream(ctx context.Context, anns []core.Announcement, emit func(StreamVerdict) error) (StreamTrailer, error) {
	if s.admission != nil {
		if err := s.admission.admit(ClassBatch, len(anns)); err != nil {
			return StreamTrailer{}, err
		}
	}
	if err := s.acquire(); err != nil {
		s.metrics.failures.Add(1)
		return StreamTrailer{}, err
	}
	defer s.release()
	s.metrics.streams.Add(1)
	s.metrics.batches.Add(1)
	start := time.Now()
	tr := StreamTrailer{VerifierID: s.id, Items: len(anns)}
	if len(anns) == 0 {
		tr.Elapsed = time.Since(start)
		return tr, nil
	}

	var (
		infraMu  sync.Mutex
		infraErr error
	)
	setInfra := func(err error) {
		infraMu.Lock()
		if infraErr == nil {
			infraErr = err
		}
		infraMu.Unlock()
	}
	// results is drained by this goroutine until closed, so workers never
	// block on it longer than one emit; abort stops the submitter early
	// when emitting fails (the connection is gone — finishing the batch
	// would be work nobody reads).
	results := make(chan streamResult, s.workers)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var wg sync.WaitGroup
	submitted := make(chan struct{})
	go func() {
		defer close(submitted)
		for i := range anns {
			if err := ctx.Err(); err != nil {
				setInfra(err)
				return
			}
			if s.closing() {
				setInfra(ErrServiceClosed)
				return
			}
			select {
			case <-abort:
				return
			default:
			}
			ann := &anns[i]
			idx := i
			wg.Add(1)
			job := func() {
				defer wg.Done()
				v, err := s.verifyItem(ctx, ann)
				r := streamResult{}
				switch {
				case err == nil:
					r.sv = StreamVerdict{Index: idx, Verdict: *v, Certificate: s.cachedCertificate(ann)}
				case isContextError(err) || errors.Is(err, ErrServiceClosed):
					setInfra(err)
					r.skip = true
				default:
					r.sv = StreamVerdict{Index: idx, Verdict: core.Verdict{Format: ann.Format, Reason: err.Error()}}
				}
				results <- r
			}
			select {
			case s.jobs <- job:
			case <-ctx.Done():
				wg.Done()
				setInfra(ctx.Err())
				return
			case <-abort:
				wg.Done()
				return
			}
		}
	}()
	go func() {
		<-submitted
		wg.Wait()
		close(results)
	}()

	var emitErr error
	for r := range results {
		if r.skip || emitErr != nil {
			continue // drain so no worker blocks on a dead stream
		}
		if tr.Delivered == 0 {
			tr.FirstVerdict = time.Since(start)
			s.metrics.ttfv.observe(tr.FirstVerdict.Nanoseconds())
		}
		if err := emit(r.sv); err != nil {
			emitErr = err
			abortOnce.Do(func() { close(abort) })
			continue
		}
		tr.Delivered++
		if r.sv.Verdict.Accepted {
			tr.Accepted++
		} else {
			tr.Rejected++
		}
	}
	tr.Elapsed = time.Since(start)
	if emitErr != nil {
		return tr, fmt.Errorf("service: stream emit: %w", emitErr)
	}
	infraMu.Lock()
	cause := infraErr
	infraMu.Unlock()
	if cause != nil {
		tr.Truncated = true
		tr.Reason = cause.Error()
	} else if tr.Delivered < tr.Items {
		tr.Truncated = true
	}
	return tr, nil
}

// cachedCertificate fetches an announcement's quorum certificate from
// the verdict cache, if one is attached; best-effort — a certificate
// that fails to decode is simply omitted from the stream frame.
func (s *Service) cachedCertificate(ann *core.Announcement) *core.Certificate {
	key := identity.DigestBytes([]byte(ann.Format), ann.Game, ann.Advice, ann.Proof)
	raw, ok := s.cache.Cert(key)
	if !ok {
		return nil
	}
	cert, err := core.DecodeCertificate(raw)
	if err != nil {
		return nil
	}
	return cert
}

// Streams implements transport.StreamHandler: only the verify-stream
// exchange is served as a frame stream.
func (s *Service) Streams(msgType string) bool { return msgType == MsgVerifyStream }

// HandleStream implements transport.StreamHandler for MsgVerifyStream:
// it decodes the batch, runs VerifyStream with each verdict sent as one
// MsgStreamVerdict frame, and returns the MsgStreamTrailer frame the
// transport marks terminal.
func (s *Service) HandleStream(ctx context.Context, req transport.Message, send func(transport.Message) error) (transport.Message, error) {
	if req.Type != MsgVerifyStream {
		return transport.Message{}, fmt.Errorf("service: cannot stream %q", req.Type)
	}
	var br BatchVerifyRequest
	if err := req.Decode(&br); err != nil {
		return transport.Message{}, err
	}
	trailer, err := s.VerifyStream(ctx, br.Announcements, func(sv StreamVerdict) error {
		m, err := transport.NewMessage(MsgStreamVerdict, sv)
		if err != nil {
			return err
		}
		return send(m)
	})
	if err != nil {
		return transport.Message{}, err
	}
	return transport.NewMessage(MsgStreamTrailer, trailer)
}

// StreamVerify drives one verify-stream exchange as a client: it sends
// the announcements, calls onVerdict for every streamed frame (in
// completion order; nil to just count), and returns the trailer. An
// onVerdict error abandons the stream and is returned.
func StreamVerify(ctx context.Context, c transport.StreamCaller, anns []core.Announcement, onVerdict func(StreamVerdict) error) (*StreamTrailer, error) {
	req, err := transport.NewMessage(MsgVerifyStream, BatchVerifyRequest{Announcements: anns})
	if err != nil {
		return nil, err
	}
	st, err := c.CallStream(ctx, req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = st.Close() }()
	for {
		m, err := st.Next()
		if err != nil {
			return nil, err
		}
		switch m.Type {
		case MsgStreamVerdict:
			var sv StreamVerdict
			if err := m.Decode(&sv); err != nil {
				return nil, err
			}
			if onVerdict != nil {
				if err := onVerdict(sv); err != nil {
					return nil, err
				}
			}
		case MsgStreamTrailer:
			var tr StreamTrailer
			if err := m.Decode(&tr); err != nil {
				return nil, err
			}
			return &tr, nil
		default:
			return nil, fmt.Errorf("service: unexpected stream frame %q", m.Type)
		}
	}
}

var _ transport.StreamHandler = (*Service)(nil)
