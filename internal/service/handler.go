package service

import (
	"context"
	"fmt"

	"rationality/internal/core"
	"rationality/internal/transport"
)

// Wire message types added by the service layer, alongside the classic
// core.MsgVerify / core.MsgFormats which the service also answers.
const (
	// MsgVerifyBatch: agent → service. Payload BatchVerifyRequest; reply
	// "batch-verdicts" with BatchVerifyResponse.
	MsgVerifyBatch = "verify-batch"
	// MsgServiceStats: operator → service. Empty payload; reply "stats"
	// with StatsResponse.
	MsgServiceStats = "service-stats"
)

// BatchVerifyRequest asks the service to verify a slice of announcements.
// Carrying full announcements (not bare verify requests) lets the service
// record every verdict against the responsible inventor.
type BatchVerifyRequest struct {
	Announcements []core.Announcement `json:"announcements"`
}

// BatchVerifyResponse returns one verdict per announcement, in order.
type BatchVerifyResponse struct {
	VerifierID string         `json:"verifierId"`
	Verdicts   []core.Verdict `json:"verdicts"`
}

// StatsResponse is the service's operational snapshot on the wire.
type StatsResponse struct {
	VerifierID string `json:"verifierId"`
	Stats      Stats  `json:"stats"`
}

var _ transport.Handler = (*Service)(nil)

// Handle implements transport.Handler: the service is a drop-in
// replacement for core.VerifierService that additionally understands batch
// verification and stats inspection.
func (s *Service) Handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case core.MsgVerify:
		var vr core.VerifyRequest
		if err := req.Decode(&vr); err != nil {
			return transport.Message{}, err
		}
		verdict, err := s.Verify(ctx, vr)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("verdict", core.VerifyResponse{VerifierID: s.id, Verdict: *verdict})
	case core.MsgFormats:
		return transport.NewMessage("formats", core.FormatsResponse{
			VerifierID: s.id,
			Formats:    s.Formats(),
		})
	case MsgVerifyBatch:
		var br BatchVerifyRequest
		if err := req.Decode(&br); err != nil {
			return transport.Message{}, err
		}
		verdicts, err := s.VerifyBatch(ctx, br.Announcements)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("batch-verdicts", BatchVerifyResponse{
			VerifierID: s.id,
			Verdicts:   verdicts,
		})
	case MsgServiceStats:
		return transport.NewMessage("stats", StatsResponse{VerifierID: s.id, Stats: s.Stats()})
	default:
		return transport.Message{}, fmt.Errorf("service: cannot handle %q", req.Type)
	}
}
