package service

import (
	"context"
	"errors"
	"fmt"

	"rationality/internal/core"
	"rationality/internal/identity"
	"rationality/internal/transport"
)

// Wire message types added by the service layer, alongside the classic
// core.MsgVerify / core.MsgFormats which the service also answers.
const (
	// MsgVerifyBatch: agent → service. Payload BatchVerifyRequest; reply
	// "batch-verdicts" with BatchVerifyResponse.
	MsgVerifyBatch = "verify-batch"
	// MsgServiceStats: operator → service. Empty payload; reply "stats"
	// with StatsResponse.
	MsgServiceStats = "service-stats"
	// MsgSyncOffer: verifier → peer verifier. Payload SyncOfferRequest
	// (the requester's verdict-log manifest); reply "sync-delta" with
	// SyncDeltaResponse carrying the records the requester is missing.
	MsgSyncOffer = "sync-offer"
	// MsgSyncDelta is the reply type to a sync-offer.
	MsgSyncDelta = "sync-delta"
	// MsgProvenance: operator → service. Empty payload; reply
	// "provenance" with ProvenanceResponse — whose word this authority is
	// serving, one line per vouching peer with its trust standing.
	MsgProvenance = "provenance"
	// MsgCoSign: certificate coordinator → panel member. Payload
	// CoSignRequest (one verify request); the member verifies it through
	// its normal cached path and replies "cosigned" with CoSignResponse —
	// its verdict plus an Ed25519 signature over the canonical certificate
	// digest. Requires a signing key (Config.Key).
	MsgCoSign = "cosign"
	// MsgCoSigned is the reply type to a cosign.
	MsgCoSigned = "cosigned"
	// MsgCertPut: coordinator → authority. Payload CertPutRequest (an
	// assembled core.Certificate); the authority verifies it offline
	// against its panel keyset (when configured), persists it as a
	// certified record, and replies "cert-receipt" with CertPutResponse.
	MsgCertPut = "cert-put"
	// MsgCertReceipt is the reply type to a cert-put.
	MsgCertReceipt = "cert-receipt"
	// MsgCertGet: client → authority. Payload CertGetRequest (the hex
	// verdict key); reply "certificate" with CertGetResponse — the one
	// request an offline client needs before checking the certificate's
	// co-signatures against the known panel keyset locally.
	MsgCertGet = "cert-get"
	// MsgCertificate is the reply type to a cert-get.
	MsgCertificate = "certificate"
)

// CoSignRequest asks a panel member to verify one request and co-sign the
// resulting verdict's certificate digest.
type CoSignRequest struct {
	Request core.VerifyRequest `json:"request"`
}

// CoSignResponse is one panel member's co-signature: its verdict on the
// request, the content-addressed verdict key, and an Ed25519 signature by
// Signer over identity.CertificateDigest(key, canonical verdict JSON).
type CoSignResponse struct {
	VerifierID string `json:"verifierId"`
	// Signer is the member's signing identity — the party ID the
	// coordinator maps into the panel keyset bitmap.
	Signer identity.PartyID `json:"signer"`
	// Key is the hex content address of the verdict being certified.
	Key string `json:"key"`
	// Verdict is the member's own verdict on the request.
	Verdict core.Verdict `json:"verdict"`
	// Signature is the member's Ed25519 co-signature.
	Signature []byte `json:"signature"`
}

// CertPutRequest submits an assembled quorum certificate for persistence.
type CertPutRequest struct {
	Certificate core.Certificate `json:"certificate"`
}

// CertPutResponse acknowledges a stored certificate.
type CertPutResponse struct {
	VerifierID string `json:"verifierId"`
	Stored     bool   `json:"stored"`
}

// CertGetRequest asks for the stored certificate of one verdict key
// (canonical hex, as reported by CoSignResponse.Key).
type CertGetRequest struct {
	Key string `json:"key"`
}

// CertGetResponse returns the stored certificate, or Found=false when the
// key is uncertified or unknown.
type CertGetResponse struct {
	VerifierID  string            `json:"verifierId"`
	Found       bool              `json:"found"`
	Certificate *core.Certificate `json:"certificate,omitempty"`
}

// ProvenancePeer is one vouching party in a ProvenanceResponse: how many
// live records it accounts for, joined with the trust policy's view of
// it when one is attached.
type ProvenancePeer struct {
	// ID is the vouching party (empty for unattributed pre-federation
	// records).
	ID identity.PartyID `json:"id"`
	// Records is how many live verdict-log records carry this origin.
	Records uint64 `json:"records"`
	// Reputation, State and Refutations are the trust policy's standing
	// for the peer; State is empty when the service runs without a trust
	// policy (or for this authority's own records).
	Reputation  float64 `json:"reputation,omitempty"`
	State       string  `json:"state,omitempty"`
	Refutations uint64  `json:"refutations,omitempty"`
}

// ProvenanceResponse is the provenance report on the wire: the answering
// authority, its own signing identity, and every vouching party sorted
// by ID.
type ProvenanceResponse struct {
	VerifierID string           `json:"verifierId"`
	Signer     identity.PartyID `json:"signer,omitempty"`
	Peers      []ProvenancePeer `json:"peers"`
}

// SyncEntry is one manifest line in a sync-offer: a 32-byte verdict-log
// key (identity.Hash), the newest stamp the requester holds for it, and
// the checksum of the verdict content at that stamp (so a peer whose
// copy differs only in stamp — compaction re-ranking — sends nothing).
type SyncEntry struct {
	Key   []byte `json:"key"`
	Stamp uint64 `json:"stamp"`
	Sum   uint32 `json:"sum"`
}

// SyncOfferRequest is a verifier's "what I have" half of an anti-entropy
// exchange: the peer answers with every live record whose key is absent
// from — or stamped newer than — these entries.
type SyncOfferRequest struct {
	VerifierID string      `json:"verifierId"`
	Have       []SyncEntry `json:"have"`
}

// SyncDeltaResponse carries the records the requester was missing, framed
// with the verdict log's own version-headed, length-prefixed CRC32C
// record layout (store.EncodeRecords), so the transfer is
// integrity-checked record by record before a single one is ingested.
// A keyed responder also signs the transfer: Signer is its Ed25519 party
// ID and Signature covers identity.SyncDeltaDigest(offer digest, Records,
// Signer) — authenticity and replay-binding on top of the CRC's
// integrity, which is what lets the requester gate ingestion on a peer
// allowlist (service.IngestDelta).
type SyncDeltaResponse struct {
	VerifierID string `json:"verifierId"`
	Count      int    `json:"count"`
	Records    []byte `json:"records,omitempty"`
	// Signer / Signature authenticate the transfer; both empty on an
	// unkeyed (single-operator) responder.
	Signer    identity.PartyID `json:"signer,omitempty"`
	Signature []byte           `json:"signature,omitempty"`
}

// BatchVerifyRequest asks the service to verify a slice of announcements.
// Carrying full announcements (not bare verify requests) lets the service
// record every verdict against the responsible inventor.
type BatchVerifyRequest struct {
	Announcements []core.Announcement `json:"announcements"`
}

// BatchVerifyResponse returns one verdict per announcement, in order.
// A batch interrupted mid-flight (cancellation, shutdown) still returns
// the verdicts that completed: Partial is set, Verdicts holds the Done
// completed verdicts, and Error names the cause — matching the streaming
// exchange's keep-what-finished semantics.
type BatchVerifyResponse struct {
	VerifierID string         `json:"verifierId"`
	Verdicts   []core.Verdict `json:"verdicts"`
	// Partial reports a truncated batch: only Done of Total items
	// completed before the interruption named by Error.
	Partial bool   `json:"partial,omitempty"`
	Done    int    `json:"done,omitempty"`
	Total   int    `json:"total,omitempty"`
	Error   string `json:"error,omitempty"`
}

// StatsResponse is the service's operational snapshot on the wire.
type StatsResponse struct {
	VerifierID string `json:"verifierId"`
	Stats      Stats  `json:"stats"`
}

var _ transport.Handler = (*Service)(nil)

// Handle implements transport.Handler: the service is a drop-in
// replacement for core.VerifierService that additionally understands batch
// verification and stats inspection.
func (s *Service) Handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case core.MsgVerify:
		var vr core.VerifyRequest
		if err := req.Decode(&vr); err != nil {
			return transport.Message{}, err
		}
		verdict, err := s.Verify(ctx, vr)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("verdict", core.VerifyResponse{VerifierID: s.id, Verdict: *verdict})
	case core.MsgFormats:
		return transport.NewMessage("formats", core.FormatsResponse{
			VerifierID: s.id,
			Formats:    s.Formats(),
		})
	case MsgVerifyBatch:
		var br BatchVerifyRequest
		if err := req.Decode(&br); err != nil {
			return transport.Message{}, err
		}
		verdicts, err := s.VerifyBatch(ctx, br.Announcements)
		var partial *PartialBatchError
		if err != nil && !errors.As(err, &partial) {
			return transport.Message{}, err
		}
		resp := BatchVerifyResponse{VerifierID: s.id, Verdicts: verdicts}
		if partial != nil {
			// Completed work crosses the wire even when the batch was cut
			// short; the client decides what a partial batch is worth.
			resp.Partial = true
			resp.Done = partial.Done
			resp.Total = partial.Total
			resp.Error = partial.Cause.Error()
		}
		return transport.NewMessage("batch-verdicts", resp)
	case MsgServiceStats:
		return transport.NewMessage("stats", StatsResponse{VerifierID: s.id, Stats: s.Stats()})
	case MsgCoSign:
		var cr CoSignRequest
		if err := req.Decode(&cr); err != nil {
			return transport.Message{}, err
		}
		resp, err := s.CoSign(ctx, cr.Request)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgCoSigned, resp)
	case MsgCertPut:
		var pr CertPutRequest
		if err := req.Decode(&pr); err != nil {
			return transport.Message{}, err
		}
		if err := s.StoreCertificate(&pr.Certificate); err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgCertReceipt, CertPutResponse{VerifierID: s.id, Stored: true})
	case MsgCertGet:
		var gr CertGetRequest
		if err := req.Decode(&gr); err != nil {
			return transport.Message{}, err
		}
		key, err := identity.ParseHash(gr.Key)
		if err != nil {
			return transport.Message{}, err
		}
		cert, found, err := s.Certificate(key)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgCertificate, CertGetResponse{
			VerifierID: s.id, Found: found, Certificate: cert,
		})
	case MsgProvenance:
		report, err := s.ProvenanceReport()
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage("provenance", report)
	case MsgSyncOffer:
		var offer SyncOfferRequest
		if err := req.Decode(&offer); err != nil {
			return transport.Message{}, err
		}
		delta, err := s.ServeSyncOffer(offer)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgSyncDelta, delta)
	case MsgGossip:
		var gr GossipRequest
		if err := req.Decode(&gr); err != nil {
			return transport.Message{}, err
		}
		applied := 0
		if gr.Rumors != nil {
			// Rumor pushes are signed against the empty offer (there is no
			// solicited one); the gate still enforces allowlist, signature
			// and quarantine, so a refused initiator fails here loudly.
			n, err := s.IngestDelta(SyncOfferRequest{}, *gr.Rumors)
			if err != nil {
				return transport.Message{}, err
			}
			applied = n
		}
		summary, err := s.gossipSummary(applied)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgGossipSummary, summary)
	case MsgGossipPull:
		var offer SyncOfferRequest
		if err := req.Decode(&offer); err != nil {
			return transport.Message{}, err
		}
		delta, err := s.ServeSyncOffer(offer)
		if err != nil {
			return transport.Message{}, err
		}
		have, err := s.SyncOffer()
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgGossipExchange, GossipExchangeResponse{
			VerifierID: s.id, Delta: delta, Have: have,
		})
	case MsgGossipPush:
		var pr GossipPushRequest
		if err := req.Decode(&pr); err != nil {
			return transport.Message{}, err
		}
		applied, err := s.IngestDelta(pr.Offer, pr.Delta)
		if err != nil {
			return transport.Message{}, err
		}
		summary, err := s.gossipSummary(applied)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgGossipSummary, summary)
	default:
		return transport.Message{}, fmt.Errorf("service: cannot handle %q", req.Type)
	}
}
