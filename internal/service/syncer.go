package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rationality/internal/identity"
	"rationality/internal/transport"
)

// Syncer is the resilient anti-entropy pull loop: one goroutine that, on
// a jittered cadence, pulls the verdict records this authority is missing
// from each configured peer. It replaces a fixed-interval redial loop
// with the failure handling a federation actually needs:
//
//   - jitter on the round cadence, so a fleet restarted together does not
//     synchronize into thundering-herd pulls;
//   - per-peer exponential backoff: after f consecutive failures the peer
//     is not re-attempted until interval·2^(f-1) (jittered, capped at
//     BackoffMax) has passed — a dead peer costs one dial per backoff
//     window, not one per tick;
//   - a circuit breaker: at BreakerThreshold consecutive failures the
//     peer's state goes open and its client is closed and released; the
//     next eligible attempt is the half-open probe that re-dials it;
//   - quarantine awareness: once a pull has learned which signing
//     identity an address speaks for, a peer the trust policy has
//     quarantined is skipped without dialing until its probation opens.
//
// Per-peer state is observable in Stats().SyncPeers and the Prometheus
// exposition. Build with Service.StartSyncer, stop with Stop.
type Syncer struct {
	svc    *Service
	cfg    SyncerConfig
	ctx    context.Context
	cancel context.CancelFunc
	exited chan struct{}
	stop   sync.Once

	mu    sync.Mutex
	rng   *rand.Rand
	peers []*syncPeer
}

// Syncer defaults, applied by StartSyncer for zero Config fields.
const (
	// DefaultSyncTimeout bounds one dial+exchange.
	DefaultSyncTimeout = time.Minute
	// DefaultSyncBackoffMax caps the per-peer exponential backoff.
	DefaultSyncBackoffMax = 5 * time.Minute
	// DefaultBreakerThreshold is the consecutive-failure count that opens
	// a peer's circuit.
	DefaultBreakerThreshold = 3
	// DefaultSyncJitter is the jitter fraction applied to the round
	// cadence and every backoff window.
	DefaultSyncJitter = 0.2
)

// Sync-loop peer states, as reported in SyncPeerStats.State: healthy
// (last attempt succeeded), degraded (failing, still dialed each round it
// is due), and open (the breaker tripped — the client is released and the
// next due attempt is a half-open probe).
const (
	SyncHealthy  = "healthy"
	SyncDegraded = "degraded"
	SyncOpen     = "open"
)

// SyncerConfig configures Service.StartSyncer.
type SyncerConfig struct {
	// Peers are the addresses to pull from. Required, non-empty.
	Peers []string
	// Interval is the nominal round cadence (jittered). Required.
	Interval time.Duration
	// Timeout bounds one dial+exchange; zero means DefaultSyncTimeout.
	Timeout time.Duration
	// BackoffMax caps the per-peer exponential backoff; zero means
	// DefaultSyncBackoffMax (raised to Interval if smaller).
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit; zero means DefaultBreakerThreshold.
	BreakerThreshold int
	// Jitter is the fraction by which cadence and backoff windows are
	// randomized (0.2 = ±20%). Zero means DefaultSyncJitter; negative
	// disables jitter (deterministic cadence, for tests).
	Jitter float64
	// Dial opens a client to a peer address; nil means a pooled TCP dial
	// bounded by Timeout.
	Dial func(addr string) (transport.Client, error)
	// Logf, when non-nil, receives the loop's operational log lines
	// (pulls, failures, breaker transitions).
	Logf func(format string, args ...any)
	// OnRound, when non-nil, observes every completed round with whether
	// at least one peer exchange succeeded — the hook readiness gates
	// hang their first-sync condition on.
	OnRound func(exchanged bool)
	// Seed seeds the jitter source; zero uses the clock.
	Seed int64
}

// syncPeer is one peer's loop state, guarded by Syncer.mu (the loop
// goroutine mutates it, Snapshot reads it).
type syncPeer struct {
	addr   string
	client transport.Client
	signer identity.PartyID
	state  string
	// failures counts consecutive failures (reset on success); next is
	// the earliest time the peer is due another attempt.
	failures int
	next     time.Time

	attempts          uint64
	pulled            uint64
	failed            uint64
	skippedBackoff    uint64
	skippedQuarantine uint64
}

// SyncPeerStats is one peer's sync-loop state as reported by
// Stats().SyncPeers: the breaker view an operator checks when a peer
// stops converging.
type SyncPeerStats struct {
	// Address is the configured peer address; Signer the signing identity
	// the last successful (or quarantine-refused) pull proved it speaks
	// for — empty until one exchange has completed.
	Address string           `json:"address"`
	Signer  identity.PartyID `json:"signer,omitempty"`
	// State is the breaker state: healthy, degraded, or open.
	State string `json:"state"`
	// ConsecutiveFailures is the current failure run (zeroed on success);
	// Backoff is how much of the current backoff window remains.
	ConsecutiveFailures int           `json:"consecutiveFailures,omitempty"`
	Backoff             time.Duration `json:"backoff,omitempty"`
	// Attempts counts pulls actually started, Pulled the records they
	// applied, Failed the attempts that errored. SkippedBackoff and
	// SkippedQuarantine count rounds where the peer was due no attempt —
	// still inside its backoff window, or quarantined by the trust
	// policy.
	Attempts          uint64 `json:"attempts"`
	Pulled            uint64 `json:"pulled"`
	Failed            uint64 `json:"failed"`
	SkippedBackoff    uint64 `json:"skippedBackoff,omitempty"`
	SkippedQuarantine uint64 `json:"skippedQuarantine,omitempty"`
}

// StartSyncer launches the resilient pull loop against the configured
// peers: one round immediately (a restarted authority catches up before
// its cadence ticks), then one round per jittered interval. The syncer
// registers itself on the service, so Stats().SyncPeers reports its
// per-peer state. Stop halts the loop and closes the peer clients.
func (s *Service) StartSyncer(cfg SyncerConfig) (*Syncer, error) {
	if s.store == nil {
		return nil, ErrNoStore
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("service: syncer needs at least one peer address")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("service: syncer interval must be positive, got %s", cfg.Interval)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultSyncTimeout
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultSyncBackoffMax
	}
	if cfg.BackoffMax < cfg.Interval {
		cfg.BackoffMax = cfg.Interval
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = DefaultSyncJitter
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}
	if cfg.Dial == nil {
		timeout := cfg.Timeout
		cfg.Dial = func(addr string) (transport.Client, error) {
			return transport.DialTCPPool(addr, timeout, 1)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	// Logged so any run — including a clock-seeded one — can be replayed
	// by setting SyncerConfig.Seed to the printed value.
	cfg.Logf("anti-entropy: jitter seed=%d", seed)
	ctx, cancel := context.WithCancel(context.Background())
	y := &Syncer{
		svc:    s,
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		exited: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
	for _, addr := range cfg.Peers {
		y.peers = append(y.peers, &syncPeer{addr: addr, state: SyncHealthy})
	}
	s.syncer.Store(y)
	go y.run()
	return y, nil
}

// Stop halts the loop, waits for any in-flight exchange to cancel, and
// closes the peer clients. Safe to call more than once.
func (y *Syncer) Stop() {
	y.stop.Do(func() {
		y.cancel()
		<-y.exited
		y.svc.syncer.CompareAndSwap(y, nil)
	})
}

// run is the loop goroutine: an immediate catch-up round, then one round
// per jittered interval until Stop.
func (y *Syncer) run() {
	defer close(y.exited)
	defer func() {
		y.mu.Lock()
		defer y.mu.Unlock()
		for _, p := range y.peers {
			if p.client != nil {
				_ = p.client.Close()
				p.client = nil
			}
		}
	}()
	y.round()
	for {
		y.mu.Lock()
		d := y.jitterLocked(y.cfg.Interval)
		y.mu.Unlock()
		timer := time.NewTimer(d)
		select {
		case <-y.ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		y.round()
	}
}

// round attempts every due peer once and notes the completed pass.
func (y *Syncer) round() {
	exchanged := 0
	for _, p := range y.peers {
		if y.ctx.Err() != nil {
			return // shutting down mid-round: not a completed pass
		}
		if y.pullPeer(p) {
			exchanged++
		}
	}
	if y.ctx.Err() != nil {
		return
	}
	y.svc.NoteSyncRound()
	if y.cfg.OnRound != nil {
		y.cfg.OnRound(exchanged > 0)
	}
}

// pullPeer runs one peer's turn in a round: skip if backing off or
// quarantined, otherwise dial (when the breaker released the client) and
// pull. Reports whether an exchange succeeded.
func (y *Syncer) pullPeer(p *syncPeer) bool {
	now := time.Now()
	y.mu.Lock()
	if now.Before(p.next) {
		p.skippedBackoff++
		y.mu.Unlock()
		return false
	}
	signer := p.signer
	y.mu.Unlock()
	if signer != "" && y.svc.trust != nil && !y.svc.trust.Allowed(string(signer)) {
		// Known identity, quarantined standing: skip without a dial. The
		// trust policy's probation timer is what lets the peer back in.
		y.mu.Lock()
		p.skippedQuarantine++
		y.mu.Unlock()
		return false
	}

	y.mu.Lock()
	p.attempts++
	client := p.client
	y.mu.Unlock()
	if client == nil {
		c, err := y.cfg.Dial(p.addr)
		if err != nil {
			y.cfg.Logf("anti-entropy: %s unreachable: %v", p.addr, err)
			y.noteFailure(p, time.Now())
			return false
		}
		y.mu.Lock()
		p.client = c
		y.mu.Unlock()
		client = c
	}

	ctx, cancel := context.WithTimeout(y.ctx, y.cfg.Timeout)
	n, gotSigner, err := y.svc.PullFrom(ctx, client)
	cancel()
	if gotSigner != "" {
		y.mu.Lock()
		p.signer = gotSigner
		y.mu.Unlock()
	}
	switch {
	case y.ctx.Err() != nil:
		return false // cancelled mid-exchange: not a peer failure
	case err == nil:
		y.mu.Lock()
		p.pulled += uint64(n)
		p.failures = 0
		p.next = time.Time{}
		recovered := p.state == SyncOpen
		p.state = SyncHealthy
		y.mu.Unlock()
		if recovered {
			y.cfg.Logf("anti-entropy: circuit closed for %s: probe succeeded", p.addr)
		}
		if n > 0 {
			y.cfg.Logf("anti-entropy: pulled %d records from %s", n, p.addr)
		}
		return true
	case errors.Is(err, ErrPeerQuarantined):
		// A deliberate refusal by our own trust policy, not a peer fault:
		// no backoff, no breaker — the quarantine skip above takes over
		// now that the signer is known.
		y.mu.Lock()
		p.skippedQuarantine++
		y.mu.Unlock()
		y.cfg.Logf("anti-entropy: pull from %s: %v", p.addr, err)
		return false
	default:
		y.cfg.Logf("anti-entropy: pull from %s: %v", p.addr, err)
		y.noteFailure(p, time.Now())
		return false
	}
}

// noteFailure records one failed attempt: bump the consecutive-failure
// run, schedule the backoff window, and trip the breaker at the
// threshold (closing and releasing the client, so the next due attempt
// is a fresh half-open probe).
func (y *Syncer) noteFailure(p *syncPeer, now time.Time) {
	y.mu.Lock()
	p.failures++
	p.failed++
	window := y.backoffLocked(p.failures)
	p.next = now.Add(window)
	opened := false
	if p.failures >= y.cfg.BreakerThreshold {
		opened = p.state != SyncOpen
		p.state = SyncOpen
		if p.client != nil {
			_ = p.client.Close()
			p.client = nil
		}
	} else {
		p.state = SyncDegraded
	}
	failures := p.failures
	y.mu.Unlock()
	if opened {
		y.cfg.Logf("anti-entropy: circuit open for %s after %d consecutive failures (next probe in %s)",
			p.addr, failures, window.Round(time.Millisecond))
	}
}

// backoffLocked is the jittered exponential backoff window after f
// consecutive failures: interval·2^(f-1), capped at BackoffMax.
// Callers hold y.mu.
func (y *Syncer) backoffLocked(f int) time.Duration {
	d := y.cfg.Interval
	for i := 1; i < f && d < y.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > y.cfg.BackoffMax {
		d = y.cfg.BackoffMax
	}
	return y.jitterLocked(d)
}

// jitterLocked randomizes a duration by ±cfg.Jitter. Callers hold y.mu.
func (y *Syncer) jitterLocked(d time.Duration) time.Duration {
	j := y.cfg.Jitter
	if j <= 0 {
		return d
	}
	delta := float64(d) * j
	return time.Duration(float64(d) - delta + 2*delta*y.rng.Float64())
}

// Snapshot reports every peer's loop state, in configured peer order.
func (y *Syncer) Snapshot() []SyncPeerStats {
	now := time.Now()
	y.mu.Lock()
	defer y.mu.Unlock()
	out := make([]SyncPeerStats, 0, len(y.peers))
	for _, p := range y.peers {
		st := SyncPeerStats{
			Address:             p.addr,
			Signer:              p.signer,
			State:               p.state,
			ConsecutiveFailures: p.failures,
			Attempts:            p.attempts,
			Pulled:              p.pulled,
			Failed:              p.failed,
			SkippedBackoff:      p.skippedBackoff,
			SkippedQuarantine:   p.skippedQuarantine,
		}
		if p.next.After(now) {
			st.Backoff = p.next.Sub(now)
		}
		out = append(out, st)
	}
	return out
}
