package service

import (
	"cmp"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"rationality/internal/core"
	"rationality/internal/identity"
)

// DefaultCacheShards is the shard count used when Config.CacheShards is
// zero. Sixteen shards keep the probability of two concurrent writers
// colliding on one stripe lock low even on wide machines, while each
// shard stays large enough for its recency order to be meaningful.
const DefaultCacheShards = 16

// verdictCache is a bounded, approximately-LRU cache of content-addressed
// verdicts, striped across power-of-two shards. Keys are
// identity.DigestBytes hashes over (format, game, advice, proof), so two
// announcements with byte-identical contents share an entry regardless of
// which inventor or agent submitted them — and since SHA-256 output is
// uniform, the key's leading bytes (identity.Hash.Prefix64) pick a shard
// evenly with a single mask.
//
// The hot path is read-mostly, so each shard splits its synchronization:
//
//   - Get takes NO lock at all. The entry map is a sync.Map (lock-free
//     loads on its read-only fast path), the recency touch is one atomic
//     store of a ticket from the shard's atomic clock, and the
//     caller-facing deep copy happens on the caller's stack. A cache hit
//     therefore performs zero mutex acquisitions.
//   - Put serializes structural changes (insert, replace, evict) on a
//     per-shard mutex, so only concurrent writers to the same stripe
//     contend.
//
// Eviction is least-recently-stamped: when a stripe exceeds its bound the
// writer scans it for the smallest ticket and deletes that entry. The
// scan is O(stripe size), paid only by writers on a full stripe, and the
// read-side stamps race benignly (a hit concurrent with an eviction may
// still be evicted — approximate LRU is the price of lock-free reads).
// Each shard is an independent LRU domain: capacity is split evenly, the
// standard striped-cache trade-off.
type verdictCache struct {
	mask   uint64
	shards []cacheShard
}

// cacheShard is one stripe. The pad keeps neighbouring shards' write
// locks and clocks off one cache line, so striping is not undone by false
// sharing.
type cacheShard struct {
	mu      sync.Mutex // guards structural changes; Get never takes it
	entries sync.Map   // identity.Hash -> *cacheEntry
	size    atomic.Int64
	clock   atomic.Uint64
	cap     int
	// slack batches eviction: a full stripe evicts its `slack` stalest
	// entries in one scan instead of one per insert, amortizing the
	// O(stripe) scan across slack inserts on a miss-heavy workload.
	slack int
	// scratch is the eviction scan's reusable buffer (guarded by mu).
	scratch []agedKey
	_       [16]byte
}

// agedKey pairs a key with its recency stamp for the eviction scan.
type agedKey struct {
	key   identity.Hash
	stamp uint64
}

type cacheEntry struct {
	// verdict is immutable once stored: Put installs a private deep copy
	// inside a fresh entry and never mutates it, so Get may alias it
	// lock-free and defer the caller-facing copy to the caller's stack.
	verdict core.Verdict
	// cert is the encoded quorum certificate over this verdict (empty for
	// uncertified entries). Like verdict it is immutable once the entry is
	// published: installs copy the bytes into a fresh entry, and a plain
	// Put that replaces a certified entry carries the certificate forward
	// into its replacement — re-verifying an announcement must not make
	// the authority forget the panel's co-signatures over it.
	cert []byte
	// stamp is the recency ticket: larger = more recently used.
	stamp atomic.Uint64
}

// newVerdictCache returns a cache bounded to capacity entries striped over
// the given number of shards (rounded up to a power of two, then capped so
// each shard holds at least one entry). A capacity of zero or less
// disables caching: every Get misses and Put is a no-op.
func newVerdictCache(capacity, shardCount int) *verdictCache {
	if capacity <= 0 {
		return &verdictCache{}
	}
	if shardCount < 1 {
		shardCount = 1
	}
	shardCount = 1 << bits.Len(uint(shardCount-1)) // next power of two
	if shardCount > capacity {
		shardCount = 1 << (bits.Len(uint(capacity)) - 1) // largest power of two <= capacity
	}
	// Floor division keeps the configured capacity an honest upper bound
	// on the total population (the clamp above guarantees >= 1 per shard;
	// up to shardCount-1 configured entries go unused).
	perShard := capacity / shardCount
	c := &verdictCache{
		mask:   uint64(shardCount - 1),
		shards: make([]cacheShard, shardCount),
	}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].slack = max(1, perShard/4)
	}
	return c
}

// shardFor selects the stripe by the key's leading bytes.
func (c *verdictCache) shardFor(key identity.Hash) *cacheShard {
	return &c.shards[key.Prefix64()&c.mask]
}

// Get returns a copy of the cached verdict, if present. Lock-free: one
// sync.Map load, one recency stamp, and a deep copy on the caller's
// stack — the stored entry itself is immutable.
func (c *verdictCache) Get(key identity.Hash) (*core.Verdict, bool) {
	if len(c.shards) == 0 {
		return nil, false
	}
	sh := c.shardFor(key)
	v, ok := sh.entries.Load(key)
	if !ok {
		return nil, false
	}
	e := v.(*cacheEntry)
	e.stamp.Store(sh.clock.Add(1))
	out := e.verdict.Clone()
	return &out, true
}

// Put stores a verdict, evicting the shard's least-recently-stamped entry
// when the stripe is full. The deep copy is taken before the lock; the
// shard lock covers only the map insert and any eviction scan.
func (c *verdictCache) Put(key identity.Hash, v core.Verdict) {
	c.put(key, v, nil, false)
}

// PutCold stores a verdict at the oldest possible recency instead of the
// freshest: on an over-full stripe the cold entries are themselves the
// first evicted, so bulk insertion (anti-entropy ingest) fills spare
// capacity without displacing the shard's live working set. A later Get
// promotes a cold entry to normal recency like any other hit.
func (c *verdictCache) PutCold(key identity.Hash, v core.Verdict) {
	c.put(key, v, nil, true)
}

// PutCertified stores a verdict together with its encoded quorum
// certificate, at cold or normal recency. The certificate bytes are
// copied into the entry, so the caller's slice stays its own.
func (c *verdictCache) PutCertified(key identity.Hash, v core.Verdict, cert []byte, cold bool) {
	c.put(key, v, cert, cold)
}

// Cert returns a copy of the cached certificate for a key, if the key is
// cached with one. Lock-free, and counts as a recency touch like Get —
// serving a certificate is exactly the hot-path hit the cache exists for.
func (c *verdictCache) Cert(key identity.Hash) ([]byte, bool) {
	if len(c.shards) == 0 {
		return nil, false
	}
	sh := c.shardFor(key)
	v, ok := sh.entries.Load(key)
	if !ok {
		return nil, false
	}
	e := v.(*cacheEntry)
	if len(e.cert) == 0 {
		return nil, false
	}
	e.stamp.Store(sh.clock.Add(1))
	return append([]byte(nil), e.cert...), true
}

func (c *verdictCache) put(key identity.Hash, v core.Verdict, cert []byte, cold bool) {
	if len(c.shards) == 0 {
		return
	}
	e := &cacheEntry{verdict: v.Clone()}
	if len(cert) > 0 {
		e.cert = append([]byte(nil), cert...)
	}
	sh := c.shardFor(key)
	if !cold {
		// A cold entry keeps stamp 0 — below every ticket the shard's
		// clock has ever issued — so the eviction scan ranks it stalest.
		e.stamp.Store(sh.clock.Add(1))
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.cert == nil {
		// A plain Put over a certified entry keeps the certificate: the
		// verdict it covers is content-addressed by the same key, so the
		// co-signatures still apply. The entry is unpublished here, so the
		// write races nothing; the shard lock orders it against other
		// installs for the key.
		if old, ok := sh.entries.Load(key); ok {
			e.cert = old.(*cacheEntry).cert
		}
	}
	if _, existed := sh.entries.Swap(key, e); existed {
		return // refreshed in place; size unchanged
	}
	if sh.size.Add(1) <= int64(sh.cap) {
		return
	}
	// Over bound: one scan collects every entry's stamp, then the `slack`
	// stalest entries go at once, buying slack-1 future inserts that need
	// no scan at all. Writers only; readers never see the lock.
	scan := sh.scratch[:0]
	sh.entries.Range(func(k, v any) bool {
		scan = append(scan, agedKey{k.(identity.Hash), v.(*cacheEntry).stamp.Load()})
		return true
	})
	sh.scratch = scan[:0]
	evict := len(scan) - (sh.cap - sh.slack + 1)
	if evict < 1 {
		evict = 1
	}
	if evict > len(scan) {
		evict = len(scan)
	}
	slices.SortFunc(scan, func(a, b agedKey) int {
		return cmp.Compare(a.stamp, b.stamp)
	})
	for _, e := range scan[:evict] {
		sh.entries.Delete(e.key)
	}
	sh.size.Add(int64(-evict))
}

// Contains reports whether a key is currently cached, without touching
// its recency. Lock-free (one sync.Map load); safe from any goroutine —
// the verdict store's compaction uses it as the warmth oracle for its
// retention bound.
func (c *verdictCache) Contains(key identity.Hash) bool {
	if len(c.shards) == 0 {
		return false
	}
	_, ok := c.shardFor(key).entries.Load(key)
	return ok
}

// Len returns the current number of cached verdicts across all shards.
func (c *verdictCache) Len() int {
	n := int64(0)
	for i := range c.shards {
		n += c.shards[i].size.Load()
	}
	return int(n)
}

// ShardLens returns the per-shard entry counts (nil when caching is
// disabled): the operator-visible view of how evenly the stripes fill.
func (c *verdictCache) ShardLens() []int {
	if len(c.shards) == 0 {
		return nil
	}
	lens := make([]int, len(c.shards))
	for i := range c.shards {
		lens[i] = int(c.shards[i].size.Load())
	}
	return lens
}
