package service

import (
	"container/list"
	"sync"

	"rationality/internal/core"
)

// verdictCache is a bounded LRU of content-addressed verdicts. Keys are
// identity.Digest hashes over (format, game, advice, proof), so two
// announcements with byte-identical contents share an entry regardless of
// which inventor or agent submitted them.
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key     string
	verdict core.Verdict
}

// newVerdictCache returns a cache bounded to capacity entries; a capacity
// of zero or less disables caching (every Get misses, Put is a no-op).
func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached verdict, if present.
func (c *verdictCache) Get(key string) (*core.Verdict, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	v := copyVerdict(el.Value.(*cacheEntry).verdict)
	return &v, true
}

// Put stores a verdict, evicting the least recently used entry when full.
func (c *verdictCache) Put(key string, v core.Verdict) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).verdict = copyVerdict(v)
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, verdict: copyVerdict(v)})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current number of cached verdicts.
func (c *verdictCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// copyVerdict deep-copies a verdict so cached state cannot be mutated
// through a returned pointer (Details is a map).
func copyVerdict(v core.Verdict) core.Verdict {
	if v.Details != nil {
		details := make(map[string]string, len(v.Details))
		for k, val := range v.Details {
			details[k] = val
		}
		v.Details = details
	}
	return v
}
